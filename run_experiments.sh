#!/bin/sh
# Regenerate every table and figure of the paper's evaluation.
# Usage: ./run_experiments.sh [--quick|--full]
set -e
SCALE="$1"
for exp in table1 table2 fig7 table3 fig5a fig5b fig6a fig6b fig6c design_ablation; do
    echo "=== $exp ==="
    cargo run --release -p uvd-bench --bin "$exp" -- $SCALE
done
