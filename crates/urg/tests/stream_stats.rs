//! Regression test for per-shard statistics of a streamed 50k-region build.
//!
//! `ShardedUrg::stats` must report the full Table-I numbers *plus* the
//! per-shard breakdown without ever materializing a monolithic [`Urg`] —
//! this is the accounting the scaling harness and the check.sh smoke gate
//! rely on. The city here is the 224x224 member of the scaling family used
//! by `crates/bench/src/bin/scaling.rs` (same generator seed), built
//! without imagery so the test stays fast in debug mode; edge topology and
//! labels are imagery-independent, so the global counts match the bench's
//! full build exactly.

use uvd_citysim::{CityConfig, CityStream};
use uvd_urg::{ShardedUrg, UrgOptions};

/// The `scale-224x224` city from the scaling harness (50_176 regions).
fn city_50k() -> CityConfig {
    let side = 224usize;
    let area = side * side;
    CityConfig {
        name: format!("scale-{side}x{side}"),
        height: side,
        width: side,
        n_centers: (area / 40_000 + 1).min(6),
        n_uv_patches: (area / 400).max(8),
        uv_patch_size: (4, 10),
        uv_discovery_rate: 0.85,
        non_uv_label_ratio: 4.0,
        road_spacing: 2,
        road_keep_prob: 0.85,
        poi_density: 0.3,
        n_nature_patches: (area / 10_000).max(2),
    }
}

#[test]
fn streamed_50k_stats_regression() {
    let stream = CityStream::new(city_50k(), 11, 28);
    let sharded = ShardedUrg::from_stream(stream, UrgOptions::no_image());
    let stats = sharded.stats();

    // Global Table-I numbers, pinned to the seed-11 generator output. The
    // directed edge count matches the bench harness's full-imagery build of
    // the same city (topology is imagery-independent).
    assert_eq!(stats.n_regions, 50_176);
    assert_eq!(stats.n_edges, 970_736);
    assert_eq!(stats.shards.len(), 8, "224 rows / 28-row tiles = 8 shards");
    assert!(
        stats.n_uvs > 0 && stats.n_non_uvs > stats.n_uvs,
        "labeled split must be present and UV-minority (got {} uv / {} non-uv)",
        stats.n_uvs,
        stats.n_non_uvs
    );

    // The per-shard breakdown must partition the city: contiguous region
    // ranges covering 0..n, and local+halo directed edges summing to the
    // global count (every directed edge is owned by exactly one shard — the
    // one holding its destination).
    let mut next_start = 0usize;
    for s in &stats.shards {
        assert_eq!(s.region_start, next_start, "shards must tile the id space");
        assert!(s.n_regions > 0);
        next_start += s.n_regions;
    }
    assert_eq!(next_start, stats.n_regions);
    let directed: usize = stats
        .shards
        .iter()
        .map(|s| s.n_local_edges + s.n_halo_edges)
        .sum();
    assert_eq!(directed, stats.n_edges);

    // Every shard of a connected city borders its neighbors: non-empty halo
    // everywhere, and interior shards reference strictly more external
    // regions than a single boundary row could supply alone.
    for s in &stats.shards {
        assert!(
            s.n_halo_edges > 0,
            "shard at {} has no halo",
            s.region_start
        );
        assert!(s.n_halo_regions > 0);
        assert!(s.n_halo_regions < s.n_regions);
    }

    // Stats came from the shard blocks — nothing was concatenated. Guard
    // the claim structurally: the sharded form still answers per-shard
    // queries afterwards (stats() did not consume or mutate it).
    assert_eq!(sharded.n_shards(), stats.shards.len());
}
