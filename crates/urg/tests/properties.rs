//! Property-based tests of URG construction invariants.

use proptest::prelude::*;
use uvd_citysim::{City, CityPreset};
use uvd_urg::{PoiFeatureOptions, Urg, UrgOptions};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Structural invariants of the URG hold for any generation seed.
    #[test]
    fn urg_structure_invariants(seed in 0u64..500) {
        let city = City::from_config(CityPreset::tiny(), seed);
        let urg = Urg::build(&city, UrgOptions::no_image());
        // Pairs are unique, ordered, in range, and never self-loops.
        let mut seen = std::collections::HashSet::new();
        for &(a, b) in &urg.pairs {
            prop_assert!(a < b);
            prop_assert!((b as usize) < urg.n);
            prop_assert!(seen.insert((a, b)));
        }
        // The directed edge index has 2·pairs + n self-loops.
        prop_assert_eq!(urg.edges.n_edges(), urg.pairs.len() * 2 + urg.n);
        // Every node has at least its self-loop incoming.
        for i in 0..urg.n {
            prop_assert!(urg.edges.in_degree(i) >= 1);
        }
        // Labels are sorted, unique, and aligned with y.
        prop_assert!(urg.labeled.windows(2).all(|w| w[0] < w[1]));
        prop_assert_eq!(urg.labeled.len(), urg.y.len());
    }

    /// POI features are bounded and the category block is a distribution.
    #[test]
    fn poi_features_bounded(seed in 0u64..500) {
        let city = City::from_config(CityPreset::tiny(), seed);
        let x = uvd_urg::features::poi_features(&city, PoiFeatureOptions::default());
        prop_assert_eq!(x.shape(), (city.n_regions(), 64));
        prop_assert!(x.as_slice().iter().all(|v| (0.0..=1.0).contains(v)));
        for r in 0..city.n_regions() {
            let s: f32 = x.row(r)[..23].iter().sum();
            prop_assert!(s.abs() < 1e-4 || (s - 1.0).abs() < 1e-3);
        }
    }

    /// Hop monotonicity: more road hops can only add connectivity pairs.
    #[test]
    fn road_hops_monotone(seed in 0u64..200) {
        let city = City::from_config(CityPreset::tiny(), seed);
        let mut prev = 0usize;
        for hops in [1usize, 3, 5] {
            let pairs = uvd_urg::edges::road_edges(&city, hops);
            prop_assert!(pairs.len() >= prev, "hops {hops}");
            prev = pairs.len();
        }
    }

    /// The union of the two single-relation URGs covers the full edge set.
    #[test]
    fn edge_sources_compose(seed in 0u64..200) {
        let city = City::from_config(CityPreset::tiny(), seed);
        let full = Urg::build(&city, UrgOptions::no_image());
        let mut opts_road = UrgOptions::no_image();
        opts_road.spatial = false;
        let mut opts_prox = UrgOptions::no_image();
        opts_prox.road = false;
        let road = Urg::build(&city, opts_road);
        let prox = Urg::build(&city, opts_prox);
        let mut union: Vec<(u32, u32)> =
            road.pairs.iter().chain(prox.pairs.iter()).copied().collect();
        union.sort_unstable();
        union.dedup();
        prop_assert_eq!(union, full.pairs.clone());
    }
}
