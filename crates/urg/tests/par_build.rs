//! Thread-count invariance of the URG build path (dense and streamed).
//!
//! Every parallel stage of `Urg::build` — VGG-sim rows, POI feature rows,
//! per-start road BFS, column standardization, counting-sort CSR assembly —
//! is designed to produce bitwise-identical output at any `UVD_THREADS`
//! (chunk-invariant decompositions, index-ordered reductions; DESIGN.md §13).
//! These properties pin that contract over irregular city sizes and thread
//! counts, and re-pin the streamed `ShardedUrg` equivalence now that the
//! tile render/fold loop is pipelined across threads.

use proptest::prelude::*;
use uvd_citysim::{City, CityConfig, CityPreset, CityStream};
use uvd_tensor::par;
use uvd_urg::{ShardedUrg, Urg, UrgOptions};

/// Small irregular city: non-square grids, a few UV patches.
fn city_cfg(w: usize, h: usize) -> CityConfig {
    let mut c = CityPreset::tiny();
    c.name = "par-build".into();
    c.width = w;
    c.height = h;
    c.n_uv_patches = 3;
    c.uv_patch_size = (2, 4);
    c.n_nature_patches = 1;
    c
}

/// Bitwise equality over every URG field the model consumes.
fn assert_urg_bitwise(a: &Urg, b: &Urg, what: &str) {
    assert_eq!(a.n, b.n, "{what}: n");
    assert_eq!(a.pairs, b.pairs, "{what}: pairs");
    assert_eq!(a.edges.src(), b.edges.src(), "{what}: edge src");
    assert_eq!(a.edges.dst(), b.edges.dst(), "{what}: edge dst");
    assert_eq!(a.x_poi, b.x_poi, "{what}: x_poi");
    assert_eq!(a.x_img, b.x_img, "{what}: x_img");
    assert_eq!(a.labeled, b.labeled, "{what}: labeled");
    assert_eq!(a.y, b.y, "{what}: y");
    for r in 0..a.n {
        let ra: Vec<(u32, f32)> = a.adj_norm.fwd.row_iter(r).collect();
        let rb: Vec<(u32, f32)> = b.adj_norm.fwd.row_iter(r).collect();
        assert_eq!(ra, rb, "{what}: adj_norm row {r}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Dense build: parallel ≡ serial, bitwise, at every swept thread count.
    #[test]
    fn dense_build_is_thread_count_invariant(
        seed in 0u64..200,
        w in 5usize..12,
        h in 5usize..12,
    ) {
        let city = City::from_config(city_cfg(w, h), seed);
        let opts = UrgOptions::default();
        let reference = par::serial_scope(|| Urg::build(&city, opts));
        for threads in [2usize, 7] {
            let parallel = par::with_threads(threads, || Urg::build(&city, opts));
            assert_urg_bitwise(&parallel, &reference, &format!("threads={threads}"));
        }
    }

    /// Streamed build (pipelined render/fold + parallel folds) ≡ serial
    /// dense build, bitwise, over irregular tile heights and thread counts.
    #[test]
    fn streamed_build_matches_dense_at_any_thread_count(
        seed in 0u64..200,
        w in 5usize..12,
        h in 5usize..12,
        tile_rows in 1usize..6,
    ) {
        let cfg = city_cfg(w, h);
        let city = City::from_config(cfg.clone(), seed);
        let opts = UrgOptions::default();
        let reference = par::serial_scope(|| Urg::build(&city, opts));
        for threads in [1usize, 2, 7] {
            let streamed = par::with_threads(threads, || {
                ShardedUrg::from_stream(CityStream::new(cfg.clone(), seed, tile_rows), opts)
                    .into_urg()
            });
            assert_urg_bitwise(
                &streamed,
                &reference,
                &format!("streamed threads={threads} tile_rows={tile_rows}"),
            );
        }
    }
}
