//! Assembly of the Urban Region Graph G(V, E, A, X) from a generated city:
//! edge construction (spatial + road connectivity), POI and image feature
//! matrices, and the sparse structures models consume.

use crate::edges::{merge_pairs, road_edges, spatial_edges};
use crate::features::{poi_features, PoiFeatureOptions};
use crate::vgg::{standardize_columns, VggSim};
use serde_like::UrgStats;
use std::sync::Arc;
use uvd_citysim::{City, IMG_LEN};
use uvd_tensor::graph::CsrPair;
use uvd_tensor::{Csr, EdgeIndex, Matrix};

/// Typed failure from [`Urg::update_poi`]: the incremental-update request
/// path of the serving layer, where a bad region id or a wrong-width feature
/// row must become an error reply rather than a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateError {
    RegionOutOfBounds { region: usize, n_regions: usize },
    WidthMismatch { expected: usize, got: usize },
}

impl std::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdateError::RegionOutOfBounds { region, n_regions } => {
                write!(f, "region {region} out of bounds for {n_regions} regions")
            }
            UpdateError::WidthMismatch { expected, got } => {
                write!(f, "POI row has {got} features, graph expects {expected}")
            }
        }
    }
}

impl std::error::Error for UpdateError {}

/// Options controlling URG construction; the Figure 5(b) data-ablation
/// variants are expressed by toggling these flags.
#[derive(Clone, Copy, Debug)]
pub struct UrgOptions {
    /// Include 8-neighbour spatial-proximity edges.
    pub spatial: bool,
    /// Include road-connectivity edges.
    pub road: bool,
    /// Road connectivity hop bound (paper: 5).
    pub road_hops: usize,
    /// POI feature groups.
    pub poi: PoiFeatureOptions,
    /// Include VGG-sim image features.
    pub image: bool,
}

impl Default for UrgOptions {
    fn default() -> Self {
        UrgOptions {
            spatial: true,
            road: true,
            road_hops: 5,
            poi: PoiFeatureOptions::default(),
            image: true,
        }
    }
}

impl UrgOptions {
    /// The Figure 5(b) named variants.
    pub fn no_image() -> Self {
        UrgOptions {
            image: false,
            ..Default::default()
        }
    }

    pub fn no_cate() -> Self {
        let mut o = UrgOptions::default();
        o.poi.cate = false;
        o
    }

    pub fn no_rad() -> Self {
        let mut o = UrgOptions::default();
        o.poi.radius = false;
        o
    }

    pub fn no_index() -> Self {
        let mut o = UrgOptions::default();
        o.poi.facility = false;
        o
    }

    pub fn no_road() -> Self {
        UrgOptions {
            road: false,
            ..Default::default()
        }
    }

    pub fn no_prox() -> Self {
        UrgOptions {
            spatial: false,
            ..Default::default()
        }
    }
}

/// The Urban Region Graph: nodes are region grids, edges come from spatial
/// proximity and road connectivity, features from POIs and imagery
/// (paper Section IV). `Clone` is cheap-ish: the sparse structures are
/// shared `Arc`s; only the feature matrices and label vectors copy (the
/// serving layer clones one mutable instance for incremental updates).
#[derive(Clone)]
pub struct Urg {
    pub name: String,
    pub n: usize,
    pub width: usize,
    pub height: usize,
    /// Undirected unique edge pairs `(a, b)`, `a < b`, no self-loops.
    pub pairs: Vec<(u32, u32)>,
    /// Directed edge index (both directions plus self-loops), sorted by
    /// destination — the neighbourhood structure attention layers use.
    pub edges: Arc<EdgeIndex>,
    /// Symmetrically normalized `A + I` for GCN-style propagation.
    pub adj_norm: Arc<CsrPair>,
    /// POI feature matrix (`n × d_poi`).
    pub x_poi: Matrix,
    /// Standardized image feature matrix (`n × 256`), or `n × 0` when the
    /// image modality is ablated.
    pub x_img: Matrix,
    /// Raw region images (`n × IMG_LEN`), kept for the CNN baselines that
    /// operate on pixels (UVLens, MUVFCN); `None` when the image modality is
    /// ablated.
    pub raw_images: Option<Arc<Matrix>>,
    /// Labeled region ids (survey output), sorted.
    pub labeled: Vec<u32>,
    /// Binary labels aligned with `labeled` (1 = urban village).
    pub y: Vec<f32>,
}

impl Urg {
    /// Build the URG from a city with the given options.
    pub fn build(city: &City, opts: UrgOptions) -> Urg {
        let mut _s = uvd_obs::span("urg.build");
        let n = city.n_regions();
        _s.add_field("n_regions", n as f64);

        let pairs = {
            let _e = uvd_obs::span("urg.edges");
            let mut lists = Vec::new();
            if opts.spatial {
                lists.push(spatial_edges(city));
            }
            if opts.road {
                lists.push(road_edges(city, opts.road_hops));
            }
            merge_pairs(lists)
        };

        let (edges, adj_norm) = {
            let _c = uvd_obs::span("urg.csr");
            // Directed edges + self-loops for attention neighbourhoods.
            let mut directed: Vec<(u32, u32)> = Vec::with_capacity(pairs.len() * 2 + n);
            for &(a, b) in &pairs {
                directed.push((a, b));
                directed.push((b, a));
            }
            for i in 0..n as u32 {
                directed.push((i, i));
            }
            let edges = Arc::new(EdgeIndex::from_pairs(n, directed));

            // Normalized adjacency (A + I) for GCN baselines.
            let mut coo: Vec<(u32, u32, f32)> = Vec::with_capacity(pairs.len() * 2 + n);
            for &(a, b) in &pairs {
                coo.push((a, b, 1.0));
                coo.push((b, a, 1.0));
            }
            for i in 0..n as u32 {
                coo.push((i, i, 1.0));
            }
            let adj_norm = CsrPair::new(Csr::from_coo(n, n, coo).sym_normalized());
            (edges, adj_norm)
        };
        _s.add_field("n_edges", edges.n_edges() as f64);

        let (x_poi, x_img, raw_images) = {
            let _f = uvd_obs::span("urg.features");
            let x_poi = poi_features(city, opts.poi);
            let (x_img, raw_images) = if opts.image {
                let raw = Matrix::from_vec(n, IMG_LEN, city.images.clone());
                let feats = standardize_columns(&VggSim::new().features(&city.images));
                (feats, Some(Arc::new(raw)))
            } else {
                (Matrix::zeros(n, 0), None)
            };
            (x_poi, x_img, raw_images)
        };

        // Labeled set: positives then negatives, sorted by region id.
        let mut labeled: Vec<(u32, f32)> = city
            .labels
            .uv_regions
            .iter()
            .map(|&r| (r, 1.0))
            .chain(city.labels.non_uv_regions.iter().map(|&r| (r, 0.0)))
            .collect();
        labeled.sort_unstable_by_key(|&(r, _)| r);
        let (labeled, y): (Vec<u32>, Vec<f32>) = labeled.into_iter().unzip();

        Urg {
            name: city.name.clone(),
            n,
            width: city.width,
            height: city.height,
            pairs,
            edges,
            adj_norm,
            x_poi,
            x_img,
            raw_images,
            labeled,
            y,
        }
    }

    /// Build an ablation variant of the URG cheaply by reusing the
    /// expensive pieces of an already-built full URG (VGG image features
    /// dominate build time). `base` must have been built from the same
    /// `city` with [`UrgOptions::default`].
    pub fn variant_from(city: &City, opts: UrgOptions, base: &Urg) -> Urg {
        assert_eq!(base.n, city.n_regions(), "base URG mismatch");
        // Edges: recompute only if an edge source was toggled (cheap).
        let mut variant = if opts.spatial && opts.road && opts.road_hops == 5 {
            Urg {
                name: base.name.clone(),
                n: base.n,
                width: base.width,
                height: base.height,
                pairs: base.pairs.clone(),
                edges: base.edges.clone(),
                adj_norm: base.adj_norm.clone(),
                x_poi: base.x_poi.clone(),
                x_img: base.x_img.clone(),
                raw_images: base.raw_images.clone(),
                labeled: base.labeled.clone(),
                y: base.y.clone(),
            }
        } else {
            let mut o = opts;
            o.image = false; // skip VGG; restored from base below
            let mut u = Urg::build(city, o);
            u.x_img = base.x_img.clone();
            u.raw_images = base.raw_images.clone();
            u
        };
        // Feature ablations.
        let default_poi = PoiFeatureOptions::default();
        if opts.poi.dim() != default_poi.dim() {
            variant.x_poi = poi_features(city, opts.poi);
        }
        if !opts.image {
            variant.x_img = Matrix::zeros(variant.n, 0);
            variant.raw_images = None;
        }
        variant
    }

    /// Dataset statistics in the shape of the paper's Table I. The edge
    /// count is directed (adjacency-matrix non-zeros, excluding self-loops)
    /// to match the paper's accounting.
    pub fn stats(&self) -> UrgStats {
        UrgStats {
            name: self.name.clone(),
            n_regions: self.n,
            n_edges: self.pairs.len() * 2,
            n_uvs: self.y.iter().filter(|&&v| v > 0.5).count(),
            n_non_uvs: self.y.iter().filter(|&&v| v <= 0.5).count(),
            shards: Vec::new(),
        }
    }

    /// Extract the induced sub-URG at `nodes` (strictly ascending region
    /// ids), relabeled to `0..nodes.len()`. Topology keeps only edges with
    /// both endpoints sampled; `adj_norm` values are **gathered** from the
    /// full normalized matrix (not renormalized), so message weights match
    /// the full graph exactly — together with the monotone relabel this is
    /// what makes uncapped k-hop mini-batch forwards bitwise-comparable to
    /// full-graph slices. Labels are intersected with `nodes` and re-indexed.
    pub fn induced(&self, nodes: &[u32]) -> Urg {
        debug_assert!(nodes.windows(2).all(|w| w[0] < w[1]), "nodes must ascend");
        let edges = Arc::new(self.edges.induced_subgraph(nodes));
        let adj_norm = CsrPair::new(self.adj_norm.fwd.induced_subgraph(nodes));
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        {
            let mut map = vec![u32::MAX; self.n];
            for (new, &old) in nodes.iter().enumerate() {
                map[old as usize] = new as u32;
            }
            for &(a, b) in &self.pairs {
                let (na, nb) = (map[a as usize], map[b as usize]);
                if na != u32::MAX && nb != u32::MAX {
                    pairs.push((na.min(nb), na.max(nb)));
                }
            }
            pairs.sort_unstable();
        }
        let x_poi = self.x_poi.gather_rows(nodes);
        let x_img = self.x_img.gather_rows(nodes);
        let mut labeled: Vec<u32> = Vec::new();
        let mut y: Vec<f32> = Vec::new();
        for (new, &old) in nodes.iter().enumerate() {
            if let Ok(i) = self.labeled.binary_search(&old) {
                labeled.push(new as u32);
                y.push(self.y[i]);
            }
        }
        Urg {
            name: self.name.clone(),
            n: nodes.len(),
            width: self.width,
            height: self.height,
            pairs,
            edges,
            adj_norm,
            x_poi,
            x_img,
            raw_images: None,
            labeled,
            y,
        }
    }

    /// Overwrite one region's POI feature row in place — the serving-path
    /// incremental update (`update_poi` in the `uvd-serve` protocol). The
    /// graph topology and every other region's features are untouched, so a
    /// `maga_layers`-hop re-embed of the region's neighborhood is enough to
    /// bring cached representations back in sync (see DESIGN.md §12).
    /// Validates instead of panicking: a request-supplied region id must
    /// never kill a resident process.
    pub fn update_poi(&mut self, region: usize, row: &[f32]) -> Result<(), UpdateError> {
        if region >= self.n {
            return Err(UpdateError::RegionOutOfBounds {
                region,
                n_regions: self.n,
            });
        }
        if row.len() != self.x_poi.cols() {
            return Err(UpdateError::WidthMismatch {
                expected: self.x_poi.cols(),
                got: row.len(),
            });
        }
        self.x_poi.row_mut(region).copy_from_slice(row);
        Ok(())
    }

    /// Combined feature dimensionality (POI + image).
    pub fn feature_dim(&self) -> usize {
        self.x_poi.cols() + self.x_img.cols()
    }

    /// True iff the image modality is present.
    pub fn has_image(&self) -> bool {
        self.x_img.cols() > 0
    }

    /// Index into `labeled`/`y` for a region id, if labeled.
    pub fn label_of(&self, region: u32) -> Option<f32> {
        self.labeled.binary_search(&region).ok().map(|i| self.y[i])
    }
}

/// Serializable record types (kept in a tiny module so `urg` itself does not
/// depend on serde).
pub mod serde_like {
    /// Table I row, plus the per-shard breakdown when the URG was built
    /// through the streaming shard path (empty for a dense build).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct UrgStats {
        pub name: String,
        pub n_regions: usize,
        pub n_edges: usize,
        pub n_uvs: usize,
        pub n_non_uvs: usize,
        /// Per-shard region/edge counts, computed from the shard blocks
        /// without materializing a monolithic URG. Empty when the stats
        /// come from a dense single-block build.
        pub shards: Vec<ShardStats>,
    }

    /// One shard's row in [`UrgStats::shards`].
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct ShardStats {
        pub region_start: usize,
        pub n_regions: usize,
        /// Directed edges (excluding self-loops) internal to the shard.
        pub n_local_edges: usize,
        /// Directed edges (excluding self-loops) crossing the boundary.
        pub n_halo_edges: usize,
        /// Distinct external regions referenced by the shard's CSR block.
        pub n_halo_regions: usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvd_citysim::CityPreset;

    fn tiny_urg(seed: u64, opts: UrgOptions) -> Urg {
        let city = City::from_config(CityPreset::tiny(), seed);
        Urg::build(&city, opts)
    }

    #[test]
    fn build_full_urg() {
        let urg = tiny_urg(1, UrgOptions::default());
        assert!(urg.pairs.len() > urg.n); // denser than a path graph
        assert_eq!(urg.x_poi.rows(), urg.n);
        assert_eq!(urg.x_poi.cols(), 64);
        assert_eq!(urg.x_img.shape(), (urg.n, 256));
        assert_eq!(urg.labeled.len(), urg.y.len());
        assert!(urg.stats().n_uvs > 0);
    }

    #[test]
    fn every_node_has_self_loop() {
        let urg = tiny_urg(2, UrgOptions::default());
        for i in 0..urg.n {
            let has_self = urg
                .edges
                .incoming(i)
                .any(|e| urg.edges.src()[e] as usize == i);
            assert!(has_self, "node {i} missing self-loop");
        }
    }

    #[test]
    fn edges_are_symmetric() {
        let urg = tiny_urg(3, UrgOptions::default());
        let set: std::collections::HashSet<(u32, u32)> = (0..urg.edges.n_edges())
            .map(|e| (urg.edges.src()[e], urg.edges.dst()[e]))
            .collect();
        for &(s, d) in set.iter() {
            assert!(set.contains(&(d, s)), "missing reverse of ({s},{d})");
        }
    }

    #[test]
    fn no_road_has_fewer_edges_than_full() {
        let full = tiny_urg(4, UrgOptions::default());
        let no_road = tiny_urg(4, UrgOptions::no_road());
        let no_prox = tiny_urg(4, UrgOptions::no_prox());
        assert!(no_road.pairs.len() < full.pairs.len());
        assert!(no_prox.pairs.len() < full.pairs.len());
    }

    #[test]
    fn ablation_feature_dims() {
        assert_eq!(tiny_urg(5, UrgOptions::no_image()).x_img.cols(), 0);
        assert_eq!(tiny_urg(5, UrgOptions::no_cate()).x_poi.cols(), 16);
        assert_eq!(tiny_urg(5, UrgOptions::no_rad()).x_poi.cols(), 49);
        assert_eq!(tiny_urg(5, UrgOptions::no_index()).x_poi.cols(), 63);
    }

    #[test]
    fn label_lookup() {
        let urg = tiny_urg(6, UrgOptions::default());
        for (i, &r) in urg.labeled.iter().enumerate() {
            assert_eq!(urg.label_of(r), Some(urg.y[i]));
        }
        // A region id beyond the grid is never labeled.
        assert_eq!(urg.label_of(u32::MAX), None);
    }

    #[test]
    fn variant_from_matches_direct_build() {
        let city = City::from_config(CityPreset::tiny(), 8);
        let base = Urg::build(&city, UrgOptions::default());
        for opts in [
            UrgOptions::no_image(),
            UrgOptions::no_cate(),
            UrgOptions::no_road(),
            UrgOptions::no_prox(),
        ] {
            let fast = Urg::variant_from(&city, opts, &base);
            let slow = Urg::build(&city, opts);
            assert_eq!(fast.pairs, slow.pairs);
            assert_eq!(fast.x_poi, slow.x_poi);
            assert_eq!(fast.x_img.shape(), slow.x_img.shape());
            assert_eq!(fast.labeled, slow.labeled);
        }
    }

    #[test]
    fn stats_match_labels() {
        let city = City::from_config(CityPreset::tiny(), 7);
        let urg = Urg::build(&city, UrgOptions::default());
        let s = urg.stats();
        assert_eq!(s.n_uvs, city.labels.uv_regions.len());
        assert_eq!(s.n_non_uvs, city.labels.non_uv_regions.len());
        assert_eq!(s.n_regions, city.n_regions());
    }
}
