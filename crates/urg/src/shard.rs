//! Sharded, CSR-native Urban Region Graph built incrementally from city
//! tiles (DESIGN.md §11).
//!
//! The monolithic [`Urg::build`] needs the whole [`City`] — including all
//! imagery (`n × 3072` floats, ≈ 4.3 GB at Beijing scale) — resident at
//! once. [`ShardedUrg`] instead consumes a [`CityStream`]: graph topology
//! and the POI spatial index come from the cheap skeleton before any tile
//! is rendered, then each imagery tile is folded into a per-shard feature
//! block (POI rows + VGG-sim rows) and dropped. Peak memory is one tile of
//! imagery plus the O(n) skeleton and feature blocks — never the full
//! image tensor.
//!
//! Each shard owns its row block of the normalized adjacency as a compact
//! CSR (local rows × global columns) plus a **halo index**: the sorted
//! external region ids its rows reference. A block spmm therefore needs
//! only the shard's own feature rows plus a gather of its halo rows —
//! the classic ghost-cell layout, shaped by the row-block partition the
//! tile stream produces naturally.
//!
//! Equivalence contract: [`ShardedUrg::to_urg`] is bitwise identical to
//! `Urg::build(&stream.collect_city(), opts)` in every field except
//! `raw_images` (kept `None` — pixel-space baselines need the monolithic
//! path). Edge construction uses the same code (`spatial_edges_dims`,
//! `road_edges_from`), POI rows are per-region pure functions of the
//! shared index, VGG rows are per-region pure functions of the tile
//! pixels, and standardization uses [`standardize_blocks`], which runs the
//! monolithic `f64` accumulator chain over the blocks in row order.

use crate::edges::{merge_pairs, road_edges_from, spatial_edges_dims};
use crate::features::{poi_features_rows, PoiSpatialIndex};
use crate::graph::serde_like::{ShardStats, UrgStats};
use crate::graph::{Urg, UrgOptions};
use crate::vgg::{standardize_blocks, VggSim};
use std::sync::Arc;
use uvd_citysim::{CityStream, CityTile, SurveyLabels};
use uvd_tensor::graph::CsrPair;
use uvd_tensor::{par, Csr, EdgeIndex, Matrix};

/// One region-block shard: a contiguous row range of the URG with its
/// feature rows and its CSR row block of the normalized adjacency.
pub struct UrgShard {
    /// First region id in this shard.
    pub region_start: usize,
    /// Number of regions in this shard.
    pub n_regions: usize,
    /// Row block of the symmetrically normalized `A + I`: local rows,
    /// global columns, values identical to the full matrix's rows.
    pub adj_rows: Csr,
    /// Sorted external region ids referenced by `adj_rows` (ghost cells).
    pub halo: Vec<u32>,
    /// Directed edges (excluding self-loops) internal to this shard.
    pub n_local_edges: usize,
    /// Directed edges (excluding self-loops) crossing the shard boundary.
    pub n_halo_edges: usize,
    /// POI feature rows (`n_regions × d_poi`).
    pub x_poi: Matrix,
    /// Image feature rows (`n_regions × 256`), standardized at `finish`;
    /// `n_regions × 0` when the image modality is ablated.
    pub x_img: Matrix,
}

/// CSR-native shard-by-region-block URG, built incrementally from tiles.
pub struct ShardedUrg {
    pub name: String,
    pub n: usize,
    pub width: usize,
    pub height: usize,
    /// Undirected unique edge pairs, as in [`Urg::pairs`].
    pub pairs: Vec<(u32, u32)>,
    /// Global directed edge index (both directions + self-loops).
    pub edges: Arc<EdgeIndex>,
    /// Global normalized adjacency — shared topology; the per-shard
    /// `adj_rows` blocks are row slices of this matrix.
    pub adj_norm: Arc<CsrPair>,
    pub shards: Vec<UrgShard>,
    /// Labeled region ids, sorted, with labels aligned in `y`.
    pub labeled: Vec<u32>,
    pub y: Vec<f32>,
}

/// Incremental constructor: skeleton first, then one [`CityTile`] at a
/// time, then labels. Obtainable only through [`ShardedUrgBuilder::from_skeleton`].
pub struct ShardedUrgBuilder {
    name: String,
    n: usize,
    width: usize,
    height: usize,
    opts: UrgOptions,
    pairs: Vec<(u32, u32)>,
    edges: Arc<EdgeIndex>,
    adj_norm: Arc<CsrPair>,
    poi_index: PoiSpatialIndex,
    vgg: Option<VggSim>,
    shards: Vec<UrgShard>,
    next_region: usize,
}

impl ShardedUrgBuilder {
    /// Build topology and the POI index from the stream's skeleton (land
    /// use, POIs, roads) — no tile needs to have been rendered yet.
    pub fn from_skeleton(stream: &CityStream, opts: UrgOptions) -> ShardedUrgBuilder {
        let (w, h) = (stream.width(), stream.height());
        let n = w * h;
        let pairs = {
            let _e = uvd_obs::span("urg.edges");
            let mut lists = Vec::new();
            if opts.spatial {
                lists.push(spatial_edges_dims(w, h));
            }
            if opts.road {
                lists.push(road_edges_from(stream.roads(), w, opts.road_hops));
            }
            merge_pairs(lists)
        };

        let (edges, adj_norm) = {
            let _c = uvd_obs::span("urg.csr");
            let mut directed: Vec<(u32, u32)> = Vec::with_capacity(pairs.len() * 2 + n);
            let mut coo: Vec<(u32, u32, f32)> = Vec::with_capacity(pairs.len() * 2 + n);
            for &(a, b) in &pairs {
                directed.push((a, b));
                directed.push((b, a));
                coo.push((a, b, 1.0));
                coo.push((b, a, 1.0));
            }
            for i in 0..n as u32 {
                directed.push((i, i));
                coo.push((i, i, 1.0));
            }
            let edges = Arc::new(EdgeIndex::from_pairs(n, directed));
            let adj_norm = CsrPair::new(Csr::from_coo(n, n, coo).sym_normalized());
            (edges, adj_norm)
        };
        let poi_index = PoiSpatialIndex::from_parts(w, h, stream.pois());

        ShardedUrgBuilder {
            name: stream.name().to_string(),
            n,
            width: w,
            height: h,
            opts,
            pairs,
            edges,
            adj_norm,
            poi_index,
            vgg: if opts.image {
                Some(VggSim::new())
            } else {
                None
            },
            shards: Vec::new(),
            next_region: 0,
        }
    }

    /// Fold one tile into a shard: POI feature rows, VGG-sim image rows
    /// (parallel over regions, bitwise thread-count invariant — each row is
    /// an independent pure function of its pixels), and the adjacency row
    /// block with its halo. The tile's imagery is released by the caller
    /// when the tile drops.
    pub fn add_tile(&mut self, tile: &CityTile) {
        assert_eq!(
            tile.region_start, self.next_region,
            "tiles must arrive in order"
        );
        self.next_region += tile.n_regions;
        let lo = tile.region_start;
        let hi = lo + tile.n_regions;

        let _f = uvd_obs::span("urg.features");
        let x_poi = poi_features_rows(&self.poi_index, self.opts.poi, lo..hi);
        let x_img = match &self.vgg {
            Some(vgg) => vgg.features(&tile.images),
            None => Matrix::zeros(tile.n_regions, 0),
        };
        drop(_f);

        let rows: Vec<u32> = (lo as u32..hi as u32).collect();
        let adj_rows = self.adj_norm.fwd.gather_rows(&rows);
        let mut halo: Vec<u32> = Vec::new();
        let (mut n_local, mut n_halo) = (0usize, 0usize);
        for r in 0..tile.n_regions {
            for (c, _) in adj_rows.row_iter(r) {
                let c = c as usize;
                if c == lo + r {
                    continue; // self-loop
                }
                if (lo..hi).contains(&c) {
                    n_local += 1;
                } else {
                    n_halo += 1;
                    halo.push(c as u32);
                }
            }
        }
        halo.sort_unstable();
        halo.dedup();

        self.shards.push(UrgShard {
            region_start: lo,
            n_regions: tile.n_regions,
            adj_rows,
            halo,
            n_local_edges: n_local,
            n_halo_edges: n_halo,
            x_poi,
            x_img,
        });
    }

    /// Standardize the image-feature blocks (bitwise equal to monolithic
    /// [`crate::vgg::standardize_columns`]) and attach the labels.
    pub fn finish(mut self, labels: &SurveyLabels) -> ShardedUrg {
        assert_eq!(
            self.next_region, self.n,
            "finish() before every tile was added ({}/{} regions)",
            self.next_region, self.n
        );
        if self.opts.image {
            let mut blocks: Vec<Matrix> = self
                .shards
                .iter_mut()
                .map(|s| std::mem::replace(&mut s.x_img, Matrix::zeros(0, 0)))
                .collect();
            standardize_blocks(&mut blocks);
            for (s, b) in self.shards.iter_mut().zip(blocks) {
                s.x_img = b;
            }
        }
        let mut labeled: Vec<(u32, f32)> = labels
            .uv_regions
            .iter()
            .map(|&r| (r, 1.0))
            .chain(labels.non_uv_regions.iter().map(|&r| (r, 0.0)))
            .collect();
        labeled.sort_unstable_by_key(|&(r, _)| r);
        let (labeled, y): (Vec<u32>, Vec<f32>) = labeled.into_iter().unzip();

        ShardedUrg {
            name: self.name,
            n: self.n,
            width: self.width,
            height: self.height,
            pairs: self.pairs,
            edges: self.edges,
            adj_norm: self.adj_norm,
            shards: self.shards,
            labeled,
            y,
        }
    }
}

impl ShardedUrg {
    /// Drive a [`CityStream`] end to end: skeleton → tiles → labels.
    /// Emits a `urg.shard.build` span with region/edge/shard counts.
    ///
    /// Tile rendering and tile folding are pipelined: the caller thread
    /// renders tile `k+1` (the stream's RNG is inherently sequential) while
    /// a scoped worker folds tile `k` through [`ShardedUrgBuilder::add_tile`].
    /// A rendezvous channel hands tiles over strictly in index order, so the
    /// builder performs the exact serial fold — the pipeline changes *when*
    /// each tile is folded, never *what* is folded or in which order, and the
    /// result stays bitwise identical to the unpipelined loop. Peak imagery
    /// residency is two tiles (one rendering, one folding) instead of one.
    pub fn from_stream(mut stream: CityStream, opts: UrgOptions) -> ShardedUrg {
        let mut _s = uvd_obs::span("urg.shard.build");
        let mut builder = ShardedUrgBuilder::from_skeleton(&stream, opts);
        let threads = par::effective_threads();
        if threads > 1 && stream.n_tiles() > 1 {
            std::thread::scope(|scope| {
                let (tx, rx) = std::sync::mpsc::sync_channel::<CityTile>(0);
                let builder = &mut builder;
                let folder = scope.spawn(move || {
                    // Thread-pool overrides are thread-local: re-install the
                    // caller's effective width so the fold parallelizes (and
                    // chunks) exactly as it would on the caller thread.
                    par::with_threads(threads, || {
                        while let Ok(tile) = rx.recv() {
                            builder.add_tile(&tile);
                        }
                    });
                });
                while let Some(tile) = stream.next_tile() {
                    if tx.send(tile).is_err() {
                        break; // folder panicked; scope join surfaces it
                    }
                }
                drop(tx);
                folder.join().expect("tile folder thread panicked");
            });
        } else {
            while let Some(tile) = stream.next_tile() {
                builder.add_tile(&tile);
            }
        }
        let labels = stream.finish();
        let sharded = builder.finish(&labels);
        _s.add_field("n_regions", sharded.n as f64);
        _s.add_field("n_edges", sharded.edges.n_edges() as f64);
        _s.add_field("n_shards", sharded.shards.len() as f64);
        sharded
    }

    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// POI feature dimensionality.
    pub fn poi_dim(&self) -> usize {
        self.shards.first().map(|s| s.x_poi.cols()).unwrap_or(0)
    }

    /// Image feature dimensionality (0 when ablated).
    pub fn img_dim(&self) -> usize {
        self.shards.first().map(|s| s.x_img.cols()).unwrap_or(0)
    }

    /// Locate the shard owning a region id.
    fn shard_of(&self, region: usize) -> &UrgShard {
        let i = self
            .shards
            .partition_point(|s| s.region_start + s.n_regions <= region);
        let s = &self.shards[i];
        debug_assert!((s.region_start..s.region_start + s.n_regions).contains(&region));
        s
    }

    /// Gather POI feature rows for arbitrary region ids across shards.
    pub fn gather_poi_rows(&self, nodes: &[u32]) -> Matrix {
        self.gather(nodes, |s| &s.x_poi)
    }

    /// Gather image feature rows for arbitrary region ids across shards.
    pub fn gather_img_rows(&self, nodes: &[u32]) -> Matrix {
        self.gather(nodes, |s| &s.x_img)
    }

    fn gather<'a>(&'a self, nodes: &[u32], block: impl Fn(&'a UrgShard) -> &'a Matrix) -> Matrix {
        let d = block(self.shard_of(0)).cols();
        let mut out = Matrix::zeros(nodes.len(), d);
        for (i, &r) in nodes.iter().enumerate() {
            let s = self.shard_of(r as usize);
            out.row_mut(i)
                .copy_from_slice(block(s).row(r as usize - s.region_start));
        }
        out
    }

    /// Table I statistics plus per-shard region/edge breakdown — computed
    /// from the shard blocks directly, never materializing a monolithic
    /// [`Urg`].
    pub fn stats(&self) -> UrgStats {
        UrgStats {
            name: self.name.clone(),
            n_regions: self.n,
            n_edges: self.pairs.len() * 2,
            n_uvs: self.y.iter().filter(|&&v| v > 0.5).count(),
            n_non_uvs: self.y.iter().filter(|&&v| v <= 0.5).count(),
            shards: self
                .shards
                .iter()
                .map(|s| ShardStats {
                    region_start: s.region_start,
                    n_regions: s.n_regions,
                    n_local_edges: s.n_local_edges,
                    n_halo_edges: s.n_halo_edges,
                    n_halo_regions: s.halo.len(),
                })
                .collect(),
        }
    }

    /// Materialize a monolithic [`Urg`] by concatenating the shard feature
    /// blocks. Bitwise identical to `Urg::build` on the equivalent city in
    /// every field except `raw_images` (left `None`). Cheap for small
    /// cities; at Beijing scale it costs the ~450 MB concatenated feature
    /// matrices but still never touches the 4.3 GB of imagery.
    pub fn to_urg(&self) -> Urg {
        let poi_d = self.poi_dim();
        let img_d = self.img_dim();
        let mut x_poi = Matrix::zeros(self.n, poi_d);
        let mut x_img = Matrix::zeros(self.n, img_d);
        for s in &self.shards {
            for r in 0..s.n_regions {
                x_poi
                    .row_mut(s.region_start + r)
                    .copy_from_slice(s.x_poi.row(r));
                x_img
                    .row_mut(s.region_start + r)
                    .copy_from_slice(s.x_img.row(r));
            }
        }
        Urg {
            name: self.name.clone(),
            n: self.n,
            width: self.width,
            height: self.height,
            pairs: self.pairs.clone(),
            edges: self.edges.clone(),
            adj_norm: self.adj_norm.clone(),
            x_poi,
            x_img,
            raw_images: None,
            labeled: self.labeled.clone(),
            y: self.y.clone(),
        }
    }

    /// Consuming variant of [`ShardedUrg::to_urg`]: each shard's feature
    /// blocks are freed right after they are copied into the concatenated
    /// matrices, so peak memory stays at ~1× the feature footprint instead
    /// of the 2× a borrow-then-drop sequence would hold. This is what the
    /// scaling harness uses to hand a streamed build to the trainer.
    pub fn into_urg(mut self) -> Urg {
        let poi_d = self.poi_dim();
        let img_d = self.img_dim();
        let mut x_poi = Matrix::zeros(self.n, poi_d);
        let mut x_img = Matrix::zeros(self.n, img_d);
        for s in &mut self.shards {
            for r in 0..s.n_regions {
                x_poi
                    .row_mut(s.region_start + r)
                    .copy_from_slice(s.x_poi.row(r));
                x_img
                    .row_mut(s.region_start + r)
                    .copy_from_slice(s.x_img.row(r));
            }
            s.x_poi = Matrix::zeros(0, 0);
            s.x_img = Matrix::zeros(0, 0);
        }
        Urg {
            name: self.name,
            n: self.n,
            width: self.width,
            height: self.height,
            pairs: self.pairs,
            edges: self.edges,
            adj_norm: self.adj_norm,
            x_poi,
            x_img,
            raw_images: None,
            labeled: self.labeled,
            y: self.y,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvd_citysim::{City, CityPreset};

    fn streamed(seed: u64, tile_rows: usize, opts: UrgOptions) -> ShardedUrg {
        let stream = CityStream::new(CityPreset::tiny(), seed, tile_rows);
        ShardedUrg::from_stream(stream, opts)
    }

    #[test]
    fn into_urg_matches_to_urg() {
        let a = streamed(11, 5, UrgOptions::default()).to_urg();
        let b = streamed(11, 5, UrgOptions::default()).into_urg();
        assert_eq!(a.x_poi, b.x_poi);
        assert_eq!(a.x_img, b.x_img);
        assert_eq!(a.pairs, b.pairs);
        assert_eq!(a.labeled, b.labeled);
        assert_eq!(a.y, b.y);
    }

    #[test]
    fn to_urg_matches_monolithic_build_bitwise() {
        let city = City::from_config(CityPreset::tiny(), 11);
        let mono = Urg::build(&city, UrgOptions::default());
        let sharded = streamed(11, 5, UrgOptions::default());
        let urg = sharded.to_urg();
        assert_eq!(urg.pairs, mono.pairs);
        assert_eq!(urg.edges.n_edges(), mono.edges.n_edges());
        assert_eq!(urg.edges.src(), mono.edges.src());
        assert_eq!(urg.edges.dst(), mono.edges.dst());
        assert_eq!(urg.x_poi, mono.x_poi, "POI features must be bitwise equal");
        assert_eq!(urg.x_img, mono.x_img, "VGG features must be bitwise equal");
        assert_eq!(urg.labeled, mono.labeled);
        assert_eq!(urg.y, mono.y);
        // adj_norm values identical row by row.
        for r in 0..urg.n {
            assert_eq!(
                urg.adj_norm.fwd.row_iter(r).collect::<Vec<_>>(),
                mono.adj_norm.fwd.row_iter(r).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn shard_count_and_coverage() {
        let sharded = streamed(1, 4, UrgOptions::default());
        assert_eq!(sharded.n_shards(), 5); // ceil(18 / 4)
        let covered: usize = sharded.shards.iter().map(|s| s.n_regions).sum();
        assert_eq!(covered, sharded.n);
        // Shards are contiguous and ordered.
        let mut next = 0usize;
        for s in &sharded.shards {
            assert_eq!(s.region_start, next);
            next += s.n_regions;
        }
    }

    #[test]
    fn halo_index_is_exactly_the_external_columns() {
        let sharded = streamed(2, 6, UrgOptions::default());
        for s in &sharded.shards {
            let range = s.region_start..s.region_start + s.n_regions;
            let mut expect: Vec<u32> = (0..s.n_regions)
                .flat_map(|r| s.adj_rows.row_iter(r).map(|(c, _)| c))
                .filter(|&c| !range.contains(&(c as usize)))
                .collect();
            expect.sort_unstable();
            expect.dedup();
            assert_eq!(s.halo, expect);
            // Row-block partition ⇒ halo never includes owned regions.
            assert!(s.halo.iter().all(|&c| !range.contains(&(c as usize))));
        }
    }

    #[test]
    fn stats_report_shards_without_materialization() {
        let sharded = streamed(3, 4, UrgOptions::default());
        let stats = sharded.stats();
        assert_eq!(stats.shards.len(), sharded.n_shards());
        assert_eq!(
            stats.shards.iter().map(|s| s.n_regions).sum::<usize>(),
            stats.n_regions
        );
        // Local + halo directed edge counts over all shards equal the global
        // directed edge count (each non-self-loop edge is counted at its
        // destination shard exactly once).
        let directed: usize = stats
            .shards
            .iter()
            .map(|s| s.n_local_edges + s.n_halo_edges)
            .sum();
        assert_eq!(directed, stats.n_edges);
        // The monolithic stats agree on the Table I fields.
        let mono = sharded.to_urg().stats();
        assert_eq!(stats.name, mono.name);
        assert_eq!(stats.n_regions, mono.n_regions);
        assert_eq!(stats.n_edges, mono.n_edges);
        assert_eq!(stats.n_uvs, mono.n_uvs);
        assert_eq!(stats.n_non_uvs, mono.n_non_uvs);
        assert!(mono.shards.is_empty(), "dense build reports no shards");
    }

    #[test]
    fn gather_rows_match_concatenated_features() {
        let sharded = streamed(4, 3, UrgOptions::default());
        let urg = sharded.to_urg();
        let nodes: Vec<u32> = vec![0, 17, 18, 100, (sharded.n - 1) as u32];
        let poi = sharded.gather_poi_rows(&nodes);
        let img = sharded.gather_img_rows(&nodes);
        for (i, &r) in nodes.iter().enumerate() {
            assert_eq!(poi.row(i), urg.x_poi.row(r as usize));
            assert_eq!(img.row(i), urg.x_img.row(r as usize));
        }
    }

    #[test]
    fn tile_height_does_not_change_features() {
        let a = streamed(5, 2, UrgOptions::default()).to_urg();
        let b = streamed(5, 18, UrgOptions::default()).to_urg();
        assert_eq!(a.x_img, b.x_img);
        assert_eq!(a.x_poi, b.x_poi);
    }

    #[test]
    fn image_ablation_streams_without_vgg() {
        let sharded = streamed(6, 5, UrgOptions::no_image());
        assert_eq!(sharded.img_dim(), 0);
        assert_eq!(sharded.to_urg().x_img.cols(), 0);
    }
}
