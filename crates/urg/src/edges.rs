//! Region relation construction (paper Section IV-A): spatial-proximity
//! edges between the eight grid neighbours, and road-connectivity edges
//! between regions whose road intersections are within a bounded number of
//! road segments of each other (5 hops in the paper).

use std::collections::VecDeque;
use uvd_citysim::{City, RoadNetwork};
use uvd_tensor::par;

/// Spatial proximity: connect each region with its 8 neighbours in the
/// 3×3 window (Figure 1(a)). Returns undirected unique pairs `(a, b)` with
/// `a < b`.
pub fn spatial_edges(city: &City) -> Vec<(u32, u32)> {
    spatial_edges_dims(city.width, city.height)
}

/// As [`spatial_edges`] but from grid dimensions alone — usable before any
/// imagery tile has been rendered on the streaming path.
pub fn spatial_edges_dims(w: usize, h: usize) -> Vec<(u32, u32)> {
    let mut pairs = Vec::with_capacity(w * h * 4);
    for y in 0..h {
        for x in 0..w {
            let r = (y * w + x) as u32;
            // Emit only "forward" neighbours so each pair appears once.
            for (dx, dy) in [(1i64, 0i64), (-1, 1), (0, 1), (1, 1)] {
                let nx = x as i64 + dx;
                let ny = y as i64 + dy;
                if nx < 0 || ny < 0 || nx >= w as i64 || ny >= h as i64 {
                    continue;
                }
                let q = (ny as usize * w + nx as usize) as u32;
                pairs.push((r.min(q), r.max(q)));
            }
        }
    }
    pairs
}

/// Road connectivity (Figure 1(b)): regions `v_i`, `v_j` are connected iff
/// some intersection in `v_i` reaches some intersection in `v_j` within
/// `max_hops` road segments. Returns undirected unique pairs with `a < b`.
pub fn road_edges(city: &City, max_hops: usize) -> Vec<(u32, u32)> {
    road_edges_from(&city.roads, city.width, max_hops)
}

/// As [`road_edges`] but from the road network and grid width alone —
/// usable before any imagery tile has been rendered on the streaming path.
///
/// The per-intersection bounded BFS walks are independent, so start nodes
/// are partitioned across threads (each chunk owns its own `dist`/`touched`
/// scratch) and the per-chunk pair lists are concatenated in ascending chunk
/// order. The final sort + dedup canonicalizes the list, so the result is
/// bitwise identical to the serial sweep at any thread count.
pub fn road_edges_from(roads: &RoadNetwork, width: usize, max_hops: usize) -> Vec<(u32, u32)> {
    let n_nodes = roads.nodes.len();
    if n_nodes == 0 {
        return Vec::new();
    }
    let adj = roads.adjacency();
    let node_region: Vec<u32> = (0..n_nodes)
        .map(|i| roads.node_region(i, width) as u32)
        .collect();

    // Rough per-start work estimate: a bounded BFS touches O(degree^hops)
    // nodes; the average road degree is small, so edges-visited per start is
    // on the order of the network's edge count capped by the hop bound.
    let per_start_work = (max_hops * 32).max(1);
    let chunked: Vec<Vec<(u32, u32)>> =
        par::map_chunks(n_nodes, n_nodes * per_start_work, |starts| {
            let mut pairs = Vec::new();
            let mut dist = vec![u32::MAX; n_nodes];
            let mut touched: Vec<u32> = Vec::new();
            let mut queue = VecDeque::new();
            for start in starts {
                // BFS bounded by max_hops from each intersection.
                dist[start] = 0;
                touched.push(start as u32);
                queue.push_back(start as u32);
                let start_region = node_region[start];
                while let Some(v) = queue.pop_front() {
                    let d = dist[v as usize];
                    if d as usize >= max_hops {
                        continue;
                    }
                    for &u in &adj[v as usize] {
                        if dist[u as usize] == u32::MAX {
                            dist[u as usize] = d + 1;
                            touched.push(u);
                            queue.push_back(u);
                            let r = node_region[u as usize];
                            if r != start_region {
                                pairs.push((start_region.min(r), start_region.max(r)));
                            }
                        }
                    }
                }
                for &t in &touched {
                    dist[t as usize] = u32::MAX;
                }
                touched.clear();
            }
            pairs
        });
    let mut pairs: Vec<(u32, u32)> = chunked.into_iter().flatten().collect();
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

/// Merge undirected pair lists into one deduplicated list.
pub fn merge_pairs(mut lists: Vec<Vec<(u32, u32)>>) -> Vec<(u32, u32)> {
    let mut all: Vec<(u32, u32)> = lists.drain(..).flatten().collect();
    all.sort_unstable();
    all.dedup();
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvd_citysim::{City, CityPreset};

    #[test]
    fn spatial_edges_count_matches_formula() {
        let city = City::from_config(CityPreset::tiny(), 1);
        let pairs = spatial_edges(&city);
        let (w, h) = (city.width, city.height);
        // Undirected 8-neighbour grid: horizontal + vertical + 2 diagonals.
        let expect = h * (w - 1) + w * (h - 1) + 2 * (w - 1) * (h - 1);
        assert_eq!(pairs.len(), expect);
    }

    #[test]
    fn spatial_edges_unique_and_ordered() {
        let city = City::from_config(CityPreset::tiny(), 2);
        let pairs = spatial_edges(&city);
        let mut sorted = pairs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), pairs.len());
        for &(a, b) in &pairs {
            assert!(a < b);
        }
    }

    #[test]
    fn road_edges_respect_hop_bound() {
        let city = City::from_config(CityPreset::tiny(), 3);
        // 0 hops -> no edges at all; more hops -> monotonically more pairs.
        let e0 = road_edges(&city, 0);
        assert!(e0.is_empty());
        let e2 = road_edges(&city, 2);
        let e5 = road_edges(&city, 5);
        assert!(e5.len() >= e2.len());
        // Every 2-hop pair must be a 5-hop pair.
        let set: std::collections::HashSet<_> = e5.iter().collect();
        for p in &e2 {
            assert!(set.contains(p));
        }
    }

    #[test]
    fn road_edges_can_skip_spatial_gaps() {
        // Road connectivity should produce at least some pairs that are NOT
        // spatial neighbours (long-range functional correlation).
        let city = City::from_config(CityPreset::tiny(), 4);
        let spatial: std::collections::HashSet<_> = spatial_edges(&city).into_iter().collect();
        let road = road_edges(&city, 5);
        assert!(
            road.iter().any(|p| !spatial.contains(p)),
            "expected some long-range road pairs"
        );
    }

    #[test]
    fn merge_pairs_dedups_across_lists() {
        let merged = merge_pairs(vec![vec![(0, 1), (1, 2)], vec![(1, 2), (0, 3)]]);
        assert_eq!(merged, vec![(0, 1), (0, 3), (1, 2)]);
    }
}
