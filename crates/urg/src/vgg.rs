//! "VGG-sim": a frozen, seeded random-weight convolutional feature extractor
//! standing in for the ImageNet-pretrained VGG16 of the paper (see DESIGN.md
//! §1). Three conv+ReLU+maxpool stages map a 3×32×32 region image to a
//! 256-dimensional descriptor. The weights depend only on a fixed seed, so —
//! like a pretrained backbone — the extractor is identical across cities,
//! folds and runs.

use uvd_citysim::{IMG_CHANNELS, IMG_LEN, IMG_SIZE};
use uvd_tensor::conv::{im2col, maxpool2, ConvMeta, PoolMeta};
use uvd_tensor::init::{he_normal, seeded_rng};
use uvd_tensor::{par, Matrix};

/// Estimated scalar ops of one [`VggSim::features_one`] call (~1e6 FLOPs of
/// conv + pool work per 3×32×32 image) — the per-row work estimate the
/// parallel dispatch threshold compares against [`par::MIN_PAR_WORK`].
pub(crate) const FEATURES_ONE_WORK: usize = 1_000_000;

/// Output dimensionality of the extractor.
pub const VGG_SIM_DIM: usize = 256;

/// Seed of the "pretrained" weights — deliberately decoupled from city and
/// experiment seeds.
pub const PRETRAINED_SEED: u64 = 0xBAD5_EED5;

/// Frozen convolutional feature extractor.
pub struct VggSim {
    stages: Vec<(ConvMeta, Matrix, PoolMeta)>,
}

impl Default for VggSim {
    fn default() -> Self {
        Self::new()
    }
}

impl VggSim {
    /// Build the extractor with its fixed weights.
    pub fn new() -> Self {
        let mut rng = seeded_rng(PRETRAINED_SEED);
        let specs = [
            (IMG_CHANNELS, IMG_SIZE, 8usize),
            (8, IMG_SIZE / 2, 16),
            (16, IMG_SIZE / 4, 16),
        ];
        let stages = specs
            .iter()
            .map(|&(c_in, side, c_out)| {
                let meta = ConvMeta {
                    c_in,
                    h_in: side,
                    w_in: side,
                    c_out,
                    k: 3,
                    stride: 1,
                    pad: 1,
                };
                let (kr, kc) = meta.kernel_shape();
                let kernel = he_normal(kr, kc, &mut rng);
                let pool = PoolMeta {
                    channels: c_out,
                    h_in: side,
                    w_in: side,
                };
                (meta, kernel, pool)
            })
            .collect();
        VggSim { stages }
    }

    /// Extract features for one image (length [`IMG_LEN`]).
    pub fn features_one(&self, image: &[f32]) -> Vec<f32> {
        assert_eq!(image.len(), IMG_LEN);
        let mut x = image.to_vec();
        for (meta, kernel, pool) in &self.stages {
            let cols = im2col(&x, meta);
            let mut y = kernel.matmul(&cols); // c_out × (h*w)
            for v in y.as_mut_slice() {
                *v = v.max(0.0); // ReLU
            }
            let (pooled, _) = maxpool2(y.as_slice(), pool);
            x = pooled;
        }
        debug_assert_eq!(x.len(), VGG_SIM_DIM);
        x
    }

    /// Extract features for every region image in a flat buffer
    /// (`n * IMG_LEN` values) into an `n × 256` matrix. Output rows are
    /// partitioned across threads; each row is an independent
    /// [`VggSim::features_one`] call against the frozen weights, so the
    /// matrix is bitwise identical at any thread count.
    pub fn features(&self, images: &[f32]) -> Matrix {
        assert_eq!(images.len() % IMG_LEN, 0);
        let n = images.len() / IMG_LEN;
        let mut out = Matrix::zeros(n, VGG_SIM_DIM);
        par::for_each_row_block(
            out.as_mut_slice(),
            VGG_SIM_DIM,
            n * FEATURES_ONE_WORK,
            |rows, chunk| {
                for (ri, i) in rows.enumerate() {
                    let f = self.features_one(&images[i * IMG_LEN..(i + 1) * IMG_LEN]);
                    chunk[ri * VGG_SIM_DIM..(ri + 1) * VGG_SIM_DIM].copy_from_slice(&f);
                }
            },
        );
        out
    }
}

/// Standardize each column to zero mean / unit variance (columns with zero
/// variance are left at zero). Returns the standardized matrix.
///
/// Parallel in two phases, both bitwise-invariant under chunking: the
/// per-column mean/variance chains are independent `f64` accumulations over
/// rows in ascending order (columns are partitioned across threads, each
/// column's chain runs whole on one worker), and the apply phase is
/// element-independent (rows partitioned across threads).
pub fn standardize_columns(x: &Matrix) -> Matrix {
    let (n, d) = x.shape();
    let stats = column_stats(d, n, |r, c| x.get(r, c));
    let mut out = x.clone();
    par::for_each_row_block(out.as_mut_slice(), d.max(1), 2 * n * d, |rows, chunk| {
        for (ri, _r) in rows.enumerate() {
            let row = &mut chunk[ri * d..(ri + 1) * d];
            for (v, &(mean, std)) in row.iter_mut().zip(&stats) {
                *v = if std > 1e-9 {
                    ((*v as f64 - mean) / std) as f32
                } else {
                    0.0
                };
            }
        }
    });
    out
}

/// Per-column `(mean, std)` over a logical `n × d` matrix addressed by
/// `get(r, c)`, columns partitioned across threads. Each column runs the
/// exact serial accumulator chain (`f64` mean pass, then variance pass, rows
/// ascending), so the stats are bitwise those of the serial loop.
fn column_stats(d: usize, n: usize, get: impl Fn(usize, usize) -> f32 + Sync) -> Vec<(f64, f64)> {
    par::map_chunks(d, 2 * n * d, |c_range| {
        c_range
            .map(|c| {
                let mut mean = 0.0f64;
                for r in 0..n {
                    mean += get(r, c) as f64;
                }
                mean /= n.max(1) as f64;
                let mut var = 0.0f64;
                for r in 0..n {
                    let v = get(r, c) as f64 - mean;
                    var += v * v;
                }
                var /= n.max(1) as f64;
                (mean, var.sqrt())
            })
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// In-place, block-sharded variant of [`standardize_columns`]: the row sets
/// of `blocks`, concatenated in order, form the full matrix. Per column the
/// mean/variance accumulate over blocks in order with the same `f64`
/// accumulator chain as the monolithic function, so the result is **bitwise
/// equal** to standardizing the concatenation — the property that lets the
/// streaming URG builder standardize per-shard image features without ever
/// materializing one `n × 256` matrix copy.
pub fn standardize_blocks(blocks: &mut [Matrix]) {
    let d = blocks.first().map(|b| b.cols()).unwrap_or(0);
    let n: usize = blocks.iter().map(|b| b.rows()).sum();
    for b in blocks.iter() {
        assert_eq!(b.cols(), d, "ragged block widths");
    }
    // Same two parallel phases as [`standardize_columns`]; the per-column
    // chains walk blocks in order, i.e. rows of the concatenation in
    // ascending order — the bitwise-equality contract with the monolithic
    // function is preserved at any thread count.
    let stats = {
        let blocks = &*blocks;
        par::map_chunks(d, 2 * n * d.max(1), |c_range| {
            c_range
                .map(|c| {
                    let mut mean = 0.0f64;
                    for b in blocks.iter() {
                        for r in 0..b.rows() {
                            mean += b.get(r, c) as f64;
                        }
                    }
                    mean /= n.max(1) as f64;
                    let mut var = 0.0f64;
                    for b in blocks.iter() {
                        for r in 0..b.rows() {
                            let v = b.get(r, c) as f64 - mean;
                            var += v * v;
                        }
                    }
                    var /= n.max(1) as f64;
                    (mean, var.sqrt())
                })
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect::<Vec<_>>()
    };
    for b in blocks.iter_mut() {
        let rows = b.rows();
        par::for_each_row_block(b.as_mut_slice(), d.max(1), 2 * rows * d, |rows, chunk| {
            for (ri, _r) in rows.enumerate() {
                let row = &mut chunk[ri * d..(ri + 1) * d];
                for (v, &(mean, std)) in row.iter_mut().zip(&stats) {
                    *v = if std > 1e-9 {
                        ((*v as f64 - mean) / std) as f32
                    } else {
                        0.0
                    };
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    // Exact float equality is intended in these tests: they assert
    // exact constants and bit-reproducible results, not tolerances.
    #![allow(clippy::float_cmp)]

    use super::*;
    use rand::SeedableRng;
    use uvd_citysim::imagery::render_region;
    use uvd_citysim::RegionProfile;

    fn image(profile: RegionProfile, seed: u64) -> Vec<f32> {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let mut out = vec![0.0; IMG_LEN];
        render_region(profile, &mut rng, &mut out);
        out
    }

    #[test]
    fn output_dim_is_256() {
        let vgg = VggSim::new();
        let f = vgg.features_one(&image(RegionProfile::Residential, 1));
        assert_eq!(f.len(), VGG_SIM_DIM);
    }

    #[test]
    fn extractor_is_frozen_and_deterministic() {
        let a = VggSim::new().features_one(&image(RegionProfile::UvInner, 2));
        let b = VggSim::new().features_one(&image(RegionProfile::UvInner, 2));
        assert_eq!(a, b);
    }

    #[test]
    fn features_separate_land_uses() {
        // Same-class images should be closer in feature space than
        // different-class images, on average.
        let vgg = VggSim::new();
        let dist = |a: &[f32], b: &[f32]| -> f32 {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f32>()
                .sqrt()
        };
        let mut within = 0.0;
        let mut across = 0.0;
        let k = 6;
        for s in 0..k {
            let uv1 = vgg.features_one(&image(RegionProfile::UvInner, s));
            let uv2 = vgg.features_one(&image(RegionProfile::UvInner, s + 100));
            let dt = vgg.features_one(&image(RegionProfile::Downtown, s));
            within += dist(&uv1, &uv2);
            across += dist(&uv1, &dt);
        }
        assert!(across > within, "across {across} within {within}");
    }

    #[test]
    fn batch_matches_single() {
        let vgg = VggSim::new();
        let img1 = image(RegionProfile::Water, 3);
        let img2 = image(RegionProfile::Suburb, 4);
        let mut flat = img1.clone();
        flat.extend_from_slice(&img2);
        let batch = vgg.features(&flat);
        assert_eq!(batch.row(0), &vgg.features_one(&img1)[..]);
        assert_eq!(batch.row(1), &vgg.features_one(&img2)[..]);
    }

    #[test]
    fn standardize_columns_zero_mean_unit_var() {
        let x = Matrix::from_rows(&[&[1.0, 5.0], &[3.0, 5.0], &[5.0, 5.0]]);
        let s = standardize_columns(&x);
        let mean0: f32 = (0..3).map(|r| s.get(r, 0)).sum::<f32>() / 3.0;
        assert!(mean0.abs() < 1e-5);
        let var0: f32 = (0..3).map(|r| s.get(r, 0).powi(2)).sum::<f32>() / 3.0;
        assert!((var0 - 1.0).abs() < 1e-4);
        // Constant column maps to zeros.
        for r in 0..3 {
            assert_eq!(s.get(r, 1), 0.0);
        }
    }
}
