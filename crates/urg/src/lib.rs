//! # uvd-urg
//!
//! Urban Region Graph construction (paper Section IV): region relation
//! building from spatial proximity and road connectivity, POI feature
//! extraction (category distribution, POI radius buckets, basic-living-
//! facility index), and VGG-sim image features.
//!
//! ```
//! use uvd_citysim::{City, CityPreset};
//! use uvd_urg::{Urg, UrgOptions};
//!
//! let city = City::from_config(CityPreset::tiny(), 1);
//! let urg = Urg::build(&city, UrgOptions::default());
//! assert_eq!(urg.x_poi.cols(), 64);
//! assert_eq!(urg.x_img.cols(), 256);
//! ```

pub mod detector;
pub mod edges;
pub mod features;
pub mod graph;
pub mod shard;
pub mod vgg;

pub use detector::{Detector, FitError, FitReport};
pub use features::{PoiFeatureOptions, PoiSpatialIndex};
pub use graph::{
    serde_like::{ShardStats, UrgStats},
    UpdateError, Urg, UrgOptions,
};
pub use shard::{ShardedUrg, ShardedUrgBuilder, UrgShard};
pub use vgg::{standardize_blocks, standardize_columns, VggSim, VGG_SIM_DIM};
