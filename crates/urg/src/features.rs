//! POI feature construction (paper Section IV-B and Table IV).
//!
//! The full POI feature vector has 64 dimensions:
//!
//! | slice    | content                                                    |
//! |----------|------------------------------------------------------------|
//! | `0..23`  | category distribution inside the region (proportions)      |
//! | `23`     | total POI count in the region (log-normalized)              |
//! | `24..47` | category distribution over the surrounding 3×3 grids        |
//! | `47`     | total POI count over the 3×3 grids (log-normalized)         |
//! | `48..63` | 15 POI-radius features, bucketized (<0.5 / 0.5–1.5 / 1.5–3 / >3 km) |
//! | `63`     | index of basic living facility (all 9 classes within 1 km)  |
//!
//! Feature groups can be ablated independently (Figure 5(b) variants
//! `noCate`, `noRad`, `noIndex`).

use uvd_citysim::{City, FacilityClass, PoiCategory, RadiusType, CELL_METERS};
use uvd_tensor::{par, Matrix};

/// Estimated scalar ops of one region's POI feature row (dominated by the
/// 15 + 9 expanding-ring nearest-POI searches, each scanning on the order of
/// a few thousand grid cells) — the per-row work estimate fed to the
/// parallel dispatch threshold.
const POI_ROW_WORK: usize = 100_000;

/// Which POI feature groups to include.
#[derive(Clone, Copy, Debug)]
pub struct PoiFeatureOptions {
    /// Category distribution + counts (48 dims).
    pub cate: bool,
    /// POI radius buckets (15 dims).
    pub radius: bool,
    /// Basic-living-facility index (1 dim).
    pub facility: bool,
}

impl Default for PoiFeatureOptions {
    fn default() -> Self {
        PoiFeatureOptions {
            cate: true,
            radius: true,
            facility: true,
        }
    }
}

impl PoiFeatureOptions {
    /// Output dimensionality under these options.
    pub fn dim(&self) -> usize {
        (if self.cate { 48 } else { 0 })
            + (if self.radius { RadiusType::COUNT } else { 0 })
            + (if self.facility { 1 } else { 0 })
    }
}

/// Spatial index over the city's POIs, bucketed per region, supporting the
/// bounded nearest-POI queries that the radius/facility features need.
pub struct PoiSpatialIndex {
    width: usize,
    height: usize,
    /// Per radius type, per region: POI positions (meters).
    radius_buckets: Vec<Vec<Vec<(f64, f64)>>>,
    /// Per facility class, per region: POI positions (meters).
    facility_buckets: Vec<Vec<Vec<(f64, f64)>>>,
    /// Per region: POI count per top-level category.
    category_counts: Vec<[f32; PoiCategory::COUNT]>,
}

impl PoiSpatialIndex {
    pub fn build(city: &City) -> Self {
        Self::from_parts(city.width, city.height, &city.pois)
    }

    /// As [`PoiSpatialIndex::build`] but from the POI list and grid
    /// dimensions alone — usable on the streaming path where no monolithic
    /// [`City`] ever exists.
    pub fn from_parts(width: usize, height: usize, pois: &[uvd_citysim::Poi]) -> Self {
        let n = width * height;
        let mut radius_buckets = vec![vec![Vec::new(); n]; RadiusType::COUNT];
        let mut facility_buckets = vec![vec![Vec::new(); n]; FacilityClass::COUNT];
        let mut category_counts = vec![[0.0f32; PoiCategory::COUNT]; n];
        for p in pois {
            let r = p.region(width);
            category_counts[r][p.kind.category().index()] += 1.0;
            if let Some(rt) = p.kind.radius_type() {
                radius_buckets[rt.index()][r].push((p.x, p.y));
            }
            if let Some(fc) = p.kind.facility_class() {
                facility_buckets[fc.index()][r].push((p.x, p.y));
            }
        }
        PoiSpatialIndex {
            width,
            height,
            radius_buckets,
            facility_buckets,
            category_counts,
        }
    }

    /// Per-region category count table.
    pub fn category_counts(&self) -> &[[f32; PoiCategory::COUNT]] {
        &self.category_counts
    }

    /// Distance in meters from the center of `region` to the nearest POI of
    /// the given radius type, capped at `cap_m` (returns `None` if nothing is
    /// within the cap).
    pub fn nearest_radius_poi(&self, region: usize, rt: RadiusType, cap_m: f64) -> Option<f64> {
        self.nearest_in(&self.radius_buckets[rt.index()], region, cap_m)
    }

    /// Nearest facility of a class, capped.
    pub fn nearest_facility(&self, region: usize, fc: FacilityClass, cap_m: f64) -> Option<f64> {
        self.nearest_in(&self.facility_buckets[fc.index()], region, cap_m)
    }

    /// Expanding ring search over region cells. Exact nearest distance as
    /// long as it is below the cap.
    fn nearest_in(&self, buckets: &[Vec<(f64, f64)>], region: usize, cap_m: f64) -> Option<f64> {
        let (w, h) = (self.width, self.height);
        let (cx, cy) = (region % w, region / w);
        let (px, py) = (
            (cx as f64 + 0.5) * CELL_METERS,
            (cy as f64 + 0.5) * CELL_METERS,
        );
        let max_ring = (cap_m / CELL_METERS).ceil() as i64 + 1;
        let mut best = f64::INFINITY;
        for ring in 0..=max_ring {
            // Cells in this ring cannot contain anything closer than
            // (ring-1) cells away; stop once the current best beats that.
            let ring_floor = ((ring - 1).max(0)) as f64 * CELL_METERS;
            if best <= ring_floor {
                break;
            }
            for (gx, gy) in ring_cells(cx as i64, cy as i64, ring, w as i64, h as i64) {
                for &(x, y) in &buckets[gy as usize * w + gx as usize] {
                    let d = ((x - px).powi(2) + (y - py).powi(2)).sqrt();
                    if d < best {
                        best = d;
                    }
                }
            }
        }
        if best <= cap_m {
            Some(best)
        } else {
            None
        }
    }
}

/// Grid cells at Chebyshev distance `ring` from `(cx, cy)`, clipped to the
/// grid.
fn ring_cells(cx: i64, cy: i64, ring: i64, w: i64, h: i64) -> Vec<(i64, i64)> {
    let mut out = Vec::new();
    if ring == 0 {
        if cx >= 0 && cy >= 0 && cx < w && cy < h {
            out.push((cx, cy));
        }
        return out;
    }
    for dx in -ring..=ring {
        for &dy in &[-ring, ring] {
            let (x, y) = (cx + dx, cy + dy);
            if x >= 0 && y >= 0 && x < w && y < h {
                out.push((x, y));
            }
        }
    }
    for dy in (-ring + 1)..ring {
        for &dx in &[-ring, ring] {
            let (x, y) = (cx + dx, cy + dy);
            if x >= 0 && y >= 0 && x < w && y < h {
                out.push((x, y));
            }
        }
    }
    out
}

/// Bucketize a radius distance per the paper: `<0.5 km`, `0.5–1.5 km`,
/// `1.5–3 km`, `>3 km` → `{0, 1, 2, 3}`.
pub fn radius_bucket(dist_m: Option<f64>) -> u8 {
    match dist_m {
        Some(d) if d < 500.0 => 0,
        Some(d) if d < 1500.0 => 1,
        Some(d) if d < 3000.0 => 2,
        _ => 3,
    }
}

/// Build the POI feature matrix (`n_regions × opts.dim()`).
pub fn poi_features(city: &City, opts: PoiFeatureOptions) -> Matrix {
    let index = PoiSpatialIndex::build(city);
    poi_features_with_index(city, &index, opts)
}

/// As [`poi_features`] but reusing a prebuilt spatial index.
pub fn poi_features_with_index(
    city: &City,
    index: &PoiSpatialIndex,
    opts: PoiFeatureOptions,
) -> Matrix {
    poi_features_rows(index, opts, 0..city.n_regions())
}

/// Compute the POI feature rows for a contiguous region range against a
/// prebuilt (full-city) spatial index. Each region's features depend only
/// on the index and the global `max_count` normalizers, so a row block is
/// bitwise identical to the same rows of the full matrix — the streaming
/// shard builder relies on this, and it is also what makes the row loop
/// safe to partition across threads (each worker writes disjoint rows from
/// shared read-only state; no accumulation order exists to perturb).
pub fn poi_features_rows(
    index: &PoiSpatialIndex,
    opts: PoiFeatureOptions,
    regions: std::ops::Range<usize>,
) -> Matrix {
    let (w, h) = (index.width, index.height);
    let counts = index.category_counts();
    let d = opts.dim();

    // Global normalizers for the count features.
    let max_count = counts
        .iter()
        .map(|c| c.iter().sum::<f32>())
        .fold(0.0f32, f32::max)
        .max(1.0);
    let max_count_9 = max_count * 9.0;

    let mut out = Matrix::zeros(regions.len(), d);
    if d == 0 || regions.is_empty() {
        return out;
    }
    let n_rows = regions.len();
    let start = regions.start;
    par::for_each_row_block(
        out.as_mut_slice(),
        d,
        n_rows * POI_ROW_WORK,
        |rows, chunk| {
            for (ri, local) in rows.enumerate() {
                let r = start + local;
                let row = &mut chunk[ri * d..(ri + 1) * d];
                poi_feature_row(index, opts, w, h, counts, max_count, max_count_9, r, row);
            }
        },
    );
    out
}

/// One region's feature row, written into `row` (length `opts.dim()`).
#[allow(clippy::too_many_arguments)]
fn poi_feature_row(
    index: &PoiSpatialIndex,
    opts: PoiFeatureOptions,
    w: usize,
    h: usize,
    counts: &[[f32; PoiCategory::COUNT]],
    max_count: f32,
    max_count_9: f32,
    r: usize,
    row: &mut [f32],
) {
    {
        let mut col = 0usize;
        if opts.cate {
            // Region-level distribution + count.
            let total: f32 = counts[r].iter().sum();
            if total > 0.0 {
                for (i, &c) in counts[r].iter().enumerate() {
                    row[col + i] = c / total;
                }
            }
            row[col + PoiCategory::COUNT] = (1.0 + total).ln() / (1.0 + max_count).ln();
            col += PoiCategory::COUNT + 1;

            // 3×3 neighbourhood distribution + count.
            let (cx, cy) = (r % w, r / w);
            let mut nb = [0.0f32; PoiCategory::COUNT];
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    let (x, y) = (cx as i64 + dx, cy as i64 + dy);
                    if x < 0 || y < 0 || x >= w as i64 || y >= h as i64 {
                        continue;
                    }
                    let q = y as usize * w + x as usize;
                    for (i, &c) in counts[q].iter().enumerate() {
                        nb[i] += c;
                    }
                }
            }
            let nb_total: f32 = nb.iter().sum();
            if nb_total > 0.0 {
                for (i, &c) in nb.iter().enumerate() {
                    row[col + i] = c / nb_total;
                }
            }
            row[col + PoiCategory::COUNT] = (1.0 + nb_total).ln() / (1.0 + max_count_9).ln();
            col += PoiCategory::COUNT + 1;
        }
        if opts.radius {
            for i in 0..RadiusType::COUNT {
                let rt = radius_type_by_index(i);
                let d = index.nearest_radius_poi(r, rt, 3000.0);
                row[col + i] = radius_bucket(d) as f32 / 3.0;
            }
            col += RadiusType::COUNT;
        }
        if opts.facility {
            let all_within = (0..FacilityClass::COUNT).all(|i| {
                index
                    .nearest_facility(r, facility_class_by_index(i), 1000.0)
                    .is_some()
            });
            row[col] = if all_within { 1.0 } else { 0.0 };
        }
    }
}

fn radius_type_by_index(i: usize) -> RadiusType {
    use RadiusType::*;
    [
        Hospital,
        Clinic,
        College,
        School,
        BusStop,
        SubwayStation,
        Airport,
        TrainStation,
        CoachStation,
        ShoppingMall,
        Supermarket,
        Market,
        Shop,
        PoliceStation,
        ScenicSpot,
    ][i]
}

fn facility_class_by_index(i: usize) -> FacilityClass {
    use FacilityClass::*;
    [
        MedicalService,
        ShoppingPlace,
        SportsVenue,
        EducationService,
        FoodService,
        FinancialService,
        CommunicationService,
        PublicSecurityOrgan,
        TransportationFacility,
    ][i]
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvd_citysim::CityPreset;

    fn tiny(seed: u64) -> City {
        City::from_config(CityPreset::tiny(), seed)
    }

    #[test]
    fn full_feature_dim_is_64() {
        assert_eq!(PoiFeatureOptions::default().dim(), 64);
    }

    #[test]
    fn ablated_dims() {
        let no_cate = PoiFeatureOptions {
            cate: false,
            ..Default::default()
        };
        assert_eq!(no_cate.dim(), 16);
        let no_rad = PoiFeatureOptions {
            radius: false,
            ..Default::default()
        };
        assert_eq!(no_rad.dim(), 49);
        let no_idx = PoiFeatureOptions {
            facility: false,
            ..Default::default()
        };
        assert_eq!(no_idx.dim(), 63);
    }

    #[test]
    fn category_distribution_sums_to_one_or_zero() {
        let city = tiny(1);
        let x = poi_features(&city, PoiFeatureOptions::default());
        for r in 0..city.n_regions() {
            let s: f32 = x.row(r)[..23].iter().sum();
            assert!(
                s.abs() < 1e-5 || (s - 1.0).abs() < 1e-4,
                "region {r} sum {s}"
            );
        }
    }

    #[test]
    fn features_in_unit_range() {
        let city = tiny(2);
        let x = poi_features(&city, PoiFeatureOptions::default());
        for v in x.as_slice() {
            assert!((0.0..=1.0).contains(v), "feature {v} out of range");
        }
    }

    #[test]
    fn radius_bucket_thresholds() {
        assert_eq!(radius_bucket(Some(100.0)), 0);
        assert_eq!(radius_bucket(Some(500.0)), 1);
        assert_eq!(radius_bucket(Some(1499.0)), 1);
        assert_eq!(radius_bucket(Some(2999.0)), 2);
        assert_eq!(radius_bucket(Some(3000.0)), 3);
        assert_eq!(radius_bucket(None), 3);
    }

    #[test]
    fn nearest_search_matches_brute_force() {
        let city = tiny(3);
        let index = PoiSpatialIndex::build(&city);
        for r in (0..city.n_regions()).step_by(37) {
            let (px, py) = city.region_center(r);
            for rt in [RadiusType::Shop, RadiusType::Hospital, RadiusType::BusStop] {
                let brute = city
                    .pois
                    .iter()
                    .filter(|p| p.kind.radius_type() == Some(rt))
                    .map(|p| ((p.x - px).powi(2) + (p.y - py).powi(2)).sqrt())
                    .fold(f64::INFINITY, f64::min);
                let fast = index.nearest_radius_poi(r, rt, 3000.0);
                match fast {
                    Some(d) => assert!((d - brute).abs() < 1e-6, "r={r} {rt:?}"),
                    None => assert!(brute > 3000.0, "r={r} {rt:?} brute={brute}"),
                }
            }
        }
    }

    #[test]
    fn uv_category_profile_differs_from_residential() {
        // The generator plants UVs with a higher share of food-service POIs
        // and a lower share of financial-service POIs than formal
        // residential regions; the category-distribution features should
        // carry that signal (averaged over regions to damp Poisson noise).
        let city = City::from_preset(CityPreset::FuzhouLike, 7);
        let x = poi_features(&city, PoiFeatureOptions::default());
        let food = PoiCategory::FoodService.index();
        let finance = PoiCategory::FinancialService.index();
        let mean_share = |pred: &dyn Fn(usize) -> bool, col: usize| {
            let (mut s, mut c) = (0.0f32, 0usize);
            for r in 0..city.n_regions() {
                if pred(r) {
                    s += x.row(r)[col];
                    c += 1;
                }
            }
            s / c.max(1) as f32
        };
        let is_uv = |r: usize| city.is_uv(r);
        let is_res = |r: usize| city.land_use[r] == uvd_citysim::LandUse::Residential;
        assert!(mean_share(&is_uv, food) > mean_share(&is_res, food));
        assert!(mean_share(&is_uv, finance) < mean_share(&is_res, finance));
    }

    #[test]
    fn ring_cells_cover_square_perimeter() {
        let cells = ring_cells(5, 5, 2, 100, 100);
        assert_eq!(cells.len(), 16); // 5x5 square perimeter
        let cells0 = ring_cells(5, 5, 0, 100, 100);
        assert_eq!(cells0, vec![(5, 5)]);
    }
}
