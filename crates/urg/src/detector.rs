//! The common interface every urban-village detector implements (CMSF and
//! all baselines). Living next to [`crate::Urg`] because the URG is the data
//! contract shared by every model.

use crate::Urg;
use std::fmt;

/// A typed training failure, surfaced through [`FitReport::error`] instead of
/// panicking deep inside a tensor kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FitError {
    /// An input feature matrix has the wrong width for this model's
    /// configuration (e.g. fitting on a URG with a different POI vocabulary).
    ShapeMismatch {
        /// Which input was malformed (`"x_poi"`, `"x_img"`, ...).
        what: &'static str,
        /// Column count the model was built for.
        expected_cols: usize,
        /// Column count actually supplied.
        got_cols: usize,
    },
    /// Training produced a NaN or infinite loss (detected per epoch; the
    /// run aborts at the first non-finite epoch instead of polishing
    /// garbage parameters).
    NonFiniteLoss,
    /// A training stage ran before the stage it depends on (e.g. the slave
    /// adaptive stage without a prior master stage to freeze the cluster
    /// assignment).
    StageOrder {
        /// Stage that must complete first.
        required: &'static str,
        /// Stage that was attempted out of order.
        attempted: &'static str,
    },
    /// The model configuration requires the cluster hierarchy (GSCM /
    /// MS-Gate) but the named component is absent.
    MissingHierarchy {
        /// Which hierarchy component was missing (`"gate"`, `"h_prime"`, ...).
        what: &'static str,
    },
    /// A required input modality is absent from the URG (e.g. an image-only
    /// detector fitted on a graph built without raw imagery).
    MissingInput {
        /// Which input was absent (`"raw_images"`, ...).
        what: &'static str,
    },
    /// Neighbor sampling was asked to expand a node id that does not exist
    /// in the graph (see [`uvd_tensor::SampleError`]). Reachable from
    /// request-supplied region ids in the serving path, so it must be a
    /// recoverable error, not a panic.
    SeedOutOfBounds {
        /// The offending node id.
        seed: u32,
        /// Node count of the graph being sampled.
        n_nodes: usize,
    },
}

impl From<uvd_tensor::SampleError> for FitError {
    fn from(e: uvd_tensor::SampleError) -> Self {
        match e {
            uvd_tensor::SampleError::SeedOutOfBounds { seed, n_nodes } => {
                FitError::SeedOutOfBounds { seed, n_nodes }
            }
        }
    }
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::ShapeMismatch {
                what,
                expected_cols,
                got_cols,
            } => write!(
                f,
                "shape mismatch: {what} has {got_cols} columns, model expects {expected_cols}"
            ),
            FitError::NonFiniteLoss => write!(f, "training loss is non-finite"),
            FitError::StageOrder {
                required,
                attempted,
            } => write!(
                f,
                "stage order violation: {attempted} requires {required} to run first"
            ),
            FitError::MissingHierarchy { what } => {
                write!(f, "cluster hierarchy component missing: {what}")
            }
            FitError::MissingInput { what } => {
                write!(f, "required input missing from URG: {what}")
            }
            FitError::SeedOutOfBounds { seed, n_nodes } => {
                write!(f, "sampling seed {seed} out of bounds for {n_nodes} nodes")
            }
        }
    }
}

/// Outcome of a training run.
#[derive(Clone, Copy, Debug, Default)]
pub struct FitReport {
    /// Epochs actually run.
    pub epochs: usize,
    /// Wall-clock training time in seconds.
    pub train_secs: f64,
    /// Final training-loss value.
    pub final_loss: f32,
    /// Set when training aborted or degenerated; `None` on success.
    pub error: Option<FitError>,
}

impl FitReport {
    /// Average seconds per epoch (Table III "training time" metric).
    pub fn secs_per_epoch(&self) -> f64 {
        if self.epochs == 0 {
            0.0
        } else {
            self.train_secs / self.epochs as f64
        }
    }
}

/// A trainable region-wise urban-village detector.
pub trait Detector {
    /// Short display name (Table II row label).
    fn name(&self) -> &'static str;

    /// Train on the labeled regions selected by `train_idx` (indices into
    /// `urg.labeled` / `urg.y`).
    fn fit(&mut self, urg: &Urg, train_idx: &[usize]) -> FitReport;

    /// Predicted urban-village probability for every region (length `urg.n`).
    fn predict(&self, urg: &Urg) -> Vec<f32>;

    /// Total scalar parameter count (Table III "model size").
    fn num_params(&self) -> usize;
}
