//! Regression targets derived from POI distance structure.
//!
//! The paper's Table-IV radius features bucketize shortest distances from a
//! region to key facility types; the accessibility task regresses a
//! continuous version of the same signal from the frozen embeddings: the
//! mean capped-and-normalized proximity to a basket of everyday
//! destinations. Regions deep inside well-served fabric score near 1,
//! periphery and water score near 0.

use uvd_citysim::{City, RadiusType};
use uvd_urg::features::PoiSpatialIndex;

/// Facility basket the accessibility index averages over.
pub const ACCESS_TYPES: [RadiusType; 5] = [
    RadiusType::Hospital,
    RadiusType::School,
    RadiusType::BusStop,
    RadiusType::ShoppingMall,
    RadiusType::Supermarket,
];

/// Distance cap in meters; anything farther counts as "not accessible".
pub const ACCESS_CAP_M: f64 = 3000.0;

/// Per-region accessibility index in `[0, 1]`: the mean over
/// [`ACCESS_TYPES`] of `1 - min(d, cap)/cap` where `d` is the exact
/// nearest-POI distance. Deterministic in the city seed.
pub fn accessibility_targets(city: &City) -> Vec<f32> {
    let index = PoiSpatialIndex::build(city);
    (0..city.n_regions())
        .map(|r| {
            let sum: f64 = ACCESS_TYPES
                .iter()
                .map(|&rt| {
                    let d = index
                        .nearest_radius_poi(r, rt, ACCESS_CAP_M)
                        .unwrap_or(ACCESS_CAP_M);
                    1.0 - d / ACCESS_CAP_M
                })
                .sum();
            (sum / ACCESS_TYPES.len() as f64) as f32
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvd_citysim::CityPreset;

    #[test]
    fn targets_are_bounded_and_deterministic() {
        let city = City::from_config(CityPreset::tiny(), 11);
        let a = accessibility_targets(&city);
        let b = accessibility_targets(&city);
        assert_eq!(a.len(), city.n_regions());
        assert_eq!(a, b, "same city must give bit-identical targets");
        assert!(a.iter().all(|&v| (0.0..=1.0).contains(&v)));
        // A generated city always has some served and some under-served
        // regions; a constant target would make the regression vacuous.
        let (min, max) = a
            .iter()
            .fold((f32::INFINITY, f32::NEG_INFINITY), |(lo, hi), &v| {
                (lo.min(v), hi.max(v))
            });
        assert!(max > min, "targets must vary across regions");
    }
}
