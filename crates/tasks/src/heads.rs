//! The two trained downstream heads. Both consume frozen embedding rows
//! through the record-once/replay tape: the training graph is recorded for
//! epoch 0 and replayed (parameter refresh + in-place recompute, no
//! steady-state allocation) for every following epoch, exactly like the
//! main CMSF stages.

use std::io;

use uvd_citysim::LAND_USE_CLASSES;
use uvd_nn::{Activation, Mlp};
use uvd_tensor::{seeded_rng, Adam, EmbeddingMeta, EmbeddingStore, Graph, Matrix, ParamSet};

/// Parameter-name prefix of the land-use head inside a shared store.
pub const LAND_USE_PREFIX: &str = "task.landuse";
/// Parameter-name prefix of the accessibility head inside a shared store.
pub const ACCESS_PREFIX: &str = "task.access";

/// Shared knobs for both heads. The defaults are sized for "cheap": a few
/// thousand Adam steps over a one-hidden-layer MLP, orders of magnitude
/// below one CMSF pretrain.
#[derive(Clone, Copy, Debug)]
pub struct TaskHeadConfig {
    /// Hidden width of the single hidden layer.
    pub hidden: usize,
    /// Training epochs (full-batch replays over the gathered train rows).
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Init seed (heads are deterministic in this and the input bits).
    pub seed: u64,
}

impl Default for TaskHeadConfig {
    fn default() -> Self {
        TaskHeadConfig {
            hidden: 16,
            epochs: 120,
            lr: 0.05,
            seed: 7,
        }
    }
}

/// Copy the selected rows of `m` into a dense train-input matrix.
fn gather(m: &Matrix, idx: &[usize]) -> Matrix {
    let cols = m.cols();
    let mut data = Vec::with_capacity(idx.len() * cols);
    for &r in idx {
        data.extend_from_slice(m.row(r));
    }
    Matrix::from_vec(idx.len(), cols, data)
}

/// Row-wise argmax with lowest-index tie-break (strict `>` keeps the first
/// maximum, so predictions are deterministic bit-for-bit).
fn argmax_rows(m: &Matrix) -> Vec<u8> {
    (0..m.rows())
        .map(|r| {
            let row = m.row(r);
            let mut best = 0usize;
            for (j, &v) in row.iter().enumerate().skip(1) {
                if v > row[best] {
                    best = j;
                }
            }
            best as u8
        })
        .collect()
}

/// 8-way land-use classifier over frozen embedding rows: one hidden layer,
/// softmax cross-entropy, full-batch Adam.
pub struct LandUseHead {
    mlp: Mlp,
    params: ParamSet,
}

impl LandUseHead {
    pub fn new(d_in: usize, cfg: &TaskHeadConfig) -> Self {
        let mut rng = seeded_rng(cfg.seed);
        let mlp = Mlp::new(
            LAND_USE_PREFIX,
            &[d_in, cfg.hidden, LAND_USE_CLASSES],
            Activation::Tanh,
            &mut rng,
        );
        let mut params = ParamSet::new();
        mlp.collect_params(&mut params);
        LandUseHead { mlp, params }
    }

    pub fn d_in(&self) -> usize {
        self.mlp.layers[0].in_dim()
    }

    pub fn params(&self) -> &ParamSet {
        &self.params
    }

    /// Train on the gathered `train_idx` rows of `emb` against per-region
    /// class labels. Records the tape once, replays per epoch. Returns the
    /// final cross-entropy loss.
    pub fn fit(
        &mut self,
        emb: &Matrix,
        labels: &[u8],
        train_idx: &[usize],
        cfg: &TaskHeadConfig,
    ) -> f32 {
        assert_eq!(emb.rows(), labels.len(), "one label per region");
        assert!(!train_idx.is_empty(), "empty train split");
        let t = train_idx.len();
        let x = gather(emb, train_idx);
        let mut onehot = Matrix::zeros(t, LAND_USE_CLASSES);
        for (i, &r) in train_idx.iter().enumerate() {
            let c = labels[r] as usize;
            assert!(c < LAND_USE_CLASSES, "label {c} out of range");
            onehot.set(i, c, 1.0);
        }

        let mut opt = Adam::new(cfg.lr);
        let mut g = Graph::new();
        let xn = g.constant(x);
        let logits = self.mlp.forward(&mut g, xn);
        let probs = g.softmax_rows(logits, 1.0);
        let lp = g.ln_eps(probs, 1e-7);
        let oh = g.constant(onehot);
        let picked = g.mul(lp, oh);
        let total = g.sum_all(picked);
        let loss = g.scale(total, -1.0 / t as f32);
        let mut last = f32::INFINITY;
        for epoch in 0..cfg.epochs.max(1) {
            if epoch > 0 {
                g.replay();
            }
            last = g.scalar(loss);
            g.backward(loss);
            g.write_grads();
            opt.step(&self.params);
        }
        last
    }

    /// Class probabilities for every embedding row (N×classes, no-grad).
    pub fn probs(&self, emb: &Matrix) -> Matrix {
        let mut g = Graph::inference();
        let x = g.constant(emb.clone());
        let logits = self.mlp.forward(&mut g, x);
        let p = g.softmax_rows(logits, 1.0);
        g.value(p).clone()
    }

    /// Predicted class index per region.
    pub fn predict(&self, emb: &Matrix) -> Vec<u8> {
        argmax_rows(&self.probs(emb))
    }

    /// Capture the head weights into a shared store (next to the
    /// embeddings), stamped with the same provenance metadata.
    pub fn capture(&self, store: &mut EmbeddingStore, meta: &EmbeddingMeta) {
        store.capture_params(&self.params, meta);
    }

    /// Restore the head weights from a shared store (transactional).
    pub fn restore(&mut self, store: &EmbeddingStore) -> io::Result<()> {
        store.restore_params(&self.params)
    }
}

/// Accessibility regressor over frozen embedding rows: one hidden layer,
/// MSE loss, full-batch Adam.
pub struct AccessibilityHead {
    mlp: Mlp,
    params: ParamSet,
}

impl AccessibilityHead {
    pub fn new(d_in: usize, cfg: &TaskHeadConfig) -> Self {
        // Offset seed so the two heads never share init streams.
        let mut rng = seeded_rng(cfg.seed ^ 0xACC0_55ED);
        let mlp = Mlp::new(
            ACCESS_PREFIX,
            &[d_in, cfg.hidden, 1],
            Activation::Tanh,
            &mut rng,
        );
        let mut params = ParamSet::new();
        mlp.collect_params(&mut params);
        AccessibilityHead { mlp, params }
    }

    pub fn d_in(&self) -> usize {
        self.mlp.layers[0].in_dim()
    }

    pub fn params(&self) -> &ParamSet {
        &self.params
    }

    /// Train on the gathered `train_idx` rows of `emb` against the
    /// per-region targets. Returns the final MSE.
    pub fn fit(
        &mut self,
        emb: &Matrix,
        targets: &[f32],
        train_idx: &[usize],
        cfg: &TaskHeadConfig,
    ) -> f32 {
        assert_eq!(emb.rows(), targets.len(), "one target per region");
        assert!(!train_idx.is_empty(), "empty train split");
        let t = train_idx.len();
        let x = gather(emb, train_idx);
        let y: Vec<f32> = train_idx.iter().map(|&r| targets[r]).collect();

        let mut opt = Adam::new(cfg.lr);
        let mut g = Graph::new();
        let xn = g.constant(x);
        let pred = self.mlp.forward(&mut g, xn);
        let yn = g.constant(Matrix::from_vec(t, 1, y));
        let loss = g.mse(pred, yn);
        let mut last = f32::INFINITY;
        for epoch in 0..cfg.epochs.max(1) {
            if epoch > 0 {
                g.replay();
            }
            last = g.scalar(loss);
            g.backward(loss);
            g.write_grads();
            opt.step(&self.params);
        }
        last
    }

    /// Predicted accessibility per region (no-grad forward).
    pub fn predict(&self, emb: &Matrix) -> Vec<f32> {
        let mut g = Graph::inference();
        let x = g.constant(emb.clone());
        let pred = self.mlp.forward(&mut g, x);
        g.value(pred).as_slice().to_vec()
    }

    /// Capture the head weights into a shared store.
    pub fn capture(&self, store: &mut EmbeddingStore, meta: &EmbeddingMeta) {
        store.capture_params(&self.params, meta);
    }

    /// Restore the head weights from a shared store (transactional).
    pub fn restore(&mut self, store: &EmbeddingStore) -> io::Result<()> {
        store.restore_params(&self.params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic embeddings with class-separable structure: class c lives
    /// around a distinct corner of the hypercube.
    fn separable_fixture(n: usize, d: usize) -> (Matrix, Vec<u8>, Vec<f32>) {
        let mut rng = seeded_rng(3);
        let noise = uvd_tensor::init::normal_matrix(n, d, 0.0, 0.05, &mut rng);
        let mut data = Vec::with_capacity(n * d);
        let mut labels = Vec::with_capacity(n);
        let mut targets = Vec::with_capacity(n);
        for i in 0..n {
            let c = i % LAND_USE_CLASSES;
            labels.push(c as u8);
            targets.push(c as f32 / (LAND_USE_CLASSES - 1) as f32);
            for j in 0..d {
                let base = if j % LAND_USE_CLASSES == c { 1.0 } else { 0.0 };
                data.push(base + noise.get(i, j));
            }
        }
        (Matrix::from_vec(n, d, data), labels, targets)
    }

    #[test]
    fn landuse_head_learns_separable_classes() {
        let (emb, labels, _) = separable_fixture(96, 16);
        let cfg = TaskHeadConfig::default();
        let mut head = LandUseHead::new(emb.cols(), &cfg);
        // Labels cycle through the classes, so a half/half split keeps
        // every class visible on both sides.
        let idx: Vec<usize> = (0..emb.rows() / 2).collect();
        let loss = head.fit(&emb, &labels, &idx, &cfg);
        assert!(loss.is_finite());
        let pred = head.predict(&emb);
        let test: Vec<usize> = (emb.rows() / 2..emb.rows()).collect();
        let correct = test.iter().filter(|&&r| pred[r] == labels[r]).count();
        let acc = correct as f64 / test.len() as f64;
        assert!(acc > 0.8, "held-out accuracy {acc} too low");
    }

    #[test]
    fn access_head_regresses_separable_signal() {
        let (emb, _, targets) = separable_fixture(96, 16);
        let cfg = TaskHeadConfig::default();
        let mut head = AccessibilityHead::new(emb.cols(), &cfg);
        let idx: Vec<usize> = (0..emb.rows() / 2).collect();
        head.fit(&emb, &targets, &idx, &cfg);
        let pred = head.predict(&emb);
        let test: Vec<usize> = (emb.rows() / 2..emb.rows()).collect();
        let mse: f64 = test
            .iter()
            .map(|&r| ((pred[r] - targets[r]) as f64).powi(2))
            .sum::<f64>()
            / test.len() as f64;
        assert!(mse < 0.05, "held-out mse {mse} too high");
    }

    #[test]
    fn heads_are_deterministic_in_seed_and_inputs() {
        let (emb, labels, _) = separable_fixture(32, 8);
        let cfg = TaskHeadConfig {
            epochs: 20,
            ..TaskHeadConfig::default()
        };
        let idx: Vec<usize> = (0..emb.rows()).collect();
        let mut a = LandUseHead::new(emb.cols(), &cfg);
        let mut b = LandUseHead::new(emb.cols(), &cfg);
        a.fit(&emb, &labels, &idx, &cfg);
        b.fit(&emb, &labels, &idx, &cfg);
        assert_eq!(
            a.probs(&emb).as_slice(),
            b.probs(&emb).as_slice(),
            "identical runs must be bitwise identical"
        );
    }

    #[test]
    fn capture_restore_roundtrips_bitwise() {
        let (emb, labels, targets) = separable_fixture(32, 8);
        let cfg = TaskHeadConfig {
            epochs: 25,
            ..TaskHeadConfig::default()
        };
        let idx: Vec<usize> = (0..emb.rows()).collect();
        let mut lu = LandUseHead::new(emb.cols(), &cfg);
        lu.fit(&emb, &labels, &idx, &cfg);
        let mut ac = AccessibilityHead::new(emb.cols(), &cfg);
        ac.fit(&emb, &targets, &idx, &cfg);

        let meta = EmbeddingMeta::new("fixture", emb.cols(), 1);
        let mut store = EmbeddingStore::new();
        lu.capture(&mut store, &meta);
        ac.capture(&mut store, &meta);

        let mut lu2 = LandUseHead::new(emb.cols(), &cfg);
        let mut ac2 = AccessibilityHead::new(emb.cols(), &cfg);
        lu2.restore(&store).expect("restore landuse");
        ac2.restore(&store).expect("restore access");
        assert_eq!(lu.probs(&emb).as_slice(), lu2.probs(&emb).as_slice());
        assert_eq!(ac.predict(&emb), ac2.predict(&emb));

        // Wrong-width store must fail without touching the receiver.
        let mut wrong = LandUseHead::new(emb.cols() + 1, &cfg);
        assert!(wrong.restore(&store).is_err());
    }
}
