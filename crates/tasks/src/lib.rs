//! # uvd-tasks
//!
//! Downstream tasks over **frozen** region embeddings — the consumer half
//! of the "pretrain once, serve many tasks" story (ROADMAP; cf. the
//! pretrain-and-prompt direction of GURPP in PAPERS.md). One expensive
//! CMSF pretrain exports the no-grad master-stage representation `x̃` into
//! a persistable [`EmbeddingStore`]; the heads here then train and score
//! *without ever touching the graph encoder again*:
//!
//! * [`LandUseHead`] — 8-way land-use classification against the
//!   generator's latent land-use map ([`uvd_citysim::tasks`]).
//! * [`AccessibilityHead`] — regression of a POI-distance accessibility
//!   index ([`signals::accessibility_targets`]).
//! * [`search::best_region_search`] — mixture-based best-region search:
//!   entropy-scored greedy expansion over the URG adjacency, seeded from
//!   the embedding space (after the MBRS line of work; SNIPPETS.md
//!   `mbrs.py`).
//!
//! Both trained heads follow the repo's record-once/replay-per-epoch tape
//! contract, and both persist their weights *into the same
//! [`EmbeddingStore`] file* as the embeddings they were trained on, so a
//! serving process restores everything from one artifact. Scores computed
//! from a reloaded store are bitwise identical to scores computed from the
//! in-memory embeddings (the format round-trips `f32` exactly and every
//! kernel on the inference path is deterministic); `tests/roundtrip.rs`
//! pins that invariant.
//!
//! ```
//! use uvd_citysim::{City, CityPreset};
//! use uvd_urg::{Detector, Urg, UrgOptions};
//! use cmsf::{Cmsf, CmsfConfig};
//! use uvd_tasks::{LandUseHead, TaskHeadConfig};
//!
//! let city = City::from_config(CityPreset::tiny(), 7);
//! let urg = Urg::build(&city, UrgOptions::default());
//! let train: Vec<usize> = (0..urg.labeled.len()).collect();
//! let mut cfg = CmsfConfig::fast_test();
//! cfg.master_epochs = 4;
//! cfg.slave_epochs = 1;
//! let mut model = Cmsf::new(&urg, cfg);
//! model.fit(&urg, &train);
//!
//! // Pretrain once: export x̃, then train a cheap head on the frozen rows.
//! let mut store = uvd_tensor::EmbeddingStore::new();
//! model.export_embeddings(&urg, "tiny", &mut store);
//! let emb = store.get(&cmsf::embedding_key("tiny")).unwrap().clone();
//! let labels = uvd_citysim::land_use_classes(&city);
//! let head_cfg = TaskHeadConfig { epochs: 5, ..TaskHeadConfig::default() };
//! let mut head = LandUseHead::new(emb.cols(), &head_cfg);
//! let idx: Vec<usize> = (0..emb.rows()).collect();
//! head.fit(&emb, &labels, &idx, &head_cfg);
//! assert_eq!(head.predict(&emb).len(), emb.rows());
//! ```

pub mod heads;
pub mod search;
pub mod signals;

pub use heads::{AccessibilityHead, LandUseHead, TaskHeadConfig};
pub use search::{best_region_search, BestRegion, SearchOptions};
pub use signals::{accessibility_targets, ACCESS_CAP_M, ACCESS_TYPES};

// Re-exported so downstream users of the heads name the store types from
// one place.
pub use uvd_tensor::{EmbeddingMeta, EmbeddingStore};
