//! Mixture-based best-region search (MBRS-style; SNIPPETS.md `mbrs.py`).
//!
//! The reference algorithm grows candidate regions outward from seed
//! points and scores each candidate set by the *mixture* of its keyword
//! distribution — entropy-scored expansion favours areas blending many
//! functions (the classic signature of vibrant mixed-use districts).
//! Here the keyword distribution is the per-region POI category
//! distribution, adjacency is the URG's region graph, and — the twist the
//! frozen store enables — seeds come from the **embedding space** instead
//! of random draws: the similarity of every region to the embedding
//! centroid is computed through one recorded tape replay, the most central
//! region anchors the first seed, and farthest-point sampling over the
//! embedding rows spreads the remaining seeds across distinct
//! neighbourhood types.

use uvd_citysim::{City, PoiCategory};
use uvd_tensor::{Graph, Matrix};
use uvd_urg::features::PoiSpatialIndex;
use uvd_urg::Urg;

/// Knobs for [`best_region_search`].
#[derive(Clone, Copy, Debug)]
pub struct SearchOptions {
    /// Number of embedding-space seeds to expand from.
    pub seeds: usize,
    /// Maximum regions in a candidate set.
    pub max_size: usize,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            seeds: 4,
            max_size: 24,
        }
    }
}

/// The winning candidate set.
#[derive(Clone, Debug, PartialEq)]
pub struct BestRegion {
    /// The seed region the set grew from.
    pub seed: u32,
    /// Member region ids in the order they were added (seed first).
    pub members: Vec<u32>,
    /// Shannon entropy (nats) of the set's aggregate POI category counts.
    pub entropy: f64,
}

/// Shannon entropy (nats) of a count vector; all-zero counts score 0.
fn entropy(counts: &[f64; PoiCategory::COUNT]) -> f64 {
    let total: f64 = counts.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    -counts
        .iter()
        .filter(|&&c| c > 0.0)
        .map(|&c| {
            let p = c / total;
            p * p.ln()
        })
        .sum::<f64>()
}

/// Undirected neighbour lists from the URG's edge pairs.
fn adjacency(n: usize, pairs: &[(u32, u32)]) -> Vec<Vec<u32>> {
    let mut adj = vec![Vec::new(); n];
    for &(a, b) in pairs {
        if a != b {
            adj[a as usize].push(b);
            adj[b as usize].push(a);
        }
    }
    for l in &mut adj {
        l.sort_unstable();
        l.dedup();
    }
    adj
}

/// Squared L2 distance between two embedding rows.
fn dist2(a: &[f32], b: &[f32]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = (x - y) as f64;
            d * d
        })
        .sum()
}

/// Seed selection from the embedding space: similarity of every region to
/// the embedding centroid through one recorded inference tape (the frozen
/// embeddings enter the same replay machinery as every other consumer),
/// then farthest-point sampling for diversity. Fully deterministic.
fn embedding_seeds(emb: &Matrix, k: usize) -> Vec<u32> {
    let (n, d) = emb.shape();
    let mut centroid = vec![0.0f32; d];
    for r in 0..n {
        for (j, &v) in emb.row(r).iter().enumerate() {
            centroid[j] += v;
        }
    }
    for v in &mut centroid {
        *v /= n as f32;
    }
    let mut g = Graph::inference();
    let e = g.constant(emb.clone());
    let c = g.constant(Matrix::from_vec(d, 1, centroid));
    let sim = g.matmul(e, c);
    let sim = g.value(sim).as_slice().to_vec();

    // Anchor: the region most aligned with the centroid (lowest id wins
    // ties via strict `>`).
    let mut anchor = 0usize;
    for (i, &s) in sim.iter().enumerate().skip(1) {
        if s > sim[anchor] {
            anchor = i;
        }
    }
    let mut seeds = vec![anchor as u32];
    // Farthest-point sampling in embedding space for the rest.
    while seeds.len() < k.min(n) {
        let mut best = usize::MAX;
        let mut best_d = -1.0f64;
        for r in 0..n {
            if seeds.iter().any(|&s| s as usize == r) {
                continue;
            }
            let min_d = seeds
                .iter()
                .map(|&s| dist2(emb.row(r), emb.row(s as usize)))
                .fold(f64::INFINITY, f64::min);
            if min_d > best_d {
                best_d = min_d;
                best = r;
            }
        }
        if best == usize::MAX {
            break;
        }
        seeds.push(best as u32);
    }
    seeds
}

/// Grow one candidate set from `seed`: repeatedly annex the frontier
/// region whose POI categories raise the aggregate mixture entropy the
/// most, stopping at `max_size` or when no neighbour improves the score.
fn expand(
    seed: u32,
    adj: &[Vec<u32>],
    counts: &[[f32; PoiCategory::COUNT]],
    max_size: usize,
) -> BestRegion {
    let n = adj.len();
    let mut members = vec![seed];
    let mut in_set = vec![false; n];
    in_set[seed as usize] = true;
    let mut agg = [0.0f64; PoiCategory::COUNT];
    for (j, &c) in counts[seed as usize].iter().enumerate() {
        agg[j] += c as f64;
    }
    let mut score = entropy(&agg);
    while members.len() < max_size.max(1) {
        // Frontier = union of member neighbourhoods not yet in the set.
        let mut best: Option<(u32, f64)> = None;
        for &m in &members {
            for &c in &adj[m as usize] {
                if in_set[c as usize] {
                    continue;
                }
                let mut trial = agg;
                for (j, &v) in counts[c as usize].iter().enumerate() {
                    trial[j] += v as f64;
                }
                let h = entropy(&trial);
                let better = match best {
                    None => true,
                    // Strictly-greater with lowest-id tie-break keeps the
                    // expansion deterministic (total order, exact ties).
                    Some((bc, bh)) => match h.total_cmp(&bh) {
                        std::cmp::Ordering::Greater => true,
                        std::cmp::Ordering::Equal => c < bc,
                        std::cmp::Ordering::Less => false,
                    },
                };
                if better {
                    best = Some((c, h));
                }
            }
        }
        match best {
            Some((c, h)) if h > score => {
                in_set[c as usize] = true;
                members.push(c);
                for (j, &v) in counts[c as usize].iter().enumerate() {
                    agg[j] += v as f64;
                }
                score = h;
            }
            _ => break,
        }
    }
    BestRegion {
        seed,
        members,
        entropy: score,
    }
}

/// Find the connected region set with the richest POI mixture: seeds from
/// the embedding space, entropy-scored greedy expansion over the URG
/// adjacency, best seed wins (ties go to the earlier seed).
///
/// `emb` must hold one row per region of `urg`/`city`.
pub fn best_region_search(
    emb: &Matrix,
    city: &City,
    urg: &Urg,
    opts: &SearchOptions,
) -> BestRegion {
    assert_eq!(emb.rows(), urg.n, "one embedding row per region");
    assert_eq!(city.n_regions(), urg.n, "city and URG must agree");
    let counts = PoiSpatialIndex::build(city).category_counts().to_vec();
    let adj = adjacency(urg.n, &urg.pairs);
    let mut best: Option<BestRegion> = None;
    for seed in embedding_seeds(emb, opts.seeds.max(1)) {
        let cand = expand(seed, &adj, &counts, opts.max_size);
        let take = match &best {
            None => true,
            Some(b) => cand.entropy > b.entropy,
        };
        if take {
            best = Some(cand);
        }
    }
    best.expect("at least one seed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvd_citysim::CityPreset;
    use uvd_urg::UrgOptions;

    fn fixture() -> (City, Urg, Matrix) {
        let city = City::from_config(CityPreset::tiny(), 13);
        let urg = Urg::build(&city, UrgOptions::default());
        // A deterministic stand-in embedding (the search only assumes one
        // row per region): POI features work fine.
        let emb = urg.x_poi.clone();
        (city, urg, emb)
    }

    #[test]
    fn search_is_deterministic_and_connected() {
        let (city, urg, emb) = fixture();
        let opts = SearchOptions::default();
        let a = best_region_search(&emb, &city, &urg, &opts);
        let b = best_region_search(&emb, &city, &urg, &opts);
        assert_eq!(a, b, "same inputs must give the same region");
        assert!(!a.members.is_empty());
        assert!(a.members.len() <= opts.max_size);
        assert!(a.entropy >= 0.0);

        // Connectivity: every member after the seed must neighbour an
        // earlier member.
        let adj = adjacency(urg.n, &urg.pairs);
        for (i, &m) in a.members.iter().enumerate().skip(1) {
            let earlier = &a.members[..i];
            assert!(
                adj[m as usize].iter().any(|c| earlier.contains(c)),
                "member {m} not connected to the growing set"
            );
        }
    }

    #[test]
    fn expansion_beats_single_seed_entropy() {
        let (city, urg, emb) = fixture();
        let opts = SearchOptions::default();
        let found = best_region_search(&emb, &city, &urg, &opts);
        let counts = PoiSpatialIndex::build(&city).category_counts().to_vec();
        let mut agg = [0.0f64; PoiCategory::COUNT];
        for (j, &c) in counts[found.seed as usize].iter().enumerate() {
            agg[j] += c as f64;
        }
        assert!(
            found.entropy >= entropy(&agg),
            "expansion must never lower the mixture entropy"
        );
    }

    #[test]
    fn seeds_are_diverse() {
        let (_, _, emb) = fixture();
        let seeds = embedding_seeds(&emb, 4);
        assert_eq!(seeds.len(), 4);
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4, "seeds must be distinct");
    }
}
