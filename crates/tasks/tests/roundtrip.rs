//! The acceptance invariant for the embedding store: task scores computed
//! from a **reloaded** store file are bitwise identical to scores computed
//! from the in-memory embeddings. One real (tiny) CMSF pretrain feeds all
//! three downstream tasks through a save → load cycle.

use cmsf::{embedding_key, Cmsf, CmsfConfig};
use uvd_citysim::{land_use_classes, City, CityPreset};
use uvd_tasks::{
    accessibility_targets, best_region_search, AccessibilityHead, EmbeddingStore, LandUseHead,
    SearchOptions, TaskHeadConfig,
};
use uvd_urg::{Detector, Urg, UrgOptions};

#[test]
fn reloaded_store_scores_are_bitwise_identical() {
    let city = City::from_config(CityPreset::tiny(), 23);
    let urg = Urg::build(&city, UrgOptions::default());
    let train: Vec<usize> = (0..urg.labeled.len()).collect();
    let mut cfg = CmsfConfig::fast_test();
    cfg.master_epochs = 6;
    cfg.slave_epochs = 2;
    let mut model = Cmsf::new(&urg, cfg);
    model.fit(&urg, &train);

    // Pretrain once: frozen embeddings + both trained heads go into ONE
    // store artifact.
    let mut store = EmbeddingStore::new();
    model.export_embeddings(&urg, "tiny", &mut store);
    let emb = store.get(&embedding_key("tiny")).unwrap().clone();
    let emb_meta = store.meta(&embedding_key("tiny")).unwrap().clone();

    let head_cfg = TaskHeadConfig {
        epochs: 40,
        ..TaskHeadConfig::default()
    };
    let labels = land_use_classes(&city);
    let targets = accessibility_targets(&city);
    let idx: Vec<usize> = (0..urg.n).collect();
    let mut lu = LandUseHead::new(emb.cols(), &head_cfg);
    lu.fit(&emb, &labels, &idx, &head_cfg);
    let mut ac = AccessibilityHead::new(emb.cols(), &head_cfg);
    ac.fit(&emb, &targets, &idx, &head_cfg);
    lu.capture(&mut store, &emb_meta);
    ac.capture(&mut store, &emb_meta);

    // In-memory scores, before any file touches anything.
    let lu_probs = lu.probs(&emb);
    let lu_pred = lu.predict(&emb);
    let ac_pred = ac.predict(&emb);
    let opts = SearchOptions::default();
    let region = best_region_search(&emb, &city, &urg, &opts);

    // Save → load → restore fresh heads from the reloaded artifact.
    let dir = std::env::temp_dir().join("uvd_tasks_roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("store_{}.uvdt2", std::process::id()));
    store.save(&path).expect("save store");
    let reloaded = EmbeddingStore::load(&path).expect("load store");
    std::fs::remove_file(&path).ok();

    assert_eq!(reloaded, store, "store must round-trip exactly");
    let emb2 = reloaded.get(&embedding_key("tiny")).unwrap().clone();
    assert_eq!(
        emb.as_slice(),
        emb2.as_slice(),
        "embedding bits must survive the file"
    );
    let meta2 = reloaded.meta(&embedding_key("tiny")).unwrap();
    assert_eq!(meta2.city, "tiny");
    assert_eq!(meta2.dim as usize, emb.cols());

    let mut lu2 = LandUseHead::new(emb2.cols(), &head_cfg);
    let mut ac2 = AccessibilityHead::new(emb2.cols(), &head_cfg);
    lu2.restore(&reloaded).expect("restore landuse head");
    ac2.restore(&reloaded).expect("restore access head");

    // The acceptance criterion: reloaded-store scores == in-memory scores,
    // bit for bit.
    assert_eq!(lu_probs.as_slice(), lu2.probs(&emb2).as_slice());
    assert_eq!(lu_pred, lu2.predict(&emb2));
    assert_eq!(ac_pred, ac2.predict(&emb2));
    let region2 = best_region_search(&emb2, &city, &urg, &opts);
    assert_eq!(region, region2, "search must be stable across save/load");
}
