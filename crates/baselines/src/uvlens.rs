//! UVLens baseline (Appendix I-A): image-only CNN detector. Histogram
//! equalization preprocessing, a small conv backbone over the 32×32 region
//! tiles, and a stack of fully connected layers for the final prediction
//! (the paper's adaptation drops RPN/ROIPooling since regions are fixed
//! grids; bike-sharing data is unavailable to them as well as to us).

use crate::common::{bce_vectors, BaselineConfig};
use std::time::Instant;
use uvd_citysim::IMG_SIZE;
use uvd_nn::{histogram_equalize, Activation, ConvBackbone, ConvBlock, Mlp};
use uvd_tensor::init::{derive_seed, seeded_rng};
use uvd_tensor::{Adam, Graph, Matrix, ParamSet};
use uvd_urg::{Detector, FitError, FitReport, Urg};

/// Batch size for inference over all regions (keeps im2col memory bounded).
const PREDICT_BATCH: usize = 256;

pub struct UvlensBaseline {
    cfg: BaselineConfig,
    backbone: ConvBackbone,
    head: Mlp,
    params: ParamSet,
}

impl UvlensBaseline {
    pub fn new(_urg: &Urg, cfg: BaselineConfig) -> Self {
        let mut rng = seeded_rng(derive_seed(cfg.seed, 0x07E5));
        // Stride-2 first conv keeps the single-core budget in check; the FC
        // stack mirrors the paper's 4096-4096-128-64 head at reduced scale.
        let backbone = ConvBackbone {
            blocks: vec![
                ConvBlock::with_stride("uvlens.c0", 3, 8, IMG_SIZE, 2, &mut rng),
                ConvBlock::with_stride("uvlens.c1", 8, 16, IMG_SIZE / 4, 1, &mut rng),
            ],
        };
        let flat = backbone.out_len();
        let head = Mlp::new("uvlens.fc", &[flat, 128, 64, 1], Activation::Relu, &mut rng);
        let mut params = ParamSet::new();
        backbone.collect_params(&mut params);
        head.collect_params(&mut params);
        UvlensBaseline {
            cfg,
            backbone,
            head,
            params,
        }
    }

    fn forward_probs(&self, images: &Matrix) -> Vec<f32> {
        let mut out = Vec::with_capacity(images.rows());
        let mut start = 0;
        while start < images.rows() {
            let end = (start + PREDICT_BATCH).min(images.rows());
            let rows: Vec<u32> = (start as u32..end as u32).collect();
            let batch = images.gather_rows(&rows);
            let mut g = Graph::inference();
            let x = g.constant(batch);
            let h = self.backbone.forward(&mut g, x);
            let z = self.head.forward(&mut g, h);
            let p = g.sigmoid(z);
            out.extend_from_slice(g.value(p).as_slice());
            start = end;
        }
        out
    }
}

impl Detector for UvlensBaseline {
    fn name(&self) -> &'static str {
        "UVLens"
    }

    fn fit(&mut self, urg: &Urg, train_idx: &[usize]) -> FitReport {
        let start = Instant::now();
        let Some(raw) = urg.raw_images.as_ref() else {
            // Image-only detector on a graph built without raw imagery:
            // a typed failure the runner can attribute, not a panic.
            return FitReport {
                error: Some(FitError::MissingInput { what: "raw_images" }),
                ..FitReport::default()
            };
        };
        let rows: Vec<u32> = train_idx.iter().map(|&i| urg.labeled[i]).collect();
        let batch = histogram_equalize(&raw.gather_rows(&rows));
        let (_, targets, weights) = bce_vectors(urg, train_idx);
        let mut opt = Adam::new(self.cfg.lr);
        let mut last = 0.0;
        let mut epochs_run = 0;
        let mut error = None;
        // Record the tape once, replay across epochs (conv backward still
        // allocates internally; see DESIGN.md §7).
        let mut g = Graph::new();
        let x = g.constant(batch);
        let h = self.backbone.forward(&mut g, x);
        let z = self.head.forward(&mut g, h);
        let loss = g.bce_with_logits(z, targets, weights);
        for epoch in 0..self.cfg.epochs {
            if epoch > 0 {
                g.replay();
            }
            last = g.scalar(loss);
            epochs_run = epoch + 1;
            if !last.is_finite() {
                error = Some(FitError::NonFiniteLoss);
                break;
            }
            g.backward(loss);
            g.write_grads();
            self.params.clip_grad_norm(self.cfg.grad_clip);
            opt.step(&self.params);
            opt.decay(self.cfg.lr_decay);
        }
        FitReport {
            epochs: epochs_run,
            train_secs: start.elapsed().as_secs_f64(),
            final_loss: last,
            error,
        }
    }

    fn predict(&self, urg: &Urg) -> Vec<f32> {
        match urg.raw_images.as_ref() {
            Some(raw) => self.forward_probs(&histogram_equalize(raw)),
            // No imagery to score: NaN is the honest answer, and the eval
            // runner turns it into a per-fold Predict failure.
            None => vec![f32::NAN; urg.n],
        }
    }

    fn num_params(&self) -> usize {
        self.params.num_scalars()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvd_citysim::{City, CityPreset};
    use uvd_urg::UrgOptions;

    #[test]
    fn uvlens_trains_and_predicts() {
        let city = City::from_config(CityPreset::tiny(), 9);
        let urg = Urg::build(&city, UrgOptions::default());
        let train: Vec<usize> = (0..urg.labeled.len()).collect();
        let mut cfg = BaselineConfig::fast_test();
        cfg.epochs = 3;
        let mut model = UvlensBaseline::new(&urg, cfg);
        let r = model.fit(&urg, &train);
        assert!(r.final_loss.is_finite());
        let p = model.predict(&urg);
        assert_eq!(p.len(), urg.n);
        assert!(p.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn missing_raw_images_is_a_typed_error_not_a_panic() {
        let city = City::from_config(CityPreset::tiny(), 14);
        let urg = Urg::build(&city, UrgOptions::no_image());
        let train: Vec<usize> = (0..urg.labeled.len()).collect();
        let mut model = UvlensBaseline::new(&urg, BaselineConfig::fast_test());
        let r = model.fit(&urg, &train);
        assert_eq!(r.error, Some(FitError::MissingInput { what: "raw_images" }));
        let p = model.predict(&urg);
        assert_eq!(p.len(), urg.n);
        assert!(p.iter().all(|v| v.is_nan()));
    }

    #[test]
    fn uvlens_is_heavier_than_typical_mlp() {
        // Table III rank ordering: image CNNs carry the largest models among
        // the scaled baselines.
        let city = City::from_config(CityPreset::tiny(), 10);
        let urg = Urg::build(&city, UrgOptions::default());
        let uvlens = UvlensBaseline::new(&urg, BaselineConfig::default());
        let mlp = crate::mlp::MlpBaseline::new(&urg, BaselineConfig::default());
        assert!(uvlens.num_params() > mlp.num_params());
    }
}
