//! MUVFCN baseline (Appendix I-A): fully convolutional urban-village mapper.
//! A conv backbone produces feature maps whose spatial average pooling
//! yields a compact vector (32-d, as in the paper's FCN-8s adaptation)
//! classified by a logistic regression.

use crate::common::{avg_pool_matrix, bce_vectors, BaselineConfig};
use std::time::Instant;
use uvd_citysim::IMG_SIZE;
use uvd_nn::{ConvBackbone, ConvBlock, Linear};
use uvd_tensor::init::{derive_seed, seeded_rng};
use uvd_tensor::{Adam, Graph, Matrix, ParamSet};
use uvd_urg::{Detector, FitError, FitReport, Urg};

const PREDICT_BATCH: usize = 256;
/// Channels of the final feature map (the paper pools to a 32-d vector).
const POOLED_DIM: usize = 32;

pub struct MuvfcnBaseline {
    cfg: BaselineConfig,
    backbone: ConvBackbone,
    pool: Matrix,
    clf: Linear,
    params: ParamSet,
}

impl MuvfcnBaseline {
    pub fn new(_urg: &Urg, cfg: BaselineConfig) -> Self {
        let mut rng = seeded_rng(derive_seed(cfg.seed, 0x3FC2));
        let backbone = ConvBackbone {
            blocks: vec![
                ConvBlock::with_stride("muvfcn.c0", 3, 12, IMG_SIZE, 2, &mut rng),
                ConvBlock::with_stride("muvfcn.c1", 12, POOLED_DIM, IMG_SIZE / 4, 1, &mut rng),
            ],
        };
        let hw = backbone.out_len() / POOLED_DIM;
        let pool = avg_pool_matrix(POOLED_DIM, hw);
        let clf = Linear::new("muvfcn.clf", POOLED_DIM, 1, &mut rng);
        let mut params = ParamSet::new();
        backbone.collect_params(&mut params);
        clf.collect_params(&mut params);
        MuvfcnBaseline {
            cfg,
            backbone,
            pool,
            clf,
            params,
        }
    }

    fn forward_probs(&self, images: &Matrix) -> Vec<f32> {
        let mut out = Vec::with_capacity(images.rows());
        let mut start = 0;
        while start < images.rows() {
            let end = (start + PREDICT_BATCH).min(images.rows());
            let rows: Vec<u32> = (start as u32..end as u32).collect();
            let batch = images.gather_rows(&rows);
            let mut g = Graph::inference();
            let x = g.constant(batch);
            let h = self.backbone.forward(&mut g, x);
            let pool = g.constant(self.pool.clone());
            let pooled = g.matmul(h, pool);
            let z = self.clf.forward(&mut g, pooled);
            let p = g.sigmoid(z);
            out.extend_from_slice(g.value(p).as_slice());
            start = end;
        }
        out
    }
}

impl Detector for MuvfcnBaseline {
    fn name(&self) -> &'static str {
        "MUVFCN"
    }

    fn fit(&mut self, urg: &Urg, train_idx: &[usize]) -> FitReport {
        let start = Instant::now();
        let Some(raw) = urg.raw_images.as_ref() else {
            // Image-only detector on a graph built without raw imagery:
            // a typed failure the runner can attribute, not a panic.
            return FitReport {
                error: Some(FitError::MissingInput { what: "raw_images" }),
                ..FitReport::default()
            };
        };
        let rows: Vec<u32> = train_idx.iter().map(|&i| urg.labeled[i]).collect();
        let batch = raw.gather_rows(&rows);
        let (_, targets, weights) = bce_vectors(urg, train_idx);
        let mut opt = Adam::new(self.cfg.lr);
        let mut last = 0.0;
        let mut epochs_run = 0;
        let mut error = None;
        // Record the tape once, replay across epochs (conv backward still
        // allocates internally; see DESIGN.md §7).
        let mut g = Graph::new();
        let x = g.constant(batch);
        let h = self.backbone.forward(&mut g, x);
        let pool = g.constant(self.pool.clone());
        let pooled = g.matmul(h, pool);
        let z = self.clf.forward(&mut g, pooled);
        let loss = g.bce_with_logits(z, targets, weights);
        for epoch in 0..self.cfg.epochs {
            if epoch > 0 {
                g.replay();
            }
            last = g.scalar(loss);
            epochs_run = epoch + 1;
            if !last.is_finite() {
                error = Some(FitError::NonFiniteLoss);
                break;
            }
            g.backward(loss);
            g.write_grads();
            self.params.clip_grad_norm(self.cfg.grad_clip);
            opt.step(&self.params);
            opt.decay(self.cfg.lr_decay);
        }
        FitReport {
            epochs: epochs_run,
            train_secs: start.elapsed().as_secs_f64(),
            final_loss: last,
            error,
        }
    }

    fn predict(&self, urg: &Urg) -> Vec<f32> {
        match urg.raw_images.as_ref() {
            Some(raw) => self.forward_probs(raw),
            // No imagery to score: NaN is the honest answer, and the eval
            // runner turns it into a per-fold Predict failure.
            None => vec![f32::NAN; urg.n],
        }
    }

    fn num_params(&self) -> usize {
        self.params.num_scalars()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvd_citysim::{City, CityPreset};
    use uvd_urg::UrgOptions;

    #[test]
    fn muvfcn_trains_and_predicts() {
        let city = City::from_config(CityPreset::tiny(), 11);
        let urg = Urg::build(&city, UrgOptions::default());
        let train: Vec<usize> = (0..urg.labeled.len()).collect();
        let mut cfg = BaselineConfig::fast_test();
        cfg.epochs = 3;
        let mut model = MuvfcnBaseline::new(&urg, cfg);
        let r = model.fit(&urg, &train);
        assert!(r.final_loss.is_finite());
        let p = model.predict(&urg);
        assert_eq!(p.len(), urg.n);
    }

    #[test]
    fn missing_raw_images_is_a_typed_error_not_a_panic() {
        let city = City::from_config(CityPreset::tiny(), 13);
        let urg = Urg::build(&city, UrgOptions::no_image());
        let train: Vec<usize> = (0..urg.labeled.len()).collect();
        let mut model = MuvfcnBaseline::new(&urg, BaselineConfig::fast_test());
        let r = model.fit(&urg, &train);
        assert_eq!(r.error, Some(FitError::MissingInput { what: "raw_images" }));
        let p = model.predict(&urg);
        assert_eq!(p.len(), urg.n);
        assert!(p.iter().all(|v| v.is_nan()));
    }

    #[test]
    fn pooled_dim_is_32() {
        let city = City::from_config(CityPreset::tiny(), 12);
        let urg = Urg::build(&city, UrgOptions::default());
        let model = MuvfcnBaseline::new(&urg, BaselineConfig::fast_test());
        assert_eq!(model.pool.cols(), 32);
    }
}
