//! ImGAGN baseline (Appendix I-A): imbalanced network embedding via a
//! generative adversarial setup. A 3-layer MLP generator emits mixture
//! weights over the minority (urban-village) nodes; synthetic minority
//! samples are convex combinations of real minority features. The
//! discriminator scores both real/fake and UV/non-UV.
//!
//! Deviation from the original (documented in DESIGN.md): the original
//! attaches synthetic nodes to the graph and runs a GCN discriminator over
//! the augmented topology; we feed synthetic samples to a feature-space
//! discriminator instead, which preserves the class-rebalancing mechanism
//! (the part the paper's analysis attributes ImGAGN's behaviour to) without
//! rebuilding CSR structures every generator step.

use crate::common::{bce_vectors, gather_batch, BaselineConfig};
use std::sync::Arc;
use std::time::Instant;
use uvd_nn::{Activation, Linear, Mlp};
use uvd_tensor::init::{derive_seed, normal_matrix, seeded_rng};
use uvd_tensor::{Adam, Graph, Matrix, NodeId, ParamSet, Rng64};
use uvd_urg::{Detector, FitError, FitReport, Urg};

/// Latent noise dimensionality for the generator.
const NOISE_DIM: usize = 16;
/// Discriminator steps per generator step (scaled-down analogue of the
/// paper's λ₂ = 100 discriminator schedule).
const D_STEPS: usize = 4;

pub struct ImgagnBaseline {
    cfg: BaselineConfig,
    generator: Mlp,
    disc_body: Mlp,
    head_real_fake: Linear,
    head_uv: Linear,
    g_params: ParamSet,
    d_params: ParamSet,
    rng: Rng64,
    /// Minority-node count the generator was sized for.
    n_minority: usize,
}

impl ImgagnBaseline {
    /// The generator's output width must match the (maximum expected)
    /// minority count; it is sized from the URG's positive label count.
    pub fn new(urg: &Urg, cfg: BaselineConfig) -> Self {
        let mut rng = seeded_rng(derive_seed(cfg.seed, 0x16A6));
        let n_minority = urg.y.iter().filter(|&&v| v > 0.5).count().max(1);
        let d = urg.feature_dim();
        let h = cfg.hidden;
        // 3-layer MLP generator (paper recommendation).
        let generator = Mlp::new(
            "imgagn.gen",
            &[NOISE_DIM, h, h, n_minority],
            Activation::Relu,
            &mut rng,
        );
        let disc_body = Mlp::new("imgagn.disc", &[d, h, h], Activation::Relu, &mut rng);
        let head_real_fake = Linear::new("imgagn.rf", h, 1, &mut rng);
        let head_uv = Linear::new("imgagn.uv", h, 1, &mut rng);
        let mut g_params = ParamSet::new();
        generator.collect_params(&mut g_params);
        let mut d_params = ParamSet::new();
        disc_body.collect_params(&mut d_params);
        head_real_fake.collect_params(&mut d_params);
        head_uv.collect_params(&mut d_params);
        ImgagnBaseline {
            cfg,
            generator,
            disc_body,
            head_real_fake,
            head_uv,
            g_params,
            d_params,
            rng,
            n_minority,
        }
    }

    /// Combined feature matrix (POI ⊕ image) of all regions.
    fn features(urg: &Urg) -> Matrix {
        if urg.has_image() {
            urg.x_poi.concat_cols(&urg.x_img)
        } else {
            urg.x_poi.clone()
        }
    }

    /// Generate `m` synthetic minority samples: softmax mixture weights over
    /// the real minority features.
    fn generate(&self, g: &mut Graph, minority: &Matrix, m: usize, rng: &mut Rng64) -> NodeId {
        let noise = g.constant(normal_matrix(m, NOISE_DIM, 0.0, 1.0, rng));
        let w_logits = self.generator.forward(g, noise);
        // Mixture over the minority nodes this generator was sized for.
        let w = g.softmax_rows(w_logits, 1.0);
        let x_min = g.constant(minority.clone());
        g.matmul(w, x_min)
    }

    fn disc_logits(&self, g: &mut Graph, x: NodeId) -> (NodeId, NodeId) {
        let h = self.disc_body.forward(g, x);
        let h = Activation::Relu.apply(g, h);
        (
            self.head_real_fake.forward(g, h),
            self.head_uv.forward(g, h),
        )
    }
}

impl Detector for ImgagnBaseline {
    fn name(&self) -> &'static str {
        "ImGAGN"
    }

    fn fit(&mut self, urg: &Urg, train_idx: &[usize]) -> FitReport {
        let start = Instant::now();
        let mut rng = self.rng.clone();
        let feats = Self::features(urg);
        let (_, targets, weights) = bce_vectors(urg, train_idx);
        let real_batch = gather_batch(&feats, urg, train_idx);

        // Real minority features (training positives only, padded by cycling
        // if fewer than the generator width).
        let pos_rows: Vec<u32> = train_idx
            .iter()
            .filter(|&&i| urg.y[i] > 0.5)
            .map(|&i| urg.labeled[i])
            .collect();
        let minority = if pos_rows.is_empty() {
            Matrix::zeros(self.n_minority, feats.cols())
        } else {
            let rows: Vec<u32> = (0..self.n_minority)
                .map(|i| pos_rows[i % pos_rows.len()])
                .collect();
            feats.gather_rows(&rows)
        };
        let n_real = train_idx.len();
        let n_pos = pos_rows.len();
        // λ₁ = 1.0: generate enough fakes to balance the classes.
        let n_fake = (n_real - n_pos).saturating_sub(n_pos).max(4);

        let mut opt_d = Adam::new(self.cfg.lr);
        let mut opt_g = Adam::new(self.cfg.lr);
        let mut last = 0.0;
        let mut epochs_run = 0;
        let mut error = None;
        let ones = |n: usize| Arc::new(vec![1.0f32; n]);
        // Adversarial training draws fresh generator noise every step, so
        // each tape is recorded fresh; only prediction uses the no-grad path.
        'outer: for _ in 0..self.cfg.epochs {
            epochs_run += 1;
            // ---- discriminator steps ----
            for _ in 0..D_STEPS {
                // Fakes as constants: recompute generation and detach.
                let fake_const = {
                    let mut gg = Graph::inference();
                    let f = self.generate(&mut gg, &minority, n_fake, &mut rng);
                    gg.value(f).clone()
                };
                let mut g = Graph::new();
                let xr = g.constant(real_batch.clone());
                let (rf_r, uv_r) = self.disc_logits(&mut g, xr);
                let xf = g.constant(fake_const);
                let (rf_f, uv_f) = self.disc_logits(&mut g, xf);
                // Real/fake discrimination.
                let l_rf_r = g.bce_with_logits(rf_r, ones(n_real), weights.clone());
                let l_rf_f = g.bce_with_logits(rf_f, Arc::new(vec![0.0; n_fake]), ones(n_fake));
                // UV classification: real labels + fakes treated as minority.
                let l_uv_r = g.bce_with_logits(uv_r, targets.clone(), weights.clone());
                let l_uv_f = g.bce_with_logits(uv_f, ones(n_fake), ones(n_fake));
                let a = g.add(l_rf_r, l_rf_f);
                let b = g.add(l_uv_r, l_uv_f);
                let loss = g.add(a, b);
                last = g.scalar(loss);
                if !last.is_finite() {
                    error = Some(FitError::NonFiniteLoss);
                    break 'outer;
                }
                g.backward(loss);
                g.write_grads();
                self.d_params.clip_grad_norm(self.cfg.grad_clip);
                opt_d.step(&self.d_params);
            }
            // ---- generator step: fool the real/fake head ----
            let mut g = Graph::new();
            let xf = self.generate(&mut g, &minority, n_fake, &mut rng);
            let (rf_f, _) = self.disc_logits(&mut g, xf);
            let loss = g.bce_with_logits(rf_f, ones(n_fake), ones(n_fake));
            if !g.scalar(loss).is_finite() {
                error = Some(FitError::NonFiniteLoss);
                break;
            }
            g.backward(loss);
            g.write_grads();
            // Only the generator learns in this step.
            self.d_params.zero_grads();
            self.g_params.clip_grad_norm(self.cfg.grad_clip);
            opt_g.step(&self.g_params);
            opt_d.decay(self.cfg.lr_decay);
            opt_g.decay(self.cfg.lr_decay);
        }
        self.rng = rng;
        FitReport {
            epochs: epochs_run,
            train_secs: start.elapsed().as_secs_f64(),
            final_loss: last,
            error,
        }
    }

    fn predict(&self, urg: &Urg) -> Vec<f32> {
        let feats = Self::features(urg);
        let mut g = Graph::inference();
        let x = g.constant(feats);
        let (_, uv) = self.disc_logits(&mut g, x);
        let p = g.sigmoid(uv);
        g.value(p).as_slice().to_vec()
    }

    fn num_params(&self) -> usize {
        self.g_params.num_scalars() + self.d_params.num_scalars()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvd_citysim::{City, CityPreset};
    use uvd_urg::UrgOptions;

    fn setup(seed: u64) -> (Urg, Vec<usize>) {
        let city = City::from_config(CityPreset::tiny(), seed);
        let urg = Urg::build(&city, UrgOptions::default());
        let train: Vec<usize> = (0..urg.labeled.len()).collect();
        (urg, train)
    }

    #[test]
    fn imgagn_trains_and_predicts() {
        let (urg, train) = setup(6);
        let mut cfg = BaselineConfig::fast_test();
        cfg.epochs = 4;
        let mut model = ImgagnBaseline::new(&urg, cfg);
        let r = model.fit(&urg, &train);
        assert!(r.final_loss.is_finite());
        let p = model.predict(&urg);
        assert_eq!(p.len(), urg.n);
    }

    #[test]
    fn generator_sized_to_minority_count() {
        let (urg, _) = setup(7);
        let model = ImgagnBaseline::new(&urg, BaselineConfig::fast_test());
        let expected = urg.y.iter().filter(|&&v| v > 0.5).count();
        assert_eq!(model.n_minority, expected);
    }

    #[test]
    fn fit_with_no_positives_does_not_panic() {
        // Degenerate split: all-negative training set.
        let (urg, _) = setup(8);
        let negatives: Vec<usize> = (0..urg.labeled.len()).filter(|&i| urg.y[i] < 0.5).collect();
        let mut cfg = BaselineConfig::fast_test();
        cfg.epochs = 2;
        let mut model = ImgagnBaseline::new(&urg, cfg);
        let r = model.fit(&urg, &negatives);
        assert!(r.final_loss.is_finite());
    }
}
