//! MLP baseline (Appendix I-A): two fully connected layers per modality,
//! concat fusion, LR classifier. No graph structure is used.

use crate::common::{bce_vectors, gather_batch, BaselineConfig};
use std::time::Instant;
use uvd_nn::{Activation, Linear, Mlp};
use uvd_tensor::init::{derive_seed, seeded_rng};
use uvd_tensor::{Adam, Graph, NodeId, ParamSet};
use uvd_urg::{Detector, FitError, FitReport, Urg};

pub struct MlpBaseline {
    cfg: BaselineConfig,
    poi_enc: Mlp,
    img_enc: Option<Mlp>,
    clf: Linear,
    params: ParamSet,
}

impl MlpBaseline {
    pub fn new(urg: &Urg, cfg: BaselineConfig) -> Self {
        let mut rng = seeded_rng(derive_seed(cfg.seed, 0x31B0));
        let h = cfg.hidden;
        let poi_enc = Mlp::new(
            "mlp.poi",
            &[urg.x_poi.cols(), h, h],
            Activation::Relu,
            &mut rng,
        );
        let img_enc = urg.has_image().then(|| {
            Mlp::new(
                "mlp.img",
                &[urg.x_img.cols(), h, h],
                Activation::Relu,
                &mut rng,
            )
        });
        let fused = if img_enc.is_some() { 2 * h } else { h };
        let clf = Linear::new("mlp.clf", fused, 1, &mut rng);
        let mut params = ParamSet::new();
        poi_enc.collect_params(&mut params);
        if let Some(e) = &img_enc {
            e.collect_params(&mut params);
        }
        clf.collect_params(&mut params);
        MlpBaseline {
            cfg,
            poi_enc,
            img_enc,
            clf,
            params,
        }
    }

    fn logits(&self, g: &mut Graph, x_poi: NodeId, x_img: Option<NodeId>) -> NodeId {
        let hp = self.poi_enc.forward(g, x_poi);
        let hp = Activation::Relu.apply(g, hp);
        let fused = match (&self.img_enc, x_img) {
            (Some(enc), Some(xi)) => {
                let hi = enc.forward(g, xi);
                let hi = Activation::Relu.apply(g, hi);
                g.concat_cols(hp, hi)
            }
            _ => hp,
        };
        self.clf.forward(g, fused)
    }
}

impl Detector for MlpBaseline {
    fn name(&self) -> &'static str {
        "MLP"
    }

    fn fit(&mut self, urg: &Urg, train_idx: &[usize]) -> FitReport {
        let start = Instant::now();
        let (_, targets, weights) = bce_vectors(urg, train_idx);
        // The MLP ignores graph structure, so we can train directly on the
        // gathered labeled batch.
        let xp = gather_batch(&urg.x_poi, urg, train_idx);
        let xi = urg
            .has_image()
            .then(|| gather_batch(&urg.x_img, urg, train_idx));
        let mut opt = Adam::new(self.cfg.lr);
        let mut last = 0.0;
        let mut epochs_run = 0;
        let mut error = None;
        // Record the tape once, replay across epochs.
        let mut g = Graph::new();
        let xp_n = g.constant(xp);
        let xi_n = xi.map(|m| g.constant(m));
        let z = self.logits(&mut g, xp_n, xi_n);
        let loss = g.bce_with_logits(z, targets, weights);
        for epoch in 0..self.cfg.epochs {
            if epoch > 0 {
                g.replay();
            }
            last = g.scalar(loss);
            epochs_run = epoch + 1;
            if !last.is_finite() {
                // Abort before stepping on garbage gradients; the runner
                // degrades this fold instead of panicking.
                error = Some(FitError::NonFiniteLoss);
                break;
            }
            g.backward(loss);
            g.write_grads();
            self.params.clip_grad_norm(self.cfg.grad_clip);
            opt.step(&self.params);
            opt.decay(self.cfg.lr_decay);
        }
        FitReport {
            epochs: epochs_run,
            train_secs: start.elapsed().as_secs_f64(),
            final_loss: last,
            error,
        }
    }

    fn predict(&self, urg: &Urg) -> Vec<f32> {
        let mut g = Graph::inference();
        let xp = g.constant(urg.x_poi.clone());
        let xi = urg.has_image().then(|| g.constant(urg.x_img.clone()));
        let z = self.logits(&mut g, xp, xi);
        let p = g.sigmoid(z);
        g.value(p).as_slice().to_vec()
    }

    fn num_params(&self) -> usize {
        self.params.num_scalars()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvd_citysim::{City, CityPreset};
    use uvd_urg::UrgOptions;

    #[test]
    fn mlp_learns_training_set() {
        let city = City::from_config(CityPreset::tiny(), 1);
        let urg = Urg::build(&city, UrgOptions::default());
        let train: Vec<usize> = (0..urg.labeled.len()).collect();
        let mut cfg = BaselineConfig::fast_test();
        cfg.epochs = 60;
        let mut model = MlpBaseline::new(&urg, cfg);
        let r = model.fit(&urg, &train);
        assert!(r.final_loss < 0.6, "loss {}", r.final_loss);
        let probs = model.predict(&urg);
        assert_eq!(probs.len(), urg.n);
    }

    #[test]
    fn mlp_without_image_modality() {
        let city = City::from_config(CityPreset::tiny(), 2);
        let urg = Urg::build(&city, UrgOptions::no_image());
        let train: Vec<usize> = (0..urg.labeled.len()).collect();
        let mut model = MlpBaseline::new(&urg, BaselineConfig::fast_test());
        let r = model.fit(&urg, &train);
        assert!(r.final_loss.is_finite());
    }
}
