//! # uvd-baselines
//!
//! The seven comparison methods of the paper's Table II, implemented per
//! Appendix I-A:
//!
//! * [`MlpBaseline`] — per-modality FC encoders + LR, no graph.
//! * [`GraphBaseline::gcn`] / [`GraphBaseline::gat`] — per-modality 2-layer
//!   graph encoders over the URG.
//! * [`MmreBaseline`] — multi-modal region embedding (denoising autoencoder
//!   + POI GCN + SkipGram) with an LR on the frozen embedding.
//! * [`ImgagnBaseline`] — adversarial minority-class augmentation.
//! * [`UvlensBaseline`] — image-only CNN with histogram equalization.
//! * [`MuvfcnBaseline`] — fully convolutional mapper with average pooling.
//!
//! All implement [`uvd_urg::Detector`].

pub mod common;
pub mod gnn;
pub mod imgagn;
pub mod mlp;
pub mod mmre;
pub mod muvfcn;
pub mod uvlens;

pub use common::BaselineConfig;
pub use gnn::GraphBaseline;
pub use imgagn::ImgagnBaseline;
pub use mlp::MlpBaseline;
pub use mmre::MmreBaseline;
pub use muvfcn::MuvfcnBaseline;
pub use uvlens::UvlensBaseline;
