//! Shared plumbing for the baseline detectors.

use std::sync::Arc;
use uvd_tensor::{Matrix, Rng64};
use uvd_urg::Urg;

/// Hyper-parameters shared by the baselines (paper Section VI-A: Adam,
/// hidden size 64 — scaled to the synthetic cities).
#[derive(Clone, Copy, Debug)]
pub struct BaselineConfig {
    pub hidden: usize,
    /// Image features are linearly reduced to this width where applicable.
    pub img_reduce: usize,
    pub lr: f32,
    /// Exponential LR decay per epoch.
    pub lr_decay: f32,
    pub epochs: usize,
    pub grad_clip: f32,
    pub seed: u64,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            hidden: 32,
            img_reduce: 32,
            lr: 5e-3,
            lr_decay: 0.001,
            epochs: 80,
            grad_clip: 5.0,
            seed: 0,
        }
    }
}

impl BaselineConfig {
    /// Fast settings for unit/integration tests.
    pub fn fast_test() -> Self {
        BaselineConfig {
            hidden: 8,
            img_reduce: 8,
            epochs: 10,
            ..Default::default()
        }
    }
}

/// `(labeled rows, targets, weights)` triple shared by the BCE losses.
pub type BceVectors = (Arc<Vec<u32>>, Arc<Vec<f32>>, Arc<Vec<f32>>);

/// BCE target/weight vectors for a train split over the labeled set.
pub fn bce_vectors(urg: &Urg, train_idx: &[usize]) -> BceVectors {
    let rows: Vec<u32> = train_idx.iter().map(|&i| urg.labeled[i]).collect();
    let targets: Vec<f32> = train_idx.iter().map(|&i| urg.y[i]).collect();
    let weights = vec![1.0f32; train_idx.len()];
    (Arc::new(rows), Arc::new(targets), Arc::new(weights))
}

/// Gather the labeled training rows of a feature matrix into a dense batch.
pub fn gather_batch(x: &Matrix, urg: &Urg, train_idx: &[usize]) -> Matrix {
    let rows: Vec<u32> = train_idx.iter().map(|&i| urg.labeled[i]).collect();
    x.gather_rows(&rows)
}

/// Sample `count` distinct-ish random indices below `n`.
pub fn random_indices(n: usize, count: usize, rng: &mut Rng64) -> Vec<u32> {
    use rand::Rng;
    (0..count).map(|_| rng.gen_range(0..n) as u32).collect()
}

/// A constant per-channel average-pooling matrix: multiplying an
/// `n × (c*hw)` activation by this `(c*hw) × c` matrix yields per-channel
/// spatial means (used by MUVFCN's head).
pub fn avg_pool_matrix(channels: usize, hw: usize) -> Matrix {
    let mut m = Matrix::zeros(channels * hw, channels);
    for c in 0..channels {
        for p in 0..hw {
            m.set(c * hw + p, c, 1.0 / hw as f32);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_pool_matrix_averages() {
        let m = avg_pool_matrix(2, 3);
        // Sample with channel 0 = [1,2,3], channel 1 = [4,5,6].
        let x = Matrix::from_vec(1, 6, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let y = x.matmul(&m);
        assert_eq!(y.shape(), (1, 2));
        assert!((y.get(0, 0) - 2.0).abs() < 1e-6);
        assert!((y.get(0, 1) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn random_indices_in_range() {
        let mut rng = uvd_tensor::seeded_rng(1);
        let idx = random_indices(10, 50, &mut rng);
        assert_eq!(idx.len(), 50);
        assert!(idx.iter().all(|&i| i < 10));
    }
}
