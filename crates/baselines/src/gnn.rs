//! GCN and GAT baselines (Appendix I-A): per-modality 2-layer graph
//! encoders (image features pre-reduced by a linear layer), linear fusion,
//! LR predictor. The two models differ only in the aggregation function.

use crate::common::{bce_vectors, BaselineConfig};
use std::sync::Arc;
use std::time::Instant;
use uvd_nn::{Activation, GcnStack, Linear, MultiHeadAttention};
use uvd_tensor::init::{derive_seed, seeded_rng};
use uvd_tensor::{Adam, Graph, NodeId, ParamSet};
use uvd_urg::{Detector, FitError, FitReport, Urg};

/// Which propagation rule the graph baseline uses.
enum Encoder {
    Gcn(GcnStack),
    Gat(Vec<MultiHeadAttention>),
}

impl Encoder {
    fn forward(&self, g: &mut Graph, x: NodeId, urg: &Urg) -> NodeId {
        match self {
            Encoder::Gcn(stack) => stack.forward(g, x, &urg.adj_norm),
            Encoder::Gat(layers) => {
                let mut h = x;
                for l in layers {
                    h = l.forward(g, h, h, &urg.edges);
                }
                h
            }
        }
    }

    fn collect_params(&self, set: &mut ParamSet) {
        match self {
            Encoder::Gcn(stack) => stack.collect_params(set),
            Encoder::Gat(layers) => {
                for l in layers {
                    l.collect_params(set);
                }
            }
        }
    }
}

/// A two-modality graph baseline (GCN or GAT).
pub struct GraphBaseline {
    cfg: BaselineConfig,
    kind: &'static str,
    img_reduce: Option<Linear>,
    poi_enc: Encoder,
    img_enc: Option<Encoder>,
    fuse: Linear,
    clf: Linear,
    params: ParamSet,
}

impl GraphBaseline {
    pub fn gcn(urg: &Urg, cfg: BaselineConfig) -> Self {
        Self::build(urg, cfg, "GCN")
    }

    pub fn gat(urg: &Urg, cfg: BaselineConfig) -> Self {
        Self::build(urg, cfg, "GAT")
    }

    fn build(urg: &Urg, cfg: BaselineConfig, kind: &'static str) -> Self {
        let mut rng = seeded_rng(derive_seed(
            cfg.seed,
            if kind == "GCN" { 0x6C1 } else { 0x6A7 },
        ));
        let h = cfg.hidden;
        let make_encoder = |name: &str, d_in: usize, rng: &mut uvd_tensor::Rng64| -> Encoder {
            if kind == "GCN" {
                Encoder::Gcn(GcnStack::new(name, &[d_in, h, h], Activation::Relu, rng))
            } else {
                Encoder::Gat(vec![
                    MultiHeadAttention::new_intra(&format!("{name}.0"), d_in, h, 1, rng),
                    MultiHeadAttention::new_intra(&format!("{name}.1"), h, h, 1, rng),
                ])
            }
        };
        let img_reduce = urg.has_image().then(|| {
            Linear::new(
                &format!("{kind}.imgred"),
                urg.x_img.cols(),
                cfg.img_reduce,
                &mut rng,
            )
        });
        let poi_enc = make_encoder(&format!("{kind}.poi"), urg.x_poi.cols(), &mut rng);
        let img_enc = urg
            .has_image()
            .then(|| make_encoder(&format!("{kind}.img"), cfg.img_reduce, &mut rng));
        let fused_in = if img_enc.is_some() { 2 * h } else { h };
        let fuse = Linear::new(&format!("{kind}.fuse"), fused_in, h, &mut rng);
        let clf = Linear::new(&format!("{kind}.clf"), h, 1, &mut rng);

        let mut params = ParamSet::new();
        if let Some(l) = &img_reduce {
            l.collect_params(&mut params);
        }
        poi_enc.collect_params(&mut params);
        if let Some(e) = &img_enc {
            e.collect_params(&mut params);
        }
        fuse.collect_params(&mut params);
        clf.collect_params(&mut params);
        GraphBaseline {
            cfg,
            kind,
            img_reduce,
            poi_enc,
            img_enc,
            fuse,
            clf,
            params,
        }
    }

    fn logits(&self, g: &mut Graph, urg: &Urg) -> NodeId {
        let xp = g.constant(urg.x_poi.clone());
        let hp = self.poi_enc.forward(g, xp, urg);
        let fused_in = match (&self.img_reduce, &self.img_enc) {
            (Some(red), Some(enc)) => {
                let raw = g.constant(urg.x_img.clone());
                let xi = red.forward(g, raw);
                let xi = g.tanh(xi);
                let hi = enc.forward(g, xi, urg);
                g.concat_cols(hp, hi)
            }
            _ => hp,
        };
        let f = self.fuse.forward(g, fused_in);
        let f = Activation::Relu.apply(g, f);
        self.clf.forward(g, f)
    }
}

impl Detector for GraphBaseline {
    fn name(&self) -> &'static str {
        self.kind
    }

    fn fit(&mut self, urg: &Urg, train_idx: &[usize]) -> FitReport {
        let start = Instant::now();
        let (rows, targets, weights) = bce_vectors(urg, train_idx);
        let mut opt = Adam::new(self.cfg.lr);
        let mut last = 0.0;
        let mut epochs_run = 0;
        let mut error = None;
        // Record the tape once, replay across epochs.
        let mut g = Graph::new();
        let z = self.logits(&mut g, urg);
        let zl = g.gather_rows(z, Arc::new(rows.to_vec()));
        let loss = g.bce_with_logits(zl, targets, weights);
        for epoch in 0..self.cfg.epochs {
            if epoch > 0 {
                g.replay();
            }
            last = g.scalar(loss);
            epochs_run = epoch + 1;
            if !last.is_finite() {
                error = Some(FitError::NonFiniteLoss);
                break;
            }
            g.backward(loss);
            g.write_grads();
            self.params.clip_grad_norm(self.cfg.grad_clip);
            opt.step(&self.params);
            opt.decay(self.cfg.lr_decay);
        }
        FitReport {
            epochs: epochs_run,
            train_secs: start.elapsed().as_secs_f64(),
            final_loss: last,
            error,
        }
    }

    fn predict(&self, urg: &Urg) -> Vec<f32> {
        let mut g = Graph::inference();
        let z = self.logits(&mut g, urg);
        let p = g.sigmoid(z);
        g.value(p).as_slice().to_vec()
    }

    fn num_params(&self) -> usize {
        self.params.num_scalars()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvd_citysim::{City, CityPreset};
    use uvd_urg::UrgOptions;

    fn setup() -> (Urg, Vec<usize>) {
        let city = City::from_config(CityPreset::tiny(), 3);
        let urg = Urg::build(&city, UrgOptions::default());
        let train: Vec<usize> = (0..urg.labeled.len()).collect();
        (urg, train)
    }

    #[test]
    fn gcn_trains_and_predicts() {
        let (urg, train) = setup();
        let mut model = GraphBaseline::gcn(&urg, BaselineConfig::fast_test());
        assert_eq!(model.name(), "GCN");
        let r = model.fit(&urg, &train);
        assert!(r.final_loss.is_finite());
        assert_eq!(model.predict(&urg).len(), urg.n);
    }

    #[test]
    fn gat_trains_and_predicts() {
        let (urg, train) = setup();
        let mut model = GraphBaseline::gat(&urg, BaselineConfig::fast_test());
        assert_eq!(model.name(), "GAT");
        let r = model.fit(&urg, &train);
        assert!(r.final_loss.is_finite());
        assert_eq!(model.predict(&urg).len(), urg.n);
    }

    #[test]
    fn gat_has_more_params_than_gcn() {
        // Attention vectors add parameters over plain convolution.
        let (urg, _) = setup();
        let gcn = GraphBaseline::gcn(&urg, BaselineConfig::fast_test());
        let gat = GraphBaseline::gat(&urg, BaselineConfig::fast_test());
        assert!(gat.num_params() > gcn.num_params());
    }
}
