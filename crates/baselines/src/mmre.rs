//! MMRE baseline (Appendix I-A): multi-modal region embedding — a denoising
//! autoencoder for image features (encoder 120-84-64), a 2-layer GCN for POI
//! features (128, 64), a SkipGram objective with positive neighbours and
//! negative samples over the concatenated embedding, then an LR classifier
//! on the frozen embedding. Trade-offs follow the paper: `λ_I = 0.5`
//! (reconstruction), `λ_s = 0.1` (SkipGram), 4 positive / 10 negative
//! samples. The taxi-transition loss of the original is omitted (no mobility
//! data), as in the paper's own adaptation.

use crate::common::{bce_vectors, BaselineConfig};
use rand::Rng;
use std::sync::Arc;
use std::time::Instant;
use uvd_nn::{Activation, GcnStack, Linear, Mlp};
use uvd_tensor::init::{derive_seed, normal_matrix, seeded_rng};
use uvd_tensor::{Adam, Graph, Matrix, NodeId, ParamSet, Rng64};
use uvd_urg::{Detector, FitError, FitReport, Urg};

const LAMBDA_I: f32 = 0.5;
const LAMBDA_S: f32 = 0.1;
const N_POS: usize = 4;
const N_NEG: usize = 10;
/// Anchors sampled per epoch for the SkipGram objective.
const N_ANCHORS: usize = 128;
/// Noise injected for the denoising autoencoder.
const NOISE_STD: f32 = 0.1;

pub struct MmreBaseline {
    cfg: BaselineConfig,
    encoder: Mlp,
    decoder: Mlp,
    poi_gcn: GcnStack,
    clf: Linear,
    embed_params: ParamSet,
    clf_params: ParamSet,
    rng: Rng64,
    /// Cached embedding after the embedding stage (frozen for the LR).
    embedding: Option<Matrix>,
}

impl MmreBaseline {
    pub fn new(urg: &Urg, cfg: BaselineConfig) -> Self {
        let mut rng = seeded_rng(derive_seed(cfg.seed, 0x33E0));
        let d_img = if urg.has_image() {
            urg.x_img.cols()
        } else {
            urg.x_poi.cols()
        };
        let encoder = Mlp::new(
            "mmre.enc",
            &[d_img, 120, 84, 64],
            Activation::Relu,
            &mut rng,
        );
        let decoder = Mlp::new(
            "mmre.dec",
            &[64, 84, 120, d_img],
            Activation::Relu,
            &mut rng,
        );
        let poi_gcn = GcnStack::new(
            "mmre.poi",
            &[urg.x_poi.cols(), 128, 64],
            Activation::Relu,
            &mut rng,
        );
        let clf = Linear::new("mmre.clf", 128, 1, &mut rng);
        let mut embed_params = ParamSet::new();
        encoder.collect_params(&mut embed_params);
        decoder.collect_params(&mut embed_params);
        poi_gcn.collect_params(&mut embed_params);
        let mut clf_params = ParamSet::new();
        clf.collect_params(&mut clf_params);
        MmreBaseline {
            cfg,
            encoder,
            decoder,
            poi_gcn,
            clf,
            embed_params,
            clf_params,
            rng,
            embedding: None,
        }
    }

    /// Image input (falls back to POI features when the image modality is
    /// ablated, so the autoencoder still has something to reconstruct).
    fn img_input(urg: &Urg) -> &Matrix {
        if urg.has_image() {
            &urg.x_img
        } else {
            &urg.x_poi
        }
    }

    /// Joint embedding of all regions (POI-GCN ⊕ image encoder), 128-d.
    fn embed(&self, g: &mut Graph, urg: &Urg, noisy: bool, rng: &mut Rng64) -> NodeId {
        let xp = g.constant(urg.x_poi.clone());
        let zp = self.poi_gcn.forward(g, xp, &urg.adj_norm);
        let img = Self::img_input(urg);
        let x_img = if noisy {
            let noise = normal_matrix(img.rows(), img.cols(), 0.0, NOISE_STD, rng);
            let mut noisy_img = img.clone();
            noisy_img.add_assign(&noise);
            noisy_img
        } else {
            img.clone()
        };
        let xi = g.constant(x_img);
        let zi = self.encoder.forward(g, xi);
        let zi = Activation::Relu.apply(g, zi);
        g.concat_cols(zp, zi)
    }

    /// SkipGram loss: anchors attract a few graph neighbours and repel
    /// random nodes in embedding space.
    fn skipgram_loss(&self, g: &mut Graph, z: NodeId, urg: &Urg, rng: &mut Rng64) -> NodeId {
        let n = urg.n;
        let mut anchors = Vec::new();
        let mut positives = Vec::new();
        let mut negatives_a = Vec::new();
        let mut negatives = Vec::new();
        for _ in 0..N_ANCHORS {
            let a = rng.gen_range(0..n);
            let incoming = urg.edges.incoming(a);
            if incoming.is_empty() {
                continue;
            }
            let edge_ids: Vec<usize> = incoming.collect();
            for _ in 0..N_POS {
                let e = edge_ids[rng.gen_range(0..edge_ids.len())];
                anchors.push(a as u32);
                positives.push(urg.edges.src()[e]);
            }
            for _ in 0..N_NEG {
                negatives_a.push(a as u32);
                negatives.push(rng.gen_range(0..n) as u32);
            }
        }
        if anchors.is_empty() {
            return g.constant(Matrix::zeros(1, 1));
        }
        let dot = |g: &mut Graph, a: &[u32], b: &[u32]| -> NodeId {
            let za = g.gather_rows(z, Arc::new(a.to_vec()));
            let zb = g.gather_rows(z, Arc::new(b.to_vec()));
            let prod = g.mul(za, zb);
            g.row_sum(prod)
        };
        // -log σ(z_a · z_p): attract positives.
        let pos_dot = dot(g, &anchors, &positives);
        let pos_sig = g.sigmoid(pos_dot);
        let pos_log = g.ln_eps(pos_sig, 1e-6);
        let pos_loss = g.mean_all(pos_log);
        // -log σ(-z_a · z_n): repel negatives.
        let neg_dot = dot(g, &negatives_a, &negatives);
        let neg_dot = g.scale(neg_dot, -1.0);
        let neg_sig = g.sigmoid(neg_dot);
        let neg_log = g.ln_eps(neg_sig, 1e-6);
        let neg_loss = g.mean_all(neg_log);
        let total = g.add(pos_loss, neg_loss);
        g.scale(total, -1.0)
    }
}

impl Detector for MmreBaseline {
    fn name(&self) -> &'static str {
        "MMRE"
    }

    fn fit(&mut self, urg: &Urg, train_idx: &[usize]) -> FitReport {
        let start = Instant::now();
        let mut rng = self.rng.clone();
        // Stage A: embedding training (reconstruction + SkipGram). Each
        // epoch draws fresh noise and fresh SkipGram samples, so the tape
        // topology changes every epoch — this stage keeps the per-epoch
        // rebuild instead of a recorded replay.
        let mut opt = Adam::new(self.cfg.lr);
        let mut epochs_run = 0;
        for _ in 0..self.cfg.epochs {
            let mut g = Graph::new();
            let z = self.embed(&mut g, urg, true, &mut rng);
            // Denoising reconstruction of the image features from the image
            // half of the embedding.
            let zi = g.slice_cols(z, 64, 128);
            let recon = self.decoder.forward(&mut g, zi);
            let target = g.constant(Self::img_input(urg).clone());
            let l_rec = g.mse(recon, target);
            let l_sg = self.skipgram_loss(&mut g, z, urg, &mut rng);
            let l_rec_s = g.scale(l_rec, LAMBDA_I);
            let l_sg_s = g.scale(l_sg, LAMBDA_S);
            let loss = g.add(l_rec_s, l_sg_s);
            let value = g.scalar(loss);
            epochs_run += 1;
            if !value.is_finite() {
                self.rng = rng;
                return FitReport {
                    epochs: epochs_run,
                    train_secs: start.elapsed().as_secs_f64(),
                    final_loss: value,
                    error: Some(FitError::NonFiniteLoss),
                };
            }
            g.backward(loss);
            g.write_grads();
            self.embed_params.clip_grad_norm(self.cfg.grad_clip);
            opt.step(&self.embed_params);
            opt.decay(self.cfg.lr_decay);
        }
        // Freeze the embedding (no-grad forward).
        let mut g = Graph::inference();
        let z = self.embed(&mut g, urg, false, &mut rng);
        let embedding = g.value(z).clone();
        if embedding.has_non_finite() {
            // Embedding degenerated without the loss diverging (e.g. an
            // overflow confined to untrained rows): surface it instead of
            // fitting a classifier on garbage.
            self.rng = rng;
            return FitReport {
                epochs: epochs_run,
                train_secs: start.elapsed().as_secs_f64(),
                final_loss: f32::NAN,
                error: Some(FitError::NonFiniteLoss),
            };
        }
        self.embedding = Some(embedding.clone());

        // Stage B: LR classifier on the frozen embedding. The batch is
        // static, so record the tape once and replay.
        let (rows, targets, weights) = bce_vectors(urg, train_idx);
        let batch = embedding.gather_rows(&rows);
        let mut opt2 = Adam::new(self.cfg.lr * 4.0);
        let mut last = 0.0;
        let mut error = None;
        let mut g = Graph::new();
        let x = g.constant(batch);
        let zl = self.clf.forward(&mut g, x);
        let loss = g.bce_with_logits(zl, targets, weights);
        for epoch in 0..(self.cfg.epochs * 6) {
            if epoch > 0 {
                g.replay();
            }
            last = g.scalar(loss);
            if !last.is_finite() {
                error = Some(FitError::NonFiniteLoss);
                break;
            }
            g.backward(loss);
            g.write_grads();
            opt2.step(&self.clf_params);
        }
        self.rng = rng;
        FitReport {
            epochs: 2 * self.cfg.epochs,
            train_secs: start.elapsed().as_secs_f64(),
            final_loss: last,
            error,
        }
    }

    fn predict(&self, urg: &Urg) -> Vec<f32> {
        let embedding = match &self.embedding {
            Some(e) if e.rows() == urg.n => e.clone(),
            // Unseen URG (or untrained): recompute the embedding.
            _ => {
                let mut g = Graph::inference();
                let mut rng = self.rng.clone();
                let z = self.embed(&mut g, urg, false, &mut rng);
                g.value(z).clone()
            }
        };
        let mut g = Graph::inference();
        let x = g.constant(embedding);
        let z = self.clf.forward(&mut g, x);
        let p = g.sigmoid(z);
        g.value(p).as_slice().to_vec()
    }

    fn num_params(&self) -> usize {
        self.embed_params.num_scalars() + self.clf_params.num_scalars()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvd_citysim::{City, CityPreset};
    use uvd_urg::UrgOptions;

    #[test]
    fn mmre_trains_and_predicts() {
        let city = City::from_config(CityPreset::tiny(), 4);
        let urg = Urg::build(&city, UrgOptions::default());
        let train: Vec<usize> = (0..urg.labeled.len()).collect();
        let mut cfg = BaselineConfig::fast_test();
        cfg.epochs = 5;
        let mut model = MmreBaseline::new(&urg, cfg);
        let r = model.fit(&urg, &train);
        assert!(r.final_loss.is_finite());
        let probs = model.predict(&urg);
        assert_eq!(probs.len(), urg.n);
        assert!(probs.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn embedding_is_cached_after_fit() {
        let city = City::from_config(CityPreset::tiny(), 5);
        let urg = Urg::build(&city, UrgOptions::default());
        let train: Vec<usize> = (0..urg.labeled.len()).collect();
        let mut cfg = BaselineConfig::fast_test();
        cfg.epochs = 2;
        let mut model = MmreBaseline::new(&urg, cfg);
        assert!(model.embedding.is_none());
        model.fit(&urg, &train);
        let e = model.embedding.as_ref().expect("cached embedding");
        assert_eq!(e.shape(), (urg.n, 128));
    }
}
