//! Global Semantic Clustering Module (GSCM, paper Section V-A-2).
//!
//! Regions are softly assigned to K latent clusters (eq. 9, temperature
//! softmax), cluster representations are collected through the *binarized*
//! assignment (eq. 10), related by a learnable complete-graph convolution
//! (eq. 11), and shared back to regions through the *soft* assignment
//! (eq. 12). In the slave stage the assignment is frozen (Algorithm 2) and
//! passed in as [`FixedAssignment`].

use uvd_nn::{Activation, Linear};
use uvd_tensor::init::glorot_uniform;
use uvd_tensor::{Graph, Matrix, NodeId, ParamRef, ParamSet, Rng64};

/// How regions→clusters collection (eq. 10) is performed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CollectionMode {
    /// The paper's binarized assignment `B̃`, mean-pooled per cluster
    /// (default; see the stability note on [`Gscm::binarize_t`]).
    HardMean,
    /// Soft collection through `B` itself (design-choice ablation): every
    /// region contributes to every cluster with its membership weight,
    /// scaled by `K/N` to keep cluster magnitudes comparable to mean
    /// pooling. Differentiable through the assignment.
    Soft,
}

/// Frozen clustering state carried from the master stage into the slave
/// stage (membership + cluster pseudo labels, eq. 16).
#[derive(Clone, Debug)]
pub struct FixedAssignment {
    /// Soft assignment `B` (N×K).
    pub b_soft: Matrix,
    /// Transposed hard assignment `B̃^T` (K×N) for regions→clusters sums.
    pub b_hard_t: Matrix,
    /// Cluster pseudo labels `y^h` (eq. 16), derived from *training* labels.
    pub pseudo: Vec<f32>,
    /// Hard cluster id per region.
    pub cluster_of: Vec<u32>,
}

impl FixedAssignment {
    pub fn k(&self) -> usize {
        self.b_hard_t.rows()
    }

    /// Restrict the frozen assignment to an induced node subset (ascending
    /// global region ids), for mini-batch slave training. `b_soft` rows and
    /// `cluster_of` are gathered verbatim; `b_hard_t` is rebuilt over the
    /// subset with per-batch mean weights `1/|cluster ∩ batch|`, mirroring
    /// [`Gscm::binarize_t`]'s construction (clusters with no member in the
    /// batch get an all-zero row). `pseudo` is per-cluster global state and
    /// is carried unchanged.
    pub fn induced(&self, nodes: &[u32]) -> FixedAssignment {
        debug_assert!(nodes.windows(2).all(|w| w[0] < w[1]), "nodes must ascend");
        let k = self.k();
        let b_soft = self.b_soft.gather_rows(nodes);
        let cluster_of: Vec<u32> = nodes.iter().map(|&i| self.cluster_of[i as usize]).collect();
        let mut counts = vec![0usize; k];
        for &j in &cluster_of {
            counts[j as usize] += 1;
        }
        let mut b_hard_t = Matrix::zeros(k, nodes.len());
        for (i, &j) in cluster_of.iter().enumerate() {
            b_hard_t.set(j as usize, i, 1.0 / counts[j as usize] as f32);
        }
        FixedAssignment {
            b_soft,
            b_hard_t,
            pseudo: self.pseudo.clone(),
            cluster_of,
        }
    }

    /// Clusters containing at least one known UV (`C₁`) and the rest (`C₀`).
    pub fn partition(&self) -> (Vec<u32>, Vec<u32>) {
        let mut c1 = Vec::new();
        let mut c0 = Vec::new();
        for (j, &p) in self.pseudo.iter().enumerate() {
            if p > 0.5 {
                c1.push(j as u32);
            } else {
                c0.push(j as u32);
            }
        }
        (c1, c0)
    }
}

/// Output of a GSCM forward pass.
pub struct GscmOut {
    /// Soft assignment node (N×K).
    pub b_soft: NodeId,
    /// Hard assignment value (constant within the iteration).
    pub b_hard_t: Matrix,
    /// Updated cluster representations `h'` (K×d).
    pub h_prime: NodeId,
    /// Global-aware region representation `x̃^g` (N×d).
    pub x_global: NodeId,
}

/// The GSCM module.
pub struct Gscm {
    /// Assignment transform `W_B` (eq. 9).
    w_b: Linear,
    /// Learnable complete-graph edge weights `e_{ij}` (eq. 11).
    e: ParamRef,
    /// Cluster transform `W_h` (eq. 11).
    w_h: Linear,
    /// Reverse-sharing transform `W_r` (eq. 12).
    w_r: Linear,
    pub k: usize,
    pub tau: f32,
    pub collection: CollectionMode,
    act: Activation,
}

impl Gscm {
    /// `d` is the region representation dimensionality; cluster
    /// representations keep the same width.
    pub fn new(name: &str, d: usize, k: usize, tau: f32, rng: &mut Rng64) -> Self {
        Gscm {
            w_b: Linear::new_no_bias(&format!("{name}.w_b"), d, k, rng),
            e: ParamRef::new(format!("{name}.e"), glorot_uniform(k, k, rng)),
            w_h: Linear::new(&format!("{name}.w_h"), d, d, rng),
            w_r: Linear::new(&format!("{name}.w_r"), d, d, rng),
            k,
            tau,
            collection: CollectionMode::HardMean,
            act: Activation::LeakyRelu(0.2),
        }
    }

    /// Compute the soft assignment matrix `B` for the current representation
    /// (eq. 9), as a graph node.
    pub fn assignment(&self, g: &mut Graph, x_tilde: NodeId) -> NodeId {
        let logits = self.w_b.forward(g, x_tilde);
        g.softmax_rows(logits, self.tau)
    }

    /// Binarize a soft assignment value into a mean-pooling `B̃^T`
    /// (K×N; row `j` holds `1/|cluster_j|` at its member columns).
    ///
    /// Eq. 10 of the paper is a raw sum over cluster members; at hundreds of
    /// regions per cluster the summed representations are ~|cluster|× larger
    /// than region representations, saturating downstream activations and
    /// collapsing eq. 13's fusion. The per-cluster `1/|cluster|` scale is
    /// absorbable by `W_h` in exact arithmetic, so mean pooling is
    /// mathematically equivalent up to reparameterization while keeping f32
    /// training stable (see DESIGN.md §3).
    pub fn binarize_t(&self, b_soft: &Matrix) -> (Matrix, Vec<u32>) {
        let n = b_soft.rows();
        let arg = b_soft.argmax_rows();
        let mut counts = vec![0usize; self.k];
        for &j in &arg {
            counts[j as usize] += 1;
        }
        let mut bt = Matrix::zeros(self.k, n);
        for (i, &j) in arg.iter().enumerate() {
            bt.set(j as usize, i, 1.0 / counts[j as usize] as f32);
        }
        (bt, arg)
    }

    /// Full forward pass. When `fixed` is provided (slave stage), the
    /// assignment matrices are constants; otherwise they are computed from
    /// `x_tilde` (master stage).
    pub fn forward(
        &self,
        g: &mut Graph,
        x_tilde: NodeId,
        fixed: Option<&FixedAssignment>,
    ) -> GscmOut {
        let (b_soft, b_hard_t) = match fixed {
            Some(f) => (g.constant(f.b_soft.clone()), f.b_hard_t.clone()),
            None => {
                let b = self.assignment(g, x_tilde);
                let (bt, _) = self.binarize_t(g.value(b));
                (b, bt)
            }
        };
        // eq. 10: h_j = Σ_i B̃_ij x̃_i  (binary weights are constants), or
        // the soft differentiable collection in the design ablation.
        let h0 = match self.collection {
            CollectionMode::HardMean => {
                let bt_node = g.constant(b_hard_t.clone());
                g.matmul(bt_node, x_tilde) // K×d
            }
            CollectionMode::Soft => {
                let bt = g.transpose(b_soft);
                let sum = g.matmul(bt, x_tilde);
                let n = g.value(x_tilde).rows().max(1);
                g.scale(sum, self.k as f32 / n as f32)
            }
        };
        // eq. 11: h'_i = σ(Σ_j e_ij W_h h_j) — complete graph with learnable
        // edge weights.
        let e = g.param(&self.e);
        let mixed = g.matmul(e, h0);
        let hw = self.w_h.forward(g, mixed);
        let h_prime = self.act.apply(g, hw);
        // eq. 12: x̃^g_i = σ(Σ_j B_ij W_r h'_j) — soft assignment.
        let hr = self.w_r.forward(g, h_prime);
        let shared = g.matmul(b_soft, hr);
        let x_global = self.act.apply(g, shared);
        GscmOut {
            b_soft,
            b_hard_t,
            h_prime,
            x_global,
        }
    }

    /// Cluster pseudo labels from region labels (eq. 16): a cluster is
    /// positive iff it contains at least one *known* (training) UV region.
    pub fn pseudo_labels(
        &self,
        cluster_of: &[u32],
        labeled: &[u32],
        y: &[f32],
        train_idx: &[usize],
    ) -> Vec<f32> {
        let mut pseudo = vec![0.0f32; self.k];
        for &ti in train_idx {
            if y[ti] > 0.5 {
                let region = labeled[ti] as usize;
                pseudo[cluster_of[region] as usize] = 1.0;
            }
        }
        pseudo
    }

    pub fn collect_params(&self, set: &mut ParamSet) {
        self.w_b.collect_params(set);
        set.track(self.e.clone());
        self.w_h.collect_params(set);
        self.w_r.collect_params(set);
    }
}

#[cfg(test)]
mod tests {
    // Exact float equality is intended in these tests: they assert
    // exact constants and bit-reproducible results, not tolerances.
    #![allow(clippy::float_cmp)]

    use super::*;
    use uvd_tensor::init::{normal_matrix, seeded_rng};

    #[test]
    fn assignment_rows_are_distributions() {
        let mut rng = seeded_rng(1);
        let gscm = Gscm::new("g", 6, 4, 0.5, &mut rng);
        let mut g = Graph::new();
        let x = g.constant(normal_matrix(10, 6, 0.0, 1.0, &mut rng));
        let b = gscm.assignment(&mut g, x);
        let bv = g.value(b);
        assert_eq!(bv.shape(), (10, 4));
        for r in 0..10 {
            let s: f32 = bv.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn binarize_is_mean_pooling() {
        let mut rng = seeded_rng(2);
        let gscm = Gscm::new("g", 6, 4, 0.5, &mut rng);
        // Regions 0 and 2 both land in cluster 1; region 1 in cluster 0.
        let b = Matrix::from_rows(&[
            &[0.1, 0.7, 0.1, 0.1],
            &[0.4, 0.3, 0.2, 0.1],
            &[0.0, 0.9, 0.05, 0.05],
        ]);
        let (bt, arg) = gscm.binarize_t(&b);
        assert_eq!(arg, vec![1, 0, 1]);
        // Cluster 1 has two members -> weights 1/2 each; cluster 0 one -> 1.
        assert_eq!(bt.get(1, 0), 0.5);
        assert_eq!(bt.get(1, 2), 0.5);
        assert_eq!(bt.get(0, 1), 1.0);
        // Each cluster row sums to 1 (mean pooling) or 0 (empty cluster).
        for j in 0..4 {
            let s: f32 = (0..3).map(|i| bt.get(j, i)).sum();
            assert!(s == 0.0 || (s - 1.0).abs() < 1e-6, "row {j} sums to {s}");
        }
    }

    #[test]
    fn forward_shapes_live_and_fixed() {
        let mut rng = seeded_rng(3);
        let gscm = Gscm::new("g", 6, 4, 0.5, &mut rng);
        let x = normal_matrix(10, 6, 0.0, 1.0, &mut rng);
        let mut g = Graph::new();
        let xn = g.constant(x.clone());
        let out = gscm.forward(&mut g, xn, None);
        assert_eq!(g.value(out.h_prime).shape(), (4, 6));
        assert_eq!(g.value(out.x_global).shape(), (10, 6));

        let (bt, arg) = gscm.binarize_t(g.value(out.b_soft));
        let fixed = FixedAssignment {
            b_soft: g.value(out.b_soft).clone(),
            b_hard_t: bt,
            pseudo: vec![0.0; 4],
            cluster_of: arg,
        };
        let mut g2 = Graph::new();
        let xn2 = g2.constant(x);
        let out2 = gscm.forward(&mut g2, xn2, Some(&fixed));
        assert_eq!(g2.value(out2.x_global).shape(), (10, 6));
        // Fixed assignment is used verbatim.
        assert_eq!(g2.value(out2.b_soft), &fixed.b_soft);
    }

    #[test]
    fn pseudo_labels_only_from_training_positives() {
        let mut rng = seeded_rng(4);
        let gscm = Gscm::new("g", 6, 3, 0.5, &mut rng);
        // regions 0..4; clusters: r0,r1 -> c0; r2 -> c1; r3 -> c2.
        let cluster_of = vec![0u32, 0, 1, 2];
        let labeled = vec![0u32, 2, 3];
        let y = vec![1.0, 1.0, 0.0];
        // Only the first labeled sample is in the training split.
        let pseudo = gscm.pseudo_labels(&cluster_of, &labeled, &y, &[0]);
        assert_eq!(pseudo, vec![1.0, 0.0, 0.0]);
        // Both positives in training: clusters 0 and 1 become positive.
        let pseudo2 = gscm.pseudo_labels(&cluster_of, &labeled, &y, &[0, 1, 2]);
        assert_eq!(pseudo2, vec![1.0, 1.0, 0.0]);
    }

    #[test]
    fn partition_splits_clusters() {
        let fixed = FixedAssignment {
            b_soft: Matrix::zeros(1, 3),
            b_hard_t: Matrix::zeros(3, 1),
            pseudo: vec![1.0, 0.0, 1.0],
            cluster_of: vec![0],
        };
        let (c1, c0) = fixed.partition();
        assert_eq!(c1, vec![0, 2]);
        assert_eq!(c0, vec![1]);
    }

    #[test]
    fn induced_assignment_rebalances_hard_weights() {
        // 5 regions: clusters [0, 1, 1, 0, 2]; restrict to nodes {0, 1, 2}.
        let b_soft = Matrix::from_rows(&[
            &[0.8, 0.1, 0.1],
            &[0.1, 0.8, 0.1],
            &[0.2, 0.7, 0.1],
            &[0.6, 0.3, 0.1],
            &[0.1, 0.2, 0.7],
        ]);
        let fixed = FixedAssignment {
            b_soft: b_soft.clone(),
            b_hard_t: Matrix::zeros(3, 5), // unused by induced()
            pseudo: vec![1.0, 0.0, 1.0],
            cluster_of: vec![0, 1, 1, 0, 2],
        };
        let sub = fixed.induced(&[0, 1, 2]);
        assert_eq!(sub.cluster_of, vec![0, 1, 1]);
        assert_eq!(sub.pseudo, fixed.pseudo, "pseudo labels are global");
        assert_eq!(sub.b_soft.shape(), (3, 3));
        assert_eq!(sub.b_soft.row(2), b_soft.row(2), "rows gathered verbatim");
        // Cluster 0 has one member in the batch -> weight 1; cluster 1 has
        // two -> 1/2 each; cluster 2 none -> all-zero row.
        assert_eq!(sub.b_hard_t.get(0, 0), 1.0);
        assert_eq!(sub.b_hard_t.get(1, 1), 0.5);
        assert_eq!(sub.b_hard_t.get(1, 2), 0.5);
        assert!((0..3).all(|i| sub.b_hard_t.get(2, i) == 0.0));
    }

    #[test]
    fn soft_collection_gradient_reaches_assignment() {
        // With soft collection, gradients flow through B into W_B even on
        // the regions→clusters path (the hard path blocks it by design).
        let mut rng = seeded_rng(6);
        let mut gscm = Gscm::new("g", 6, 4, 0.5, &mut rng);
        gscm.collection = CollectionMode::Soft;
        let mut g = Graph::new();
        let x = g.constant(normal_matrix(10, 6, 0.0, 1.0, &mut rng));
        let out = gscm.forward(&mut g, x, None);
        // Take the loss from h' only: the hard path would give W_B no
        // gradient here, the soft path must.
        let sq = g.mul(out.h_prime, out.h_prime);
        let loss = g.sum_all(sq);
        g.backward(loss);
        g.write_grads();
        let mut set = ParamSet::new();
        gscm.collect_params(&mut set);
        let w_b_grad: f32 = set
            .iter()
            .filter(|p| p.name().contains("w_b"))
            .map(|p| p.grad().frob_norm())
            .sum();
        assert!(w_b_grad > 0.0, "soft collection must propagate into W_B");
    }

    #[test]
    fn gradient_flows_through_hierarchy() {
        let mut rng = seeded_rng(5);
        let gscm = Gscm::new("g", 6, 4, 0.5, &mut rng);
        let mut g = Graph::new();
        let x = g.variable(normal_matrix(10, 6, 0.0, 1.0, &mut rng));
        let out = gscm.forward(&mut g, x, None);
        let sq = g.mul(out.x_global, out.x_global);
        let loss = g.sum_all(sq);
        g.backward(loss);
        g.write_grads();
        let mut set = ParamSet::new();
        gscm.collect_params(&mut set);
        assert!(set.grad_norm() > 0.0);
        // The input regions also receive gradient (for upstream MAGA).
        assert!(g.grad(x).is_some());
    }
}
