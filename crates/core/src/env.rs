//! Environment knobs for neighbor-sampled mini-batch training.
//!
//! * `UVD_BATCH` — labeled seed regions per mini-batch. `0` disables
//!   mini-batching (full-batch training, the bitwise-deterministic default).
//! * `UVD_SAMPLE_FANOUT` — incoming-neighbor cap per node per hop when
//!   sampling the batch subgraph. `0` takes every neighbor (the exact
//!   k-hop closure).
//! * `UVD_PREFETCH` — mini-batch prefetch depth: how many batches ahead
//!   the background preparation thread may run during the tape-recording
//!   epoch. `0` prepares batches inline (serial reference path).
//!
//! Both follow the `UVD_THREADS` pattern from `uvd_tensor::par`: a pure
//! parser (unit-testable without touching the process environment), a
//! once-per-process read, and a single [`uvd_obs::warn_once`] on an
//! unparseable value — which is then *ignored*, falling back to the
//! config's programmatic setting rather than silently picking a number.

use std::sync::OnceLock;

/// Parse a `UVD_BATCH` value. Accepted: a non-negative integer (0 turns
/// mini-batching off). Anything else (negatives, non-numeric, empty,
/// fractional) is rejected.
pub fn parse_batch(s: &str) -> Option<usize> {
    s.trim().parse::<usize>().ok()
}

/// Parse a `UVD_SAMPLE_FANOUT` value. Accepted: a non-negative integer
/// (0 = uncapped, i.e. the full k-hop closure).
pub fn parse_fanout(s: &str) -> Option<usize> {
    s.trim().parse::<usize>().ok()
}

/// Parse a `UVD_PREFETCH` value. Accepted: a non-negative integer
/// (0 = no background preparation thread).
pub fn parse_prefetch(s: &str) -> Option<usize> {
    s.trim().parse::<usize>().ok()
}

fn read_knob(var: &'static str, parse: fn(&str) -> Option<usize>) -> Option<usize> {
    match std::env::var(var) {
        Err(_) => None,
        Ok(v) => {
            let parsed = parse(&v);
            if parsed.is_none() {
                uvd_obs::warn_once(
                    var,
                    &format!(
                        "{var}: unrecognized value '{}' (accepted: a \
                         non-negative integer); ignoring it",
                        v.trim()
                    ),
                );
            }
            parsed
        }
    }
}

/// `UVD_BATCH` if set and valid (read once per process).
pub fn env_batch() -> Option<usize> {
    static V: OnceLock<Option<usize>> = OnceLock::new();
    *V.get_or_init(|| read_knob("UVD_BATCH", parse_batch))
}

/// `UVD_SAMPLE_FANOUT` if set and valid (read once per process).
pub fn env_fanout() -> Option<usize> {
    static V: OnceLock<Option<usize>> = OnceLock::new();
    *V.get_or_init(|| read_knob("UVD_SAMPLE_FANOUT", parse_fanout))
}

/// `UVD_PREFETCH` if set and valid (read once per process).
pub fn env_prefetch() -> Option<usize> {
    static V: OnceLock<Option<usize>> = OnceLock::new();
    *V.get_or_init(|| read_knob("UVD_PREFETCH", parse_prefetch))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_valid_batch_values() {
        assert_eq!(parse_batch("128"), Some(128));
        assert_eq!(parse_batch("0"), Some(0));
        assert_eq!(parse_batch("  64  "), Some(64));
    }

    #[test]
    fn rejects_bad_batch_values() {
        for bad in ["-1", "abc", "", "  ", "12.5", "1e3", "0x10", "128 regions"] {
            assert_eq!(parse_batch(bad), None, "{bad:?} must be rejected");
        }
    }

    #[test]
    fn parses_valid_fanout_values() {
        assert_eq!(parse_fanout("8"), Some(8));
        assert_eq!(parse_fanout("0"), Some(0));
        assert_eq!(parse_fanout("\t12\n"), Some(12));
    }

    #[test]
    fn rejects_bad_fanout_values() {
        for bad in ["-3", "full", "", "3,000", "2.0"] {
            assert_eq!(parse_fanout(bad), None, "{bad:?} must be rejected");
        }
    }

    #[test]
    fn parses_valid_prefetch_values() {
        assert_eq!(parse_prefetch("2"), Some(2));
        assert_eq!(parse_prefetch("0"), Some(0));
        assert_eq!(parse_prefetch(" 4 "), Some(4));
    }

    #[test]
    fn rejects_bad_prefetch_values() {
        for bad in ["-1", "on", "", "1.5", "two"] {
            assert_eq!(parse_prefetch(bad), None, "{bad:?} must be rejected");
        }
    }
}
