//! Contextual Master-Slave Gate (MS-Gate, paper Section V-B).
//!
//! A pseudo-label predictor estimates each cluster's UV inclusion
//! probability (eq. 17) under a PU rank loss (eq. 18); the region context
//! vector is the soft membership row gated by those probabilities (eq. 19);
//! a sigmoid parameter filter derived from the context (eq. 20) elementwise
//! moderates every parameter of the master classifier (eq. 21), yielding a
//! region-specific slave predictor (eq. 22).

use crate::gscm::FixedAssignment;
use std::sync::Arc;
use uvd_nn::{Activation, Linear, Mlp};
use uvd_tensor::{Graph, Matrix, NodeId, ParamSet, Rng64};

/// The MS-Gate module.
pub struct MsGate {
    /// Pseudo-label predictor `M^p` — an LR classifier on cluster
    /// representations (paper implementation note).
    pseudo_predictor: Linear,
    /// Context transform `W_q` (eq. 19).
    w_q: Linear,
    /// Filter transform `W_f` (eq. 20).
    w_f: Linear,
    /// Number of scalars in the gated classifier.
    filter_len: usize,
}

impl MsGate {
    /// `cluster_dim`: width of cluster representations; `k`: number of
    /// clusters; `ctx_dim`: context width; `classifier`: the master
    /// classifier whose parameters the filter must cover (2-layer MLP).
    pub fn new(
        name: &str,
        cluster_dim: usize,
        k: usize,
        ctx_dim: usize,
        classifier: &Mlp,
        rng: &mut Rng64,
    ) -> Self {
        assert_eq!(
            classifier.layers.len(),
            2,
            "MS-Gate expects a 2-layer MLP classifier"
        );
        let filter_len = classifier.num_scalars();
        let w_f = Linear::new(&format!("{name}.w_f"), ctx_dim, filter_len, rng);
        // Near-identity start: a +4 bias puts the sigmoid filter at ≈0.98,
        // so the freshly derived slaves coincide with the trained master at
        // the beginning of the slave stage and specialize from there instead
        // of first destroying the master's calibration.
        if let Some(b) = &w_f.b {
            for v in b.value_mut().as_mut_slice() {
                *v = 4.0;
            }
        }
        MsGate {
            pseudo_predictor: Linear::new(&format!("{name}.mp"), cluster_dim, 1, rng),
            w_q: Linear::new(&format!("{name}.w_q"), k, ctx_dim, rng),
            w_f,
            filter_len,
        }
    }

    pub fn filter_len(&self) -> usize {
        self.filter_len
    }

    /// eq. 17: inclusion probability per cluster from `h'` (K×d) → (K×1).
    pub fn inclusion_probs(&self, g: &mut Graph, h_prime: NodeId) -> NodeId {
        let z = self.pseudo_predictor.forward(g, h_prime);
        g.sigmoid(z)
    }

    /// eq. 18: PU rank loss between positive clusters `c1` and unlabeled
    /// clusters `c0`. Degenerates to zero when either side is empty (e.g.
    /// every cluster contains a known UV).
    pub fn rank_loss(&self, g: &mut Graph, probs: NodeId, c1: &[u32], c0: &[u32]) -> NodeId {
        if c1.is_empty() || c0.is_empty() {
            return g.constant(Matrix::zeros(1, 1));
        }
        let y1 = g.gather_rows(probs, Arc::new(c1.to_vec()));
        let y0 = g.gather_rows(probs, Arc::new(c0.to_vec()));
        let d = g.sub_outer(y1, y0); // |C1|×|C0|: ŷ_i - ŷ_j
        let neg = g_neg(g, d);
        let one_minus = g.add_scalar(neg, 1.0); // 1 - (ŷ_i - ŷ_j)
        let sq = g.mul(one_minus, one_minus);
        // Eq. 18 sums over C1×C0; we take the mean so the λ balancing weight
        // is independent of K (the pair count varies quadratically with the
        // cluster count, which would otherwise re-scale λ across sweeps).
        g.mean_all(sq)
    }

    /// eq. 19: region context `q_i = σ(W_q (B_{i,*} ∘ Ŷ^h))`.
    pub fn context(&self, g: &mut Graph, fixed: &FixedAssignment, probs: NodeId) -> NodeId {
        let b = g.constant(fixed.b_soft.clone()); // N×K, frozen membership
        let probs_row = g.transpose(probs); // 1×K
        let gated = g.mul_row(b, probs_row); // B ∘ Ŷ^h per row
        let q = self.w_q.forward(g, gated);
        Activation::LeakyRelu(0.2).apply(g, q)
    }

    /// eq. 20: sigmoid parameter filter `F = sigmoid(W_f q)` (N×|Φ_m|).
    pub fn filter(&self, g: &mut Graph, q: NodeId) -> NodeId {
        let f = self.w_f.forward(g, q);
        g.sigmoid(f)
    }

    /// eqs. 21–22: run the master classifier with per-region gated
    /// parameters. `x` is N×d, `f` is N×|Φ_m|; returns N×1 logits.
    ///
    /// The filter layout over the flattened classifier parameters is
    /// `[W1 | b1 | W2 | b2]`, matching `Mlp::num_scalars` ordering.
    pub fn gated_forward(&self, g: &mut Graph, classifier: &Mlp, x: NodeId, f: NodeId) -> NodeId {
        assert_eq!(classifier.layers.len(), 2);
        let l1 = &classifier.layers[0];
        let l2 = &classifier.layers[1];
        let (d, h) = l1.w.shape();
        let (h2, o) = l2.w.shape();
        assert_eq!(h, h2);
        assert_eq!(g.value(f).cols(), self.filter_len, "filter width mismatch");

        let mut off = 0usize;
        let f_w1 = g.slice_cols(f, off, off + d * h);
        off += d * h;
        let f_b1 = g.slice_cols(f, off, off + h);
        off += h;
        let f_w2 = g.slice_cols(f, off, off + h * o);
        off += h * o;
        let f_b2 = g.slice_cols(f, off, off + o);

        let w1 = g.param(&l1.w);
        let b1 = g.param(l1.b.as_ref().expect("classifier layer 1 has bias"));
        let w2 = g.param(&l2.w);
        let b2 = g.param(l2.b.as_ref().expect("classifier layer 2 has bias"));

        // Layer 1 with gated weights and gated bias.
        let z1 = g.gated_matmul(x, w1, f_w1);
        let b1_eff = g.mul_row(f_b1, b1); // F_{b1} ∘ b1, broadcast per region
        let z1 = g.add(z1, b1_eff);
        let a1 = classifier.hidden_activation.apply(g, z1);

        // Layer 2.
        let z2 = g.gated_matmul(a1, w2, f_w2);
        let b2_eff = g.mul_row(f_b2, b2);
        g.add(z2, b2_eff)
    }

    pub fn collect_params(&self, set: &mut ParamSet) {
        self.pseudo_predictor.collect_params(set);
        self.w_q.collect_params(set);
        self.w_f.collect_params(set);
    }
}

/// Negate a node (helper — `scale(x, -1)`).
fn g_neg(g: &mut Graph, x: NodeId) -> NodeId {
    g.scale(x, -1.0)
}

#[cfg(test)]
mod tests {
    // Exact float equality is intended in these tests: they assert
    // exact constants and bit-reproducible results, not tolerances.
    #![allow(clippy::float_cmp)]

    use super::*;
    use uvd_tensor::init::{normal_matrix, seeded_rng};

    fn fixed(n: usize, k: usize) -> FixedAssignment {
        let mut b_soft = Matrix::filled(n, k, 1.0 / k as f32);
        // Make memberships slightly uneven.
        for i in 0..n {
            b_soft.set(i, i % k, 0.5);
        }
        let mut b_hard_t = Matrix::zeros(k, n);
        let mut cluster_of = vec![0u32; n];
        for (i, c) in cluster_of.iter_mut().enumerate() {
            b_hard_t.set(i % k, i, 1.0);
            *c = (i % k) as u32;
        }
        FixedAssignment {
            b_soft,
            b_hard_t,
            pseudo: vec![1.0, 0.0, 0.0],
            cluster_of,
        }
    }

    fn make_gate(rng: &mut uvd_tensor::Rng64) -> (MsGate, Mlp) {
        let classifier = Mlp::new("clf", &[6, 4, 1], Activation::Tanh, rng);
        let gate = MsGate::new("gate", 6, 3, 5, &classifier, rng);
        (gate, classifier)
    }

    #[test]
    fn filter_len_matches_classifier() {
        let mut rng = seeded_rng(1);
        let (gate, clf) = make_gate(&mut rng);
        assert_eq!(gate.filter_len(), clf.num_scalars());
        assert_eq!(gate.filter_len(), 6 * 4 + 4 + 4 + 1);
    }

    #[test]
    fn rank_loss_prefers_separated_probs() {
        let mut rng = seeded_rng(2);
        let (gate, _) = make_gate(&mut rng);
        let mut g = Graph::new();
        let good = g.constant(Matrix::col_vec(&[0.9, 0.1, 0.2]));
        let bad = g.constant(Matrix::col_vec(&[0.1, 0.9, 0.8]));
        let lg = gate.rank_loss(&mut g, good, &[0], &[1, 2]);
        let lb = gate.rank_loss(&mut g, bad, &[0], &[1, 2]);
        assert!(g.scalar(lg) < g.scalar(lb));
    }

    #[test]
    fn rank_loss_empty_partition_is_zero() {
        let mut rng = seeded_rng(3);
        let (gate, _) = make_gate(&mut rng);
        let mut g = Graph::new();
        let p = g.constant(Matrix::col_vec(&[0.5, 0.5]));
        let l = gate.rank_loss(&mut g, p, &[], &[0, 1]);
        assert_eq!(g.scalar(l), 0.0);
        let l2 = gate.rank_loss(&mut g, p, &[0, 1], &[]);
        assert_eq!(g.scalar(l2), 0.0);
    }

    #[test]
    fn gated_forward_with_unit_filter_matches_master() {
        // If the filter were all ones, the slave equals the master. We can't
        // force the sigmoid to 1 exactly, so instead check the algebra by
        // feeding a constant all-ones filter node directly.
        let mut rng = seeded_rng(4);
        let (gate, clf) = make_gate(&mut rng);
        let x = normal_matrix(5, 6, 0.0, 1.0, &mut rng);
        let mut g = Graph::new();
        let xn = g.constant(x.clone());
        let ones = g.constant(Matrix::filled(5, gate.filter_len(), 1.0));
        let slave = gate.gated_forward(&mut g, &clf, xn, ones);
        let master = clf.forward(&mut g, xn);
        for (a, b) in g
            .value(slave)
            .as_slice()
            .iter()
            .zip(g.value(master).as_slice())
        {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn context_and_filter_shapes() {
        let mut rng = seeded_rng(5);
        let (gate, clf) = make_gate(&mut rng);
        let fx = fixed(7, 3);
        let mut g = Graph::new();
        let h = g.constant(normal_matrix(3, 6, 0.0, 1.0, &mut rng));
        let probs = gate.inclusion_probs(&mut g, h);
        assert_eq!(g.value(probs).shape(), (3, 1));
        let q = gate.context(&mut g, &fx, probs);
        assert_eq!(g.value(q).shape(), (7, 5));
        let f = gate.filter(&mut g, q);
        assert_eq!(g.value(f).shape(), (7, gate.filter_len()));
        // Filter entries in (0,1) — sigmoid range.
        assert!(g.value(f).as_slice().iter().all(|&v| v > 0.0 && v < 1.0));
        let x = g.constant(normal_matrix(7, 6, 0.0, 1.0, &mut rng));
        let logits = gate.gated_forward(&mut g, &clf, x, f);
        assert_eq!(g.value(logits).shape(), (7, 1));
    }

    #[test]
    fn different_contexts_give_different_slaves() {
        // Two regions with different cluster memberships must get different
        // predictions for identical inputs — the point of MS-Gate.
        let mut rng = seeded_rng(6);
        let (gate, clf) = make_gate(&mut rng);
        let mut fx = fixed(2, 3);
        // Region 0 strongly in positive cluster 0; region 1 in cluster 1.
        fx.b_soft = Matrix::from_rows(&[&[0.9, 0.05, 0.05], &[0.05, 0.9, 0.05]]);
        let mut g = Graph::new();
        let h = g.constant(normal_matrix(3, 6, 0.0, 1.0, &mut rng));
        let probs = gate.inclusion_probs(&mut g, h);
        let q = gate.context(&mut g, &fx, probs);
        let f = gate.filter(&mut g, q);
        let x = g.constant(Matrix::from_rows(&[
            &[1.0, -0.5, 0.3, 0.0, 0.2, -1.0],
            &[1.0, -0.5, 0.3, 0.0, 0.2, -1.0],
        ]));
        let logits = gate.gated_forward(&mut g, &clf, x, f);
        let v = g.value(logits);
        assert!(
            (v.get(0, 0) - v.get(1, 0)).abs() > 1e-6,
            "identical inputs with different contexts should differ"
        );
    }
}
