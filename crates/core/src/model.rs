//! The full CMSF model: two-stage training (Algorithms 1 & 2) and region-wise
//! detection (Section V-C).

use crate::config::CmsfConfig;
use crate::gate::MsGate;
use crate::gscm::{FixedAssignment, Gscm};
use crate::maga::MagaStack;
use rand::seq::SliceRandom;
use std::sync::Arc;
use std::time::Instant;
use uvd_nn::{Activation, FusionAgg, Linear, Mlp};
use uvd_tensor::init::{derive_seed, seeded_rng};
use uvd_tensor::{par, Adam, Graph, NeighborSampler, NodeId, ParamSet};
use uvd_urg::{Detector, FitError, FitReport, Urg};

/// Prefetched batch consumed without blocking (it was ready in the queue).
static PREFETCH_HIT: uvd_obs::Counter = uvd_obs::Counter::new("batch.prefetch.hit");
/// Consumer reached the queue before the producer finished the batch.
static PREFETCH_MISS: uvd_obs::Counter = uvd_obs::Counter::new("batch.prefetch.miss");
/// Total milliseconds the training loop blocked waiting on batch preparation.
static PREFETCH_WAIT_MS: uvd_obs::Counter = uvd_obs::Counter::new("batch.prefetch.wait_ms");

/// `(labeled rows, targets, weights)` triple shared by the BCE losses.
pub type BceVectors = (Arc<Vec<u32>>, Arc<Vec<f32>>, Arc<Vec<f32>>);

/// The Contextual Master-Slave Framework.
pub struct Cmsf {
    pub cfg: CmsfConfig,
    img_reduce: Option<Linear>,
    maga: MagaStack,
    gscm: Option<Gscm>,
    global_fuse: FusionAgg,
    classifier: Mlp,
    gate: Option<MsGate>,
    /// Frozen clustering state after the master stage.
    fixed: Option<FixedAssignment>,
    params: ParamSet,
    trained_slave: bool,
    /// Feature widths the model was built for (input validation in `fit`).
    d_poi_in: usize,
    d_img_in: usize,
    /// Largest training workspace observed (bytes), across both stages.
    peak_ws_bytes: usize,
}

/// Intermediate representation of one forward pass.
struct Repr {
    /// Region representation `x̃'` fed to the classifier (N×d_final).
    x_final: NodeId,
    /// Updated cluster representations `h'` (None without hierarchy).
    h_prime: Option<NodeId>,
}

/// Node handles of a recorded detection head (see
/// [`Cmsf::record_serve_head`]).
struct ScoreNodes {
    x_final: NodeId,
    /// Gate filter `f` rows; `None` when the gated path is inactive.
    filter: Option<NodeId>,
    /// Sigmoid scores, one row per region.
    p: NodeId,
}

/// Handles of the serving *head* plan: `x̃` is a `set_value`-able leaf,
/// replays recompute the full-city classifier inputs and scores.
pub struct ServeHead {
    /// The `x̃` constant leaf (N×d_rep) — patch + `set_value` + `replay`.
    pub x_tilde: NodeId,
    /// Classifier input rows `x̃'` (N×d_final) to gather per request.
    pub x_final: NodeId,
    /// Gate filter rows (N×filter_len); `None` on gate-less variants.
    pub filter: Option<NodeId>,
    /// Full-city sigmoid scores (N×1).
    pub p: NodeId,
}

/// Handles of a per-worker batch scoring plan (see
/// [`Cmsf::record_serve_batch`]).
pub struct ServeBatch {
    /// Gathered `x_final` rows leaf (capacity×d_final).
    pub x: NodeId,
    /// Gathered gate-filter rows leaf; `None` on gate-less variants.
    pub filter: Option<NodeId>,
    /// Sigmoid scores for the gathered rows (capacity×1).
    pub p: NodeId,
}

/// One sampled mini-batch: the induced subgraph, its (ascending) global
/// node ids, and the BCE vectors remapped to subgraph-local rows.
struct SampledBatch {
    sub: Urg,
    nodes: Vec<u32>,
    rows: Arc<Vec<u32>>,
    targets: Arc<Vec<f32>>,
    weights: Arc<Vec<f32>>,
}

/// The config fields batch sampling depends on — `Copy`, so the prefetch
/// producer thread can own them without borrowing the (non-`Send`) model.
#[derive(Clone, Copy)]
struct SampleSpec {
    seed: u64,
    fanout: usize,
    hops: usize,
}

/// Epoch-0 work item for one mini-batch: the sampled subgraph plus, on the
/// slave stage, the frozen assignment restricted to it.
struct PreparedBatch {
    batch: SampledBatch,
    fixed_sub: Option<FixedAssignment>,
}

/// Sample one batch's subgraph: the k-hop incoming neighborhood of the
/// batch's labeled seed regions, materialized as an induced [`Urg`] with the
/// BCE vectors remapped to subgraph-local rows. A free function of `Send`
/// state only (the model holds `Rc` parameters and cannot cross threads), so
/// the prefetch producer can run it off-thread. The sampler seed depends
/// only on `(spec.seed, batch_no)` — master and slave stages see identical
/// subgraphs, reruns are reproducible at any thread count, and preparation
/// order cannot leak into the result.
fn sample_batch_impl(
    urg: &Urg,
    spec: SampleSpec,
    batch_idx: &[usize],
    batch_no: usize,
) -> Result<SampledBatch, FitError> {
    let mut sp = uvd_obs::span("cmsf.sample").field("batch", batch_no as f64);
    let mut seeds: Vec<u32> = batch_idx.iter().map(|&i| urg.labeled[i]).collect();
    seeds.sort_unstable();
    let sampler = NeighborSampler::new(
        derive_seed(derive_seed(spec.seed, Cmsf::SEED_SAMPLER), batch_no as u64),
        spec.fanout,
        spec.hops,
    );
    let nodes = sampler.sample(&urg.edges, &seeds)?;
    sp.add_field("seeds", seeds.len() as f64);
    sp.add_field("nodes", nodes.len() as f64);
    sp.add_field("fanout", spec.fanout as f64);
    let sub = urg.induced(&nodes);
    // The loss runs over the batch's seeds only — other labeled regions
    // pulled in as neighbors contribute context, not supervision.
    let mut rows = Vec::with_capacity(batch_idx.len());
    let mut targets = Vec::with_capacity(batch_idx.len());
    for &i in batch_idx {
        let local = nodes
            .binary_search(&urg.labeled[i])
            .expect("seed row must be in its own sampled subgraph");
        rows.push(local as u32);
        targets.push(urg.y[i]);
    }
    let weights = vec![1.0f32; rows.len()];
    Ok(SampledBatch {
        sub,
        nodes,
        rows: Arc::new(rows),
        targets: Arc::new(targets),
        weights: Arc::new(weights),
    })
}

impl Cmsf {
    /// Construct CMSF for a URG's feature dimensions. The mini-batch knobs
    /// honor `UVD_BATCH` / `UVD_SAMPLE_FANOUT` over the programmatic config
    /// (same env-wins precedence as `UVD_THREADS`).
    pub fn new(urg: &Urg, cfg: CmsfConfig) -> Self {
        let mut cfg = cfg;
        if let Some(b) = crate::env::env_batch() {
            cfg.batch_size = b;
        }
        if let Some(f) = crate::env::env_fanout() {
            cfg.sample_fanout = f;
        }
        if let Some(p) = crate::env::env_prefetch() {
            cfg.prefetch = p;
        }
        let mut rng = seeded_rng(derive_seed(cfg.seed, 0xC35F));
        let d_poi = urg.x_poi.cols();
        let (img_reduce, d_img) = if urg.has_image() {
            (
                Some(Linear::new(
                    "cmsf.img_reduce",
                    urg.x_img.cols(),
                    cfg.img_reduce,
                    &mut rng,
                )),
                cfg.img_reduce,
            )
        } else {
            (None, 0)
        };
        let maga = MagaStack::new(
            "cmsf.maga",
            d_poi,
            d_img,
            cfg.hidden,
            cfg.n_heads,
            cfg.maga_layers,
            cfg.modal_agg,
            cfg.use_maga_cross,
            &mut rng,
        );
        let d_rep = maga.out_dim();
        let (gscm, global_fuse, d_final) = if cfg.use_hierarchy {
            let mut gscm = Gscm::new("cmsf.gscm", d_rep, cfg.k_clusters, cfg.tau, &mut rng);
            if cfg.soft_collection {
                gscm.collection = crate::gscm::CollectionMode::Soft;
            }
            let fuse = FusionAgg::new("cmsf.gfuse", cfg.global_agg, d_rep, &mut rng);
            let d_final = fuse.out_dim(d_rep);
            (Some(gscm), fuse, d_final)
        } else {
            (None, FusionAgg::Sum, d_rep)
        };
        let classifier = Mlp::new(
            "cmsf.clf",
            &[d_final, cfg.hidden, 1],
            Activation::Tanh,
            &mut rng,
        );
        let gate = if cfg.use_hierarchy && cfg.use_gate {
            Some(MsGate::new(
                "cmsf.gate",
                d_rep,
                cfg.k_clusters,
                cfg.hidden,
                &classifier,
                &mut rng,
            ))
        } else {
            None
        };

        let mut params = ParamSet::new();
        if let Some(l) = &img_reduce {
            l.collect_params(&mut params);
        }
        maga.collect_params(&mut params);
        if let Some(gscm) = &gscm {
            gscm.collect_params(&mut params);
        }
        global_fuse.collect_params(&mut params);
        classifier.collect_params(&mut params);
        if let Some(gate) = &gate {
            gate.collect_params(&mut params);
        }

        Cmsf {
            cfg,
            img_reduce,
            maga,
            gscm,
            global_fuse,
            classifier,
            gate,
            fixed: None,
            params,
            trained_slave: false,
            d_poi_in: d_poi,
            d_img_in: if urg.has_image() { urg.x_img.cols() } else { 0 },
            peak_ws_bytes: 0,
        }
    }

    /// Check that a URG's feature widths match what this model was built
    /// for; returns the first mismatch as a typed error instead of letting a
    /// matmul shape assert panic deep inside a kernel.
    pub fn validate_input(&self, urg: &Urg) -> Option<FitError> {
        if urg.x_poi.cols() != self.d_poi_in {
            return Some(FitError::ShapeMismatch {
                what: "x_poi",
                expected_cols: self.d_poi_in,
                got_cols: urg.x_poi.cols(),
            });
        }
        if self.d_img_in > 0 && urg.has_image() && urg.x_img.cols() != self.d_img_in {
            return Some(FitError::ShapeMismatch {
                what: "x_img",
                expected_cols: self.d_img_in,
                got_cols: urg.x_img.cols(),
            });
        }
        None
    }

    /// Forward through MAGA (+ image reduction). Returns `x̃` (N×d_rep).
    fn maga_forward(&self, g: &mut Graph, urg: &Urg) -> NodeId {
        let x_p = g.constant(urg.x_poi.clone());
        let x_i = self.img_reduce.as_ref().map(|l| {
            let raw = g.constant(urg.x_img.clone());
            let reduced = l.forward(g, raw);
            g.tanh(reduced)
        });
        self.maga.forward(g, x_p, x_i, &urg.edges)
    }

    /// Full representation pass; `fixed` freezes the assignment (slave
    /// stage / inference after slave training).
    fn representation(&self, g: &mut Graph, urg: &Urg, fixed: Option<&FixedAssignment>) -> Repr {
        let x_tilde = self.maga_forward(g, urg);
        self.representation_from(g, x_tilde, fixed)
    }

    /// Representation pass from an already-materialized `x̃` node — shared
    /// by the normal full pass and the serving head plan, which holds `x̃`
    /// as a `set_value`-able leaf instead of re-running MAGA.
    fn representation_from(
        &self,
        g: &mut Graph,
        x_tilde: NodeId,
        fixed: Option<&FixedAssignment>,
    ) -> Repr {
        match &self.gscm {
            Some(gscm) => {
                let out = gscm.forward(g, x_tilde, fixed);
                let x_final = self.global_fuse.forward(g, x_tilde, out.x_global);
                Repr {
                    x_final,
                    h_prime: Some(out.h_prime),
                }
            }
            None => Repr {
                x_final: x_tilde,
                h_prime: None,
            },
        }
    }

    /// Training targets/weights over all labeled rows for a train split.
    pub fn bce_vectors(&self, urg: &Urg, train_idx: &[usize]) -> BceVectors {
        let rows: Vec<u32> = train_idx.iter().map(|&i| urg.labeled[i]).collect();
        let targets: Vec<f32> = train_idx.iter().map(|&i| urg.y[i]).collect();
        let weights = vec![1.0f32; train_idx.len()];
        (Arc::new(rows), Arc::new(targets), Arc::new(weights))
    }

    /// Seed streams for the deterministic mini-batch machinery (arbitrary
    /// constants, distinct from the 0xC35F parameter-init stream).
    const SEED_BATCH_SHUFFLE: u64 = 0xB47C_0001;
    const SEED_SAMPLER: u64 = 0xB47C_0002;

    /// Deterministic mini-batch partition of the train split: one seeded
    /// Fisher-Yates shuffle, then contiguous chunks of `cfg.batch_size`.
    /// The partition is a pure function of `(cfg.seed, train_idx)` — fixed
    /// across epochs and across both training stages, so each batch's tape
    /// is recorded once and replayed. `None` when mini-batching is off
    /// (batch 0) or pointless (batch ≥ train set), in which case the
    /// caller takes the full-batch path — the bitwise-deterministic oracle.
    fn minibatches(&self, train_idx: &[usize]) -> Option<Vec<Vec<usize>>> {
        let b = self.cfg.batch_size;
        if b == 0 || b >= train_idx.len() {
            return None;
        }
        let mut idx = train_idx.to_vec();
        let mut rng = seeded_rng(derive_seed(self.cfg.seed, Self::SEED_BATCH_SHUFFLE));
        idx.shuffle(&mut rng);
        Some(idx.chunks(b).map(|c| c.to_vec()).collect())
    }

    /// The [`SampleSpec`] for this model's configuration.
    fn sample_spec(&self) -> SampleSpec {
        SampleSpec {
            seed: self.cfg.seed,
            fanout: self.cfg.sample_fanout,
            hops: self.cfg.maga_layers,
        }
    }

    /// Drive `consume` over every batch's [`PreparedBatch`], in batch order.
    ///
    /// With `cfg.prefetch == 0` preparation runs inline (the serial
    /// reference). Otherwise a scoped producer thread samples/induces up to
    /// `prefetch` batches ahead while the consumer records and steps the
    /// current one; a bounded channel hands items over strictly in order, so
    /// the consumer observes the exact serial sequence — prefetch changes
    /// *when* a batch is prepared, never *what* is prepared. The
    /// `batch.prefetch.{hit,miss,wait_ms}` counters report how often the
    /// pipeline kept up and how long the trainer stalled when it did not.
    fn for_each_prepared(
        &self,
        urg: &Urg,
        batches: &[Vec<usize>],
        fixed: Option<&FixedAssignment>,
        mut consume: impl FnMut(usize, PreparedBatch) -> Result<(), FitError>,
    ) -> Result<(), FitError> {
        let spec = self.sample_spec();
        let prepare = |b_no: usize, b_idx: &[usize]| -> Result<PreparedBatch, FitError> {
            let batch = sample_batch_impl(urg, spec, b_idx, b_no)?;
            let fixed_sub = fixed.map(|f| f.induced(&batch.nodes));
            Ok(PreparedBatch { batch, fixed_sub })
        };
        if self.cfg.prefetch == 0 || batches.len() < 2 {
            for (b_no, b_idx) in batches.iter().enumerate() {
                consume(b_no, prepare(b_no, b_idx)?)?;
            }
            return Ok(());
        }
        // Thread-pool overrides are thread-local: capture the caller's
        // effective width and re-install it on the producer so batch
        // preparation parallelizes (and chunks) exactly as it would inline.
        let threads = par::effective_threads();
        std::thread::scope(|scope| {
            let (tx, rx) = std::sync::mpsc::sync_channel(self.cfg.prefetch);
            scope.spawn(move || {
                par::with_threads(threads, || {
                    for (b_no, b_idx) in batches.iter().enumerate() {
                        let item = prepare(b_no, b_idx);
                        let failed = item.is_err();
                        // A send error means the consumer bailed (train-step
                        // error path); a preparation error is forwarded and
                        // ends the stream.
                        if tx.send(item).is_err() || failed {
                            break;
                        }
                    }
                });
            });
            for b_no in 0..batches.len() {
                let item = match rx.try_recv() {
                    Ok(item) => {
                        PREFETCH_HIT.add(1);
                        item
                    }
                    Err(std::sync::mpsc::TryRecvError::Empty) => {
                        PREFETCH_MISS.add(1);
                        let t = Instant::now();
                        let item = rx
                            .recv()
                            .expect("prefetch producer exited without a final item");
                        PREFETCH_WAIT_MS.add(t.elapsed().as_millis() as u64);
                        item
                    }
                    Err(std::sync::mpsc::TryRecvError::Disconnected) => {
                        unreachable!("prefetch producer exited without a final item")
                    }
                };
                consume(b_no, item?)?;
            }
            Ok(())
        })
    }

    /// Fold the resident workspace of a set of simultaneously-live tapes
    /// into the peak-workspace statistic (all batch tapes are held for
    /// replay, so their *sum* is what is resident at once).
    fn note_peak_ws(&mut self, tapes: &[(Graph, NodeId)]) {
        let total: usize = tapes.iter().map(|(g, _)| g.workspace_bytes()).sum();
        self.peak_ws_bytes = self.peak_ws_bytes.max(total);
    }

    /// Algorithm 1: master training stage. Returns the average loss of the
    /// final epoch, or [`FitError::NonFiniteLoss`] at the first epoch whose
    /// loss diverges (no point polishing garbage parameters).
    ///
    /// With `cfg.batch_size > 0` the stage trains on neighbor-sampled
    /// mini-batches instead of the whole graph (see
    /// [`Cmsf::train_master_minibatch`]); full-batch remains the default
    /// and the bitwise-deterministic reference.
    pub fn train_master(&mut self, urg: &Urg, train_idx: &[usize]) -> Result<f32, FitError> {
        if let Some(batches) = self.minibatches(train_idx) {
            return self.train_master_minibatch(urg, train_idx, &batches);
        }
        let _stage = uvd_obs::span("cmsf.master").field("epochs", self.cfg.master_epochs as f64);
        let (rows, targets, weights) = self.bce_vectors(urg, train_idx);
        let mut opt = Adam::new(self.cfg.lr);
        let mut last = 0.0;
        // Record the epoch tape once; every later epoch replays it in place
        // (refreshed parameter leaves, reused value/grad buffers).
        let mut g = Graph::new();
        let loss = self.record_master_tape(&mut g, urg, &rows, &targets, &weights);
        for epoch in 0..self.cfg.master_epochs {
            let mut ep = uvd_obs::span("cmsf.master.epoch").field("epoch", epoch as f64);
            if epoch > 0 {
                g.replay();
            }
            last = self.train_step(&mut g, loss, &mut opt);
            ep.add_field("loss", f64::from(last));
            if !last.is_finite() {
                self.peak_ws_bytes = self.peak_ws_bytes.max(g.workspace_bytes());
                return Err(FitError::NonFiniteLoss);
            }
            opt.decay(self.cfg.lr_decay);
        }
        self.peak_ws_bytes = self.peak_ws_bytes.max(g.workspace_bytes());
        self.freeze_assignment(urg, train_idx);
        Ok(last)
    }

    /// Mini-batch master stage (GraphSAGE-style): per batch, sample a
    /// subgraph and record one tape against the current parameters (first
    /// epoch); later epochs replay every batch tape in the same fixed
    /// order — zero steady-state allocation, exactly the full-batch
    /// record-replay contract applied per batch. SGD over neighbor-sampled
    /// subgraphs approximates the full-batch objective and is validated by
    /// the convergence contract, not bitwise equality. Returns the mean
    /// batch loss of the final epoch.
    fn train_master_minibatch(
        &mut self,
        urg: &Urg,
        train_idx: &[usize],
        batches: &[Vec<usize>],
    ) -> Result<f32, FitError> {
        let _stage = uvd_obs::span("cmsf.master")
            .field("epochs", self.cfg.master_epochs as f64)
            .field("batches", batches.len() as f64);
        let mut opt = Adam::new(self.cfg.lr);
        let mut tapes: Vec<(Graph, NodeId)> = Vec::with_capacity(batches.len());
        let mut last = 0.0;
        for epoch in 0..self.cfg.master_epochs {
            let mut ep = uvd_obs::span("cmsf.master.epoch").field("epoch", epoch as f64);
            let mut sum = 0.0;
            if epoch == 0 {
                // Recording epoch: batch k+1 is sampled/induced by the
                // prefetch pipeline while batch k records and steps.
                let result = self.for_each_prepared(urg, batches, None, |_, prep| {
                    let batch = prep.batch;
                    let mut g = Graph::new();
                    let loss = self.record_master_tape(
                        &mut g,
                        &batch.sub,
                        &batch.rows,
                        &batch.targets,
                        &batch.weights,
                    );
                    tapes.push((g, loss));
                    let (g, loss) = tapes.last_mut().expect("tape just pushed");
                    let l = self.train_step(g, *loss, &mut opt);
                    sum += l;
                    if !l.is_finite() {
                        return Err(FitError::NonFiniteLoss);
                    }
                    Ok(())
                });
                if let Err(err) = result {
                    self.note_peak_ws(&tapes);
                    return Err(err);
                }
            } else {
                for b_no in 0..batches.len() {
                    tapes[b_no].0.replay();
                    let (g, loss) = &mut tapes[b_no];
                    let l = self.train_step(g, *loss, &mut opt);
                    sum += l;
                    if !l.is_finite() {
                        self.note_peak_ws(&tapes);
                        return Err(FitError::NonFiniteLoss);
                    }
                }
            }
            last = sum / batches.len() as f32;
            ep.add_field("loss", f64::from(last));
            opt.decay(self.cfg.lr_decay);
        }
        self.note_peak_ws(&tapes);
        // The assignment freeze stays a full-graph no-grad inference pass in
        // both modes: activations-only memory is modest even at 350k
        // regions, and it keeps the frozen clustering exact.
        self.freeze_assignment(urg, train_idx);
        Ok(last)
    }

    /// Freeze the cluster assignment from the current representation and
    /// derive pseudo labels (Algorithm 1 line 11). No-op without hierarchy.
    /// Runs as a no-grad inference pass.
    pub fn freeze_assignment(&mut self, urg: &Urg, train_idx: &[usize]) {
        let _s = uvd_obs::span("cmsf.freeze");
        if let Some(gscm) = &self.gscm {
            let mut g = Graph::inference();
            let x_tilde = self.maga_forward(&mut g, urg);
            let b = gscm.assignment(&mut g, x_tilde);
            let b_soft = g.value(b).clone();
            let (b_hard_t, cluster_of) = gscm.binarize_t(&b_soft);
            let pseudo = gscm.pseudo_labels(&cluster_of, &urg.labeled, &urg.y, train_idx);
            self.fixed = Some(FixedAssignment {
                b_soft,
                b_hard_t,
                pseudo,
                cluster_of,
            });
        }
    }

    /// Record the master-stage tape (representation → classifier → BCE) onto
    /// `g` and return the loss node. Shared by the replay training loop and
    /// the timing harnesses.
    pub fn record_master_tape(
        &self,
        g: &mut Graph,
        urg: &Urg,
        rows: &Arc<Vec<u32>>,
        targets: &Arc<Vec<f32>>,
        weights: &Arc<Vec<f32>>,
    ) -> NodeId {
        let repr = self.representation(g, urg, None);
        let logits = self.classifier.forward(g, repr.x_final);
        let labeled_logits = g.gather_rows(logits, rows.clone());
        g.bce_with_logits(labeled_logits, targets.clone(), weights.clone())
    }

    /// Shared epoch tail: evaluate the loss on the (recorded or replayed)
    /// tape, backprop, and apply one optimizer step.
    fn train_step(&self, g: &mut Graph, loss: NodeId, opt: &mut Adam) -> f32 {
        let value = g.scalar(loss);
        g.backward(loss);
        g.write_grads();
        if self.cfg.grad_clip > 0.0 {
            self.params.clip_grad_norm(self.cfg.grad_clip);
        }
        opt.step(&self.params);
        value
    }

    /// One master epoch (full-batch), recording a fresh tape. Exposed for the
    /// Table III timing harness as the per-epoch-rebuild baseline; the
    /// training loops in [`Cmsf::train_master`] record once and replay.
    pub fn master_epoch(
        &self,
        urg: &Urg,
        rows: &Arc<Vec<u32>>,
        targets: &Arc<Vec<f32>>,
        weights: &Arc<Vec<f32>>,
        opt: &mut Adam,
    ) -> f32 {
        let mut g = Graph::new();
        let repr = self.representation(&mut g, urg, None);
        let logits = self.classifier.forward(&mut g, repr.x_final);
        let labeled_logits = g.gather_rows(logits, rows.clone());
        let loss = g.bce_with_logits(labeled_logits, targets.clone(), weights.clone());
        let value = g.scalar(loss);
        g.backward(loss);
        g.write_grads();
        if self.cfg.grad_clip > 0.0 {
            self.params.clip_grad_norm(self.cfg.grad_clip);
        }
        opt.step(&self.params);
        value
    }

    /// Algorithm 2: slave adaptive training stage. Requires a prior
    /// [`Cmsf::train_master`] (which froze the assignment); running it out of
    /// order is a typed [`FitError::StageOrder`] instead of a panic.
    pub fn train_slave(&mut self, urg: &Urg, train_idx: &[usize]) -> Result<f32, FitError> {
        let (Some(_), Some(_)) = (&self.gscm, &self.gate) else {
            return Ok(0.0); // CMSF-G / CMSF-H variants skip this stage.
        };
        let Some(fixed) = self.fixed.clone() else {
            return Err(FitError::StageOrder {
                required: "train_master",
                attempted: "train_slave",
            });
        };
        if let Some(batches) = self.minibatches(train_idx) {
            return self.train_slave_minibatch(urg, &fixed, &batches);
        }
        let _stage = uvd_obs::span("cmsf.slave").field("epochs", self.cfg.slave_epochs as f64);
        let (rows, targets, weights) = self.bce_vectors(urg, train_idx);
        let (c1, c0) = fixed.partition();
        // The slave stage refines an already-trained master; a smaller step
        // size keeps the joint fine-tuning from washing out stage one.
        let mut opt = Adam::new(self.cfg.lr * 0.3);
        let mut last = 0.0;
        // Record the slave tape once, replay across epochs (the frozen
        // assignment and rank-loss index sets are constants of the tape).
        let mut g = Graph::new();
        let loss =
            self.record_slave_tape(&mut g, urg, &fixed, &c1, &c0, &rows, &targets, &weights)?;
        for epoch in 0..self.cfg.slave_epochs {
            let mut ep = uvd_obs::span("cmsf.slave.epoch").field("epoch", epoch as f64);
            if epoch > 0 {
                g.replay();
            }
            last = self.train_step(&mut g, loss, &mut opt);
            ep.add_field("loss", f64::from(last));
            if !last.is_finite() {
                self.peak_ws_bytes = self.peak_ws_bytes.max(g.workspace_bytes());
                return Err(FitError::NonFiniteLoss);
            }
            opt.decay(self.cfg.lr_decay);
        }
        self.peak_ws_bytes = self.peak_ws_bytes.max(g.workspace_bytes());
        self.trained_slave = true;
        Ok(last)
    }

    /// Mini-batch slave stage: the same sampled subgraphs as the master
    /// stage (the sampler seed depends only on the batch index), with the
    /// frozen assignment restricted to each subgraph via
    /// [`FixedAssignment::induced`]. The rank loss keeps the *global*
    /// cluster partition (C₁/C₀) and pseudo labels; cluster representations
    /// are estimated from each batch's members.
    fn train_slave_minibatch(
        &mut self,
        urg: &Urg,
        fixed: &FixedAssignment,
        batches: &[Vec<usize>],
    ) -> Result<f32, FitError> {
        let _stage = uvd_obs::span("cmsf.slave")
            .field("epochs", self.cfg.slave_epochs as f64)
            .field("batches", batches.len() as f64);
        let (c1, c0) = fixed.partition();
        let mut opt = Adam::new(self.cfg.lr * 0.3);
        let mut tapes: Vec<(Graph, NodeId)> = Vec::with_capacity(batches.len());
        let mut last = 0.0;
        for epoch in 0..self.cfg.slave_epochs {
            let mut ep = uvd_obs::span("cmsf.slave.epoch").field("epoch", epoch as f64);
            let mut sum = 0.0;
            if epoch == 0 {
                // Recording epoch: the producer also restricts the frozen
                // assignment to each sampled subgraph ahead of time.
                let result = self.for_each_prepared(urg, batches, Some(fixed), |_, prep| {
                    let batch = prep.batch;
                    let fixed_b = prep.fixed_sub.expect("slave prepare induces assignment");
                    let mut g = Graph::new();
                    let loss = self.record_slave_tape(
                        &mut g,
                        &batch.sub,
                        &fixed_b,
                        &c1,
                        &c0,
                        &batch.rows,
                        &batch.targets,
                        &batch.weights,
                    )?;
                    tapes.push((g, loss));
                    let (g, loss) = tapes.last_mut().expect("tape just pushed");
                    let l = self.train_step(g, *loss, &mut opt);
                    sum += l;
                    if !l.is_finite() {
                        return Err(FitError::NonFiniteLoss);
                    }
                    Ok(())
                });
                if let Err(err) = result {
                    self.note_peak_ws(&tapes);
                    return Err(err);
                }
            } else {
                for b_no in 0..batches.len() {
                    tapes[b_no].0.replay();
                    let (g, loss) = &mut tapes[b_no];
                    let l = self.train_step(g, *loss, &mut opt);
                    sum += l;
                    if !l.is_finite() {
                        self.note_peak_ws(&tapes);
                        return Err(FitError::NonFiniteLoss);
                    }
                }
            }
            last = sum / batches.len() as f32;
            ep.add_field("loss", f64::from(last));
            opt.decay(self.cfg.lr_decay);
        }
        self.note_peak_ws(&tapes);
        self.trained_slave = true;
        Ok(last)
    }

    /// Record the slave-stage tape (Algorithm 2: gated classification loss
    /// `L_c` plus `λ`-scaled rank loss `L_p`) onto `g` and return the loss
    /// node. Shared by the replay training loop and the timing harnesses.
    /// Requires the MS-Gate and the cluster hierarchy; their absence is a
    /// typed [`FitError::MissingHierarchy`].
    #[allow(clippy::too_many_arguments)]
    pub fn record_slave_tape(
        &self,
        g: &mut Graph,
        urg: &Urg,
        fixed: &FixedAssignment,
        c1: &[u32],
        c0: &[u32],
        rows: &Arc<Vec<u32>>,
        targets: &Arc<Vec<f32>>,
        weights: &Arc<Vec<f32>>,
    ) -> Result<NodeId, FitError> {
        let gate = self
            .gate
            .as_ref()
            .ok_or(FitError::MissingHierarchy { what: "gate" })?;
        let repr = self.representation(g, urg, Some(fixed));
        let h_prime = repr
            .h_prime
            .ok_or(FitError::MissingHierarchy { what: "h_prime" })?;
        // eq. 17 + eq. 18.
        let probs = gate.inclusion_probs(g, h_prime);
        let l_p = gate.rank_loss(g, probs, c1, c0);
        // eqs. 19–22.
        let q = gate.context(g, fixed, probs);
        let f = gate.filter(g, q);
        let logits = gate.gated_forward(g, &self.classifier, repr.x_final, f);
        let labeled_logits = g.gather_rows(logits, rows.clone());
        let l_c = g.bce_with_logits(labeled_logits, targets.clone(), weights.clone());
        // eq. 24.
        let l_p_scaled = g.scale(l_p, self.cfg.lambda);
        Ok(g.add(l_c, l_p_scaled))
    }

    /// One slave epoch (full-batch), recording a fresh tape; exposed for
    /// timing as the per-epoch-rebuild baseline.
    #[allow(clippy::too_many_arguments)]
    pub fn slave_epoch(
        &self,
        urg: &Urg,
        fixed: &FixedAssignment,
        c1: &[u32],
        c0: &[u32],
        rows: &Arc<Vec<u32>>,
        targets: &Arc<Vec<f32>>,
        weights: &Arc<Vec<f32>>,
        opt: &mut Adam,
    ) -> Result<f32, FitError> {
        let mut g = Graph::new();
        let loss = self.record_slave_tape(&mut g, urg, fixed, c1, c0, rows, targets, weights)?;
        let value = g.scalar(loss);
        g.backward(loss);
        g.write_grads();
        if self.cfg.grad_clip > 0.0 {
            self.params.clip_grad_norm(self.cfg.grad_clip);
        }
        opt.step(&self.params);
        Ok(value)
    }

    /// Record the detection head from an `x̃` node: GSCM (frozen) + fusion +
    /// MS-Gate + classifier + sigmoid, returning the node handles the
    /// serving layer caches. This *is* the op sequence of
    /// [`Cmsf::predict_proba`] after MAGA — both paths run through here, so
    /// served scores are bitwise the scores `predict` would produce.
    fn score_from_x_tilde(&self, g: &mut Graph, x_tilde: NodeId) -> ScoreNodes {
        let (x_final, filter, logits) = match (&self.gate, &self.fixed, self.trained_slave) {
            (Some(gate), Some(fixed), true) => {
                let repr = self.representation_from(g, x_tilde, Some(fixed));
                match repr.h_prime {
                    // Gated detection path (the trained configuration).
                    Some(h_prime) => {
                        let _gs = uvd_obs::span("cmsf.gate");
                        let probs = gate.inclusion_probs(g, h_prime);
                        let q = gate.context(g, fixed, probs);
                        let f = gate.filter(g, q);
                        let logits = gate.gated_forward(g, &self.classifier, repr.x_final, f);
                        (repr.x_final, Some(f), logits)
                    }
                    // Hierarchy unexpectedly absent (e.g. a checkpoint loaded
                    // into a gate-less representation): degrade to the plain
                    // classifier instead of panicking.
                    None => {
                        let logits = self.classifier.forward(g, repr.x_final);
                        (repr.x_final, None, logits)
                    }
                }
            }
            _ => {
                let repr = self.representation_from(g, x_tilde, self.fixed.as_ref());
                let logits = self.classifier.forward(g, repr.x_final);
                (repr.x_final, None, logits)
            }
        };
        let p = g.sigmoid(logits);
        ScoreNodes { x_final, filter, p }
    }

    /// Detection (Section V-C): probability of being an urban village for
    /// every region.
    pub fn predict_proba(&self, urg: &Urg) -> Vec<f32> {
        let _s = uvd_obs::span("cmsf.predict");
        let mut g = Graph::inference();
        let x_tilde = self.maga_forward(&mut g, urg);
        let nodes = self.score_from_x_tilde(&mut g, x_tilde);
        g.value(nodes.p).as_slice().to_vec()
    }

    /// The MAGA output `x̃` for a whole URG as a plain matrix — the cache
    /// the serving layer patches row-wise on incremental POI updates.
    pub fn x_tilde_matrix(&self, urg: &Urg) -> uvd_tensor::Matrix {
        let mut g = Graph::inference();
        let xt = self.maga_forward(&mut g, urg);
        g.value(xt).clone()
    }

    /// Width of the master-stage region representation `x̃` (d_rep) — the
    /// dimensionality of exported embeddings.
    pub fn embedding_dim(&self) -> usize {
        self.maga.out_dim()
    }

    /// Record the serving *head* plan into `g`: `x̃` becomes a
    /// `set_value`-able constant leaf feeding the exact detection-head op
    /// sequence of [`Cmsf::predict_proba`]. Replaying after patching the
    /// leaf recomputes `x_final`, the gate filter and every region score
    /// without re-running MAGA.
    pub fn record_serve_head(&self, g: &mut Graph, x_tilde: &uvd_tensor::Matrix) -> ServeHead {
        let leaf = g.constant(x_tilde.clone());
        let nodes = self.score_from_x_tilde(g, leaf);
        ServeHead {
            x_tilde: leaf,
            x_final: nodes.x_final,
            filter: nodes.filter,
            p: nodes.p,
        }
    }

    /// Record a per-worker batch scoring plan: `capacity` gathered
    /// `x_final` rows (and gate-filter rows when `gated`) as constant
    /// leaves, through the gated classifier to sigmoid scores. Per tick the
    /// worker `set_value`s the leaves and replays — one gated-matmul replay
    /// per micro-batch. Scores are row-independent in every kernel on this
    /// path, so a gathered row scores bitwise as it would in the full pass.
    ///
    /// `gated` must mirror the head plan's filter presence
    /// (`ServeHead::filter.is_some()`).
    pub fn record_serve_batch(
        &self,
        g: &mut Graph,
        capacity: usize,
        d_final: usize,
        gated: bool,
    ) -> ServeBatch {
        let x = g.constant(uvd_tensor::Matrix::zeros(capacity, d_final));
        match (gated, &self.gate) {
            (true, Some(gate)) => {
                let f = g.constant(uvd_tensor::Matrix::zeros(capacity, gate.filter_len()));
                let logits = gate.gated_forward(g, &self.classifier, x, f);
                let p = g.sigmoid(logits);
                ServeBatch {
                    x,
                    filter: Some(f),
                    p,
                }
            }
            _ => {
                let logits = self.classifier.forward(g, x);
                let p = g.sigmoid(logits);
                ServeBatch { x, filter: None, p }
            }
        }
    }

    /// Predict with a *live* assignment recomputed from the current
    /// representation (Section V-C describes computing membership for new
    /// regions at detection time; used by the city-growth example).
    pub fn predict_proba_live(&self, urg: &Urg, train_idx: &[usize]) -> Vec<f32> {
        match &self.gscm {
            Some(gscm) => {
                let mut g = Graph::inference();
                let x_tilde = self.maga_forward(&mut g, urg);
                let b = gscm.assignment(&mut g, x_tilde);
                let b_soft = g.value(b).clone();
                let (b_hard_t, cluster_of) = gscm.binarize_t(&b_soft);
                let pseudo = gscm.pseudo_labels(&cluster_of, &urg.labeled, &urg.y, train_idx);
                let fixed = FixedAssignment {
                    b_soft,
                    b_hard_t,
                    pseudo,
                    cluster_of,
                };
                let mut g = Graph::inference();
                let logits = match (&self.gate, self.trained_slave) {
                    (Some(gate), true) => {
                        let repr = self.representation(&mut g, urg, Some(&fixed));
                        match repr.h_prime {
                            Some(h_prime) => {
                                let probs = gate.inclusion_probs(&mut g, h_prime);
                                let q = gate.context(&mut g, &fixed, probs);
                                let f = gate.filter(&mut g, q);
                                gate.gated_forward(&mut g, &self.classifier, repr.x_final, f)
                            }
                            // Degrade to the plain classifier when the
                            // hierarchy is absent (see predict_proba).
                            None => self.classifier.forward(&mut g, repr.x_final),
                        }
                    }
                    _ => {
                        let repr = self.representation(&mut g, urg, Some(&fixed));
                        self.classifier.forward(&mut g, repr.x_final)
                    }
                };
                let p = g.sigmoid(logits);
                g.value(p).as_slice().to_vec()
            }
            None => self.predict_proba(urg),
        }
    }

    /// Frozen clustering state (available after the master stage).
    pub fn fixed_assignment(&self) -> Option<&FixedAssignment> {
        self.fixed.as_ref()
    }

    /// True once the slave adaptive stage has run.
    pub fn slave_trained(&self) -> bool {
        self.trained_slave
    }

    /// Overwrite the trained-state markers (used by checkpoint loading).
    pub fn set_trained_state(&mut self, fixed: Option<FixedAssignment>, slave_trained: bool) {
        self.fixed = fixed;
        self.trained_slave = slave_trained && self.gate.is_some();
    }

    /// The model's parameter set (for optimizers / size accounting).
    pub fn param_set(&self) -> &ParamSet {
        &self.params
    }

    /// Largest training workspace (value + gradient arena bytes) seen across
    /// the master and slave stages. Zero before training.
    pub fn peak_workspace_bytes(&self) -> usize {
        self.peak_ws_bytes
    }
}

impl Detector for Cmsf {
    fn name(&self) -> &'static str {
        if !self.cfg.use_maga_cross {
            "CMSF-M"
        } else if !self.cfg.use_hierarchy {
            "CMSF-H"
        } else if !self.cfg.use_gate {
            "CMSF-G"
        } else {
            "CMSF"
        }
    }

    fn fit(&mut self, urg: &Urg, train_idx: &[usize]) -> FitReport {
        if let Some(err) = self.validate_input(urg) {
            return FitReport {
                error: Some(err),
                ..FitReport::default()
            };
        }
        let start = Instant::now();
        let mut report = FitReport::default();
        match self.train_master(urg, train_idx) {
            Ok(master_loss) => {
                report.epochs = self.cfg.master_epochs;
                match self.train_slave(urg, train_idx) {
                    Ok(slave_loss) if self.trained_slave => {
                        report.epochs += self.cfg.slave_epochs;
                        report.final_loss = slave_loss;
                    }
                    Ok(_) => report.final_loss = master_loss,
                    Err(err) => {
                        // Master stage succeeded; keep its loss but surface
                        // the slave failure so the runner can attribute it.
                        report.final_loss = master_loss;
                        report.error = Some(err);
                    }
                }
            }
            Err(err) => {
                report.final_loss = f32::NAN;
                report.error = Some(err);
            }
        }
        report.train_secs = start.elapsed().as_secs_f64();
        report
    }

    fn predict(&self, urg: &Urg) -> Vec<f32> {
        self.predict_proba(urg)
    }

    fn num_params(&self) -> usize {
        self.params.num_scalars()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvd_citysim::{City, CityPreset};
    use uvd_urg::UrgOptions;

    fn tiny_setup(seed: u64) -> (Urg, Vec<usize>) {
        let city = City::from_config(CityPreset::tiny(), seed);
        let urg = Urg::build(&city, UrgOptions::default());
        let train_idx: Vec<usize> = (0..urg.labeled.len()).collect();
        (urg, train_idx)
    }

    #[test]
    fn master_training_reduces_loss() {
        let (urg, train) = tiny_setup(1);
        let mut cfg = CmsfConfig::fast_test();
        cfg.master_epochs = 1;
        let mut model = Cmsf::new(&urg, cfg);
        let first = model.train_master(&urg, &train).expect("master trains");
        let mut cfg2 = CmsfConfig::fast_test();
        cfg2.master_epochs = 25;
        let mut model2 = Cmsf::new(&urg, cfg2);
        let last = model2.train_master(&urg, &train).expect("master trains");
        assert!(last < first, "loss should drop: {first} -> {last}");
    }

    #[test]
    fn full_two_stage_fit_and_predict() {
        let (urg, train) = tiny_setup(2);
        let mut model = Cmsf::new(&urg, CmsfConfig::fast_test());
        let report = model.fit(&urg, &train);
        assert!(report.final_loss.is_finite());
        assert!(report.epochs > 0);
        let probs = model.predict(&urg);
        assert_eq!(probs.len(), urg.n);
        assert!(probs.iter().all(|p| (0.0..=1.0).contains(p)));
        // Training separates classes on the training data itself.
        let mean = |positive: bool| -> f32 {
            let (mut s, mut c) = (0.0, 0usize);
            for (i, &r) in urg.labeled.iter().enumerate() {
                if (urg.y[i] > 0.5) == positive {
                    s += probs[r as usize];
                    c += 1;
                }
            }
            s / c.max(1) as f32
        };
        assert!(mean(true) > mean(false), "positives should score higher");
    }

    #[test]
    fn variants_build_and_fit() {
        let (urg, train) = tiny_setup(3);
        for (cross, hier, gate, name) in [
            (false, true, true, "CMSF-M"),
            (true, true, false, "CMSF-G"),
            (true, false, false, "CMSF-H"),
        ] {
            let mut cfg = CmsfConfig::fast_test();
            cfg.use_maga_cross = cross;
            cfg.use_hierarchy = hier;
            cfg.use_gate = gate;
            cfg.master_epochs = 5;
            cfg.slave_epochs = 2;
            let mut model = Cmsf::new(&urg, cfg);
            assert_eq!(model.name(), name);
            let r = model.fit(&urg, &train);
            assert!(r.final_loss.is_finite(), "{name}");
            assert_eq!(model.predict(&urg).len(), urg.n);
        }
    }

    #[test]
    fn no_image_urg_is_supported() {
        let city = City::from_config(CityPreset::tiny(), 4);
        let urg = Urg::build(&city, UrgOptions::no_image());
        let train: Vec<usize> = (0..urg.labeled.len()).collect();
        let mut cfg = CmsfConfig::fast_test();
        cfg.master_epochs = 4;
        cfg.slave_epochs = 2;
        let mut model = Cmsf::new(&urg, cfg);
        let r = model.fit(&urg, &train);
        assert!(r.final_loss.is_finite());
    }

    #[test]
    fn pseudo_labels_derive_from_training_split_only() {
        let (urg, _) = tiny_setup(5);
        let mut cfg = CmsfConfig::fast_test();
        cfg.master_epochs = 3;
        let mut model = Cmsf::new(&urg, cfg);
        // Train with an empty positive set: no cluster can be pseudo-positive.
        let negatives: Vec<usize> = (0..urg.labeled.len()).filter(|&i| urg.y[i] < 0.5).collect();
        model.train_master(&urg, &negatives).expect("master trains");
        let fixed = model.fixed_assignment().expect("fixed after master");
        assert!(fixed.pseudo.iter().all(|&p| p == 0.0));
    }

    #[test]
    fn slave_before_master_is_a_typed_stage_order_error() {
        let (urg, train) = tiny_setup(8);
        let mut model = Cmsf::new(&urg, CmsfConfig::fast_test());
        let err = model
            .train_slave(&urg, &train)
            .expect_err("slave must not run before master");
        assert_eq!(
            err,
            FitError::StageOrder {
                required: "train_master",
                attempted: "train_slave",
            }
        );
        // The model stays usable: the master stage still trains afterwards.
        assert!(model.train_master(&urg, &train).is_ok());
        assert!(model.train_slave(&urg, &train).is_ok());
    }

    #[test]
    fn soft_collection_variant_trains() {
        let (urg, train) = tiny_setup(7);
        let mut cfg = CmsfConfig::fast_test();
        cfg.soft_collection = true;
        cfg.master_epochs = 8;
        cfg.slave_epochs = 2;
        let mut model = Cmsf::new(&urg, cfg);
        let r = model.fit(&urg, &train);
        assert!(r.final_loss.is_finite());
        let probs = model.predict(&urg);
        assert!(probs.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn minibatch_master_reduces_loss() {
        let (urg, train) = tiny_setup(1);
        let mut cfg = CmsfConfig::fast_test();
        cfg.batch_size = 8;
        cfg.sample_fanout = 0; // exact k-hop closure per batch
        cfg.master_epochs = 1;
        let mut one = Cmsf::new(&urg, cfg);
        let first = one.train_master(&urg, &train).expect("master trains");
        cfg.master_epochs = 25;
        let mut many = Cmsf::new(&urg, cfg);
        let last = many.train_master(&urg, &train).expect("master trains");
        assert!(
            last < first,
            "minibatch loss should drop: {first} -> {last}"
        );
    }

    #[test]
    fn minibatch_two_stage_fit_is_deterministic() {
        let (urg, train) = tiny_setup(9);
        let mut cfg = CmsfConfig::fast_test();
        cfg.batch_size = 8;
        cfg.sample_fanout = 4;
        cfg.master_epochs = 10;
        cfg.slave_epochs = 3;
        let mut m1 = Cmsf::new(&urg, cfg);
        let r1 = m1.fit(&urg, &train);
        assert!(r1.error.is_none(), "{:?}", r1.error);
        assert!(r1.final_loss.is_finite());
        assert!(m1.slave_trained(), "slave stage must run in minibatch mode");
        assert!(m1.peak_workspace_bytes() > 0);
        let mut m2 = Cmsf::new(&urg, cfg);
        m2.fit(&urg, &train);
        assert_eq!(m1.predict(&urg), m2.predict(&urg), "same seed, same model");
    }

    #[test]
    fn oversized_batch_falls_back_to_full_batch_bitwise() {
        let (urg, train) = tiny_setup(2);
        let mut cfg = CmsfConfig::fast_test();
        cfg.master_epochs = 5;
        cfg.slave_epochs = 2;
        let mut full = Cmsf::new(&urg, cfg);
        full.fit(&urg, &train);
        // batch >= train set is pointless; the model must take the exact
        // full-batch path, not a one-batch approximation of it.
        cfg.batch_size = train.len() + 100;
        cfg.sample_fanout = 2;
        let mut capped = Cmsf::new(&urg, cfg);
        capped.fit(&urg, &train);
        assert_eq!(full.predict(&urg), capped.predict(&urg));
    }

    #[test]
    fn deterministic_given_seed() {
        let (urg, train) = tiny_setup(6);
        let mut cfg = CmsfConfig::fast_test();
        cfg.master_epochs = 5;
        cfg.slave_epochs = 2;
        let mut m1 = Cmsf::new(&urg, cfg);
        m1.fit(&urg, &train);
        let mut m2 = Cmsf::new(&urg, cfg);
        m2.fit(&urg, &train);
        assert_eq!(m1.predict(&urg), m2.predict(&urg));
    }
}
