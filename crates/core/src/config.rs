//! CMSF hyper-parameters and per-city defaults (paper Section VI-A
//! "Implementations", scaled to the synthetic cities — see DESIGN.md §5).

use uvd_nn::AggMode;

/// All CMSF hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct CmsfConfig {
    /// Attention head output dimensionality (d' per head).
    pub hidden: usize,
    /// Image features are first reduced to this many dims by a linear layer
    /// (paper: 4096 → 128; here 256 → `img_reduce`).
    pub img_reduce: usize,
    /// Attention heads (paper: 2 for Shenzhen/Fuzhou, 1 for Beijing).
    pub n_heads: usize,
    /// Stacked MAGA layers (paper: 2).
    pub maga_layers: usize,
    /// Fusion for the inter-modal context, eq. 8 (paper: attention).
    pub modal_agg: AggMode,
    /// Fusion of local and global representation, eq. 13
    /// (paper: sum for Shenzhen/Fuzhou, concat for Beijing).
    pub global_agg: AggMode,
    /// Number of latent semantic clusters K.
    pub k_clusters: usize,
    /// Assignment softmax temperature τ (eq. 9 with [41]).
    pub tau: f32,
    /// Balancing weight λ of the pseudo-label loss (eq. 24).
    pub lambda: f32,
    /// Adam learning rate.
    pub lr: f32,
    /// Exponential LR decay per epoch (paper: 0.1%).
    pub lr_decay: f32,
    /// Master-stage epochs (Algorithm 1).
    pub master_epochs: usize,
    /// Slave-adaptive-stage epochs (Algorithm 2; "very few iterations").
    pub slave_epochs: usize,
    /// Global gradient-norm clip (0 disables).
    pub grad_clip: f32,
    /// Parameter initialization seed.
    pub seed: u64,
    /// Use cross-modal attention in MAGA (false = CMSF-M variant).
    pub use_maga_cross: bool,
    /// Use the GSCM hierarchy (false = CMSF-H variant; also disables gate).
    pub use_hierarchy: bool,
    /// Use the MS-Gate slave stage (false = CMSF-G variant).
    pub use_gate: bool,
    /// Design-choice ablation: soft regions→clusters collection instead of
    /// the paper's binarized assignment (eq. 10).
    pub soft_collection: bool,
    /// Labeled seed regions per mini-batch for neighbor-sampled training.
    /// 0 (default) trains full-batch — the bitwise-deterministic reference
    /// path. Overridable via the `UVD_BATCH` environment variable.
    pub batch_size: usize,
    /// Incoming-neighbor cap per node per hop when sampling a mini-batch
    /// subgraph. 0 (default) takes every neighbor: the exact k-hop closure,
    /// whose forward is bitwise-equal to slicing the full-graph forward.
    /// Overridable via `UVD_SAMPLE_FANOUT`.
    pub sample_fanout: usize,
    /// Mini-batch prefetch depth: while batch `k`'s tape records/steps, a
    /// background thread samples and induces batch `k+1` (up to `prefetch`
    /// batches ahead). Batches are consumed strictly in shuffle order and
    /// every batch's sampler seed depends only on its index, so training is
    /// bitwise identical at any depth. 0 prepares batches inline (the serial
    /// reference). Overridable via `UVD_PREFETCH`.
    pub prefetch: usize,
}

impl Default for CmsfConfig {
    fn default() -> Self {
        CmsfConfig {
            hidden: 16,
            img_reduce: 32,
            n_heads: 2,
            maga_layers: 2,
            modal_agg: AggMode::Attention,
            global_agg: AggMode::Sum,
            k_clusters: 16,
            tau: 0.1,
            lambda: 0.01,
            lr: 5e-3,
            lr_decay: 0.001,
            master_epochs: 100,
            slave_epochs: 20,
            grad_clip: 5.0,
            seed: 0,
            use_maga_cross: true,
            use_hierarchy: true,
            use_gate: true,
            soft_collection: false,
            batch_size: 0,
            sample_fanout: 0,
            prefetch: 2,
        }
    }
}

impl CmsfConfig {
    /// Per-city defaults following the relative choices in the paper
    /// (head counts, K, τ, λ, global aggregation).
    pub fn for_city(name: &str) -> Self {
        let base = CmsfConfig::default();
        match name {
            n if n.starts_with("shenzhen") => CmsfConfig {
                n_heads: 2,
                k_clusters: 20,
                tau: 0.1,
                lambda: 0.01,
                ..base
            },
            n if n.starts_with("fuzhou") => CmsfConfig {
                n_heads: 2,
                k_clusters: 16,
                tau: 0.01,
                lambda: 0.05,
                ..base
            },
            // Model selection on the synthetic Beijing-like dataset prefers
            // 2 heads + Sum fusion over the paper's 1 head + concat (chosen
            // for the real Beijing data), and a smaller K: the synthetic
            // Beijing has the FEWEST urban-village patches of the three
            // presets (sparsest labels), so fewer latent groups fit it —
            // consistent with the paper's finding that K tracks the number
            // of latent semantic groups, even though the direction differs
            // from the real Beijing.
            n if n.starts_with("beijing") => CmsfConfig {
                n_heads: 2,
                k_clusters: 12,
                tau: 0.1,
                lambda: 0.01,
                ..base
            },
            _ => base,
        }
    }

    /// A fast configuration for unit/integration tests.
    pub fn fast_test() -> Self {
        CmsfConfig {
            hidden: 8,
            img_reduce: 16,
            n_heads: 1,
            maga_layers: 1,
            k_clusters: 6,
            master_epochs: 15,
            slave_epochs: 5,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_city_matches_relative_choices() {
        let sz = CmsfConfig::for_city("shenzhen-like");
        let fz = CmsfConfig::for_city("fuzhou-like");
        let bj = CmsfConfig::for_city("beijing-like");
        // K tracks the number of latent semantic groups: the Beijing-like
        // preset has the fewest UV patches, so the smallest K.
        assert!(bj.k_clusters < fz.k_clusters && fz.k_clusters < sz.k_clusters);
        // Fuzhou: smallest τ and largest λ, as in the paper.
        assert!(fz.tau < sz.tau);
        assert!(fz.lambda > sz.lambda && fz.lambda >= bj.lambda);
        // Unknown city falls back to defaults.
        let d = CmsfConfig::for_city("atlantis");
        assert_eq!(d.k_clusters, CmsfConfig::default().k_clusters);
    }
}
