//! # cmsf
//!
//! The paper's primary contribution: the **Contextual Master-Slave
//! Framework** for urban village detection on an Urban Region Graph.
//!
//! * [`maga`] — Mutual-Attentive Graph Aggregation (eqs. 1–8): intra- and
//!   cross-modal graph attention fusing POI and image modalities.
//! * [`gscm`] — Global Semantic Clustering Module (eqs. 9–13): temperature-
//!   softmax assignment to K latent clusters, learnable complete-graph
//!   convolution among clusters, reverse knowledge sharing.
//! * [`gate`] — MS-Gate (eqs. 17–22): PU pseudo-label predictor, region
//!   context vector, sigmoid parameter filter deriving a slave classifier
//!   per region.
//! * [`model`] — two-stage training (Algorithms 1 & 2) and detection.
//!
//! ```
//! use uvd_citysim::{City, CityPreset};
//! use uvd_urg::{Detector, Urg, UrgOptions};
//! use cmsf::{Cmsf, CmsfConfig};
//!
//! let city = City::from_config(CityPreset::tiny(), 7);
//! let urg = Urg::build(&city, UrgOptions::default());
//! let train: Vec<usize> = (0..urg.labeled.len()).collect();
//! let mut cfg = CmsfConfig::fast_test();
//! cfg.master_epochs = 4;
//! cfg.slave_epochs = 2;
//! let mut model = Cmsf::new(&urg, cfg);
//! model.fit(&urg, &train);
//! let probs = model.predict(&urg);
//! assert_eq!(probs.len(), urg.n);
//! ```

pub mod config;
pub mod env;
pub mod gate;
pub mod gscm;
pub mod maga;
pub mod model;
pub mod persist;

pub use config::CmsfConfig;
pub use gate::MsGate;
pub use gscm::{CollectionMode, FixedAssignment, Gscm};
pub use maga::{MagaLayer, MagaStack};
pub use model::{Cmsf, ServeBatch, ServeHead};
pub use persist::{embedding_key, EMBED_PREFIX};
