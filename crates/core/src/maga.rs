//! Mutual-Attentive Graph Aggregation (MAGA, paper Section V-A-1).
//!
//! Each layer runs, per modality, an intra-modal attention (eqs. 1–3) and a
//! cross-modal attention over the other modality (eqs. 5–7), then fuses the
//! two context vectors with the AGG operator (eq. 8). Stacking layers
//! exploits richer cross-modal context; the final multi-modal representation
//! is the concatenation of the two modality representations.
//!
//! With the image modality absent (`noImage` ablation) the layer degrades to
//! intra-modal attention over POI features only. With `use_cross = false`
//! (CMSF-M variant) each modality is aggregated independently — a vanilla
//! GAT per modality.

use std::sync::Arc;
use uvd_nn::{AggMode, FusionAgg, MultiHeadAttention};
use uvd_tensor::{EdgeIndex, Graph, NodeId, ParamSet, Rng64};

/// One MAGA layer over (POI, image) modalities.
pub struct MagaLayer {
    intra_p: MultiHeadAttention,
    cross_p: Option<MultiHeadAttention>,
    fuse_p: Option<FusionAgg>,
    intra_i: Option<MultiHeadAttention>,
    cross_i: Option<MultiHeadAttention>,
    fuse_i: Option<FusionAgg>,
    out_p: usize,
    out_i: usize,
}

impl MagaLayer {
    /// `d_p`/`d_i`: input dims per modality (`d_i = 0` disables the image
    /// branch). `use_cross = false` builds the CMSF-M variant.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: &str,
        d_p: usize,
        d_i: usize,
        hidden: usize,
        n_heads: usize,
        agg: AggMode,
        use_cross: bool,
        rng: &mut Rng64,
    ) -> Self {
        let head_out = hidden * n_heads;
        let intra_p =
            MultiHeadAttention::new_intra(&format!("{name}.pp"), d_p, hidden, n_heads, rng);
        let (cross_p, fuse_p, intra_i, cross_i, fuse_i, out_p, out_i);
        if d_i > 0 {
            intra_i = Some(MultiHeadAttention::new_intra(
                &format!("{name}.ii"),
                d_i,
                hidden,
                n_heads,
                rng,
            ));
            if use_cross {
                cross_p = Some(MultiHeadAttention::new_cross(
                    &format!("{name}.pi"),
                    d_p,
                    d_i,
                    hidden,
                    n_heads,
                    rng,
                ));
                cross_i = Some(MultiHeadAttention::new_cross(
                    &format!("{name}.ip"),
                    d_i,
                    d_p,
                    hidden,
                    n_heads,
                    rng,
                ));
                let fp = FusionAgg::new(&format!("{name}.fp"), agg, head_out, rng);
                let fi = FusionAgg::new(&format!("{name}.fi"), agg, head_out, rng);
                out_p = fp.out_dim(head_out);
                out_i = fi.out_dim(head_out);
                fuse_p = Some(fp);
                fuse_i = Some(fi);
            } else {
                cross_p = None;
                cross_i = None;
                fuse_p = None;
                fuse_i = None;
                out_p = head_out;
                out_i = head_out;
            }
        } else {
            intra_i = None;
            cross_p = None;
            cross_i = None;
            fuse_p = None;
            fuse_i = None;
            out_p = head_out;
            out_i = 0;
        }
        MagaLayer {
            intra_p,
            cross_p,
            fuse_p,
            intra_i,
            cross_i,
            fuse_i,
            out_p,
            out_i,
        }
    }

    pub fn out_dims(&self) -> (usize, usize) {
        (self.out_p, self.out_i)
    }

    /// Forward one layer. Returns the updated per-modality representations.
    pub fn forward(
        &self,
        g: &mut Graph,
        x_p: NodeId,
        x_i: Option<NodeId>,
        edges: &Arc<EdgeIndex>,
    ) -> (NodeId, Option<NodeId>) {
        let pp = self.intra_p.forward(g, x_p, x_p, edges);
        match (x_i, &self.intra_i) {
            (Some(xi), Some(intra_i)) => {
                let ii = intra_i.forward(g, xi, xi, edges);
                match (&self.cross_p, &self.cross_i, &self.fuse_p, &self.fuse_i) {
                    (Some(cp), Some(ci), Some(fp), Some(fi)) => {
                        let pi = cp.forward(g, x_p, xi, edges);
                        let ip = ci.forward(g, xi, x_p, edges);
                        let hp = fp.forward(g, pp, pi);
                        let hi = fi.forward(g, ii, ip);
                        (hp, Some(hi))
                    }
                    _ => (pp, Some(ii)),
                }
            }
            _ => (pp, None),
        }
    }

    pub fn collect_params(&self, set: &mut ParamSet) {
        self.intra_p.collect_params(set);
        for m in [&self.cross_p, &self.intra_i, &self.cross_i]
            .into_iter()
            .flatten()
        {
            m.collect_params(set);
        }
        for f in [&self.fuse_p, &self.fuse_i].into_iter().flatten() {
            f.collect_params(set);
        }
    }
}

/// A stack of MAGA layers; the final representation is `x̂^P ⊕ x̂^I`.
pub struct MagaStack {
    pub layers: Vec<MagaLayer>,
    out_dim: usize,
}

impl MagaStack {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: &str,
        d_p: usize,
        d_i: usize,
        hidden: usize,
        n_heads: usize,
        n_layers: usize,
        agg: AggMode,
        use_cross: bool,
        rng: &mut Rng64,
    ) -> Self {
        assert!(n_layers >= 1);
        let mut layers = Vec::with_capacity(n_layers);
        let (mut dp, mut di) = (d_p, d_i);
        for l in 0..n_layers {
            let layer = MagaLayer::new(
                &format!("{name}.l{l}"),
                dp,
                di,
                hidden,
                n_heads,
                agg,
                use_cross,
                rng,
            );
            let (op, oi) = layer.out_dims();
            dp = op;
            di = oi;
            layers.push(layer);
        }
        MagaStack {
            layers,
            out_dim: dp + di,
        }
    }

    /// Dimensionality of the concatenated multi-modal representation.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    pub fn forward(
        &self,
        g: &mut Graph,
        x_p: NodeId,
        x_i: Option<NodeId>,
        edges: &Arc<EdgeIndex>,
    ) -> NodeId {
        let (mut hp, mut hi) = (x_p, x_i);
        for layer in &self.layers {
            let (np, ni) = layer.forward(g, hp, hi, edges);
            hp = np;
            hi = ni;
        }
        match hi {
            Some(hi) => g.concat_cols(hp, hi),
            None => hp,
        }
    }

    pub fn collect_params(&self, set: &mut ParamSet) {
        for l in &self.layers {
            l.collect_params(set);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvd_nn::AggMode;
    use uvd_tensor::init::{normal_matrix, seeded_rng};

    fn edges4() -> Arc<EdgeIndex> {
        let mut pairs = vec![(0u32, 1u32), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2)];
        for i in 0..4 {
            pairs.push((i, i));
        }
        Arc::new(EdgeIndex::from_pairs(4, pairs))
    }

    #[test]
    fn two_modal_stack_dims() {
        let mut rng = seeded_rng(1);
        let stack = MagaStack::new("m", 6, 5, 4, 2, 2, AggMode::Attention, true, &mut rng);
        // Attention fusion keeps head_out = 8 per modality; concat of the two
        // modalities -> 16.
        assert_eq!(stack.out_dim(), 16);
        let mut g = Graph::new();
        let xp = g.constant(normal_matrix(4, 6, 0.0, 1.0, &mut rng));
        let xi = g.constant(normal_matrix(4, 5, 0.0, 1.0, &mut rng));
        let out = stack.forward(&mut g, xp, Some(xi), &edges4());
        assert_eq!(g.value(out).shape(), (4, 16));
    }

    #[test]
    fn concat_fusion_grows_dims_per_layer() {
        let mut rng = seeded_rng(2);
        let stack = MagaStack::new("m", 6, 5, 4, 1, 2, AggMode::Concat, true, &mut rng);
        // layer1: per-modality 4 -> concat fusion 8; layer2: 8 -> 8 heads out
        // is 4, fused 8; final concat 16.
        assert_eq!(stack.out_dim(), 16);
    }

    #[test]
    fn single_modality_falls_back_to_intra() {
        let mut rng = seeded_rng(3);
        let stack = MagaStack::new("m", 6, 0, 4, 2, 1, AggMode::Attention, true, &mut rng);
        assert_eq!(stack.out_dim(), 8);
        let mut g = Graph::new();
        let xp = g.constant(normal_matrix(4, 6, 0.0, 1.0, &mut rng));
        let out = stack.forward(&mut g, xp, None, &edges4());
        assert_eq!(g.value(out).shape(), (4, 8));
    }

    #[test]
    fn no_cross_variant_has_fewer_params() {
        let mut rng = seeded_rng(4);
        let full = MagaStack::new("f", 6, 5, 4, 1, 1, AggMode::Attention, true, &mut rng);
        let no_cross = MagaStack::new("n", 6, 5, 4, 1, 1, AggMode::Attention, false, &mut rng);
        let count = |s: &MagaStack| {
            let mut set = ParamSet::new();
            s.collect_params(&mut set);
            set.num_scalars()
        };
        assert!(count(&no_cross) < count(&full));
    }

    #[test]
    fn gradients_reach_all_params() {
        let mut rng = seeded_rng(5);
        let stack = MagaStack::new("m", 6, 5, 4, 1, 2, AggMode::Attention, true, &mut rng);
        let mut g = Graph::new();
        let xp = g.constant(normal_matrix(4, 6, 0.0, 1.0, &mut rng));
        let xi = g.constant(normal_matrix(4, 5, 0.0, 1.0, &mut rng));
        let out = stack.forward(&mut g, xp, Some(xi), &edges4());
        let sq = g.mul(out, out);
        let loss = g.sum_all(sq);
        g.backward(loss);
        g.write_grads();
        let mut set = ParamSet::new();
        stack.collect_params(&mut set);
        let nonzero = set
            .iter()
            .filter(|p| p.grad().as_slice().iter().any(|&v| v != 0.0))
            .count();
        // At least the transformation matrices must receive gradient.
        assert!(
            nonzero * 2 > set.len(),
            "{nonzero}/{} params got grads",
            set.len()
        );
    }
}
