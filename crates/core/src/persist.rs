//! Saving and loading trained CMSF models.
//!
//! A checkpoint stores every trainable parameter plus the frozen clustering
//! state from the master stage (assignment matrices, cluster pseudo labels),
//! so a reloaded model detects identically to the one that was saved. The
//! model must be *reconstructed with the same configuration and URG feature
//! dimensions* before loading (the checkpoint carries values, not
//! architecture).

use crate::gscm::FixedAssignment;
use crate::model::Cmsf;
use std::io;
use std::path::Path;
use uvd_tensor::{EmbeddingMeta, EmbeddingStore, Matrix, MatrixStore};
use uvd_urg::Urg;

/// Entry-name prefix for exported per-city embedding matrices.
pub const EMBED_PREFIX: &str = "emb.";

/// The store key an exported city embedding lives under.
pub fn embedding_key(city_id: &str) -> String {
    format!("{EMBED_PREFIX}{city_id}")
}

const KEY_B_SOFT: &str = "cmsf.fixed.b_soft";
const KEY_B_HARD_T: &str = "cmsf.fixed.b_hard_t";
const KEY_PSEUDO: &str = "cmsf.fixed.pseudo";
const KEY_CLUSTER_OF: &str = "cmsf.fixed.cluster_of";
const KEY_FLAGS: &str = "cmsf.flags";

impl Cmsf {
    /// Capture the trained state into a [`MatrixStore`].
    pub fn to_store(&self) -> MatrixStore {
        let mut store = MatrixStore::new();
        store.capture_params(self.param_set());
        let mut flags = Matrix::zeros(1, 2);
        flags.set(0, 0, if self.slave_trained() { 1.0 } else { 0.0 });
        if let Some(fixed) = self.fixed_assignment() {
            flags.set(0, 1, 1.0);
            store.insert(KEY_B_SOFT, fixed.b_soft.clone());
            store.insert(KEY_B_HARD_T, fixed.b_hard_t.clone());
            store.insert(KEY_PSEUDO, Matrix::row_vec(&fixed.pseudo));
            let cluster_of: Vec<f32> = fixed.cluster_of.iter().map(|&c| c as f32).collect();
            store.insert(KEY_CLUSTER_OF, Matrix::row_vec(&cluster_of));
        }
        store.insert(KEY_FLAGS, flags);
        store
    }

    /// Restore trained state from a [`MatrixStore`] captured by
    /// [`Cmsf::to_store`]. The receiver must have been constructed with the
    /// same configuration (parameter names/shapes must match).
    ///
    /// The restore is transactional: every required key is validated (names,
    /// shapes, and the internal consistency of the fixed-assignment block)
    /// *before* any model state is touched, so a failed restore leaves the
    /// receiver exactly as it was.
    pub fn restore_from_store(&mut self, store: &MatrixStore) -> io::Result<()> {
        let bad = |msg: String| -> io::Error { io::Error::new(io::ErrorKind::InvalidData, msg) };
        // Phase 1: validate everything without mutating.
        store.validate_params(self.param_set())?;
        let flags = store
            .get(KEY_FLAGS)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "missing cmsf.flags"))?;
        if flags.shape() != (1, 2) {
            return Err(bad(format!(
                "cmsf.flags must be 1x2, got {:?}",
                flags.shape()
            )));
        }
        let slave_trained = flags.get(0, 0) > 0.5;
        let has_fixed = flags.get(0, 1) > 0.5;
        let fixed = if has_fixed {
            let get = |k: &str| {
                store
                    .get(k)
                    .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("missing {k}")))
            };
            let b_soft = get(KEY_B_SOFT)?;
            let b_hard_t = get(KEY_B_HARD_T)?;
            let pseudo = get(KEY_PSEUDO)?;
            let cluster_of = get(KEY_CLUSTER_OF)?;
            // b_soft is regions × clusters; the rest must agree with it.
            let (n, k) = b_soft.shape();
            if b_hard_t.shape() != (k, n) {
                return Err(bad(format!(
                    "{KEY_B_HARD_T} must be {k}x{n} (transpose of {KEY_B_SOFT}), got {:?}",
                    b_hard_t.shape()
                )));
            }
            if pseudo.as_slice().len() != k {
                return Err(bad(format!(
                    "{KEY_PSEUDO} must hold {k} cluster labels, got {}",
                    pseudo.as_slice().len()
                )));
            }
            if cluster_of.as_slice().len() != n {
                return Err(bad(format!(
                    "{KEY_CLUSTER_OF} must hold {n} region assignments, got {}",
                    cluster_of.as_slice().len()
                )));
            }
            Some(FixedAssignment {
                b_soft: b_soft.clone(),
                b_hard_t: b_hard_t.clone(),
                pseudo: pseudo.as_slice().to_vec(),
                cluster_of: cluster_of.as_slice().iter().map(|&v| v as u32).collect(),
            })
        } else {
            None
        };
        // Phase 2: everything checked out — mutate.
        store.restore_params(self.param_set())?;
        self.set_trained_state(fixed, slave_trained);
        Ok(())
    }

    /// Export the frozen master-stage representation `x̃` for a city into
    /// an [`EmbeddingStore`], under `emb.<city_id>`, stamped with the city
    /// id, the embedding width, and the content hash of this model's
    /// checkpoint — the "pretrain once" half of the reusable-embedding
    /// story (downstream heads consume the entry without re-running MAGA).
    pub fn export_embeddings(&self, urg: &Urg, city_id: &str, store: &mut EmbeddingStore) {
        let x = self.x_tilde_matrix(urg);
        let meta = EmbeddingMeta::new(city_id, x.cols(), self.to_store().content_hash());
        store.insert(embedding_key(city_id), x, meta);
    }

    /// Save the trained model to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        self.to_store().save(path)
    }

    /// Load trained state from a file into this (same-architecture) model.
    pub fn load(&mut self, path: impl AsRef<Path>) -> io::Result<()> {
        let store = MatrixStore::load(path)?;
        self.restore_from_store(&store)
    }
}

#[cfg(test)]
mod tests {
    use crate::{Cmsf, CmsfConfig};
    use uvd_citysim::{City, CityPreset};
    use uvd_urg::{Detector, Urg, UrgOptions};

    fn setup() -> (Urg, Vec<usize>) {
        let city = City::from_config(CityPreset::tiny(), 51);
        let urg = Urg::build(&city, UrgOptions::default());
        let train: Vec<usize> = (0..urg.labeled.len()).collect();
        (urg, train)
    }

    #[test]
    fn store_roundtrip_preserves_predictions() {
        let (urg, train) = setup();
        let mut cfg = CmsfConfig::fast_test();
        cfg.master_epochs = 10;
        cfg.slave_epochs = 3;
        let mut model = Cmsf::new(&urg, cfg);
        model.fit(&urg, &train);
        let expected = model.predict(&urg);

        let store = model.to_store();
        let mut fresh = Cmsf::new(&urg, cfg);
        assert_ne!(
            fresh.predict(&urg),
            expected,
            "fresh model differs before load"
        );
        fresh.restore_from_store(&store).expect("restore");
        assert_eq!(
            fresh.predict(&urg),
            expected,
            "restored model predicts identically"
        );
    }

    #[test]
    fn file_roundtrip() {
        let (urg, train) = setup();
        let mut cfg = CmsfConfig::fast_test();
        cfg.master_epochs = 5;
        cfg.slave_epochs = 2;
        let mut model = Cmsf::new(&urg, cfg);
        model.fit(&urg, &train);
        let dir = std::env::temp_dir().join("uvd_cmsf_ckpt");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("model.uvdt");
        model.save(&path).expect("save");
        let mut fresh = Cmsf::new(&urg, cfg);
        fresh.load(&path).expect("load");
        assert_eq!(fresh.predict(&urg), model.predict(&urg));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn restore_into_wrong_architecture_fails() {
        let (urg, train) = setup();
        let mut cfg = CmsfConfig::fast_test();
        cfg.master_epochs = 3;
        cfg.slave_epochs = 1;
        let mut model = Cmsf::new(&urg, cfg);
        model.fit(&urg, &train);
        let store = model.to_store();
        let mut other_cfg = cfg;
        other_cfg.hidden = cfg.hidden * 2;
        let mut wrong = Cmsf::new(&urg, other_cfg);
        assert!(wrong.restore_from_store(&store).is_err());
    }

    #[test]
    fn failed_restore_is_a_no_op() {
        // Regression: restore used to copy all parameters *before* checking
        // the fixed-assignment keys, so a checkpoint missing `cmsf.fixed.*`
        // left the model half-restored (trained weights, no clustering).
        let (urg, train) = setup();
        let mut cfg = CmsfConfig::fast_test();
        cfg.master_epochs = 10;
        cfg.slave_epochs = 3;
        let mut trained = Cmsf::new(&urg, cfg);
        trained.fit(&urg, &train);
        let mut store = trained.to_store();
        assert!(
            store.remove("cmsf.fixed.pseudo").is_some(),
            "trained checkpoint carries the fixed-assignment block"
        );

        let mut fresh = Cmsf::new(&urg, cfg);
        let before = fresh.predict(&urg);
        assert!(
            fresh.restore_from_store(&store).is_err(),
            "truncated checkpoint must be rejected"
        );
        assert_eq!(
            fresh.predict(&urg),
            before,
            "failed restore must leave the model untouched"
        );
        assert!(
            fresh.fixed_assignment().is_none(),
            "failed restore must not install clustering state"
        );
        assert!(!fresh.slave_trained());
    }

    #[test]
    fn restore_rejects_inconsistent_fixed_shapes() {
        let (urg, train) = setup();
        let mut cfg = CmsfConfig::fast_test();
        cfg.master_epochs = 5;
        cfg.slave_epochs = 2;
        let mut trained = Cmsf::new(&urg, cfg);
        trained.fit(&urg, &train);
        let mut store = trained.to_store();
        // Truncate the pseudo-label row so it disagrees with b_soft's k.
        store.insert("cmsf.fixed.pseudo", uvd_tensor::Matrix::row_vec(&[0.5]));
        let mut fresh = Cmsf::new(&urg, cfg);
        let before = fresh.predict(&urg);
        assert!(fresh.restore_from_store(&store).is_err());
        assert_eq!(fresh.predict(&urg), before);
    }

    #[test]
    fn export_embeddings_stamps_provenance_and_roundtrips() {
        let (urg, train) = setup();
        let mut cfg = CmsfConfig::fast_test();
        cfg.master_epochs = 5;
        cfg.slave_epochs = 2;
        let mut model = Cmsf::new(&urg, cfg);
        model.fit(&urg, &train);

        let mut store = uvd_tensor::EmbeddingStore::new();
        model.export_embeddings(&urg, "tiny", &mut store);
        let key = crate::persist::embedding_key("tiny");
        let emb = store.get(&key).expect("exported entry");
        assert_eq!(emb.shape(), (urg.n, model.embedding_dim()));
        assert_eq!(emb.as_slice(), model.x_tilde_matrix(&urg).as_slice());
        let meta = store.meta(&key).expect("meta");
        assert_eq!(meta.city, "tiny");
        assert_eq!(meta.dim as usize, model.embedding_dim());
        assert_eq!(meta.checkpoint_hash, model.to_store().content_hash());

        // The exported matrix survives a v2 file round trip bit-exactly.
        let mut buf = Vec::new();
        store.write_to(&mut buf).expect("write");
        let back = uvd_tensor::EmbeddingStore::read_from(&mut buf.as_slice()).expect("read");
        assert_eq!(back.get(&key).expect("entry").as_slice(), emb.as_slice());
    }

    #[test]
    fn master_only_checkpoint_roundtrips() {
        let (urg, train) = setup();
        let mut cfg = CmsfConfig::fast_test();
        cfg.use_gate = false; // CMSF-G: no slave stage
        cfg.master_epochs = 5;
        let mut model = Cmsf::new(&urg, cfg);
        model.fit(&urg, &train);
        let store = model.to_store();
        let mut fresh = Cmsf::new(&urg, cfg);
        fresh.restore_from_store(&store).expect("restore");
        assert_eq!(fresh.predict(&urg), model.predict(&urg));
    }
}
