//! Contracts of neighbor-sampled mini-batch training.
//!
//! 1. **Exactness at fanout 0**: the forward of a sampled induced subgraph
//!    is *bitwise equal*, at the seed rows, to slicing the full-graph
//!    forward at those rows — for the hierarchy-free CMSF-H variant, whose
//!    representation is purely local (receptive field = `maga_layers`
//!    hops). The full k-hop closure plus the monotone relabel of
//!    `Urg::induced` preserves every per-destination reduction order, so
//!    this holds to the bit, not to a tolerance.
//! 2. **Thread invariance**: the sampler is a pure function of
//!    `(seed, graph, seeds)` — identical under any kernel thread count.
//!
//! (GSCM pools over *all* regions, so with the hierarchy on, mini-batch
//! training is an approximation — validated by the convergence tests in
//! `model.rs`, not by bitwise equality.)

use cmsf::{Cmsf, CmsfConfig};
use proptest::prelude::*;
use std::sync::OnceLock;
use uvd_citysim::{City, CityPreset};
use uvd_tensor::{par, NeighborSampler};
use uvd_urg::{Urg, UrgOptions};

/// One tiny URG shared across cases (the build dominates case cost).
fn shared_urg() -> &'static Urg {
    static URG: OnceLock<Urg> = OnceLock::new();
    URG.get_or_init(|| {
        let city = City::from_config(CityPreset::tiny(), 13);
        Urg::build(&city, UrgOptions::default())
    })
}

/// Pick a non-empty subset of the labeled rows from a selection mask.
fn pick_seeds(urg: &Urg, mask: u64) -> Vec<u32> {
    let mut seeds: Vec<u32> = urg
        .labeled
        .iter()
        .copied()
        .enumerate()
        .filter(|(i, _)| (mask >> (i % 64)) & 1 == 1)
        .map(|(_, r)| r)
        .collect();
    if seeds.is_empty() {
        seeds.push(urg.labeled[0]);
    }
    seeds
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Theorem 1: uncapped k-hop sampling + induced subgraph + CMSF-H
    /// forward == gather of the full forward at the seed rows, bitwise.
    #[test]
    fn khop_subgraph_forward_is_bitwise_exact(
        mask in 1u64..u64::MAX,
        layers in 1usize..=2,
        model_seed in 0u64..100,
    ) {
        let urg = shared_urg();
        let mut cfg = CmsfConfig::fast_test();
        cfg.use_hierarchy = false; // CMSF-H: purely local representation
        cfg.use_gate = false;
        cfg.maga_layers = layers;
        cfg.seed = model_seed;
        let model = Cmsf::new(urg, cfg);

        let seeds = pick_seeds(urg, mask);
        // fanout 0 = the exact k-hop closure, k = MAGA depth.
        let sampler = NeighborSampler::new(7, 0, layers);
        let nodes = sampler.sample(&urg.edges, &seeds).expect("in-bounds seeds");
        let sub = urg.induced(&nodes);

        let full = model.predict_proba(urg);
        let local = model.predict_proba(&sub);
        for &s in &seeds {
            let l = nodes.binary_search(&s).expect("seed in closure");
            prop_assert_eq!(
                local[l].to_bits(),
                full[s as usize].to_bits(),
                "region {} differs: sub {} vs full {}",
                s, local[l], full[s as usize]
            );
        }
    }

    /// Theorem 2: the sampler never consults the kernel thread pool — the
    /// sampled node set is identical at any configured thread count.
    #[test]
    fn sampler_is_thread_count_invariant(
        sample_seed in 0u64..u64::MAX,
        fanout in 0usize..=6,
        mask in 1u64..u64::MAX,
    ) {
        let urg = shared_urg();
        let seeds = pick_seeds(urg, mask);
        let sampler = NeighborSampler::new(sample_seed, fanout, 2);
        let serial = par::with_threads(1, || sampler.sample(&urg.edges, &seeds));
        let parallel = par::with_threads(4, || sampler.sample(&urg.edges, &seeds));
        prop_assert_eq!(serial, parallel);
    }
}

/// The fanout-capped subgraph of every batch is a subset of the uncapped
/// closure and always contains its seeds — the structural invariant the
/// training loop's row remapping relies on.
#[test]
fn capped_sample_is_seeded_subset_of_closure() {
    let urg = shared_urg();
    let seeds = pick_seeds(urg, 0b1011);
    let closure = NeighborSampler::new(3, 0, 2)
        .sample(&urg.edges, &seeds)
        .expect("in-bounds seeds");
    let capped = NeighborSampler::new(3, 3, 2)
        .sample(&urg.edges, &seeds)
        .expect("in-bounds seeds");
    assert!(capped.len() <= closure.len());
    for s in &seeds {
        assert!(capped.binary_search(s).is_ok(), "seed {s} missing");
    }
    for n in &capped {
        assert!(closure.binary_search(n).is_ok(), "{n} not in closure");
    }
}
