//! Prefetched mini-batch training is bitwise identical to the serial batch
//! loop.
//!
//! The prefetch pipeline only overlaps *when* a batch is sampled and induced
//! with the previous batch's tape work — every batch's sampler seed is a
//! pure function of `(cfg.seed, batch_no)` and batches are consumed strictly
//! in shuffle order, so parameters see the exact same update sequence. These
//! tests pin that contract for both CMSF stages by training twin models with
//! prefetch off (the serial reference) and on, and comparing stage losses
//! and full prediction vectors to the bit.

use cmsf::{Cmsf, CmsfConfig};
use std::sync::OnceLock;
use uvd_citysim::{City, CityPreset};
use uvd_urg::{Urg, UrgOptions};

fn shared_urg() -> &'static Urg {
    static URG: OnceLock<Urg> = OnceLock::new();
    URG.get_or_init(|| {
        let city = City::from_config(CityPreset::tiny(), 21);
        Urg::build(&city, UrgOptions::default())
    })
}

fn minibatch_cfg(prefetch: usize) -> CmsfConfig {
    let mut cfg = CmsfConfig::fast_test();
    cfg.batch_size = 8;
    cfg.sample_fanout = 4;
    cfg.master_epochs = 6;
    cfg.slave_epochs = 3;
    cfg.prefetch = prefetch;
    cfg
}

/// Run both stages and return `(master_loss, slave_loss, predictions)`.
fn train_both_stages(urg: &Urg, cfg: CmsfConfig) -> (f32, f32, Vec<f32>) {
    let train: Vec<usize> = (0..urg.labeled.len()).collect();
    let mut model = Cmsf::new(urg, cfg);
    let master = model.train_master(urg, &train).expect("master trains");
    let slave = model.train_slave(urg, &train).expect("slave trains");
    (master, slave, model.predict_proba(urg))
}

#[test]
fn prefetched_training_is_bitwise_identical_to_serial() {
    let urg = shared_urg();
    let (m0, s0, p0) = train_both_stages(urg, minibatch_cfg(0));
    for depth in [1usize, 2, 4] {
        let (m, s, p) = train_both_stages(urg, minibatch_cfg(depth));
        assert_eq!(
            m.to_bits(),
            m0.to_bits(),
            "master loss drifted at prefetch={depth}: {m} vs {m0}"
        );
        assert_eq!(
            s.to_bits(),
            s0.to_bits(),
            "slave loss drifted at prefetch={depth}: {s} vs {s0}"
        );
        assert_eq!(p, p0, "predictions drifted at prefetch={depth}");
    }
}

/// The prefetch counters account for every epoch-0 batch of both stages:
/// each prepared batch is either a hit (ready in the queue) or a miss (the
/// trainer waited), never dropped or double-counted.
#[test]
fn prefetch_counters_cover_every_batch() {
    let urg = shared_urg();
    let cfg = minibatch_cfg(2);
    let train: Vec<usize> = (0..urg.labeled.len()).collect();
    let n_batches = train.len().div_ceil(cfg.batch_size);
    assert!(n_batches >= 2, "test needs a multi-batch split");

    uvd_obs::set_memory();
    let counter = |name: &str| {
        uvd_obs::counter_summary()
            .into_iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
            .unwrap_or(0)
    };
    let (hit0, miss0) = (
        counter("batch.prefetch.hit"),
        counter("batch.prefetch.miss"),
    );
    let mut model = Cmsf::new(urg, cfg);
    model.train_master(urg, &train).expect("master trains");
    model.train_slave(urg, &train).expect("slave trains");
    let hits = counter("batch.prefetch.hit") - hit0;
    let misses = counter("batch.prefetch.miss") - miss0;
    uvd_obs::disable();
    assert_eq!(
        hits + misses,
        2 * n_batches as u64,
        "both recording epochs must consume every batch through the pipeline"
    );
}
