//! Acceptance test for the Plan/Workspace refactor: a quick CMSF fold
//! trained through the replayed plan is **bit-identical** — parameters and
//! region scores — to the same fold trained through `uvd_tensor::legacy`,
//! the define-by-run tape exactly as it stood before the refactor (fresh
//! buffers per op, per-epoch re-record). Runs under `par::serial_scope`,
//! the `UVD_THREADS=1` configuration named by the acceptance criterion.

use cmsf::{Cmsf, CmsfConfig};
use uvd_citysim::{City, CityPreset};
use uvd_tensor::{legacy, par, Adam, Graph};
use uvd_urg::{Urg, UrgOptions};

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Replicate `train_master` + `train_slave` epoch-for-epoch, but run every
/// epoch through the legacy engine instead of replaying the plan.
fn train_via_legacy(model: &mut Cmsf, urg: &Urg, train: &[usize]) {
    let (rows, targets, weights) = model.bce_vectors(urg, train);

    let mut g = Graph::new();
    let loss = model.record_master_tape(&mut g, urg, &rows, &targets, &weights);
    let mut opt = Adam::new(model.cfg.lr);
    for _ in 0..model.cfg.master_epochs {
        let mut lg = legacy::rebuild(g.plan(), g.workspace());
        lg.backward(lg.node(loss.index()));
        lg.write_grads();
        if model.cfg.grad_clip > 0.0 {
            model.param_set().clip_grad_norm(model.cfg.grad_clip);
        }
        opt.step(model.param_set());
        opt.decay(model.cfg.lr_decay);
    }
    model.freeze_assignment(urg, train);

    let fixed = model.fixed_assignment().expect("after master").clone();
    let (c1, c0) = fixed.partition();
    let mut g = Graph::new();
    let loss = model
        .record_slave_tape(&mut g, urg, &fixed, &c1, &c0, &rows, &targets, &weights)
        .expect("slave tape records");
    let mut opt = Adam::new(model.cfg.lr * 0.3);
    for _ in 0..model.cfg.slave_epochs {
        let mut lg = legacy::rebuild(g.plan(), g.workspace());
        lg.backward(lg.node(loss.index()));
        lg.write_grads();
        if model.cfg.grad_clip > 0.0 {
            model.param_set().clip_grad_norm(model.cfg.grad_clip);
        }
        opt.step(model.param_set());
        opt.decay(model.cfg.lr_decay);
    }
    model.set_trained_state(Some(fixed), true);
}

#[test]
fn replayed_fold_is_bit_identical_to_legacy_tape_fold() {
    par::serial_scope(|| {
        let city = City::from_config(CityPreset::tiny(), 11);
        let urg = Urg::build(&city, UrgOptions::default());
        let train: Vec<usize> = (0..urg.labeled.len()).collect();
        let mut cfg = CmsfConfig::fast_test();
        cfg.master_epochs = 4;
        cfg.slave_epochs = 3;

        let mut replayed = Cmsf::new(&urg, cfg);
        replayed.train_master(&urg, &train).expect("master trains");
        replayed.train_slave(&urg, &train).expect("slave trains");

        let mut legacy_trained = Cmsf::new(&urg, cfg);
        train_via_legacy(&mut legacy_trained, &urg, &train);

        for (p_new, p_old) in replayed
            .param_set()
            .iter()
            .zip(legacy_trained.param_set().iter())
        {
            assert_eq!(p_new.name(), p_old.name());
            assert_eq!(
                bits(p_new.value().as_slice()),
                bits(p_old.value().as_slice()),
                "parameter {} diverged between replayed and legacy training",
                p_new.name()
            );
        }

        let scores_new = replayed.predict_proba(&urg);
        let scores_old = legacy_trained.predict_proba(&urg);
        assert_eq!(
            bits(&scores_new),
            bits(&scores_old),
            "region scores diverged between replayed and legacy training"
        );
    });
}
