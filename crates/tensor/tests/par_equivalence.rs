//! Serial vs parallel kernel equivalence and determinism.
//!
//! Two layers of guarantees from the `par` runtime are checked here:
//!
//! 1. **Equivalence** (proptest): every parallelized kernel run above its
//!    work threshold with several threads matches the serial result within
//!    1e-5 elementwise.
//! 2. **Determinism** (fixed inputs): for a fixed thread configuration, two
//!    parallel runs are *bit-identical*; and for the row-partitioned kernels
//!    (matmul family, spmm, edge softmax) the parallel result is
//!    bit-identical to the serial one at any thread count, because each
//!    output element keeps its serial reduction order.
//!
//! Matrix sizes are chosen so the estimated work clears
//! [`par::MIN_PAR_WORK`]; with smaller inputs the dispatcher would quietly
//! take the serial path and these tests would vacuously pass.

use proptest::prelude::*;
use rand::RngCore;
use std::sync::Arc;
use uvd_tensor::init::{normal_matrix, seeded_rng};
use uvd_tensor::{legacy, par};
use uvd_tensor::{Csr, EdgeIndex, FusedAct, Graph, Matrix};

/// 48×48×48 matmul: 110_592 estimated ops, above `MIN_PAR_WORK` (65_536).
const N: usize = 48;

fn rand_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

fn assert_close(a: &Matrix, b: &Matrix, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape");
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert!((x - y).abs() <= 1e-5, "{what}[{i}]: {x} vs {y}");
    }
}

/// A fixed sparse matrix with ~8 nnz per row so `nnz * n >= MIN_PAR_WORK`.
fn fixed_csr(rows: usize, cols: usize, seed: u64) -> Csr {
    let mut rng = seeded_rng(seed);
    let mut coo = Vec::new();
    for r in 0..rows {
        for _ in 0..8 {
            let c = (rng.next_u64() % cols as u64) as u32;
            coo.push((r as u32, c, (rng.next_u64() % 7) as f32 * 0.25 - 0.75));
        }
    }
    Csr::from_coo(rows, cols, coo)
}

/// A fixed edge index with `n_nodes * deg` edges, varied in-degrees.
fn fixed_edges(n_nodes: usize, deg: usize, seed: u64) -> Arc<EdgeIndex> {
    let mut rng = seeded_rng(seed);
    let mut pairs = Vec::new();
    for d in 0..n_nodes {
        // Ragged: node d receives between 1 and 2*deg-1 edges.
        let k = 1 + (rng.next_u64() as usize) % (2 * deg - 1);
        for _ in 0..k {
            let s = (rng.next_u64() % n_nodes as u64) as u32;
            pairs.push((s, d as u32));
        }
    }
    Arc::new(EdgeIndex::from_pairs(n_nodes, pairs))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Parallel matmul family matches serial within 1e-5.
    #[test]
    fn matmul_family_parallel_matches_serial(a in rand_matrix(N, N), b in rand_matrix(N, N)) {
        let serial = par::serial_scope(|| (a.matmul(&b), a.matmul_tn(&b), a.matmul_nt(&b)));
        let par4 = par::with_threads(4, || (a.matmul(&b), a.matmul_tn(&b), a.matmul_nt(&b)));
        assert_close(&serial.0, &par4.0, "matmul");
        assert_close(&serial.1, &par4.1, "matmul_tn");
        assert_close(&serial.2, &par4.2, "matmul_nt");
    }

    /// Packed register-tiled kernels are **bit-identical** to the frozen
    /// naive reference kernels, across shapes that are not multiples of the
    /// microkernel tiles and reductions crossing both the naive `K_TILE`
    /// (64) and the packed `KC` (256) blocking — serial and multi-threaded.
    #[test]
    fn packed_matmul_family_bitwise_matches_naive(
        m in 1usize..40,
        k in 1usize..300,
        n in 1usize..40,
        seed in 0u64..1024,
    ) {
        let mut rng = seeded_rng(seed);
        let a = normal_matrix(m, k, 0.0, 1.0, &mut rng);
        let b = normal_matrix(k, n, 0.0, 1.0, &mut rng);
        let at = normal_matrix(k, m, 0.0, 1.0, &mut rng);
        let bt = normal_matrix(n, k, 0.0, 1.0, &mut rng);
        let naive = (
            legacy::naive_matmul(&a, &b),
            legacy::naive_matmul_tn(&at, &b),
            legacy::naive_matmul_nt(&a, &bt),
        );
        let serial = par::serial_scope(|| (a.matmul(&b), at.matmul_tn(&b), a.matmul_nt(&bt)));
        let par3 = par::with_threads(3, || (a.matmul(&b), at.matmul_tn(&b), a.matmul_nt(&bt)));
        prop_assert_eq!(naive.0.as_slice(), serial.0.as_slice(), "matmul serial");
        prop_assert_eq!(naive.1.as_slice(), serial.1.as_slice(), "matmul_tn serial");
        prop_assert_eq!(naive.2.as_slice(), serial.2.as_slice(), "matmul_nt serial");
        prop_assert_eq!(naive.0.as_slice(), par3.0.as_slice(), "matmul 3-thread");
        prop_assert_eq!(naive.1.as_slice(), par3.1.as_slice(), "matmul_tn 3-thread");
        prop_assert_eq!(naive.2.as_slice(), par3.2.as_slice(), "matmul_nt 3-thread");
    }

    /// Parallel spmm and sym_normalized match serial within 1e-5.
    #[test]
    fn sparse_parallel_matches_serial(x in rand_matrix(256, 32), seed in 0u64..1024) {
        let a = fixed_csr(256, 256, seed);
        let serial = par::serial_scope(|| a.sym_normalized().spmm(&x));
        let par4 = par::with_threads(4, || a.sym_normalized().spmm(&x));
        assert_close(&serial, &par4, "sym_normalized+spmm");
    }

    /// Parallel edge softmax + aggregation match serial within 1e-5.
    #[test]
    fn edge_ops_parallel_match_serial(seed in 0u64..1024) {
        let edges = fixed_edges(1024, 8, seed);
        let mut rng = seeded_rng(seed ^ 0xE0E0);
        let scores = normal_matrix(edges.n_edges(), 1, 0.0, 1.0, &mut rng);
        let h = normal_matrix(edges.n_nodes(), 16, 0.0, 1.0, &mut rng);
        let run = || {
            let mut g = Graph::new();
            let s = g.constant(scores.clone());
            let hn = g.constant(h.clone());
            let alpha = g.edge_softmax(s, edges.clone());
            let out = g.edge_aggregate(alpha, hn, edges.clone());
            (g.value(alpha).clone(), g.value(out).clone())
        };
        let serial = par::serial_scope(run);
        let par4 = par::with_threads(4, run);
        assert_close(&serial.0, &par4.0, "edge_softmax");
        assert_close(&serial.1, &par4.1, "edge_aggregate");
    }
}

#[test]
fn matmul_parallel_is_bit_deterministic() {
    let mut rng = seeded_rng(7);
    let a = normal_matrix(N, N, 0.0, 1.0, &mut rng);
    let b = normal_matrix(N, N, 0.0, 1.0, &mut rng);
    let serial = par::serial_scope(|| a.matmul(&b));
    let run1 = par::with_threads(4, || a.matmul(&b));
    let run2 = par::with_threads(4, || a.matmul(&b));
    assert_eq!(run1.as_slice(), run2.as_slice(), "two parallel runs differ");
    // Row partitioning keeps the per-element k-order: serial == parallel
    // bitwise, at any thread count.
    assert_eq!(serial.as_slice(), run1.as_slice(), "serial vs parallel");
    let run3 = par::with_threads(3, || a.matmul(&b));
    assert_eq!(serial.as_slice(), run3.as_slice(), "3-thread run differs");
}

#[test]
fn spmm_parallel_is_bit_deterministic() {
    let a = fixed_csr(512, 512, 11);
    let mut rng = seeded_rng(13);
    let x = normal_matrix(512, 32, 0.0, 1.0, &mut rng);
    let serial = par::serial_scope(|| a.spmm(&x));
    let run1 = par::with_threads(4, || a.spmm(&x));
    let run2 = par::with_threads(4, || a.spmm(&x));
    assert_eq!(run1.as_slice(), run2.as_slice(), "two parallel runs differ");
    assert_eq!(serial.as_slice(), run1.as_slice(), "serial vs parallel");
}

#[test]
fn edge_softmax_parallel_is_bit_deterministic() {
    let edges = fixed_edges(2048, 8, 17);
    let mut rng = seeded_rng(19);
    let scores = normal_matrix(edges.n_edges(), 1, 0.0, 2.0, &mut rng);
    let run = || {
        let mut g = Graph::new();
        let s = g.constant(scores.clone());
        let alpha = g.edge_softmax(s, edges.clone());
        g.value(alpha).clone()
    };
    let serial = par::serial_scope(run);
    let run1 = par::with_threads(4, run);
    let run2 = par::with_threads(4, run);
    assert_eq!(run1.as_slice(), run2.as_slice(), "two parallel runs differ");
    assert_eq!(serial.as_slice(), run1.as_slice(), "serial vs parallel");
}

#[test]
fn fused_matmul_bias_act_bitwise_matches_unfused() {
    use uvd_tensor::ParamRef;
    let cases = [
        FusedAct::Identity,
        FusedAct::LeakyRelu(0.0),
        FusedAct::LeakyRelu(0.2),
        FusedAct::Tanh,
        FusedAct::Sigmoid,
    ];
    let mut rng = seeded_rng(29);
    let x = normal_matrix(17, 9, 0.0, 1.0, &mut rng);
    let wv = normal_matrix(9, 5, 0.0, 0.5, &mut rng);
    let bv = normal_matrix(1, 5, 0.0, 0.5, &mut rng);
    for act in cases {
        let run = |fused: bool| {
            let w = ParamRef::new("w", wv.clone());
            let b = ParamRef::new("b", bv.clone());
            let mut g = Graph::new();
            let xn = g.constant(x.clone());
            let wn = g.param(&w);
            let bn = g.param(&b);
            let y = if fused {
                g.matmul_bias_act(xn, wn, bn, act)
            } else {
                let z = g.matmul(xn, wn);
                let z = g.add_row(z, bn);
                match act {
                    FusedAct::Identity => z,
                    FusedAct::LeakyRelu(s) => g.leaky_relu(z, s),
                    FusedAct::Tanh => g.tanh(z),
                    FusedAct::Sigmoid => g.sigmoid(z),
                }
            };
            let loss = g.mean_all(y);
            g.backward(loss);
            (
                g.value(y).clone(),
                g.grad(wn).unwrap().clone(),
                g.grad(bn).unwrap().clone(),
            )
        };
        let (yf, dwf, dbf) = run(true);
        let (yu, dwu, dbu) = run(false);
        assert_eq!(yf.as_slice(), yu.as_slice(), "{act:?}: forward");
        assert_eq!(dwf.as_slice(), dwu.as_slice(), "{act:?}: dW");
        assert_eq!(dbf.as_slice(), dbu.as_slice(), "{act:?}: db");
    }
}

#[test]
fn conv_backward_deterministic_for_fixed_threads() {
    use uvd_tensor::ConvMeta;
    let meta = ConvMeta {
        c_in: 2,
        h_in: 16,
        w_in: 16,
        c_out: 3,
        k: 3,
        stride: 1,
        pad: 1,
    };
    let mut rng = seeded_rng(23);
    let x = normal_matrix(8, meta.in_len(), 0.0, 1.0, &mut rng);
    let (co, klen) = meta.kernel_shape();
    let kernel = normal_matrix(co, klen, 0.0, 0.5, &mut rng);
    let run = || {
        let mut g = Graph::new();
        let xn = g.constant(x.clone());
        let kn = g.variable(kernel.clone());
        let y = g.conv2d(xn, kn, meta);
        let loss = g.mean_all(y);
        g.backward(loss);
        g.grad(kn).unwrap().clone()
    };
    // The kernel gradient reduces ordered per-chunk partials: bit-stable for
    // a fixed thread count (the chunk layout is a function of the count).
    let run1 = par::with_threads(4, run);
    let run2 = par::with_threads(4, run);
    assert_eq!(run1.as_slice(), run2.as_slice(), "two parallel runs differ");
}
