//! Differential tests for the register-tiled spmm and the `UVD_FAST_MATH`
//! tier (DESIGN.md §"Determinism tiers").
//!
//! Deterministic mode is checked *bitwise* against `uvd_tensor::legacy` —
//! the frozen pre-tiling kernels — over proptest-generated shapes chosen to
//! be tile-irregular: column counts that straddle every panel width (1,
//! scalar-tile leftovers, AVX-512's 64-wide panels), empty CSR rows, and
//! duplicate/unsorted COO input. The fast-math tier cannot be bitwise (it
//! fuses each multiply-add into one rounding), so the same generators assert
//! a rounding-level tolerance instead, plus the properties that *do* survive
//! fusion: thread-count invariance and serial/parallel bit-identity, since
//! the tier never reorders an accumulator chain.

use proptest::prelude::*;
use rand::RngCore;
use uvd_tensor::fastmath::with_fast_math;
use uvd_tensor::init::{normal_matrix, seeded_rng};
use uvd_tensor::{legacy, par, plan, ConvMeta, Csr, Matrix};

fn small_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-3.0f32..3.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

/// Fast-math differs from deterministic only by where each product is
/// rounded, so the error budget is a few ulps scaled by the magnitudes
/// flowing through the chain — 1e-4 relative is orders of magnitude above
/// that, and orders of magnitude below any real algorithmic divergence.
fn assert_rounding_close(fast: &[f32], det: &[f32], what: &str) {
    assert_eq!(fast.len(), det.len(), "{what}: length");
    for (i, (a, b)) in fast.iter().zip(det.iter()).enumerate() {
        let tol = 1e-4 * b.abs().max(1.0);
        assert!(
            (a - b).abs() <= tol,
            "{what}[{i}]: fast {a} vs det {b} (tol {tol})"
        );
    }
}

fn bits(m: &Matrix) -> Vec<u32> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Column counts that exercise every tile boundary of the spmm kernel:
/// single-column, below the scalar panel (8), between the AVX2 (16) and
/// AVX-512 (64) panels, and just past the 64-wide panel so full panels and
/// ragged tails both run.
fn awkward_cols() -> impl Strategy<Value = usize> {
    (0usize..40).prop_map(|i| match i % 5 {
        0 => 1,           // single column
        1 => 2 + i % 6,   // below the scalar panel
        2 => 9 + i % 7,   // between the scalar and AVX2 panels
        3 => 30 + i % 10, // AVX2 panels plus tail
        _ => 63 + i % 7,  // straddles the 64-wide AVX-512 panel
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Tiled spmm (all ISA tiers, deterministic mode) is bit-identical to
    /// the frozen naive row loop, for any sparsity pattern — including empty
    /// rows and duplicate COO entries — and any panel-straddling width.
    #[test]
    fn tiled_spmm_bitwise_matches_legacy(
        entries in proptest::collection::vec((0u32..13, 0u32..11, -2.0f32..2.0), 0..80),
        n in awkward_cols(),
        xseed in 0u64..1000,
    ) {
        let a = Csr::from_coo(13, 11, entries);
        let mut rng = seeded_rng(xseed);
        let x = normal_matrix(11, n, 0.0, 1.0, &mut rng);
        let oracle = legacy::naive_spmm(&a, &x);
        let tiled = with_fast_math(false, || a.spmm(&x));
        prop_assert_eq!(bits(&tiled), bits(&oracle), "overwrite entry");
        // The accumulate entry seeded from a zero-filled buffer runs the
        // exact same chains as the overwrite entry's literal-zero seeds.
        let mut acc = vec![0.0f32; 13 * n];
        with_fast_math(false, || a.spmm_acc(&x, &mut acc));
        prop_assert_eq!(
            acc.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            bits(&oracle),
            "accumulate entry from zeroed buffer"
        );
    }

    /// Fast-math spmm stays within rounding tolerance of the oracle on the
    /// same generator.
    #[test]
    fn fast_math_spmm_within_tolerance(
        entries in proptest::collection::vec((0u32..13, 0u32..11, -2.0f32..2.0), 0..80),
        n in awkward_cols(),
        xseed in 0u64..1000,
    ) {
        let a = Csr::from_coo(13, 11, entries);
        let mut rng = seeded_rng(xseed);
        let x = normal_matrix(11, n, 0.0, 1.0, &mut rng);
        let det = with_fast_math(false, || a.spmm(&x));
        let fast = with_fast_math(true, || a.spmm(&x));
        assert_rounding_close(fast.as_slice(), det.as_slice(), "spmm");
    }

    /// Fast-math matmul family stays within rounding tolerance of the
    /// deterministic tier across panel-irregular shapes.
    #[test]
    fn fast_math_matmul_family_within_tolerance(
        m in 1usize..10,
        k in 1usize..24,
        n in awkward_cols(),
        seed in 0u64..1000,
    ) {
        let mut rng = seeded_rng(seed);
        let a = normal_matrix(m, k, 0.0, 1.0, &mut rng);
        let b = normal_matrix(k, n, 0.0, 1.0, &mut rng);
        let det = with_fast_math(false, || a.matmul(&b));
        let fast = with_fast_math(true, || a.matmul(&b));
        assert_rounding_close(fast.as_slice(), det.as_slice(), "matmul");

        let at = a.transpose();
        let det = with_fast_math(false, || at.matmul_tn(&b));
        let fast = with_fast_math(true, || at.matmul_tn(&b));
        assert_rounding_close(fast.as_slice(), det.as_slice(), "matmul_tn");

        let bt = b.transpose();
        let det = with_fast_math(false, || a.matmul_nt(&bt));
        let fast = with_fast_math(true, || a.matmul_nt(&bt));
        assert_rounding_close(fast.as_slice(), det.as_slice(), "matmul_nt");
    }

    /// Fast-math gated matmul stays within rounding tolerance, including
    /// ragged output widths (`h` off the 16-lane block) and the zero-skip.
    #[test]
    fn fast_math_gated_matmul_within_tolerance(
        x in small_matrix(6, 9),
        w in small_matrix(9, 21),
        f in small_matrix(6, 9 * 21),
    ) {
        let mut x = x;
        for (i, v) in x.as_mut_slice().iter_mut().enumerate() {
            if i % 5 == 2 {
                *v = 0.0; // exercise the zero-skip on both tiers
            }
        }
        let mut det = vec![0.0f32; 6 * 21];
        let mut fast = vec![0.0f32; 6 * 21];
        with_fast_math(false, || plan::gated_matmul_into(&x, &w, &f, &mut det));
        with_fast_math(true, || plan::gated_matmul_into(&x, &w, &f, &mut fast));
        assert_rounding_close(&fast, &det, "gated_matmul");
    }
}

/// Fast-math conv forward stays within rounding tolerance of deterministic
/// (one fixed odd-shaped batch; the im2col layout is tier-independent, only
/// the GEMM microkernel changes).
#[test]
fn fast_math_conv_within_tolerance() {
    let meta = ConvMeta {
        c_in: 2,
        h_in: 7,
        w_in: 5,
        c_out: 3,
        k: 3,
        stride: 1,
        pad: 1,
    };
    let mut rng = seeded_rng(23);
    let x = normal_matrix(4, meta.in_len(), 0.0, 1.0, &mut rng);
    let (co, klen) = meta.kernel_shape();
    let kern = normal_matrix(co, klen, 0.0, 0.5, &mut rng);
    let det = with_fast_math(false, || uvd_tensor::conv::conv2d_batch(&x, &kern, &meta));
    let fast = with_fast_math(true, || uvd_tensor::conv::conv2d_batch(&x, &kern, &meta));
    assert_rounding_close(fast.as_slice(), det.as_slice(), "conv2d_batch");
}

/// The fast-math tier keeps every per-element chain in ascending order, so
/// it stays bit-identical across thread counts — fusion changes rounding,
/// never reduction order. Work sizes clear `par::MIN_PAR_WORK` so the
/// parallel dispatcher actually partitions.
#[test]
fn fast_math_tier_is_thread_count_deterministic() {
    let mut rng = seeded_rng(7);
    let a = normal_matrix(48, 48, 0.0, 1.0, &mut rng);
    let b = normal_matrix(48, 48, 0.0, 1.0, &mut rng);
    let mut coo = Vec::new();
    for r in 0..600u32 {
        for _ in 0..8 {
            let c = (rng.next_u64() % 600) as u32;
            coo.push((r, c, (rng.next_u64() % 7) as f32 * 0.25 - 0.75));
        }
    }
    let sp = Csr::from_coo(600, 600, coo);
    let xs = normal_matrix(600, 64, 0.0, 1.0, &mut rng);
    with_fast_math(true, || {
        let serial_mm = par::serial_scope(|| a.matmul(&b));
        let serial_sp = par::serial_scope(|| sp.spmm(&xs));
        for threads in [2usize, 3, 5] {
            let par_mm = par::with_threads(threads, || a.matmul(&b));
            assert_eq!(
                bits(&par_mm),
                bits(&serial_mm),
                "fast-math matmul diverged at {threads} threads"
            );
            let par_sp = par::with_threads(threads, || sp.spmm(&xs));
            assert_eq!(
                bits(&par_sp),
                bits(&serial_sp),
                "fast-math spmm diverged at {threads} threads"
            );
        }
    });
}
