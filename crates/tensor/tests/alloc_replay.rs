//! Steady-state allocation regression test: once a training tape has been
//! recorded and its gradient arena materialized (one warm epoch), replayed
//! epochs must perform **zero heap allocation** in forward + backward.
//!
//! The counting `#[global_allocator]` comes from [`uvd_obs::alloc`]; the test
//! runs under [`uvd_tensor::par::serial_scope`] so no thread-pool machinery
//! (task boxing, latches) allocates on the side.
//!
//! The replay path is instrumented with `uvd_obs` counters (`tensor.replay.*`,
//! `gemm.pack_*`), so the steady-state assertion here also pins the disabled
//! telemetry path to zero heap allocations.

use std::sync::Arc;
use uvd_obs::alloc::allocations as allocation_count;
use uvd_tensor::{par, Adam, FusedAct, Graph, ParamRef, ParamSet};

#[global_allocator]
static GLOBAL: uvd_obs::alloc::CountingAlloc = uvd_obs::alloc::CountingAlloc;

#[test]
fn replayed_epoch_performs_zero_heap_allocations() {
    // Force the telemetry recorder off regardless of the ambient UVD_TRACE:
    // the gate pins the *disabled* instrumentation path at zero allocations.
    uvd_obs::disable();
    par::serial_scope(|| {
        let n = 32;
        let d = 12;
        let h = 8;
        let mut rng = uvd_tensor::seeded_rng(7);
        let x = uvd_tensor::init::normal_matrix(n, d, 0.0, 1.0, &mut rng);
        let w1 = ParamRef::new(
            "w1",
            uvd_tensor::init::normal_matrix(d, h, 0.0, 0.3, &mut rng),
        );
        let b1 = ParamRef::new(
            "b1",
            uvd_tensor::init::normal_matrix(1, h, 0.0, 0.3, &mut rng),
        );
        let w2 = ParamRef::new(
            "w2",
            uvd_tensor::init::normal_matrix(h, 1, 0.0, 0.3, &mut rng),
        );
        let mut set = ParamSet::new();
        set.track(w1.clone());
        set.track(b1.clone());
        set.track(w2.clone());
        let targets: Arc<Vec<f32>> = Arc::new((0..n).map(|i| (i % 2) as f32).collect());
        let weights = Arc::new(vec![1.0f32; n]);
        let rows: Arc<Vec<u32>> = Arc::new((0..n as u32).collect());

        let mut opt = Adam::new(0.01);
        let mut g = Graph::new();
        let xc = g.constant(x);
        let w1n = g.param(&w1);
        let b1n = g.param(&b1);
        // Fused node: exercises per-epoch repacking of a parameter RHS and
        // the fused dz scratch inside the zero-allocation guarantee.
        let h1 = g.matmul_bias_act(xc, w1n, b1n, FusedAct::Tanh);
        let w2n = g.param(&w2);
        let z = g.matmul(h1, w2n);
        let zl = g.gather_rows(z, rows);
        let loss = g.bce_with_logits(zl, targets, weights);

        let epoch = |g: &mut Graph, opt: &mut Adam, replay: bool| -> f32 {
            if replay {
                g.replay();
            }
            let lv = g.scalar(loss);
            g.backward(loss);
            g.write_grads();
            opt.step(&set);
            lv
        };

        // Warm epochs: materialize the gradient arena, the backward scratch
        // buffer and the Adam moment buffers.
        epoch(&mut g, &mut opt, false);
        epoch(&mut g, &mut opt, true);

        // Steady state: forward replay + backward must not allocate. The
        // optimizer step is included too — Adam updates in place.
        let before = allocation_count();
        let lv = epoch(&mut g, &mut opt, true);
        let after = allocation_count();
        assert!(lv.is_finite());
        assert_eq!(
            after - before,
            0,
            "steady-state replayed epoch allocated {} times",
            after - before
        );
    });
}

/// Same steady-state gate over a conv-bearing plan: the conv forward runs
/// from the workspace-cached kernel pack, and both backward halves (the
/// col2im `dx` pass and the `dk` GEMM accumulation) thread their im2col /
/// matmul temporaries through reused thread-local scratch — on the serial
/// replay path none of it may touch the heap. (Max-pool stays out of this
/// tape: its backward still allocates per sample, documented in conv.rs.)
#[test]
fn replayed_conv_epoch_performs_zero_heap_allocations() {
    uvd_obs::disable();
    par::serial_scope(|| {
        let meta = uvd_tensor::ConvMeta {
            c_in: 2,
            h_in: 8,
            w_in: 8,
            c_out: 4,
            k: 3,
            stride: 1,
            pad: 1,
        };
        let n = 6;
        let mut rng = uvd_tensor::seeded_rng(13);
        let x = uvd_tensor::init::normal_matrix(n, meta.in_len(), 0.0, 1.0, &mut rng);
        let (co, klen) = meta.kernel_shape();
        let kern = ParamRef::new(
            "kern",
            uvd_tensor::init::normal_matrix(co, klen, 0.0, 0.3, &mut rng),
        );
        let cb = ParamRef::new(
            "cb",
            uvd_tensor::init::normal_matrix(1, co, 0.0, 0.3, &mut rng),
        );
        let w = ParamRef::new(
            "w",
            uvd_tensor::init::normal_matrix(meta.out_len(), 1, 0.0, 0.3, &mut rng),
        );
        let mut set = ParamSet::new();
        set.track(kern.clone());
        set.track(cb.clone());
        set.track(w.clone());
        let targets: Arc<Vec<f32>> = Arc::new((0..n).map(|i| (i % 2) as f32).collect());
        let weights = Arc::new(vec![1.0f32; n]);
        let rows: Arc<Vec<u32>> = Arc::new((0..n as u32).collect());

        let mut opt = Adam::new(0.01);
        let mut g = Graph::new();
        let xc = g.constant(x);
        let kn = g.param(&kern);
        let conv = g.conv2d(xc, kn, meta);
        let cbn = g.param(&cb);
        let hw = meta.h_out() * meta.w_out();
        let biased = g.add_chan_bias(conv, cbn, co, hw);
        let act = g.leaky_relu(biased, 0.1);
        let wn = g.param(&w);
        let z = g.matmul(act, wn);
        let zl = g.gather_rows(z, rows);
        let loss = g.bce_with_logits(zl, targets, weights);

        let epoch = |g: &mut Graph, opt: &mut Adam, replay: bool| -> f32 {
            if replay {
                g.replay();
            }
            let lv = g.scalar(loss);
            g.backward(loss);
            g.write_grads();
            opt.step(&set);
            lv
        };

        epoch(&mut g, &mut opt, false);
        epoch(&mut g, &mut opt, true);

        let before = allocation_count();
        let lv = epoch(&mut g, &mut opt, true);
        let after = allocation_count();
        assert!(lv.is_finite());
        assert_eq!(
            after - before,
            0,
            "steady-state replayed conv epoch allocated {} times",
            after - before
        );
    });
}

#[test]
fn no_grad_inference_never_allocates_gradient_buffers() {
    par::serial_scope(|| {
        let mut rng = uvd_tensor::seeded_rng(11);
        let x = uvd_tensor::init::normal_matrix(16, 6, 0.0, 1.0, &mut rng);
        let w = ParamRef::new(
            "w",
            uvd_tensor::init::normal_matrix(6, 1, 0.0, 0.3, &mut rng),
        );
        let mut g = Graph::inference();
        let xc = g.constant(x);
        let wn = g.param(&w);
        let z = g.matmul(xc, wn);
        let p = g.sigmoid(z);
        assert_eq!(g.value(p).rows(), 16);
        // The value arena holds 4 node buffers; no gradient arena exists, so
        // the workspace charge is exactly the forward values plus the cached
        // RHS panel pack of the matmul weight.
        let value_bytes: usize = [16 * 6, 6, 16, 16]
            .iter()
            .map(|len| len * std::mem::size_of::<f32>())
            .sum();
        assert_eq!(g.workspace_bytes() - g.pack_bytes(), value_bytes);
    });
}
