//! Pack-stamp protocol regression test: a replayed tape whose parameters
//! have not changed must not repack any GEMM operand.
//!
//! This pins the fix for the `gemm.pack_repack` pathology where parameter
//! leaves were stamped per replay epoch: every inference replay (the serve
//! micro-batch tick, the serve head refresh) repacked every weight matrix
//! even though no optimizer ever ran. Parameter packs now follow the
//! parameter's value *version* — steady-state replays are pure pack hits,
//! and a version bump (optimizer step, `value_mut`) invalidates exactly the
//! packs of the changed parameters.

use uvd_tensor::{par, Adam, Graph, Matrix, ParamRef, ParamSet};

fn counter(name: &str) -> u64 {
    uvd_obs::counter_summary()
        .into_iter()
        .find(|c| c.name == name)
        .map(|c| c.value)
        .unwrap_or(0)
}

/// One test function (not several) so the global counter deltas cannot
/// interleave with a concurrently running sibling test.
#[test]
fn steady_state_replay_never_repacks() {
    par::serial_scope(|| {
        let mut rng = uvd_tensor::seeded_rng(11);
        let x = uvd_tensor::init::normal_matrix(24, 16, 0.0, 1.0, &mut rng);
        let w1 = ParamRef::new(
            "w1",
            uvd_tensor::init::normal_matrix(16, 8, 0.0, 0.3, &mut rng),
        );
        let w2 = ParamRef::new(
            "w2",
            uvd_tensor::init::normal_matrix(8, 1, 0.0, 0.3, &mut rng),
        );

        // Inference-style tape: constants + frozen params, replay with new
        // leaf inputs only (the uvd-serve batch-scorer shape).
        let mut g = Graph::inference();
        let xc = g.constant(x.clone());
        let w1n = g.param(&w1);
        let h = g.matmul(xc, w1n);
        let w2n = g.param(&w2);
        let z = g.matmul(h, w2n);
        let first = g.value(z).clone();

        uvd_obs::set_memory();
        let repack0 = counter("gemm.pack_repack");
        g.replay(); // first replay refreshes both params (version 1 vs. 0)
        let warm = counter("gemm.pack_repack") - repack0;
        assert!(
            warm <= 2,
            "first replay may repack each param once, saw {warm}"
        );

        let (repack1, hit1) = (counter("gemm.pack_repack"), counter("gemm.pack_hit"));
        for _ in 0..5 {
            g.replay();
        }
        let repacks = counter("gemm.pack_repack") - repack1;
        let hits = counter("gemm.pack_hit") - hit1;
        assert_eq!(
            repacks, 0,
            "steady-state replay with unchanged params must not repack"
        );
        assert_eq!(hits, 10, "2 matmuls x 5 replays must all be pack hits");
        assert_eq!(
            g.value(z).as_slice(),
            first.as_slice(),
            "replay output drifted"
        );

        // Mutating one parameter invalidates exactly its pack on the next
        // replay; the untouched parameter stays a hit.
        w1.value_mut().set(0, 0, 0.25);
        let repack2 = counter("gemm.pack_repack");
        g.replay();
        assert_eq!(
            counter("gemm.pack_repack") - repack2,
            1,
            "exactly the changed param repacks"
        );

        // An optimizer step bumps every stepped param: both packs repack
        // once on the next replay, then go quiet again — the training
        // cadence (one repack per param per epoch) is unchanged by the
        // version protocol.
        let mut set = ParamSet::new();
        set.track(w1.clone());
        set.track(w2.clone());
        w1.accumulate_grad(&Matrix::filled(16, 8, 0.01));
        w2.accumulate_grad(&Matrix::filled(8, 1, 0.01));
        Adam::new(0.01).step(&set);
        let repack3 = counter("gemm.pack_repack");
        g.replay();
        assert_eq!(counter("gemm.pack_repack") - repack3, 2);
        let repack4 = counter("gemm.pack_repack");
        g.replay();
        assert_eq!(counter("gemm.pack_repack") - repack4, 0);

        // set_value on a non-param leaf still forces a repack of that leaf's
        // pack (the serve scorer's per-tick input path)... but `xc` is the
        // LHS here, so its pack slot is untouched; assert the whole replay
        // stays repack-free instead.
        g.set_value(xc, &x);
        let repack5 = counter("gemm.pack_repack");
        g.replay();
        assert_eq!(
            counter("gemm.pack_repack") - repack5,
            0,
            "LHS set_value must not repack RHS params"
        );
        uvd_obs::disable();
    });
}
