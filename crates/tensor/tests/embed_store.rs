//! `EmbeddingStore` format suite: proptest round-trips for `UVDT0002`,
//! a frozen-bytes golden file pinning the on-disk layout, the
//! backward-compatible `UVDT0001` read path, and rejection of corrupt
//! inputs (duplicate names, hostile headers, truncation).

// Exact float equality is intended throughout: the format is bit-exact.
#![allow(clippy::float_cmp)]

use proptest::prelude::*;
use uvd_tensor::{EmbeddingMeta, EmbeddingStore, Matrix, MatrixStore};

fn entry_strategy() -> impl Strategy<Value = (String, usize, usize, Vec<f32>, String, u64)> {
    (
        0u32..10_000,
        0usize..6,
        0usize..6,
        proptest::collection::vec(-1e6f32..1e6, 36),
        0u32..100,
        0u64..u64::MAX,
    )
        .prop_map(|(name_salt, rows, cols, data, city_salt, hash)| {
            (
                format!("e{name_salt}.w"),
                rows,
                cols,
                data[..rows * cols].to_vec(),
                format!("city{city_salt}"),
                hash,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any store survives a v2 write/read round trip bit-exactly —
    /// matrices, metadata, and entry order.
    #[test]
    fn v2_roundtrip(entries in proptest::collection::vec(entry_strategy(), 0..8)) {
        let mut store = EmbeddingStore::new();
        for (name, rows, cols, data, city, hash) in entries {
            store.insert(
                name,
                Matrix::from_vec(rows, cols, data),
                EmbeddingMeta { city, dim: cols as u32, checkpoint_hash: hash },
            );
        }
        let mut buf = Vec::new();
        store.write_to(&mut buf).expect("write");
        let back = EmbeddingStore::read_from(&mut buf.as_slice()).expect("read");
        prop_assert_eq!(&store, &back);
        let names_a: Vec<&str> = store.names().collect();
        let names_b: Vec<&str> = back.names().collect();
        prop_assert_eq!(names_a, names_b);
    }

    /// Truncating a valid v2 byte stream anywhere strictly inside never
    /// panics and always errors.
    #[test]
    fn v2_truncation_errors(cut_frac in 0.0f64..1.0) {
        let mut store = EmbeddingStore::new();
        store.insert(
            "emb.city",
            Matrix::from_vec(3, 4, (0..12).map(|i| i as f32).collect()),
            EmbeddingMeta::new("city", 4, 42),
        );
        let mut buf = Vec::new();
        store.write_to(&mut buf).expect("write");
        let cut = ((buf.len() - 1) as f64 * cut_frac) as usize;
        prop_assert!(EmbeddingStore::read_from(&mut buf[..cut].to_vec().as_slice()).is_err());
    }
}

/// The golden store every layout-pinning assertion uses: two entries with
/// non-trivial metadata and exactly representable values.
fn golden_store() -> EmbeddingStore {
    let mut store = EmbeddingStore::new();
    store.insert(
        "emb.tiny",
        Matrix::from_vec(2, 3, vec![1.0, -2.5, 0.25, 4.0, -0.125, 8.0]),
        EmbeddingMeta::new("tiny", 3, 0x0123_4567_89ab_cdef),
    );
    store.insert(
        "task.head.w",
        Matrix::from_vec(3, 1, vec![0.5, -1.5, 2.0]),
        EmbeddingMeta::new("tiny", 3, 0x0123_4567_89ab_cdef),
    );
    store
}

/// The committed golden file pins the on-disk layout: if serialization
/// changes in any way — field order, widths, endianness — this fails and
/// forces a deliberate format-version bump instead of a silent break.
#[test]
fn golden_bytes_are_pinned() {
    let golden: &[u8] = include_bytes!("data/embed_golden.uvdt2");
    let mut buf = Vec::new();
    golden_store().write_to(&mut buf).expect("write");
    assert_eq!(
        buf, golden,
        "UVDT0002 byte layout drifted from the committed golden file"
    );
    let back = EmbeddingStore::read_from(&mut buf.as_slice()).expect("read");
    assert_eq!(back, golden_store());
}

#[test]
fn golden_header_fields() {
    let golden: &[u8] = include_bytes!("data/embed_golden.uvdt2");
    assert_eq!(&golden[0..8], b"UVDT0002");
    assert_eq!(u32::from_le_bytes(golden[8..12].try_into().unwrap()), 2);
    assert_eq!(u32::from_le_bytes(golden[12..16].try_into().unwrap()), 2);
}

/// A `UVDT0001` file (no metadata) loads into an `EmbeddingStore` with
/// default provenance — old checkpoints stay readable as embedding sources.
#[test]
fn v1_file_reads_forward_compatibly() {
    let mut v1 = MatrixStore::new();
    v1.insert("emb.old", Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
    let mut buf = Vec::new();
    v1.write_to(&mut buf).expect("write v1");
    assert_eq!(&buf[0..8], b"UVDT0001");

    let store = EmbeddingStore::read_from(&mut buf.as_slice()).expect("read v1 as embedding");
    assert_eq!(store.len(), 1);
    assert_eq!(
        store.get("emb.old").expect("entry").as_slice(),
        v1.get("emb.old").unwrap().as_slice()
    );
    let meta = store.meta("emb.old").expect("meta");
    assert_eq!(meta.city, "");
    assert_eq!(meta.dim, 2);
    assert_eq!(meta.checkpoint_hash, 0);
}

#[test]
fn v2_read_rejects_duplicate_names() {
    let mut store = EmbeddingStore::new();
    store.insert(
        "w",
        Matrix::filled(1, 1, 1.0),
        EmbeddingMeta::new("c", 1, 7),
    );
    let mut buf = Vec::new();
    store.write_to(&mut buf).expect("write");
    // Duplicate the single entry payload and bump the count (magic 8 +
    // schema 4 + count 4 = 16-byte header).
    let entry = buf[16..].to_vec();
    buf.extend_from_slice(&entry);
    buf[12..16].copy_from_slice(&2u32.to_le_bytes());
    let err = EmbeddingStore::read_from(&mut buf.as_slice()).expect_err("duplicate must fail");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("duplicate"), "{err}");
}

#[test]
fn v2_read_rejects_future_schema() {
    let mut store = EmbeddingStore::new();
    store.insert("w", Matrix::zeros(1, 1), EmbeddingMeta::default());
    let mut buf = Vec::new();
    store.write_to(&mut buf).expect("write");
    buf[8..12].copy_from_slice(&3u32.to_le_bytes());
    let err = EmbeddingStore::read_from(&mut buf.as_slice()).expect_err("future schema");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("schema"), "{err}");
}

#[test]
fn v2_read_rejects_oversized_matrix_header() {
    let mut store = EmbeddingStore::new();
    store.insert("w", Matrix::zeros(1, 1), EmbeddingMeta::default());
    let mut buf = Vec::new();
    store.write_to(&mut buf).expect("write");
    // Entry payload after the 16-byte header: name_len(4)+name(1)+
    // city_len(4)+city(0)+dim(4)+hash(8) = 21 bytes, then rows at offset 37.
    let rows_off = 16 + 4 + 1 + 4 + 4 + 8;
    buf[rows_off..rows_off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    buf[rows_off + 4..rows_off + 8].copy_from_slice(&u32::MAX.to_le_bytes());
    let err = EmbeddingStore::read_from(&mut buf.as_slice()).expect_err("oversized header");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
}

#[test]
fn v1_duplicate_names_rejected_via_embed_path() {
    let mut v1 = MatrixStore::new();
    v1.insert("w", Matrix::filled(1, 1, 1.0));
    let mut buf = Vec::new();
    v1.write_to(&mut buf).expect("write");
    let entry = buf[12..].to_vec();
    buf.extend_from_slice(&entry);
    buf[8..12].copy_from_slice(&2u32.to_le_bytes());
    assert!(EmbeddingStore::read_from(&mut buf.as_slice()).is_err());
    assert!(MatrixStore::read_from(&mut buf.as_slice()).is_err());
}

#[test]
fn file_roundtrip() {
    let dir = std::env::temp_dir().join("uvd_embed_store_test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("emb.uvdt2");
    let store = golden_store();
    store.save(&path).expect("save");
    let back = EmbeddingStore::load(&path).expect("load");
    assert_eq!(store, back);
    let _ = std::fs::remove_file(&path);
}
