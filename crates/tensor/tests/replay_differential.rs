//! Replay-with-new-inputs differential contract (the `uvd-serve` hot path).
//!
//! A resident scoring service records one inference Plan and then replays it
//! for every request tick after overwriting input leaves with
//! [`Graph::set_value`]. That pattern leans on the workspace pack-stamp
//! protocol (`crates/tensor/src/gemm.rs`): const leaves pack their GEMM
//! panels once (`PERSISTENT`), `set_value` must knock the stamp back to
//! `NEVER` on **both** pack slots (`packs` for RHS/B panels, `packs_a` for
//! conv-kernel LHS panels), and the next execution must repack from the new
//! bytes.
//!
//! Every test here states the same theorem: *N back-to-back replays with
//! different inputs are bitwise-equal to N fresh graphs built from those
//! inputs*. A stale pack — a panel surviving a `set_value` — shows up as a
//! bitwise diff on the first replay, because the GEMM kernels consume only
//! the packed panels, never the raw leaf buffer.
//!
//! Audit note (satellite of ISSUE 8): the invalidation protocol was audited
//! for the replay-with-new-inputs pattern and found sound — `set_value`
//! resets both `packs[id]` and `packs_a[id]` to `NEVER`, `Plan::replay`
//! bumps the workspace epoch so non-const operands repack exactly once per
//! replay, and record-time executions after a `set_value` observe the
//! `NEVER` stamp and repack immediately. These tests pin that behavior so a
//! future pack-cache change cannot silently reintroduce stale reuse.

use uvd_tensor::init::{normal_matrix, seeded_rng};
use uvd_tensor::{ConvMeta, FusedAct, Graph, Matrix};

fn assert_bitwise(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: element {i} differs ({x} vs {y})"
        );
    }
}

// ---------------------------------------------------------------------------
// Plain matmul with a const-leaf RHS (the packed-B path).
// ---------------------------------------------------------------------------

fn fresh_matmul(a: &Matrix, b: &Matrix) -> Vec<f32> {
    let mut g = Graph::inference();
    let an = g.constant(a.clone());
    let bn = g.constant(b.clone());
    let c = g.matmul(an, bn);
    g.value(c).as_slice().to_vec()
}

#[test]
fn matmul_rhs_set_value_replays_match_fresh_graphs() {
    let mut rng = seeded_rng(3);
    let a1 = normal_matrix(33, 47, 0.0, 1.0, &mut rng);
    let b1 = normal_matrix(47, 29, 0.0, 1.0, &mut rng);
    let b2 = normal_matrix(47, 29, 0.0, 1.0, &mut rng);
    let b3 = normal_matrix(47, 29, 0.0, 1.0, &mut rng);

    let mut g = Graph::inference();
    let an = g.constant(a1.clone());
    let bn = g.constant(b1.clone());
    let c = g.matmul(an, bn);
    assert_bitwise(g.value(c).as_slice(), &fresh_matmul(&a1, &b1), "record");

    // Two back-to-back replays with different inputs …
    g.set_value(bn, &b2);
    g.replay();
    assert_bitwise(g.value(c).as_slice(), &fresh_matmul(&a1, &b2), "replay b2");
    g.set_value(bn, &b3);
    g.replay();
    assert_bitwise(g.value(c).as_slice(), &fresh_matmul(&a1, &b3), "replay b3");

    // … an idempotent replay with no new inputs …
    g.replay();
    assert_bitwise(
        g.value(c).as_slice(),
        &fresh_matmul(&a1, &b3),
        "replay again",
    );

    // … and a return to the original value (a PERSISTENT pack of b1 still
    // cached anywhere would now accidentally be "right" — the b2/b3 steps
    // above are what catch that; this step catches stamp-direction bugs).
    g.set_value(bn, &b1);
    g.replay();
    assert_bitwise(g.value(c).as_slice(), &fresh_matmul(&a1, &b1), "back to b1");
}

#[test]
fn record_time_exec_after_set_value_repacks() {
    // set_value between two recorded consumers of the same leaf: the second
    // record-time execution must not reuse the PERSISTENT pack of the first.
    let mut rng = seeded_rng(5);
    let a = normal_matrix(8, 12, 0.0, 1.0, &mut rng);
    let b1 = normal_matrix(12, 16, 0.0, 1.0, &mut rng);
    let b2 = normal_matrix(12, 16, 0.0, 1.0, &mut rng);

    let mut g = Graph::inference();
    let an = g.constant(a.clone());
    let bn = g.constant(b1.clone());
    let _c1 = g.matmul(an, bn); // packs bn as PERSISTENT from b1's bytes
    g.set_value(bn, &b2); // stamp must drop to NEVER
    let c2 = g.matmul(an, bn); // record-time exec: must repack from b2
    assert_bitwise(
        g.value(c2).as_slice(),
        &fresh_matmul(&a, &b2),
        "record after set_value",
    );
}

// ---------------------------------------------------------------------------
// Fused MatMulBiasAct with both operands replayed (serve classifier shape).
// ---------------------------------------------------------------------------

fn fresh_mba(a: &Matrix, b: &Matrix, bias: &Matrix) -> Vec<f32> {
    let mut g = Graph::inference();
    let an = g.constant(a.clone());
    let bn = g.constant(b.clone());
    let biasn = g.constant(bias.clone());
    let c = g.matmul_bias_act(an, bn, biasn, FusedAct::Tanh);
    g.value(c).as_slice().to_vec()
}

#[test]
fn matmul_bias_act_set_value_replays_match_fresh_graphs() {
    let mut rng = seeded_rng(11);
    let b = normal_matrix(21, 13, 0.0, 1.0, &mut rng);
    let bias = normal_matrix(1, 13, 0.0, 1.0, &mut rng);
    let xs: Vec<Matrix> = (0..3)
        .map(|_| normal_matrix(17, 21, 0.0, 1.0, &mut rng))
        .collect();
    let ws: Vec<Matrix> = (0..3)
        .map(|_| normal_matrix(21, 13, 0.0, 1.0, &mut rng))
        .collect();

    let mut g = Graph::inference();
    let an = g.constant(xs[0].clone());
    let bn = g.constant(b.clone());
    let biasn = g.constant(bias.clone());
    let c = g.matmul_bias_act(an, bn, biasn, FusedAct::Tanh);
    assert_bitwise(
        g.value(c).as_slice(),
        &fresh_mba(&xs[0], &b, &bias),
        "record",
    );

    // Vary the LHS only (the per-request activation rows in serve).
    for (i, x) in xs.iter().enumerate() {
        g.set_value(an, x);
        g.replay();
        assert_bitwise(
            g.value(c).as_slice(),
            &fresh_mba(x, &b, &bias),
            &format!("replay lhs {i}"),
        );
    }
    // Vary the packed RHS too (a hot-swapped weight).
    for (i, w) in ws.iter().enumerate() {
        g.set_value(bn, w);
        g.replay();
        assert_bitwise(
            g.value(c).as_slice(),
            &fresh_mba(&xs[2], w, &bias),
            &format!("replay rhs {i}"),
        );
    }
}

// ---------------------------------------------------------------------------
// Conv2d: the kernel is a packed LHS (`packs_a`), the image a plain input.
// ---------------------------------------------------------------------------

const META: ConvMeta = ConvMeta {
    c_in: 2,
    h_in: 9,
    w_in: 7,
    c_out: 3,
    k: 3,
    stride: 1,
    pad: 1,
};

fn fresh_conv(x: &Matrix, kernel: &Matrix) -> Vec<f32> {
    let mut g = Graph::inference();
    let xn = g.constant(x.clone());
    let kn = g.constant(kernel.clone());
    let c = g.conv2d(xn, kn, META);
    g.value(c).as_slice().to_vec()
}

#[test]
fn conv2d_kernel_set_value_invalidates_packs_a() {
    let mut rng = seeded_rng(17);
    let x1 = normal_matrix(5, META.in_len(), 0.0, 1.0, &mut rng);
    let x2 = normal_matrix(5, META.in_len(), 0.0, 1.0, &mut rng);
    let (kr, kc) = META.kernel_shape();
    let k1 = normal_matrix(kr, kc, 0.0, 1.0, &mut rng);
    let k2 = normal_matrix(kr, kc, 0.0, 1.0, &mut rng);

    let mut g = Graph::inference();
    let xn = g.constant(x1.clone());
    let kn = g.constant(k1.clone());
    let c = g.conv2d(xn, kn, META);
    assert_bitwise(g.value(c).as_slice(), &fresh_conv(&x1, &k1), "record");

    // New kernel bytes: the PERSISTENT packs_a panel must be dropped.
    g.set_value(kn, &k2);
    g.replay();
    assert_bitwise(g.value(c).as_slice(), &fresh_conv(&x1, &k2), "replay k2");

    // New image with the same kernel: only the im2col side changes.
    g.set_value(xn, &x2);
    g.replay();
    assert_bitwise(g.value(c).as_slice(), &fresh_conv(&x2, &k2), "replay x2");

    // Both at once, back to the originals.
    g.set_value(xn, &x1);
    g.set_value(kn, &k1);
    g.replay();
    assert_bitwise(g.value(c).as_slice(), &fresh_conv(&x1, &k1), "replay x1k1");
}

// ---------------------------------------------------------------------------
// The serve tick itself: gated matmul + sigmoid over per-request rows.
// ---------------------------------------------------------------------------

fn fresh_gated(x: &Matrix, w: &Matrix, f: &Matrix) -> Vec<f32> {
    let mut g = Graph::inference();
    let xn = g.constant(x.clone());
    let wn = g.constant(w.clone());
    let fn_ = g.constant(f.clone());
    let z = g.gated_matmul(xn, wn, fn_);
    let p = g.sigmoid(z);
    g.value(p).as_slice().to_vec()
}

#[test]
fn gated_matmul_batch_replays_match_fresh_graphs() {
    let (batch, d, h) = (6, 19, 5);
    let mut rng = seeded_rng(23);
    let w = normal_matrix(d, h, 0.0, 1.0, &mut rng);

    // Record at zeroed leaves — exactly how the serve batch plan records
    // before the first request arrives.
    let mut g = Graph::inference();
    let xn = g.constant(Matrix::zeros(batch, d));
    let wn = g.constant(w.clone());
    let fn_ = g.constant(Matrix::zeros(batch, d * h));
    let z = g.gated_matmul(xn, wn, fn_);
    let p = g.sigmoid(z);

    for tick in 0..4 {
        let x = normal_matrix(batch, d, 0.0, 1.0, &mut rng);
        let f = normal_matrix(batch, d * h, 0.0, 1.0, &mut rng);
        g.set_value(xn, &x);
        g.set_value(fn_, &f);
        g.replay();
        assert_bitwise(
            g.value(p).as_slice(),
            &fresh_gated(&x, &w, &f),
            &format!("tick {tick}"),
        );
    }
}

// ---------------------------------------------------------------------------
// A head-shaped chain: the replayed leaf feeds a matmul as RHS *and* a
// fused matmul as LHS (the GSCM collection / fuse shape in the serve head).
// ---------------------------------------------------------------------------

fn fresh_head(bt: &Matrix, xt: &Matrix, w: &Matrix, bias: &Matrix) -> Vec<f32> {
    let mut g = Graph::inference();
    let btn = g.constant(bt.clone());
    let xtn = g.constant(xt.clone());
    let wn = g.constant(w.clone());
    let biasn = g.constant(bias.clone());
    let pooled = g.matmul(btn, xtn); // xt as packed RHS
    let act = g.tanh(pooled);
    let mixed = g.matmul_bias_act(act, wn, biasn, FusedAct::LeakyRelu(0.2));
    let back = g.matmul(xtn, wn); // xt as LHS of a packed-RHS matmul
    let joined = g.matmul(btn, back);
    let out = g.add(mixed, joined);
    g.value(out).as_slice().to_vec()
}

#[test]
fn head_chain_set_value_replays_match_fresh_graphs() {
    let (k, n, d) = (4, 31, 15);
    let mut rng = seeded_rng(31);
    let bt = normal_matrix(k, n, 0.0, 1.0, &mut rng);
    let w = normal_matrix(d, d, 0.0, 1.0, &mut rng);
    let bias = normal_matrix(1, d, 0.0, 1.0, &mut rng);
    let xts: Vec<Matrix> = (0..3)
        .map(|_| normal_matrix(n, d, 0.0, 1.0, &mut rng))
        .collect();

    let mut g = Graph::inference();
    let btn = g.constant(bt.clone());
    let xtn = g.constant(xts[0].clone());
    let wn = g.constant(w.clone());
    let biasn = g.constant(bias.clone());
    let pooled = g.matmul(btn, xtn);
    let act = g.tanh(pooled);
    let mixed = g.matmul_bias_act(act, wn, biasn, FusedAct::LeakyRelu(0.2));
    let back = g.matmul(xtn, wn);
    let joined = g.matmul(btn, back);
    let out = g.add(mixed, joined);
    assert_bitwise(
        g.value(out).as_slice(),
        &fresh_head(&bt, &xts[0], &w, &bias),
        "record",
    );

    for (i, xt) in xts.iter().enumerate().skip(1) {
        g.set_value(xtn, xt);
        g.replay();
        assert_bitwise(
            g.value(out).as_slice(),
            &fresh_head(&bt, xt, &w, &bias),
            &format!("replay xt {i}"),
        );
    }
    // And back to the first input after the pack slots cycled.
    g.set_value(xtn, &xts[0]);
    g.replay();
    assert_bitwise(
        g.value(out).as_slice(),
        &fresh_head(&bt, &xts[0], &w, &bias),
        "back to xt 0",
    );
}
