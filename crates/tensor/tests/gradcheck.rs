//! Finite-difference gradient checks for every autodiff op.
//!
//! Each check builds a scalar loss from a set of input matrices, runs
//! `backward`, and compares every input gradient against a central
//! difference. Inputs are kept away from kinks (ReLU at 0, pooling ties) so
//! the numerical derivative is valid.

use std::sync::Arc;
use uvd_tensor::conv::{ConvMeta, PoolMeta};
use uvd_tensor::graph::CsrPair;
use uvd_tensor::init::{normal_matrix, seeded_rng, uniform_matrix};
use uvd_tensor::{Csr, EdgeIndex, Graph, Matrix, NodeId};

const EPS: f32 = 1e-2;
const TOL: f32 = 2e-2;

/// Check d(loss)/d(inputs[i]) for all inputs against central differences.
fn gradcheck(inputs: &[Matrix], build: impl Fn(&mut Graph, &[NodeId]) -> NodeId) {
    // Analytic gradients.
    let mut g = Graph::new();
    // Inputs are grad-tracking variables: plain constants are pruned from
    // the backward pass and would report no gradient.
    let ids: Vec<NodeId> = inputs.iter().map(|m| g.variable(m.clone())).collect();
    let loss = build(&mut g, &ids);
    assert_eq!(g.value(loss).shape(), (1, 1), "loss must be scalar");
    g.backward(loss);
    let analytic: Vec<Matrix> = ids
        .iter()
        .map(|&id| {
            g.grad(id)
                .cloned()
                .unwrap_or_else(|| Matrix::zeros(g.value(id).rows(), g.value(id).cols()))
        })
        .collect();

    // Numeric gradients.
    for (pi, input) in inputs.iter().enumerate() {
        for e in 0..input.len() {
            let eval = |delta: f32| -> f32 {
                let mut g = Graph::new();
                let ids: Vec<NodeId> = inputs
                    .iter()
                    .enumerate()
                    .map(|(j, m)| {
                        let mut m = m.clone();
                        if j == pi {
                            m.as_mut_slice()[e] += delta;
                        }
                        g.constant(m)
                    })
                    .collect();
                let loss = build(&mut g, &ids);
                g.scalar(loss)
            };
            let numeric = (eval(EPS) - eval(-EPS)) / (2.0 * EPS);
            let a = analytic[pi].as_slice()[e];
            let denom = 1.0f32.max(a.abs()).max(numeric.abs());
            assert!(
                (a - numeric).abs() / denom < TOL,
                "input {pi} elem {e}: analytic {a} vs numeric {numeric}"
            );
        }
    }
}

fn rng_mats(seed: u64, shapes: &[(usize, usize)]) -> Vec<Matrix> {
    let mut rng = seeded_rng(seed);
    shapes
        .iter()
        .map(|&(r, c)| normal_matrix(r, c, 0.0, 1.0, &mut rng))
        .collect()
}

#[test]
fn grad_matmul() {
    let m = rng_mats(1, &[(3, 4), (4, 2)]);
    gradcheck(&m, |g, ids| {
        let y = g.matmul(ids[0], ids[1]);
        g.sum_all(y)
    });
}

#[test]
fn grad_elementwise_add_sub_mul() {
    let m = rng_mats(2, &[(3, 3), (3, 3), (3, 3)]);
    gradcheck(&m, |g, ids| {
        let a = g.add(ids[0], ids[1]);
        let b = g.sub(a, ids[2]);
        let c = g.mul(b, ids[0]);
        g.mean_all(c)
    });
}

#[test]
fn grad_row_and_col_broadcasts() {
    let m = rng_mats(3, &[(4, 3), (1, 3), (4, 1)]);
    gradcheck(&m, |g, ids| {
        let a = g.add_row(ids[0], ids[1]);
        let b = g.mul_row(a, ids[1]);
        let c = g.mul_col(b, ids[2]);
        g.sum_all(c)
    });
}

#[test]
fn grad_scale_add_scalar() {
    let m = rng_mats(4, &[(2, 5)]);
    gradcheck(&m, |g, ids| {
        let a = g.scale(ids[0], -2.5);
        let b = g.add_scalar(a, 0.3);
        let c = g.mul(b, b);
        g.sum_all(c)
    });
}

#[test]
fn grad_leaky_relu_away_from_kink() {
    let mut rng = seeded_rng(5);
    // Keep |x| > 0.1 so the finite difference never crosses the kink.
    let mut m = uniform_matrix(3, 4, 0.1, 1.0, &mut rng);
    for (i, x) in m.as_mut_slice().iter_mut().enumerate() {
        if i % 2 == 0 {
            *x = -*x;
        }
    }
    gradcheck(&[m], |g, ids| {
        let a = g.leaky_relu(ids[0], 0.2);
        g.sum_all(a)
    });
}

#[test]
fn grad_sigmoid_tanh_exp_ln() {
    let mut rng = seeded_rng(6);
    let m = uniform_matrix(2, 3, 0.2, 1.5, &mut rng);
    gradcheck(&[m], |g, ids| {
        let s = g.sigmoid(ids[0]);
        let t = g.tanh(s);
        let e = g.exp(t);
        let l = g.ln_eps(e, 1e-6);
        g.sum_all(l)
    });
}

#[test]
fn grad_softmax_rows_with_temperature() {
    let m = rng_mats(7, &[(3, 5), (3, 5)]);
    gradcheck(&m, |g, ids| {
        let s = g.softmax_rows(ids[0], 0.7);
        let y = g.mul(s, ids[1]);
        g.sum_all(y)
    });
}

#[test]
fn grad_concat_slice_transpose() {
    let m = rng_mats(8, &[(3, 2), (3, 3)]);
    gradcheck(&m, |g, ids| {
        let c = g.concat_cols(ids[0], ids[1]);
        let s = g.slice_cols(c, 1, 4);
        let t = g.transpose(s);
        let y = g.mul(t, t);
        g.sum_all(y)
    });
}

#[test]
fn grad_row_sum() {
    let m = rng_mats(9, &[(4, 3)]);
    gradcheck(&m, |g, ids| {
        let r = g.row_sum(ids[0]);
        let y = g.mul(r, r);
        g.sum_all(y)
    });
}

#[test]
fn grad_gather_rows() {
    let m = rng_mats(10, &[(5, 3)]);
    let idx = Arc::new(vec![0u32, 2, 2, 4]);
    gradcheck(&m, move |g, ids| {
        let y = g.gather_rows(ids[0], idx.clone());
        let sq = g.mul(y, y);
        g.sum_all(sq)
    });
}

#[test]
fn grad_spmm() {
    let m = rng_mats(11, &[(4, 3)]);
    let csr = Csr::from_coo(
        4,
        4,
        vec![
            (0, 1, 0.5),
            (1, 0, 1.5),
            (2, 2, -1.0),
            (3, 1, 2.0),
            (3, 3, 0.3),
        ],
    );
    let pair = CsrPair::new(csr);
    gradcheck(&m, move |g, ids| {
        let y = g.spmm(pair.clone(), ids[0]);
        let sq = g.mul(y, y);
        g.sum_all(sq)
    });
}

#[test]
fn grad_edge_softmax_and_aggregate() {
    // Small graph with varied in-degrees, including an isolated node.
    let edges = Arc::new(EdgeIndex::from_pairs(
        4,
        vec![(0, 1), (2, 1), (3, 1), (1, 0), (0, 2)],
    ));
    let scores = rng_mats(12, &[(5, 1)]).pop().unwrap();
    let h = rng_mats(13, &[(4, 3)]).pop().unwrap();
    gradcheck(&[scores, h], move |g, ids| {
        let alpha = g.edge_softmax(ids[0], edges.clone());
        let out = g.edge_aggregate(alpha, ids[1], edges.clone());
        let sq = g.mul(out, out);
        g.sum_all(sq)
    });
}

#[test]
fn grad_gated_matmul() {
    let mut rng = seeded_rng(14);
    let x = normal_matrix(3, 4, 0.0, 1.0, &mut rng);
    let w = normal_matrix(4, 2, 0.0, 1.0, &mut rng);
    let f = uniform_matrix(3, 8, 0.1, 0.9, &mut rng);
    gradcheck(&[x, w, f], |g, ids| {
        let z = g.gated_matmul(ids[0], ids[1], ids[2]);
        let sq = g.mul(z, z);
        g.sum_all(sq)
    });
}

#[test]
fn gated_matmul_with_unit_filter_equals_matmul() {
    let mut rng = seeded_rng(15);
    let x = normal_matrix(5, 3, 0.0, 1.0, &mut rng);
    let w = normal_matrix(3, 4, 0.0, 1.0, &mut rng);
    let f = Matrix::filled(5, 12, 1.0);
    let mut g = Graph::new();
    let (xi, wi, fi) = (g.constant(x.clone()), g.constant(w.clone()), g.constant(f));
    let z = g.gated_matmul(xi, wi, fi);
    let reference = x.matmul(&w);
    for (a, b) in g.value(z).as_slice().iter().zip(reference.as_slice()) {
        assert!((a - b).abs() < 1e-5);
    }
}

#[test]
fn grad_sub_outer() {
    let m = rng_mats(16, &[(3, 1), (4, 1)]);
    gradcheck(&m, |g, ids| {
        let d = g.sub_outer(ids[0], ids[1]);
        let one = g.add_scalar(d, -1.0);
        let sq = g.mul(one, one);
        g.sum_all(sq)
    });
}

#[test]
fn grad_bce_with_logits() {
    let m = rng_mats(17, &[(6, 1)]);
    let targets = Arc::new(vec![1.0, 0.0, 1.0, 0.0, 1.0, 0.0]);
    let weights = Arc::new(vec![1.0, 1.0, 0.0, 2.0, 1.0, 0.5]);
    gradcheck(&m, move |g, ids| {
        g.bce_with_logits(ids[0], targets.clone(), weights.clone())
    });
}

#[test]
fn grad_conv2d_with_bias() {
    let meta = ConvMeta {
        c_in: 2,
        h_in: 4,
        w_in: 4,
        c_out: 3,
        k: 3,
        stride: 1,
        pad: 1,
    };
    let mut rng = seeded_rng(18);
    let x = normal_matrix(2, meta.in_len(), 0.0, 1.0, &mut rng);
    let (kr, kc) = meta.kernel_shape();
    let k = normal_matrix(kr, kc, 0.0, 0.5, &mut rng);
    let b = normal_matrix(1, meta.c_out, 0.0, 0.5, &mut rng);
    gradcheck(&[x, k, b], move |g, ids| {
        let y = g.conv2d(ids[0], ids[1], meta);
        let y = g.add_chan_bias(y, ids[2], meta.c_out, meta.h_out() * meta.w_out());
        let sq = g.mul(y, y);
        g.sum_all(sq)
    });
}

#[test]
fn grad_max_pool2_without_ties() {
    let meta = PoolMeta {
        channels: 2,
        h_in: 4,
        w_in: 4,
    };
    // Distinct values guarantee a unique argmax per window.
    let data: Vec<f32> = (0..meta.in_len())
        .map(|i| (i as f32 * 0.618).sin() * 3.0)
        .collect();
    let x = Matrix::from_vec(1, meta.in_len(), data);
    gradcheck(&[x], move |g, ids| {
        let y = g.max_pool2(ids[0], meta);
        let sq = g.mul(y, y);
        g.sum_all(sq)
    });
}

#[test]
fn grad_mse() {
    let m = rng_mats(19, &[(3, 3), (3, 3)]);
    gradcheck(&m, |g, ids| g.mse(ids[0], ids[1]));
}

#[test]
fn grad_composite_attention_block() {
    // A miniature MAGA-like block: linear -> edge attention -> nonlinearity.
    let edges = Arc::new(EdgeIndex::from_pairs(
        3,
        vec![(0, 0), (1, 0), (0, 1), (1, 1), (2, 1), (2, 2), (1, 2)],
    ));
    let src = Arc::new(edges.src().to_vec());
    let dst = Arc::new(edges.dst().to_vec());
    let m = rng_mats(20, &[(3, 4), (4, 3), (3, 1), (3, 1)]);
    gradcheck(&m, move |g, ids| {
        let h = g.matmul(ids[0], ids[1]);
        let sl = g.matmul(h, ids[2]);
        let sr = g.matmul(h, ids[3]);
        let sl_e = g.gather_rows(sl, dst.clone());
        let sr_e = g.gather_rows(sr, src.clone());
        let s = g.add(sl_e, sr_e);
        let s = g.leaky_relu(s, 0.2);
        let alpha = g.edge_softmax(s, edges.clone());
        let out = g.edge_aggregate(alpha, h, edges.clone());
        let out = g.tanh(out);
        let sq = g.mul(out, out);
        g.sum_all(sq)
    });
}
