//! Differential test against the frozen pre-refactor tape.
//!
//! `uvd_tensor::legacy` is the engine exactly as it existed before the
//! Plan/Workspace split. These tests record a realistic training tape once,
//! then on every epoch (a) replay the plan in place and (b) re-record the
//! same computation through the legacy engine, asserting forward values,
//! loss and parameter gradients agree **bit-for-bit** — the acceptance bar
//! for the refactor ("bit-identical to the pre-refactor tape").

use std::sync::Arc;
use uvd_tensor::init::normal_matrix;
use uvd_tensor::{legacy, par, Adam, Csr, CsrPair, EdgeIndex, Graph, Matrix, ParamRef, ParamSet};

fn bits(m: &Matrix) -> Vec<u32> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn replayed_plan_matches_legacy_tape_across_epochs() {
    par::serial_scope(|| {
        let (n, d, h) = (12usize, 6usize, 4usize);
        let mut rng = uvd_tensor::seeded_rng(3);
        let x = normal_matrix(n, d, 0.0, 1.0, &mut rng);
        let w1 = ParamRef::new("w1", normal_matrix(d, h, 0.0, 0.4, &mut rng));
        let w_att = ParamRef::new("w_att", normal_matrix(h, 1, 0.0, 0.4, &mut rng));
        let w2 = ParamRef::new("w2", normal_matrix(h, 1, 0.0, 0.4, &mut rng));
        let mut set = ParamSet::new();
        set.track(w1.clone());
        set.track(w_att.clone());
        set.track(w2.clone());

        // Ring graph with a chord per node, GAT-style attention + one GCN hop.
        let pairs: Vec<(u32, u32)> = (0..n as u32)
            .flat_map(|i| {
                let nn = n as u32;
                [(i, (i + 1) % nn), (i, (i + 5) % nn)]
            })
            .collect();
        let edges = Arc::new(EdgeIndex::from_pairs(n, pairs.clone()));
        let src: Arc<Vec<u32>> = Arc::new(edges.src().to_vec());
        let dst: Arc<Vec<u32>> = Arc::new(edges.dst().to_vec());
        let csr = CsrPair::new(Csr::from_coo(
            n,
            n,
            pairs
                .iter()
                .map(|&(s, t)| (t, s, 1.0 / 3.0))
                .collect::<Vec<_>>(),
        ));
        let rows: Arc<Vec<u32>> = Arc::new((0..n as u32).collect());
        let targets: Arc<Vec<f32>> = Arc::new((0..n).map(|i| (i % 2) as f32).collect());
        let weights: Arc<Vec<f32>> = Arc::new(vec![1.0; n]);

        // Record once (x stays a pruned constant, as in the real model).
        let mut g = Graph::new();
        let xc = g.constant(x);
        let w1n = g.param(&w1);
        let h0 = g.matmul(xc, w1n);
        let h0 = g.tanh(h0);
        let wa = g.param(&w_att);
        let score = g.matmul(h0, wa);
        let s_dst = g.gather_rows(score, dst);
        let s_src = g.gather_rows(score, src);
        let s = g.add(s_dst, s_src);
        let s = g.leaky_relu(s, 0.2);
        let alpha = g.edge_softmax(s, edges.clone());
        let h_att = g.edge_aggregate(alpha, h0, edges);
        let h_gcn = g.spmm(csr, h_att);
        let w2n = g.param(&w2);
        let logits = g.matmul(h_gcn, w2n);
        let picked = g.gather_rows(logits, rows);
        let loss = g.bce_with_logits(picked, targets, weights);

        let mut opt = Adam::new(0.05);
        for epoch in 0..4 {
            if epoch > 0 {
                g.replay();
            }
            // Legacy per-epoch rebuild of the identical computation, reading
            // the same (current) parameter values.
            let mut lg = legacy::rebuild(g.plan(), g.workspace());
            assert_eq!(lg.len(), g.len());
            for i in 0..g.len() {
                assert_eq!(
                    bits(g.value(g.node(i))),
                    bits(lg.value(lg.node(i))),
                    "epoch {epoch}: forward value of node {i} diverged"
                );
            }

            g.backward(loss);
            let root = lg.node(loss.index());
            lg.backward(root);

            // Parameter gradients delivered by either engine are bit-equal.
            set.zero_grads();
            g.write_grads();
            let plan_grads: Vec<Vec<u32>> = set.iter().map(|p| bits(&p.grad())).collect();
            set.zero_grads();
            lg.write_grads();
            let legacy_grads: Vec<Vec<u32>> = set.iter().map(|p| bits(&p.grad())).collect();
            assert_eq!(
                plan_grads, legacy_grads,
                "epoch {epoch}: param grads diverged"
            );

            // Every interior gradient the plan engine kept matches the
            // legacy one; the input-feature gradient is pruned (legacy
            // computed it, the plan engine proves it never needed to).
            for i in 0..g.len() {
                if let Some(pg) = g.grad(g.node(i)) {
                    let lgrad = lg.grad(lg.node(i)).expect("legacy grad present");
                    assert_eq!(bits(pg), bits(lgrad), "epoch {epoch}: grad {i} diverged");
                }
            }
            assert!(g.grad(xc).is_none(), "constant features must be pruned");
            assert!(lg.grad(lg.node(xc.index())).is_some());

            opt.step(&set);
        }
    });
}
