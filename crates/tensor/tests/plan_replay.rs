//! Property tests for the Plan/Workspace record/replay split: a tape
//! recorded once and replayed across epochs (with optimizer updates in
//! between) must be **bit-identical** to rebuilding the tape from scratch
//! every epoch, and the no-grad inference forward must match the training
//! forward bitwise.

use proptest::prelude::*;
use std::sync::Arc;
use uvd_tensor::{Adam, Graph, Matrix, NodeId, ParamRef, ParamSet};

const MAX_N: usize = 6;
const MAX_D: usize = 4;
const MAX_H: usize = 3;

/// Per-epoch observation: every bit pattern the training loop exposes.
#[derive(Debug, PartialEq, Eq)]
struct EpochBits {
    logits: Vec<u32>,
    loss: u32,
    grad_w1: Vec<u32>,
    grad_w2: Vec<u32>,
    post_step_w1: Vec<u32>,
    post_step_w2: Vec<u32>,
}

/// Small two-layer tape with a softmax regularizer branch: covers matmul,
/// tanh, softmax, mean, scale, add, gather and BCE through the replay path.
struct TapeInputs {
    x: Matrix,
    rows: Arc<Vec<u32>>,
    targets: Arc<Vec<f32>>,
    weights: Arc<Vec<f32>>,
}

fn build_tape(g: &mut Graph, inp: &TapeInputs, w1: &ParamRef, w2: &ParamRef) -> (NodeId, NodeId) {
    let xc = g.constant(inp.x.clone());
    let w1n = g.param(w1);
    let h1 = g.matmul(xc, w1n);
    let h1 = g.tanh(h1);
    let w2n = g.param(w2);
    let z = g.matmul(h1, w2n);
    let zl = g.gather_rows(z, inp.rows.clone());
    let bce = g.bce_with_logits(zl, inp.targets.clone(), inp.weights.clone());
    let s = g.softmax_rows(h1, 1.0);
    let reg = g.mean_all(s);
    let reg = g.scale(reg, 0.1);
    (zl, g.add(bce, reg))
}

fn bits(m: &Matrix) -> Vec<u32> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn epoch_bits(
    g: &Graph,
    logits: NodeId,
    loss_value: f32,
    w1: &ParamRef,
    w2: &ParamRef,
) -> EpochBits {
    EpochBits {
        logits: bits(g.value(logits)),
        loss: loss_value.to_bits(),
        grad_w1: bits(&w1.grad()),
        grad_w2: bits(&w2.grad()),
        post_step_w1: Vec::new(),
        post_step_w2: Vec::new(),
    }
}

fn fresh_params(w1: &Matrix, w2: &Matrix) -> (ParamRef, ParamRef, ParamSet) {
    let w1p = ParamRef::new("w1", w1.clone());
    let w2p = ParamRef::new("w2", w2.clone());
    let mut set = ParamSet::new();
    set.track(w1p.clone());
    set.track(w2p.clone());
    (w1p, w2p, set)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Replayed plan vs a tape freshly recorded every epoch: forward values,
    /// loss, parameter gradients and post-step parameters are bitwise equal
    /// across 4 epochs of Adam updates.
    #[test]
    fn replayed_plan_matches_fresh_tape_bitwise(
        n in 2usize..=MAX_N,
        d in 1usize..=MAX_D,
        h in 1usize..=MAX_H,
        xv in proptest::collection::vec(-2.0f32..2.0, MAX_N * MAX_D),
        w1v in proptest::collection::vec(-1.0f32..1.0, MAX_D * MAX_H),
        w2v in proptest::collection::vec(-1.0f32..1.0, MAX_H),
        ybits in proptest::collection::vec(0u8..2, MAX_N),
    ) {
        let epochs = 4;
        let inp = TapeInputs {
            x: Matrix::from_vec(n, d, xv[..n * d].to_vec()),
            rows: Arc::new((0..n as u32).collect()),
            targets: Arc::new(ybits[..n].iter().map(|&b| b as f32).collect()),
            weights: Arc::new(vec![1.0f32; n]),
        };
        let w1m = Matrix::from_vec(d, h, w1v[..d * h].to_vec());
        let w2m = Matrix::from_vec(h, 1, w2v[..h].to_vec());

        // Record-once / replay run.
        let (w1p, w2p, set) = fresh_params(&w1m, &w2m);
        let mut opt = Adam::new(0.05);
        let mut g = Graph::new();
        let (logits, loss) = build_tape(&mut g, &inp, &w1p, &w2p);
        let mut replayed: Vec<EpochBits> = Vec::new();
        for e in 0..epochs {
            if e > 0 {
                g.replay();
            }
            let lv = g.scalar(loss);
            g.backward(loss);
            g.write_grads();
            let mut eb = epoch_bits(&g, logits, lv, &w1p, &w2p);
            opt.step(&set);
            eb.post_step_w1 = bits(&w1p.value());
            eb.post_step_w2 = bits(&w2p.value());
            replayed.push(eb);
        }

        // Per-epoch rebuild run from the same initialization.
        let (w1p, w2p, set) = fresh_params(&w1m, &w2m);
        let mut opt = Adam::new(0.05);
        for eb_replay in replayed.iter().take(epochs) {
            let mut g = Graph::new();
            let (logits, loss) = build_tape(&mut g, &inp, &w1p, &w2p);
            let lv = g.scalar(loss);
            g.backward(loss);
            g.write_grads();
            let mut eb = epoch_bits(&g, logits, lv, &w1p, &w2p);
            opt.step(&set);
            eb.post_step_w1 = bits(&w1p.value());
            eb.post_step_w2 = bits(&w2p.value());
            prop_assert_eq!(eb_replay, &eb);
        }
    }

    /// The no-grad inference graph computes the exact same forward bits as a
    /// training graph over the same tape.
    #[test]
    fn inference_forward_matches_training_forward_bitwise(
        n in 2usize..=MAX_N,
        d in 1usize..=MAX_D,
        h in 1usize..=MAX_H,
        xv in proptest::collection::vec(-2.0f32..2.0, MAX_N * MAX_D),
        w1v in proptest::collection::vec(-1.0f32..1.0, MAX_D * MAX_H),
        w2v in proptest::collection::vec(-1.0f32..1.0, MAX_H),
        ybits in proptest::collection::vec(0u8..2, MAX_N),
    ) {
        let inp = TapeInputs {
            x: Matrix::from_vec(n, d, xv[..n * d].to_vec()),
            rows: Arc::new((0..n as u32).collect()),
            targets: Arc::new(ybits[..n].iter().map(|&b| b as f32).collect()),
            weights: Arc::new(vec![1.0f32; n]),
        };
        let w1p = ParamRef::new("w1", Matrix::from_vec(d, h, w1v[..d * h].to_vec()));
        let w2p = ParamRef::new("w2", Matrix::from_vec(h, 1, w2v[..h].to_vec()));

        let mut train_g = Graph::new();
        let (t_logits, t_loss) = build_tape(&mut train_g, &inp, &w1p, &w2p);
        let mut infer_g = Graph::inference();
        let (i_logits, i_loss) = build_tape(&mut infer_g, &inp, &w1p, &w2p);

        prop_assert_eq!(bits(train_g.value(t_logits)), bits(infer_g.value(i_logits)));
        prop_assert_eq!(
            train_g.scalar(t_loss).to_bits(),
            infer_g.scalar(i_loss).to_bits()
        );
    }
}
