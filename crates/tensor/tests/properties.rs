//! Property-based tests over the tensor kernels and autodiff invariants.

use proptest::prelude::*;
use std::sync::Arc;
use uvd_tensor::{Csr, EdgeIndex, Graph, Matrix};

fn small_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-3.0f32..3.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// (AB)C == A(BC) within f32 tolerance.
    #[test]
    fn matmul_associative(a in small_matrix(3, 4), b in small_matrix(4, 2), c in small_matrix(2, 5)) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    /// A^T B computed by matmul_tn matches the explicit transpose.
    #[test]
    fn matmul_tn_consistent(a in small_matrix(4, 3), b in small_matrix(4, 2)) {
        let fast = a.matmul_tn(&b);
        let slow = a.transpose().matmul(&b);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// A B^T computed by matmul_nt matches the explicit transpose.
    #[test]
    fn matmul_nt_consistent(a in small_matrix(3, 4), b in small_matrix(2, 4)) {
        let fast = a.matmul_nt(&b);
        let slow = a.matmul(&b.transpose());
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// Softmax rows sum to one and are within (0, 1], for any temperature.
    #[test]
    fn softmax_rows_is_distribution(a in small_matrix(4, 6), tau in 0.05f32..5.0) {
        let s = a.softmax_rows(tau);
        for r in 0..4 {
            let sum: f32 = s.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4, "row sum {sum}");
            for &x in s.row(r) {
                // exp((x - max)/tau) underflows f32 to exactly 0.0 once the
                // shifted exponent drops below ~-87 (easily reached at low
                // temperature), so 0.0 is a legitimate probability here.
                prop_assert!((0.0..=1.0 + 1e-6).contains(&x));
            }
        }
    }

    /// Softmax is shift-invariant per row.
    #[test]
    fn softmax_shift_invariant(a in small_matrix(2, 5), shift in -10.0f32..10.0) {
        let s1 = a.softmax_rows(1.0);
        let s2 = a.map(|x| x + shift).softmax_rows(1.0);
        for (x, y) in s1.as_slice().iter().zip(s2.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// CSR spmm agrees with a dense reconstruction of the matrix.
    #[test]
    fn spmm_matches_dense(
        entries in proptest::collection::vec((0u32..5, 0u32..5, -2.0f32..2.0), 0..12),
        x in small_matrix(5, 3),
    ) {
        let csr = Csr::from_coo(5, 5, entries.clone());
        let mut dense = Matrix::zeros(5, 5);
        for (r, c, v) in entries {
            dense.set(r as usize, c as usize, dense.get(r as usize, c as usize) + v);
        }
        let a = csr.spmm(&x);
        let b = dense.matmul(&x);
        for (p, q) in a.as_slice().iter().zip(b.as_slice()) {
            prop_assert!((p - q).abs() < 1e-4);
        }
    }

    /// Edge softmax produces a distribution over every non-empty incoming set.
    #[test]
    fn edge_softmax_distribution(
        pairs in proptest::collection::vec((0u32..6, 0u32..6), 1..20),
        raw in proptest::collection::vec(-4.0f32..4.0, 20),
    ) {
        let edges = Arc::new(EdgeIndex::from_pairs(6, pairs));
        let scores = Matrix::from_vec(
            edges.n_edges(), 1, raw[..edges.n_edges()].to_vec(),
        );
        let mut g = Graph::new();
        let s = g.constant(scores);
        let a = g.edge_softmax(s, edges.clone());
        let alpha = g.value(a);
        for i in 0..6 {
            let range = edges.incoming(i);
            if range.is_empty() { continue; }
            let sum: f32 = range.map(|e| alpha.get(e, 0)).sum();
            prop_assert!((sum - 1.0).abs() < 1e-4, "node {i} sum {sum}");
        }
    }

    /// Uniform attention equals mean aggregation of neighbour features.
    #[test]
    fn uniform_attention_is_mean(h in small_matrix(4, 3)) {
        let edges = Arc::new(EdgeIndex::from_pairs(
            4, vec![(0, 3), (1, 3), (2, 3)],
        ));
        let mut g = Graph::new();
        let s = g.constant(Matrix::col_vec(&[0.0, 0.0, 0.0]));
        let hi = g.constant(h.clone());
        let alpha = g.edge_softmax(s, edges.clone());
        let out = g.edge_aggregate(alpha, hi, edges);
        for c in 0..3 {
            let mean = (h.get(0, c) + h.get(1, c) + h.get(2, c)) / 3.0;
            prop_assert!((g.value(out).get(3, c) - mean).abs() < 1e-4);
        }
    }

    /// Backward of sum(X*W) gives exact analytic gradients for any inputs.
    #[test]
    fn backward_linear_exact(x in small_matrix(3, 4), w in small_matrix(4, 2)) {
        let mut g = Graph::new();
        let xi = g.variable(x.clone());
        let wi = g.variable(w.clone());
        let y = g.matmul(xi, wi);
        let loss = g.sum_all(y);
        g.backward(loss);
        // dW = X^T * ones, dX = ones * W^T.
        let ones = Matrix::filled(3, 2, 1.0);
        let dw = x.matmul_tn(&ones);
        let dx = ones.matmul_nt(&w);
        for (a, b) in g.grad(wi).unwrap().as_slice().iter().zip(dw.as_slice()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
        for (a, b) in g.grad(xi).unwrap().as_slice().iter().zip(dx.as_slice()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    /// gather then sum == selecting rows and summing them manually.
    #[test]
    fn gather_rows_sum(x in small_matrix(5, 2), idx in proptest::collection::vec(0u32..5, 1..8)) {
        let g = x.gather_rows(&idx);
        let manual: f32 = idx.iter().map(|&i| x.row(i as usize).iter().sum::<f32>()).sum();
        prop_assert!((g.sum() - manual).abs() < 1e-4);
    }
}
