//! Sparse structures used by graph neural network layers: a CSR matrix for
//! GCN-style propagation and an edge index (sorted by destination) for
//! attention-style aggregation.

use crate::matrix::Matrix;
use crate::par;

/// Compressed sparse row matrix of `f32`.
#[derive(Clone, Debug)]
pub struct Csr {
    rows: usize,
    cols: usize,
    indptr: Vec<u32>,
    indices: Vec<u32>,
    values: Vec<f32>,
}

impl Csr {
    /// Build from COO triplets; duplicate entries are summed.
    pub fn from_coo(rows: usize, cols: usize, mut coo: Vec<(u32, u32, f32)>) -> Self {
        coo.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut indptr = vec![0u32; rows + 1];
        let mut indices: Vec<u32> = Vec::with_capacity(coo.len());
        let mut values: Vec<f32> = Vec::with_capacity(coo.len());
        let mut last: Option<(u32, u32)> = None;
        for &(r, c, v) in &coo {
            assert!(
                (r as usize) < rows && (c as usize) < cols,
                "coo out of bounds"
            );
            if last == Some((r, c)) {
                *values.last_mut().expect("non-empty after a push") += v;
            } else {
                indices.push(c);
                values.push(v);
                indptr[r as usize + 1] += 1;
                last = Some((r, c));
            }
        }
        for i in 1..indptr.len() {
            indptr[i] += indptr[i - 1];
        }
        Csr {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Iterate the non-zeros of one row as `(col, value)` pairs.
    pub fn row_iter(&self, r: usize) -> impl Iterator<Item = (u32, f32)> + '_ {
        let lo = self.indptr[r] as usize;
        let hi = self.indptr[r + 1] as usize;
        self.indices[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Sparse × dense product: `self * x`. Output rows are partitioned
    /// across threads; each row reduces its non-zeros in CSR order, so the
    /// result is bit-identical to the serial loop at any thread count.
    pub fn spmm(&self, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, x.cols());
        self.spmm_acc(x, out.as_mut_slice());
        out
    }

    /// Accumulate `self * x` into a caller-owned (pre-zeroed) buffer. Same
    /// partitioning and reduction order as [`Csr::spmm`], so bit-equal.
    pub fn spmm_acc(&self, x: &Matrix, out: &mut [f32]) {
        assert_eq!(
            self.cols,
            x.rows(),
            "spmm: {}x{} * {}x{}",
            self.rows,
            self.cols,
            x.rows(),
            x.cols()
        );
        let n = x.cols();
        assert_eq!(out.len(), self.rows * n, "spmm output buffer size");
        let work = self.nnz() * n;
        par::for_each_row_block(out, n, work, |rows, chunk| {
            for (ri, r) in rows.enumerate() {
                let lo = self.indptr[r] as usize;
                let hi = self.indptr[r + 1] as usize;
                let o_row = &mut chunk[ri * n..(ri + 1) * n];
                for k in lo..hi {
                    let c = self.indices[k] as usize;
                    let v = self.values[k];
                    let x_row = &x.as_slice()[c * n..(c + 1) * n];
                    for (o, &xv) in o_row.iter_mut().zip(x_row.iter()) {
                        *o += v * xv;
                    }
                }
            }
        });
    }

    /// Transposed copy: direct `O(nnz)` counting-sort construction (count
    /// entries per column, prefix-sum into the new `indptr`, then scatter).
    /// CSR rows are already deduplicated and column-sorted, so a stable
    /// row-order scatter yields sorted output rows — identical to the old
    /// COO rebuild without its sort.
    pub fn transpose(&self) -> Csr {
        let nnz = self.nnz();
        let mut indptr = vec![0u32; self.cols + 1];
        for &c in &self.indices {
            indptr[c as usize + 1] += 1;
        }
        for i in 0..self.cols {
            indptr[i + 1] += indptr[i];
        }
        let mut next: Vec<u32> = indptr[..self.cols].to_vec();
        let mut indices = vec![0u32; nnz];
        let mut values = vec![0.0f32; nnz];
        for r in 0..self.rows {
            let (lo, hi) = (self.indptr[r] as usize, self.indptr[r + 1] as usize);
            for k in lo..hi {
                let c = self.indices[k] as usize;
                let pos = next[c] as usize;
                next[c] += 1;
                indices[pos] = r as u32;
                values[pos] = self.values[k];
            }
        }
        Csr {
            rows: self.cols,
            cols: self.rows,
            indptr,
            indices,
            values,
        }
    }

    /// Symmetric normalization `D^{-1/2} (A) D^{-1/2}` (GCN, Kipf & Welling).
    /// The caller is expected to have added self-loops already if desired.
    ///
    /// The output has exactly this matrix's sparsity structure, so instead
    /// of rebuilding through COO (sort + dedup) the structure is cloned and
    /// only the values are rescaled, row-parallel.
    pub fn sym_normalized(&self) -> Csr {
        assert_eq!(self.rows, self.cols, "sym_normalized requires square");
        let mut deg = vec![0.0f32; self.rows];
        for (r, d) in deg.iter_mut().enumerate() {
            for (_, v) in self.row_iter(r) {
                *d += v;
            }
        }
        let inv_sqrt: Vec<f32> = deg
            .iter()
            .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
            .collect();
        let mut values = self.values.clone();
        par::for_each_disjoint(
            &mut values,
            self.rows,
            self.nnz() * 3,
            |r| self.indptr[r] as usize,
            |rows, chunk| {
                let base = self.indptr[rows.start] as usize;
                for r in rows {
                    let lo = self.indptr[r] as usize;
                    let hi = self.indptr[r + 1] as usize;
                    for k in lo..hi {
                        let c = self.indices[k] as usize;
                        chunk[k - base] *= inv_sqrt[r] * inv_sqrt[c];
                    }
                }
            },
        );
        Csr {
            rows: self.rows,
            cols: self.cols,
            indptr: self.indptr.clone(),
            indices: self.indices.clone(),
            values,
        }
    }
}

/// Directed edge list sorted by destination node, with CSR-style offsets per
/// destination. `src[e]` is the message sender, `dst[e]` the receiver; all
/// edges with the same destination are contiguous.
#[derive(Clone, Debug)]
pub struct EdgeIndex {
    n_nodes: usize,
    src: Vec<u32>,
    dst: Vec<u32>,
    /// `dst_ptr[i]..dst_ptr[i+1]` is the edge range whose destination is `i`.
    dst_ptr: Vec<u32>,
}

impl EdgeIndex {
    /// Build from `(src, dst)` pairs. Pairs are sorted by destination.
    pub fn from_pairs(n_nodes: usize, mut pairs: Vec<(u32, u32)>) -> Self {
        pairs.sort_unstable_by_key(|&(s, d)| (d, s));
        let mut src = Vec::with_capacity(pairs.len());
        let mut dst = Vec::with_capacity(pairs.len());
        let mut dst_ptr = vec![0u32; n_nodes + 1];
        for &(s, d) in &pairs {
            assert!(
                (s as usize) < n_nodes && (d as usize) < n_nodes,
                "edge out of bounds"
            );
            src.push(s);
            dst.push(d);
            dst_ptr[d as usize + 1] += 1;
        }
        for i in 1..dst_ptr.len() {
            dst_ptr[i] += dst_ptr[i - 1];
        }
        EdgeIndex {
            n_nodes,
            src,
            dst,
            dst_ptr,
        }
    }

    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    pub fn n_edges(&self) -> usize {
        self.src.len()
    }

    pub fn src(&self) -> &[u32] {
        &self.src
    }

    pub fn dst(&self) -> &[u32] {
        &self.dst
    }

    /// Per-destination CSR offsets: `dst_ptr()[i]..dst_ptr()[i+1]` is the
    /// edge range whose destination is `i` (length `n_nodes + 1`). Used by
    /// the parallel edge kernels to align chunk boundaries to destinations.
    pub fn dst_ptr(&self) -> &[u32] {
        &self.dst_ptr
    }

    /// Edge id range with destination `i`.
    pub fn incoming(&self, i: usize) -> std::ops::Range<usize> {
        self.dst_ptr[i] as usize..self.dst_ptr[i + 1] as usize
    }

    /// In-degree of node `i`.
    pub fn in_degree(&self, i: usize) -> usize {
        (self.dst_ptr[i + 1] - self.dst_ptr[i]) as usize
    }
}

#[cfg(test)]
mod tests {
    // Exact float equality is intended in these tests: they assert
    // exact constants and bit-reproducible results, not tolerances.
    #![allow(clippy::float_cmp)]

    use super::*;

    #[test]
    fn csr_spmm_matches_dense() {
        let coo = vec![(0, 1, 2.0), (1, 0, 3.0), (1, 2, 1.0), (2, 2, 4.0)];
        let a = Csr::from_coo(3, 3, coo);
        let x = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        let y = a.spmm(&x);
        let dense = Matrix::from_rows(&[&[0.0, 2.0, 0.0], &[3.0, 0.0, 1.0], &[0.0, 0.0, 4.0]]);
        assert_eq!(y, dense.matmul(&x));
    }

    #[test]
    fn csr_duplicates_summed() {
        let a = Csr::from_coo(2, 2, vec![(0, 0, 1.0), (0, 0, 2.0), (1, 1, 5.0)]);
        assert_eq!(a.nnz(), 2);
        let x = Matrix::eye(2);
        let y = a.spmm(&x);
        assert_eq!(y.get(0, 0), 3.0);
        assert_eq!(y.get(1, 1), 5.0);
    }

    #[test]
    fn csr_empty_rows_ok() {
        let a = Csr::from_coo(4, 4, vec![(3, 0, 1.0)]);
        let x = Matrix::eye(4);
        let y = a.spmm(&x);
        assert_eq!(y.get(0, 0), 0.0);
        assert_eq!(y.get(3, 0), 1.0);
    }

    #[test]
    fn csr_transpose_roundtrip() {
        let a = Csr::from_coo(2, 3, vec![(0, 2, 1.5), (1, 0, -2.0)]);
        let att = a.transpose().transpose();
        let x = Matrix::eye(3);
        assert_eq!(a.spmm(&x), att.spmm(&x));
    }

    #[test]
    fn sym_normalized_row_scale() {
        // Path graph 0-1 with self loops: degrees 2,2 after loops.
        let coo = vec![(0, 0, 1.0), (1, 1, 1.0), (0, 1, 1.0), (1, 0, 1.0)];
        let a = Csr::from_coo(2, 2, coo).sym_normalized();
        let x = Matrix::eye(2);
        let y = a.spmm(&x);
        assert!((y.get(0, 0) - 0.5).abs() < 1e-6);
        assert!((y.get(0, 1) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn edge_index_groups_by_dst() {
        let e = EdgeIndex::from_pairs(3, vec![(0, 2), (1, 2), (2, 0)]);
        assert_eq!(e.n_edges(), 3);
        assert_eq!(e.incoming(2), 1..3);
        assert_eq!(e.in_degree(1), 0);
        assert_eq!(e.in_degree(2), 2);
        for eid in e.incoming(2) {
            assert_eq!(e.dst()[eid], 2);
        }
    }
}
