//! Sparse structures used by graph neural network layers: a CSR matrix for
//! GCN-style propagation and an edge index (sorted by destination) for
//! attention-style aggregation.

use crate::gemm::{self, Isa};
use crate::matrix::Matrix;
use crate::par;

/// Compressed sparse row matrix of `f32`.
#[derive(Clone, Debug)]
pub struct Csr {
    rows: usize,
    cols: usize,
    indptr: Vec<u32>,
    indices: Vec<u32>,
    values: Vec<f32>,
}

/// Exclusive prefix sums of `counts` into a CSR-style offset array of length
/// `counts.len() + 1` (`out[0] = 0`, `out[n] = total`).
fn prefix_offsets(counts: &[u32]) -> Vec<u32> {
    let mut ptr = vec![0u32; counts.len() + 1];
    for (i, &c) in counts.iter().enumerate() {
        ptr[i + 1] = ptr[i] + c;
    }
    ptr
}

impl Csr {
    /// Build from COO triplets; duplicate entries are summed.
    ///
    /// Ordering by `(row, col)` runs as a two-pass stable counting sort —
    /// O(nnz + rows + cols) instead of the comparison sort's
    /// O(nnz · log nnz) — with both key histograms computed in one parallel
    /// sweep. Equal keys are identical `(r, c)` cells whose values are
    /// summed anyway, so the result is elementwise equal to the old
    /// `sort_unstable_by_key` construction.
    pub fn from_coo(rows: usize, cols: usize, coo: Vec<(u32, u32, f32)>) -> Self {
        let nnz = coo.len();
        if nnz == 0 {
            return Csr {
                rows,
                cols,
                indptr: vec![0u32; rows + 1],
                indices: Vec::new(),
                values: Vec::new(),
            };
        }
        // One parallel sweep for both pass histograms (and the bounds
        // check, so a bad triplet panics before any scatter).
        let mut parts = par::map_chunks(nnz, nnz, |range| {
            let mut hr = vec![0u32; rows];
            let mut hc = vec![0u32; cols];
            for &(r, c, _) in &coo[range] {
                assert!(
                    (r as usize) < rows && (c as usize) < cols,
                    "coo out of bounds"
                );
                hr[r as usize] += 1;
                hc[c as usize] += 1;
            }
            (hr, hc)
        })
        .into_iter();
        let (mut h_row, mut h_col) = parts.next().expect("at least one chunk");
        for (pr, pc) in parts {
            for (t, p) in h_row.iter_mut().zip(pr) {
                *t += p;
            }
            for (t, p) in h_col.iter_mut().zip(pc) {
                *t += p;
            }
        }
        // Pass 1: stable scatter by column.
        let mut next = prefix_offsets(&h_col);
        let mut by_col: Vec<(u32, u32, f32)> = vec![(0, 0, 0.0); nnz];
        for &(r, c, v) in &coo {
            let pos = next[c as usize] as usize;
            next[c as usize] += 1;
            by_col[pos] = (r, c, v);
        }
        // Pass 2: stable scatter by row — equal-row runs stay col-sorted.
        let mut next = prefix_offsets(&h_row);
        let mut sorted: Vec<(u32, u32, f32)> = vec![(0, 0, 0.0); nnz];
        for &(r, c, v) in &by_col {
            let pos = next[r as usize] as usize;
            next[r as usize] += 1;
            sorted[pos] = (r, c, v);
        }
        // Dedup-sum over the sorted triplets, exactly as before.
        let mut indptr = vec![0u32; rows + 1];
        let mut indices: Vec<u32> = Vec::with_capacity(nnz);
        let mut values: Vec<f32> = Vec::with_capacity(nnz);
        let mut last: Option<(u32, u32)> = None;
        for &(r, c, v) in &sorted {
            if last == Some((r, c)) {
                *values.last_mut().expect("non-empty after a push") += v;
            } else {
                indices.push(c);
                values.push(v);
                indptr[r as usize + 1] += 1;
                last = Some((r, c));
            }
        }
        for i in 1..indptr.len() {
            indptr[i] += indptr[i - 1];
        }
        Csr {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Iterate the non-zeros of one row as `(col, value)` pairs.
    pub fn row_iter(&self, r: usize) -> impl Iterator<Item = (u32, f32)> + '_ {
        let lo = self.indptr[r] as usize;
        let hi = self.indptr[r + 1] as usize;
        self.indices[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Sparse × dense product: `self * x`. Output rows are partitioned
    /// across threads; each row reduces its non-zeros in CSR order, so the
    /// result is bit-identical to the serial loop at any thread count.
    pub fn spmm(&self, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, x.cols());
        self.spmm_to(x, out.as_mut_slice());
        out
    }

    /// Overwrite a caller-owned buffer with `self * x`. Seeds every
    /// accumulator chain at literal `0.0` instead of loading the buffer —
    /// bit-identical to zero-filling and then calling [`Csr::spmm_acc`]
    /// (the chains are the same; only the redundant zero pass and the
    /// output-row read are gone), and what the plan replay runs per epoch.
    pub fn spmm_to(&self, x: &Matrix, out: &mut [f32]) {
        self.spmm_dispatch(x, out, false);
    }

    /// Accumulate `self * x` into a caller-owned (pre-zeroed) buffer. Same
    /// partitioning and reduction order as [`Csr::spmm`], so bit-equal.
    ///
    /// Register-tiled like the dense GEMM (DESIGN.md §9): each output row is
    /// processed in `NR`-wide column panels of `x`, holding the panel's
    /// partial sums in register accumulators across the whole non-zero sweep
    /// instead of read-modify-writing the output row once per non-zero.
    /// Per output element the reduction is still one accumulator chain in
    /// ascending CSR (`k`) order seeded from the existing output value —
    /// panel width and ISA tier change only *which* elements an iteration
    /// touches, so every tier stays bit-identical to the legacy row loop
    /// (frozen as [`crate::legacy`]'s `naive_spmm`). Under `UVD_FAST_MATH=1`
    /// the panel step becomes a fused multiply-add (rounding-level
    /// difference only; see [`crate::fastmath`]).
    pub fn spmm_acc(&self, x: &Matrix, out: &mut [f32]) {
        self.spmm_dispatch(x, out, true);
    }

    fn spmm_dispatch(&self, x: &Matrix, out: &mut [f32], acc: bool) {
        assert_eq!(
            self.cols,
            x.rows(),
            "spmm: {}x{} * {}x{}",
            self.rows,
            self.cols,
            x.rows(),
            x.cols()
        );
        let n = x.cols();
        assert_eq!(out.len(), self.rows * n, "spmm output buffer size");
        let work = self.nnz() * n;
        let is = gemm::isa();
        // Resolved on the calling thread so `with_fast_math` scopes reach
        // the pool workers.
        let fm = gemm::fast_math_active();
        par::for_each_row_block(out, n, work, |rows, chunk| {
            spmm_rows(
                is,
                fm,
                acc,
                &self.indptr,
                &self.indices,
                &self.values,
                x.as_slice(),
                n,
                rows,
                chunk,
            );
        });
    }

    /// Transposed copy: direct `O(nnz)` counting-sort construction (count
    /// entries per column, prefix-sum into the new `indptr`, then scatter).
    /// CSR rows are already deduplicated and column-sorted, so a stable
    /// row-order scatter yields sorted output rows — identical to the old
    /// COO rebuild without its sort.
    pub fn transpose(&self) -> Csr {
        let nnz = self.nnz();
        let mut indptr = vec![0u32; self.cols + 1];
        for &c in &self.indices {
            indptr[c as usize + 1] += 1;
        }
        for i in 0..self.cols {
            indptr[i + 1] += indptr[i];
        }
        let mut next: Vec<u32> = indptr[..self.cols].to_vec();
        let mut indices = vec![0u32; nnz];
        let mut values = vec![0.0f32; nnz];
        for r in 0..self.rows {
            let (lo, hi) = (self.indptr[r] as usize, self.indptr[r + 1] as usize);
            for k in lo..hi {
                let c = self.indices[k] as usize;
                let pos = next[c] as usize;
                next[c] += 1;
                indices[pos] = r as u32;
                values[pos] = self.values[k];
            }
        }
        Csr {
            rows: self.cols,
            cols: self.rows,
            indptr,
            indices,
            values,
        }
    }

    /// Extract the induced square submatrix at `nodes` (strictly ascending
    /// old ids). Entry `(i, j)` of the result is the entry at
    /// `(nodes[i], nodes[j])` of `self`, with its stored value **gathered
    /// verbatim** — never renormalized — so a sampled block of a
    /// `sym_normalized` adjacency reproduces the full graph's edge weights
    /// exactly. Because `nodes` is ascending and rows are column-sorted,
    /// the relabeling is monotone and the output rows stay sorted without a
    /// re-sort, keeping per-row accumulation order in `spmm` identical to
    /// the corresponding rows of the full product.
    pub fn induced_subgraph(&self, nodes: &[u32]) -> Csr {
        assert_eq!(self.rows, self.cols, "induced_subgraph requires square");
        debug_assert!(nodes.windows(2).all(|w| w[0] < w[1]), "nodes must ascend");
        let mut map = vec![u32::MAX; self.cols];
        for (new, &old) in nodes.iter().enumerate() {
            map[old as usize] = new as u32;
        }
        let m = nodes.len();
        // Two-pass parallel build: count survivors per output row, prefix
        // into `indptr`, then fill each row's exact slice. Values are
        // gathered verbatim in per-row CSR order, so chunking cannot change
        // a single bit; the fill partitions both output arrays at row
        // boundaries (each element has one writer).
        let scan_work: usize = nodes
            .iter()
            .map(|&r| (self.indptr[r as usize + 1] - self.indptr[r as usize]) as usize)
            .sum();
        let count_parts = par::map_chunks(m, scan_work, |r_range| {
            let mut part = Vec::with_capacity(r_range.len());
            for &old_r in &nodes[r_range] {
                let survivors = self
                    .row_iter(old_r as usize)
                    .filter(|&(c, _)| map[c as usize] != u32::MAX)
                    .count();
                part.push(survivors as u32);
            }
            part
        });
        let counts: Vec<u32> = count_parts.into_iter().flatten().collect();
        let indptr = prefix_offsets(&counts);
        let nnz = indptr[m] as usize;
        let mut indices = vec![0u32; nnz];
        let mut values = vec![0.0f32; nnz];
        par::for_each_disjoint2(
            &mut indices,
            &mut values,
            m,
            scan_work,
            |i| indptr[i] as usize,
            |rows, idx_chunk, val_chunk| {
                let mut pos = 0usize;
                for new_r in rows {
                    for (c, v) in self.row_iter(nodes[new_r] as usize) {
                        let new_c = map[c as usize];
                        if new_c != u32::MAX {
                            idx_chunk[pos] = new_c;
                            val_chunk[pos] = v;
                            pos += 1;
                        }
                    }
                }
                debug_assert_eq!(pos, idx_chunk.len(), "count/fill mismatch");
            },
        );
        Csr {
            rows: m,
            cols: m,
            indptr,
            indices,
            values,
        }
    }

    /// Gather a subset of rows (in the given order) keeping the full column
    /// space: row `i` of the result is row `rows[i]` of `self`, values
    /// copied verbatim.
    pub fn gather_rows(&self, rows: &[u32]) -> Csr {
        let mut indptr = vec![0u32; rows.len() + 1];
        let mut nnz = 0usize;
        for (i, &r) in rows.iter().enumerate() {
            let r = r as usize;
            assert!(r < self.rows, "gather_rows out of bounds");
            nnz += (self.indptr[r + 1] - self.indptr[r]) as usize;
            indptr[i + 1] = nnz as u32;
        }
        let mut indices = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        for &r in rows {
            let (lo, hi) = (
                self.indptr[r as usize] as usize,
                self.indptr[r as usize + 1] as usize,
            );
            indices.extend_from_slice(&self.indices[lo..hi]);
            values.extend_from_slice(&self.values[lo..hi]);
        }
        Csr {
            rows: rows.len(),
            cols: self.cols,
            indptr,
            indices,
            values,
        }
    }

    /// Symmetric normalization `D^{-1/2} (A) D^{-1/2}` (GCN, Kipf & Welling).
    /// The caller is expected to have added self-loops already if desired.
    ///
    /// The output has exactly this matrix's sparsity structure, so instead
    /// of rebuilding through COO (sort + dedup) the structure is cloned and
    /// only the values are rescaled, row-parallel.
    pub fn sym_normalized(&self) -> Csr {
        assert_eq!(self.rows, self.cols, "sym_normalized requires square");
        let mut deg = vec![0.0f32; self.rows];
        for (r, d) in deg.iter_mut().enumerate() {
            for (_, v) in self.row_iter(r) {
                *d += v;
            }
        }
        let inv_sqrt: Vec<f32> = deg
            .iter()
            .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
            .collect();
        let mut values = self.values.clone();
        par::for_each_disjoint(
            &mut values,
            self.rows,
            self.nnz() * 3,
            |r| self.indptr[r] as usize,
            |rows, chunk| {
                let base = self.indptr[rows.start] as usize;
                for r in rows {
                    let lo = self.indptr[r] as usize;
                    let hi = self.indptr[r + 1] as usize;
                    for k in lo..hi {
                        let c = self.indices[k] as usize;
                        chunk[k - base] *= inv_sqrt[r] * inv_sqrt[c];
                    }
                }
            },
        );
        Csr {
            rows: self.rows,
            cols: self.cols,
            indptr: self.indptr.clone(),
            indices: self.indices.clone(),
            values,
        }
    }
}

/// Dispatch one worker chunk of spmm output rows to the ISA-tier kernel.
/// Tier selection affects panel width only, never results (deterministic
/// mode) — see [`Csr::spmm_acc`].
#[allow(clippy::too_many_arguments)]
fn spmm_rows(
    is: Isa,
    fm: bool,
    acc: bool,
    indptr: &[u32],
    indices: &[u32],
    values: &[f32],
    xs: &[f32],
    n: usize,
    rows: std::ops::Range<usize>,
    chunk: &mut [f32],
) {
    match is {
        // Scalar tier: no FMA hardware guarantee, fast-math requests fall
        // back to the deterministic chain (same policy as the GEMM driver).
        Isa::Scalar => spmm_rows_body::<8, false>(acc, indptr, indices, values, xs, n, rows, chunk),
        // SAFETY: `gemm::isa()` only returns these tiers after runtime
        // feature detection, and `fm` is only true when `fma` was detected.
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe {
            if fm {
                spmm_rows_avx2_fma(acc, indptr, indices, values, xs, n, rows, chunk)
            } else {
                spmm_rows_avx2(acc, indptr, indices, values, xs, n, rows, chunk)
            }
        },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => unsafe {
            if fm {
                spmm_rows_avx512_fma(acc, indptr, indices, values, xs, n, rows, chunk)
            } else {
                spmm_rows_avx512(acc, indptr, indices, values, xs, n, rows, chunk)
            }
        },
    }
}

/// Generic register-tiled spmm row kernel. For each output row, sweep the
/// row's non-zeros once per `NR`-wide column panel, keeping the panel's
/// partial sums in a register accumulator array. `FMA=true` fuses the
/// multiply-add (fast-math tier); `false` keeps separate mul + add
/// (bit-identical to the legacy row loop). The column tail (`n % NR`) runs
/// the same ascending-`k` chains at the leftover width.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn spmm_rows_body<const NR: usize, const FMA: bool>(
    acc_seed: bool,
    indptr: &[u32],
    indices: &[u32],
    values: &[f32],
    xs: &[f32],
    n: usize,
    rows: std::ops::Range<usize>,
    chunk: &mut [f32],
) {
    let panels = n / NR;
    for (ri, r) in rows.enumerate() {
        let lo = indptr[r] as usize;
        let hi = indptr[r + 1] as usize;
        let o_row = &mut chunk[ri * n..(ri + 1) * n];
        for t in 0..panels {
            let j0 = t * NR;
            let mut acc = [0.0f32; NR];
            if acc_seed {
                acc.copy_from_slice(&o_row[j0..j0 + NR]);
            }
            for k in lo..hi {
                let c = indices[k] as usize;
                let v = values[k];
                let xp: &[f32; NR] = xs[c * n + j0..c * n + j0 + NR]
                    .try_into()
                    .expect("panel slice");
                for (a, &xv) in acc.iter_mut().zip(xp.iter()) {
                    if FMA {
                        *a = v.mul_add(xv, *a);
                    } else {
                        // Separate mul + add, never fused: keeps the chain
                        // bit-identical to the naive kernel.
                        *a += v * xv;
                    }
                }
            }
            o_row[j0..j0 + NR].copy_from_slice(&acc);
        }
        let j0 = panels * NR;
        if j0 < n {
            let w = n - j0;
            let mut acc = [0.0f32; NR];
            if acc_seed {
                acc[..w].copy_from_slice(&o_row[j0..]);
            }
            for k in lo..hi {
                let c = indices[k] as usize;
                let v = values[k];
                let xp = &xs[c * n + j0..c * n + j0 + w];
                for (a, &xv) in acc[..w].iter_mut().zip(xp.iter()) {
                    if FMA {
                        *a = v.mul_add(xv, *a);
                    } else {
                        *a += v * xv;
                    }
                }
            }
            o_row[j0..].copy_from_slice(&acc[..w]);
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn spmm_rows_avx2(
    acc: bool,
    indptr: &[u32],
    indices: &[u32],
    values: &[f32],
    xs: &[f32],
    n: usize,
    rows: std::ops::Range<usize>,
    chunk: &mut [f32],
) {
    spmm_rows_body::<16, false>(acc, indptr, indices, values, xs, n, rows, chunk);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn spmm_rows_avx2_fma(
    acc: bool,
    indptr: &[u32],
    indices: &[u32],
    values: &[f32],
    xs: &[f32],
    n: usize,
    rows: std::ops::Range<usize>,
    chunk: &mut [f32],
) {
    spmm_rows_body::<16, true>(acc, indptr, indices, values, xs, n, rows, chunk);
}

/// AVX-512 tier: 64-wide panels (four zmm accumulator chains per panel,
/// amortizing each non-zero's index/value load over four vector FLOPs).
/// Panel width cannot change results — it only picks which elements a sweep
/// touches — so the width is shared by the deterministic and fast variants.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
unsafe fn spmm_rows_avx512(
    acc: bool,
    indptr: &[u32],
    indices: &[u32],
    values: &[f32],
    xs: &[f32],
    n: usize,
    rows: std::ops::Range<usize>,
    chunk: &mut [f32],
) {
    spmm_rows_body::<64, false>(acc, indptr, indices, values, xs, n, rows, chunk);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn spmm_rows_avx512_fma(
    acc: bool,
    indptr: &[u32],
    indices: &[u32],
    values: &[f32],
    xs: &[f32],
    n: usize,
    rows: std::ops::Range<usize>,
    chunk: &mut [f32],
) {
    spmm_rows_body::<64, true>(acc, indptr, indices, values, xs, n, rows, chunk);
}

/// Directed edge list sorted by destination node, with CSR-style offsets per
/// destination. `src[e]` is the message sender, `dst[e]` the receiver; all
/// edges with the same destination are contiguous.
#[derive(Clone, Debug)]
pub struct EdgeIndex {
    n_nodes: usize,
    src: Vec<u32>,
    dst: Vec<u32>,
    /// `dst_ptr[i]..dst_ptr[i+1]` is the edge range whose destination is `i`.
    dst_ptr: Vec<u32>,
}

impl EdgeIndex {
    /// Build from `(src, dst)` pairs. Pairs are sorted by destination.
    ///
    /// The `(dst, src)` ordering runs as a two-pass stable counting sort —
    /// O(E + n) instead of O(E · log E) — with both key histograms computed
    /// in one parallel sweep. Equal `(dst, src)` duplicates are identical
    /// pairs, so the edge arrays are elementwise equal to the old
    /// `sort_unstable_by_key` construction.
    pub fn from_pairs(n_nodes: usize, pairs: Vec<(u32, u32)>) -> Self {
        let ne = pairs.len();
        if ne == 0 {
            return EdgeIndex {
                n_nodes,
                src: Vec::new(),
                dst: Vec::new(),
                dst_ptr: vec![0u32; n_nodes + 1],
            };
        }
        let mut parts = par::map_chunks(ne, ne, |range| {
            let mut hs = vec![0u32; n_nodes];
            let mut hd = vec![0u32; n_nodes];
            for &(s, d) in &pairs[range] {
                assert!(
                    (s as usize) < n_nodes && (d as usize) < n_nodes,
                    "edge out of bounds"
                );
                hs[s as usize] += 1;
                hd[d as usize] += 1;
            }
            (hs, hd)
        })
        .into_iter();
        let (mut h_src, mut h_dst) = parts.next().expect("at least one chunk");
        for (ps, pd) in parts {
            for (t, p) in h_src.iter_mut().zip(ps) {
                *t += p;
            }
            for (t, p) in h_dst.iter_mut().zip(pd) {
                *t += p;
            }
        }
        // Pass 1: stable scatter by source.
        let mut next = prefix_offsets(&h_src);
        let mut by_src: Vec<(u32, u32)> = vec![(0, 0); ne];
        for &(s, d) in &pairs {
            let pos = next[s as usize] as usize;
            next[s as usize] += 1;
            by_src[pos] = (s, d);
        }
        // Pass 2: stable scatter by destination — equal-dst runs stay
        // src-sorted, which is the `(dst, src)` order the kernels require.
        let dst_ptr = prefix_offsets(&h_dst);
        let mut next = dst_ptr.clone();
        let mut src = vec![0u32; ne];
        let mut dst = vec![0u32; ne];
        for &(s, d) in &by_src {
            let pos = next[d as usize] as usize;
            next[d as usize] += 1;
            src[pos] = s;
            dst[pos] = d;
        }
        EdgeIndex {
            n_nodes,
            src,
            dst,
            dst_ptr,
        }
    }

    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    pub fn n_edges(&self) -> usize {
        self.src.len()
    }

    pub fn src(&self) -> &[u32] {
        &self.src
    }

    pub fn dst(&self) -> &[u32] {
        &self.dst
    }

    /// Per-destination CSR offsets: `dst_ptr()[i]..dst_ptr()[i+1]` is the
    /// edge range whose destination is `i` (length `n_nodes + 1`). Used by
    /// the parallel edge kernels to align chunk boundaries to destinations.
    pub fn dst_ptr(&self) -> &[u32] {
        &self.dst_ptr
    }

    /// Edge id range with destination `i`.
    pub fn incoming(&self, i: usize) -> std::ops::Range<usize> {
        self.dst_ptr[i] as usize..self.dst_ptr[i + 1] as usize
    }

    /// In-degree of node `i`.
    pub fn in_degree(&self, i: usize) -> usize {
        (self.dst_ptr[i + 1] - self.dst_ptr[i]) as usize
    }

    /// Extract the induced edge set at `nodes` (strictly ascending old
    /// ids), relabeled to `0..nodes.len()`. An edge survives iff both its
    /// endpoints are in `nodes`. The relabeling is monotone, so the
    /// `(dst, src)` grouping order — and therefore the per-destination
    /// accumulation order of every attention kernel — matches the
    /// corresponding destinations of the full graph exactly.
    pub fn induced_subgraph(&self, nodes: &[u32]) -> EdgeIndex {
        debug_assert!(nodes.windows(2).all(|w| w[0] < w[1]), "nodes must ascend");
        let mut map = vec![u32::MAX; self.n_nodes];
        for (new, &old) in nodes.iter().enumerate() {
            map[old as usize] = new as u32;
        }
        let m = nodes.len();
        // Direct two-pass build, no re-sort: edges are already grouped by
        // destination with ascending sources inside each group, and the
        // relabeling is monotone — walking the surviving destinations in
        // order therefore *is* the `(dst, src)` order `from_pairs` would
        // sort into. Count survivors per new destination, prefix into
        // `dst_ptr`, then fill each destination's exact edge slice (row-
        // partitioned, one writer per element, verbatim copies — bitwise
        // equal to the old build-pairs-and-re-sort path at any thread
        // count).
        let scan_work: usize = nodes.iter().map(|&d| self.in_degree(d as usize)).sum();
        let count_parts = par::map_chunks(m, scan_work, |d_range| {
            let mut part = Vec::with_capacity(d_range.len());
            for &old_d in &nodes[d_range] {
                let survivors = self
                    .incoming(old_d as usize)
                    .filter(|&eid| map[self.src[eid] as usize] != u32::MAX)
                    .count();
                part.push(survivors as u32);
            }
            part
        });
        let counts: Vec<u32> = count_parts.into_iter().flatten().collect();
        let dst_ptr = prefix_offsets(&counts);
        let ne = dst_ptr[m] as usize;
        let mut src = vec![0u32; ne];
        let mut dst = vec![0u32; ne];
        par::for_each_disjoint2(
            &mut src,
            &mut dst,
            m,
            scan_work,
            |i| dst_ptr[i] as usize,
            |dsts, src_chunk, dst_chunk| {
                let mut pos = 0usize;
                for new_d in dsts {
                    for eid in self.incoming(nodes[new_d] as usize) {
                        let new_s = map[self.src[eid] as usize];
                        if new_s != u32::MAX {
                            src_chunk[pos] = new_s;
                            dst_chunk[pos] = new_d as u32;
                            pos += 1;
                        }
                    }
                }
                debug_assert_eq!(pos, src_chunk.len(), "count/fill mismatch");
            },
        );
        EdgeIndex {
            n_nodes: m,
            src,
            dst,
            dst_ptr,
        }
    }
}

#[cfg(test)]
mod tests {
    // Exact float equality is intended in these tests: they assert
    // exact constants and bit-reproducible results, not tolerances.
    #![allow(clippy::float_cmp)]

    use super::*;

    #[test]
    fn csr_spmm_matches_dense() {
        let coo = vec![(0, 1, 2.0), (1, 0, 3.0), (1, 2, 1.0), (2, 2, 4.0)];
        let a = Csr::from_coo(3, 3, coo);
        let x = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        let y = a.spmm(&x);
        let dense = Matrix::from_rows(&[&[0.0, 2.0, 0.0], &[3.0, 0.0, 1.0], &[0.0, 0.0, 4.0]]);
        assert_eq!(y, dense.matmul(&x));
    }

    #[test]
    fn csr_duplicates_summed() {
        let a = Csr::from_coo(2, 2, vec![(0, 0, 1.0), (0, 0, 2.0), (1, 1, 5.0)]);
        assert_eq!(a.nnz(), 2);
        let x = Matrix::eye(2);
        let y = a.spmm(&x);
        assert_eq!(y.get(0, 0), 3.0);
        assert_eq!(y.get(1, 1), 5.0);
    }

    #[test]
    fn csr_empty_rows_ok() {
        let a = Csr::from_coo(4, 4, vec![(3, 0, 1.0)]);
        let x = Matrix::eye(4);
        let y = a.spmm(&x);
        assert_eq!(y.get(0, 0), 0.0);
        assert_eq!(y.get(3, 0), 1.0);
    }

    #[test]
    fn csr_transpose_roundtrip() {
        let a = Csr::from_coo(2, 3, vec![(0, 2, 1.5), (1, 0, -2.0)]);
        let att = a.transpose().transpose();
        let x = Matrix::eye(3);
        assert_eq!(a.spmm(&x), att.spmm(&x));
    }

    #[test]
    fn sym_normalized_row_scale() {
        // Path graph 0-1 with self loops: degrees 2,2 after loops.
        let coo = vec![(0, 0, 1.0), (1, 1, 1.0), (0, 1, 1.0), (1, 0, 1.0)];
        let a = Csr::from_coo(2, 2, coo).sym_normalized();
        let x = Matrix::eye(2);
        let y = a.spmm(&x);
        assert!((y.get(0, 0) - 0.5).abs() < 1e-6);
        assert!((y.get(0, 1) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn spmm_tiled_matches_naive_oracle_and_fast_math_is_close() {
        let mut rng = crate::init::seeded_rng(42);
        let (rows, cols, n) = (37, 29, 23); // tile-irregular everywhere
        let mut coo = Vec::new();
        for r in 0..rows as u32 {
            if r % 5 == 3 {
                continue; // leave some rows empty
            }
            for _ in 0..(r % 7) {
                let c = (crate::init::normal(&mut rng).abs() * 7.0) as u32 % cols as u32;
                coo.push((r, c, crate::init::normal(&mut rng)));
            }
        }
        let a = Csr::from_coo(rows, cols, coo);
        let x = crate::init::normal_matrix(cols, n, 0.0, 1.0, &mut rng);
        let tiled = a.spmm(&x);
        let oracle = crate::legacy::naive_spmm(&a, &x);
        assert_eq!(tiled.as_slice(), oracle.as_slice());
        let fast = crate::fastmath::with_fast_math(true, || a.spmm(&x));
        for (d, f) in oracle.as_slice().iter().zip(fast.as_slice()) {
            assert!((d - f).abs() <= 1e-5 * d.abs().max(1.0), "det {d} fast {f}");
        }
    }

    #[test]
    #[ignore = "manual perf probe: cargo test -p uvd-tensor --release -- --ignored probe_spmm --nocapture"]
    fn probe_spmm_gflops() {
        let nodes = 2000;
        let n = 64;
        let per_row = 8;
        let mut rng = crate::init::seeded_rng(5);
        let mut coo = Vec::new();
        for r in 0..nodes as u32 {
            for j in 0..per_row {
                coo.push((r, (r + j * 131) % nodes as u32, 1.0 / per_row as f32));
            }
        }
        let a = Csr::from_coo(nodes, nodes, coo);
        let x = crate::init::normal_matrix(nodes, n, 0.0, 1.0, &mut rng);
        for (label, fm) in [("det", false), ("fast", true)] {
            crate::fastmath::with_fast_math(fm, || {
                let mut best = f64::INFINITY;
                let mut out = vec![0.0f32; nodes * n];
                for _ in 0..20 {
                    out.fill(0.0);
                    let t = std::time::Instant::now();
                    a.spmm_acc(&x, &mut out);
                    best = best.min(t.elapsed().as_secs_f64());
                }
                let gflops = (2 * a.nnz() * n) as f64 / best / 1e9;
                println!("spmm {label}: {:.3} ms  {gflops:.2} GFLOP/s", best * 1e3);
            });
        }
    }

    #[test]
    fn induced_subgraph_gathers_values_verbatim() {
        // Path 0-1-2-3 with self loops, normalized: induced block at
        // {0,1,2} must carry the *full-graph* normalized weights, not a
        // renormalization of the 3-node path.
        let mut coo = Vec::new();
        for i in 0..4u32 {
            coo.push((i, i, 1.0));
        }
        for i in 0..3u32 {
            coo.push((i, i + 1, 1.0));
            coo.push((i + 1, i, 1.0));
        }
        let a = Csr::from_coo(4, 4, coo).sym_normalized();
        let sub = a.induced_subgraph(&[0, 1, 2]);
        assert_eq!(sub.rows(), 3);
        assert_eq!(sub.cols(), 3);
        for (new_r, &old_r) in [0u32, 1, 2].iter().enumerate() {
            let full: Vec<(u32, f32)> =
                a.row_iter(old_r as usize).filter(|&(c, _)| c < 3).collect();
            let got: Vec<(u32, f32)> = sub.row_iter(new_r).collect();
            assert_eq!(got, full, "row {old_r}");
        }
    }

    #[test]
    fn induced_subgraph_relabels_monotonically() {
        let coo = vec![(0, 5, 1.0), (5, 0, 2.0), (5, 9, 3.0), (9, 5, 4.0)];
        let a = Csr::from_coo(10, 10, coo);
        let sub = a.induced_subgraph(&[0, 5, 9]);
        assert_eq!(sub.row_iter(0).collect::<Vec<_>>(), vec![(1, 1.0)]);
        assert_eq!(
            sub.row_iter(1).collect::<Vec<_>>(),
            vec![(0, 2.0), (2, 3.0)]
        );
        assert_eq!(sub.row_iter(2).collect::<Vec<_>>(), vec![(1, 4.0)]);
    }

    #[test]
    fn gather_rows_copies_rows_in_order() {
        let a = Csr::from_coo(3, 4, vec![(0, 1, 1.0), (1, 3, 2.0), (2, 0, 3.0)]);
        let g = a.gather_rows(&[2, 0, 2]);
        assert_eq!(g.rows(), 3);
        assert_eq!(g.cols(), 4);
        assert_eq!(g.row_iter(0).collect::<Vec<_>>(), vec![(0, 3.0)]);
        assert_eq!(g.row_iter(1).collect::<Vec<_>>(), vec![(1, 1.0)]);
        assert_eq!(g.row_iter(2).collect::<Vec<_>>(), vec![(0, 3.0)]);
    }

    #[test]
    fn edge_index_induced_subgraph_keeps_dst_grouping() {
        let e = EdgeIndex::from_pairs(
            6,
            vec![(0, 2), (1, 2), (4, 2), (2, 4), (5, 4), (3, 0), (0, 3)],
        );
        let sub = e.induced_subgraph(&[0, 2, 4]);
        assert_eq!(sub.n_nodes(), 3);
        // Surviving edges: 0->2, 4->2, 2->4 relabeled to 0->1, 2->1, 1->2.
        assert_eq!(sub.n_edges(), 3);
        assert_eq!(sub.incoming(1), 0..2);
        assert_eq!(sub.src()[0], 0);
        assert_eq!(sub.src()[1], 2);
        assert_eq!(sub.incoming(2), 2..3);
        assert_eq!(sub.src()[2], 1);
    }

    #[test]
    fn edge_index_groups_by_dst() {
        let e = EdgeIndex::from_pairs(3, vec![(0, 2), (1, 2), (2, 0)]);
        assert_eq!(e.n_edges(), 3);
        assert_eq!(e.incoming(2), 1..3);
        assert_eq!(e.in_degree(1), 0);
        assert_eq!(e.in_degree(2), 2);
        for eid in e.incoming(2) {
            assert_eq!(e.dst()[eid], 2);
        }
    }
}
