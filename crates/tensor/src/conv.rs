//! im2col-based 2-D convolution and max-pooling kernels.
//!
//! Images are stored one per matrix row in `C*H*W` (channel-major) layout, so
//! a batch of `n` images of shape `(C, H, W)` is an `n × (C*H*W)` [`Matrix`].

use crate::matrix::Matrix;
use crate::par;
use std::cell::RefCell;

thread_local! {
    /// Caller-side packed kernel panels, held across a whole forward batch.
    /// A separate cell from [`COLS_SCRATCH`]: the pack stays borrowed while
    /// workers — or the inline serial path — borrow the column scratch, and
    /// gemm's own pack scratch is busy inside each per-sample call.
    static KERNEL_PACK: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    /// Per-worker im2col column scratch (capacity reused across samples).
    static COLS_SCRATCH: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Shape metadata for a 2-D convolution with a square kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConvMeta {
    pub c_in: usize,
    pub h_in: usize,
    pub w_in: usize,
    pub c_out: usize,
    /// Square kernel side.
    pub k: usize,
    pub stride: usize,
    pub pad: usize,
}

impl ConvMeta {
    pub fn h_out(&self) -> usize {
        (self.h_in + 2 * self.pad - self.k) / self.stride + 1
    }

    pub fn w_out(&self) -> usize {
        (self.w_in + 2 * self.pad - self.k) / self.stride + 1
    }

    /// Flattened input feature count per sample.
    pub fn in_len(&self) -> usize {
        self.c_in * self.h_in * self.w_in
    }

    /// Flattened output feature count per sample.
    pub fn out_len(&self) -> usize {
        self.c_out * self.h_out() * self.w_out()
    }

    /// Kernel matrix shape: `(c_out, c_in * k * k)`.
    pub fn kernel_shape(&self) -> (usize, usize) {
        (self.c_out, self.c_in * self.k * self.k)
    }
}

/// Shape metadata for 2×2 max pooling with stride 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolMeta {
    pub channels: usize,
    pub h_in: usize,
    pub w_in: usize,
}

impl PoolMeta {
    pub fn h_out(&self) -> usize {
        self.h_in / 2
    }

    pub fn w_out(&self) -> usize {
        self.w_in / 2
    }

    pub fn in_len(&self) -> usize {
        self.channels * self.h_in * self.w_in
    }

    pub fn out_len(&self) -> usize {
        self.channels * self.h_out() * self.w_out()
    }
}

/// Unfold one sample (slice of length `c_in*h_in*w_in`) into a column matrix
/// of shape `(c_in*k*k) × (h_out*w_out)`.
pub fn im2col(sample: &[f32], m: &ConvMeta) -> Matrix {
    let rows = m.c_in * m.k * m.k;
    let cols = m.h_out() * m.w_out();
    let mut buf = Vec::new();
    im2col_into(sample, m, &mut buf);
    Matrix::from_vec(rows, cols, buf)
}

/// [`im2col`] into a reusable buffer: cleared and zero-filled to
/// `(c_in*k*k) * (h_out*w_out)`, so steady-state calls reuse capacity.
pub fn im2col_into(sample: &[f32], m: &ConvMeta, buf: &mut Vec<f32>) {
    let (ho, wo) = (m.h_out(), m.w_out());
    let rows = m.c_in * m.k * m.k;
    let cols = ho * wo;
    buf.clear();
    buf.resize(rows * cols, 0.0);
    for c in 0..m.c_in {
        for ky in 0..m.k {
            for kx in 0..m.k {
                let row = (c * m.k + ky) * m.k + kx;
                let out_row = &mut buf[row * cols..(row + 1) * cols];
                for oy in 0..ho {
                    let iy = (oy * m.stride + ky) as isize - m.pad as isize;
                    if iy < 0 || iy as usize >= m.h_in {
                        continue; // padded taps stay at the zero fill
                    }
                    let src = &sample[(c * m.h_in + iy as usize) * m.w_in..];
                    for ox in 0..wo {
                        let ix = (ox * m.stride + kx) as isize - m.pad as isize;
                        if ix < 0 || ix as usize >= m.w_in {
                            continue;
                        }
                        out_row[oy * wo + ox] = src[ix as usize];
                    }
                }
            }
        }
    }
}

/// Fold a column-gradient matrix back into a sample gradient (adds into
/// `dsample`, inverse scatter of [`im2col`]).
pub fn col2im_add(dcols: &Matrix, m: &ConvMeta, dsample: &mut [f32]) {
    let (ho, wo) = (m.h_out(), m.w_out());
    for c in 0..m.c_in {
        for ky in 0..m.k {
            for kx in 0..m.k {
                let row = (c * m.k + ky) * m.k + kx;
                for oy in 0..ho {
                    let iy = (oy * m.stride + ky) as isize - m.pad as isize;
                    if iy < 0 || iy as usize >= m.h_in {
                        continue;
                    }
                    for ox in 0..wo {
                        let ix = (ox * m.stride + kx) as isize - m.pad as isize;
                        if ix < 0 || ix as usize >= m.w_in {
                            continue;
                        }
                        dsample[(c * m.h_in + iy as usize) * m.w_in + ix as usize] +=
                            dcols.get(row, oy * wo + ox);
                    }
                }
            }
        }
    }
}

/// Forward 2×2 max pool of one sample; also returns argmax flat indices into
/// the input sample (used for the backward pass).
pub fn maxpool2(sample: &[f32], m: &PoolMeta) -> (Vec<f32>, Vec<u32>) {
    let (ho, wo) = (m.h_out(), m.w_out());
    let mut out = vec![0.0f32; m.channels * ho * wo];
    let mut arg = vec![0u32; m.channels * ho * wo];
    for c in 0..m.channels {
        for oy in 0..ho {
            for ox in 0..wo {
                let mut best = f32::NEG_INFINITY;
                let mut best_i = 0u32;
                for dy in 0..2 {
                    for dx in 0..2 {
                        let iy = oy * 2 + dy;
                        let ix = ox * 2 + dx;
                        let i = (c * m.h_in + iy) * m.w_in + ix;
                        if sample[i] > best {
                            best = sample[i];
                            best_i = i as u32;
                        }
                    }
                }
                let o = (c * ho + oy) * wo + ox;
                out[o] = best;
                arg[o] = best_i;
            }
        }
    }
    (out, arg)
}

/// Estimated scalar ops for one sample's im2col + kernel matmul.
fn conv_sample_work(m: &ConvMeta) -> usize {
    let patch = m.c_in * m.k * m.k;
    let hw = m.h_out() * m.w_out();
    patch * hw * (m.c_out + 1)
}

/// Batched conv forward: `x` is `n × in_len`, returns `n × out_len`.
/// Samples are independent, so the batch is partitioned across threads with
/// one worker per contiguous sample range (each sample's output row has one
/// writer; per-sample numerics are the serial kernel's).
pub fn conv2d_batch(x: &Matrix, kernel: &Matrix, m: &ConvMeta) -> Matrix {
    let mut v = Matrix::zeros(x.rows(), m.out_len());
    conv2d_batch_to(x, kernel, m, v.as_mut_slice());
    v
}

/// Batched conv forward into a caller-owned buffer (fully overwritten).
/// Per-sample im2col/matmul scratch still allocates internally — conv layers
/// are outside the zero-allocation replay guarantee (see DESIGN.md §7).
pub fn conv2d_batch_to(x: &Matrix, kernel: &Matrix, m: &ConvMeta, out: &mut [f32]) {
    let n = x.rows();
    let out_len = m.out_len();
    assert_eq!(out.len(), n * out_len, "conv2d output buffer size");
    let (co, klen) = m.kernel_shape();
    assert_eq!(kernel.shape(), (co, klen), "conv2d kernel shape");
    let hw = m.h_out() * m.w_out();
    let work = n * conv_sample_work(m);
    // The kernel is the LHS of every per-sample product: pack it into
    // microkernel panels once for the whole batch; per sample only the
    // columns are unfolded (into reused scratch) and packed.
    KERNEL_PACK.with(|cell| {
        let mut pack = cell.borrow_mut();
        crate::gemm::pack_a_into(kernel.as_slice(), co, klen, false, &mut pack);
        let pack: &[f32] = &pack;
        par::for_each_row_block(out, out_len, work, |samples, chunk| {
            COLS_SCRATCH.with(|cc| {
                let mut cols = cc.borrow_mut();
                for (si, i) in samples.enumerate() {
                    im2col_into(x.row(i), m, &mut cols);
                    crate::gemm::matmul_prepacked_a(
                        pack,
                        &cols,
                        false,
                        &mut chunk[si * out_len..(si + 1) * out_len],
                        co,
                        klen,
                        hw,
                        false,
                    );
                }
            });
        });
    });
}

/// Batched conv backward: given upstream `dy` (`n × out_len`), returns
/// `(dx, dk)`. `dx` rows are per-sample (one writer each); `dk` is a
/// reduction over samples, computed as per-chunk partials summed in
/// ascending chunk order — deterministic for a fixed thread configuration.
pub fn conv2d_backward_batch(
    x: &Matrix,
    kernel: &Matrix,
    dy: &Matrix,
    m: &ConvMeta,
) -> (Matrix, Matrix) {
    let n = x.rows();
    let (co, klen) = m.kernel_shape();
    let (ho, wo) = (m.h_out(), m.w_out());
    let in_len = m.in_len();
    let work = n * conv_sample_work(m) * 2;

    let mut dx = Matrix::zeros(n, in_len);
    par::for_each_row_block(dx.as_mut_slice(), in_len, work, |samples, chunk| {
        for (si, i) in samples.enumerate() {
            let dout = Matrix::from_vec(co, ho * wo, dy.row(i).to_vec());
            let dcols = kernel.matmul_tn(&dout);
            col2im_add(&dcols, m, &mut chunk[si * in_len..(si + 1) * in_len]);
        }
    });

    let partials = par::map_chunks(n, work, |samples| {
        let mut dk = Matrix::zeros(co, klen);
        for i in samples {
            let cols = im2col(x.row(i), m);
            let dout = Matrix::from_vec(co, ho * wo, dy.row(i).to_vec());
            dk.add_assign(&dout.matmul_nt(&cols));
        }
        dk
    });
    let mut dk = Matrix::zeros(co, klen);
    for p in partials {
        dk.add_assign(&p);
    }
    (dx, dk)
}

/// Batched 2×2 max pool forward (`n × in_len` → `n × out_len`), batch
/// partitioned across threads.
pub fn maxpool2_batch(x: &Matrix, m: &PoolMeta) -> Matrix {
    let mut v = Matrix::zeros(x.rows(), m.out_len());
    maxpool2_batch_to(x, m, v.as_mut_slice());
    v
}

/// Batched max pool forward into a caller-owned buffer (fully overwritten).
pub fn maxpool2_batch_to(x: &Matrix, m: &PoolMeta, out: &mut [f32]) {
    let n = x.rows();
    let out_len = m.out_len();
    assert_eq!(out.len(), n * out_len, "maxpool2 output buffer size");
    let work = n * m.in_len();
    par::for_each_row_block(out, out_len, work, |samples, chunk| {
        for (si, i) in samples.enumerate() {
            let (pooled, _) = maxpool2(x.row(i), m);
            chunk[si * out_len..(si + 1) * out_len].copy_from_slice(&pooled);
        }
    });
}

/// Batched 2×2 max pool backward: routes `dy` to each sample's argmax
/// positions (recomputed per sample), batch partitioned across threads.
pub fn maxpool2_backward_batch(x: &Matrix, dy: &Matrix, m: &PoolMeta) -> Matrix {
    let n = x.rows();
    let in_len = m.in_len();
    let mut dx = Matrix::zeros(n, in_len);
    let work = n * m.in_len() * 2;
    par::for_each_row_block(dx.as_mut_slice(), in_len, work, |samples, chunk| {
        for (si, i) in samples.enumerate() {
            let (_, arg) = maxpool2(x.row(i), m);
            let dxr = &mut chunk[si * in_len..(si + 1) * in_len];
            for (o, &src) in arg.iter().enumerate() {
                dxr[src as usize] += dy.row(i)[o];
            }
        }
    });
    dx
}

#[cfg(test)]
mod tests {
    // Exact float equality is intended in these tests: they assert
    // exact constants and bit-reproducible results, not tolerances.
    #![allow(clippy::float_cmp)]

    use super::*;

    #[test]
    fn conv_output_dims() {
        let m = ConvMeta {
            c_in: 3,
            h_in: 32,
            w_in: 32,
            c_out: 8,
            k: 3,
            stride: 1,
            pad: 1,
        };
        assert_eq!(m.h_out(), 32);
        assert_eq!(m.w_out(), 32);
        assert_eq!(m.kernel_shape(), (8, 27));
    }

    #[test]
    fn im2col_identity_kernel_1x1() {
        let m = ConvMeta {
            c_in: 1,
            h_in: 2,
            w_in: 2,
            c_out: 1,
            k: 1,
            stride: 1,
            pad: 0,
        };
        let sample = [1.0, 2.0, 3.0, 4.0];
        let cols = im2col(&sample, &m);
        assert_eq!(cols.shape(), (1, 4));
        assert_eq!(cols.as_slice(), &sample);
    }

    #[test]
    fn im2col_padding_zeroes_border() {
        let m = ConvMeta {
            c_in: 1,
            h_in: 1,
            w_in: 1,
            c_out: 1,
            k: 3,
            stride: 1,
            pad: 1,
        };
        let cols = im2col(&[7.0], &m);
        assert_eq!(cols.shape(), (9, 1));
        // Only the center tap sees the pixel.
        let center = 4;
        for r in 0..9 {
            let expect = if r == center { 7.0 } else { 0.0 };
            assert_eq!(cols.get(r, 0), expect);
        }
    }

    #[test]
    fn col2im_inverts_scatter() {
        let m = ConvMeta {
            c_in: 1,
            h_in: 3,
            w_in: 3,
            c_out: 1,
            k: 2,
            stride: 1,
            pad: 0,
        };
        let sample: Vec<f32> = (0..9).map(|i| i as f32).collect();
        let cols = im2col(&sample, &m);
        // Scatter all-ones gradient back; each pixel gradient equals the
        // number of patches that cover it.
        let dcols = Matrix::filled(cols.rows(), cols.cols(), 1.0);
        let mut d = vec![0.0f32; 9];
        col2im_add(&dcols, &m, &mut d);
        // Corner covered once, edges twice, center four times.
        assert_eq!(d, vec![1.0, 2.0, 1.0, 2.0, 4.0, 2.0, 1.0, 2.0, 1.0]);
    }

    #[test]
    fn maxpool_picks_max_and_argmax() {
        let m = PoolMeta {
            channels: 1,
            h_in: 2,
            w_in: 2,
        };
        let (out, arg) = maxpool2(&[1.0, 5.0, 3.0, 2.0], &m);
        assert_eq!(out, vec![5.0]);
        assert_eq!(arg, vec![1]);
    }

    #[test]
    fn batch_helpers_match_per_sample_loops() {
        // Large enough that `n * conv_sample_work` clears MIN_PAR_WORK, so
        // the with_threads(3) run actually exercises the partitioned path.
        let m = ConvMeta {
            c_in: 2,
            h_in: 16,
            w_in: 16,
            c_out: 3,
            k: 3,
            stride: 1,
            pad: 1,
        };
        let n = 8;
        let x = Matrix::from_vec(
            n,
            m.in_len(),
            (0..n * m.in_len())
                .map(|i| ((i * 37 % 19) as f32 - 9.0) * 0.1)
                .collect(),
        );
        let kernel = Matrix::from_vec(
            m.c_out,
            m.kernel_shape().1,
            (0..m.c_out * m.kernel_shape().1)
                .map(|i| ((i * 13 % 11) as f32 - 5.0) * 0.2)
                .collect(),
        );
        let reference = {
            let mut v = Matrix::zeros(n, m.out_len());
            for i in 0..n {
                let cols = im2col(x.row(i), &m);
                v.row_mut(i)
                    .copy_from_slice(kernel.matmul(&cols).as_slice());
            }
            v
        };
        let serial = crate::par::serial_scope(|| conv2d_batch(&x, &kernel, &m));
        let parallel = crate::par::with_threads(3, || conv2d_batch(&x, &kernel, &m));
        assert_eq!(serial, reference);
        assert_eq!(parallel, reference, "batch partition must not change bits");

        let pm = PoolMeta {
            channels: 2,
            h_in: 16,
            w_in: 16,
        };
        let ps = crate::par::serial_scope(|| maxpool2_batch(&x, &pm));
        let pp = crate::par::with_threads(3, || maxpool2_batch(&x, &pm));
        assert_eq!(ps, pp);
    }
}
