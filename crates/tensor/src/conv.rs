//! im2col-based 2-D convolution and max-pooling kernels.
//!
//! Images are stored one per matrix row in `C*H*W` (channel-major) layout, so
//! a batch of `n` images of shape `(C, H, W)` is an `n × (C*H*W)` [`Matrix`].

use crate::matrix::Matrix;
use crate::par;
use std::cell::RefCell;

thread_local! {
    /// Caller-side packed kernel panels, held across a whole forward batch.
    /// A separate cell from [`COLS_SCRATCH`]: the pack stays borrowed while
    /// workers — or the inline serial path — borrow the column scratch, and
    /// gemm's own pack scratch is busy inside each per-sample call.
    static KERNEL_PACK: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    /// Per-worker im2col column scratch (capacity reused across samples).
    static COLS_SCRATCH: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Shape metadata for a 2-D convolution with a square kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConvMeta {
    pub c_in: usize,
    pub h_in: usize,
    pub w_in: usize,
    pub c_out: usize,
    /// Square kernel side.
    pub k: usize,
    pub stride: usize,
    pub pad: usize,
}

impl ConvMeta {
    pub fn h_out(&self) -> usize {
        (self.h_in + 2 * self.pad - self.k) / self.stride + 1
    }

    pub fn w_out(&self) -> usize {
        (self.w_in + 2 * self.pad - self.k) / self.stride + 1
    }

    /// Flattened input feature count per sample.
    pub fn in_len(&self) -> usize {
        self.c_in * self.h_in * self.w_in
    }

    /// Flattened output feature count per sample.
    pub fn out_len(&self) -> usize {
        self.c_out * self.h_out() * self.w_out()
    }

    /// Kernel matrix shape: `(c_out, c_in * k * k)`.
    pub fn kernel_shape(&self) -> (usize, usize) {
        (self.c_out, self.c_in * self.k * self.k)
    }
}

/// Shape metadata for 2×2 max pooling with stride 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolMeta {
    pub channels: usize,
    pub h_in: usize,
    pub w_in: usize,
}

impl PoolMeta {
    pub fn h_out(&self) -> usize {
        self.h_in / 2
    }

    pub fn w_out(&self) -> usize {
        self.w_in / 2
    }

    pub fn in_len(&self) -> usize {
        self.channels * self.h_in * self.w_in
    }

    pub fn out_len(&self) -> usize {
        self.channels * self.h_out() * self.w_out()
    }
}

/// Unfold one sample (slice of length `c_in*h_in*w_in`) into a column matrix
/// of shape `(c_in*k*k) × (h_out*w_out)`.
pub fn im2col(sample: &[f32], m: &ConvMeta) -> Matrix {
    let rows = m.c_in * m.k * m.k;
    let cols = m.h_out() * m.w_out();
    let mut buf = Vec::new();
    im2col_into(sample, m, &mut buf);
    Matrix::from_vec(rows, cols, buf)
}

/// [`im2col`] into a reusable buffer sized `(c_in*k*k) * (h_out*w_out)`, so
/// steady-state calls reuse capacity. Stride-1 convolutions (the CMSF CNN)
/// take a run-copy fast path: within one unfolded row each output scanline
/// is a contiguous window of the input scanline, so the body is
/// `copy_from_slice` plus explicit zero runs for the padded borders instead
/// of a bounds-checked per-pixel scatter — and the buffer needs no blanket
/// zero fill because every element is written.
pub fn im2col_into(sample: &[f32], m: &ConvMeta, buf: &mut Vec<f32>) {
    let (ho, wo) = (m.h_out(), m.w_out());
    let rows = m.c_in * m.k * m.k;
    let cols = ho * wo;
    if m.stride == 1 {
        if buf.len() != rows * cols {
            buf.clear();
            buf.resize(rows * cols, 0.0);
        }
        im2col_stride1(sample, m, ho, wo, cols, buf);
        return;
    }
    buf.clear();
    buf.resize(rows * cols, 0.0);
    for c in 0..m.c_in {
        for ky in 0..m.k {
            for kx in 0..m.k {
                let row = (c * m.k + ky) * m.k + kx;
                let out_row = &mut buf[row * cols..(row + 1) * cols];
                for oy in 0..ho {
                    let iy = (oy * m.stride + ky) as isize - m.pad as isize;
                    if iy < 0 || iy as usize >= m.h_in {
                        continue; // padded taps stay at the zero fill
                    }
                    let src = &sample[(c * m.h_in + iy as usize) * m.w_in..];
                    for ox in 0..wo {
                        let ix = (ox * m.stride + kx) as isize - m.pad as isize;
                        if ix < 0 || ix as usize >= m.w_in {
                            continue;
                        }
                        out_row[oy * wo + ox] = src[ix as usize];
                    }
                }
            }
        }
    }
}

/// Stride-1 unfold body: per `(c, ky, kx)` row the valid `ox` window is the
/// fixed interval `[max(pad-kx, 0), min(w_in+pad-kx, wo))`, so each output
/// scanline is zero-run · contiguous-copy · zero-run. Writes every element.
fn im2col_stride1(
    sample: &[f32],
    m: &ConvMeta,
    ho: usize,
    wo: usize,
    cols: usize,
    buf: &mut [f32],
) {
    let pad = m.pad as isize;
    for c in 0..m.c_in {
        for ky in 0..m.k {
            for kx in 0..m.k {
                let row = (c * m.k + ky) * m.k + kx;
                let out_row = &mut buf[row * cols..(row + 1) * cols];
                let ox_lo = (pad - kx as isize).max(0) as usize;
                let ox_hi = ((m.w_in as isize + pad - kx as isize).min(wo as isize))
                    .max(ox_lo as isize) as usize;
                for oy in 0..ho {
                    let iy = oy as isize + ky as isize - pad;
                    let dst = &mut out_row[oy * wo..(oy + 1) * wo];
                    if iy < 0 || iy as usize >= m.h_in {
                        dst.fill(0.0);
                        continue;
                    }
                    let src_base = (c * m.h_in + iy as usize) * m.w_in;
                    let ix0 = (ox_lo as isize + kx as isize - pad) as usize;
                    dst[..ox_lo].fill(0.0);
                    dst[ox_lo..ox_hi]
                        .copy_from_slice(&sample[src_base + ix0..src_base + ix0 + (ox_hi - ox_lo)]);
                    dst[ox_hi..].fill(0.0);
                }
            }
        }
    }
}

/// Fold a column-gradient matrix back into a sample gradient (adds into
/// `dsample`, inverse scatter of [`im2col`]).
pub fn col2im_add(dcols: &Matrix, m: &ConvMeta, dsample: &mut [f32]) {
    col2im_add_cols(dcols.as_slice(), m, dsample);
}

/// [`col2im_add`] from a raw column-gradient slice (`(c_in*k*k) ×
/// (h_out*w_out)` row-major): the backward path folds straight out of its
/// reusable GEMM scratch without wrapping a `Matrix`.
pub fn col2im_add_cols(dcols: &[f32], m: &ConvMeta, dsample: &mut [f32]) {
    let (ho, wo) = (m.h_out(), m.w_out());
    let cols = ho * wo;
    for c in 0..m.c_in {
        for ky in 0..m.k {
            for kx in 0..m.k {
                let row = (c * m.k + ky) * m.k + kx;
                let drow = &dcols[row * cols..(row + 1) * cols];
                for oy in 0..ho {
                    let iy = (oy * m.stride + ky) as isize - m.pad as isize;
                    if iy < 0 || iy as usize >= m.h_in {
                        continue;
                    }
                    for ox in 0..wo {
                        let ix = (ox * m.stride + kx) as isize - m.pad as isize;
                        if ix < 0 || ix as usize >= m.w_in {
                            continue;
                        }
                        dsample[(c * m.h_in + iy as usize) * m.w_in + ix as usize] +=
                            drow[oy * wo + ox];
                    }
                }
            }
        }
    }
}

/// Forward 2×2 max pool of one sample; also returns argmax flat indices into
/// the input sample (used for the backward pass).
pub fn maxpool2(sample: &[f32], m: &PoolMeta) -> (Vec<f32>, Vec<u32>) {
    let (ho, wo) = (m.h_out(), m.w_out());
    let mut out = vec![0.0f32; m.channels * ho * wo];
    let mut arg = vec![0u32; m.channels * ho * wo];
    for c in 0..m.channels {
        for oy in 0..ho {
            for ox in 0..wo {
                let mut best = f32::NEG_INFINITY;
                let mut best_i = 0u32;
                for dy in 0..2 {
                    for dx in 0..2 {
                        let iy = oy * 2 + dy;
                        let ix = ox * 2 + dx;
                        let i = (c * m.h_in + iy) * m.w_in + ix;
                        if sample[i] > best {
                            best = sample[i];
                            best_i = i as u32;
                        }
                    }
                }
                let o = (c * ho + oy) * wo + ox;
                out[o] = best;
                arg[o] = best_i;
            }
        }
    }
    (out, arg)
}

/// Estimated scalar ops for one sample's im2col + kernel matmul.
fn conv_sample_work(m: &ConvMeta) -> usize {
    let patch = m.c_in * m.k * m.k;
    let hw = m.h_out() * m.w_out();
    patch * hw * (m.c_out + 1)
}

/// Batched conv forward: `x` is `n × in_len`, returns `n × out_len`.
/// Samples are independent, so the batch is partitioned across threads with
/// one worker per contiguous sample range (each sample's output row has one
/// writer; per-sample numerics are the serial kernel's).
pub fn conv2d_batch(x: &Matrix, kernel: &Matrix, m: &ConvMeta) -> Matrix {
    let mut v = Matrix::zeros(x.rows(), m.out_len());
    conv2d_batch_to(x, kernel, m, v.as_mut_slice());
    v
}

/// Batched conv forward into a caller-owned buffer (fully overwritten).
/// Packs the kernel into microkernel panels once for the batch (thread-local
/// scratch); the plan replay path caches that pack in the `Workspace`
/// instead and calls [`conv2d_batch_prepacked_to`] directly.
pub fn conv2d_batch_to(x: &Matrix, kernel: &Matrix, m: &ConvMeta, out: &mut [f32]) {
    let (co, klen) = m.kernel_shape();
    assert_eq!(kernel.shape(), (co, klen), "conv2d kernel shape");
    KERNEL_PACK.with(|cell| {
        let mut pack = cell.borrow_mut();
        crate::gemm::pack_a_into(kernel.as_slice(), co, klen, false, &mut pack);
        conv2d_batch_prepacked_to(x, &pack, m, out);
    });
}

/// Batched conv forward with a caller-cached kernel pack (LHS panels from
/// [`crate::gemm::pack_a_into`] over the `(c_out, c_in*k*k)` kernel). The
/// kernel is the LHS of every per-sample product, so one pack serves the
/// whole batch; per sample only the columns are unfolded (into per-worker
/// reused scratch) and packed. Runs allocation-free in steady state.
pub(crate) fn conv2d_batch_prepacked_to(
    x: &Matrix,
    kernel_pack: &[f32],
    m: &ConvMeta,
    out: &mut [f32],
) {
    let n = x.rows();
    let out_len = m.out_len();
    assert_eq!(out.len(), n * out_len, "conv2d output buffer size");
    let (co, klen) = m.kernel_shape();
    let hw = m.h_out() * m.w_out();
    let work = n * conv_sample_work(m);
    par::for_each_row_block(out, out_len, work, |samples, chunk| {
        COLS_SCRATCH.with(|cc| {
            let mut cols = cc.borrow_mut();
            for (si, i) in samples.enumerate() {
                im2col_into(x.row(i), m, &mut cols);
                crate::gemm::matmul_prepacked_a(
                    kernel_pack,
                    &cols,
                    false,
                    &mut chunk[si * out_len..(si + 1) * out_len],
                    co,
                    klen,
                    hw,
                    false,
                );
            }
        });
    });
}

/// Batched conv backward: given upstream `dy` (`n × out_len`), returns
/// `(dx, dk)`. Allocates the two outputs, then delegates to the `_to`
/// kernels the plan replay uses — one implementation, one set of chains.
pub fn conv2d_backward_batch(
    x: &Matrix,
    kernel: &Matrix,
    dy: &Matrix,
    m: &ConvMeta,
) -> (Matrix, Matrix) {
    let (co, klen) = m.kernel_shape();
    let mut dx = Matrix::zeros(x.rows(), m.in_len());
    let mut dk = Matrix::zeros(co, klen);
    conv2d_backward_dx_to(kernel, dy, m, dx.as_mut_slice());
    conv2d_backward_dk_to(x, dy, m, dk.as_mut_slice());
    (dx, dk)
}

/// Input-gradient half of the conv backward: adds `col2im(kernelᵀ · dy_i)`
/// into each sample row of `dx` (caller zeroes on first contribution).
/// The transposed kernel is packed once per batch; each sample's
/// `dcols = kernelᵀ · dy_i` runs through the packed GEMM driver into
/// per-worker reused scratch — no per-sample allocation. Sample rows have
/// one writer each, so the partition is bit-stable at any thread count.
pub fn conv2d_backward_dx_to(kernel: &Matrix, dy: &Matrix, m: &ConvMeta, dx: &mut [f32]) {
    let n = dy.rows();
    let (co, klen) = m.kernel_shape();
    assert_eq!(kernel.shape(), (co, klen), "conv2d kernel shape");
    let hw = m.h_out() * m.w_out();
    let in_len = m.in_len();
    assert_eq!(dx.len(), n * in_len, "conv2d dx buffer size");
    let work = n * conv_sample_work(m);
    KERNEL_PACK.with(|cell| {
        let mut pack = cell.borrow_mut();
        // Pack the kernel transposed: `dcols = kernelᵀ (klen×co) · dy_i`.
        crate::gemm::pack_a_into(kernel.as_slice(), klen, co, true, &mut pack);
        let pack: &[f32] = &pack;
        par::for_each_row_block(dx, in_len, work, |samples, chunk| {
            COLS_SCRATCH.with(|cc| {
                let mut dcols = cc.borrow_mut();
                if dcols.len() != klen * hw {
                    dcols.clear();
                    dcols.resize(klen * hw, 0.0);
                }
                for (si, i) in samples.enumerate() {
                    crate::gemm::matmul_prepacked_a(
                        pack,
                        dy.row(i),
                        false,
                        &mut dcols,
                        klen,
                        co,
                        hw,
                        false,
                    );
                    col2im_add_cols(&dcols, m, &mut chunk[si * in_len..(si + 1) * in_len]);
                }
            });
        });
    });
}

/// Kernel-gradient half of the conv backward: adds `Σ_i dy_i · cols_iᵀ`
/// into `dk` (caller zeroes on first contribution). Serial dispatch extends
/// `dk`'s accumulator chains sample by sample through the packed GEMM driver
/// — allocation-free. Parallel dispatch reduces per-chunk partials in
/// ascending chunk order (deterministic for a fixed thread configuration,
/// matching the pre-GEMM behaviour; the partial matrices are the one conv
/// path that still allocates, and only off the serial replay path).
pub fn conv2d_backward_dk_to(x: &Matrix, dy: &Matrix, m: &ConvMeta, dk: &mut [f32]) {
    let n = x.rows();
    let (co, klen) = m.kernel_shape();
    assert_eq!(dk.len(), co * klen, "conv2d dk buffer size");
    let hw = m.h_out() * m.w_out();
    let work = n * conv_sample_work(m) * 2;
    let accumulate_into = |samples: std::ops::Range<usize>, dk: &mut [f32]| {
        COLS_SCRATCH.with(|cc| {
            let mut cols = cc.borrow_mut();
            for i in samples {
                im2col_into(x.row(i), m, &mut cols);
                // dk (co×klen) += dy_i (co×hw) · cols_iᵀ (hw×klen)
                crate::gemm::matmul_into(dy.row(i), &cols, dk, co, hw, klen, false, true, true);
            }
        });
    };
    // Mirror `par::planned_chunks` without charging its dispatch telemetry
    // twice: the serial decision must match the one `map_chunks` would make.
    let serial = work < par::MIN_PAR_WORK || par::effective_threads().min(n) <= 1;
    if serial {
        accumulate_into(0..n, dk);
        return;
    }
    let partials = par::map_chunks(n, work, |samples| {
        let mut part = vec![0.0f32; co * klen];
        accumulate_into(samples, &mut part);
        part
    });
    for p in partials {
        for (g, &v) in dk.iter_mut().zip(p.iter()) {
            *g += v;
        }
    }
}

/// Batched 2×2 max pool forward (`n × in_len` → `n × out_len`), batch
/// partitioned across threads.
pub fn maxpool2_batch(x: &Matrix, m: &PoolMeta) -> Matrix {
    let mut v = Matrix::zeros(x.rows(), m.out_len());
    maxpool2_batch_to(x, m, v.as_mut_slice());
    v
}

/// Batched max pool forward into a caller-owned buffer (fully overwritten).
pub fn maxpool2_batch_to(x: &Matrix, m: &PoolMeta, out: &mut [f32]) {
    let n = x.rows();
    let out_len = m.out_len();
    assert_eq!(out.len(), n * out_len, "maxpool2 output buffer size");
    let work = n * m.in_len();
    par::for_each_row_block(out, out_len, work, |samples, chunk| {
        for (si, i) in samples.enumerate() {
            let (pooled, _) = maxpool2(x.row(i), m);
            chunk[si * out_len..(si + 1) * out_len].copy_from_slice(&pooled);
        }
    });
}

/// Batched 2×2 max pool backward: routes `dy` to each sample's argmax
/// positions (recomputed per sample), batch partitioned across threads.
pub fn maxpool2_backward_batch(x: &Matrix, dy: &Matrix, m: &PoolMeta) -> Matrix {
    let n = x.rows();
    let in_len = m.in_len();
    let mut dx = Matrix::zeros(n, in_len);
    let work = n * m.in_len() * 2;
    par::for_each_row_block(dx.as_mut_slice(), in_len, work, |samples, chunk| {
        for (si, i) in samples.enumerate() {
            let (_, arg) = maxpool2(x.row(i), m);
            let dxr = &mut chunk[si * in_len..(si + 1) * in_len];
            for (o, &src) in arg.iter().enumerate() {
                dxr[src as usize] += dy.row(i)[o];
            }
        }
    });
    dx
}

#[cfg(test)]
mod tests {
    // Exact float equality is intended in these tests: they assert
    // exact constants and bit-reproducible results, not tolerances.
    #![allow(clippy::float_cmp)]

    use super::*;

    #[test]
    fn conv_output_dims() {
        let m = ConvMeta {
            c_in: 3,
            h_in: 32,
            w_in: 32,
            c_out: 8,
            k: 3,
            stride: 1,
            pad: 1,
        };
        assert_eq!(m.h_out(), 32);
        assert_eq!(m.w_out(), 32);
        assert_eq!(m.kernel_shape(), (8, 27));
    }

    #[test]
    fn im2col_identity_kernel_1x1() {
        let m = ConvMeta {
            c_in: 1,
            h_in: 2,
            w_in: 2,
            c_out: 1,
            k: 1,
            stride: 1,
            pad: 0,
        };
        let sample = [1.0, 2.0, 3.0, 4.0];
        let cols = im2col(&sample, &m);
        assert_eq!(cols.shape(), (1, 4));
        assert_eq!(cols.as_slice(), &sample);
    }

    #[test]
    fn im2col_padding_zeroes_border() {
        let m = ConvMeta {
            c_in: 1,
            h_in: 1,
            w_in: 1,
            c_out: 1,
            k: 3,
            stride: 1,
            pad: 1,
        };
        let cols = im2col(&[7.0], &m);
        assert_eq!(cols.shape(), (9, 1));
        // Only the center tap sees the pixel.
        let center = 4;
        for r in 0..9 {
            let expect = if r == center { 7.0 } else { 0.0 };
            assert_eq!(cols.get(r, 0), expect);
        }
    }

    #[test]
    fn col2im_inverts_scatter() {
        let m = ConvMeta {
            c_in: 1,
            h_in: 3,
            w_in: 3,
            c_out: 1,
            k: 2,
            stride: 1,
            pad: 0,
        };
        let sample: Vec<f32> = (0..9).map(|i| i as f32).collect();
        let cols = im2col(&sample, &m);
        // Scatter all-ones gradient back; each pixel gradient equals the
        // number of patches that cover it.
        let dcols = Matrix::filled(cols.rows(), cols.cols(), 1.0);
        let mut d = vec![0.0f32; 9];
        col2im_add(&dcols, &m, &mut d);
        // Corner covered once, edges twice, center four times.
        assert_eq!(d, vec![1.0, 2.0, 1.0, 2.0, 4.0, 2.0, 1.0, 2.0, 1.0]);
    }

    #[test]
    fn maxpool_picks_max_and_argmax() {
        let m = PoolMeta {
            channels: 1,
            h_in: 2,
            w_in: 2,
        };
        let (out, arg) = maxpool2(&[1.0, 5.0, 3.0, 2.0], &m);
        assert_eq!(out, vec![5.0]);
        assert_eq!(arg, vec![1]);
    }

    #[test]
    #[ignore = "manual perf probe: cargo test -p uvd-tensor --release -- --ignored probe_conv --nocapture"]
    fn probe_conv_breakdown() {
        let m = ConvMeta {
            c_in: 2,
            h_in: 32,
            w_in: 32,
            c_out: 8,
            k: 3,
            stride: 1,
            pad: 1,
        };
        let n = 16;
        let mut rng = crate::init::seeded_rng(3);
        let x = crate::init::normal_matrix(n, m.in_len(), 0.0, 1.0, &mut rng);
        let kernel = {
            let (co, klen) = m.kernel_shape();
            crate::init::normal_matrix(co, klen, 0.0, 0.3, &mut rng)
        };
        let (co, klen) = m.kernel_shape();
        let hw = m.h_out() * m.w_out();
        let mut out = vec![0.0f32; n * m.out_len()];
        let time = |reps: usize, f: &mut dyn FnMut()| -> f64 {
            let mut best = f64::INFINITY;
            for _ in 0..reps {
                let t = std::time::Instant::now();
                f();
                best = best.min(t.elapsed().as_secs_f64());
            }
            best * 1e3
        };
        let full = time(30, &mut || conv2d_batch_to(&x, &kernel, &m, &mut out));
        let mut cols = Vec::new();
        let im2col_t = time(30, &mut || {
            for i in 0..n {
                im2col_into(x.row(i), &m, &mut cols);
            }
        });
        im2col_into(x.row(0), &m, &mut cols);
        let mut pack = Vec::new();
        let pack_b_t = time(30, &mut || {
            for _ in 0..n {
                crate::gemm::pack_b_into(&cols, klen, hw, false, &mut pack);
            }
        });
        let mut apack = Vec::new();
        crate::gemm::pack_a_into(kernel.as_slice(), co, klen, false, &mut apack);
        let gemm_t = time(30, &mut || {
            for i in 0..n {
                crate::gemm::matmul_prepacked_a(
                    &apack,
                    &cols,
                    false,
                    &mut out[i * m.out_len()..(i + 1) * m.out_len()],
                    co,
                    klen,
                    hw,
                    false,
                );
            }
        });
        let gf = (2 * n * co * klen * hw) as f64 / (full / 1e3) / 1e9;
        println!(
            "conv full {full:.3} ms ({gf:.2} GF/s) | im2col {im2col_t:.3} pack_b {pack_b_t:.3} gemm(incl pack_b) {gemm_t:.3}"
        );
    }

    #[test]
    fn batch_helpers_match_per_sample_loops() {
        // Large enough that `n * conv_sample_work` clears MIN_PAR_WORK, so
        // the with_threads(3) run actually exercises the partitioned path.
        let m = ConvMeta {
            c_in: 2,
            h_in: 16,
            w_in: 16,
            c_out: 3,
            k: 3,
            stride: 1,
            pad: 1,
        };
        let n = 8;
        let x = Matrix::from_vec(
            n,
            m.in_len(),
            (0..n * m.in_len())
                .map(|i| ((i * 37 % 19) as f32 - 9.0) * 0.1)
                .collect(),
        );
        let kernel = Matrix::from_vec(
            m.c_out,
            m.kernel_shape().1,
            (0..m.c_out * m.kernel_shape().1)
                .map(|i| ((i * 13 % 11) as f32 - 5.0) * 0.2)
                .collect(),
        );
        let reference = {
            let mut v = Matrix::zeros(n, m.out_len());
            for i in 0..n {
                let cols = im2col(x.row(i), &m);
                v.row_mut(i)
                    .copy_from_slice(kernel.matmul(&cols).as_slice());
            }
            v
        };
        let serial = crate::par::serial_scope(|| conv2d_batch(&x, &kernel, &m));
        let parallel = crate::par::with_threads(3, || conv2d_batch(&x, &kernel, &m));
        assert_eq!(serial, reference);
        assert_eq!(parallel, reference, "batch partition must not change bits");

        let pm = PoolMeta {
            channels: 2,
            h_in: 16,
            w_in: 16,
        };
        let ps = crate::par::serial_scope(|| maxpool2_batch(&x, &pm));
        let pp = crate::par::with_threads(3, || maxpool2_batch(&x, &pm));
        assert_eq!(ps, pp);
    }
}
