//! Frozen pre-refactor define-by-run tape, kept as a differential baseline.
//!
//! This module is a vendored copy of the tape engine as it existed *before*
//! the Plan/Workspace split (DESIGN.md §7): every op allocates a fresh
//! [`Matrix`] for its value, and the backward pass allocates (and `clone()`s)
//! a gradient matrix per contribution. It is deliberately left untouched so
//! the repo carries an executable definition of the old behaviour, used for:
//!
//! * **differential testing** — [`rebuild`] re-executes a recorded
//!   [`Plan`] op-for-op through this engine; losses, forward values and
//!   parameter gradients must match the replayed plan bit-for-bit;
//! * **benchmarking** — `perfsnap`'s per-epoch-rebuild baseline trains
//!   through this engine, so the replayed-plan speedup in
//!   `BENCH_tensor.json` is measured against the real pre-refactor cost.
//!
//! Do not use this engine in new code; it exists to be measured against.

use crate::conv::{
    conv2d_backward_batch, conv2d_batch, maxpool2_backward_batch, maxpool2_batch, ConvMeta,
    PoolMeta,
};
use crate::matrix::Matrix;
use crate::par;
use crate::param::ParamRef;
use crate::plan::{self, fused_act_apply, CsrPair, FusedAct, Plan, Workspace};
use crate::sparse::EdgeIndex;
use std::sync::Arc;

/// Reduction tile of the frozen naive matmul kernels, at its pre-packing
/// value. Tiling only groups ascending-`k` steps; it never reorders them.
const K_TILE: usize = 64;

/// Frozen naive `a * b` (serial, k-tiled triple loop): the pre-packing
/// reference kernel. The packed [`Matrix::matmul`] family must stay
/// bit-identical to these — `par_equivalence` proptests enforce it.
pub fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "naive_matmul shape");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Matrix::zeros(m, n);
    let (av, bv, ov) = (a.as_slice(), b.as_slice(), out.as_mut_slice());
    for kb in (0..k).step_by(K_TILE) {
        let k_end = (kb + K_TILE).min(k);
        for i in 0..m {
            let a_row = &av[i * k..(i + 1) * k];
            let o_row = &mut ov[i * n..(i + 1) * n];
            for p in kb..k_end {
                let x = a_row[p];
                let b_row = &bv[p * n..(p + 1) * n];
                for (o, &y) in o_row.iter_mut().zip(b_row.iter()) {
                    *o += x * y;
                }
            }
        }
    }
    out
}

/// Frozen naive `a^T * b` (`a` is `k×m`): pre-packing reference kernel.
pub fn naive_matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.rows(), b.rows(), "naive_matmul_tn shape");
    let (m, k, n) = (a.cols(), a.rows(), b.cols());
    let mut out = Matrix::zeros(m, n);
    let (av, bv, ov) = (a.as_slice(), b.as_slice(), out.as_mut_slice());
    for pb in (0..k).step_by(K_TILE) {
        let p_end = (pb + K_TILE).min(k);
        for i in 0..m {
            let o_row = &mut ov[i * n..(i + 1) * n];
            for p in pb..p_end {
                let x = av[p * m + i];
                let b_row = &bv[p * n..(p + 1) * n];
                for (o, &y) in o_row.iter_mut().zip(b_row.iter()) {
                    *o += x * y;
                }
            }
        }
    }
    out
}

/// Frozen naive `a * b^T` (`b` is `n×k`): independent ascending-`k` dot
/// products, the pre-packing reference kernel.
pub fn naive_matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.cols(), "naive_matmul_nt shape");
    let (m, k, n) = (a.rows(), a.cols(), b.rows());
    let mut out = Matrix::zeros(m, n);
    let (av, bv, ov) = (a.as_slice(), b.as_slice(), out.as_mut_slice());
    for i in 0..m {
        let a_row = &av[i * k..(i + 1) * k];
        let o_row = &mut ov[i * n..(i + 1) * n];
        for (j, o) in o_row.iter_mut().enumerate() {
            let b_row = &bv[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&x, &y) in a_row.iter().zip(b_row.iter()) {
                acc += x * y;
            }
            *o = acc;
        }
    }
    out
}

/// Frozen naive spmm (serial per-row non-zero sweep across the full output
/// row): the pre-tiling reference kernel for [`crate::Csr::spmm_acc`]. Per
/// output element the reduction is one accumulator chain in ascending CSR
/// order; the register-tiled kernel must stay bit-identical to this in
/// deterministic mode — the spmm differential proptests enforce it.
pub fn naive_spmm(a: &crate::sparse::Csr, x: &Matrix) -> Matrix {
    assert_eq!(a.cols(), x.rows(), "naive_spmm shape");
    let n = x.cols();
    let mut out = Matrix::zeros(a.rows(), n);
    let ov = out.as_mut_slice();
    for r in 0..a.rows() {
        let o_row = &mut ov[r * n..(r + 1) * n];
        for (c, v) in a.row_iter(r) {
            let x_row = &x.as_slice()[c as usize * n..(c as usize + 1) * n];
            for (o, &xv) in o_row.iter_mut().zip(x_row.iter()) {
                *o += v * xv;
            }
        }
    }
    out
}

/// Handle to a node in the tape.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct NodeId(u32);

impl NodeId {
    fn idx(self) -> usize {
        self.0 as usize
    }
}

#[derive(Clone)]
enum Op {
    Leaf,
    MatMul(NodeId, NodeId),
    MatMulBiasAct(NodeId, NodeId, NodeId, FusedAct),
    Add(NodeId, NodeId),
    Sub(NodeId, NodeId),
    Mul(NodeId, NodeId),
    AddRow(NodeId, NodeId),
    MulRow(NodeId, NodeId),
    MulCol(NodeId, NodeId),
    Scale(NodeId, f32),
    AddScalar(NodeId),
    LeakyRelu(NodeId, f32),
    Sigmoid(NodeId),
    Tanh(NodeId),
    Exp(NodeId),
    LnEps(NodeId, f32),
    SoftmaxRows(NodeId, f32),
    ConcatCols(NodeId, NodeId),
    SliceCols(NodeId, usize, usize),
    Transpose(NodeId),
    SumAll(NodeId),
    MeanAll(NodeId),
    RowSum(NodeId),
    GatherRows(NodeId, Arc<Vec<u32>>),
    SpMM(Arc<CsrPair>, NodeId),
    EdgeSoftmax(NodeId, Arc<EdgeIndex>),
    EdgeAggregate(NodeId, NodeId, Arc<EdgeIndex>),
    GatedMatMul(NodeId, NodeId, NodeId),
    SubOuter(NodeId, NodeId),
    BceWithLogits(NodeId, Arc<Vec<f32>>, Arc<Vec<f32>>),
    Conv2d(NodeId, NodeId, ConvMeta),
    AddChanBias(NodeId, NodeId, usize, usize),
    MaxPool2(NodeId, PoolMeta),
}

struct Node {
    op: Op,
    value: Matrix,
}

/// Define-by-run autodiff tape (pre-refactor reference engine).
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
    grads: Vec<Option<Matrix>>,
    param_links: Vec<(NodeId, ParamRef)>,
}

impl Graph {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Handle for the `i`-th recorded node; ids coincide with the source
    /// plan's node indices when the tape was built by [`rebuild`].
    pub fn node(&self, i: usize) -> NodeId {
        assert!(i < self.nodes.len(), "node index out of range");
        NodeId(i as u32)
    }

    fn push(&mut self, op: Op, value: Matrix) -> NodeId {
        debug_assert!(
            !value.has_non_finite() || matches!(op, Op::Leaf),
            "non-finite value produced by op"
        );
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node { op, value });
        id
    }

    /// Value of a node.
    pub fn value(&self, id: NodeId) -> &Matrix {
        &self.nodes[id.idx()].value
    }

    /// Scalar value of a 1×1 node.
    pub fn scalar(&self, id: NodeId) -> f32 {
        let v = self.value(id);
        assert_eq!(v.shape(), (1, 1), "scalar() on non-scalar node");
        v.get(0, 0)
    }

    /// Gradient of a node (after `backward`), if it received one.
    pub fn grad(&self, id: NodeId) -> Option<&Matrix> {
        self.grads.get(id.idx()).and_then(|g| g.as_ref())
    }

    // ----- leaves -------------------------------------------------------

    /// Constant leaf (no gradient flows further than this node).
    pub fn constant(&mut self, m: Matrix) -> NodeId {
        self.push(Op::Leaf, m)
    }

    /// Bind a trainable parameter; its gradient is delivered by
    /// [`Graph::write_grads`].
    pub fn param(&mut self, p: &ParamRef) -> NodeId {
        let id = self.push(Op::Leaf, p.value().clone());
        self.param_links.push((id, p.clone()));
        id
    }

    // ----- dense ops ----------------------------------------------------

    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).matmul(self.value(b));
        self.push(Op::MatMul(a, b), v)
    }

    /// Fused `act(a * b + bias)` — mirrors the plan's fused node one-to-one
    /// so [`rebuild`] keeps plan and legacy node ids aligned.
    pub fn matmul_bias_act(&mut self, a: NodeId, b: NodeId, bias: NodeId, act: FusedAct) -> NodeId {
        let mut v = self.value(a).matmul(self.value(b));
        let (m, n) = v.shape();
        assert_eq!(self.value(bias).shape(), (1, n), "matmul_bias_act bias");
        for r in 0..m {
            let rr = self.nodes[bias.idx()].value.row(0);
            for (x, &bx) in v.row_mut(r).iter_mut().zip(rr.iter()) {
                *x = fused_act_apply(act, *x + bx);
            }
        }
        self.push(Op::MatMulBiasAct(a, b, bias, act), v)
    }

    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).zip(self.value(b), |x, y| x + y);
        self.push(Op::Add(a, b), v)
    }

    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).zip(self.value(b), |x, y| x - y);
        self.push(Op::Sub(a, b), v)
    }

    /// Hadamard (elementwise) product.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).zip(self.value(b), |x, y| x * y);
        self.push(Op::Mul(a, b), v)
    }

    /// Broadcast add of a `1×n` row to every row of an `m×n` matrix.
    pub fn add_row(&mut self, a: NodeId, row: NodeId) -> NodeId {
        let (m, n) = self.value(a).shape();
        assert_eq!(self.value(row).shape(), (1, n), "add_row shape");
        let mut v = self.value(a).clone();
        for r in 0..m {
            let rr = self.nodes[row.idx()].value.row(0);
            for (x, &b) in v.row_mut(r).iter_mut().zip(rr.iter()) {
                *x += b;
            }
        }
        self.push(Op::AddRow(a, row), v)
    }

    /// Broadcast multiply of a `1×n` row against every row of an `m×n` matrix.
    pub fn mul_row(&mut self, a: NodeId, row: NodeId) -> NodeId {
        let (m, n) = self.value(a).shape();
        assert_eq!(self.value(row).shape(), (1, n), "mul_row shape");
        let mut v = self.value(a).clone();
        for r in 0..m {
            let rr = self.nodes[row.idx()].value.row(0);
            for (x, &b) in v.row_mut(r).iter_mut().zip(rr.iter()) {
                *x *= b;
            }
        }
        self.push(Op::MulRow(a, row), v)
    }

    /// Broadcast multiply of an `m×1` column against every column of an
    /// `m×n` matrix.
    pub fn mul_col(&mut self, a: NodeId, col: NodeId) -> NodeId {
        let (m, _n) = self.value(a).shape();
        assert_eq!(self.value(col).shape(), (m, 1), "mul_col shape");
        let mut v = self.value(a).clone();
        for r in 0..m {
            let c = self.nodes[col.idx()].value.get(r, 0);
            for x in v.row_mut(r) {
                *x *= c;
            }
        }
        self.push(Op::MulCol(a, col), v)
    }

    pub fn scale(&mut self, a: NodeId, s: f32) -> NodeId {
        let v = self.value(a).map(|x| x * s);
        self.push(Op::Scale(a, s), v)
    }

    pub fn add_scalar(&mut self, a: NodeId, s: f32) -> NodeId {
        let v = self.value(a).map(|x| x + s);
        self.push(Op::AddScalar(a), v)
    }

    // ----- activations --------------------------------------------------

    pub fn leaky_relu(&mut self, a: NodeId, slope: f32) -> NodeId {
        let v = self.value(a).map(|x| if x > 0.0 { x } else { slope * x });
        self.push(Op::LeakyRelu(a, slope), v)
    }

    pub fn relu(&mut self, a: NodeId) -> NodeId {
        self.leaky_relu(a, 0.0)
    }

    pub fn sigmoid(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(Op::Sigmoid(a), v)
    }

    pub fn tanh(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(f32::tanh);
        self.push(Op::Tanh(a), v)
    }

    pub fn exp(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(f32::exp);
        self.push(Op::Exp(a), v)
    }

    /// Natural log with an epsilon floor for stability: `ln(x + eps)`.
    pub fn ln_eps(&mut self, a: NodeId, eps: f32) -> NodeId {
        let v = self.value(a).map(|x| (x + eps).ln());
        self.push(Op::LnEps(a, eps), v)
    }

    /// Row-wise softmax with temperature: `softmax(x / tau)`.
    pub fn softmax_rows(&mut self, a: NodeId, tau: f32) -> NodeId {
        assert!(tau > 0.0, "softmax temperature must be positive");
        let v = self.value(a).softmax_rows(tau);
        self.push(Op::SoftmaxRows(a, tau), v)
    }

    // ----- shape ops ----------------------------------------------------

    pub fn concat_cols(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).concat_cols(self.value(b));
        self.push(Op::ConcatCols(a, b), v)
    }

    pub fn slice_cols(&mut self, a: NodeId, start: usize, end: usize) -> NodeId {
        let v = self.value(a).slice_cols(start, end);
        self.push(Op::SliceCols(a, start, end), v)
    }

    pub fn transpose(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).transpose();
        self.push(Op::Transpose(a), v)
    }

    // ----- reductions ---------------------------------------------------

    pub fn sum_all(&mut self, a: NodeId) -> NodeId {
        let v = Matrix::filled(1, 1, self.value(a).sum());
        self.push(Op::SumAll(a), v)
    }

    pub fn mean_all(&mut self, a: NodeId) -> NodeId {
        let v = Matrix::filled(1, 1, self.value(a).mean());
        self.push(Op::MeanAll(a), v)
    }

    /// Sum each row: `m×n -> m×1`.
    pub fn row_sum(&mut self, a: NodeId) -> NodeId {
        let (m, _) = self.value(a).shape();
        let mut v = Matrix::zeros(m, 1);
        for r in 0..m {
            v.set(r, 0, self.nodes[a.idx()].value.row(r).iter().sum());
        }
        self.push(Op::RowSum(a), v)
    }

    // ----- graph-learning primitives -------------------------------------

    /// Gather rows of `a` by index: `out[i] = a[idx[i]]`.
    pub fn gather_rows(&mut self, a: NodeId, idx: Arc<Vec<u32>>) -> NodeId {
        let v = self.value(a).gather_rows(&idx);
        self.push(Op::GatherRows(a, idx), v)
    }

    /// Constant-sparse × dense product (GCN propagation step).
    pub fn spmm(&mut self, a: Arc<CsrPair>, x: NodeId) -> NodeId {
        let v = a.fwd.spmm(self.value(x));
        self.push(Op::SpMM(a, x), v)
    }

    /// Softmax of per-edge scores (`E×1`), normalized within each group of
    /// edges sharing a destination node (eq. 3 / eq. 7 of the paper).
    pub fn edge_softmax(&mut self, scores: NodeId, edges: Arc<EdgeIndex>) -> NodeId {
        let s = self.value(scores);
        assert_eq!(s.shape(), (edges.n_edges(), 1), "edge_softmax shape");
        let mut v = Matrix::zeros(edges.n_edges(), 1);
        // Edges are grouped by destination, so chunk boundaries aligned to
        // `dst_ptr` give every softmax group exactly one writer.
        let dst_ptr = edges.dst_ptr();
        par::for_each_disjoint(
            v.as_mut_slice(),
            edges.n_nodes(),
            edges.n_edges() * 8,
            |i| dst_ptr[i] as usize,
            |nodes, chunk| {
                let base = dst_ptr[nodes.start] as usize;
                for i in nodes {
                    let range = edges.incoming(i);
                    if range.is_empty() {
                        continue;
                    }
                    let mx = range
                        .clone()
                        .map(|e| s.get(e, 0))
                        .fold(f32::NEG_INFINITY, f32::max);
                    let mut sum = 0.0;
                    for e in range.clone() {
                        let x = (s.get(e, 0) - mx).exp();
                        chunk[e - base] = x;
                        sum += x;
                    }
                    for e in range {
                        chunk[e - base] /= sum;
                    }
                }
            },
        );
        self.push(Op::EdgeSoftmax(scores, edges), v)
    }

    /// Attention aggregation (eq. 2 / eq. 6): `out[dst] += alpha_e * h[src]`.
    pub fn edge_aggregate(&mut self, alpha: NodeId, h: NodeId, edges: Arc<EdgeIndex>) -> NodeId {
        let a = self.value(alpha);
        assert_eq!(
            a.shape(),
            (edges.n_edges(), 1),
            "edge_aggregate alpha shape"
        );
        let hm = self.value(h);
        assert_eq!(hm.rows(), edges.n_nodes(), "edge_aggregate h shape");
        let d = hm.cols();
        let mut v = Matrix::zeros(edges.n_nodes(), d);
        // Destination rows partition across threads; each row reduces its
        // incoming edges in edge order (edges are dst-sorted), matching the
        // serial edge-loop accumulation order exactly.
        par::for_each_row_block(
            v.as_mut_slice(),
            d,
            edges.n_edges() * d * 2,
            |nodes, chunk| {
                for (ni, i) in nodes.enumerate() {
                    let out_row = &mut chunk[ni * d..(ni + 1) * d];
                    for e in edges.incoming(i) {
                        let w = a.get(e, 0);
                        let src = edges.src()[e] as usize;
                        let src_row = &hm.as_slice()[src * d..(src + 1) * d];
                        for (o, &x) in out_row.iter_mut().zip(src_row.iter()) {
                            *o += w * x;
                        }
                    }
                }
            },
        );
        self.push(Op::EdgeAggregate(alpha, h, edges), v)
    }

    /// MS-Gate gated linear map (eqs. 20–22):
    /// `z[i,k] = Σ_d x[i,d] · w[d,k] · f[i, d*h + k]`, where `f` is the
    /// per-sample parameter filter over the flattened weight matrix.
    pub fn gated_matmul(&mut self, x: NodeId, w: NodeId, f: NodeId) -> NodeId {
        let (n, d) = self.value(x).shape();
        let (dw, h) = self.value(w).shape();
        assert_eq!(d, dw, "gated_matmul inner dims");
        assert_eq!(
            self.value(f).shape(),
            (n, d * h),
            "gated_matmul filter shape"
        );
        let mut v = Matrix::zeros(n, h);
        {
            let xm = &self.nodes[x.idx()].value;
            let wm = &self.nodes[w.idx()].value;
            let fm = &self.nodes[f.idx()].value;
            // Sample rows are independent; the zero-skip stays because gated
            // inputs are often sparse activations, unlike the dense matmuls.
            par::for_each_row_block(v.as_mut_slice(), h, n * d * h * 3, |rows, chunk| {
                for (ri, i) in rows.enumerate() {
                    let x_row = xm.row(i);
                    let f_row = fm.row(i);
                    let out_row = &mut chunk[ri * h..(ri + 1) * h];
                    for (dd, &xv) in x_row.iter().enumerate() {
                        if xv == 0.0 {
                            continue;
                        }
                        let w_row = wm.row(dd);
                        let f_seg = &f_row[dd * h..(dd + 1) * h];
                        for k in 0..h {
                            out_row[k] += xv * w_row[k] * f_seg[k];
                        }
                    }
                }
            });
        }
        self.push(Op::GatedMatMul(x, w, f), v)
    }

    /// Pairwise differences `out[i,j] = a[i] - b[j]` for column vectors
    /// (used by the PU rank loss, eq. 18).
    pub fn sub_outer(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (m, ca) = self.value(a).shape();
        let (n, cb) = self.value(b).shape();
        assert_eq!((ca, cb), (1, 1), "sub_outer expects column vectors");
        let mut v = Matrix::zeros(m, n);
        for i in 0..m {
            let ai = self.nodes[a.idx()].value.get(i, 0);
            for j in 0..n {
                v.set(i, j, ai - self.nodes[b.idx()].value.get(j, 0));
            }
        }
        self.push(Op::SubOuter(a, b), v)
    }

    /// Numerically stable weighted binary cross-entropy with logits
    /// (eq. 15 / eq. 23). Returns a `1×1` node with the weighted mean loss;
    /// weights typically mask to the labeled region set.
    pub fn bce_with_logits(
        &mut self,
        logits: NodeId,
        targets: Arc<Vec<f32>>,
        weights: Arc<Vec<f32>>,
    ) -> NodeId {
        let z = self.value(logits);
        assert_eq!(z.cols(), 1, "bce expects a column of logits");
        assert_eq!(z.rows(), targets.len(), "bce target count");
        assert_eq!(z.rows(), weights.len(), "bce weight count");
        let wsum: f32 = weights.iter().sum();
        let mut loss = 0.0f64;
        if wsum > 0.0 {
            for i in 0..targets.len() {
                let zi = z.get(i, 0);
                let li = zi.max(0.0) - zi * targets[i] + (1.0 + (-zi.abs()).exp()).ln();
                loss += (weights[i] * li) as f64;
            }
            loss /= wsum as f64;
        }
        let v = Matrix::filled(1, 1, loss as f32);
        self.push(Op::BceWithLogits(logits, targets, weights), v)
    }

    // ----- convolution ----------------------------------------------------

    /// Batched 2-D convolution via im2col. `x` is `n × (c_in*h*w)`, `kernel`
    /// is `c_out × (c_in*k*k)`; output is `n × (c_out*h_out*w_out)`.
    pub fn conv2d(&mut self, x: NodeId, kernel: NodeId, meta: ConvMeta) -> NodeId {
        let xm = self.value(x);
        assert_eq!(xm.cols(), meta.in_len(), "conv2d input length");
        assert_eq!(
            self.value(kernel).shape(),
            meta.kernel_shape(),
            "conv2d kernel shape"
        );
        let v = conv2d_batch(xm, &self.nodes[kernel.idx()].value, &meta);
        self.push(Op::Conv2d(x, kernel, meta), v)
    }

    /// Add a per-channel bias (`1×channels`) to a conv output laid out as
    /// `n × (channels*hw)`.
    pub fn add_chan_bias(&mut self, a: NodeId, bias: NodeId, channels: usize, hw: usize) -> NodeId {
        let (n, len) = self.value(a).shape();
        assert_eq!(len, channels * hw, "add_chan_bias layout");
        assert_eq!(
            self.value(bias).shape(),
            (1, channels),
            "add_chan_bias bias shape"
        );
        let mut v = self.value(a).clone();
        for i in 0..n {
            let row = v.row_mut(i);
            for c in 0..channels {
                let b = self.nodes[bias.idx()].value.get(0, c);
                for p in 0..hw {
                    row[c * hw + p] += b;
                }
            }
        }
        self.push(Op::AddChanBias(a, bias, channels, hw), v)
    }

    /// Batched 2×2/stride-2 max pooling.
    pub fn max_pool2(&mut self, x: NodeId, meta: PoolMeta) -> NodeId {
        let xm = self.value(x);
        assert_eq!(xm.cols(), meta.in_len(), "max_pool2 input length");
        let v = maxpool2_batch(xm, &meta);
        self.push(Op::MaxPool2(x, meta), v)
    }

    // ----- compound helpers ----------------------------------------------

    /// Mean squared error between two same-shape nodes, as a scalar node.
    pub fn mse(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let d = self.sub(a, b);
        let sq = self.mul(d, d);
        self.mean_all(sq)
    }

    // ----- backward -------------------------------------------------------

    /// Reverse pass from `root` (must be `1×1`). Gradients are stored on the
    /// graph and can be read with [`Graph::grad`].
    pub fn backward(&mut self, root: NodeId) {
        assert_eq!(
            self.value(root).shape(),
            (1, 1),
            "backward root must be scalar"
        );
        self.backward_seeded(root, Matrix::filled(1, 1, 1.0));
    }

    /// Reverse pass with an explicit seed gradient for `root`.
    pub fn backward_seeded(&mut self, root: NodeId, seed: Matrix) {
        assert_eq!(
            self.value(root).shape(),
            seed.shape(),
            "seed shape mismatch"
        );
        self.grads = (0..self.nodes.len()).map(|_| None).collect();
        self.grads[root.idx()] = Some(seed);
        for id in (0..=root.idx()).rev() {
            let Some(dy) = self.grads[id].take() else {
                continue;
            };
            let op = self.nodes[id].op.clone();
            self.apply_backward(&op, id, &dy);
            // Keep the gradient available for inspection.
            self.grads[id] = Some(dy);
        }
    }

    fn add_grad(&mut self, id: NodeId, delta: Matrix) {
        match &mut self.grads[id.idx()] {
            Some(g) => g.add_assign(&delta),
            slot @ None => *slot = Some(delta),
        }
    }

    fn apply_backward(&mut self, op: &Op, id: usize, dy: &Matrix) {
        match op {
            Op::Leaf => {}
            Op::MatMul(a, b) => {
                let da = dy.matmul_nt(&self.nodes[b.idx()].value);
                let db = self.nodes[a.idx()].value.matmul_tn(dy);
                self.add_grad(*a, da);
                self.add_grad(*b, db);
            }
            Op::MatMulBiasAct(a, b, bias, act) => {
                let act = *act;
                // dz = dy ⊙ act'(·) from the output, like the plan's fused
                // backward (LeakyRelu slopes are >= 0 by construction).
                let dz = self.nodes[id].value.zip(dy, |yv, g| match act {
                    FusedAct::Identity => g,
                    FusedAct::LeakyRelu(slope) => {
                        if yv > 0.0 {
                            g
                        } else {
                            slope * g
                        }
                    }
                    FusedAct::Tanh => g * (1.0 - yv * yv),
                    FusedAct::Sigmoid => g * yv * (1.0 - yv),
                });
                let (m, n) = dz.shape();
                let mut db = Matrix::zeros(1, n);
                for r in 0..m {
                    for (o, &g) in db.row_mut(0).iter_mut().zip(dz.row(r).iter()) {
                        *o += g;
                    }
                }
                let da = dz.matmul_nt(&self.nodes[b.idx()].value);
                let dbm = self.nodes[a.idx()].value.matmul_tn(&dz);
                // Delivery order matches the plan arm: bias, then a, then b.
                self.add_grad(*bias, db);
                self.add_grad(*a, da);
                self.add_grad(*b, dbm);
            }
            Op::Add(a, b) => {
                self.add_grad(*a, dy.clone());
                self.add_grad(*b, dy.clone());
            }
            Op::Sub(a, b) => {
                self.add_grad(*a, dy.clone());
                self.add_grad(*b, dy.map(|x| -x));
            }
            Op::Mul(a, b) => {
                let da = dy.zip(&self.nodes[b.idx()].value, |g, y| g * y);
                let db = dy.zip(&self.nodes[a.idx()].value, |g, x| g * x);
                self.add_grad(*a, da);
                self.add_grad(*b, db);
            }
            Op::AddRow(a, row) => {
                self.add_grad(*a, dy.clone());
                let (m, n) = dy.shape();
                let mut dr = Matrix::zeros(1, n);
                for r in 0..m {
                    for (o, &g) in dr.row_mut(0).iter_mut().zip(dy.row(r).iter()) {
                        *o += g;
                    }
                }
                self.add_grad(*row, dr);
            }
            Op::MulRow(a, row) => {
                let (m, n) = dy.shape();
                let rv = self.nodes[row.idx()].value.clone();
                let av = &self.nodes[a.idx()].value;
                let mut da = Matrix::zeros(m, n);
                let mut dr = Matrix::zeros(1, n);
                for r in 0..m {
                    for c in 0..n {
                        let g = dy.get(r, c);
                        da.set(r, c, g * rv.get(0, c));
                        dr.set(0, c, dr.get(0, c) + g * av.get(r, c));
                    }
                }
                self.add_grad(*a, da);
                self.add_grad(*row, dr);
            }
            Op::MulCol(a, col) => {
                let (m, n) = dy.shape();
                let cv = self.nodes[col.idx()].value.clone();
                let av = &self.nodes[a.idx()].value;
                let mut da = Matrix::zeros(m, n);
                let mut dc = Matrix::zeros(m, 1);
                for r in 0..m {
                    let mut acc = 0.0;
                    for c in 0..n {
                        let g = dy.get(r, c);
                        da.set(r, c, g * cv.get(r, 0));
                        acc += g * av.get(r, c);
                    }
                    dc.set(r, 0, acc);
                }
                self.add_grad(*a, da);
                self.add_grad(*col, dc);
            }
            Op::Scale(a, s) => self.add_grad(*a, dy.map(|x| x * s)),
            Op::AddScalar(a) => self.add_grad(*a, dy.clone()),
            Op::LeakyRelu(a, slope) => {
                let da = self.nodes[a.idx()]
                    .value
                    .zip(dy, |x, g| if x > 0.0 { g } else { slope * g });
                self.add_grad(*a, da);
            }
            Op::Sigmoid(a) => {
                let da = self.nodes[id].value.zip(dy, |y, g| g * y * (1.0 - y));
                self.add_grad(*a, da);
            }
            Op::Tanh(a) => {
                let da = self.nodes[id].value.zip(dy, |y, g| g * (1.0 - y * y));
                self.add_grad(*a, da);
            }
            Op::Exp(a) => {
                let da = self.nodes[id].value.zip(dy, |y, g| g * y);
                self.add_grad(*a, da);
            }
            Op::LnEps(a, eps) => {
                let da = self.nodes[a.idx()].value.zip(dy, |x, g| g / (x + eps));
                self.add_grad(*a, da);
            }
            Op::SoftmaxRows(a, tau) => {
                let y = &self.nodes[id].value;
                let (m, n) = y.shape();
                let mut da = Matrix::zeros(m, n);
                for r in 0..m {
                    let dot: f32 = y
                        .row(r)
                        .iter()
                        .zip(dy.row(r).iter())
                        .map(|(&yv, &g)| yv * g)
                        .sum();
                    for c in 0..n {
                        da.set(r, c, y.get(r, c) * (dy.get(r, c) - dot) / tau);
                    }
                }
                self.add_grad(*a, da);
            }
            Op::ConcatCols(a, b) => {
                let ca = self.nodes[a.idx()].value.cols();
                let total = dy.cols();
                self.add_grad(*a, dy.slice_cols(0, ca));
                self.add_grad(*b, dy.slice_cols(ca, total));
            }
            Op::SliceCols(a, start, end) => {
                let (m, n) = self.nodes[a.idx()].value.shape();
                let mut da = Matrix::zeros(m, n);
                for r in 0..m {
                    da.row_mut(r)[*start..*end].copy_from_slice(dy.row(r));
                }
                self.add_grad(*a, da);
            }
            Op::Transpose(a) => self.add_grad(*a, dy.transpose()),
            Op::SumAll(a) => {
                let (m, n) = self.nodes[a.idx()].value.shape();
                self.add_grad(*a, Matrix::filled(m, n, dy.get(0, 0)));
            }
            Op::MeanAll(a) => {
                let (m, n) = self.nodes[a.idx()].value.shape();
                let len = (m * n).max(1) as f32;
                self.add_grad(*a, Matrix::filled(m, n, dy.get(0, 0) / len));
            }
            Op::RowSum(a) => {
                let (m, n) = self.nodes[a.idx()].value.shape();
                let mut da = Matrix::zeros(m, n);
                for r in 0..m {
                    let g = dy.get(r, 0);
                    for x in da.row_mut(r) {
                        *x = g;
                    }
                }
                self.add_grad(*a, da);
            }
            Op::GatherRows(a, idx) => {
                let (m, n) = self.nodes[a.idx()].value.shape();
                // Scatter-add with possibly duplicate row indices: parallel
                // partitioning over `idx` would give one row two writers, so
                // the backward scatter stays serial (the forward gather is
                // the parallel one).
                let mut da = Matrix::zeros(m, n);
                for (i, &r) in idx.iter().enumerate() {
                    let dst = &mut da.as_mut_slice()[r as usize * n..(r as usize + 1) * n];
                    for (o, &g) in dst.iter_mut().zip(dy.row(i).iter()) {
                        *o += g;
                    }
                }
                self.add_grad(*a, da);
            }
            Op::SpMM(pair, x) => {
                let dx = pair.bwd().spmm(dy);
                self.add_grad(*x, dx);
            }
            Op::EdgeSoftmax(scores, edges) => {
                let alpha = &self.nodes[id].value;
                let mut ds = Matrix::zeros(edges.n_edges(), 1);
                let dst_ptr = edges.dst_ptr();
                par::for_each_disjoint(
                    ds.as_mut_slice(),
                    edges.n_nodes(),
                    edges.n_edges() * 4,
                    |i| dst_ptr[i] as usize,
                    |nodes, chunk| {
                        let base = dst_ptr[nodes.start] as usize;
                        for i in nodes {
                            let range = edges.incoming(i);
                            if range.is_empty() {
                                continue;
                            }
                            let dot: f32 =
                                range.clone().map(|e| alpha.get(e, 0) * dy.get(e, 0)).sum();
                            for e in range {
                                chunk[e - base] = alpha.get(e, 0) * (dy.get(e, 0) - dot);
                            }
                        }
                    },
                );
                self.add_grad(*scores, ds);
            }
            Op::EdgeAggregate(alpha, h, edges) => {
                let am = &self.nodes[alpha.idx()].value;
                let hm = &self.nodes[h.idx()].value;
                let d = hm.cols();
                // Each edge's alpha-gradient is an independent dot product.
                let mut dalpha = Matrix::zeros(edges.n_edges(), 1);
                par::for_each_row_block(
                    dalpha.as_mut_slice(),
                    1,
                    edges.n_edges() * d,
                    |es, chunk| {
                        for (k, e) in es.enumerate() {
                            let src = edges.src()[e] as usize;
                            let dst = edges.dst()[e] as usize;
                            let dy_row = &dy.as_slice()[dst * d..(dst + 1) * d];
                            let h_row = &hm.as_slice()[src * d..(src + 1) * d];
                            chunk[k] = dy_row.iter().zip(h_row.iter()).map(|(&g, &x)| g * x).sum();
                        }
                    },
                );
                // The dh scatter indexes by *source* row, and several edges
                // can share one source, so a row partition over edges would
                // race; this stays serial.
                let mut dh = Matrix::zeros(hm.rows(), d);
                for e in 0..edges.n_edges() {
                    let src = edges.src()[e] as usize;
                    let dst = edges.dst()[e] as usize;
                    let dy_row = &dy.as_slice()[dst * d..(dst + 1) * d];
                    let w = am.get(e, 0);
                    let dh_row = &mut dh.as_mut_slice()[src * d..(src + 1) * d];
                    for (o, &g) in dh_row.iter_mut().zip(dy_row.iter()) {
                        *o += w * g;
                    }
                }
                self.add_grad(*alpha, dalpha);
                self.add_grad(*h, dh);
            }
            Op::GatedMatMul(x, w, f) => {
                let xm = self.nodes[x.idx()].value.clone();
                let wm = self.nodes[w.idx()].value.clone();
                let fm = self.nodes[f.idx()].value.clone();
                let (n, d) = xm.shape();
                let h = wm.cols();
                let mut dx = Matrix::zeros(n, d);
                let mut dw = Matrix::zeros(d, h);
                let mut df = Matrix::zeros(n, d * h);
                for i in 0..n {
                    let x_row = xm.row(i);
                    let f_row = fm.row(i);
                    let dy_row = dy.row(i);
                    let df_row = df.row_mut(i);
                    for dd in 0..d {
                        let w_row = wm.row(dd);
                        let f_seg = &f_row[dd * h..(dd + 1) * h];
                        let df_seg = &mut df_row[dd * h..(dd + 1) * h];
                        let xv = x_row[dd];
                        let mut dx_acc = 0.0;
                        for k in 0..h {
                            let g = dy_row[k];
                            dx_acc += g * w_row[k] * f_seg[k];
                            dw.set(dd, k, dw.get(dd, k) + g * xv * f_seg[k]);
                            df_seg[k] += g * xv * w_row[k];
                        }
                        dx.set(i, dd, dx_acc);
                    }
                }
                self.add_grad(*x, dx);
                self.add_grad(*w, dw);
                self.add_grad(*f, df);
            }
            Op::SubOuter(a, b) => {
                let (m, n) = dy.shape();
                let mut da = Matrix::zeros(m, 1);
                let mut db = Matrix::zeros(n, 1);
                for i in 0..m {
                    for j in 0..n {
                        let g = dy.get(i, j);
                        da.set(i, 0, da.get(i, 0) + g);
                        db.set(j, 0, db.get(j, 0) - g);
                    }
                }
                self.add_grad(*a, da);
                self.add_grad(*b, db);
            }
            Op::BceWithLogits(logits, targets, weights) => {
                let z = &self.nodes[logits.idx()].value;
                let wsum: f32 = weights.iter().sum();
                let mut dz = Matrix::zeros(z.rows(), 1);
                if wsum > 0.0 {
                    let g = dy.get(0, 0) / wsum;
                    for i in 0..targets.len() {
                        let zi = z.get(i, 0);
                        let p = 1.0 / (1.0 + (-zi).exp());
                        dz.set(i, 0, g * weights[i] * (p - targets[i]));
                    }
                }
                self.add_grad(*logits, dz);
            }
            Op::Conv2d(x, kernel, meta) => {
                let (dx, dk) = conv2d_backward_batch(
                    &self.nodes[x.idx()].value,
                    &self.nodes[kernel.idx()].value,
                    dy,
                    meta,
                );
                self.add_grad(*x, dx);
                self.add_grad(*kernel, dk);
            }
            Op::AddChanBias(a, bias, channels, hw) => {
                self.add_grad(*a, dy.clone());
                let n = dy.rows();
                let mut db = Matrix::zeros(1, *channels);
                for i in 0..n {
                    let row = dy.row(i);
                    for c in 0..*channels {
                        let s: f32 = row[c * hw..(c + 1) * hw].iter().sum();
                        db.set(0, c, db.get(0, c) + s);
                    }
                }
                self.add_grad(*bias, db);
            }
            Op::MaxPool2(x, meta) => {
                let dx = maxpool2_backward_batch(&self.nodes[x.idx()].value, dy, meta);
                self.add_grad(*x, dx);
            }
        }
    }

    /// Copy gradients of bound parameters back into their [`ParamRef`]s
    /// (accumulating). Call after [`Graph::backward`].
    pub fn write_grads(&self) {
        for (id, p) in &self.param_links {
            if let Some(g) = self.grad(*id) {
                p.accumulate_grad(g);
            }
        }
    }
}

/// Re-execute a recorded [`Plan`] op-for-op through the legacy tape.
///
/// Leaves bound to parameters are re-bound with [`Graph::param`] (reading
/// the *current* parameter value, exactly like the pre-refactor per-epoch
/// recording did), and constant leaves are cloned out of the recording
/// workspace (the old code cloned its inputs into the tape every epoch).
/// Node ids coincide by construction: plan node `i` is [`Graph::node`]`(i)`
/// of the returned tape.
#[allow(clippy::too_many_lines)]
pub fn rebuild(plan: &Plan, ws: &Workspace) -> Graph {
    fn n(id: plan::NodeId) -> NodeId {
        NodeId(id.idx() as u32)
    }
    let mut params: Vec<Option<&ParamRef>> = vec![None; plan.ops.len()];
    for (id, p) in &plan.param_links {
        params[id.idx()] = Some(p);
    }
    let mut g = Graph::new();
    for (i, op) in plan.ops.iter().enumerate() {
        let got = match op {
            plan::Op::Leaf => match params[i] {
                Some(p) => g.param(p),
                None => g.constant(ws.values[i].clone()),
            },
            plan::Op::MatMul(a, b) => g.matmul(n(*a), n(*b)),
            plan::Op::MatMulBiasAct(a, b, bias, act) => {
                g.matmul_bias_act(n(*a), n(*b), n(*bias), *act)
            }
            plan::Op::Add(a, b) => g.add(n(*a), n(*b)),
            plan::Op::Sub(a, b) => g.sub(n(*a), n(*b)),
            plan::Op::Mul(a, b) => g.mul(n(*a), n(*b)),
            plan::Op::AddRow(a, r) => g.add_row(n(*a), n(*r)),
            plan::Op::MulRow(a, r) => g.mul_row(n(*a), n(*r)),
            plan::Op::MulCol(a, c) => g.mul_col(n(*a), n(*c)),
            plan::Op::Scale(a, s) => g.scale(n(*a), *s),
            plan::Op::AddScalar(a, s) => g.add_scalar(n(*a), *s),
            plan::Op::LeakyRelu(a, s) => g.leaky_relu(n(*a), *s),
            plan::Op::Sigmoid(a) => g.sigmoid(n(*a)),
            plan::Op::Tanh(a) => g.tanh(n(*a)),
            plan::Op::Exp(a) => g.exp(n(*a)),
            plan::Op::LnEps(a, eps) => g.ln_eps(n(*a), *eps),
            plan::Op::SoftmaxRows(a, tau) => g.softmax_rows(n(*a), *tau),
            plan::Op::ConcatCols(a, b) => g.concat_cols(n(*a), n(*b)),
            plan::Op::SliceCols(a, s, e) => g.slice_cols(n(*a), *s, *e),
            plan::Op::Transpose(a) => g.transpose(n(*a)),
            plan::Op::SumAll(a) => g.sum_all(n(*a)),
            plan::Op::MeanAll(a) => g.mean_all(n(*a)),
            plan::Op::RowSum(a) => g.row_sum(n(*a)),
            plan::Op::GatherRows(a, idx) => g.gather_rows(n(*a), idx.clone()),
            plan::Op::SpMM(pair, x) => g.spmm(pair.clone(), n(*x)),
            plan::Op::EdgeSoftmax(s, e) => g.edge_softmax(n(*s), e.clone()),
            plan::Op::EdgeAggregate(a, h, e) => g.edge_aggregate(n(*a), n(*h), e.clone()),
            plan::Op::GatedMatMul(x, w, f) => g.gated_matmul(n(*x), n(*w), n(*f)),
            plan::Op::SubOuter(a, b) => g.sub_outer(n(*a), n(*b)),
            plan::Op::BceWithLogits(l, t, w) => g.bce_with_logits(n(*l), t.clone(), w.clone()),
            plan::Op::Conv2d(x, k, meta) => g.conv2d(n(*x), n(*k), *meta),
            plan::Op::AddChanBias(a, b, c, hw) => g.add_chan_bias(n(*a), n(*b), *c, *hw),
            plan::Op::MaxPool2(x, meta) => g.max_pool2(n(*x), *meta),
        };
        debug_assert_eq!(got.idx(), i, "legacy tape diverged from plan ids");
    }
    g
}

#[cfg(test)]
mod tests {
    // Exact float equality is intended in these tests: they assert
    // exact constants and bit-reproducible results, not tolerances.
    #![allow(clippy::float_cmp)]

    use super::*;
    use crate::matrix::Matrix;

    #[test]
    fn backward_through_matmul_chain() {
        // loss = sum(A * B); dA = 1 * B^T, dB = A^T * 1.
        let mut g = Graph::new();
        let a = g.constant(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let b = g.constant(Matrix::from_rows(&[&[5.0], &[6.0]]));
        let y = g.matmul(a, b);
        let loss = g.sum_all(y);
        g.backward(loss);
        let da = g.grad(a).unwrap();
        assert_eq!(da, &Matrix::from_rows(&[&[5.0, 6.0], &[5.0, 6.0]]));
        let db = g.grad(b).unwrap();
        assert_eq!(db, &Matrix::from_rows(&[&[4.0], &[6.0]]));
    }

    #[test]
    fn grad_accumulates_on_reuse() {
        // loss = sum(x * x) -> dx = 2x.
        let mut g = Graph::new();
        let x = g.constant(Matrix::from_rows(&[&[3.0]]));
        let y = g.mul(x, x);
        let loss = g.sum_all(y);
        g.backward(loss);
        assert_eq!(g.grad(x).unwrap().get(0, 0), 6.0);
    }

    #[test]
    fn bce_gradient_is_sigmoid_minus_target() {
        let mut g = Graph::new();
        let z = g.constant(Matrix::col_vec(&[0.0, 2.0]));
        let loss = g.bce_with_logits(z, Arc::new(vec![1.0, 0.0]), Arc::new(vec![1.0, 1.0]));
        g.backward(loss);
        let dz = g.grad(z).unwrap();
        assert!((dz.get(0, 0) - (0.5 - 1.0) / 2.0).abs() < 1e-5);
        let p2 = 1.0 / (1.0 + (-2.0f32).exp());
        assert!((dz.get(1, 0) - (p2 - 0.0) / 2.0).abs() < 1e-5);
    }

    #[test]
    fn edge_softmax_normalizes_incoming() {
        let edges = Arc::new(EdgeIndex::from_pairs(3, vec![(0, 2), (1, 2), (2, 0)]));
        let mut g = Graph::new();
        // Edges are sorted by destination: edge 0 is (2,0); edges 1,2 are
        // (0,2) and (1,2). Give node 2's two incoming edges equal scores.
        let s = g.constant(Matrix::col_vec(&[3.0, 1.0, 1.0]));
        let a = g.edge_softmax(s, edges.clone());
        let v = g.value(a);
        // Node 0 has one incoming edge -> alpha = 1.
        let e0 = edges.incoming(0).next().unwrap();
        assert!((v.get(e0, 0) - 1.0).abs() < 1e-6);
        // Node 2 has two equal-score incoming edges -> 0.5 each.
        for e in edges.incoming(2) {
            assert!((v.get(e, 0) - 0.5).abs() < 1e-6);
        }
    }

    #[test]
    fn write_grads_reaches_params() {
        let p = ParamRef::new("w", Matrix::filled(1, 1, 2.0));
        let mut g = Graph::new();
        let w = g.param(&p);
        let y = g.mul(w, w);
        let loss = g.sum_all(y);
        g.backward(loss);
        g.write_grads();
        assert_eq!(p.grad().get(0, 0), 4.0);
    }
}
