//! Parallel execution runtime for the tensor kernels.
//!
//! Every parallel kernel in this crate is built on three primitives here:
//!
//! * [`for_each_disjoint`] / [`for_each_row_block`] — partition an output
//!   buffer **along output rows** into contiguous chunks, one worker per
//!   chunk. Each output element therefore has exactly one writer, and the
//!   per-element reduction order inside a chunk is the same loop order the
//!   serial kernel uses — so row-partitioned kernels (matmul family, spmm,
//!   edge softmax/aggregate, pooling) are *bit-identical* to their serial
//!   counterparts at any thread count.
//! * [`map_chunks`] — map contiguous index ranges to partial results,
//!   returned in ascending chunk order so the caller can reduce them in a
//!   fixed order. The chunk count is a pure function of the work size and
//!   the configured thread count, so reductions built on it (e.g. the conv
//!   kernel gradient) are bit-deterministic for a fixed `UVD_THREADS`.
//! * [`run_tasks`] — coarse-grained fan-out of independent tasks (seed×fold
//!   experiment runs); results are returned in task-index order and each
//!   task body runs with nested kernel parallelism disabled, so the task's
//!   own numerics match a serial run exactly.
//!
//! ## Dispatch policy
//!
//! A kernel goes parallel only when its estimated scalar-op count reaches
//! [`MIN_PAR_WORK`] (small matrices stay serial — pool dispatch is cheap but
//! not free) **and** the effective thread count is above one. The thread
//! count comes from, in priority order: a thread-local override installed by
//! [`with_threads`] (used by benches/tests), the `UVD_THREADS` environment
//! variable (read once), or the machine's available parallelism.
//!
//! On a host with a single effective hardware thread, dispatching through
//! the pool cannot help — the workers would only time-slice against the
//! caller, and the scope latch/queue traffic shows up as sub-1.0 "speedups"
//! on small kernels. The primitives therefore keep the *same* chunk
//! decomposition (so chunk-count-sensitive reductions stay bit-identical to
//! a multi-core run with equal `UVD_THREADS`) but execute the chunks inline
//! on the calling thread instead of going through `rayon::scope`.
//!
//! Worker closures always run with the "in worker" flag set, which forces
//! any kernel they invoke to take the serial path — parallelism never nests,
//! so the pool is never oversubscribed by recursive fan-out.

use std::cell::Cell;
use std::ops::Range;
use std::sync::OnceLock;

/// Minimum estimated scalar operations before a kernel goes parallel.
/// Below this, pool dispatch overhead (~µs) rivals the compute itself.
pub const MIN_PAR_WORK: usize = 1 << 16;

/// Parse a `UVD_THREADS` value. Accepted: a positive integer thread count.
/// Anything else (zero, negatives, non-numeric, empty) is rejected.
fn parse_threads(s: &str) -> Option<usize> {
    s.trim().parse::<usize>().ok().filter(|&n| n > 0)
}

fn env_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| match std::env::var("UVD_THREADS") {
        Err(_) => rayon::current_num_threads(),
        Ok(v) => parse_threads(&v).unwrap_or_else(|| {
            let fallback = rayon::current_num_threads();
            uvd_obs::warn_once(
                "UVD_THREADS",
                &format!(
                    "UVD_THREADS: unrecognized value '{}' (accepted: a \
                     positive integer); using {fallback} threads",
                    v.trim()
                ),
            );
            fallback
        }),
    })
}

thread_local! {
    /// Per-thread override of the configured thread count (None = use env).
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    /// Set while executing inside a parallel worker: forces serial kernels.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// The thread count kernels on this thread would use, before any work-size
/// threshold: 1 inside workers, else the override / `UVD_THREADS` / cores.
pub fn effective_threads() -> usize {
    if IN_WORKER.with(|w| w.get()) {
        return 1;
    }
    OVERRIDE
        .with(|o| o.get())
        .unwrap_or_else(env_threads)
        .max(1)
}

/// Run `f` with kernels dispatching on exactly `n` threads, regardless of
/// `UVD_THREADS`. Used by benches and the equivalence tests; grows the pool
/// if `n` exceeds the core count.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let n = n.max(1);
    rayon::ensure_pool_size(n);
    let prev = OVERRIDE.with(|o| o.replace(Some(n)));
    let r = f();
    OVERRIDE.with(|o| o.set(prev));
    r
}

/// Run `f` with all kernel parallelism disabled on this thread.
pub fn serial_scope<R>(f: impl FnOnce() -> R) -> R {
    with_threads(1, f)
}

/// Worker threads a parallel region configured for `requested` threads
/// actually runs on: `requested` clamped to the machine's available
/// parallelism. On a host with a single hardware thread the chunked
/// primitives keep the requested chunk decomposition but execute every chunk
/// inline on the calling thread, so the effective worker count is 1 no
/// matter how large the pool is; on any host, asking for more workers than
/// cores only time-slices them against each other. Benchmarks should report
/// this number alongside the requested one, so speedup rows aren't
/// attributed to parallelism that never dispatched.
pub fn effective_workers(requested: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    requested.clamp(1, cores)
}

/// True when called from inside a parallel worker closure.
pub fn in_worker() -> bool {
    IN_WORKER.with(|w| w.get())
}

fn enter_worker<R>(f: impl FnOnce() -> R) -> R {
    let prev = IN_WORKER.with(|w| w.replace(true));
    let r = f();
    IN_WORKER.with(|w| w.set(prev));
    r
}

/// True when the machine exposes a single hardware thread. Chunked jobs then
/// run their chunks inline (same decomposition, no pool dispatch), since
/// workers could only time-slice against the calling thread.
fn single_core_host() -> bool {
    static SINGLE: OnceLock<bool> = OnceLock::new();
    *SINGLE.get_or_init(|| {
        // The configured pool size is irrelevant here: even a 4-thread pool
        // has one *effective* worker when the machine exposes one hardware
        // thread, and dispatching to it only adds scheduling overhead.
        std::thread::available_parallelism()
            .map(|c| c.get() <= 1)
            .unwrap_or(true)
    })
}

/// Dispatch-decision telemetry: how many kernel invocations went parallel
/// (multi-chunk) vs. stayed serial. Only accumulates while the `uvd_obs`
/// recorder is on.
static DISPATCH_PARALLEL: uvd_obs::Counter = uvd_obs::Counter::new("par.dispatch.parallel");
static DISPATCH_SERIAL: uvd_obs::Counter = uvd_obs::Counter::new("par.dispatch.serial");

/// Number of chunks a job of `work` estimated scalar ops over `items`
/// partitionable units should split into (1 = stay serial).
pub fn planned_chunks(items: usize, work: usize) -> usize {
    let chunks = if work < MIN_PAR_WORK {
        1
    } else {
        effective_threads().min(items).max(1)
    };
    if chunks > 1 {
        DISPATCH_PARALLEL.add(1);
    } else {
        DISPATCH_SERIAL.add(1);
    }
    chunks
}

/// Partition `out` into `n_items` logical items whose slice boundaries are
/// given by the monotone `bounds` map (`bounds(0) == 0`,
/// `bounds(n_items) == out.len()`), then process contiguous item ranges in
/// parallel: `f(item_range, chunk)` where `chunk` is
/// `out[bounds(range.start)..bounds(range.end)]`.
///
/// With uniform items (`bounds(i) = i * row_len`) this is plain row
/// partitioning; with ragged items (edge groups via `dst_ptr`) chunk
/// boundaries still align to item boundaries so every worker owns whole
/// items. Falls back to a single `f(0..n_items, out)` call when the work is
/// below threshold or one thread is configured.
pub fn for_each_disjoint<T, B, F>(out: &mut [T], n_items: usize, work: usize, bounds: B, f: F)
where
    T: Send,
    B: Fn(usize) -> usize,
    F: Fn(Range<usize>, &mut [T]) + Sync,
{
    debug_assert_eq!(bounds(0), 0, "bounds must start at 0");
    debug_assert_eq!(bounds(n_items), out.len(), "bounds must cover out");
    let chunks = planned_chunks(n_items, work);
    if chunks <= 1 {
        f(0..n_items, out);
        return;
    }
    let base = n_items / chunks;
    let extra = n_items % chunks;
    if single_core_host() {
        // Same chunk boundaries, executed inline in ascending order.
        let mut rest = out;
        let mut item = 0usize;
        let mut off = 0usize;
        for c in 0..chunks {
            let end_item = item + base + usize::from(c < extra);
            let end_off = bounds(end_item);
            let (chunk, tail) = rest.split_at_mut(end_off - off);
            rest = tail;
            enter_worker(|| f(item..end_item, chunk));
            item = end_item;
            off = end_off;
        }
        return;
    }
    rayon::scope(|s| {
        let mut rest = out;
        let mut item = 0usize;
        let mut off = 0usize;
        let fr = &f;
        for c in 0..chunks {
            let end_item = item + base + usize::from(c < extra);
            let end_off = bounds(end_item);
            let (chunk, tail) = rest.split_at_mut(end_off - off);
            rest = tail;
            let range = item..end_item;
            if c + 1 == chunks {
                // The spawning thread takes the last chunk instead of
                // blocking idle while workers run.
                enter_worker(|| fr(range, chunk));
            } else {
                s.spawn(move || enter_worker(|| fr(range, chunk)));
            }
            item = end_item;
            off = end_off;
        }
    });
}

/// Two-buffer variant of [`for_each_disjoint`] for structure-of-arrays
/// outputs (a CSR's `indices`/`values`, an edge list's `src`/`dst`): both
/// slices share one `bounds` map and are partitioned at the same item
/// boundaries, so each worker owns the same contiguous item range in both.
/// Chunk decomposition, dispatch policy and execution order are exactly
/// [`for_each_disjoint`]'s.
pub fn for_each_disjoint2<T, U, B, F>(
    out_a: &mut [T],
    out_b: &mut [U],
    n_items: usize,
    work: usize,
    bounds: B,
    f: F,
) where
    T: Send,
    U: Send,
    B: Fn(usize) -> usize,
    F: Fn(Range<usize>, &mut [T], &mut [U]) + Sync,
{
    debug_assert_eq!(bounds(0), 0, "bounds must start at 0");
    debug_assert_eq!(bounds(n_items), out_a.len(), "bounds must cover out_a");
    debug_assert_eq!(out_a.len(), out_b.len(), "outputs must share a layout");
    let chunks = planned_chunks(n_items, work);
    if chunks <= 1 {
        f(0..n_items, out_a, out_b);
        return;
    }
    let base = n_items / chunks;
    let extra = n_items % chunks;
    if single_core_host() {
        let (mut rest_a, mut rest_b) = (out_a, out_b);
        let mut item = 0usize;
        let mut off = 0usize;
        for c in 0..chunks {
            let end_item = item + base + usize::from(c < extra);
            let end_off = bounds(end_item);
            let (chunk_a, tail_a) = rest_a.split_at_mut(end_off - off);
            let (chunk_b, tail_b) = rest_b.split_at_mut(end_off - off);
            rest_a = tail_a;
            rest_b = tail_b;
            enter_worker(|| f(item..end_item, chunk_a, chunk_b));
            item = end_item;
            off = end_off;
        }
        return;
    }
    rayon::scope(|s| {
        let (mut rest_a, mut rest_b) = (out_a, out_b);
        let mut item = 0usize;
        let mut off = 0usize;
        let fr = &f;
        for c in 0..chunks {
            let end_item = item + base + usize::from(c < extra);
            let end_off = bounds(end_item);
            let (chunk_a, tail_a) = rest_a.split_at_mut(end_off - off);
            let (chunk_b, tail_b) = rest_b.split_at_mut(end_off - off);
            rest_a = tail_a;
            rest_b = tail_b;
            let range = item..end_item;
            if c + 1 == chunks {
                enter_worker(|| fr(range, chunk_a, chunk_b));
            } else {
                s.spawn(move || enter_worker(|| fr(range, chunk_a, chunk_b)));
            }
            item = end_item;
            off = end_off;
        }
    });
}

/// Row-uniform specialization of [`for_each_disjoint`]: `out` is a row-major
/// buffer of rows of length `row_len`; `f(row_range, chunk)` gets the rows
/// in `row_range` as one contiguous mutable slice.
pub fn for_each_row_block<T, F>(out: &mut [T], row_len: usize, work: usize, f: F)
where
    T: Send,
    F: Fn(Range<usize>, &mut [T]) + Sync,
{
    let rows = out.len().checked_div(row_len).unwrap_or(0);
    for_each_disjoint(out, rows, work, |i| i * row_len, f);
}

/// Map contiguous item ranges to partial results, returned in ascending
/// chunk order. Callers reduce the parts in that order, which makes the
/// reduction deterministic for a fixed thread configuration.
pub fn map_chunks<R, F>(n_items: usize, work: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    let chunks = planned_chunks(n_items, work);
    if chunks <= 1 {
        return vec![f(0..n_items)];
    }
    let base = n_items / chunks;
    let extra = n_items % chunks;
    if single_core_host() {
        let mut parts = Vec::with_capacity(chunks);
        let mut item = 0usize;
        for c in 0..chunks {
            let end_item = item + base + usize::from(c < extra);
            parts.push(enter_worker(|| f(item..end_item)));
            item = end_item;
        }
        return parts;
    }
    let mut slots: Vec<Option<R>> = (0..chunks).map(|_| None).collect();
    rayon::scope(|s| {
        let fr = &f;
        let mut item = 0usize;
        let mut rest = &mut slots[..];
        for c in 0..chunks {
            let end_item = item + base + usize::from(c < extra);
            let (slot, tail) = rest.split_first_mut().expect("one slot per chunk");
            rest = tail;
            let range = item..end_item;
            if c + 1 == chunks {
                enter_worker(|| *slot = Some(fr(range)));
            } else {
                s.spawn(move || enter_worker(|| *slot = Some(fr(range))));
            }
            item = end_item;
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("chunk completed"))
        .collect()
}

/// Run `n` independent coarse tasks (no work-size threshold — callers use
/// this for whole model fits, not kernels), returning results in task-index
/// order. One pool job per task, so heterogeneous task durations load-balance
/// across the configured threads. Each task runs with nested kernel
/// parallelism disabled.
pub fn run_tasks<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = effective_threads().min(n);
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    if single_core_host() {
        return (0..n).map(|i| enter_worker(|| f(i))).collect();
    }
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    rayon::scope(|s| {
        let fr = &f;
        for (i, slot) in slots.iter_mut().enumerate() {
            s.spawn(move || enter_worker(|| *slot = Some(fr(i))));
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("task completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_blocks_cover_everything_once() {
        let mut out = vec![0u32; 40];
        with_threads(4, || {
            // Force the parallel path with an inflated work estimate.
            for_each_row_block(&mut out, 4, MIN_PAR_WORK, |rows, chunk| {
                assert_eq!(chunk.len(), rows.len() * 4);
                for (k, v) in chunk.iter_mut().enumerate() {
                    *v += (rows.start * 4 + k) as u32;
                }
            });
        });
        // Every element written exactly once with its own index.
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u32));
    }

    #[test]
    fn below_threshold_stays_serial_and_identical() {
        let mut a = vec![0u32; 16];
        let mut b = vec![0u32; 16];
        for_each_row_block(&mut a, 4, 10, |rows, chunk| {
            assert_eq!(rows, 0..4);
            chunk.iter_mut().for_each(|v| *v = 7);
        });
        with_threads(8, || {
            for_each_row_block(&mut b, 4, 10, |_, chunk| {
                chunk.iter_mut().for_each(|v| *v = 7);
            });
        });
        assert_eq!(a, b);
    }

    #[test]
    fn ragged_bounds_align_to_items() {
        // Items of ragged sizes 0,3,1,0,4,2 (prefix sums as bounds).
        let ptr = [0usize, 0, 3, 4, 4, 8, 10];
        let mut out = vec![0u8; 10];
        with_threads(3, || {
            for_each_disjoint(
                &mut out,
                6,
                MIN_PAR_WORK,
                |i| ptr[i],
                |items, chunk| {
                    assert_eq!(chunk.len(), ptr[items.end] - ptr[items.start]);
                    chunk.iter_mut().for_each(|v| *v += 1);
                },
            );
        });
        assert!(out.iter().all(|&v| v == 1));
    }

    #[test]
    fn disjoint2_covers_both_buffers_once() {
        // Ragged items 0,3,1,0,4,2; both outputs partitioned identically.
        let ptr = [0usize, 0, 3, 4, 4, 8, 10];
        let mut a = vec![0u8; 10];
        let mut b = vec![0u16; 10];
        with_threads(3, || {
            for_each_disjoint2(
                &mut a,
                &mut b,
                6,
                MIN_PAR_WORK,
                |i| ptr[i],
                |items, ca, cb| {
                    assert_eq!(ca.len(), ptr[items.end] - ptr[items.start]);
                    assert_eq!(ca.len(), cb.len());
                    ca.iter_mut().for_each(|v| *v += 1);
                    cb.iter_mut().for_each(|v| *v += 2);
                },
            );
        });
        assert!(a.iter().all(|&v| v == 1));
        assert!(b.iter().all(|&v| v == 2));
    }

    #[test]
    fn map_chunks_orders_partials() {
        let parts = with_threads(4, || map_chunks(10, MIN_PAR_WORK, |r| r.clone()));
        assert_eq!(parts.len(), 4);
        assert_eq!(parts.first().unwrap().start, 0);
        assert_eq!(parts.last().unwrap().end, 10);
        for w in parts.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn run_tasks_index_ordered_and_serial_inside() {
        let out = with_threads(4, || {
            run_tasks(9, |i| {
                assert!(in_worker());
                assert_eq!(effective_threads(), 1);
                i * i
            })
        });
        assert_eq!(out, (0..9).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn effective_workers_clamps_to_available_parallelism() {
        assert_eq!(effective_workers(0), 1);
        let cores = std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1);
        assert_eq!(effective_workers(4), 4.min(cores));
        // Oversubscription requests collapse to the core count rather than
        // reporting workers that can only time-slice.
        assert_eq!(effective_workers(cores + 100), cores);
        if cores <= 1 {
            assert_eq!(
                effective_workers(4),
                1,
                "inline dispatch must report one worker"
            );
        }
    }

    #[test]
    fn thread_env_parser_accepts_positive_integers_only() {
        assert_eq!(parse_threads("4"), Some(4));
        assert_eq!(parse_threads(" 2 "), Some(2));
        assert_eq!(parse_threads("0"), None, "zero threads is meaningless");
        assert_eq!(parse_threads("-1"), None);
        assert_eq!(parse_threads("four"), None);
        assert_eq!(parse_threads("2.5"), None);
        assert_eq!(parse_threads(""), None);
    }

    #[test]
    fn workers_force_serial_nested_dispatch() {
        with_threads(4, || {
            for_each_row_block(&mut [0u8; 8], 1, MIN_PAR_WORK, |_, _| {
                assert_eq!(planned_chunks(8, MIN_PAR_WORK), 1, "nested stays serial");
            });
        });
    }
}
