//! # uvd-tensor
//!
//! Minimal dense-matrix tensor library with tape-based reverse-mode autodiff,
//! purpose-built for the graph neural network workloads of the CMSF urban
//! village detection reproduction.
//!
//! The crate provides:
//! * [`Matrix`] — dense row-major `f32` matrices and the kernels used by the
//!   tape (matmul with free transposition, softmax, gather, ...).
//! * [`Graph`] — a define-by-run autodiff tape with graph-learning primitives:
//!   per-destination edge softmax, attention aggregation, constant sparse
//!   matmul, the MS-Gate `gated_matmul`, and im2col convolution. Since the
//!   Plan/Workspace split it is a recording facade over [`Plan`] (replayable
//!   op topology) + [`Workspace`] (reusable buffer arena): record the tape
//!   once, then [`Graph::replay`] each epoch with zero steady-state heap
//!   allocation; [`Graph::inference`] gives a no-grad forward-only mode.
//! * [`ParamRef`] / [`ParamSet`] / [`Adam`] — trainable parameters and the
//!   Adam optimizer with exponential learning-rate decay.
//! * [`Csr`] / [`EdgeIndex`] — the sparse structures shared with the URG.
//! * [`init`] — deterministic seeded initialization helpers.
//! * [`par`] — the parallel runtime behind the hot kernels: work-size
//!   thresholded dispatch, `UVD_THREADS` configuration, and deterministic
//!   row-partitioned execution.
//! * [`fastmath`] — the opt-in `UVD_FAST_MATH=1` FMA tier: same kernels with
//!   fused multiply-add and wider accumulators, rounding-level differences
//!   only (the bitwise-deterministic tier stays the default and the oracle).
//!
//! ```
//! use uvd_tensor::{Graph, Matrix, ParamRef, ParamSet, Adam};
//!
//! // Fit y = 2x with one weight: record the tape once, replay per epoch.
//! let w = ParamRef::new("w", Matrix::filled(1, 1, 0.0));
//! let mut set = ParamSet::new();
//! set.track(w.clone());
//! let mut opt = Adam::new(0.1);
//! let mut g = Graph::new();
//! let wv = g.param(&w);
//! let x = g.constant(Matrix::filled(1, 1, 3.0));
//! let y = g.matmul(x, wv);
//! let target = g.constant(Matrix::filled(1, 1, 6.0));
//! let loss = g.mse(y, target);
//! for epoch in 0..300 {
//!     if epoch > 0 {
//!         g.replay(); // refresh params, recompute in place — no allocation
//!     }
//!     g.backward(loss);
//!     g.write_grads();
//!     opt.step(&set);
//! }
//! assert!((w.value().get(0, 0) - 2.0).abs() < 1e-2);
//! ```

pub mod conv;
pub mod embed;
pub mod fastmath;
mod gemm;
pub mod graph;
pub mod init;
pub mod legacy;
pub mod matrix;
pub mod par;
pub mod param;
pub mod persist;
pub mod plan;
pub mod sample;
pub mod sparse;

pub use conv::{ConvMeta, PoolMeta};
pub use embed::{EmbeddingMeta, EmbeddingStore};
pub use graph::{CsrPair, Graph, NodeId};
pub use init::{seeded_rng, Rng64};
pub use matrix::Matrix;
pub use param::{Adam, ParamRef, ParamSet};
pub use persist::MatrixStore;
pub use plan::{FusedAct, Plan, Workspace};
pub use sample::{NeighborSampler, SampleError};
pub use sparse::{Csr, EdgeIndex};
