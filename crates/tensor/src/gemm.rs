//! Packed register-tiled GEMM microkernels behind the dense matmul family.
//!
//! Layout (DESIGN.md §9): both operands are repacked into contiguous panels —
//! the LHS into row panels of height `MR` stored k-major (`a[panel][p][i]`),
//! the RHS into column panels of width `NR` stored k-major (`b[panel][p][j]`)
//! — then an `MR×NR` register-tile microkernel sweeps the reduction dimension
//! with one scalar accumulator chain per output element. Packing makes the
//! microkernel's loads contiguous and unit-stride regardless of the logical
//! transpose (`nn`/`tn`/`nt` differ only in how panels are gathered), which
//! is what lets the auto-vectorizer turn the inner loop into broadcast ×
//! mul + add vector code.
//!
//! **Bit-identity invariant**: every output element is reduced by a single
//! accumulator in ascending-`k` order — the same chain as the pre-packing
//! naive kernels (frozen in [`crate::legacy`]) — and the `KC` blocking
//! read-modify-writes the output between blocks, which extends the chain
//! rather than splitting it. Tile shape (`MR`/`NR`) and thread partition only
//! change *which* elements a loop iteration touches, never the order within
//! one element's chain, so serial ≡ parallel ≡ legacy, bit for bit, on every
//! ISA tier. The SIMD tiers deliberately enable only plain vector math
//! (`avx2` / `avx512f`), never `fma`: a fused multiply-add would skip the
//! intermediate rounding and break the chain equality.
//!
//! **Fast-math tier** (`UVD_FAST_MATH=1`, see [`crate::fastmath`]): the same
//! driver dispatches FMA variants of the microkernels instead. Each
//! accumulation step fuses mul + add into one rounding, so results differ
//! from the deterministic tier at rounding level only — the ascending-`k`
//! chain per element is unchanged, which keeps the fast tier itself
//! thread-count deterministic. Tile shapes (and therefore pack layouts) are
//! shared between tiers, so cached `PackedB` buffers stay valid when the
//! tier is toggled mid-process.
//!
//! Padding rows/columns of a partial tile are packed as `0.0` and the
//! microkernel never stores lanes `>= m_valid`/`n_valid`, so padded lanes
//! cannot leak (they may compute `0 * inf = NaN` internally, which is why
//! they must not be written back).

use crate::par;
use std::cell::RefCell;
use std::sync::OnceLock;

/// Reduction-dimension block: bounds the panel slices the microkernel streams
/// (`KC*NR` + `KC*MR` floats ≈ 28 KiB at the widest tile) to L1-friendly
/// sizes. Blocking over `k` preserves per-element chains because the partial
/// sums are read back from `out` (see module docs).
const KC: usize = 256;

/// Pack-buffer stamp: never packed / explicitly invalidated.
pub(crate) const NEVER: u64 = 0;
/// Pack-buffer stamp: packed from a constant leaf, valid until invalidated.
pub(crate) const PERSISTENT: u64 = u64::MAX;

/// A cached RHS panel pack owned by a `Workspace` slot. `stamp` encodes
/// validity: [`PERSISTENT`] for constant operands, `epoch + 1` for operands
/// repacked once per replay, [`NEVER`] when stale.
#[derive(Default)]
pub(crate) struct PackedB {
    pub(crate) buf: Vec<f32>,
    pub(crate) stamp: u64,
}

/// Instruction-set tier picked once per process. The choice affects tile
/// shape (register budget) but not results: all tiers produce bit-identical
/// output (see module docs).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Isa {
    Scalar,
    #[cfg(target_arch = "x86_64")]
    Avx2,
    #[cfg(target_arch = "x86_64")]
    Avx512,
}

/// A tier request parsed from `UVD_GEMM_ISA`, before capability clamping.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum IsaReq {
    Scalar,
    Avx2,
    Avx512,
}

/// Parse a `UVD_GEMM_ISA` value. Accepted: `scalar`, `avx2`, `avx512`
/// (lowercase, surrounding whitespace ignored). Anything else is rejected.
pub(crate) fn parse_isa(s: &str) -> Option<IsaReq> {
    match s.trim() {
        "scalar" => Some(IsaReq::Scalar),
        "avx2" => Some(IsaReq::Avx2),
        "avx512" => Some(IsaReq::Avx512),
        _ => None,
    }
}

pub(crate) fn isa() -> Isa {
    static ISA: OnceLock<Isa> = OnceLock::new();
    *ISA.get_or_init(|| {
        // Diagnostic override (`UVD_GEMM_ISA=scalar|avx2|avx512`): lets tests
        // and benches pin a tier below the detected one. Requests the CPU
        // cannot honor fall through to detection; unrecognized values warn
        // once and fall back to detection instead of being silently ignored.
        let forced = match std::env::var("UVD_GEMM_ISA") {
            Err(_) => None,
            Ok(v) => {
                let req = parse_isa(&v);
                if req.is_none() {
                    uvd_obs::warn_once(
                        "UVD_GEMM_ISA",
                        &format!(
                            "UVD_GEMM_ISA: unrecognized value '{}' (accepted: \
                             scalar, avx2, avx512); using detected ISA",
                            v.trim()
                        ),
                    );
                }
                req
            }
        };
        #[cfg(target_arch = "x86_64")]
        {
            if forced == Some(IsaReq::Scalar) {
                return Isa::Scalar;
            }
            let avx512 = std::arch::is_x86_feature_detected!("avx512f");
            let avx2 = std::arch::is_x86_feature_detected!("avx2");
            if avx512 && forced != Some(IsaReq::Avx2) {
                return Isa::Avx512;
            }
            if avx2 {
                return Isa::Avx2;
            }
        }
        let _ = forced;
        Isa::Scalar
    })
}

/// True when the CPU can execute fused multiply-add. The fast-math tier
/// falls back to the deterministic kernels without it (`f32::mul_add`
/// lowers to a libm call on non-FMA hardware — slower, not faster).
pub(crate) fn fma_available() -> bool {
    static FMA: OnceLock<bool> = OnceLock::new();
    *FMA.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            std::arch::is_x86_feature_detected!("fma")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    })
}

/// The fast-math flag a kernel entry should thread into its workers: the
/// tier is requested (env or scope override) *and* the hardware can honor
/// it. Resolved on the calling thread so `with_fast_math` scopes cover the
/// parallel portion of a kernel.
pub(crate) fn fast_math_active() -> bool {
    crate::fastmath::enabled() && fma_available()
}

/// Microkernel tile shape `(MR, NR)` for the active ISA tier. Wide tiles need
/// the 16/32-register vector files; the scalar tier stays small to avoid
/// spills.
pub(crate) fn tiles() -> (usize, usize) {
    match isa() {
        Isa::Scalar => (4, 8),
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => (6, 16),
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => (12, 16),
    }
}

/// Length of the packed RHS buffer for a `k×n` operand (zero-padded to whole
/// `NR` panels).
pub(crate) fn packed_b_len(k: usize, n: usize) -> usize {
    let (_, nr) = tiles();
    n.div_ceil(nr) * nr * k
}

/// Pack the RHS into k-major column panels of width `NR`. `b_trans` selects
/// the logical layout: `false` reads a `k×n` row-major operand, `true` reads
/// an `n×k` operand as its transpose (the `nt` kernels). Partial panels are
/// zero-padded. The buffer is cleared and resized, so steady-state calls
/// reuse capacity without allocating.
pub(crate) fn pack_b_into(b: &[f32], k: usize, n: usize, b_trans: bool, buf: &mut Vec<f32>) {
    let (_, nr) = tiles();
    let panels = n.div_ceil(nr);
    let needed = panels * nr * k;
    if buf.len() != needed {
        buf.clear();
        buf.resize(needed, 0.0);
    } else if !n.is_multiple_of(nr) {
        // Same-size repack: full panels are overwritten completely, only the
        // last (partial) panel has padding lanes that must be re-zeroed so
        // stale values never leak into them.
        buf[(panels - 1) * nr * k..].fill(0.0);
    }
    for t in 0..panels {
        let j0 = t * nr;
        let jw = (n - j0).min(nr);
        let panel = &mut buf[t * nr * k..(t + 1) * nr * k];
        if b_trans {
            for j in 0..jw {
                let row = &b[(j0 + j) * k..(j0 + j + 1) * k];
                for (p, &v) in row.iter().enumerate() {
                    panel[p * nr + j] = v;
                }
            }
        } else {
            for p in 0..k {
                let src = &b[p * n + j0..p * n + j0 + jw];
                panel[p * nr..p * nr + jw].copy_from_slice(src);
            }
        }
    }
}

/// Pack the LHS into k-major row panels of height `MR`. `a_trans=false` reads
/// an `m×k` row-major operand; `true` reads a `k×m` operand as its transpose
/// (the `tn` kernels). Partial panels are zero-padded.
pub(crate) fn pack_a_into(a: &[f32], m: usize, k: usize, a_trans: bool, buf: &mut Vec<f32>) {
    let (mr, _) = tiles();
    let panels = m.div_ceil(mr);
    let needed = panels * mr * k;
    if buf.len() != needed {
        buf.clear();
        buf.resize(needed, 0.0);
    } else if !m.is_multiple_of(mr) {
        // See `pack_b_into`: only the partial tail panel needs re-zeroing.
        buf[(panels - 1) * mr * k..].fill(0.0);
    }
    for t in 0..panels {
        let i0 = t * mr;
        let iw = (m - i0).min(mr);
        let panel = &mut buf[t * mr * k..(t + 1) * mr * k];
        if a_trans {
            for p in 0..k {
                let row = &a[p * m..(p + 1) * m];
                for i in 0..iw {
                    panel[p * mr + i] = row[i0 + i];
                }
            }
        } else {
            for i in 0..iw {
                let row = &a[(i0 + i) * k..(i0 + i + 1) * k];
                for (p, &v) in row.iter().enumerate() {
                    panel[p * mr + i] = v;
                }
            }
        }
    }
}

/// Register-tile microkernel: a full `MR×NR` accumulator tile swept over `kc`
/// packed reduction steps. `accumulate=true` seeds each accumulator from the
/// existing output element (continuing its chain); `false` starts the chain
/// at `0.0` (the overwrite kernels). Only `mv×nv` lanes are stored.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn kern_body<const MR: usize, const NR: usize>(
    a_panel: &[f32],
    b_panel: &[f32],
    kc: usize,
    out: &mut [f32],
    ldc: usize,
    mv: usize,
    nv: usize,
    accumulate: bool,
) {
    let mut acc = [[0.0f32; NR]; MR];
    if accumulate {
        for (i, acc_row) in acc.iter_mut().enumerate().take(mv) {
            let row = &out[i * ldc..i * ldc + nv];
            acc_row[..nv].copy_from_slice(row);
        }
    }
    for p in 0..kc {
        let a: &[f32; MR] = a_panel[p * MR..p * MR + MR].try_into().expect("panel tile");
        let b: &[f32; NR] = b_panel[p * NR..p * NR + NR].try_into().expect("panel tile");
        for (i, acc_row) in acc.iter_mut().enumerate() {
            let av = a[i];
            for (j, acc_el) in acc_row.iter_mut().enumerate() {
                // Separate mul + add, never fused: contraction would change
                // rounding and break bit-identity with the naive kernels.
                *acc_el += av * b[j];
            }
        }
    }
    for (i, acc_row) in acc.iter().enumerate().take(mv) {
        let row = &mut out[i * ldc..i * ldc + nv];
        row.copy_from_slice(&acc_row[..nv]);
    }
}

/// Fast-math twin of [`kern_body`]: each accumulation step is a fused
/// multiply-add (`mul_add`), one rounding instead of two. Same tile walk,
/// same ascending-`k` chain — only the per-step rounding differs.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn kern_body_fma<const MR: usize, const NR: usize>(
    a_panel: &[f32],
    b_panel: &[f32],
    kc: usize,
    out: &mut [f32],
    ldc: usize,
    mv: usize,
    nv: usize,
    accumulate: bool,
) {
    let mut acc = [[0.0f32; NR]; MR];
    if accumulate {
        for (i, acc_row) in acc.iter_mut().enumerate().take(mv) {
            let row = &out[i * ldc..i * ldc + nv];
            acc_row[..nv].copy_from_slice(row);
        }
    }
    for p in 0..kc {
        let a: &[f32; MR] = a_panel[p * MR..p * MR + MR].try_into().expect("panel tile");
        let b: &[f32; NR] = b_panel[p * NR..p * NR + NR].try_into().expect("panel tile");
        for (i, acc_row) in acc.iter_mut().enumerate() {
            let av = a[i];
            for (j, acc_el) in acc_row.iter_mut().enumerate() {
                *acc_el = av.mul_add(b[j], *acc_el);
            }
        }
    }
    for (i, acc_row) in acc.iter().enumerate().take(mv) {
        let row = &mut out[i * ldc..i * ldc + nv];
        row.copy_from_slice(&acc_row[..nv]);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn kern_avx2(
    a_panel: &[f32],
    b_panel: &[f32],
    kc: usize,
    out: &mut [f32],
    ldc: usize,
    mv: usize,
    nv: usize,
    accumulate: bool,
) {
    kern_body::<6, 16>(a_panel, b_panel, kc, out, ldc, mv, nv, accumulate);
}

/// Fast-math AVX2 microkernel: with `fma` enabled the `mul_add` in the
/// generic body lowers to `vfmadd` and the auto-vectorizer keeps the 6×16
/// tile in ymm registers.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn kern_avx2_fma(
    a_panel: &[f32],
    b_panel: &[f32],
    kc: usize,
    out: &mut [f32],
    ldc: usize,
    mv: usize,
    nv: usize,
    accumulate: bool,
) {
    kern_body_fma::<6, 16>(a_panel, b_panel, kc, out, ldc, mv, nv, accumulate);
}

/// AVX-512 microkernel, written with explicit 512-bit intrinsics: the
/// auto-vectorizer will not form zmm accumulators from the generic body (it
/// sticks to 256-bit lanes and spills the 12×16 tile). Each accumulator row
/// is one zmm register; `_mm512_mul_ps` + `_mm512_add_ps` are deliberately
/// separate instructions (no FMA) so the rounding of every accumulation step
/// matches the scalar chain bit for bit.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
unsafe fn kern_avx512(
    a_panel: &[f32],
    b_panel: &[f32],
    kc: usize,
    out: &mut [f32],
    ldc: usize,
    mv: usize,
    nv: usize,
    accumulate: bool,
) {
    use std::arch::x86_64::*;
    const MR: usize = 12;
    debug_assert!((1..=16).contains(&nv) && (1..=MR).contains(&mv));
    debug_assert!(a_panel.len() >= kc * MR && b_panel.len() >= kc * 16);
    debug_assert!(out.len() >= (mv - 1) * ldc + nv);
    // SAFETY: all lane masks are `nv` wide and row offsets stay below
    // `(mv-1)*ldc + nv`, which the debug asserts above pin inside `out`;
    // panel reads are full tiles within the packed buffers.
    unsafe {
        let mask: __mmask16 = ((1u32 << nv) - 1) as __mmask16;
        let mut acc = [_mm512_setzero_ps(); MR];
        if accumulate {
            for (i, a) in acc.iter_mut().enumerate().take(mv) {
                *a = _mm512_maskz_loadu_ps(mask, out.as_ptr().add(i * ldc));
            }
        }
        let mut ap = a_panel.as_ptr();
        let mut bp = b_panel.as_ptr();
        for _ in 0..kc {
            let b = _mm512_loadu_ps(bp);
            for (i, a) in acc.iter_mut().enumerate() {
                let av = _mm512_set1_ps(*ap.add(i));
                *a = _mm512_add_ps(*a, _mm512_mul_ps(av, b));
            }
            ap = ap.add(MR);
            bp = bp.add(16);
        }
        for (i, a) in acc.iter().enumerate().take(mv) {
            _mm512_mask_storeu_ps(out.as_mut_ptr().add(i * ldc), mask, *a);
        }
    }
}

/// Fast-math AVX-512 microkernel: identical register walk to [`kern_avx512`]
/// with the mul/add pair fused into `_mm512_fmadd_ps`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn kern_avx512_fma(
    a_panel: &[f32],
    b_panel: &[f32],
    kc: usize,
    out: &mut [f32],
    ldc: usize,
    mv: usize,
    nv: usize,
    accumulate: bool,
) {
    use std::arch::x86_64::*;
    const MR: usize = 12;
    debug_assert!((1..=16).contains(&nv) && (1..=MR).contains(&mv));
    debug_assert!(a_panel.len() >= kc * MR && b_panel.len() >= kc * 16);
    debug_assert!(out.len() >= (mv - 1) * ldc + nv);
    // SAFETY: same bounds argument as `kern_avx512` — masks are `nv` wide,
    // row offsets stay below `(mv-1)*ldc + nv`, panel reads are full tiles.
    unsafe {
        let mask: __mmask16 = ((1u32 << nv) - 1) as __mmask16;
        let mut acc = [_mm512_setzero_ps(); MR];
        if accumulate {
            for (i, a) in acc.iter_mut().enumerate().take(mv) {
                *a = _mm512_maskz_loadu_ps(mask, out.as_ptr().add(i * ldc));
            }
        }
        let mut ap = a_panel.as_ptr();
        let mut bp = b_panel.as_ptr();
        for _ in 0..kc {
            let b = _mm512_loadu_ps(bp);
            for (i, a) in acc.iter_mut().enumerate() {
                let av = _mm512_set1_ps(*ap.add(i));
                *a = _mm512_fmadd_ps(av, b, *a);
            }
            ap = ap.add(MR);
            bp = bp.add(16);
        }
        for (i, a) in acc.iter().enumerate().take(mv) {
            _mm512_mask_storeu_ps(out.as_mut_ptr().add(i * ldc), mask, *a);
        }
    }
}

#[allow(clippy::too_many_arguments)]
#[inline]
fn run_kern(
    is: Isa,
    fm: bool,
    a_panel: &[f32],
    b_panel: &[f32],
    kc: usize,
    out: &mut [f32],
    ldc: usize,
    mv: usize,
    nv: usize,
    accumulate: bool,
) {
    match is {
        // The scalar tier has no FMA hardware guarantee; fast-math requests
        // fall back to the deterministic chain (see `fma_available`).
        Isa::Scalar => kern_body::<4, 8>(a_panel, b_panel, kc, out, ldc, mv, nv, accumulate),
        // SAFETY: `isa()` only returns these tiers after runtime detection of
        // the matching CPU feature, and `fm` is only true when `fma` was
        // detected (`fast_math_active`).
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe {
            if fm {
                kern_avx2_fma(a_panel, b_panel, kc, out, ldc, mv, nv, accumulate)
            } else {
                kern_avx2(a_panel, b_panel, kc, out, ldc, mv, nv, accumulate)
            }
        },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => unsafe {
            if fm {
                kern_avx512_fma(a_panel, b_panel, kc, out, ldc, mv, nv, accumulate)
            } else {
                kern_avx512(a_panel, b_panel, kc, out, ldc, mv, nv, accumulate)
            }
        },
    }
}

/// Drive the microkernel over fully packed operands. Output rows are
/// partitioned across threads in whole `MR`-row blocks (the workers read the
/// shared packed panels), so the per-element reduction chains are identical
/// at any thread count.
fn gemm_driver(
    a_pack: &[f32],
    b_pack: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    accumulate: bool,
) {
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        // Empty reduction: the product is all zeros. Accumulating kernels
        // leave the output untouched; overwriting kernels must store them.
        if !accumulate {
            out.fill(0.0);
        }
        return;
    }
    let is = isa();
    // Resolved here, on the calling thread, so a `with_fast_math` scope
    // reaches the workers (thread-locals don't cross the pool boundary).
    let fm = fast_math_active();
    let (mr, nr) = tiles();
    let n_blocks = n.div_ceil(nr);
    let row_blocks = m.div_ceil(mr);
    par::for_each_disjoint(
        out,
        row_blocks,
        m * k * n,
        |t| (t * mr).min(m) * n,
        |blocks, chunk| {
            let row0 = (blocks.start * mr).min(m);
            for t in blocks {
                let i0 = t * mr;
                let mv = (m - i0).min(mr);
                let out_block = &mut chunk[(i0 - row0) * n..(i0 - row0) * n + mv * n];
                let a_panel = &a_pack[t * mr * k..(t + 1) * mr * k];
                let mut kb = 0;
                while kb < k {
                    let kc = (k - kb).min(KC);
                    let a_sl = &a_panel[kb * mr..(kb + kc) * mr];
                    let cont = accumulate || kb > 0;
                    for jb in 0..n_blocks {
                        let j0 = jb * nr;
                        let nv = (n - j0).min(nr);
                        let b_sl = &b_pack[jb * nr * k + kb * nr..jb * nr * k + (kb + kc) * nr];
                        run_kern(
                            is,
                            fm,
                            a_sl,
                            b_sl,
                            kc,
                            &mut out_block[j0..],
                            n,
                            mv,
                            nv,
                            cont,
                        );
                    }
                    kb += kc;
                }
            }
        },
    );
}

thread_local! {
    /// Per-thread pack scratch for kernels without a cached RHS pack (direct
    /// `Matrix` calls and the backward kernels). Grows once, then steady-state
    /// calls reuse capacity.
    static PACK_SCRATCH: RefCell<(Vec<f32>, Vec<f32>)> =
        const { RefCell::new((Vec::new(), Vec::new())) };
}

/// General entry: pack both operands into thread-local scratch, then run the
/// driver. `m×k (op A) · k×n (op B)` with the transposes selecting how the
/// operands are read (see [`pack_a_into`] / [`pack_b_into`]).
#[allow(clippy::too_many_arguments)]
pub(crate) fn matmul_into(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    a_trans: bool,
    b_trans: bool,
    accumulate: bool,
) {
    PACK_SCRATCH.with(|cell| {
        let mut guard = cell.borrow_mut();
        let (pa, pb) = &mut *guard;
        pack_a_into(a, m, k, a_trans, pa);
        pack_b_into(b, k, n, b_trans, pb);
        gemm_driver(pa, pb, out, m, k, n, accumulate);
    });
}

/// Entry with a caller-cached RHS pack (a `Workspace` pack slot): only the
/// LHS is packed per call.
#[allow(clippy::too_many_arguments)]
pub(crate) fn matmul_prepacked_b(
    a: &[f32],
    a_trans: bool,
    b_pack: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    accumulate: bool,
) {
    debug_assert_eq!(b_pack.len(), packed_b_len(k, n), "stale RHS pack");
    PACK_SCRATCH.with(|cell| {
        let mut guard = cell.borrow_mut();
        let (pa, _) = &mut *guard;
        pack_a_into(a, m, k, a_trans, pa);
        gemm_driver(pa, b_pack, out, m, k, n, accumulate);
    });
}

/// Entry with a caller-cached LHS pack (conv2d packs its kernel once per
/// batch): only the RHS is packed per call.
#[allow(clippy::too_many_arguments)]
pub(crate) fn matmul_prepacked_a(
    a_pack: &[f32],
    b: &[f32],
    b_trans: bool,
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    accumulate: bool,
) {
    PACK_SCRATCH.with(|cell| {
        let mut guard = cell.borrow_mut();
        let (_, pb) = &mut *guard;
        pack_b_into(b, k, n, b_trans, pb);
        gemm_driver(a_pack, pb, out, m, k, n, accumulate);
    });
}

#[cfg(test)]
mod tests {
    // Exact float equality is intended: these tests assert bit-reproducible
    // kernels, not tolerances.
    #![allow(clippy::float_cmp)]

    use super::*;

    fn naive_nn(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                let av = a[i * k + p];
                for j in 0..n {
                    out[i * n + j] += av * b[p * n + j];
                }
            }
        }
        out
    }

    fn fill(len: usize, seed: u32) -> Vec<f32> {
        let mut rng = crate::init::seeded_rng(seed as u64);
        (0..len).map(|_| crate::init::normal(&mut rng)).collect()
    }

    #[test]
    fn packed_matches_naive_irregular_shapes() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (1, 7, 1),
            (5, 3, 2),
            (13, 17, 9),
            (33, 70, 31),
            (6, 16, 16),
            (12, 300, 17), // crosses the KC boundary
        ] {
            let a = fill(m * k, 1);
            let b = fill(k * n, 2);
            let mut out = vec![0.0f32; m * n];
            matmul_into(&a, &b, &mut out, m, k, n, false, false, true);
            assert_eq!(out, naive_nn(&a, &b, m, k, n), "shape {m}x{k}x{n}");
        }
    }

    #[test]
    fn k_zero_yields_zeros_and_accumulate_preserves() {
        let (m, n) = (3, 4);
        let mut out = vec![7.0f32; m * n];
        // Overwrite semantics: k = 0 must store zeros.
        matmul_into(&[], &[], &mut out, m, 0, n, false, true, false);
        assert!(out.iter().all(|&x| x == 0.0));
        // Accumulate semantics: k = 0 adds nothing.
        let mut out = vec![7.0f32; m * n];
        matmul_into(&[], &[], &mut out, m, 0, n, false, false, true);
        assert!(out.iter().all(|&x| x == 7.0));
    }

    #[test]
    fn isa_env_parser_accepts_known_tiers_only() {
        assert_eq!(parse_isa("scalar"), Some(IsaReq::Scalar));
        assert_eq!(parse_isa("avx2"), Some(IsaReq::Avx2));
        assert_eq!(parse_isa(" avx512 "), Some(IsaReq::Avx512));
        assert_eq!(parse_isa("AVX2"), None, "values are lowercase");
        assert_eq!(parse_isa("sse2"), None);
        assert_eq!(parse_isa("avx-512"), None);
        assert_eq!(parse_isa(""), None);
    }

    #[test]
    fn fast_math_stays_within_rounding_of_deterministic() {
        let (m, k, n) = (13, 300, 17);
        let a = fill(m * k, 3);
        let b = fill(k * n, 4);
        let mut det = vec![0.0f32; m * n];
        matmul_into(&a, &b, &mut det, m, k, n, false, false, true);
        let mut fm = vec![0.0f32; m * n];
        crate::fastmath::with_fast_math(true, || {
            matmul_into(&a, &b, &mut fm, m, k, n, false, false, true);
        });
        for (d, f) in det.iter().zip(fm.iter()) {
            let err = (d - f).abs() / d.abs().max(1.0);
            assert!(err < 1e-5, "det {d} vs fast {f}");
        }
    }

    #[test]
    fn empty_output_shapes_are_noops() {
        let mut out: Vec<f32> = vec![];
        matmul_into(&[], &[1.0, 2.0], &mut out, 0, 2, 1, false, false, true);
        matmul_into(&[1.0, 2.0], &[], &mut out, 1, 2, 0, false, false, true);
    }

    #[test]
    fn padded_lanes_never_leak_non_finite() {
        // A non-finite operand must only affect the elements it really
        // contributes to. With m = n = 1 every padding lane of the tile
        // multiplies 0.0 * inf = NaN internally; none of it may be stored.
        let a = vec![2.0f32];
        let b = vec![f32::INFINITY];
        let mut out = vec![0.0f32; 1];
        matmul_into(&a, &b, &mut out, 1, 1, 1, false, false, true);
        assert_eq!(out[0], f32::INFINITY);
    }

    #[test]
    #[ignore = "manual perf probe: cargo test -p uvd-tensor --release -- --ignored probe --nocapture"]
    fn probe_matmul_gflops() {
        let n = 256;
        let a = fill(n * n, 1);
        let b = fill(n * n, 2);
        let mut out = vec![0.0f32; n * n];
        let mut best = f64::INFINITY;
        for _ in 0..15 {
            out.fill(0.0);
            let t = std::time::Instant::now();
            matmul_into(&a, &b, &mut out, n, n, n, false, false, true);
            best = best.min(t.elapsed().as_secs_f64());
        }
        let gflops = 2.0 * (n * n * n) as f64 / best / 1e9;
        println!("matmul_{n}: {:.3} ms  {:.1} GFLOP/s", best * 1e3, gflops);
    }
}
