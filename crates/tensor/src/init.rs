//! Seeded random number helpers and weight initializers.
//!
//! Everything in the workspace is deterministic given a `u64` seed; this
//! module centralizes the RNG type so experiments are reproducible.

use crate::matrix::Matrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The workspace-wide RNG type.
pub type Rng64 = SmallRng;

/// Deterministic RNG from a seed.
pub fn seeded_rng(seed: u64) -> Rng64 {
    SmallRng::seed_from_u64(seed)
}

/// Derive a sub-seed for an independent stream (e.g. per fold / per run).
/// Uses SplitMix64 so nearby seeds give unrelated streams.
pub fn derive_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Standard normal sample via Box–Muller (rand 0.8 without rand_distr).
pub fn normal(rng: &mut Rng64) -> f32 {
    loop {
        let u1: f32 = rng.gen::<f32>();
        let u2: f32 = rng.gen::<f32>();
        if u1 > 1e-12 {
            return (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos();
        }
    }
}

/// Normal sample with mean/std.
pub fn normal_ms(rng: &mut Rng64, mean: f32, std: f32) -> f32 {
    mean + std * normal(rng)
}

/// Glorot/Xavier uniform initializer for a `rows×cols` weight matrix.
pub fn glorot_uniform(rows: usize, cols: usize, rng: &mut Rng64) -> Matrix {
    let limit = (6.0 / (rows + cols) as f32).sqrt();
    let data = (0..rows * cols)
        .map(|_| rng.gen_range(-limit..limit))
        .collect();
    Matrix::from_vec(rows, cols, data)
}

/// He (Kaiming) normal initializer, suited to ReLU-family activations.
pub fn he_normal(rows: usize, cols: usize, rng: &mut Rng64) -> Matrix {
    let std = (2.0 / rows as f32).sqrt();
    let data = (0..rows * cols).map(|_| std * normal(rng)).collect();
    Matrix::from_vec(rows, cols, data)
}

/// Matrix with i.i.d. N(mean, std) entries.
pub fn normal_matrix(rows: usize, cols: usize, mean: f32, std: f32, rng: &mut Rng64) -> Matrix {
    let data = (0..rows * cols)
        .map(|_| normal_ms(rng, mean, std))
        .collect();
    Matrix::from_vec(rows, cols, data)
}

/// Matrix with i.i.d. U(lo, hi) entries.
pub fn uniform_matrix(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut Rng64) -> Matrix {
    let data = (0..rows * cols).map(|_| rng.gen_range(lo..hi)).collect();
    Matrix::from_vec(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let a = glorot_uniform(4, 4, &mut seeded_rng(7));
        let b = glorot_uniform(4, 4, &mut seeded_rng(7));
        assert_eq!(a, b);
    }

    #[test]
    fn derive_seed_changes_stream() {
        assert_ne!(derive_seed(1, 0), derive_seed(1, 1));
        assert_eq!(derive_seed(1, 5), derive_seed(1, 5));
    }

    #[test]
    fn normal_moments_roughly_standard() {
        let mut rng = seeded_rng(42);
        let n = 20_000;
        let xs: Vec<f32> = (0..n).map(|_| normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f32>() / n as f32;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn glorot_within_limit() {
        let m = glorot_uniform(10, 20, &mut seeded_rng(3));
        let limit = (6.0f32 / 30.0).sqrt();
        assert!(m.as_slice().iter().all(|&x| x.abs() <= limit));
    }
}
