//! The opt-in fast-math tier (`UVD_FAST_MATH=1`).
//!
//! The default numeric contract of every kernel in this crate is **bitwise
//! determinism**: one accumulator chain per output element, ascending-`k`,
//! separate mul + add (DESIGN.md §"Determinism tiers"). That contract is what
//! makes `legacy` an exact oracle and lets the differential tests assert
//! `==` on floats. It also leaves throughput on the table: fused
//! multiply-add issues one instruction where the deterministic tier needs
//! two, and it skips an intermediate rounding.
//!
//! Setting `UVD_FAST_MATH=1` (or entering [`with_fast_math`]) switches the
//! dense/sparse kernel dispatch to FMA microkernels with wider accumulator
//! panels. Results then differ from the deterministic tier by rounding only
//! — validated by tolerance-based differential tests, not bitwise ones — but
//! remain **run-to-run and thread-count deterministic**: the fast tier keeps
//! the fixed ascending-`k` chain per element, it just evaluates each step
//! with fused rounding.
//!
//! The flag is resolved once per kernel invocation *on the calling thread*
//! and passed down into worker closures, so a [`with_fast_math`] scope
//! applies to the parallel portion of a kernel even though workers run on
//! pool threads. On CPUs without FMA the fast tier silently falls back to
//! the deterministic kernels (there is nothing faster to dispatch to).

use std::cell::Cell;
use std::sync::OnceLock;

/// Parse a `UVD_FAST_MATH` value. Accepted: `0` (deterministic, the default)
/// and `1` (fast-math), surrounding whitespace ignored. Anything else is
/// rejected.
pub(crate) fn parse_fast_math(s: &str) -> Option<bool> {
    match s.trim() {
        "0" => Some(false),
        "1" => Some(true),
        _ => None,
    }
}

fn env_fast_math() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| match std::env::var("UVD_FAST_MATH") {
        Err(_) => false,
        Ok(v) => parse_fast_math(&v).unwrap_or_else(|| {
            uvd_obs::warn_once(
                "UVD_FAST_MATH",
                &format!(
                    "UVD_FAST_MATH: unrecognized value '{}' (accepted: 0, 1); \
                     staying on the deterministic tier",
                    v.trim()
                ),
            );
            false
        }),
    })
}

thread_local! {
    /// Per-thread override of the configured tier (None = use env).
    static OVERRIDE: Cell<Option<bool>> = const { Cell::new(None) };
}

/// True when the fast-math tier is requested on this thread: the
/// [`with_fast_math`] override if set, else `UVD_FAST_MATH`. Kernels read
/// this once at entry and thread the answer into their worker closures.
pub fn enabled() -> bool {
    OVERRIDE.with(|o| o.get()).unwrap_or_else(env_fast_math)
}

/// Run `f` with the fast-math tier forced on or off on this thread,
/// regardless of `UVD_FAST_MATH`. Used by the tolerance differential tests
/// and by perfsnap's deterministic-vs-fast-math columns to measure both
/// tiers in one process.
pub fn with_fast_math<R>(on: bool, f: impl FnOnce() -> R) -> R {
    let prev = OVERRIDE.with(|o| o.replace(Some(on)));
    let r = f();
    OVERRIDE.with(|o| o.set(prev));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_accepts_zero_and_one_only() {
        assert_eq!(parse_fast_math("0"), Some(false));
        assert_eq!(parse_fast_math("1"), Some(true));
        assert_eq!(parse_fast_math(" 1 "), Some(true));
        assert_eq!(parse_fast_math("true"), None);
        assert_eq!(parse_fast_math("on"), None);
        assert_eq!(parse_fast_math("2"), None);
        assert_eq!(parse_fast_math(""), None);
        assert_eq!(parse_fast_math("yes"), None);
    }

    #[test]
    fn override_scopes_nest_and_restore() {
        let ambient = enabled();
        with_fast_math(true, || {
            assert!(enabled());
            with_fast_math(false, || assert!(!enabled()));
            assert!(enabled());
        });
        assert_eq!(enabled(), ambient);
    }
}
