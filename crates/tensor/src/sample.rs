//! Deterministic seeded neighbor sampling for mini-batch graph training
//! (GraphSAGE-style, Hamilton et al. 2017).
//!
//! [`NeighborSampler::sample`] expands a seed set of destination nodes by
//! `hops` rounds of in-neighbor selection over an [`EdgeIndex`], capping
//! each node's expansion at `fanout` in-neighbors (0 = take all, i.e. the
//! exact k-hop closure). The returned node set is strictly ascending, which
//! is exactly the monotone-relabel precondition of
//! [`Csr::induced_subgraph`](crate::Csr::induced_subgraph) and
//! [`EdgeIndex::induced_subgraph`] — the combination keeps sampled forward
//! passes bit-comparable to full-graph slices (see the k-hop closure
//! property below).
//!
//! Determinism: the walk is a pure serial function of `(seed, graph,
//! seeds)`. Per-node selections draw from a sub-RNG seeded by
//! `derive_seed(derive_seed(seed, hop), node)`, so the result is
//! independent of thread count, iteration timing, and of which other
//! batches ran before — a requirement for record-once/replay-every-epoch
//! training and for reproducible runs.
//!
//! k-hop closure property: with `fanout == 0` the result is the full
//! `hops`-hop in-neighborhood closure of the seeds. Relabeled monotonically,
//! a `hops`-layer message-passing network evaluated on the induced subgraph
//! produces *bitwise* the same activations at the seed rows as the full
//! graph (every node at distance `d` from a seed has its complete
//! in-neighborhood present for the first `hops - d` layers, by induction).
//! With `fanout > 0` the forward pass is an approximation, validated by a
//! convergence contract rather than bit-equality — the same policy as the
//! `UVD_FAST_MATH` tier.

use crate::init::{derive_seed, seeded_rng};
use crate::sparse::EdgeIndex;
use rand::Rng;
use std::fmt;

/// Typed failure from [`NeighborSampler::sample`]. A long-lived process
/// (the `uvd-serve` scoring service) feeds request-supplied region ids into
/// the sampler; a bad id must surface as a recoverable error reply, not a
/// process-killing panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleError {
    /// A seed node id is `>= n_nodes` for the graph being sampled.
    SeedOutOfBounds { seed: u32, n_nodes: usize },
}

impl fmt::Display for SampleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SampleError::SeedOutOfBounds { seed, n_nodes } => {
                write!(f, "seed {seed} out of bounds for {n_nodes} nodes")
            }
        }
    }
}

impl std::error::Error for SampleError {}

/// Seeded, thread-count-invariant neighbor sampler.
#[derive(Clone, Copy, Debug)]
pub struct NeighborSampler {
    seed: u64,
    /// Max in-neighbors kept per node per hop; `0` means no cap (exact
    /// k-hop closure).
    fanout: usize,
    /// Number of expansion rounds — match the model's message-passing depth.
    hops: usize,
}

impl NeighborSampler {
    pub fn new(seed: u64, fanout: usize, hops: usize) -> Self {
        NeighborSampler { seed, fanout, hops }
    }

    pub fn fanout(&self) -> usize {
        self.fanout
    }

    pub fn hops(&self) -> usize {
        self.hops
    }

    /// Expand `seeds` by `hops` rounds of (possibly capped) in-neighbor
    /// selection. Returns the union of the seeds and every selected node,
    /// strictly ascending. Seeds may be unsorted and may repeat. An
    /// out-of-bounds seed yields [`SampleError::SeedOutOfBounds`] before any
    /// expansion work (the check runs over the whole seed slice first, so a
    /// failed call does no partial sampling).
    pub fn sample(&self, edges: &EdgeIndex, seeds: &[u32]) -> Result<Vec<u32>, SampleError> {
        let n = edges.n_nodes();
        if let Some(&s) = seeds.iter().find(|&&s| s as usize >= n) {
            return Err(SampleError::SeedOutOfBounds {
                seed: s,
                n_nodes: n,
            });
        }
        let mut visited = vec![false; n];
        let mut frontier: Vec<u32> = Vec::new();
        for &s in seeds {
            let si = s as usize;
            if !visited[si] {
                visited[si] = true;
                frontier.push(s);
            }
        }
        // Ascending frontier keeps the walk a pure function of the seed
        // *set* (not its order) and makes the expansion order reproducible.
        frontier.sort_unstable();
        let src = edges.src();
        for hop in 0..self.hops {
            let hop_seed = derive_seed(self.seed, hop as u64);
            let mut next: Vec<u32> = Vec::new();
            for &d in &frontier {
                let range = edges.incoming(d as usize);
                let deg = range.len();
                if self.fanout == 0 || deg <= self.fanout {
                    for eid in range {
                        let s = src[eid] as usize;
                        if !visited[s] {
                            visited[s] = true;
                            next.push(s as u32);
                        }
                    }
                } else {
                    // Partial Fisher–Yates over the edge-id range: the
                    // first `fanout` draws of a full shuffle, giving a
                    // uniform without-replacement selection in O(fanout).
                    let mut rng = seeded_rng(derive_seed(hop_seed, d as u64));
                    let mut ids: Vec<u32> = (range.start as u32..range.end as u32).collect();
                    for i in 0..self.fanout {
                        let j = rng.gen_range(i..deg);
                        ids.swap(i, j);
                        let s = src[ids[i] as usize] as usize;
                        if !visited[s] {
                            visited[s] = true;
                            next.push(s as u32);
                        }
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            next.sort_unstable();
            frontier = next;
        }
        let mut nodes: Vec<u32> = (0..n as u32).filter(|&i| visited[i as usize]).collect();
        nodes.shrink_to_fit();
        Ok(nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ring of `n` nodes with forward+backward+self edges.
    fn ring(n: u32) -> EdgeIndex {
        let mut pairs = Vec::new();
        for i in 0..n {
            pairs.push((i, i));
            pairs.push((i, (i + 1) % n));
            pairs.push(((i + 1) % n, i));
        }
        EdgeIndex::from_pairs(n as usize, pairs)
    }

    #[test]
    fn uncapped_sample_is_khop_closure() {
        let e = ring(10);
        let s = NeighborSampler::new(1, 0, 2);
        // 2-hop closure of node 0 on a ring: {8, 9, 0, 1, 2}.
        assert_eq!(s.sample(&e, &[0]).unwrap(), vec![0, 1, 2, 8, 9]);
    }

    #[test]
    fn out_of_bounds_seed_is_a_typed_error() {
        let e = ring(10);
        let s = NeighborSampler::new(1, 0, 2);
        assert_eq!(
            s.sample(&e, &[3, 10]),
            Err(SampleError::SeedOutOfBounds {
                seed: 10,
                n_nodes: 10
            })
        );
        // The error formats with both the id and the bound, and a good seed
        // set still samples after a failed call (no poisoned state).
        let err = s.sample(&e, &[u32::MAX]).unwrap_err();
        assert_eq!(
            err.to_string(),
            format!("seed {} out of bounds for 10 nodes", u32::MAX)
        );
        assert_eq!(s.sample(&e, &[0]).unwrap(), vec![0, 1, 2, 8, 9]);
    }

    #[test]
    fn sample_is_sorted_dedup_and_seed_stable() {
        let e = ring(50);
        let s = NeighborSampler::new(7, 2, 3);
        let a = s.sample(&e, &[3, 40, 3]).unwrap();
        let b = s.sample(&e, &[40, 3]).unwrap();
        assert_eq!(a, b, "pure function of the seed set");
        assert!(a.windows(2).all(|w| w[0] < w[1]), "strictly ascending");
        let c = NeighborSampler::new(8, 2, 3).sample(&e, &[3, 40]).unwrap();
        // Different sampler seed explores a (generally) different set on a
        // star-free graph with fanout caps; at minimum it stays valid.
        assert!(c.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn fanout_caps_expansion() {
        // Star: node 0 has 40 in-neighbors.
        let mut pairs: Vec<(u32, u32)> = (1..41).map(|i| (i, 0)).collect();
        pairs.push((0, 0));
        let e = EdgeIndex::from_pairs(41, pairs);
        let s = NeighborSampler::new(3, 5, 1);
        let got = s.sample(&e, &[0]).unwrap();
        assert_eq!(got.len(), 6, "seed + fanout selections, got {got:?}");
        assert!(got.contains(&0));
    }

    #[test]
    fn fanout_selection_is_uniformish_across_seeds() {
        let mut pairs: Vec<(u32, u32)> = (1..21).map(|i| (i, 0)).collect();
        pairs.push((0, 0));
        let e = EdgeIndex::from_pairs(21, pairs);
        let mut counts = [0u32; 21];
        for seed in 0..200 {
            for node in NeighborSampler::new(seed, 4, 1).sample(&e, &[0]).unwrap() {
                counts[node as usize] += 1;
            }
        }
        // Every neighbor should be picked by at least one of 200 seeds.
        assert!(counts[1..].iter().all(|&c| c > 0), "{counts:?}");
    }
}
