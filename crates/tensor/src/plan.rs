//! Replayable execution plan + reusable workspace for the autodiff tape.
//!
//! A [`Plan`] is the *topology* of a recorded tape: the op list, constant
//! attachments (CSR pairs, edge indices, gather index vectors, BCE
//! target/weight vectors) and parameter bindings. A [`Workspace`] is the
//! *storage*: one preallocated value buffer per node plus (lazily) one
//! gradient buffer per node, a `seen` bitmap and a shared accumulation
//! scratch. Build the plan once per (model, split), then replay it across
//! epochs: steady-state forward + backward touches no allocator.
//!
//! Invariants the whole module leans on:
//!
//! * **Tape order** — every op's inputs have a smaller node id than its
//!   output, so `values.split_at_mut(i)` yields all inputs (head) and the
//!   output (first of tail) without aliasing.
//! * **Single writer per buffer** — each node's value buffer is written only
//!   by its own op; each gradient buffer only through [`contribute`] /
//!   [`merge_owned`], which serialize accumulation.
//! * **Reduction order unchanged** — every in-place kernel reduces in exactly
//!   the order of the old allocate-per-op code (fresh-compute-into-zeroed
//!   buffer on first contribution, compute-into-zeroed-scratch-then-add on
//!   later ones), so a replayed epoch is bit-identical to a freshly recorded
//!   tape.
//! * **Needs-grad pruning is invisible to parameters** — a contribution is
//!   only skipped when its target has no parameter/variable leaf in its
//!   ancestry, so no pruned gradient could ever have reached a `ParamRef`.
//!   Parameter gradients and losses are bit-identical with pruning on.
//!
//! Exception to zero allocation: the conv ops (`Conv2d`, `MaxPool2`) keep
//! their per-sample im2col scratch and backward temporaries; they are only
//! used by the CNN baselines, not by CMSF training.

use crate::conv::{
    conv2d_backward_dk_to, conv2d_backward_dx_to, maxpool2_backward_batch, maxpool2_batch_to,
    ConvMeta, PoolMeta,
};
use crate::gemm::{self, PackedB};
use crate::matrix::Matrix;
use crate::par;
use crate::param::ParamRef;
use crate::sparse::{Csr, EdgeIndex};
use std::sync::{Arc, OnceLock};

/// Handle to a node in the tape.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct NodeId(u32);

impl NodeId {
    pub(crate) fn from_index(i: usize) -> Self {
        NodeId(i as u32)
    }

    pub(crate) fn idx(self) -> usize {
        self.0 as usize
    }

    /// Position of this node in its tape (nodes are numbered in record
    /// order, so this doubles as a stable cross-engine identifier).
    pub fn index(self) -> usize {
        self.idx()
    }
}

/// A constant sparse matrix together with its lazily-built transpose (the
/// transpose is only needed by the backward pass of `spmm`, so it is built on
/// first backward use and cached in the plan — inference/no-grad plans never
/// pay for it, and a plan replayed over many epochs pays it exactly once).
#[derive(Clone, Debug)]
pub struct CsrPair {
    pub fwd: Csr,
    bwd: OnceLock<Csr>,
}

impl CsrPair {
    pub fn new(csr: Csr) -> Arc<Self> {
        Arc::new(CsrPair {
            fwd: csr,
            bwd: OnceLock::new(),
        })
    }

    /// Transpose of `fwd`, built on first call and cached for the lifetime
    /// of the pair (i.e. of every plan holding it).
    pub fn bwd(&self) -> &Csr {
        self.bwd.get_or_init(|| self.fwd.transpose())
    }
}

/// Activation fused into a [`Op::MatMulBiasAct`] node. Each variant applies
/// exactly the elementwise expression of the corresponding standalone op, so
/// fusing is bitwise invisible to the numerics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FusedAct {
    Identity,
    /// `x > 0 ? x : slope * x`. The fused backward re-derives the mask from
    /// the *output* sign, which matches the input-sign mask iff
    /// `slope >= 0` — callers must not fuse negative slopes.
    LeakyRelu(f32),
    Tanh,
    Sigmoid,
}

/// The elementwise activation of a [`FusedAct`] — shared by the replay
/// engine and the legacy differential engine so both apply the exact same
/// expression.
#[inline]
pub(crate) fn fused_act_apply(act: FusedAct, x: f32) -> f32 {
    match act {
        FusedAct::Identity => x,
        FusedAct::LeakyRelu(slope) => {
            if x > 0.0 {
                x
            } else {
                slope * x
            }
        }
        FusedAct::Tanh => x.tanh(),
        FusedAct::Sigmoid => 1.0 / (1.0 + (-x).exp()),
    }
}

/// One recorded tape operation. Every scalar attribute an op needs to
/// recompute its value is stored here, so a plan can be replayed without the
/// recording context.
#[derive(Clone)]
pub(crate) enum Op {
    Leaf,
    MatMul(NodeId, NodeId),
    /// `act(a * b + bias)` as one node: one matmul into the output buffer,
    /// then bias-add and activation applied in place. Element chains are
    /// exactly those of the unfused `MatMul → AddRow → activation` sequence,
    /// so fusion is bitwise invisible; it saves two intermediate buffers and
    /// two full passes over them per replay.
    MatMulBiasAct(NodeId, NodeId, NodeId, FusedAct),
    Add(NodeId, NodeId),
    Sub(NodeId, NodeId),
    Mul(NodeId, NodeId),
    AddRow(NodeId, NodeId),
    MulRow(NodeId, NodeId),
    MulCol(NodeId, NodeId),
    Scale(NodeId, f32),
    AddScalar(NodeId, f32),
    LeakyRelu(NodeId, f32),
    Sigmoid(NodeId),
    Tanh(NodeId),
    Exp(NodeId),
    LnEps(NodeId, f32),
    SoftmaxRows(NodeId, f32),
    ConcatCols(NodeId, NodeId),
    SliceCols(NodeId, usize, usize),
    Transpose(NodeId),
    SumAll(NodeId),
    MeanAll(NodeId),
    RowSum(NodeId),
    GatherRows(NodeId, Arc<Vec<u32>>),
    SpMM(Arc<CsrPair>, NodeId),
    EdgeSoftmax(NodeId, Arc<EdgeIndex>),
    EdgeAggregate(NodeId, NodeId, Arc<EdgeIndex>),
    GatedMatMul(NodeId, NodeId, NodeId),
    SubOuter(NodeId, NodeId),
    BceWithLogits(NodeId, Arc<Vec<f32>>, Arc<Vec<f32>>),
    Conv2d(NodeId, NodeId, ConvMeta),
    AddChanBias(NodeId, NodeId, usize, usize),
    MaxPool2(NodeId, PoolMeta),
}

/// Recorded op topology + parameter bindings; replayable any number of times
/// against a [`Workspace`].
#[derive(Default)]
pub struct Plan {
    pub(crate) ops: Vec<Op>,
    pub(crate) param_links: Vec<(NodeId, ParamRef)>,
    /// `needs_grad[i]` is true when node `i`'s ancestry contains a parameter
    /// or grad-tracking variable leaf. The backward pass prunes every
    /// contribution into a node that doesn't: such a gradient can never reach
    /// a parameter, so computing it is pure waste (e.g. d loss / d x_features
    /// for a constant feature matrix).
    pub(crate) needs_grad: Vec<bool>,
    /// `const_leaf[i]` is true when node `i` is a leaf whose value can only
    /// change through an explicit `set_value` (not a parameter refresh).
    /// Matmul RHS packs of such leaves are packed once and kept for the
    /// lifetime of the plan; non-constant operands repack once per replay
    /// epoch.
    pub(crate) const_leaf: Vec<bool>,
}

/// Whether an op's output lies on a path from a parameter/variable leaf,
/// given the flags of all earlier nodes (tape order guarantees inputs have
/// smaller ids).
pub(crate) fn op_needs_grad(op: &Op, needs: &[bool]) -> bool {
    match op {
        Op::Leaf => false,
        Op::MatMul(a, b)
        | Op::Add(a, b)
        | Op::Sub(a, b)
        | Op::Mul(a, b)
        | Op::AddRow(a, b)
        | Op::MulRow(a, b)
        | Op::MulCol(a, b)
        | Op::ConcatCols(a, b)
        | Op::SubOuter(a, b)
        | Op::Conv2d(a, b, _)
        | Op::AddChanBias(a, b, _, _)
        | Op::EdgeAggregate(a, b, _) => needs[a.idx()] || needs[b.idx()],
        Op::MatMulBiasAct(a, b, bias, _) => needs[a.idx()] || needs[b.idx()] || needs[bias.idx()],
        Op::GatedMatMul(x, w, f) => needs[x.idx()] || needs[w.idx()] || needs[f.idx()],
        Op::Scale(a, _)
        | Op::AddScalar(a, _)
        | Op::LeakyRelu(a, _)
        | Op::Sigmoid(a)
        | Op::Tanh(a)
        | Op::Exp(a)
        | Op::LnEps(a, _)
        | Op::SoftmaxRows(a, _)
        | Op::SliceCols(a, _, _)
        | Op::Transpose(a)
        | Op::SumAll(a)
        | Op::MeanAll(a)
        | Op::RowSum(a)
        | Op::GatherRows(a, _)
        | Op::SpMM(_, a)
        | Op::EdgeSoftmax(a, _)
        | Op::BceWithLogits(a, _, _)
        | Op::MaxPool2(a, _) => needs[a.idx()],
    }
}

/// Arena of per-node value/gradient buffers reused across replays.
#[derive(Default)]
pub struct Workspace {
    pub(crate) values: Vec<Matrix>,
    pub(crate) grads: Vec<Matrix>,
    pub(crate) seen: Vec<bool>,
    pub(crate) scratch: Vec<f32>,
    /// One RHS panel-pack slot per node, keyed by the node id of a matmul's
    /// RHS operand (so several matmuls sharing one weight share one pack).
    /// Stamps encode validity: constant leaves keep their pack for the
    /// plan's lifetime, anything else repacks once per replay epoch.
    pub(crate) packs: Vec<PackedB>,
    /// LHS panel-pack slots, keyed by the node id of a conv kernel operand
    /// (the kernel is the LHS of every per-sample im2col product). Kept
    /// separate from [`Workspace::packs`] because a node could serve as both
    /// a matmul RHS and a conv kernel, and the two pack layouts differ.
    pub(crate) packs_a: Vec<PackedB>,
    /// Replay counter backing the pack stamps; bumped at each replay start.
    pub(crate) epoch: u64,
    /// Last-seen [`crate::ParamRef`] value versions, aligned with
    /// `Plan::param_links`. A replay refreshes a parameter leaf (memcpy +
    /// pack invalidation) only when its version moved — inference tapes
    /// whose parameters never change skip both entirely and their packs
    /// stay persistent.
    pub(crate) param_versions: Vec<u64>,
    /// Scratch for the fused-op backward's `dz = dy ⊙ act'(y)` product.
    /// Distinct from `scratch`, which [`contribute`] zeroes for second
    /// contributions while `dz` must stay live across all three of them.
    pub(crate) fused_scratch: Vec<f32>,
}

impl Workspace {
    pub fn new() -> Self {
        Self::default()
    }

    /// Value buffer of a node.
    pub fn value(&self, id: NodeId) -> &Matrix {
        &self.values[id.idx()]
    }

    /// Gradient of a node if the last backward pass reached it.
    pub fn grad(&self, id: NodeId) -> Option<&Matrix> {
        if *self.seen.get(id.idx())? {
            Some(&self.grads[id.idx()])
        } else {
            None
        }
    }

    /// Total bytes held in value/gradient/scratch/pack buffers.
    pub fn bytes(&self) -> usize {
        let vals: usize = self.values.iter().map(|m| m.len() * 4).sum();
        let grads: usize = self.grads.iter().map(|m| m.len() * 4).sum();
        let scratch = (self.scratch.len() + self.fused_scratch.len()) * 4;
        vals + grads + scratch + self.pack_bytes() + self.seen.len()
    }

    /// Bytes held by the cached matmul RHS panel packs (part of
    /// [`Workspace::bytes`], broken out so tests can account for the value
    /// arena and the pack cache separately).
    pub fn pack_bytes(&self) -> usize {
        let rhs: usize = self.packs.iter().map(|p| p.buf.len() * 4).sum();
        let lhs: usize = self.packs_a.iter().map(|p| p.buf.len() * 4).sum();
        rhs + lhs
    }

    /// True when the value buffer of `id` holds only finite elements.
    pub fn all_finite(&self, id: NodeId) -> bool {
        !self.values[id.idx()].has_non_finite()
    }

    /// Number of NaN / infinite elements in the value buffer of `id`.
    pub fn count_non_finite(&self, id: NodeId) -> usize {
        self.values[id.idx()].count_non_finite()
    }

    /// Allocate (or re-fit) gradient buffers for the nodes the backward pass
    /// can reach: full-size for nodes on a parameter path (plus the root,
    /// which holds the seed), zero-size for pruned nodes. No-op when already
    /// sized — the steady-state path.
    fn ensure_grads(&mut self, needs: &[bool], root: usize, has_fused: bool) {
        let want = |i: usize, v: &Matrix| -> (usize, usize) {
            if needs[i] || i == root {
                v.shape()
            } else {
                (0, 0)
            }
        };
        let max_len = self.values.iter().map(|v| v.len()).max().unwrap_or(0);
        let fused_len = if has_fused { max_len } else { 0 };
        let fits = self.grads.len() == self.values.len()
            && self.fused_scratch.len() == fused_len
            && self
                .grads
                .iter()
                .zip(self.values.iter())
                .enumerate()
                .all(|(i, (g, v))| g.shape() == want(i, v));
        if !fits {
            self.grads = self
                .values
                .iter()
                .enumerate()
                .map(|(i, v)| {
                    let (r, c) = want(i, v);
                    Matrix::zeros(r, c)
                })
                .collect();
            self.scratch = vec![0.0; max_len];
            self.fused_scratch = vec![0.0; fused_len];
        }
        if self.seen.len() != self.values.len() {
            self.seen = vec![false; self.values.len()];
        }
    }
}

impl Plan {
    /// Number of recorded ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Re-execute the forward pass in place: refresh parameter leaves from
    /// their (possibly updated) `ParamRef`s, then run every op into its
    /// preallocated buffer. Constant leaves keep their recorded values.
    pub fn replay(&self, ws: &mut Workspace) {
        REPLAY_COUNT.add(1);
        assert_eq!(ws.values.len(), self.ops.len(), "workspace/plan mismatch");
        if ws.packs.len() != ws.values.len() {
            // Externally assembled workspaces may lack pack slots; recording
            // through `Graph` pushes them alongside each value.
            ws.packs.resize_with(ws.values.len(), PackedB::default);
        }
        if ws.packs_a.len() != ws.values.len() {
            ws.packs_a.resize_with(ws.values.len(), PackedB::default);
        }
        // Entering a new epoch invalidates the per-epoch pack stamps of
        // non-constant *computed* operands. Parameter leaves are version-
        // stamped instead: the refresh below copies a value and invalidates
        // its packs only when the parameter actually changed since the last
        // replay, so an inference tape with frozen weights repacks nothing.
        ws.epoch += 1;
        if ws.param_versions.len() != self.param_links.len() {
            ws.param_versions.resize(self.param_links.len(), 0);
        }
        for (i, (id, p)) in self.param_links.iter().enumerate() {
            let version = p.version();
            if ws.param_versions[i] == version {
                continue;
            }
            ws.param_versions[i] = version;
            let pv = p.value();
            let dst = &mut ws.values[id.idx()];
            assert_eq!(dst.shape(), pv.shape(), "param shape changed since record");
            dst.as_mut_slice().copy_from_slice(pv.as_slice());
            ws.packs[id.idx()].stamp = gemm::NEVER;
            ws.packs_a[id.idx()].stamp = gemm::NEVER;
        }
        for i in 0..self.ops.len() {
            exec_forward(self, ws, i);
        }
        // Non-finite values are NOT asserted away here: a diverging model
        // must surface as a typed, recoverable error at the loss (see
        // `FitError::NonFiniteLoss` in uvd-urg), never as a panic inside the
        // replay loop. Use [`Plan::first_non_finite`] to localize the op
        // that introduced a NaN/inf after detecting one downstream.
    }

    /// First non-leaf node whose value buffer holds a non-finite element,
    /// with its non-finite count — the op that introduced the divergence on
    /// the last forward pass. Diagnostic companion to a non-finite loss:
    /// callers that detect `NaN`/`inf` at the loss can localize the source
    /// without re-running under a debugger. Leaves are skipped because a
    /// caller-supplied constant is the caller's own input, not a kernel
    /// failure.
    pub fn first_non_finite(&self, ws: &Workspace) -> Option<(NodeId, usize)> {
        ws.values
            .iter()
            .enumerate()
            .filter(|&(i, _)| !matches!(self.ops.get(i), Some(Op::Leaf)))
            .find(|(_, v)| v.has_non_finite())
            .map(|(i, v)| (NodeId::from_index(i), v.count_non_finite()))
    }

    /// Reverse pass from `root` with an explicit seed gradient, entirely into
    /// the workspace's gradient arena.
    pub fn backward(&self, ws: &mut Workspace, root: NodeId, seed: &Matrix) {
        assert_eq!(
            ws.values[root.idx()].shape(),
            seed.shape(),
            "seed shape mismatch"
        );
        let has_fused = self
            .ops
            .iter()
            .any(|op| matches!(op, Op::MatMulBiasAct(..)));
        ws.ensure_grads(&self.needs_grad, root.idx(), has_fused);
        let Workspace {
            values,
            grads,
            seen,
            scratch,
            fused_scratch,
            ..
        } = ws;
        seen.fill(false);
        grads[root.idx()]
            .as_mut_slice()
            .copy_from_slice(seed.as_slice());
        seen[root.idx()] = true;
        for id in (0..=root.idx()).rev() {
            if !seen[id] {
                continue;
            }
            let (gh, gt) = grads.split_at_mut(id);
            let dy = &gt[0];
            apply_backward(
                &self.ops[id],
                id,
                values,
                gh,
                dy,
                seen,
                scratch,
                fused_scratch,
                &self.needs_grad,
            );
        }
    }

    /// Copy gradients of bound parameters back into their [`ParamRef`]s
    /// (accumulating). Call after [`Plan::backward`].
    pub fn write_grads(&self, ws: &Workspace) {
        for (id, p) in &self.param_links {
            if let Some(g) = ws.grad(*id) {
                p.accumulate_grad(g);
            }
        }
    }
}

// ----- forward execution --------------------------------------------------

fn map_to(a: &Matrix, out: &mut Matrix, f: impl Fn(f32) -> f32) {
    for (o, &x) in out.as_mut_slice().iter_mut().zip(a.as_slice()) {
        *o = f(x);
    }
}

fn zip_to(a: &Matrix, b: &Matrix, out: &mut Matrix, f: impl Fn(f32, f32) -> f32) {
    assert_eq!(a.shape(), b.shape(), "zip shape mismatch");
    for ((o, &x), &y) in out
        .as_mut_slice()
        .iter_mut()
        .zip(a.as_slice())
        .zip(b.as_slice())
    {
        *o = f(x, y);
    }
}

/// Telemetry for the pack cache and the replay loop (uvd_obs counters; one
/// relaxed load each when tracing is off).
static REPLAY_COUNT: uvd_obs::Counter = uvd_obs::Counter::new("tensor.replay.count");
static PACK_HIT: uvd_obs::Counter = uvd_obs::Counter::new("gemm.pack_hit");
static PACK_REPACK: uvd_obs::Counter = uvd_obs::Counter::new("gemm.pack_repack");

/// Validate (or rebuild) the cached RHS pack for node `b`'s value. Constant
/// leaves get a persistent stamp; everything else stamps with the current
/// epoch so the next replay repacks exactly once, however many matmuls share
/// the operand. `Graph::set_value` resets the stamp to force a repack.
fn ensure_pack<'p>(slot: &'p mut PackedB, b: &Matrix, constant: bool, epoch: u64) -> &'p [f32] {
    let want = if constant {
        gemm::PERSISTENT
    } else {
        epoch + 1
    };
    if slot.stamp != want {
        PACK_REPACK.add(1);
        gemm::pack_b_into(b.as_slice(), b.rows(), b.cols(), false, &mut slot.buf);
        slot.stamp = want;
    } else {
        PACK_HIT.add(1);
    }
    &slot.buf
}

/// LHS twin of [`ensure_pack`] for conv kernel operands: same stamp
/// protocol, row-panel layout ([`gemm::pack_a_into`]).
fn ensure_pack_a<'p>(slot: &'p mut PackedB, a: &Matrix, constant: bool, epoch: u64) -> &'p [f32] {
    let want = if constant {
        gemm::PERSISTENT
    } else {
        epoch + 1
    };
    if slot.stamp != want {
        PACK_REPACK.add(1);
        gemm::pack_a_into(a.as_slice(), a.rows(), a.cols(), false, &mut slot.buf);
        slot.stamp = want;
    } else {
        PACK_HIT.add(1);
    }
    &slot.buf
}

/// Execute op `i` into its preallocated output buffer. Shared by recording
/// (which runs it immediately after pushing the op) and replay, so the two
/// paths are bit-identical by construction.
pub(crate) fn exec_forward(plan: &Plan, ws: &mut Workspace, i: usize) {
    let epoch = ws.epoch;
    let Workspace {
        values,
        packs,
        packs_a,
        ..
    } = ws;
    let is_const = |id: NodeId| plan.const_leaf.get(id.idx()).copied().unwrap_or(false);
    // Tape invariant: all inputs of op `i` have node id < `i`.
    let (head, tail) = values.split_at_mut(i);
    let out = &mut tail[0];
    match &plan.ops[i] {
        Op::Leaf => {}
        Op::MatMul(a, b) => {
            out.as_mut_slice().fill(0.0);
            let bv = &head[b.idx()];
            let pack = ensure_pack(&mut packs[b.idx()], bv, is_const(*b), epoch);
            head[a.idx()].matmul_acc_cached(bv, pack, out.as_mut_slice());
        }
        Op::MatMulBiasAct(a, b, bias, act) => {
            out.as_mut_slice().fill(0.0);
            let bv = &head[b.idx()];
            let pack = ensure_pack(&mut packs[b.idx()], bv, is_const(*b), epoch);
            head[a.idx()].matmul_acc_cached(bv, pack, out.as_mut_slice());
            // In-place bias + activation: `act(x + bias)` element for
            // element, exactly the unfused AddRow → activation chain.
            let (act, biasv) = (*act, &head[bias.idx()]);
            let m = out.rows();
            for r in 0..m {
                let bias_row = biasv.row(0);
                for (o, &bx) in out.row_mut(r).iter_mut().zip(bias_row.iter()) {
                    *o = fused_act_apply(act, *o + bx);
                }
            }
        }
        Op::Add(a, b) => zip_to(&head[a.idx()], &head[b.idx()], out, |x, y| x + y),
        Op::Sub(a, b) => zip_to(&head[a.idx()], &head[b.idx()], out, |x, y| x - y),
        Op::Mul(a, b) => zip_to(&head[a.idx()], &head[b.idx()], out, |x, y| x * y),
        Op::AddRow(a, row) => {
            let (av, rv) = (&head[a.idx()], &head[row.idx()]);
            for r in 0..av.rows() {
                let rr = rv.row(0);
                for ((o, &x), &b) in out.row_mut(r).iter_mut().zip(av.row(r)).zip(rr) {
                    *o = x + b;
                }
            }
        }
        Op::MulRow(a, row) => {
            let (av, rv) = (&head[a.idx()], &head[row.idx()]);
            for r in 0..av.rows() {
                let rr = rv.row(0);
                for ((o, &x), &b) in out.row_mut(r).iter_mut().zip(av.row(r)).zip(rr) {
                    *o = x * b;
                }
            }
        }
        Op::MulCol(a, col) => {
            let (av, cv) = (&head[a.idx()], &head[col.idx()]);
            for r in 0..av.rows() {
                let c = cv.get(r, 0);
                for (o, &x) in out.row_mut(r).iter_mut().zip(av.row(r)) {
                    *o = x * c;
                }
            }
        }
        Op::Scale(a, s) => {
            let s = *s;
            map_to(&head[a.idx()], out, |x| x * s);
        }
        Op::AddScalar(a, s) => {
            let s = *s;
            map_to(&head[a.idx()], out, |x| x + s);
        }
        Op::LeakyRelu(a, slope) => {
            let slope = *slope;
            map_to(&head[a.idx()], out, |x| if x > 0.0 { x } else { slope * x });
        }
        Op::Sigmoid(a) => map_to(&head[a.idx()], out, |x| 1.0 / (1.0 + (-x).exp())),
        Op::Tanh(a) => map_to(&head[a.idx()], out, f32::tanh),
        Op::Exp(a) => map_to(&head[a.idx()], out, f32::exp),
        Op::LnEps(a, eps) => {
            let eps = *eps;
            map_to(&head[a.idx()], out, |x| (x + eps).ln());
        }
        Op::SoftmaxRows(a, tau) => head[a.idx()].softmax_rows_to(*tau, out.as_mut_slice()),
        Op::ConcatCols(a, b) => {
            let (av, bv) = (&head[a.idx()], &head[b.idx()]);
            let (ca, cols) = (av.cols(), av.cols() + bv.cols());
            for r in 0..av.rows() {
                let o = out.row_mut(r);
                o[..ca].copy_from_slice(av.row(r));
                o[ca..cols].copy_from_slice(bv.row(r));
            }
        }
        Op::SliceCols(a, start, end) => {
            let av = &head[a.idx()];
            for r in 0..av.rows() {
                out.row_mut(r).copy_from_slice(&av.row(r)[*start..*end]);
            }
        }
        Op::Transpose(a) => {
            let av = &head[a.idx()];
            let (m, n) = av.shape();
            let o = out.as_mut_slice();
            for r in 0..m {
                for c in 0..n {
                    o[c * m + r] = av.get(r, c);
                }
            }
        }
        Op::SumAll(a) => out.set(0, 0, head[a.idx()].sum()),
        Op::MeanAll(a) => out.set(0, 0, head[a.idx()].mean()),
        Op::RowSum(a) => {
            let av = &head[a.idx()];
            for r in 0..av.rows() {
                out.set(r, 0, av.row(r).iter().sum());
            }
        }
        Op::GatherRows(a, idx) => head[a.idx()].gather_rows_to(idx, out.as_mut_slice()),
        Op::SpMM(pair, x) => {
            // Overwrite entry: zero-seeded chains, bit-equal to the old
            // fill-then-accumulate pair without re-reading the output.
            pair.fwd.spmm_to(&head[x.idx()], out.as_mut_slice());
        }
        Op::EdgeSoftmax(scores, edges) => {
            edge_softmax_forward(&head[scores.idx()], edges, out.as_mut_slice());
        }
        Op::EdgeAggregate(alpha, h, edges) => {
            out.as_mut_slice().fill(0.0);
            edge_aggregate_forward(
                &head[alpha.idx()],
                &head[h.idx()],
                edges,
                out.as_mut_slice(),
            );
        }
        Op::GatedMatMul(x, w, f) => {
            out.as_mut_slice().fill(0.0);
            gated_matmul_forward(
                &head[x.idx()],
                &head[w.idx()],
                &head[f.idx()],
                out.as_mut_slice(),
            );
        }
        Op::SubOuter(a, b) => {
            let (av, bv) = (&head[a.idx()], &head[b.idx()]);
            let (m, n) = (av.rows(), bv.rows());
            let o = out.as_mut_slice();
            for i in 0..m {
                let ai = av.get(i, 0);
                for j in 0..n {
                    o[i * n + j] = ai - bv.get(j, 0);
                }
            }
        }
        Op::BceWithLogits(logits, targets, weights) => {
            let z = &head[logits.idx()];
            let wsum: f32 = weights.iter().sum();
            let mut loss = 0.0f64;
            if wsum > 0.0 {
                for i in 0..targets.len() {
                    let zi = z.get(i, 0);
                    let li = zi.max(0.0) - zi * targets[i] + (1.0 + (-zi.abs()).exp()).ln();
                    loss += (weights[i] * li) as f64;
                }
                loss /= wsum as f64;
            }
            out.set(0, 0, loss as f32);
        }
        Op::Conv2d(x, kernel, meta) => {
            let kv = &head[kernel.idx()];
            assert_eq!(kv.shape(), meta.kernel_shape(), "conv2d kernel shape");
            // The kernel pack is cached in the workspace like matmul RHS
            // packs: constant kernels pack once for the plan's lifetime,
            // parameters repack once per epoch however many conv ops (or
            // replays of this op) share them.
            let pack = ensure_pack_a(&mut packs_a[kernel.idx()], kv, is_const(*kernel), epoch);
            crate::conv::conv2d_batch_prepacked_to(&head[x.idx()], pack, meta, out.as_mut_slice());
        }
        Op::AddChanBias(a, bias, channels, hw) => {
            let (av, bv) = (&head[a.idx()], &head[bias.idx()]);
            for i in 0..av.rows() {
                let (a_row, o_row) = (av.row(i), out.row_mut(i));
                for c in 0..*channels {
                    let b = bv.get(0, c);
                    for p in 0..*hw {
                        o_row[c * hw + p] = a_row[c * hw + p] + b;
                    }
                }
            }
        }
        Op::MaxPool2(x, meta) => maxpool2_batch_to(&head[x.idx()], meta, out.as_mut_slice()),
    }
}

/// Per-destination softmax of edge scores (every edge belongs to exactly one
/// non-empty destination group, so the whole output is overwritten).
fn edge_softmax_forward(s: &Matrix, edges: &EdgeIndex, out: &mut [f32]) {
    let dst_ptr = edges.dst_ptr();
    par::for_each_disjoint(
        out,
        edges.n_nodes(),
        edges.n_edges() * 8,
        |i| dst_ptr[i] as usize,
        |nodes, chunk| {
            let base = dst_ptr[nodes.start] as usize;
            for i in nodes {
                let range = edges.incoming(i);
                if range.is_empty() {
                    continue;
                }
                let mx = range
                    .clone()
                    .map(|e| s.get(e, 0))
                    .fold(f32::NEG_INFINITY, f32::max);
                let mut sum = 0.0;
                for e in range.clone() {
                    let x = (s.get(e, 0) - mx).exp();
                    chunk[e - base] = x;
                    sum += x;
                }
                for e in range {
                    chunk[e - base] /= sum;
                }
            }
        },
    );
}

/// Attention aggregation `out[dst] += alpha_e * h[src]` into a pre-zeroed
/// buffer. Destination rows partition across threads; each row reduces its
/// incoming edges in edge order (edges are dst-sorted), matching the serial
/// edge-loop accumulation order exactly.
fn edge_aggregate_forward(a: &Matrix, hm: &Matrix, edges: &EdgeIndex, out: &mut [f32]) {
    let d = hm.cols();
    par::for_each_row_block(out, d, edges.n_edges() * d * 2, |nodes, chunk| {
        for (ni, i) in nodes.enumerate() {
            let out_row = &mut chunk[ni * d..(ni + 1) * d];
            for e in edges.incoming(i) {
                let w = a.get(e, 0);
                let src = edges.src()[e] as usize;
                let src_row = &hm.as_slice()[src * d..(src + 1) * d];
                for (o, &x) in out_row.iter_mut().zip(src_row.iter()) {
                    *o += w * x;
                }
            }
        }
    });
}

/// MS-Gate gated linear map into a pre-zeroed buffer. Sample rows are
/// independent; the zero-skip stays because gated inputs are often sparse
/// activations, unlike the dense matmuls — removing it would also change
/// results whenever a skipped `w`/`f` entry is non-finite.
/// Standalone gated-matmul forward (`out[i][k] = Σ_d x[i][d]·w[d][k]·f[i][d·h+k]`)
/// into a caller-owned, fully overwritten buffer — the same kernel the
/// `Op::GatedMatMul` replay arm runs, exposed for benches and differential
/// tests that want to time or check it without recording a graph.
pub fn gated_matmul_into(xm: &Matrix, wm: &Matrix, fm: &Matrix, out: &mut [f32]) {
    let (n, _) = xm.shape();
    let h = wm.cols();
    assert_eq!(out.len(), n * h, "gated_matmul output buffer size");
    out.fill(0.0);
    gated_matmul_forward(xm, wm, fm, out);
}

fn gated_matmul_forward(xm: &Matrix, wm: &Matrix, fm: &Matrix, out: &mut [f32]) {
    let (n, d) = xm.shape();
    let h = wm.cols();
    // Resolve both tiers on the calling thread: the fast-math override is a
    // thread-local and would read as unset inside pool workers.
    let is = gemm::isa();
    let fmath = gemm::fast_math_active();
    par::for_each_row_block(out, h, n * d * h * 3, |rows, chunk| {
        for (ri, i) in rows.enumerate() {
            let x_row = xm.row(i);
            let f_row = fm.row(i);
            let out_row = &mut chunk[ri * h..(ri + 1) * h];
            gated_row_dispatch(is, fmath, x_row, wm, f_row, out_row, h);
        }
    });
}

/// Output-lane block width of the gated-matmul row kernel: one stack tile of
/// accumulators per block keeps the `h`-lane sums in registers across the
/// whole `d` sweep (CMSF uses `h = 16`, exactly one zmm on the AVX-512 tier
/// and two ymm on AVX2).
const GM_LANES: usize = 16;

#[inline]
fn gated_row_dispatch(
    is: gemm::Isa,
    fmath: bool,
    x_row: &[f32],
    wm: &Matrix,
    f_row: &[f32],
    out_row: &mut [f32],
    h: usize,
) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: each tier implies the matching CPU features; `fmath` is only
    // true when FMA was detected (`gemm::fast_math_active`).
    match is {
        gemm::Isa::Avx512 if fmath => {
            return unsafe { gated_row_avx512_fma(x_row, wm, f_row, out_row, h) }
        }
        gemm::Isa::Avx512 => return unsafe { gated_row_avx512(x_row, wm, f_row, out_row, h) },
        gemm::Isa::Avx2 if fmath => {
            return unsafe { gated_row_avx2_fma(x_row, wm, f_row, out_row, h) }
        }
        gemm::Isa::Avx2 => return unsafe { gated_row_avx2(x_row, wm, f_row, out_row, h) },
        gemm::Isa::Scalar => {}
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (is, fmath);
    // Scalar tier ignores fast-math: `mul_add` without hardware FMA takes a
    // libm detour that is slower, not faster (same policy as the GEMM tiers).
    gated_row_body::<false>(x_row, wm, f_row, out_row, h);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn gated_row_avx2(x_row: &[f32], wm: &Matrix, f_row: &[f32], out_row: &mut [f32], h: usize) {
    gated_row_body::<false>(x_row, wm, f_row, out_row, h);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
fn gated_row_avx2_fma(x_row: &[f32], wm: &Matrix, f_row: &[f32], out_row: &mut [f32], h: usize) {
    gated_row_body::<true>(x_row, wm, f_row, out_row, h);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
fn gated_row_avx512(x_row: &[f32], wm: &Matrix, f_row: &[f32], out_row: &mut [f32], h: usize) {
    gated_row_body::<false>(x_row, wm, f_row, out_row, h);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,fma")]
fn gated_row_avx512_fma(x_row: &[f32], wm: &Matrix, f_row: &[f32], out_row: &mut [f32], h: usize) {
    gated_row_body::<true>(x_row, wm, f_row, out_row, h);
}

/// One sample row of the gated matmul: `out[k] += Σ_d x[d] * w[d][k] *
/// f[d*h+k]`, ascending `d` per lane with the zero-skip preserved — the
/// blocked accumulator tile only hoists each lane's chain out of memory, it
/// never reorders or drops a term. `FMA = true` (fast-math tier) fuses the
/// gate multiply into the accumulate, `(x·w)·f + acc` in one rounding; the
/// term order and the zero-skip are identical in both tiers.
#[inline(always)]
fn gated_row_body<const FMA: bool>(
    x_row: &[f32],
    wm: &Matrix,
    f_row: &[f32],
    out_row: &mut [f32],
    h: usize,
) {
    // `w[dd][k]` and `f[dd*h + k]` share the flat offset `dd*h + k`, so one
    // running base indexes both; the `&[f32; GM_LANES]` reborrows give the
    // vectorizer exact trip counts with no per-lane bounds checks.
    let w_all = wm.as_slice();
    let mut k0 = 0;
    while k0 + GM_LANES <= h {
        let mut acc = [0.0f32; GM_LANES];
        acc.copy_from_slice(&out_row[k0..k0 + GM_LANES]);
        let mut base = k0;
        for &xv in x_row {
            if xv != 0.0 {
                let w_seg: &[f32; GM_LANES] = w_all[base..base + GM_LANES].try_into().unwrap();
                let f_seg: &[f32; GM_LANES] = f_row[base..base + GM_LANES].try_into().unwrap();
                for j in 0..GM_LANES {
                    if FMA {
                        acc[j] = (xv * w_seg[j]).mul_add(f_seg[j], acc[j]);
                    } else {
                        acc[j] += xv * w_seg[j] * f_seg[j];
                    }
                }
            }
            base += h;
        }
        out_row[k0..k0 + GM_LANES].copy_from_slice(&acc);
        k0 += GM_LANES;
    }
    if k0 < h {
        for (dd, &xv) in x_row.iter().enumerate() {
            if xv == 0.0 {
                continue;
            }
            let w_row = wm.row(dd);
            let f_seg = &f_row[dd * h..(dd + 1) * h];
            for k in k0..h {
                if FMA {
                    out_row[k] = (xv * w_row[k]).mul_add(f_seg[k], out_row[k]);
                } else {
                    out_row[k] += xv * w_row[k] * f_seg[k];
                }
            }
        }
    }
}

// ----- backward execution -------------------------------------------------

/// Deliver one op's gradient contribution to target node `t` without
/// allocating. Contributions into pruned nodes (no parameter in their
/// ancestry, `!needs[t]`) are skipped entirely — the closure never runs.
/// First contribution: zero the grad buffer and compute into it (bit-equal
/// to the old fresh-compute-then-move). Later contributions: zero the shared
/// scratch, compute into it, then add elementwise (bit-equal to the old
/// fresh-compute-then-`add_assign`).
fn contribute(
    gh: &mut [Matrix],
    seen: &mut [bool],
    scratch: &mut [f32],
    needs: &[bool],
    t: usize,
    f: impl FnOnce(&mut [f32]),
) {
    if !needs[t] {
        return;
    }
    if !seen[t] {
        let buf = gh[t].as_mut_slice();
        buf.fill(0.0);
        f(buf);
        seen[t] = true;
    } else {
        let len = gh[t].len();
        let s = &mut scratch[..len];
        s.fill(0.0);
        f(s);
        for (g, &dv) in gh[t].as_mut_slice().iter_mut().zip(s.iter()) {
            *g += dv;
        }
    }
}

/// Merge an op-owned gradient matrix (conv backward still allocates its
/// temporaries) into the arena: copy on first contribution, add otherwise.
/// Pruned targets are skipped like in [`contribute`].
fn merge_owned(gh: &mut [Matrix], seen: &mut [bool], needs: &[bool], t: usize, m: &Matrix) {
    if !needs[t] {
        return;
    }
    if !seen[t] {
        gh[t].as_mut_slice().copy_from_slice(m.as_slice());
        seen[t] = true;
    } else {
        for (g, &dv) in gh[t].as_mut_slice().iter_mut().zip(m.as_slice()) {
            *g += dv;
        }
    }
}

/// Three disjoint `&mut` gradient buffers for strictly increasing indices.
fn disjoint3(gh: &mut [Matrix], i: usize, j: usize, k: usize) -> [&mut Matrix; 3] {
    debug_assert!(i < j && j < k && k < gh.len());
    let (left, rest) = gh.split_at_mut(j);
    let (mid, right) = rest.split_at_mut(k - j);
    [&mut left[i], &mut mid[0], &mut right[0]]
}

#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
fn apply_backward(
    op: &Op,
    id: usize,
    values: &[Matrix],
    gh: &mut [Matrix],
    dy: &Matrix,
    seen: &mut [bool],
    scratch: &mut [f32],
    fused_scratch: &mut [f32],
    needs: &[bool],
) {
    match op {
        Op::Leaf => {}
        Op::MatMul(a, b) => {
            let (av, bv) = (&values[a.idx()], &values[b.idx()]);
            contribute(gh, seen, scratch, needs, a.idx(), |buf| {
                dy.matmul_nt_to(bv, buf)
            });
            contribute(gh, seen, scratch, needs, b.idx(), |buf| {
                av.matmul_tn_acc(dy, buf)
            });
        }
        Op::MatMulBiasAct(a, b, bias, act) => {
            let y = &values[id];
            let (m, n) = y.shape();
            let (av, bv) = (&values[a.idx()], &values[b.idx()]);
            let k = av.cols();
            // dz = dy ⊙ act'(·) — the gradient at the pre-bias product.
            // Sigmoid/Tanh derivatives come from the output exactly as the
            // standalone ops' backward; LeakyRelu re-derives the input-sign
            // mask from the output, valid because fused slopes are >= 0.
            let dz = &mut fused_scratch[..m * n];
            match act {
                FusedAct::Identity => dz.copy_from_slice(dy.as_slice()),
                FusedAct::LeakyRelu(slope) => {
                    for ((o, &yv), &g) in dz.iter_mut().zip(y.as_slice()).zip(dy.as_slice()) {
                        *o = if yv > 0.0 { g } else { slope * g };
                    }
                }
                FusedAct::Tanh => {
                    for ((o, &yv), &g) in dz.iter_mut().zip(y.as_slice()).zip(dy.as_slice()) {
                        *o = g * (1.0 - yv * yv);
                    }
                }
                FusedAct::Sigmoid => {
                    for ((o, &yv), &g) in dz.iter_mut().zip(y.as_slice()).zip(dy.as_slice()) {
                        *o = g * yv * (1.0 - yv);
                    }
                }
            }
            let dz = &*dz;
            // Contribution order matches the unfused op sequence (the AddRow
            // arm delivers before the MatMul arm): bias, then a, then b.
            contribute(gh, seen, scratch, needs, bias.idx(), |buf| {
                for r in 0..m {
                    for (o, &g) in buf[..n].iter_mut().zip(dz[r * n..(r + 1) * n].iter()) {
                        *o += g;
                    }
                }
            });
            contribute(gh, seen, scratch, needs, a.idx(), |buf| {
                // da = dz · b^T, overwrite semantics like `matmul_nt_to`.
                gemm::matmul_into(dz, bv.as_slice(), buf, m, n, k, false, true, false);
            });
            contribute(gh, seen, scratch, needs, b.idx(), |buf| {
                // db = a^T · dz, accumulate-into-zeroed like `matmul_tn_acc`.
                gemm::matmul_into(av.as_slice(), dz, buf, k, m, n, true, false, true);
            });
        }
        Op::Add(a, b) => {
            contribute(gh, seen, scratch, needs, a.idx(), |buf| {
                buf.copy_from_slice(dy.as_slice());
            });
            contribute(gh, seen, scratch, needs, b.idx(), |buf| {
                buf.copy_from_slice(dy.as_slice());
            });
        }
        Op::Sub(a, b) => {
            contribute(gh, seen, scratch, needs, a.idx(), |buf| {
                buf.copy_from_slice(dy.as_slice());
            });
            contribute(gh, seen, scratch, needs, b.idx(), |buf| {
                for (o, &g) in buf.iter_mut().zip(dy.as_slice()) {
                    *o = -g;
                }
            });
        }
        Op::Mul(a, b) => {
            let (av, bv) = (&values[a.idx()], &values[b.idx()]);
            contribute(gh, seen, scratch, needs, a.idx(), |buf| {
                for ((o, &g), &y) in buf.iter_mut().zip(dy.as_slice()).zip(bv.as_slice()) {
                    *o = g * y;
                }
            });
            contribute(gh, seen, scratch, needs, b.idx(), |buf| {
                for ((o, &g), &x) in buf.iter_mut().zip(dy.as_slice()).zip(av.as_slice()) {
                    *o = g * x;
                }
            });
        }
        Op::AddRow(a, row) => {
            let (m, n) = dy.shape();
            contribute(gh, seen, scratch, needs, a.idx(), |buf| {
                buf.copy_from_slice(dy.as_slice());
            });
            contribute(gh, seen, scratch, needs, row.idx(), |buf| {
                for r in 0..m {
                    for (o, &g) in buf[..n].iter_mut().zip(dy.row(r).iter()) {
                        *o += g;
                    }
                }
            });
        }
        Op::MulRow(a, row) => {
            let (m, n) = dy.shape();
            let (av, rv) = (&values[a.idx()], &values[row.idx()]);
            contribute(gh, seen, scratch, needs, a.idx(), |buf| {
                for r in 0..m {
                    for c in 0..n {
                        buf[r * n + c] = dy.get(r, c) * rv.get(0, c);
                    }
                }
            });
            contribute(gh, seen, scratch, needs, row.idx(), |buf| {
                for r in 0..m {
                    for (c, o) in buf.iter_mut().enumerate() {
                        *o += dy.get(r, c) * av.get(r, c);
                    }
                }
            });
        }
        Op::MulCol(a, col) => {
            let (m, n) = dy.shape();
            let (av, cv) = (&values[a.idx()], &values[col.idx()]);
            contribute(gh, seen, scratch, needs, a.idx(), |buf| {
                for r in 0..m {
                    for c in 0..n {
                        buf[r * n + c] = dy.get(r, c) * cv.get(r, 0);
                    }
                }
            });
            contribute(gh, seen, scratch, needs, col.idx(), |buf| {
                for (r, o) in buf.iter_mut().enumerate() {
                    let mut acc = 0.0;
                    for c in 0..n {
                        acc += dy.get(r, c) * av.get(r, c);
                    }
                    *o = acc;
                }
            });
        }
        Op::Scale(a, s) => {
            let s = *s;
            contribute(gh, seen, scratch, needs, a.idx(), |buf| {
                for (o, &g) in buf.iter_mut().zip(dy.as_slice()) {
                    *o = g * s;
                }
            });
        }
        Op::AddScalar(a, _) => {
            contribute(gh, seen, scratch, needs, a.idx(), |buf| {
                buf.copy_from_slice(dy.as_slice());
            });
        }
        Op::LeakyRelu(a, slope) => {
            let slope = *slope;
            let av = &values[a.idx()];
            contribute(gh, seen, scratch, needs, a.idx(), |buf| {
                for ((o, &x), &g) in buf.iter_mut().zip(av.as_slice()).zip(dy.as_slice()) {
                    *o = if x > 0.0 { g } else { slope * g };
                }
            });
        }
        Op::Sigmoid(a) => {
            let yv = &values[id];
            contribute(gh, seen, scratch, needs, a.idx(), |buf| {
                for ((o, &y), &g) in buf.iter_mut().zip(yv.as_slice()).zip(dy.as_slice()) {
                    *o = g * y * (1.0 - y);
                }
            });
        }
        Op::Tanh(a) => {
            let yv = &values[id];
            contribute(gh, seen, scratch, needs, a.idx(), |buf| {
                for ((o, &y), &g) in buf.iter_mut().zip(yv.as_slice()).zip(dy.as_slice()) {
                    *o = g * (1.0 - y * y);
                }
            });
        }
        Op::Exp(a) => {
            let yv = &values[id];
            contribute(gh, seen, scratch, needs, a.idx(), |buf| {
                for ((o, &y), &g) in buf.iter_mut().zip(yv.as_slice()).zip(dy.as_slice()) {
                    *o = g * y;
                }
            });
        }
        Op::LnEps(a, eps) => {
            let eps = *eps;
            let av = &values[a.idx()];
            contribute(gh, seen, scratch, needs, a.idx(), |buf| {
                for ((o, &x), &g) in buf.iter_mut().zip(av.as_slice()).zip(dy.as_slice()) {
                    *o = g / (x + eps);
                }
            });
        }
        Op::SoftmaxRows(a, tau) => {
            let tau = *tau;
            let y = &values[id];
            let (m, n) = y.shape();
            contribute(gh, seen, scratch, needs, a.idx(), |buf| {
                for r in 0..m {
                    let dot: f32 = y
                        .row(r)
                        .iter()
                        .zip(dy.row(r).iter())
                        .map(|(&yv, &g)| yv * g)
                        .sum();
                    for c in 0..n {
                        buf[r * n + c] = y.get(r, c) * (dy.get(r, c) - dot) / tau;
                    }
                }
            });
        }
        Op::ConcatCols(a, b) => {
            let ca = values[a.idx()].cols();
            let total = dy.cols();
            let m = dy.rows();
            contribute(gh, seen, scratch, needs, a.idx(), |buf| {
                for r in 0..m {
                    buf[r * ca..(r + 1) * ca].copy_from_slice(&dy.row(r)[..ca]);
                }
            });
            let cb = total - ca;
            contribute(gh, seen, scratch, needs, b.idx(), |buf| {
                for r in 0..m {
                    buf[r * cb..(r + 1) * cb].copy_from_slice(&dy.row(r)[ca..total]);
                }
            });
        }
        Op::SliceCols(a, start, end) => {
            let (m, n) = values[a.idx()].shape();
            let (start, end) = (*start, *end);
            contribute(gh, seen, scratch, needs, a.idx(), |buf| {
                for r in 0..m {
                    buf[r * n + start..r * n + end].copy_from_slice(dy.row(r));
                }
            });
        }
        Op::Transpose(a) => {
            let (m, n) = dy.shape();
            contribute(gh, seen, scratch, needs, a.idx(), |buf| {
                for r in 0..m {
                    for c in 0..n {
                        buf[c * m + r] = dy.get(r, c);
                    }
                }
            });
        }
        Op::SumAll(a) => {
            let g = dy.get(0, 0);
            contribute(gh, seen, scratch, needs, a.idx(), |buf| buf.fill(g));
        }
        Op::MeanAll(a) => {
            let len = values[a.idx()].len().max(1) as f32;
            let g = dy.get(0, 0) / len;
            contribute(gh, seen, scratch, needs, a.idx(), |buf| buf.fill(g));
        }
        Op::RowSum(a) => {
            let (m, n) = values[a.idx()].shape();
            contribute(gh, seen, scratch, needs, a.idx(), |buf| {
                for r in 0..m {
                    let g = dy.get(r, 0);
                    buf[r * n..(r + 1) * n].fill(g);
                }
            });
        }
        Op::GatherRows(a, idx) => {
            let n = values[a.idx()].cols();
            // Scatter-add with possibly duplicate row indices: parallel
            // partitioning over `idx` would give one row two writers, so the
            // backward scatter stays serial (the forward gather is the
            // parallel one).
            contribute(gh, seen, scratch, needs, a.idx(), |buf| {
                for (i, &r) in idx.iter().enumerate() {
                    let dst = &mut buf[r as usize * n..(r as usize + 1) * n];
                    for (o, &g) in dst.iter_mut().zip(dy.row(i).iter()) {
                        *o += g;
                    }
                }
            });
        }
        Op::SpMM(pair, x) => {
            contribute(gh, seen, scratch, needs, x.idx(), |buf| {
                pair.bwd().spmm_acc(dy, buf)
            });
        }
        Op::EdgeSoftmax(scores, edges) => {
            let alpha = &values[id];
            let dst_ptr = edges.dst_ptr();
            contribute(gh, seen, scratch, needs, scores.idx(), |buf| {
                par::for_each_disjoint(
                    buf,
                    edges.n_nodes(),
                    edges.n_edges() * 4,
                    |i| dst_ptr[i] as usize,
                    |nodes, chunk| {
                        let base = dst_ptr[nodes.start] as usize;
                        for i in nodes {
                            let range = edges.incoming(i);
                            if range.is_empty() {
                                continue;
                            }
                            let dot: f32 =
                                range.clone().map(|e| alpha.get(e, 0) * dy.get(e, 0)).sum();
                            for e in range {
                                chunk[e - base] = alpha.get(e, 0) * (dy.get(e, 0) - dot);
                            }
                        }
                    },
                );
            });
        }
        Op::EdgeAggregate(alpha, h, edges) => {
            let am = &values[alpha.idx()];
            let hm = &values[h.idx()];
            let d = hm.cols();
            // Each edge's alpha-gradient is an independent dot product.
            contribute(gh, seen, scratch, needs, alpha.idx(), |buf| {
                par::for_each_row_block(buf, 1, edges.n_edges() * d, |es, chunk| {
                    for (k, e) in es.enumerate() {
                        let src = edges.src()[e] as usize;
                        let dst = edges.dst()[e] as usize;
                        let dy_row = &dy.as_slice()[dst * d..(dst + 1) * d];
                        let h_row = &hm.as_slice()[src * d..(src + 1) * d];
                        chunk[k] = dy_row.iter().zip(h_row.iter()).map(|(&g, &x)| g * x).sum();
                    }
                });
            });
            // The dh scatter indexes by *source* row, and several edges can
            // share one source, so a row partition over edges would race;
            // this stays serial.
            contribute(gh, seen, scratch, needs, h.idx(), |buf| {
                for e in 0..edges.n_edges() {
                    let src = edges.src()[e] as usize;
                    let dst = edges.dst()[e] as usize;
                    let dy_row = &dy.as_slice()[dst * d..(dst + 1) * d];
                    let w = am.get(e, 0);
                    let dh_row = &mut buf[src * d..(src + 1) * d];
                    for (o, &g) in dh_row.iter_mut().zip(dy_row.iter()) {
                        *o += w * g;
                    }
                }
            });
        }
        Op::GatedMatMul(x, w, f) => {
            let xm = &values[x.idx()];
            let wm = &values[w.idx()];
            let fm = &values[f.idx()];
            let (n, d) = xm.shape();
            let h = wm.cols();
            let (xi, wi, fi) = (x.idx(), w.idx(), f.idx());
            let distinct = xi != wi && wi != fi && xi != fi;
            let all_need = needs[xi] && needs[wi] && needs[fi];
            if distinct && all_need && !seen[xi] && !seen[wi] && !seen[fi] {
                // Hot path: one fused pass writing all three gradients
                // directly into their (zeroed) arena buffers — same loop
                // structure and accumulation order as the allocating
                // fallback, so bit-identical.
                let mut order = [xi, wi, fi];
                order.sort_unstable();
                let [g0, g1, g2] = disjoint3(gh, order[0], order[1], order[2]);
                let pick = |t: usize| order.iter().position(|&o| o == t).expect("sorted member");
                let mut slots = [Some(g0), Some(g1), Some(g2)];
                let dx = slots[pick(xi)].take().expect("unique slot");
                let dw = slots[pick(wi)].take().expect("unique slot");
                let df = slots[pick(fi)].take().expect("unique slot");
                let (dx, dw, df) = (dx.as_mut_slice(), dw.as_mut_slice(), df.as_mut_slice());
                dx.fill(0.0);
                dw.fill(0.0);
                df.fill(0.0);
                gated_matmul_backward(xm, wm, fm, dy, n, d, h, dx, dw, df);
                seen[xi] = true;
                seen[wi] = true;
                seen[fi] = true;
            } else {
                // Rare aliased/partially-seen case: compute into fresh
                // temporaries (exactly the pre-plan code path) and merge.
                let mut dx = Matrix::zeros(n, d);
                let mut dw = Matrix::zeros(d, h);
                let mut df = Matrix::zeros(n, d * h);
                gated_matmul_backward(
                    xm,
                    wm,
                    fm,
                    dy,
                    n,
                    d,
                    h,
                    dx.as_mut_slice(),
                    dw.as_mut_slice(),
                    df.as_mut_slice(),
                );
                merge_owned(gh, seen, needs, xi, &dx);
                merge_owned(gh, seen, needs, wi, &dw);
                merge_owned(gh, seen, needs, fi, &df);
            }
        }
        Op::SubOuter(a, b) => {
            let (m, n) = dy.shape();
            contribute(gh, seen, scratch, needs, a.idx(), |buf| {
                for (i, o) in buf.iter_mut().enumerate() {
                    for j in 0..n {
                        *o += dy.get(i, j);
                    }
                }
            });
            contribute(gh, seen, scratch, needs, b.idx(), |buf| {
                for i in 0..m {
                    for (j, o) in buf.iter_mut().enumerate() {
                        *o -= dy.get(i, j);
                    }
                }
            });
        }
        Op::BceWithLogits(logits, targets, weights) => {
            let z = &values[logits.idx()];
            let wsum: f32 = weights.iter().sum();
            contribute(gh, seen, scratch, needs, logits.idx(), |buf| {
                if wsum > 0.0 {
                    let g = dy.get(0, 0) / wsum;
                    for i in 0..targets.len() {
                        let zi = z.get(i, 0);
                        let p = 1.0 / (1.0 + (-zi).exp());
                        buf[i] = g * weights[i] * (p - targets[i]);
                    }
                }
            });
        }
        Op::Conv2d(x, kernel, meta) => {
            let kv = &values[kernel.idx()];
            contribute(gh, seen, scratch, needs, x.idx(), |buf| {
                conv2d_backward_dx_to(kv, dy, meta, buf);
            });
            let xv = &values[x.idx()];
            contribute(gh, seen, scratch, needs, kernel.idx(), |buf| {
                conv2d_backward_dk_to(xv, dy, meta, buf);
            });
        }
        Op::AddChanBias(a, bias, channels, hw) => {
            contribute(gh, seen, scratch, needs, a.idx(), |buf| {
                buf.copy_from_slice(dy.as_slice());
            });
            let n = dy.rows();
            contribute(gh, seen, scratch, needs, bias.idx(), |buf| {
                for i in 0..n {
                    let row = dy.row(i);
                    for c in 0..*channels {
                        let s: f32 = row[c * hw..(c + 1) * hw].iter().sum();
                        buf[c] += s;
                    }
                }
            });
        }
        Op::MaxPool2(x, meta) => {
            let dx = maxpool2_backward_batch(&values[x.idx()], dy, meta);
            merge_owned(gh, seen, needs, x.idx(), &dx);
        }
    }
}

/// Fused gated-matmul backward into three caller-zeroed buffers; identical
/// loop structure and per-element accumulation order to the original tape
/// code (`dx` single-write, `dw`/`df` `+=` in ascending sample order).
#[allow(clippy::too_many_arguments)]
fn gated_matmul_backward(
    xm: &Matrix,
    wm: &Matrix,
    fm: &Matrix,
    dy: &Matrix,
    n: usize,
    d: usize,
    h: usize,
    dx: &mut [f32],
    dw: &mut [f32],
    df: &mut [f32],
) {
    for i in 0..n {
        let x_row = xm.row(i);
        let f_row = fm.row(i);
        let dy_row = dy.row(i);
        let df_row = &mut df[i * d * h..(i + 1) * d * h];
        for dd in 0..d {
            let w_row = wm.row(dd);
            let f_seg = &f_row[dd * h..(dd + 1) * h];
            let df_seg = &mut df_row[dd * h..(dd + 1) * h];
            let xv = x_row[dd];
            let mut dx_acc = 0.0;
            for k in 0..h {
                let g = dy_row[k];
                dx_acc += g * w_row[k] * f_seg[k];
                dw[dd * h + k] += g * xv * f_seg[k];
                df_seg[k] += g * xv * w_row[k];
            }
            dx[i * d + dd] = dx_acc;
        }
    }
}

#[cfg(test)]
mod gated_tests {
    use super::*;

    fn gated_fixture(n: usize, d: usize, h: usize) -> (Matrix, Matrix, Matrix) {
        let mut rng = crate::init::seeded_rng(17);
        let mut xm = crate::init::normal_matrix(n, d, 0.0, 1.0, &mut rng);
        // Exercise the zero-skip: it is part of the bitwise contract.
        for (i, v) in xm.as_mut_slice().iter_mut().enumerate() {
            if i % 7 == 3 {
                *v = 0.0;
            }
        }
        let wm = crate::init::normal_matrix(d, h, 0.0, 1.0, &mut rng);
        let fm = crate::init::normal_matrix(n, d * h, 0.0, 1.0, &mut rng);
        (xm, wm, fm)
    }

    /// Every SIMD tier of the gated row kernel must be bitwise identical to
    /// the scalar body in deterministic mode (same chains, same zero-skip),
    /// and within FMA rounding of it on the fast-math tier.
    #[test]
    fn gated_row_tiers_match_scalar_body() {
        for &(n, d, h) in &[(5usize, 19usize, 16usize), (4, 8, 21), (3, 6, 7)] {
            let (xm, wm, fm) = gated_fixture(n, d, h);
            let mut oracle = vec![0.0f32; n * h];
            for i in 0..n {
                gated_row_body::<false>(
                    xm.row(i),
                    &wm,
                    fm.row(i),
                    &mut oracle[i * h..(i + 1) * h],
                    h,
                );
            }
            let mut tiered = vec![0.0f32; n * h];
            crate::fastmath::with_fast_math(false, || {
                gated_matmul_forward(&xm, &wm, &fm, &mut tiered);
            });
            assert_eq!(tiered, oracle, "deterministic tier diverged at {n}x{d}x{h}");
            let mut fast = vec![0.0f32; n * h];
            crate::fastmath::with_fast_math(true, || {
                gated_matmul_forward(&xm, &wm, &fm, &mut fast);
            });
            for (a, b) in fast.iter().zip(oracle.iter()) {
                let tol = 1e-5 * b.abs().max(1.0);
                assert!(
                    (a - b).abs() <= tol,
                    "fast-math tier out of tolerance: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    #[ignore = "perf probe, run with --ignored --nocapture"]
    fn probe_gated_gflops() {
        let (n, d, h) = (1000, 64, 16);
        let (xm, wm, fm) = gated_fixture(n, d, h);
        for (label, fast) in [("det", false), ("fast", true)] {
            crate::fastmath::with_fast_math(fast, || {
                let mut out = vec![0.0f32; n * h];
                let mut best = f64::INFINITY;
                for _ in 0..30 {
                    out.fill(0.0);
                    let t = std::time::Instant::now();
                    gated_matmul_forward(&xm, &wm, &fm, &mut out);
                    best = best.min(t.elapsed().as_secs_f64());
                }
                let gflops = (3 * n * d * h) as f64 / best / 1e9;
                println!("gated {label}: {:.3} ms  {gflops:.2} GFLOP/s", best * 1e3);
            });
        }
    }
}
