//! Versioned, persistable region-embedding store — the `UVDT0002` format.
//!
//! [`EmbeddingStore`] extends [`MatrixStore`] with per-entry metadata so a
//! frozen embedding matrix can be traced back to the city and checkpoint
//! that produced it, and so downstream-task head weights can live in the
//! same file as the embeddings they were trained on ("pretrain once, serve
//! many tasks" — ROADMAP).
//!
//! Format (version 2):
//! ```text
//! magic   : b"UVDT0002"
//! schema  : u32 (currently 2; readers reject other versions)
//! count   : u32
//! entry*  : name_len u32 | name bytes (utf-8)
//!         | city_len u32 | city bytes (utf-8)
//!         | dim u32 | checkpoint_hash u64
//!         | rows u32 | cols u32 | f32* (little-endian)
//! ```
//!
//! [`EmbeddingStore::read_from`] also accepts version-1 (`UVDT0001`) files:
//! every entry loads with empty metadata (`city = ""`, `dim = cols`,
//! `checkpoint_hash = 0`), so existing checkpoints keep working as
//! embedding sources. Writing always produces version 2.

use crate::matrix::Matrix;
use crate::param::ParamSet;
use crate::persist::{
    self, read_matrix_payload, read_name, read_u32, read_u64, u32_field, MatrixStore,
};
use std::io::{self, Read, Write};
use std::path::Path;

/// Magic header of the version-2 embedding-store format.
pub const EMBED_MAGIC: &[u8; 8] = b"UVDT0002";

/// Schema version written by this build; reads reject anything else so a
/// future layout change cannot be silently misparsed.
pub const EMBED_SCHEMA: u32 = 2;

/// Per-entry provenance metadata.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EmbeddingMeta {
    /// City identifier the entry belongs to (empty for legacy v1 entries).
    pub city: String,
    /// Embedding dimensionality the entry was produced for / trained on.
    pub dim: u32,
    /// [`MatrixStore::content_hash`] of the checkpoint that produced the
    /// entry (0 for legacy v1 entries).
    pub checkpoint_hash: u64,
}

impl EmbeddingMeta {
    pub fn new(city: impl Into<String>, dim: usize, checkpoint_hash: u64) -> Self {
        EmbeddingMeta {
            city: city.into(),
            dim: dim as u32,
            checkpoint_hash,
        }
    }
}

/// A [`MatrixStore`] whose entries carry [`EmbeddingMeta`], persisted as
/// `UVDT0002`. Matrices and metadata stay in lockstep: `meta[i]` describes
/// the store's i-th entry in insertion order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EmbeddingStore {
    mats: MatrixStore,
    meta: Vec<EmbeddingMeta>,
}

impl EmbeddingStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert (or replace) a named matrix with its metadata.
    pub fn insert(&mut self, name: impl Into<String>, m: Matrix, meta: EmbeddingMeta) {
        let name = name.into();
        match self.mats.position(&name) {
            Some(i) => {
                self.mats.insert(name, m);
                self.meta[i] = meta;
            }
            None => {
                self.mats.insert(name, m);
                self.meta.push(meta);
            }
        }
    }

    /// Look up a matrix by name.
    pub fn get(&self, name: &str) -> Option<&Matrix> {
        self.mats.get(name)
    }

    /// Look up an entry's metadata by name.
    pub fn meta(&self, name: &str) -> Option<&EmbeddingMeta> {
        self.mats.position(name).map(|i| &self.meta[i])
    }

    /// Remove a named entry, returning its matrix if present.
    pub fn remove(&mut self, name: &str) -> Option<Matrix> {
        let i = self.mats.position(name)?;
        let m = self.mats.remove(name);
        self.meta.remove(i);
        m
    }

    pub fn len(&self) -> usize {
        self.mats.len()
    }

    pub fn is_empty(&self) -> bool {
        self.mats.is_empty()
    }

    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.mats.names()
    }

    /// Iterate `(name, matrix, meta)` triples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Matrix, &EmbeddingMeta)> {
        self.mats
            .iter()
            .zip(self.meta.iter())
            .map(|((n, m), meta)| (n, m, meta))
    }

    /// Read-only view of the underlying matrices.
    pub fn matrices(&self) -> &MatrixStore {
        &self.mats
    }

    /// Capture every parameter of a set, stamping each with `meta` — how
    /// downstream-task head weights join the store next to the embeddings
    /// they were trained on.
    pub fn capture_params(&mut self, params: &ParamSet, meta: &EmbeddingMeta) {
        for p in params.iter() {
            self.insert(p.name(), p.value().clone(), meta.clone());
        }
    }

    /// Validate a parameter set against the store without mutating.
    pub fn validate_params(&self, params: &ParamSet) -> io::Result<()> {
        self.mats.validate_params(params)
    }

    /// Restore a parameter set from the store (transactional: validation
    /// runs first, a failure mutates nothing).
    pub fn restore_params(&self, params: &ParamSet) -> io::Result<()> {
        self.mats.restore_params(params)
    }

    /// Serialize as `UVDT0002`. Fails with `InvalidInput` if any count or
    /// dimension overflows the format's u32 fields.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(EMBED_MAGIC)?;
        w.write_all(&EMBED_SCHEMA.to_le_bytes())?;
        w.write_all(&u32_field(self.len(), "entry count")?.to_le_bytes())?;
        for (name, m, meta) in self.iter() {
            let name_bytes = name.as_bytes();
            w.write_all(&u32_field(name_bytes.len(), "name length")?.to_le_bytes())?;
            w.write_all(name_bytes)?;
            let city_bytes = meta.city.as_bytes();
            w.write_all(&u32_field(city_bytes.len(), "city length")?.to_le_bytes())?;
            w.write_all(city_bytes)?;
            w.write_all(&meta.dim.to_le_bytes())?;
            w.write_all(&meta.checkpoint_hash.to_le_bytes())?;
            w.write_all(&u32_field(m.rows(), "row count")?.to_le_bytes())?;
            w.write_all(&u32_field(m.cols(), "column count")?.to_le_bytes())?;
            for &v in m.as_slice() {
                w.write_all(&v.to_le_bytes())?;
            }
        }
        Ok(())
    }

    /// Deserialize a `UVDT0002` file, or — backward compatibly — a
    /// `UVDT0001` file whose entries load with empty metadata. Duplicate
    /// entry names and oversized headers are `InvalidData` errors.
    pub fn read_from(r: &mut impl Read) -> io::Result<Self> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic == persist::MAGIC {
            // Legacy matrix store: wrap with default metadata.
            let mats = MatrixStore::read_v1_body(r)?;
            let meta = mats
                .iter()
                .map(|(_, m)| EmbeddingMeta::new("", m.cols(), 0))
                .collect();
            return Ok(EmbeddingStore { mats, meta });
        }
        if &magic != EMBED_MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
        }
        let schema = read_u32(r)?;
        if schema != EMBED_SCHEMA {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported embedding-store schema version {schema}"),
            ));
        }
        let count = read_u32(r)? as usize;
        let mut out = EmbeddingStore::new();
        for _ in 0..count {
            let name = read_name(r, "name")?;
            let city = read_name(r, "city id")?;
            let dim = read_u32(r)?;
            let checkpoint_hash = read_u64(r)?;
            let m = read_matrix_payload(r)?;
            out.mats.insert_unique(name, m)?;
            out.meta.push(EmbeddingMeta {
                city,
                dim,
                checkpoint_hash,
            });
        }
        Ok(out)
    }

    /// Save to a file (always version 2).
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut f = io::BufWriter::new(std::fs::File::create(path)?);
        self.write_to(&mut f)?;
        f.flush()
    }

    /// Load from a file (version 2, or version 1 with default metadata).
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let mut f = io::BufReader::new(std::fs::File::open(path)?);
        Self::read_from(&mut f)
    }
}

/// Convert a legacy store: every entry gets the same provenance stamp.
impl From<MatrixStore> for EmbeddingStore {
    fn from(mats: MatrixStore) -> Self {
        let meta = mats
            .iter()
            .map(|(_, m)| EmbeddingMeta::new("", m.cols(), 0))
            .collect();
        EmbeddingStore { mats, meta }
    }
}

// The dedicated round-trip/golden/compat suite lives in
// `tests/embed_store.rs`; only the invariants between the parallel
// structures are unit-tested here.
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_replace_keeps_meta_aligned() {
        let mut s = EmbeddingStore::new();
        s.insert(
            "a",
            Matrix::filled(1, 2, 1.0),
            EmbeddingMeta::new("x", 2, 1),
        );
        s.insert(
            "b",
            Matrix::filled(1, 2, 2.0),
            EmbeddingMeta::new("y", 2, 2),
        );
        s.insert(
            "a",
            Matrix::filled(1, 2, 3.0),
            EmbeddingMeta::new("z", 2, 3),
        );
        assert_eq!(s.len(), 2);
        assert_eq!(s.meta("a").expect("a").city, "z");
        assert_eq!(s.meta("b").expect("b").city, "y");
        s.remove("a");
        assert_eq!(s.len(), 1);
        assert_eq!(s.meta("b").expect("b").checkpoint_hash, 2);
        assert!(s.meta("a").is_none());
    }

    #[test]
    fn write_rejects_oversized_dimensions() {
        let mut s = EmbeddingStore::new();
        s.insert(
            "huge",
            Matrix::zeros((u32::MAX as usize) + 2, 0),
            EmbeddingMeta::default(),
        );
        let mut buf = Vec::new();
        let err = s.write_to(&mut buf).expect_err("must reject");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }
}
