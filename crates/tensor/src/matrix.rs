//! Dense row-major `f32` matrix with the handful of kernels the autodiff
//! engine needs. Vectors are represented as `n×1` or `1×n` matrices.
//!
//! The matmul family runs on the packed register-tiled microkernels in
//! [`crate::gemm`], row-partitioned across threads by the [`crate::par`]
//! runtime. Because the per-element accumulation order (ascending `k`) is
//! independent of the row partition and of the tile shape, results are
//! bit-identical at any thread count and on every ISA tier — and bit-equal
//! to the frozen naive kernels kept in [`crate::legacy`] as the reference.

use crate::gemm;
use crate::par;
use std::fmt;

/// Dense row-major matrix of `f32`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Matrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix filled with a constant.
    pub fn filled(rows: usize, cols: usize, v: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![v; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Build from a row-major data vector. Panics if the length mismatches.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: {} values for {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Build from nested rows (test convenience).
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = if r == 0 { 0 } else { rows[0].len() };
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Column vector from a slice.
    pub fn col_vec(v: &[f32]) -> Self {
        Matrix {
            rows: v.len(),
            cols: 1,
            data: v.to_vec(),
        }
    }

    /// Row vector from a slice.
    pub fn row_vec(v: &[f32]) -> Self {
        Matrix {
            rows: 1,
            cols: v.len(),
            data: v.to_vec(),
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// (rows, cols)
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow one row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow one row.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self * rhs` on the packed register-tiled kernel
    /// (no zero-skip branch — `Csr` handles genuinely sparse operands),
    /// rows partitioned across threads above the work threshold.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_acc(rhs, &mut out.data);
        out
    }

    /// Accumulate `self * rhs` into a caller-owned buffer (`out += a * b`).
    /// The replay engine zero-fills `out` first; the accumulation order is
    /// identical to [`Matrix::matmul`], so the results are bit-equal.
    pub fn matmul_acc(&self, rhs: &Matrix, out: &mut [f32]) {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        assert_eq!(out.len(), m * n, "matmul output buffer size");
        gemm::matmul_into(&self.data, &rhs.data, out, m, k, n, false, false, true);
    }

    /// Like [`Matrix::matmul_acc`] but with the RHS already packed into a
    /// panel buffer (a `Workspace` pack cache slot) by [`crate::gemm`].
    pub(crate) fn matmul_acc_cached(&self, rhs: &Matrix, b_pack: &[f32], out: &mut [f32]) {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        assert_eq!(out.len(), m * n, "matmul output buffer size");
        gemm::matmul_prepacked_b(&self.data, false, b_pack, out, m, k, n, true);
    }

    /// `self^T * rhs` without materializing the transpose.
    pub fn matmul_tn(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        self.matmul_tn_acc(rhs, &mut out.data);
        out
    }

    /// Accumulate `self^T * rhs` into a caller-owned (pre-zeroed) buffer.
    pub fn matmul_tn_acc(&self, rhs: &Matrix, out: &mut [f32]) {
        assert_eq!(
            self.rows, rhs.rows,
            "matmul_tn: ({}x{})^T * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let (m, k, n) = (self.cols, self.rows, rhs.cols);
        assert_eq!(out.len(), m * n, "matmul_tn output buffer size");
        gemm::matmul_into(&self.data, &rhs.data, out, m, k, n, true, false, true);
    }

    /// `self * rhs^T` without materializing the transpose.
    pub fn matmul_nt(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        self.matmul_nt_to(rhs, &mut out.data);
        out
    }

    /// Write `self * rhs^T` into a caller-owned buffer (every element is
    /// overwritten; no pre-zeroing required).
    pub fn matmul_nt_to(&self, rhs: &Matrix, out: &mut [f32]) {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_nt: {}x{} * ({}x{})^T",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let (m, k, n) = (self.rows, self.cols, rhs.rows);
        assert_eq!(out.len(), m * n, "matmul_nt output buffer size");
        gemm::matmul_into(&self.data, &rhs.data, out, m, k, n, false, true, false);
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Elementwise combine with another same-shape matrix.
    pub fn zip(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "zip shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// `self += other` elementwise.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// `self += alpha * other` elementwise.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Multiply every element by a scalar, in place.
    pub fn scale_assign(&mut self, alpha: f32) {
        for a in self.data.iter_mut() {
            *a *= alpha;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (negative infinity for empty).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Frobenius norm.
    pub fn frob_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    /// Number of NaN / infinite elements.
    pub fn count_non_finite(&self) -> usize {
        self.data.iter().filter(|x| !x.is_finite()).count()
    }

    /// Horizontal concatenation `[self | other]`.
    pub fn concat_cols(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "concat_cols row mismatch");
        let cols = self.cols + other.cols;
        let mut out = Matrix::zeros(self.rows, cols);
        for r in 0..self.rows {
            out.data[r * cols..r * cols + self.cols].copy_from_slice(self.row(r));
            out.data[r * cols + self.cols..(r + 1) * cols].copy_from_slice(other.row(r));
        }
        out
    }

    /// Copy of columns `[start, end)`.
    pub fn slice_cols(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.cols, "slice_cols out of range");
        let cols = end - start;
        let mut out = Matrix::zeros(self.rows, cols);
        for r in 0..self.rows {
            out.row_mut(r).copy_from_slice(&self.row(r)[start..end]);
        }
        out
    }

    /// Gather rows by index into a new matrix (output rows partitioned
    /// across threads; the source is only read, so any duplicate indices are
    /// safe).
    pub fn gather_rows(&self, idx: &[u32]) -> Matrix {
        let mut out = Matrix::zeros(idx.len(), self.cols);
        self.gather_rows_to(idx, &mut out.data);
        out
    }

    /// Gather rows by index into a caller-owned buffer (fully overwritten).
    pub fn gather_rows_to(&self, idx: &[u32], out: &mut [f32]) {
        let cols = self.cols;
        assert_eq!(out.len(), idx.len() * cols, "gather_rows output size");
        par::for_each_row_block(out, cols, idx.len() * cols, |rows, chunk| {
            for (ri, i) in rows.enumerate() {
                let r = idx[i] as usize;
                chunk[ri * cols..(ri + 1) * cols].copy_from_slice(self.row(r));
            }
        });
    }

    /// Row-wise softmax with temperature: `softmax(x / tau)` per row.
    pub fn softmax_rows(&self, tau: f32) -> Matrix {
        let mut out = self.clone();
        softmax_rows_inplace(&mut out.data, self.rows, self.cols, tau);
        out
    }

    /// Row-wise softmax written to a caller-owned buffer (fully overwritten;
    /// identical per-row transform to [`Matrix::softmax_rows`]).
    pub fn softmax_rows_to(&self, tau: f32, out: &mut [f32]) {
        assert_eq!(out.len(), self.data.len(), "softmax_rows output size");
        out.copy_from_slice(&self.data);
        softmax_rows_inplace(out, self.rows, self.cols, tau);
    }

    /// Row-wise argmax indices.
    pub fn argmax_rows(&self) -> Vec<u32> {
        (0..self.rows)
            .map(|r| {
                let row = self.row(r);
                let mut best = 0usize;
                for (i, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = i;
                    }
                }
                best as u32
            })
            .collect()
    }
}

/// Shared body of `softmax_rows`/`softmax_rows_to`: in-place row softmax with
/// temperature, same numeric order as the original per-row loop.
fn softmax_rows_inplace(data: &mut [f32], rows: usize, cols: usize, tau: f32) {
    for r in 0..rows {
        let row = &mut data[r * cols..(r + 1) * cols];
        let mx = row.iter().copied().fold(f32::NEG_INFINITY, f32::max) / tau;
        let mut sum = 0.0;
        for x in row.iter_mut() {
            *x = (*x / tau - mx).exp();
            sum += *x;
        }
        if sum > 0.0 {
            for x in row.iter_mut() {
                *x /= sum;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    // Exact float equality is intended: the kernels are bit-reproducible
    // and these tests assert exact constants.
    #![allow(clippy::float_cmp)]

    use super::*;

    #[test]
    fn matmul_small() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        assert_eq!(a.matmul_tn(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 1.0, 1.0], &[2.0, 0.0, 2.0]]);
        assert_eq!(a.matmul_nt(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn softmax_rows_sums_to_one() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[-5.0, 0.0, 5.0]]);
        let s = a.softmax_rows(1.0);
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_temperature_sharpens() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let soft = a.softmax_rows(1.0);
        let sharp = a.softmax_rows(0.1);
        assert!(sharp.get(0, 1) > soft.get(0, 1));
    }

    #[test]
    fn concat_and_slice_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0], &[6.0]]);
        let c = a.concat_cols(&b);
        assert_eq!(c.slice_cols(0, 2), a);
        assert_eq!(c.slice_cols(2, 3), b);
    }

    #[test]
    fn gather_rows_picks_rows() {
        let a = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let g = a.gather_rows(&[2, 0, 2]);
        assert_eq!(g, Matrix::from_rows(&[&[3.0], &[1.0], &[3.0]]));
    }

    #[test]
    fn argmax_rows_ties_pick_first() {
        let a = Matrix::from_rows(&[&[1.0, 1.0, 0.5], &[0.0, 2.0, 2.0]]);
        assert_eq!(a.argmax_rows(), vec![0, 1]);
    }

    #[test]
    fn matmul_k_zero_is_all_zeros() {
        // Empty reduction: every output element is the empty sum.
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(0, 4);
        assert_eq!(a.matmul(&b), Matrix::zeros(3, 4));
        let at = Matrix::zeros(0, 3);
        assert_eq!(at.matmul_tn(&b), Matrix::zeros(3, 4));
        let bt = Matrix::zeros(4, 0);
        assert_eq!(a.matmul_nt(&bt), Matrix::zeros(3, 4));
    }

    #[test]
    fn matmul_k_zero_accumulate_preserves_output() {
        let a = Matrix::zeros(2, 0);
        let b = Matrix::zeros(0, 2);
        let mut out = [1.0, 2.0, 3.0, 4.0];
        a.matmul_acc(&b, &mut out);
        assert_eq!(out, [1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn matmul_vector_shapes() {
        // 1×k row vector times k×n, and m×k times k×1 column vector.
        let r = Matrix::row_vec(&[1.0, 2.0, 3.0]);
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        assert_eq!(r.matmul(&b), Matrix::row_vec(&[4.0, 5.0]));
        let c = Matrix::col_vec(&[1.0, -1.0]);
        assert_eq!(b.matmul(&c), Matrix::col_vec(&[1.0, -1.0, 0.0]));
        // Inner product and outer product degenerate cases.
        let rc = r.matmul(&Matrix::col_vec(&[1.0, 1.0, 1.0]));
        assert_eq!(rc, Matrix::from_rows(&[&[6.0]]));
        let outer = Matrix::col_vec(&[2.0, 3.0]).matmul(&Matrix::row_vec(&[1.0, 10.0]));
        assert_eq!(outer, Matrix::from_rows(&[&[2.0, 20.0], &[3.0, 30.0]]));
    }

    #[test]
    fn matmul_empty_matrices_are_noops() {
        let a = Matrix::zeros(0, 5);
        let b = Matrix::zeros(5, 3);
        assert_eq!(a.matmul(&b).shape(), (0, 3));
        let b0 = Matrix::zeros(5, 0);
        let c = Matrix::filled(2, 5, 1.0);
        assert_eq!(c.matmul(&b0).shape(), (2, 0));
        assert_eq!(b0.matmul_tn(&b).shape(), (0, 3));
        assert_eq!(a.matmul_nt(&Matrix::zeros(0, 5)).shape(), (0, 0));
    }
}
