//! Dense row-major `f32` matrix with the handful of kernels the autodiff
//! engine needs. Vectors are represented as `n×1` or `1×n` matrices.
//!
//! The matmul family is cache-blocked over the reduction dimension and
//! row-partitioned across threads by the [`crate::par`] runtime. Because the
//! per-element accumulation order (ascending `k`) is independent of the row
//! partition, results are bit-identical at any thread count.

use crate::par;
use std::fmt;
use std::ops::Range;

/// Reduction-dimension tile for the blocked matmul kernels: 64 rows of a
/// 64-col f32 panel is 16 KiB, comfortably inside L1 alongside the output.
const K_TILE: usize = 64;

/// Compute rows `rows` of `out = a * b` where `a` is `m×k`, `b` is `k×n` and
/// `chunk` is the contiguous output storage for exactly those rows. The `k`
/// loop is tiled but always ascends, so each output element accumulates its
/// products in the same order regardless of how rows are partitioned.
fn matmul_rows(a: &[f32], b: &[f32], chunk: &mut [f32], rows: Range<usize>, k: usize, n: usize) {
    for kb in (0..k).step_by(K_TILE) {
        let k_end = (kb + K_TILE).min(k);
        for (ri, i) in rows.clone().enumerate() {
            let a_row = &a[i * k..(i + 1) * k];
            let o_row = &mut chunk[ri * n..(ri + 1) * n];
            for p in kb..k_end {
                let av = a_row[p];
                let b_row = &b[p * n..(p + 1) * n];
                for (o, &bv) in o_row.iter_mut().zip(b_row.iter()) {
                    *o += av * bv;
                }
            }
        }
    }
}

/// Compute rows `rows` of `out = a^T * b` where `a` is `k×m`, `b` is `k×n`:
/// `out[i][j] = Σ_p a[p][i] * b[p][j]`, `p` tiled but ascending.
fn matmul_tn_rows(
    a: &[f32],
    b: &[f32],
    chunk: &mut [f32],
    rows: Range<usize>,
    k: usize,
    m: usize,
    n: usize,
) {
    for pb in (0..k).step_by(K_TILE) {
        let p_end = (pb + K_TILE).min(k);
        for (ri, i) in rows.clone().enumerate() {
            let o_row = &mut chunk[ri * n..(ri + 1) * n];
            for p in pb..p_end {
                let av = a[p * m + i];
                let b_row = &b[p * n..(p + 1) * n];
                for (o, &bv) in o_row.iter_mut().zip(b_row.iter()) {
                    *o += av * bv;
                }
            }
        }
    }
}

/// Compute rows `rows` of `out = a * b^T` where `a` is `m×k`, `b` is `n×k`:
/// independent dot products, accumulated in ascending `k` order.
fn matmul_nt_rows(a: &[f32], b: &[f32], chunk: &mut [f32], rows: Range<usize>, k: usize, n: usize) {
    for (ri, i) in rows.enumerate() {
        let a_row = &a[i * k..(i + 1) * k];
        let o_row = &mut chunk[ri * n..(ri + 1) * n];
        for (j, o) in o_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row.iter()) {
                acc += av * bv;
            }
            *o = acc;
        }
    }
}

/// Dense row-major matrix of `f32`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Matrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix filled with a constant.
    pub fn filled(rows: usize, cols: usize, v: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![v; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Build from a row-major data vector. Panics if the length mismatches.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: {} values for {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Build from nested rows (test convenience).
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = if r == 0 { 0 } else { rows[0].len() };
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Column vector from a slice.
    pub fn col_vec(v: &[f32]) -> Self {
        Matrix {
            rows: v.len(),
            cols: 1,
            data: v.to_vec(),
        }
    }

    /// Row vector from a slice.
    pub fn row_vec(v: &[f32]) -> Self {
        Matrix {
            rows: 1,
            cols: v.len(),
            data: v.to_vec(),
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// (rows, cols)
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow one row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow one row.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self * rhs`: k-tiled straight-FMA inner loop (no
    /// zero-skip branch — `Csr` handles genuinely sparse operands), rows
    /// partitioned across threads above the work threshold.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_acc(rhs, &mut out.data);
        out
    }

    /// Accumulate `self * rhs` into a caller-owned buffer (`out += a * b`).
    /// The replay engine zero-fills `out` first; the accumulation order is
    /// identical to [`Matrix::matmul`], so the results are bit-equal.
    pub fn matmul_acc(&self, rhs: &Matrix, out: &mut [f32]) {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        assert_eq!(out.len(), m * n, "matmul output buffer size");
        par::for_each_row_block(out, n, m * k * n, |rows, chunk| {
            matmul_rows(&self.data, &rhs.data, chunk, rows, k, n);
        });
    }

    /// `self^T * rhs` without materializing the transpose.
    pub fn matmul_tn(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        self.matmul_tn_acc(rhs, &mut out.data);
        out
    }

    /// Accumulate `self^T * rhs` into a caller-owned (pre-zeroed) buffer.
    pub fn matmul_tn_acc(&self, rhs: &Matrix, out: &mut [f32]) {
        assert_eq!(
            self.rows, rhs.rows,
            "matmul_tn: ({}x{})^T * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let (m, k, n) = (self.cols, self.rows, rhs.cols);
        assert_eq!(out.len(), m * n, "matmul_tn output buffer size");
        par::for_each_row_block(out, n, m * k * n, |rows, chunk| {
            matmul_tn_rows(&self.data, &rhs.data, chunk, rows, k, m, n);
        });
    }

    /// `self * rhs^T` without materializing the transpose.
    pub fn matmul_nt(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        self.matmul_nt_to(rhs, &mut out.data);
        out
    }

    /// Write `self * rhs^T` into a caller-owned buffer (every element is
    /// overwritten; no pre-zeroing required).
    pub fn matmul_nt_to(&self, rhs: &Matrix, out: &mut [f32]) {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_nt: {}x{} * ({}x{})^T",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let (m, k, n) = (self.rows, self.cols, rhs.rows);
        assert_eq!(out.len(), m * n, "matmul_nt output buffer size");
        par::for_each_row_block(out, n, m * k * n, |rows, chunk| {
            matmul_nt_rows(&self.data, &rhs.data, chunk, rows, k, n);
        });
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Elementwise combine with another same-shape matrix.
    pub fn zip(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "zip shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// `self += other` elementwise.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// `self += alpha * other` elementwise.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Multiply every element by a scalar, in place.
    pub fn scale_assign(&mut self, alpha: f32) {
        for a in self.data.iter_mut() {
            *a *= alpha;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (negative infinity for empty).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Frobenius norm.
    pub fn frob_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    /// Number of NaN / infinite elements.
    pub fn count_non_finite(&self) -> usize {
        self.data.iter().filter(|x| !x.is_finite()).count()
    }

    /// Horizontal concatenation `[self | other]`.
    pub fn concat_cols(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "concat_cols row mismatch");
        let cols = self.cols + other.cols;
        let mut out = Matrix::zeros(self.rows, cols);
        for r in 0..self.rows {
            out.data[r * cols..r * cols + self.cols].copy_from_slice(self.row(r));
            out.data[r * cols + self.cols..(r + 1) * cols].copy_from_slice(other.row(r));
        }
        out
    }

    /// Copy of columns `[start, end)`.
    pub fn slice_cols(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.cols, "slice_cols out of range");
        let cols = end - start;
        let mut out = Matrix::zeros(self.rows, cols);
        for r in 0..self.rows {
            out.row_mut(r).copy_from_slice(&self.row(r)[start..end]);
        }
        out
    }

    /// Gather rows by index into a new matrix (output rows partitioned
    /// across threads; the source is only read, so any duplicate indices are
    /// safe).
    pub fn gather_rows(&self, idx: &[u32]) -> Matrix {
        let mut out = Matrix::zeros(idx.len(), self.cols);
        self.gather_rows_to(idx, &mut out.data);
        out
    }

    /// Gather rows by index into a caller-owned buffer (fully overwritten).
    pub fn gather_rows_to(&self, idx: &[u32], out: &mut [f32]) {
        let cols = self.cols;
        assert_eq!(out.len(), idx.len() * cols, "gather_rows output size");
        par::for_each_row_block(out, cols, idx.len() * cols, |rows, chunk| {
            for (ri, i) in rows.enumerate() {
                let r = idx[i] as usize;
                chunk[ri * cols..(ri + 1) * cols].copy_from_slice(self.row(r));
            }
        });
    }

    /// Row-wise softmax with temperature: `softmax(x / tau)` per row.
    pub fn softmax_rows(&self, tau: f32) -> Matrix {
        let mut out = self.clone();
        softmax_rows_inplace(&mut out.data, self.rows, self.cols, tau);
        out
    }

    /// Row-wise softmax written to a caller-owned buffer (fully overwritten;
    /// identical per-row transform to [`Matrix::softmax_rows`]).
    pub fn softmax_rows_to(&self, tau: f32, out: &mut [f32]) {
        assert_eq!(out.len(), self.data.len(), "softmax_rows output size");
        out.copy_from_slice(&self.data);
        softmax_rows_inplace(out, self.rows, self.cols, tau);
    }

    /// Row-wise argmax indices.
    pub fn argmax_rows(&self) -> Vec<u32> {
        (0..self.rows)
            .map(|r| {
                let row = self.row(r);
                let mut best = 0usize;
                for (i, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = i;
                    }
                }
                best as u32
            })
            .collect()
    }
}

/// Shared body of `softmax_rows`/`softmax_rows_to`: in-place row softmax with
/// temperature, same numeric order as the original per-row loop.
fn softmax_rows_inplace(data: &mut [f32], rows: usize, cols: usize, tau: f32) {
    for r in 0..rows {
        let row = &mut data[r * cols..(r + 1) * cols];
        let mx = row.iter().copied().fold(f32::NEG_INFINITY, f32::max) / tau;
        let mut sum = 0.0;
        for x in row.iter_mut() {
            *x = (*x / tau - mx).exp();
            sum += *x;
        }
        if sum > 0.0 {
            for x in row.iter_mut() {
                *x /= sum;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        assert_eq!(a.matmul_tn(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 1.0, 1.0], &[2.0, 0.0, 2.0]]);
        assert_eq!(a.matmul_nt(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn softmax_rows_sums_to_one() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[-5.0, 0.0, 5.0]]);
        let s = a.softmax_rows(1.0);
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_temperature_sharpens() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let soft = a.softmax_rows(1.0);
        let sharp = a.softmax_rows(0.1);
        assert!(sharp.get(0, 1) > soft.get(0, 1));
    }

    #[test]
    fn concat_and_slice_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0], &[6.0]]);
        let c = a.concat_cols(&b);
        assert_eq!(c.slice_cols(0, 2), a);
        assert_eq!(c.slice_cols(2, 3), b);
    }

    #[test]
    fn gather_rows_picks_rows() {
        let a = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let g = a.gather_rows(&[2, 0, 2]);
        assert_eq!(g, Matrix::from_rows(&[&[3.0], &[1.0], &[3.0]]));
    }

    #[test]
    fn argmax_rows_ties_pick_first() {
        let a = Matrix::from_rows(&[&[1.0, 1.0, 0.5], &[0.0, 2.0, 2.0]]);
        assert_eq!(a.argmax_rows(), vec![0, 1]);
    }
}
