//! Trainable parameters and the Adam optimizer.
//!
//! A [`ParamRef`] is a shared handle to a parameter's value, its accumulated
//! gradient and its Adam moment buffers. Models own `ParamRef`s; each training
//! iteration binds them into a fresh [`crate::Graph`], runs forward/backward,
//! calls [`crate::Graph::write_grads`] and then steps the optimizer.

use crate::matrix::Matrix;
use std::cell::{Ref, RefCell, RefMut};
use std::rc::Rc;

#[derive(Debug)]
pub(crate) struct ParamInner {
    pub name: String,
    pub value: Matrix,
    pub grad: Matrix,
    m: Matrix,
    v: Matrix,
    /// Monotone value-version counter: bumped by every mutable borrow of the
    /// value ([`ParamRef::value_mut`]) and every [`Adam::step`]. Replay uses
    /// it to skip both the leaf refresh memcpy and the GEMM repack for
    /// parameters whose value did not change since the last replay (the
    /// steady state of every inference tape).
    pub version: u64,
}

/// Shared handle to a trainable parameter.
#[derive(Clone, Debug)]
pub struct ParamRef(pub(crate) Rc<RefCell<ParamInner>>);

impl ParamRef {
    /// New named parameter with the given initial value.
    pub fn new(name: impl Into<String>, value: Matrix) -> Self {
        let (r, c) = value.shape();
        ParamRef(Rc::new(RefCell::new(ParamInner {
            name: name.into(),
            grad: Matrix::zeros(r, c),
            m: Matrix::zeros(r, c),
            v: Matrix::zeros(r, c),
            value,
            // Workspaces start their last-seen stamps at 0, so a fresh
            // parameter (version 1) is always refreshed on first replay.
            version: 1,
        })))
    }

    pub fn name(&self) -> String {
        self.0.borrow().name.clone()
    }

    /// Borrow the current value.
    pub fn value(&self) -> Ref<'_, Matrix> {
        Ref::map(self.0.borrow(), |p| &p.value)
    }

    /// Mutably borrow the current value (e.g. to load weights). Counts as a
    /// value change: the version is bumped even if the caller ends up
    /// writing nothing, which costs at most one spurious repack.
    pub fn value_mut(&self) -> RefMut<'_, Matrix> {
        let mut p = self.0.borrow_mut();
        p.version += 1;
        RefMut::map(p, |p| &mut p.value)
    }

    /// Current value version (see [`ParamInner::version`]).
    pub fn version(&self) -> u64 {
        self.0.borrow().version
    }

    /// Borrow the accumulated gradient.
    pub fn grad(&self) -> Ref<'_, Matrix> {
        Ref::map(self.0.borrow(), |p| &p.grad)
    }

    /// Add to the accumulated gradient.
    pub fn accumulate_grad(&self, g: &Matrix) {
        self.0.borrow_mut().grad.add_assign(g);
    }

    /// Reset the accumulated gradient to zero.
    pub fn zero_grad(&self) {
        let mut p = self.0.borrow_mut();
        for x in p.grad.as_mut_slice() {
            *x = 0.0;
        }
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.0.borrow().value.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Shape of the parameter matrix.
    pub fn shape(&self) -> (usize, usize) {
        self.0.borrow().value.shape()
    }

    /// True if both handles refer to the same parameter.
    pub fn same(&self, other: &ParamRef) -> bool {
        Rc::ptr_eq(&self.0, &other.0)
    }
}

/// An ordered collection of parameters (a model's trainable state).
#[derive(Clone, Default, Debug)]
pub struct ParamSet {
    params: Vec<ParamRef>,
}

impl ParamSet {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a parameter; returns the handle for convenience.
    pub fn track(&mut self, p: ParamRef) -> ParamRef {
        self.params.push(p.clone());
        p
    }

    /// Append every parameter of another set (e.g. a sub-module).
    pub fn extend(&mut self, other: &ParamSet) {
        self.params.extend(other.params.iter().cloned());
    }

    pub fn iter(&self) -> impl Iterator<Item = &ParamRef> {
        self.params.iter()
    }

    pub fn len(&self) -> usize {
        self.params.len()
    }

    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of scalar parameters.
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|p| p.len()).sum()
    }

    /// Model size in megabytes assuming f32 storage (paper Table III metric).
    pub fn size_mbytes(&self) -> f64 {
        self.num_scalars() as f64 * 4.0 / 1.0e6
    }

    /// Zero all gradients.
    pub fn zero_grads(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    /// Global gradient L2 norm (diagnostics / clipping).
    pub fn grad_norm(&self) -> f32 {
        self.params
            .iter()
            .map(|p| {
                let g = p.grad();
                g.as_slice().iter().map(|&x| x * x).sum::<f32>()
            })
            .sum::<f32>()
            .sqrt()
    }

    /// Scale all gradients so the global norm does not exceed `max_norm`.
    pub fn clip_grad_norm(&self, max_norm: f32) {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let scale = max_norm / norm;
            for p in &self.params {
                p.0.borrow_mut().grad.scale_assign(scale);
            }
        }
    }
}

/// Adam optimizer (Kingma & Ba) with optional exponential learning-rate
/// decay, as used in the paper ("decay rate ... 0.1% per epoch").
#[derive(Clone, Debug)]
pub struct Adam {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    t: u64,
}

impl Adam {
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
        }
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Exponential decay: multiply the learning rate by `(1 - rate)`.
    /// Call once per epoch with e.g. `rate = 0.001` for 0.1%/epoch.
    pub fn decay(&mut self, rate: f32) {
        self.lr *= 1.0 - rate;
    }

    /// Apply one Adam update using the gradients accumulated in `params`,
    /// then zero the gradients.
    pub fn step(&mut self, params: &ParamSet) {
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for p in params.iter() {
            let mut inner = p.0.borrow_mut();
            inner.version += 1;
            let ParamInner {
                value, grad, m, v, ..
            } = &mut *inner;
            for i in 0..value.len() {
                let g = grad.as_slice()[i];
                let mi = &mut m.as_mut_slice()[i];
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
                let vi = &mut v.as_mut_slice()[i];
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
                let m_hat = *mi / b1t;
                let v_hat = *vi / b2t;
                value.as_mut_slice()[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
            for g in grad.as_mut_slice() {
                *g = 0.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_minimizes_quadratic() {
        // minimize f(x) = (x - 3)^2 by hand-feeding gradients.
        let p = ParamRef::new("x", Matrix::filled(1, 1, 0.0));
        let mut set = ParamSet::new();
        set.track(p.clone());
        let mut opt = Adam::new(0.1);
        for _ in 0..500 {
            let x = p.value().get(0, 0);
            p.accumulate_grad(&Matrix::filled(1, 1, 2.0 * (x - 3.0)));
            opt.step(&set);
        }
        let x = p.value().get(0, 0);
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn decay_reduces_lr() {
        let mut opt = Adam::new(1.0);
        opt.decay(0.001);
        assert!((opt.lr - 0.999).abs() < 1e-6);
    }

    #[test]
    fn param_set_counts_scalars() {
        let mut set = ParamSet::new();
        set.track(ParamRef::new("a", Matrix::zeros(3, 4)));
        set.track(ParamRef::new("b", Matrix::zeros(5, 1)));
        assert_eq!(set.num_scalars(), 17);
        assert!((set.size_mbytes() - 17.0 * 4.0 / 1e6).abs() < 1e-12);
    }

    #[test]
    fn clip_grad_norm_scales() {
        let p = ParamRef::new("x", Matrix::zeros(1, 2));
        let mut set = ParamSet::new();
        set.track(p.clone());
        p.accumulate_grad(&Matrix::from_vec(1, 2, vec![3.0, 4.0]));
        set.clip_grad_norm(1.0);
        assert!((set.grad_norm() - 1.0).abs() < 1e-5);
    }
}
