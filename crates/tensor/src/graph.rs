//! Define-by-run recording facade over the replayable [`Plan`] engine.
//!
//! A [`Graph`] is a define-by-run Wengert list: every operation computes its
//! value eagerly and records an op node. [`Graph::backward`] walks the tape
//! in reverse, accumulating gradients. Trainable [`ParamRef`]s bound via
//! [`Graph::param`] receive their gradients through [`Graph::write_grads`].
//!
//! Since the Plan/Workspace split (DESIGN.md §7) this type is a thin shim:
//! recording pushes an op into an internal [`Plan`] and executes it into a
//! preallocated [`Workspace`] buffer via the same `exec_forward` used by
//! replay. Training loops record a graph **once** and call
//! [`Graph::replay`] each epoch (parameter leaves are refreshed from their
//! `ParamRef`s; constants keep their recorded values); steady-state epochs
//! perform zero heap allocation in forward + backward. Inference paths use
//! [`Graph::inference`], which never allocates gradient buffers.
//!
//! Besides the usual dense ops, the tape has graph-learning primitives needed
//! by the paper: `gather_rows`, per-destination `edge_softmax`, attention
//! aggregation (`edge_aggregate`), constant-sparse matmul (`spmm`) for GCN,
//! a `gated_matmul` implementing the MS-Gate parameter filter (eq. 21), and
//! im2col convolution / max pooling for the CNN baselines.

use crate::conv::{ConvMeta, PoolMeta};
use crate::matrix::Matrix;
use crate::param::ParamRef;
use crate::plan::{exec_forward, FusedAct, Op, Plan, Workspace};
use crate::sparse::EdgeIndex;
use std::sync::Arc;

pub use crate::plan::{CsrPair, NodeId};

/// Tape-growth telemetry: nodes pushed during recording (uvd_obs counter;
/// a single relaxed load when tracing is off).
static RECORD_NODES: uvd_obs::Counter = uvd_obs::Counter::new("tensor.plan.record_nodes");

/// Define-by-run autodiff tape (recording facade over [`Plan`]).
#[derive(Default)]
pub struct Graph {
    plan: Plan,
    ws: Workspace,
    inference: bool,
    /// Cached `1×1` unit seed so repeated [`Graph::backward`] calls stay
    /// allocation-free in the steady state.
    unit_seed: Option<Matrix>,
}

impl Graph {
    pub fn new() -> Self {
        Self::default()
    }

    /// A graph for forward-only execution: recording works as usual, but
    /// gradient buffers are never allocated and [`Graph::backward`] panics.
    /// Used by all `predict`/`predict_proba` paths.
    pub fn inference() -> Self {
        Graph {
            inference: true,
            ..Self::default()
        }
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.plan.len()
    }

    pub fn is_empty(&self) -> bool {
        self.plan.is_empty()
    }

    /// The recorded op topology.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// The buffer arena backing this graph.
    pub fn workspace(&self) -> &Workspace {
        &self.ws
    }

    /// Split into the raw plan + workspace, for callers migrating off the
    /// shim to drive replay/backward directly.
    pub fn into_parts(self) -> (Plan, Workspace) {
        (self.plan, self.ws)
    }

    /// Total bytes held in this graph's value/gradient buffers.
    pub fn workspace_bytes(&self) -> usize {
        self.ws.bytes()
    }

    /// Bytes held by cached RHS panel packs (a subset of
    /// [`Graph::workspace_bytes`]).
    pub fn pack_bytes(&self) -> usize {
        self.ws.pack_bytes()
    }

    /// Re-execute the recorded forward pass in place: parameter leaves are
    /// refreshed from their [`ParamRef`]s, every other node is recomputed
    /// into its existing buffer. No heap allocation.
    pub fn replay(&mut self) {
        self.plan.replay(&mut self.ws);
    }

    fn push_value(&mut self, op: Op, value: Matrix) -> NodeId {
        RECORD_NODES.add(1);
        let id = NodeId::from_index(self.plan.len());
        let needs = crate::plan::op_needs_grad(&op, &self.plan.needs_grad);
        // Leaves start as pack-cacheable constants; `param` (refreshed every
        // replay) demotes itself, `set_value` invalidates the cached pack.
        self.plan.const_leaf.push(matches!(op, Op::Leaf));
        self.plan.ops.push(op);
        self.plan.needs_grad.push(needs);
        self.ws.values.push(value);
        self.ws.packs.push(Default::default());
        self.ws.packs_a.push(Default::default());
        id
    }

    /// Handle for the `i`-th recorded node (record order). Useful when
    /// correlating nodes across engines, e.g. against [`crate::legacy`].
    pub fn node(&self, i: usize) -> NodeId {
        assert!(i < self.plan.len(), "node index out of range");
        NodeId::from_index(i)
    }

    /// Record an op with a preallocated `rows × cols` output and execute it
    /// immediately (the same executor replay uses, so record and replay are
    /// bit-identical by construction).
    fn record(&mut self, op: Op, rows: usize, cols: usize) -> NodeId {
        let id = self.push_value(op, Matrix::zeros(rows, cols));
        exec_forward(&self.plan, &mut self.ws, id.idx());
        // Non-finite outputs are deliberately tolerated here — divergence is
        // reported as a typed error at the loss, not a panic inside an op
        // (see Plan::first_non_finite for localization).
        id
    }

    /// Value of a node.
    pub fn value(&self, id: NodeId) -> &Matrix {
        self.ws.value(id)
    }

    /// Scalar value of a 1×1 node.
    pub fn scalar(&self, id: NodeId) -> f32 {
        let v = self.value(id);
        assert_eq!(v.shape(), (1, 1), "scalar() on non-scalar node");
        v.get(0, 0)
    }

    /// Gradient of a node (after `backward`), if it received one. Nodes with
    /// no parameter or [`Graph::variable`] leaf in their ancestry are pruned
    /// from the backward pass and always report `None`.
    pub fn grad(&self, id: NodeId) -> Option<&Matrix> {
        self.ws.grad(id)
    }

    /// True when the value of `id` holds only finite elements. Cheap guard
    /// for loss nodes before an optimizer step.
    pub fn all_finite(&self, id: NodeId) -> bool {
        self.ws.all_finite(id)
    }

    /// First non-leaf node holding a non-finite value, with its non-finite
    /// element count (see [`Plan::first_non_finite`]).
    pub fn first_non_finite(&self) -> Option<(NodeId, usize)> {
        self.plan.first_non_finite(&self.ws)
    }

    // ----- leaves -------------------------------------------------------

    /// Constant leaf. Constants do not request a gradient: the backward pass
    /// prunes every branch that reaches only constants, and [`Graph::grad`]
    /// reports `None` for them. Use [`Graph::variable`] to track the
    /// gradient of a non-parameter input.
    pub fn constant(&mut self, m: Matrix) -> NodeId {
        self.push_value(Op::Leaf, m)
    }

    /// Grad-tracking leaf: like [`Graph::constant`] but its gradient (and
    /// those of every node on a path to it) is computed by `backward` and
    /// readable via [`Graph::grad`].
    pub fn variable(&mut self, m: Matrix) -> NodeId {
        let id = self.push_value(Op::Leaf, m);
        self.plan.needs_grad[id.idx()] = true;
        id
    }

    /// Overwrite a leaf's value in place (same shape), e.g. to feed new
    /// inputs into a recorded inference plan before [`Graph::replay`].
    pub fn set_value(&mut self, id: NodeId, m: &Matrix) {
        assert!(
            matches!(self.plan.ops[id.idx()], Op::Leaf),
            "set_value targets a leaf"
        );
        let dst = &mut self.ws.values[id.idx()];
        assert_eq!(dst.shape(), m.shape(), "set_value shape mismatch");
        dst.as_mut_slice().copy_from_slice(m.as_slice());
        // Cached packs of this leaf (RHS panels, conv-kernel LHS panels) no
        // longer match its value.
        self.ws.packs[id.idx()].stamp = crate::gemm::NEVER;
        self.ws.packs_a[id.idx()].stamp = crate::gemm::NEVER;
    }

    /// Bind a trainable parameter; its gradient is delivered by
    /// [`Graph::write_grads`].
    pub fn param(&mut self, p: &ParamRef) -> NodeId {
        let id = self.push_value(Op::Leaf, p.value().clone());
        self.plan.needs_grad[id.idx()] = true;
        // Parameter leaves stay pack-cacheable constants: replay compares
        // the parameter's value version against the workspace's last-seen
        // stamp and invalidates the cached pack only on change. Training
        // still repacks once per optimizer step; frozen-weight inference
        // tapes keep their packs for the plan's lifetime.
        self.plan.param_links.push((id, p.clone()));
        id
    }

    // ----- dense ops ----------------------------------------------------

    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (m, n) = (self.value(a).rows(), self.value(b).cols());
        self.record(Op::MatMul(a, b), m, n)
    }

    /// `act(a * b + bias)` as one fused node: bit-identical to the unfused
    /// `matmul` → `add_row` → activation sequence, without materializing the
    /// two intermediates. `FusedAct::LeakyRelu` requires a non-negative
    /// slope (the fused backward recovers the mask from the output sign).
    pub fn matmul_bias_act(&mut self, a: NodeId, b: NodeId, bias: NodeId, act: FusedAct) -> NodeId {
        let (m, k) = self.value(a).shape();
        let (kb, n) = self.value(b).shape();
        assert_eq!(k, kb, "matmul_bias_act: {m}x{k} * {kb}x{n}");
        assert_eq!(self.value(bias).shape(), (1, n), "matmul_bias_act bias");
        if let FusedAct::LeakyRelu(slope) = act {
            assert!(slope >= 0.0, "matmul_bias_act: negative LeakyRelu slope");
        }
        self.record(Op::MatMulBiasAct(a, b, bias, act), m, n)
    }

    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (m, n) = self.value(a).shape();
        self.record(Op::Add(a, b), m, n)
    }

    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (m, n) = self.value(a).shape();
        self.record(Op::Sub(a, b), m, n)
    }

    /// Hadamard (elementwise) product.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (m, n) = self.value(a).shape();
        self.record(Op::Mul(a, b), m, n)
    }

    /// Broadcast add of a `1×n` row to every row of an `m×n` matrix.
    pub fn add_row(&mut self, a: NodeId, row: NodeId) -> NodeId {
        let (m, n) = self.value(a).shape();
        assert_eq!(self.value(row).shape(), (1, n), "add_row shape");
        self.record(Op::AddRow(a, row), m, n)
    }

    /// Broadcast multiply of a `1×n` row against every row of an `m×n` matrix.
    pub fn mul_row(&mut self, a: NodeId, row: NodeId) -> NodeId {
        let (m, n) = self.value(a).shape();
        assert_eq!(self.value(row).shape(), (1, n), "mul_row shape");
        self.record(Op::MulRow(a, row), m, n)
    }

    /// Broadcast multiply of an `m×1` column against every column of an
    /// `m×n` matrix.
    pub fn mul_col(&mut self, a: NodeId, col: NodeId) -> NodeId {
        let (m, n) = self.value(a).shape();
        assert_eq!(self.value(col).shape(), (m, 1), "mul_col shape");
        self.record(Op::MulCol(a, col), m, n)
    }

    pub fn scale(&mut self, a: NodeId, s: f32) -> NodeId {
        let (m, n) = self.value(a).shape();
        self.record(Op::Scale(a, s), m, n)
    }

    pub fn add_scalar(&mut self, a: NodeId, s: f32) -> NodeId {
        let (m, n) = self.value(a).shape();
        self.record(Op::AddScalar(a, s), m, n)
    }

    // ----- activations --------------------------------------------------

    pub fn leaky_relu(&mut self, a: NodeId, slope: f32) -> NodeId {
        let (m, n) = self.value(a).shape();
        self.record(Op::LeakyRelu(a, slope), m, n)
    }

    pub fn relu(&mut self, a: NodeId) -> NodeId {
        self.leaky_relu(a, 0.0)
    }

    pub fn sigmoid(&mut self, a: NodeId) -> NodeId {
        let (m, n) = self.value(a).shape();
        self.record(Op::Sigmoid(a), m, n)
    }

    pub fn tanh(&mut self, a: NodeId) -> NodeId {
        let (m, n) = self.value(a).shape();
        self.record(Op::Tanh(a), m, n)
    }

    pub fn exp(&mut self, a: NodeId) -> NodeId {
        let (m, n) = self.value(a).shape();
        self.record(Op::Exp(a), m, n)
    }

    /// Natural log with an epsilon floor for stability: `ln(x + eps)`.
    pub fn ln_eps(&mut self, a: NodeId, eps: f32) -> NodeId {
        let (m, n) = self.value(a).shape();
        self.record(Op::LnEps(a, eps), m, n)
    }

    /// Row-wise softmax with temperature: `softmax(x / tau)`.
    pub fn softmax_rows(&mut self, a: NodeId, tau: f32) -> NodeId {
        assert!(tau > 0.0, "softmax temperature must be positive");
        let (m, n) = self.value(a).shape();
        self.record(Op::SoftmaxRows(a, tau), m, n)
    }

    // ----- shape ops ----------------------------------------------------

    pub fn concat_cols(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (m, ca) = self.value(a).shape();
        let (mb, cb) = self.value(b).shape();
        assert_eq!(m, mb, "concat_cols row mismatch");
        self.record(Op::ConcatCols(a, b), m, ca + cb)
    }

    pub fn slice_cols(&mut self, a: NodeId, start: usize, end: usize) -> NodeId {
        let (m, n) = self.value(a).shape();
        assert!(start <= end && end <= n, "slice_cols out of range");
        self.record(Op::SliceCols(a, start, end), m, end - start)
    }

    pub fn transpose(&mut self, a: NodeId) -> NodeId {
        let (m, n) = self.value(a).shape();
        self.record(Op::Transpose(a), n, m)
    }

    // ----- reductions ---------------------------------------------------

    pub fn sum_all(&mut self, a: NodeId) -> NodeId {
        self.record(Op::SumAll(a), 1, 1)
    }

    pub fn mean_all(&mut self, a: NodeId) -> NodeId {
        self.record(Op::MeanAll(a), 1, 1)
    }

    /// Sum each row: `m×n -> m×1`.
    pub fn row_sum(&mut self, a: NodeId) -> NodeId {
        let (m, _) = self.value(a).shape();
        self.record(Op::RowSum(a), m, 1)
    }

    // ----- graph-learning primitives -------------------------------------

    /// Gather rows of `a` by index: `out[i] = a[idx[i]]`.
    pub fn gather_rows(&mut self, a: NodeId, idx: Arc<Vec<u32>>) -> NodeId {
        let n = self.value(a).cols();
        let rows = idx.len();
        self.record(Op::GatherRows(a, idx), rows, n)
    }

    /// Constant-sparse × dense product (GCN propagation step).
    pub fn spmm(&mut self, a: Arc<CsrPair>, x: NodeId) -> NodeId {
        let (m, n) = (a.fwd.rows(), self.value(x).cols());
        self.record(Op::SpMM(a, x), m, n)
    }

    /// Softmax of per-edge scores (`E×1`), normalized within each group of
    /// edges sharing a destination node (eq. 3 / eq. 7 of the paper).
    pub fn edge_softmax(&mut self, scores: NodeId, edges: Arc<EdgeIndex>) -> NodeId {
        assert_eq!(
            self.value(scores).shape(),
            (edges.n_edges(), 1),
            "edge_softmax shape"
        );
        let e = edges.n_edges();
        self.record(Op::EdgeSoftmax(scores, edges), e, 1)
    }

    /// Attention aggregation (eq. 2 / eq. 6): `out[dst] += alpha_e * h[src]`.
    pub fn edge_aggregate(&mut self, alpha: NodeId, h: NodeId, edges: Arc<EdgeIndex>) -> NodeId {
        assert_eq!(
            self.value(alpha).shape(),
            (edges.n_edges(), 1),
            "edge_aggregate alpha shape"
        );
        assert_eq!(
            self.value(h).rows(),
            edges.n_nodes(),
            "edge_aggregate h shape"
        );
        let (m, d) = (edges.n_nodes(), self.value(h).cols());
        self.record(Op::EdgeAggregate(alpha, h, edges), m, d)
    }

    /// MS-Gate gated linear map (eqs. 20–22):
    /// `z[i,k] = Σ_d x[i,d] · w[d,k] · f[i, d*h + k]`, where `f` is the
    /// per-sample parameter filter over the flattened weight matrix.
    pub fn gated_matmul(&mut self, x: NodeId, w: NodeId, f: NodeId) -> NodeId {
        let (n, d) = self.value(x).shape();
        let (dw, h) = self.value(w).shape();
        assert_eq!(d, dw, "gated_matmul inner dims");
        assert_eq!(
            self.value(f).shape(),
            (n, d * h),
            "gated_matmul filter shape"
        );
        self.record(Op::GatedMatMul(x, w, f), n, h)
    }

    /// Pairwise differences `out[i,j] = a[i] - b[j]` for column vectors
    /// (used by the PU rank loss, eq. 18).
    pub fn sub_outer(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (m, ca) = self.value(a).shape();
        let (n, cb) = self.value(b).shape();
        assert_eq!((ca, cb), (1, 1), "sub_outer expects column vectors");
        self.record(Op::SubOuter(a, b), m, n)
    }

    /// Numerically stable weighted binary cross-entropy with logits
    /// (eq. 15 / eq. 23). Returns a `1×1` node with the weighted mean loss;
    /// weights typically mask to the labeled region set.
    pub fn bce_with_logits(
        &mut self,
        logits: NodeId,
        targets: Arc<Vec<f32>>,
        weights: Arc<Vec<f32>>,
    ) -> NodeId {
        let z = self.value(logits);
        assert_eq!(z.cols(), 1, "bce expects a column of logits");
        assert_eq!(z.rows(), targets.len(), "bce target count");
        assert_eq!(z.rows(), weights.len(), "bce weight count");
        self.record(Op::BceWithLogits(logits, targets, weights), 1, 1)
    }

    // ----- convolution ----------------------------------------------------

    /// Batched 2-D convolution via im2col. `x` is `n × (c_in*h*w)`, `kernel`
    /// is `c_out × (c_in*k*k)`; output is `n × (c_out*h_out*w_out)`.
    pub fn conv2d(&mut self, x: NodeId, kernel: NodeId, meta: ConvMeta) -> NodeId {
        let xm = self.value(x);
        assert_eq!(xm.cols(), meta.in_len(), "conv2d input length");
        assert_eq!(
            self.value(kernel).shape(),
            meta.kernel_shape(),
            "conv2d kernel shape"
        );
        let n = xm.rows();
        let out_len = meta.out_len();
        self.record(Op::Conv2d(x, kernel, meta), n, out_len)
    }

    /// Add a per-channel bias (`1×channels`) to a conv output laid out as
    /// `n × (channels*hw)`.
    pub fn add_chan_bias(&mut self, a: NodeId, bias: NodeId, channels: usize, hw: usize) -> NodeId {
        let (n, len) = self.value(a).shape();
        assert_eq!(len, channels * hw, "add_chan_bias layout");
        assert_eq!(
            self.value(bias).shape(),
            (1, channels),
            "add_chan_bias bias shape"
        );
        self.record(Op::AddChanBias(a, bias, channels, hw), n, len)
    }

    /// Batched 2×2/stride-2 max pooling.
    pub fn max_pool2(&mut self, x: NodeId, meta: PoolMeta) -> NodeId {
        let xm = self.value(x);
        assert_eq!(xm.cols(), meta.in_len(), "max_pool2 input length");
        let n = xm.rows();
        let out_len = meta.out_len();
        self.record(Op::MaxPool2(x, meta), n, out_len)
    }

    // ----- compound helpers ----------------------------------------------

    /// Mean squared error between two same-shape nodes, as a scalar node.
    pub fn mse(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let d = self.sub(a, b);
        let sq = self.mul(d, d);
        self.mean_all(sq)
    }

    // ----- backward -------------------------------------------------------

    /// Reverse pass from `root` (must be `1×1`). Gradients are stored in the
    /// workspace and can be read with [`Graph::grad`].
    pub fn backward(&mut self, root: NodeId) {
        assert_eq!(
            self.value(root).shape(),
            (1, 1),
            "backward root must be scalar"
        );
        let seed = self
            .unit_seed
            .take()
            .unwrap_or_else(|| Matrix::filled(1, 1, 1.0));
        assert!(!self.inference, "backward on an inference graph");
        self.plan.backward(&mut self.ws, root, &seed);
        self.unit_seed = Some(seed);
    }

    /// Reverse pass with an explicit seed gradient for `root`.
    pub fn backward_seeded(&mut self, root: NodeId, seed: Matrix) {
        assert!(!self.inference, "backward on an inference graph");
        self.plan.backward(&mut self.ws, root, &seed);
    }

    /// Copy gradients of bound parameters back into their [`ParamRef`]s
    /// (accumulating). Call after [`Graph::backward`].
    pub fn write_grads(&self) {
        self.plan.write_grads(&self.ws);
    }
}

#[cfg(test)]
mod tests {
    // Exact float equality is intended in these tests: they assert
    // exact constants and bit-reproducible results, not tolerances.
    #![allow(clippy::float_cmp)]

    use super::*;
    use crate::matrix::Matrix;

    #[test]
    fn backward_through_matmul_chain() {
        // loss = sum(A * B); dA = 1 * B^T, dB = A^T * 1.
        let mut g = Graph::new();
        let a = g.variable(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let b = g.variable(Matrix::from_rows(&[&[5.0], &[6.0]]));
        let y = g.matmul(a, b);
        let loss = g.sum_all(y);
        g.backward(loss);
        let da = g.grad(a).unwrap();
        assert_eq!(da, &Matrix::from_rows(&[&[5.0, 6.0], &[5.0, 6.0]]));
        let db = g.grad(b).unwrap();
        assert_eq!(db, &Matrix::from_rows(&[&[4.0], &[6.0]]));
    }

    #[test]
    fn grad_accumulates_on_reuse() {
        // loss = sum(x * x) -> dx = 2x.
        let mut g = Graph::new();
        let x = g.variable(Matrix::from_rows(&[&[3.0]]));
        let y = g.mul(x, x);
        let loss = g.sum_all(y);
        g.backward(loss);
        assert_eq!(g.grad(x).unwrap().get(0, 0), 6.0);
    }

    #[test]
    fn bce_gradient_is_sigmoid_minus_target() {
        let mut g = Graph::new();
        let z = g.variable(Matrix::col_vec(&[0.0, 2.0]));
        let loss = g.bce_with_logits(z, Arc::new(vec![1.0, 0.0]), Arc::new(vec![1.0, 1.0]));
        g.backward(loss);
        let dz = g.grad(z).unwrap();
        assert!((dz.get(0, 0) - (0.5 - 1.0) / 2.0).abs() < 1e-5);
        let p2 = 1.0 / (1.0 + (-2.0f32).exp());
        assert!((dz.get(1, 0) - (p2 - 0.0) / 2.0).abs() < 1e-5);
    }

    #[test]
    fn edge_softmax_normalizes_incoming() {
        let edges = Arc::new(EdgeIndex::from_pairs(3, vec![(0, 2), (1, 2), (2, 0)]));
        let mut g = Graph::new();
        // Edges are sorted by destination: edge 0 is (2,0); edges 1,2 are
        // (0,2) and (1,2). Give node 2's two incoming edges equal scores.
        let s = g.constant(Matrix::col_vec(&[3.0, 1.0, 1.0]));
        let a = g.edge_softmax(s, edges.clone());
        let v = g.value(a);
        // Node 0 has one incoming edge -> alpha = 1.
        let e0 = edges.incoming(0).next().unwrap();
        assert!((v.get(e0, 0) - 1.0).abs() < 1e-6);
        // Node 2 has two equal-score incoming edges -> 0.5 each.
        for e in edges.incoming(2) {
            assert!((v.get(e, 0) - 0.5).abs() < 1e-6);
        }
    }

    #[test]
    fn write_grads_reaches_params() {
        let p = ParamRef::new("w", Matrix::filled(1, 1, 2.0));
        let mut g = Graph::new();
        let w = g.param(&p);
        let y = g.mul(w, w);
        let loss = g.sum_all(y);
        g.backward(loss);
        g.write_grads();
        assert_eq!(p.grad().get(0, 0), 4.0);
    }

    #[test]
    fn replay_refreshes_params_and_matches_fresh_tape() {
        let p = ParamRef::new("w", Matrix::filled(1, 1, 2.0));
        let mut g = Graph::new();
        let w = g.param(&p);
        let c = g.constant(Matrix::filled(1, 1, 3.0));
        let y = g.mul(w, c);
        assert_eq!(g.scalar(y), 6.0);
        // Update the parameter out-of-band, then replay.
        p.value_mut().set(0, 0, 5.0);
        g.replay();
        assert_eq!(g.scalar(y), 15.0);
        // Backward still works against replayed values.
        g.backward(y);
        assert_eq!(g.grad(w).unwrap().get(0, 0), 3.0);
    }

    #[test]
    fn constants_prune_gradients_but_params_still_flow() {
        let p = ParamRef::new("w", Matrix::filled(1, 1, 2.0));
        let mut g = Graph::new();
        let x = g.constant(Matrix::filled(1, 1, 3.0));
        let scaled = g.scale(x, 2.0); // constant-only subtree: pruned
        let w = g.param(&p);
        let y = g.mul(scaled, w);
        let loss = g.sum_all(y);
        g.backward(loss);
        assert!(g.grad(x).is_none(), "constant leaf gradient must be pruned");
        assert!(g.grad(scaled).is_none(), "constant subtree must be pruned");
        assert_eq!(g.grad(w).unwrap().get(0, 0), 6.0);
    }

    #[test]
    #[should_panic(expected = "backward on an inference graph")]
    fn inference_graph_rejects_backward() {
        let mut g = Graph::inference();
        let x = g.constant(Matrix::filled(1, 1, 1.0));
        let y = g.mul(x, x);
        g.backward(y);
    }

    #[test]
    fn set_value_feeds_new_inputs_through_replay() {
        let mut g = Graph::inference();
        let x = g.constant(Matrix::filled(2, 1, 1.0));
        let y = g.scale(x, 2.0);
        g.set_value(x, &Matrix::filled(2, 1, 4.0));
        g.replay();
        assert_eq!(g.value(y).get(0, 0), 8.0);
    }
}
