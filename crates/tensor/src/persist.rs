//! Minimal, dependency-free persistence for named matrices and parameter
//! sets — enough to save a trained detector to disk and reload it for
//! inference (little-endian binary format with a magic header).
//!
//! Format (version 1):
//! ```text
//! magic  : b"UVDT0001"
//! count  : u32
//! entry* : name_len u32 | name bytes (utf-8) | rows u32 | cols u32 | f32*
//! ```

use crate::matrix::Matrix;
use crate::param::ParamSet;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"UVDT0001";

/// An ordered collection of named matrices.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MatrixStore {
    entries: Vec<(String, Matrix)>,
}

impl MatrixStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert (or replace) a named matrix.
    pub fn insert(&mut self, name: impl Into<String>, m: Matrix) {
        let name = name.into();
        if let Some(e) = self.entries.iter_mut().find(|(n, _)| *n == name) {
            e.1 = m;
        } else {
            self.entries.push((name, m));
        }
    }

    /// Look up a matrix by name.
    pub fn get(&self, name: &str) -> Option<&Matrix> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, m)| m)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(n, _)| n.as_str())
    }

    /// Capture every parameter of a set (by parameter name).
    pub fn capture_params(&mut self, params: &ParamSet) {
        for p in params.iter() {
            self.insert(p.name(), p.value().clone());
        }
    }

    /// Remove a named matrix, returning it if present.
    pub fn remove(&mut self, name: &str) -> Option<Matrix> {
        let i = self.entries.iter().position(|(n, _)| n == name)?;
        Some(self.entries.remove(i).1)
    }

    /// Check that every parameter of a set is present in the store with a
    /// matching shape, without mutating anything. Callers restoring several
    /// pieces of state run this first so a failed restore is a no-op.
    pub fn validate_params(&self, params: &ParamSet) -> io::Result<()> {
        for p in params.iter() {
            let name = p.name();
            let m = self.get(&name).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("missing parameter '{name}'"),
                )
            })?;
            if m.shape() != p.shape() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "shape mismatch for '{name}': {:?} vs {:?}",
                        m.shape(),
                        p.shape()
                    ),
                ));
            }
        }
        Ok(())
    }

    /// Restore parameters of a set from the store by name. Every parameter
    /// must be present with a matching shape; validation runs up front so a
    /// failure leaves every parameter untouched.
    pub fn restore_params(&self, params: &ParamSet) -> io::Result<()> {
        self.validate_params(params)?;
        for p in params.iter() {
            let m = self.get(&p.name()).expect("validated above");
            *p.value_mut() = m.clone();
        }
        Ok(())
    }

    /// Serialize to a writer.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&(self.entries.len() as u32).to_le_bytes())?;
        for (name, m) in &self.entries {
            let bytes = name.as_bytes();
            w.write_all(&(bytes.len() as u32).to_le_bytes())?;
            w.write_all(bytes)?;
            w.write_all(&(m.rows() as u32).to_le_bytes())?;
            w.write_all(&(m.cols() as u32).to_le_bytes())?;
            for &v in m.as_slice() {
                w.write_all(&v.to_le_bytes())?;
            }
        }
        Ok(())
    }

    /// Deserialize from a reader.
    pub fn read_from(r: &mut impl Read) -> io::Result<Self> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
        }
        let count = read_u32(r)? as usize;
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let name_len = read_u32(r)? as usize;
            if name_len > 1 << 20 {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "name too long"));
            }
            let mut name = vec![0u8; name_len];
            r.read_exact(&mut name)?;
            let name = String::from_utf8(name)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-utf8 name"))?;
            let rows = read_u32(r)? as usize;
            let cols = read_u32(r)? as usize;
            if rows.checked_mul(cols).is_none_or(|n| n > 1 << 28) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "matrix too large",
                ));
            }
            let mut data = vec![0.0f32; rows * cols];
            let mut buf = [0u8; 4];
            for v in &mut data {
                r.read_exact(&mut buf)?;
                *v = f32::from_le_bytes(buf);
            }
            entries.push((name, Matrix::from_vec(rows, cols, data)));
        }
        Ok(MatrixStore { entries })
    }

    /// Save to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut f = io::BufWriter::new(std::fs::File::create(path)?);
        self.write_to(&mut f)?;
        f.flush()
    }

    /// Load from a file.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let mut f = io::BufReader::new(std::fs::File::open(path)?);
        Self::read_from(&mut f)
    }
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    // Exact float equality is intended in these tests: they assert
    // exact constants and bit-reproducible results, not tolerances.
    #![allow(clippy::float_cmp)]

    use super::*;
    use crate::init::{normal_matrix, seeded_rng};
    use crate::param::ParamRef;

    #[test]
    fn roundtrip_in_memory() {
        let mut rng = seeded_rng(1);
        let mut store = MatrixStore::new();
        store.insert("a", normal_matrix(3, 4, 0.0, 1.0, &mut rng));
        store.insert("b", Matrix::zeros(1, 1));
        store.insert("empty", Matrix::zeros(2, 0));
        let mut buf = Vec::new();
        store.write_to(&mut buf).expect("write");
        let back = MatrixStore::read_from(&mut buf.as_slice()).expect("read");
        assert_eq!(store, back);
    }

    #[test]
    fn insert_replaces_by_name() {
        let mut store = MatrixStore::new();
        store.insert("x", Matrix::filled(1, 1, 1.0));
        store.insert("x", Matrix::filled(1, 1, 2.0));
        assert_eq!(store.len(), 1);
        assert_eq!(store.get("x").expect("x").get(0, 0), 2.0);
    }

    #[test]
    fn param_capture_restore() {
        let mut rng = seeded_rng(2);
        let p1 = ParamRef::new("w", normal_matrix(2, 3, 0.0, 1.0, &mut rng));
        let p2 = ParamRef::new("b", normal_matrix(1, 3, 0.0, 1.0, &mut rng));
        let mut set = ParamSet::new();
        set.track(p1.clone());
        set.track(p2.clone());
        let mut store = MatrixStore::new();
        store.capture_params(&set);
        // Mutate, then restore.
        p1.value_mut().set(0, 0, 99.0);
        store.restore_params(&set).expect("restore");
        assert_ne!(p1.value().get(0, 0), 99.0);
    }

    #[test]
    fn failed_restore_mutates_nothing() {
        // Two params; the store has a valid entry for the first but a bad
        // shape for the second. The first must stay untouched.
        let p1 = ParamRef::new("w", Matrix::filled(2, 2, 1.0));
        let p2 = ParamRef::new("b", Matrix::filled(1, 2, 1.0));
        let mut set = ParamSet::new();
        set.track(p1.clone());
        set.track(p2.clone());
        let mut store = MatrixStore::new();
        store.insert("w", Matrix::filled(2, 2, 9.0));
        store.insert("b", Matrix::filled(3, 3, 9.0)); // wrong shape
        assert!(store.restore_params(&set).is_err());
        assert_eq!(p1.value().get(0, 0), 1.0, "failed restore must be a no-op");
        assert_eq!(p2.value().get(0, 0), 1.0);
    }

    #[test]
    fn remove_drops_named_entry() {
        let mut store = MatrixStore::new();
        store.insert("x", Matrix::filled(1, 1, 5.0));
        assert_eq!(store.remove("x").expect("present").get(0, 0), 5.0);
        assert!(store.remove("x").is_none());
        assert!(store.is_empty());
    }

    #[test]
    fn restore_rejects_shape_mismatch() {
        let p = ParamRef::new("w", Matrix::zeros(2, 2));
        let mut set = ParamSet::new();
        set.track(p);
        let mut store = MatrixStore::new();
        store.insert("w", Matrix::zeros(3, 3));
        assert!(store.restore_params(&set).is_err());
    }

    #[test]
    fn restore_rejects_missing_param() {
        let p = ParamRef::new("w", Matrix::zeros(2, 2));
        let mut set = ParamSet::new();
        set.track(p);
        let store = MatrixStore::new();
        assert!(store.restore_params(&set).is_err());
    }

    #[test]
    fn read_rejects_bad_magic() {
        let buf = b"NOTMAGIC\0\0\0\0".to_vec();
        assert!(MatrixStore::read_from(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let mut store = MatrixStore::new();
        store.insert("m", Matrix::from_rows(&[&[1.5, -2.5]]));
        let dir = std::env::temp_dir().join("uvd_persist_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("weights.uvdt");
        store.save(&path).expect("save");
        let back = MatrixStore::load(&path).expect("load");
        assert_eq!(store, back);
        let _ = std::fs::remove_file(&path);
    }
}
