//! Minimal, dependency-free persistence for named matrices and parameter
//! sets — enough to save a trained detector to disk and reload it for
//! inference (little-endian binary format with a magic header).
//!
//! Format (version 1):
//! ```text
//! magic  : b"UVDT0001"
//! count  : u32
//! entry* : name_len u32 | name bytes (utf-8) | rows u32 | cols u32 | f32*
//! ```
//!
//! Version 2 (`UVDT0002`) extends each entry with embedding metadata and a
//! schema-version field; see [`crate::embed`].

use crate::matrix::Matrix;
use crate::param::ParamSet;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::path::Path;

pub(crate) const MAGIC: &[u8; 8] = b"UVDT0001";

/// Longest serializable name / city-id string (guards hostile headers).
pub(crate) const MAX_NAME_LEN: usize = 1 << 20;
/// Largest deserializable matrix in elements (guards hostile headers).
pub(crate) const MAX_ELEMS: usize = 1 << 28;

/// Checked conversion for on-disk `u32` fields. The old truncating `as u32`
/// casts silently wrote corrupt files for dimensions above `u32::MAX`.
pub(crate) fn u32_field(n: usize, what: &str) -> io::Result<u32> {
    u32::try_from(n).map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("{what} {n} does not fit the u32 format field"),
        )
    })
}

/// An ordered collection of named matrices.
///
/// Lookups go through a name→index map kept in lockstep with the entry
/// vector, so `get`/`insert` are O(1) in the store size — `restore_params`
/// on an m-parameter model over an n-entry store is O(m), not O(n·m), and
/// the embedding-store bulk-insert path does not degrade quadratically.
#[derive(Clone, Debug, Default)]
pub struct MatrixStore {
    entries: Vec<(String, Matrix)>,
    index: HashMap<String, usize>,
}

impl PartialEq for MatrixStore {
    fn eq(&self, other: &Self) -> bool {
        // The index is derived state; two stores are equal iff their
        // ordered entries are.
        self.entries == other.entries
    }
}

impl MatrixStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert (or replace) a named matrix.
    pub fn insert(&mut self, name: impl Into<String>, m: Matrix) {
        let name = name.into();
        match self.index.get(&name) {
            Some(&i) => self.entries[i].1 = m,
            None => {
                self.index.insert(name.clone(), self.entries.len());
                self.entries.push((name, m));
            }
        }
    }

    /// Look up a matrix by name.
    pub fn get(&self, name: &str) -> Option<&Matrix> {
        self.index.get(name).map(|&i| &self.entries[i].1)
    }

    /// Position of a named entry in insertion order.
    pub fn position(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(n, _)| n.as_str())
    }

    /// Iterate `(name, matrix)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Matrix)> {
        self.entries.iter().map(|(n, m)| (n.as_str(), m))
    }

    /// Capture every parameter of a set (by parameter name).
    pub fn capture_params(&mut self, params: &ParamSet) {
        for p in params.iter() {
            self.insert(p.name(), p.value().clone());
        }
    }

    /// Remove a named matrix, returning it if present.
    pub fn remove(&mut self, name: &str) -> Option<Matrix> {
        let i = self.index.remove(name)?;
        let (_, m) = self.entries.remove(i);
        // Entries after the removed slot shifted down by one.
        for (n, _) in &self.entries[i..] {
            if let Some(slot) = self.index.get_mut(n) {
                *slot -= 1;
            }
        }
        Some(m)
    }

    /// Check that every parameter of a set is present in the store with a
    /// matching shape, without mutating anything. Callers restoring several
    /// pieces of state run this first so a failed restore is a no-op.
    pub fn validate_params(&self, params: &ParamSet) -> io::Result<()> {
        for p in params.iter() {
            let name = p.name();
            let m = self.get(&name).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("missing parameter '{name}'"),
                )
            })?;
            if m.shape() != p.shape() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "shape mismatch for '{name}': {:?} vs {:?}",
                        m.shape(),
                        p.shape()
                    ),
                ));
            }
        }
        Ok(())
    }

    /// Restore parameters of a set from the store by name. Every parameter
    /// must be present with a matching shape; validation runs up front so a
    /// failure leaves every parameter untouched. Each lookup is O(1)
    /// through the store's name index.
    pub fn restore_params(&self, params: &ParamSet) -> io::Result<()> {
        self.validate_params(params)?;
        for p in params.iter() {
            let m = self.get(&p.name()).expect("validated above");
            *p.value_mut() = m.clone();
        }
        Ok(())
    }

    /// FNV-1a hash over names, shapes and value bits — a cheap fingerprint
    /// identifying the producing checkpoint in embedding-store metadata.
    pub fn content_hash(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for (name, m) in &self.entries {
            h = fnv1a(h, name.as_bytes());
            h = fnv1a(h, &(m.rows() as u64).to_le_bytes());
            h = fnv1a(h, &(m.cols() as u64).to_le_bytes());
            for &v in m.as_slice() {
                h = fnv1a(h, &v.to_le_bytes());
            }
        }
        h
    }

    /// Serialize to a writer. Fails with `InvalidInput` (writing nothing
    /// useful) if any count or dimension overflows the format's u32 fields.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&u32_field(self.entries.len(), "entry count")?.to_le_bytes())?;
        for (name, m) in &self.entries {
            write_entry_payload(w, name, m)?;
        }
        Ok(())
    }

    /// Deserialize from a reader.
    pub fn read_from(r: &mut impl Read) -> io::Result<Self> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
        }
        Self::read_v1_body(r)
    }

    /// Parse the version-1 body (everything after the magic). Shared with
    /// the embedding store's backward-compatible `UVDT0001` read path.
    pub(crate) fn read_v1_body(r: &mut impl Read) -> io::Result<Self> {
        let count = read_u32(r)? as usize;
        let mut store = MatrixStore::new();
        for _ in 0..count {
            let name = read_name(r, "name")?;
            let m = read_matrix_payload(r)?;
            store.insert_unique(name, m)?;
        }
        Ok(store)
    }

    /// Insert rejecting duplicates — the read path uses this so a corrupt
    /// or crafted file with two entries of the same name is an error
    /// instead of one copy silently shadowing the other.
    pub(crate) fn insert_unique(&mut self, name: String, m: Matrix) -> io::Result<()> {
        if self.index.contains_key(&name) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("duplicate entry '{name}'"),
            ));
        }
        self.insert(name, m);
        Ok(())
    }

    /// Save to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut f = io::BufWriter::new(std::fs::File::create(path)?);
        self.write_to(&mut f)?;
        f.flush()
    }

    /// Load from a file.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let mut f = io::BufReader::new(std::fs::File::open(path)?);
        Self::read_from(&mut f)
    }
}

fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
    }
    h
}

pub(crate) fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

pub(crate) fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Read a length-prefixed utf-8 string with the hostile-header length guard.
pub(crate) fn read_name(r: &mut impl Read, what: &str) -> io::Result<String> {
    let len = read_u32(r)? as usize;
    if len > MAX_NAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{what} too long"),
        ));
    }
    let mut bytes = vec![0u8; len];
    r.read_exact(&mut bytes)?;
    String::from_utf8(bytes)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, format!("non-utf8 {what}")))
}

/// Write one `name | rows | cols | f32*` entry payload (shared by both
/// format versions), with checked u32 conversions throughout.
pub(crate) fn write_entry_payload(w: &mut impl Write, name: &str, m: &Matrix) -> io::Result<()> {
    let bytes = name.as_bytes();
    w.write_all(&u32_field(bytes.len(), "name length")?.to_le_bytes())?;
    w.write_all(bytes)?;
    w.write_all(&u32_field(m.rows(), "row count")?.to_le_bytes())?;
    w.write_all(&u32_field(m.cols(), "column count")?.to_le_bytes())?;
    for &v in m.as_slice() {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

/// Read one `rows | cols | f32*` matrix payload with the size guard.
pub(crate) fn read_matrix_payload(r: &mut impl Read) -> io::Result<Matrix> {
    let rows = read_u32(r)? as usize;
    let cols = read_u32(r)? as usize;
    if rows.checked_mul(cols).is_none_or(|n| n > MAX_ELEMS) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "matrix too large",
        ));
    }
    let mut data = vec![0.0f32; rows * cols];
    let mut buf = [0u8; 4];
    for v in &mut data {
        r.read_exact(&mut buf)?;
        *v = f32::from_le_bytes(buf);
    }
    Ok(Matrix::from_vec(rows, cols, data))
}

#[cfg(test)]
mod tests {
    // Exact float equality is intended in these tests: they assert
    // exact constants and bit-reproducible results, not tolerances.
    #![allow(clippy::float_cmp)]

    use super::*;
    use crate::init::{normal_matrix, seeded_rng};
    use crate::param::ParamRef;

    #[test]
    fn roundtrip_in_memory() {
        let mut rng = seeded_rng(1);
        let mut store = MatrixStore::new();
        store.insert("a", normal_matrix(3, 4, 0.0, 1.0, &mut rng));
        store.insert("b", Matrix::zeros(1, 1));
        store.insert("empty", Matrix::zeros(2, 0));
        let mut buf = Vec::new();
        store.write_to(&mut buf).expect("write");
        let back = MatrixStore::read_from(&mut buf.as_slice()).expect("read");
        assert_eq!(store, back);
    }

    #[test]
    fn insert_replaces_by_name() {
        let mut store = MatrixStore::new();
        store.insert("x", Matrix::filled(1, 1, 1.0));
        store.insert("x", Matrix::filled(1, 1, 2.0));
        assert_eq!(store.len(), 1);
        assert_eq!(store.get("x").expect("x").get(0, 0), 2.0);
    }

    #[test]
    fn param_capture_restore() {
        let mut rng = seeded_rng(2);
        let p1 = ParamRef::new("w", normal_matrix(2, 3, 0.0, 1.0, &mut rng));
        let p2 = ParamRef::new("b", normal_matrix(1, 3, 0.0, 1.0, &mut rng));
        let mut set = ParamSet::new();
        set.track(p1.clone());
        set.track(p2.clone());
        let mut store = MatrixStore::new();
        store.capture_params(&set);
        // Mutate, then restore.
        p1.value_mut().set(0, 0, 99.0);
        store.restore_params(&set).expect("restore");
        assert_ne!(p1.value().get(0, 0), 99.0);
    }

    #[test]
    fn failed_restore_mutates_nothing() {
        // Two params; the store has a valid entry for the first but a bad
        // shape for the second. The first must stay untouched.
        let p1 = ParamRef::new("w", Matrix::filled(2, 2, 1.0));
        let p2 = ParamRef::new("b", Matrix::filled(1, 2, 1.0));
        let mut set = ParamSet::new();
        set.track(p1.clone());
        set.track(p2.clone());
        let mut store = MatrixStore::new();
        store.insert("w", Matrix::filled(2, 2, 9.0));
        store.insert("b", Matrix::filled(3, 3, 9.0)); // wrong shape
        assert!(store.restore_params(&set).is_err());
        assert_eq!(p1.value().get(0, 0), 1.0, "failed restore must be a no-op");
        assert_eq!(p2.value().get(0, 0), 1.0);
    }

    #[test]
    fn remove_drops_named_entry() {
        let mut store = MatrixStore::new();
        store.insert("x", Matrix::filled(1, 1, 5.0));
        assert_eq!(store.remove("x").expect("present").get(0, 0), 5.0);
        assert!(store.remove("x").is_none());
        assert!(store.is_empty());
    }

    #[test]
    fn remove_keeps_index_consistent() {
        let mut store = MatrixStore::new();
        store.insert("a", Matrix::filled(1, 1, 1.0));
        store.insert("b", Matrix::filled(1, 1, 2.0));
        store.insert("c", Matrix::filled(1, 1, 3.0));
        store.remove("a");
        // Later entries shifted down; lookups must still land on the right
        // matrices, and replacement must hit the shifted slot.
        assert_eq!(store.get("b").expect("b").get(0, 0), 2.0);
        assert_eq!(store.get("c").expect("c").get(0, 0), 3.0);
        store.insert("b", Matrix::filled(1, 1, 20.0));
        assert_eq!(store.len(), 2);
        assert_eq!(store.get("b").expect("b").get(0, 0), 20.0);
        assert_eq!(store.position("b"), Some(0));
        assert_eq!(store.position("c"), Some(1));
    }

    #[test]
    fn restore_rejects_shape_mismatch() {
        let p = ParamRef::new("w", Matrix::zeros(2, 2));
        let mut set = ParamSet::new();
        set.track(p);
        let mut store = MatrixStore::new();
        store.insert("w", Matrix::zeros(3, 3));
        assert!(store.restore_params(&set).is_err());
    }

    #[test]
    fn restore_rejects_missing_param() {
        let p = ParamRef::new("w", Matrix::zeros(2, 2));
        let mut set = ParamSet::new();
        set.track(p);
        let store = MatrixStore::new();
        assert!(store.restore_params(&set).is_err());
    }

    #[test]
    fn read_rejects_bad_magic() {
        let buf = b"NOTMAGIC\0\0\0\0".to_vec();
        assert!(MatrixStore::read_from(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn read_rejects_duplicate_names() {
        // A store can never hold duplicates, so craft the bytes by hand:
        // two entries both named "w".
        let mut store = MatrixStore::new();
        store.insert("w", Matrix::filled(1, 1, 1.0));
        let mut buf = Vec::new();
        store.write_to(&mut buf).expect("write");
        // Append a second copy of the single entry and bump the count.
        let entry = buf[12..].to_vec();
        buf.extend_from_slice(&entry);
        buf[8..12].copy_from_slice(&2u32.to_le_bytes());
        let err = MatrixStore::read_from(&mut buf.as_slice()).expect_err("duplicate must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("duplicate"), "{err}");
    }

    #[test]
    fn write_rejects_oversized_dimensions() {
        // rows > u32::MAX with cols = 0 is constructible without
        // allocating: the data vector is empty.
        let huge = Matrix::zeros((u32::MAX as usize) + 2, 0);
        let mut store = MatrixStore::new();
        store.insert("huge", huge);
        let mut buf = Vec::new();
        let err = store.write_to(&mut buf).expect_err("must reject");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn content_hash_tracks_values_and_names() {
        let mut a = MatrixStore::new();
        a.insert("w", Matrix::filled(2, 2, 1.0));
        let h0 = a.content_hash();
        let mut b = a.clone();
        assert_eq!(h0, b.content_hash());
        b.insert("w", Matrix::filled(2, 2, 1.5));
        assert_ne!(h0, b.content_hash());
        let mut c = MatrixStore::new();
        c.insert("v", Matrix::filled(2, 2, 1.0));
        assert_ne!(h0, c.content_hash());
    }

    #[test]
    fn file_roundtrip() {
        let mut store = MatrixStore::new();
        store.insert("m", Matrix::from_rows(&[&[1.5, -2.5]]));
        let dir = std::env::temp_dir().join("uvd_persist_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("weights.uvdt");
        store.save(&path).expect("save");
        let back = MatrixStore::load(&path).expect("load");
        assert_eq!(store, back);
        let _ = std::fs::remove_file(&path);
    }
}
