//! Newline-delimited-JSON wire protocol.
//!
//! One request per line, one reply per line, in order. Requests carry an
//! `"op"` discriminator and an optional `"id"` the reply echoes back so a
//! pipelining client can match replies to requests:
//!
//! ```text
//! {"op":"score","ids":[3,17,4]}        -> {"ok":true,"scores":[...],"version":0}
//! {"op":"tasks","ids":[3,17,4]}        -> {"ok":true,"classes":[...],"access":[...]}
//! {"op":"health"}                      -> {"ok":true,"status":"ok",...}
//! {"op":"stats"}                       -> {"ok":true,"requests":...,...}
//! {"op":"update_poi","region":3,
//!  "poi":[...]}                        -> {"ok":true,"version":1,"reembedded":...}
//! anything else                        -> {"ok":false,"error":"..."}
//! ```
//!
//! `tasks` answers from the frozen embedding store (land-use class and
//! accessibility index per id); it is only available when the server was
//! started with one.
//!
//! Parsing goes through the vendored [`serde_json::Value`] tree; a
//! malformed line is an *error reply*, never a process death — the serve
//! smoke gate feeds this path garbage on purpose.

use serde_json::Value;

/// Hard cap on ids per score request; bounds worst-case work a single
/// request can pin on a worker (larger asks are split by the client).
pub const MAX_IDS_PER_REQUEST: usize = 65_536;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    Score {
        ids: Vec<u32>,
        tag: Option<Value>,
    },
    /// Downstream-task scores from the frozen embedding store.
    Tasks {
        ids: Vec<u32>,
        tag: Option<Value>,
    },
    Health {
        tag: Option<Value>,
    },
    Stats {
        tag: Option<Value>,
    },
    UpdatePoi {
        region: u64,
        poi: Vec<f32>,
        tag: Option<Value>,
    },
}

impl Request {
    /// The request tag, if the client sent one.
    pub fn tag(&self) -> Option<&Value> {
        match self {
            Request::Score { tag, .. }
            | Request::Tasks { tag, .. }
            | Request::Health { tag }
            | Request::Stats { tag }
            | Request::UpdatePoi { tag, .. } => tag.as_ref(),
        }
    }
}

fn as_index(v: &Value) -> Option<u64> {
    let f = v.as_f64()?;
    if f.is_finite() && f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 {
        Some(f as u64)
    } else {
        None
    }
}

/// Parse the shared `"ids"` array of a `score`/`tasks` request.
fn parse_ids(v: &Value, op: &str) -> Result<Vec<u32>, String> {
    // Accept both the paper-facing name and the short form.
    let ids_val = v
        .get("ids")
        .or_else(|| v.get("region_ids"))
        .ok_or_else(|| format!("{op} request needs an \"ids\" array"))?;
    let arr = match ids_val {
        Value::Array(a) => a,
        _ => return Err("\"ids\" must be an array of region ids".to_string()),
    };
    if arr.is_empty() {
        return Err("\"ids\" must not be empty".to_string());
    }
    if arr.len() > MAX_IDS_PER_REQUEST {
        return Err(format!(
            "\"ids\" has {} entries; the per-request cap is {MAX_IDS_PER_REQUEST}",
            arr.len()
        ));
    }
    let mut ids = Vec::with_capacity(arr.len());
    for e in arr {
        let idx = as_index(e)
            .filter(|&i| i <= u32::MAX as u64)
            .ok_or_else(|| format!("region id {e:?} is not a non-negative integer"))?;
        ids.push(idx as u32);
    }
    Ok(ids)
}

/// Parse one request line. Errors are client-facing strings.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = serde_json::from_str_value(line).map_err(|e| format!("malformed JSON: {e}"))?;
    let tag = v.get("id").cloned();
    let op = v
        .get("op")
        .and_then(|o| o.as_str())
        .ok_or_else(|| "missing string field \"op\"".to_string())?;
    match op {
        "score" => Ok(Request::Score {
            ids: parse_ids(&v, "score")?,
            tag,
        }),
        "tasks" => Ok(Request::Tasks {
            ids: parse_ids(&v, "tasks")?,
            tag,
        }),
        "health" => Ok(Request::Health { tag }),
        "stats" => Ok(Request::Stats { tag }),
        "update_poi" => {
            let region = v
                .get("region")
                .and_then(as_index)
                .ok_or_else(|| "update_poi needs a non-negative integer \"region\"".to_string())?;
            let poi_val = v
                .get("poi")
                .ok_or_else(|| "update_poi needs a \"poi\" array".to_string())?;
            let arr = match poi_val {
                Value::Array(a) => a,
                _ => return Err("\"poi\" must be an array of numbers".to_string()),
            };
            let mut poi = Vec::with_capacity(arr.len());
            for e in arr {
                let f = e
                    .as_f64()
                    .filter(|f| f.is_finite())
                    .ok_or_else(|| format!("poi entry {e:?} is not a finite number"))?;
                poi.push(f as f32);
            }
            Ok(Request::UpdatePoi { region, poi, tag })
        }
        other => Err(format!("unknown op {other:?}")),
    }
}

fn finish(mut obj: Vec<(String, Value)>, tag: Option<&Value>) -> String {
    if let Some(t) = tag {
        obj.push(("id".to_string(), t.clone()));
    }
    // Object serialization preserves insertion order, so replies always
    // lead with "ok" — cheap for clients to peek at.
    serde_json::to_string(&Value::Object(obj)).expect("reply serialization is infallible")
}

/// `{"ok":false,"error":...}` reply.
pub fn error_reply(msg: &str, tag: Option<&Value>) -> String {
    finish(
        vec![
            ("ok".to_string(), Value::Bool(false)),
            ("error".to_string(), Value::Str(msg.to_string())),
        ],
        tag,
    )
}

/// `{"ok":true,"scores":[...],"version":v}` reply.
pub fn score_reply(scores: &[f32], version: u64, tag: Option<&Value>) -> String {
    let arr = scores.iter().map(|&s| Value::Num(s as f64)).collect();
    finish(
        vec![
            ("ok".to_string(), Value::Bool(true)),
            ("scores".to_string(), Value::Array(arr)),
            ("version".to_string(), Value::Num(version as f64)),
        ],
        tag,
    )
}

/// `{"ok":true,"classes":[...],"access":[...]}` reply: per-id land-use
/// class index and accessibility index from the frozen embedding store.
pub fn tasks_reply(classes: &[u8], access: &[f32], tag: Option<&Value>) -> String {
    let cls = classes.iter().map(|&c| Value::Num(c as f64)).collect();
    let acc = access.iter().map(|&a| Value::Num(a as f64)).collect();
    finish(
        vec![
            ("ok".to_string(), Value::Bool(true)),
            ("classes".to_string(), Value::Array(cls)),
            ("access".to_string(), Value::Array(acc)),
        ],
        tag,
    )
}

/// Health reply with the basics a load balancer probes for.
pub fn health_reply(n_regions: usize, version: u64, workers: usize, tag: Option<&Value>) -> String {
    finish(
        vec![
            ("ok".to_string(), Value::Bool(true)),
            ("status".to_string(), Value::Str("ok".to_string())),
            ("regions".to_string(), Value::Num(n_regions as f64)),
            ("version".to_string(), Value::Num(version as f64)),
            ("workers".to_string(), Value::Num(workers as f64)),
        ],
        tag,
    )
}

/// Stats reply from a counter snapshot (name, value) list.
pub fn stats_reply(fields: &[(&str, u64)], tag: Option<&Value>) -> String {
    let mut obj = vec![("ok".to_string(), Value::Bool(true))];
    for (k, v) in fields {
        obj.push((k.to_string(), Value::Num(*v as f64)));
    }
    finish(obj, tag)
}

/// `{"ok":true,"version":v,"reembedded":n,"subgraph":m}` reply.
pub fn update_reply(
    version: u64,
    reembedded: usize,
    subgraph: usize,
    tag: Option<&Value>,
) -> String {
    finish(
        vec![
            ("ok".to_string(), Value::Bool(true)),
            ("version".to_string(), Value::Num(version as f64)),
            ("reembedded".to_string(), Value::Num(reembedded as f64)),
            ("subgraph".to_string(), Value::Num(subgraph as f64)),
        ],
        tag,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn score_round_trip() {
        let r = parse_request(r#"{"op":"score","ids":[3,17,4],"id":"req-1"}"#).unwrap();
        match &r {
            Request::Score { ids, tag } => {
                assert_eq!(ids, &[3, 17, 4]);
                assert_eq!(tag.as_ref().unwrap().as_str(), Some("req-1"));
            }
            other => panic!("wrong parse: {other:?}"),
        }
        let reply = score_reply(&[0.5, 0.25], 7, r.tag());
        let v = serde_json::from_str_value(&reply).unwrap();
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(v.get("version").and_then(|x| x.as_f64()), Some(7.0));
        assert_eq!(v.get("id").and_then(|x| x.as_str()), Some("req-1"));
    }

    #[test]
    fn tasks_round_trip() {
        let r = parse_request(r#"{"op":"tasks","ids":[0,2],"id":7}"#).unwrap();
        match &r {
            Request::Tasks { ids, tag } => {
                assert_eq!(ids, &[0, 2]);
                assert_eq!(tag.as_ref().unwrap().as_f64(), Some(7.0));
            }
            other => panic!("wrong parse: {other:?}"),
        }
        let reply = tasks_reply(&[3, 0], &[0.5, 0.125], r.tag());
        let v = serde_json::from_str_value(&reply).unwrap();
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
        let classes = match v.get("classes") {
            Some(Value::Array(a)) => a.clone(),
            other => panic!("missing classes: {other:?}"),
        };
        assert_eq!(classes.len(), 2);
        assert_eq!(classes[0].as_f64(), Some(3.0));
        assert!(parse_request(r#"{"op":"tasks","ids":[]}"#).is_err());
    }

    #[test]
    fn region_ids_alias_is_accepted() {
        let r = parse_request(r#"{"op":"score","region_ids":[1]}"#).unwrap();
        assert!(matches!(r, Request::Score { ref ids, .. } if ids == &[1]));
    }

    #[test]
    fn malformed_lines_are_errors_not_panics() {
        for bad in [
            "not json at all",
            "{\"op\":42}",
            r#"{"op":"score"}"#,
            r#"{"op":"score","ids":[]}"#,
            r#"{"op":"score","ids":[-1]}"#,
            r#"{"op":"score","ids":[1.5]}"#,
            r#"{"op":"warp"}"#,
            r#"{"op":"update_poi","poi":[1]}"#,
            r#"{"op":"update_poi","region":0,"poi":["x"]}"#,
        ] {
            let err = parse_request(bad).unwrap_err();
            let reply = error_reply(&err, None);
            let v = serde_json::from_str_value(&reply).unwrap();
            assert_eq!(v.get("ok"), Some(&Value::Bool(false)), "bad line: {bad}");
        }
    }

    #[test]
    fn update_poi_parses() {
        let r = parse_request(r#"{"op":"update_poi","region":3,"poi":[0.5,1.0]}"#).unwrap();
        match r {
            Request::UpdatePoi { region, poi, .. } => {
                assert_eq!(region, 3);
                assert_eq!(poi, vec![0.5, 1.0]);
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }
}
