//! Serving knobs read from the environment, mirroring the warn-once
//! discipline of `cmsf::env`: parse failures fall back to the default and
//! emit a single `uvd_obs::warn_once` instead of guessing or panicking.
//!
//! | variable                 | meaning                                   | default |
//! |--------------------------|-------------------------------------------|---------|
//! | `UVD_SERVE_BATCH`        | max rows per micro-batch replay           | 64      |
//! | `UVD_SERVE_MAX_DELAY_MS` | max wait to fill a micro-batch, in ms     | 2       |

use std::sync::OnceLock;

/// Default micro-batch capacity (rows per replay).
pub const DEFAULT_BATCH: usize = 64;
/// Default micro-batch fill deadline in milliseconds.
pub const DEFAULT_MAX_DELAY_MS: u64 = 2;

/// Parse a `UVD_SERVE_BATCH` value: a positive integer.
pub fn parse_serve_batch(raw: &str) -> Option<usize> {
    match raw.trim().parse::<usize>() {
        Ok(n) if n > 0 => Some(n),
        _ => None,
    }
}

/// Parse a `UVD_SERVE_MAX_DELAY_MS` value: a non-negative integer (zero
/// means "never wait — replay whatever is queued immediately").
pub fn parse_max_delay_ms(raw: &str) -> Option<u64> {
    raw.trim().parse::<u64>().ok()
}

fn read_knob<T>(var: &'static str, default: T, parse: impl Fn(&str) -> Option<T>) -> T {
    match std::env::var(var) {
        Ok(raw) => match parse(&raw) {
            Some(v) => v,
            None => {
                uvd_obs::warn_once(
                    var,
                    &format!("{var}={raw:?} is not a valid value; using the default"),
                );
                default
            }
        },
        Err(_) => default,
    }
}

/// `UVD_SERVE_BATCH`, read once per process.
pub fn env_serve_batch() -> usize {
    static CACHE: OnceLock<usize> = OnceLock::new();
    *CACHE.get_or_init(|| read_knob("UVD_SERVE_BATCH", DEFAULT_BATCH, parse_serve_batch))
}

/// `UVD_SERVE_MAX_DELAY_MS`, read once per process.
pub fn env_max_delay_ms() -> u64 {
    static CACHE: OnceLock<u64> = OnceLock::new();
    *CACHE.get_or_init(|| {
        read_knob(
            "UVD_SERVE_MAX_DELAY_MS",
            DEFAULT_MAX_DELAY_MS,
            parse_max_delay_ms,
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_parses_positive_integers_only() {
        assert_eq!(parse_serve_batch("64"), Some(64));
        assert_eq!(parse_serve_batch(" 8 "), Some(8));
        assert_eq!(parse_serve_batch("0"), None);
        assert_eq!(parse_serve_batch("-3"), None);
        assert_eq!(parse_serve_batch("lots"), None);
    }

    #[test]
    fn delay_allows_zero() {
        assert_eq!(parse_max_delay_ms("0"), Some(0));
        assert_eq!(parse_max_delay_ms("25"), Some(25));
        assert_eq!(parse_max_delay_ms("fast"), None);
    }
}
