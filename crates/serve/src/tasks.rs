//! Downstream-task scoring from a shared [`EmbeddingStore`].
//!
//! Each worker thread owns a private [`TaskScorer`] restored on-thread
//! from the server's store (head parameters are `Rc`-backed and not
//! `Send`, exactly like the main `BatchScorer` model). The scorer holds
//! the frozen embedding matrix plus both trained heads; a `tasks` request
//! gathers the asked-for embedding rows and answers with the land-use
//! class and accessibility index per id. Scores are bitwise identical
//! across workers and across restarts: everything derives from the same
//! file bits through deterministic inference kernels.

use std::io;

use uvd_tasks::heads::{ACCESS_PREFIX, LAND_USE_PREFIX};
use uvd_tasks::{AccessibilityHead, EmbeddingStore, LandUseHead, TaskHeadConfig};
use uvd_tensor::Matrix;

/// A worker-private task scorer: frozen embeddings + restored heads.
pub struct TaskScorer {
    emb: Matrix,
    landuse: LandUseHead,
    access: AccessibilityHead,
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

impl TaskScorer {
    /// Restore from a store that holds exactly one embedding entry
    /// (`emb.<city>`) plus both head weight sets. Architecture is inferred
    /// from the stored layer shapes; any mismatch or absence is a typed
    /// error, never a panic — the server fails fast at startup.
    pub fn new(store: &EmbeddingStore) -> io::Result<TaskScorer> {
        let emb_names: Vec<&str> = store
            .names()
            .filter(|n| n.starts_with(cmsf::EMBED_PREFIX))
            .collect();
        let name = match emb_names.as_slice() {
            [one] => one.to_string(),
            [] => return Err(invalid("store holds no embedding entry".to_string())),
            many => {
                return Err(invalid(format!(
                    "store holds {} embedding entries; task serving needs exactly one",
                    many.len()
                )))
            }
        };
        let emb = store.get(&name).expect("name came from the store").clone();

        // Hidden widths come from the persisted first-layer shapes, so the
        // reconstructed architecture always matches the file and the
        // transactional restore below validates every remaining shape.
        let lu_cfg = TaskHeadConfig {
            hidden: Self::stored_hidden(store, LAND_USE_PREFIX, emb.cols())?,
            ..TaskHeadConfig::default()
        };
        let ac_cfg = TaskHeadConfig {
            hidden: Self::stored_hidden(store, ACCESS_PREFIX, emb.cols())?,
            ..TaskHeadConfig::default()
        };
        let mut landuse = LandUseHead::new(emb.cols(), &lu_cfg);
        let mut access = AccessibilityHead::new(emb.cols(), &ac_cfg);
        landuse.restore(store)?;
        access.restore(store)?;
        Ok(TaskScorer {
            emb,
            landuse,
            access,
        })
    }

    /// Hidden width of the stored head under `prefix`, validated against
    /// the embedding dimension.
    fn stored_hidden(store: &EmbeddingStore, prefix: &str, d_in: usize) -> io::Result<usize> {
        let w0 = store
            .get(&format!("{prefix}.l0.w"))
            .ok_or_else(|| invalid(format!("store holds no \"{prefix}\" head weights")))?;
        if w0.rows() != d_in {
            return Err(invalid(format!(
                "head \"{prefix}\" expects {} embedding dims, store has {d_in}",
                w0.rows()
            )));
        }
        Ok(w0.cols())
    }

    /// Regions covered by the frozen embedding matrix.
    pub fn n_regions(&self) -> usize {
        self.emb.rows()
    }

    /// Land-use class and accessibility index for each id. Ids must be
    /// validated against [`Self::n_regions`] by the caller.
    pub fn score(&self, ids: &[u32]) -> (Vec<u8>, Vec<f32>) {
        let cols = self.emb.cols();
        let mut data = Vec::with_capacity(ids.len() * cols);
        for &id in ids {
            data.extend_from_slice(self.emb.row(id as usize));
        }
        let rows = Matrix::from_vec(ids.len(), cols, data);
        (self.landuse.predict(&rows), self.access.predict(&rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvd_tensor::{seeded_rng, EmbeddingMeta};

    fn tiny_store(n: usize, d: usize) -> EmbeddingStore {
        let mut rng = seeded_rng(17);
        let emb = uvd_tensor::init::normal_matrix(n, d, 0.0, 1.0, &mut rng);
        let cfg = TaskHeadConfig {
            epochs: 3,
            ..TaskHeadConfig::default()
        };
        let labels: Vec<u8> = (0..n).map(|i| (i % 8) as u8).collect();
        let targets: Vec<f32> = (0..n).map(|i| i as f32 / n as f32).collect();
        let idx: Vec<usize> = (0..n).collect();
        let mut lu = LandUseHead::new(d, &cfg);
        lu.fit(&emb, &labels, &idx, &cfg);
        let mut ac = AccessibilityHead::new(d, &cfg);
        ac.fit(&emb, &targets, &idx, &cfg);

        let meta = EmbeddingMeta::new("t", d, 1);
        let mut store = EmbeddingStore::new();
        store.insert(cmsf::embedding_key("t"), emb, meta.clone());
        lu.capture(&mut store, &meta);
        ac.capture(&mut store, &meta);
        store
    }

    #[test]
    fn scorer_restores_and_scores_deterministically() {
        let store = tiny_store(12, 6);
        let a = TaskScorer::new(&store).expect("restore");
        let b = TaskScorer::new(&store).expect("restore again");
        assert_eq!(a.n_regions(), 12);
        let ids = [0u32, 5, 11];
        let (ca, aa) = a.score(&ids);
        let (cb, ab) = b.score(&ids);
        assert_eq!(ca, cb, "classes must be bitwise stable across restores");
        assert_eq!(aa, ab, "access must be bitwise stable across restores");
        assert_eq!(ca.len(), ids.len());
        assert!(aa.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn missing_pieces_are_typed_errors() {
        let empty = EmbeddingStore::new();
        assert!(TaskScorer::new(&empty).is_err());

        let mut no_heads = EmbeddingStore::new();
        no_heads.insert(
            cmsf::embedding_key("t"),
            Matrix::zeros(3, 2),
            EmbeddingMeta::new("t", 2, 0),
        );
        let err = match TaskScorer::new(&no_heads) {
            Err(e) => e,
            Ok(_) => panic!("head-less store must not restore"),
        };
        assert!(err.to_string().contains("head"), "got: {err}");

        let mut two = tiny_store(8, 4);
        two.insert(
            cmsf::embedding_key("other"),
            Matrix::zeros(8, 4),
            EmbeddingMeta::new("other", 4, 0),
        );
        assert!(TaskScorer::new(&two).is_err());
    }
}
