//! `uvd-serve` — the resident scoring service binary.
//!
//! ```text
//! uvd-serve --ckpt model.uvd [--city tiny] [--seed 7] [--addr 127.0.0.1:7878]
//!           [--workers 2] [--trace trace.jsonl] [--embeddings store.uvdt2]
//! ```
//!
//! With `--embeddings`, the `tasks` op serves land-use classes and
//! accessibility indices from the frozen embedding store.
//!
//! The URG is rebuilt deterministically from the named city preset and
//! seed (the same pair used at training time), then the checkpoint is
//! restored into it and the service runs until SIGINT/EOF on stdin.

use std::io::Read;

use uvd_citysim::{City, CityPreset};
use uvd_serve::{ServeOptions, Server};
use uvd_tensor::{EmbeddingStore, MatrixStore};
use uvd_urg::{Urg, UrgOptions};

fn usage() -> ! {
    eprintln!(
        "usage: uvd-serve --ckpt <path> [--city tiny|shenzhen|fuzhou|beijing] [--seed N] \
         [--addr HOST:PORT] [--workers N] [--trace <path>] [--embeddings <path>]"
    );
    std::process::exit(2);
}

fn main() {
    let mut ckpt: Option<String> = None;
    let mut city_name = "tiny".to_string();
    let mut seed: u64 = 7;
    let mut opts = ServeOptions {
        addr: "127.0.0.1:7878".to_string(),
        ..ServeOptions::default()
    };
    let mut trace: Option<String> = None;
    let mut embeddings: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let val = |args: &mut dyn Iterator<Item = String>| -> String {
            args.next().unwrap_or_else(|| usage())
        };
        match a.as_str() {
            "--ckpt" => ckpt = Some(val(&mut args)),
            "--city" => city_name = val(&mut args),
            "--seed" => seed = val(&mut args).parse().unwrap_or_else(|_| usage()),
            "--addr" => opts.addr = val(&mut args),
            "--workers" => opts.workers = val(&mut args).parse().unwrap_or_else(|_| usage()),
            "--trace" => trace = Some(val(&mut args)),
            "--embeddings" => embeddings = Some(val(&mut args)),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    let ckpt = ckpt.unwrap_or_else(|| usage());

    if let Some(path) = &trace {
        if let Err(e) = uvd_obs::set_jsonl(path) {
            eprintln!("uvd-serve: cannot open trace {path}: {e}");
            std::process::exit(1);
        }
    }

    // The URG and architecture must match training exactly for the
    // transactional restore to accept the checkpoint.
    let (config, cfg) = match city_name.as_str() {
        "tiny" => (CityPreset::tiny(), cmsf::CmsfConfig::fast_test()),
        "shenzhen" | "shenzhen-like" => (
            CityPreset::ShenzhenLike.config(),
            cmsf::CmsfConfig::for_city("shenzhen-like"),
        ),
        "fuzhou" | "fuzhou-like" => (
            CityPreset::FuzhouLike.config(),
            cmsf::CmsfConfig::for_city("fuzhou-like"),
        ),
        "beijing" | "beijing-like" => (
            CityPreset::BeijingLike.config(),
            cmsf::CmsfConfig::for_city("beijing-like"),
        ),
        other => {
            eprintln!("uvd-serve: unknown city preset {other:?}");
            std::process::exit(2);
        }
    };
    let city = City::from_config(config, seed);
    let urg = Urg::build(&city, UrgOptions::default());

    let store = match MatrixStore::load(&ckpt) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("uvd-serve: cannot load checkpoint {ckpt}: {e}");
            std::process::exit(1);
        }
    };

    if let Some(path) = &embeddings {
        match EmbeddingStore::load(path) {
            Ok(s) => opts.embeddings = Some(s),
            Err(e) => {
                eprintln!("uvd-serve: cannot load embedding store {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    let server = match Server::start(urg, cfg, store, opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("uvd-serve: startup failed: {e}");
            std::process::exit(1);
        }
    };
    eprintln!("uvd-serve: listening on {}", server.addr());

    // Run until stdin closes (EOF) — the simplest portable stop signal for
    // both interactive use and scripted smoke tests.
    let mut sink = Vec::new();
    let _ = std::io::stdin().read_to_end(&mut sink);
    eprintln!("uvd-serve: stdin closed, shutting down");
    server.shutdown();
    uvd_obs::flush();
}
