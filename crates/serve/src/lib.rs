//! # uvd-serve
//!
//! A resident scoring service over a trained CMSF checkpoint. The model
//! loads once (transactional [`Cmsf::restore_from_store`]); region-score
//! requests arrive as newline-delimited JSON over TCP and are micro-batched
//! into single recorded-tape replays; incremental `update_poi` requests
//! re-embed only the affected region's k-hop neighborhood instead of
//! re-running MAGA on the whole city.
//!
//! ```no_run
//! use uvd_citysim::{City, CityPreset};
//! use uvd_urg::{Urg, UrgOptions};
//! use uvd_serve::{ServeOptions, Server};
//!
//! let city = City::from_config(CityPreset::tiny(), 7);
//! let urg = Urg::build(&city, UrgOptions::default());
//! let cfg = cmsf::CmsfConfig::fast_test();
//! let store = uvd_tensor::MatrixStore::load("model.uvd").unwrap();
//! let server = Server::start(urg, cfg, store, ServeOptions::default()).unwrap();
//! println!("listening on {}", server.addr());
//! # server.shutdown();
//! ```
//!
//! [`Cmsf::restore_from_store`]: cmsf::Cmsf::restore_from_store

pub mod engine;
pub mod env;
pub mod proto;
pub mod server;
pub mod tasks;

pub use engine::{BatchScorer, Caches, UpdateOutcome, Updater};
pub use server::{ServeOptions, Server};
pub use tasks::TaskScorer;
