//! Scoring engine: recorded inference tapes + published caches.
//!
//! The model's parameters live in `Rc<RefCell<..>>` cells, so a [`Cmsf`] is
//! deliberately not `Send`. Sharing therefore happens at the *data* level:
//!
//! * The [`Updater`] (one per process) owns the authoritative model, a
//!   mutable [`Urg`], the full `x̃` matrix and the recorded *head* tape
//!   (`x̃` leaf → GSCM fusion → gate filter → scores). After every
//!   `update_poi` it replays the head and publishes a fresh immutable
//!   [`Caches`] snapshot (`x_final`, gate filter, full-city scores) behind
//!   an `RwLock<Arc<..>>`.
//! * Each worker thread builds its own [`BatchScorer`] — a private `Cmsf`
//!   restored from the same [`MatrixStore`] (identical parameters, hence
//!   identical tapes) plus a recorded *batch* tape over `capacity` zeroed
//!   leaf rows. Per tick it gathers the requested rows out of the current
//!   `Caches` snapshot, `set_value`s the leaves and replays — one gated
//!   matmul per micro-batch, no allocation of a new graph.
//!
//! Every kernel on the batch tape (gated matmul, matmul, sigmoid) computes
//! row `i` of its output from row `i` of its inputs alone, so a gathered
//! row scores bitwise as it does in the full-city head replay — which is
//! itself the exact op sequence of [`Cmsf::predict_proba`]. That chain is
//! what lets the round-trip test demand bitwise equality with
//! `Cmsf::predict`.

use cmsf::{Cmsf, CmsfConfig, ServeBatch, ServeHead};
use uvd_tensor::{Graph, Matrix, MatrixStore, NeighborSampler, SampleError};
use uvd_urg::Urg;

/// Immutable scoring state published by the updater and snapshotted by
/// workers at the start of every micro-batch tick.
pub struct Caches {
    /// Monotone generation counter; bumped by every successful
    /// `update_poi` and echoed in score replies.
    pub version: u64,
    /// Classifier input `x̃'` for every region (N × d_final).
    pub x_final: Matrix,
    /// MS-Gate parameter filter rows (N × d·h) when the gated head is
    /// active; `None` for checkpoints without a trained slave stage.
    pub filter: Option<Matrix>,
    /// Full-city scores from the head replay — kept so `stats`/debugging
    /// can compare against micro-batch output cheaply.
    pub scores: Vec<f32>,
}

/// Outcome of one incremental POI update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateOutcome {
    /// New cache generation.
    pub version: u64,
    /// Rows of `x̃` that were recomputed (the k-hop closure of the
    /// updated region).
    pub reembedded: usize,
    /// Size of the induced subgraph the re-embed ran on (the 2k-hop
    /// closure: receptive fields of every re-embedded row).
    pub subgraph: usize,
}

/// The updater: authoritative model + mutable graph + recorded head tape.
pub struct Updater {
    model: Cmsf,
    urg: Urg,
    g: Graph,
    head: ServeHead,
    x_tilde: Matrix,
    /// Message-passing depth `k` — the MAGA layer count; a feature edit at
    /// region `r` can only move `x̃` rows within `k` hops of `r`.
    hops: usize,
    version: u64,
}

impl Updater {
    /// Restore the checkpoint into a fresh model, run MAGA once for the
    /// full `x̃`, and record the head tape. Fails (an `Err`, not a panic)
    /// when the store does not match the configured architecture.
    pub fn new(urg: Urg, cfg: CmsfConfig, store: &MatrixStore) -> std::io::Result<Updater> {
        let mut model = Cmsf::new(&urg, cfg);
        model.restore_from_store(store)?;
        let x_tilde = model.x_tilde_matrix(&urg);
        let mut g = Graph::inference();
        let head = model.record_serve_head(&mut g, &x_tilde);
        Ok(Updater {
            hops: cfg.maga_layers,
            model,
            urg,
            g,
            head,
            x_tilde,
            version: 0,
        })
    }

    pub fn n_regions(&self) -> usize {
        self.urg.n
    }

    pub fn poi_width(&self) -> usize {
        self.urg.x_poi.cols()
    }

    /// Snapshot the current head outputs as an immutable cache generation.
    pub fn caches(&self) -> Caches {
        Caches {
            version: self.version,
            x_final: self.g.value(self.head.x_final).clone(),
            filter: self.head.filter.map(|f| self.g.value(f).clone()),
            scores: self.g.value(self.head.p).as_slice().to_vec(),
        }
    }

    /// Apply one POI feature edit and re-embed only the affected k-hop
    /// neighborhood.
    ///
    /// Flow (validation strictly before mutation):
    /// 1. `affected` = exact k-hop closure of `region` (fanout 0) — on the
    ///    URG's symmetric edges this is both "who region influences" and
    ///    "whose receptive field contains region". An out-of-range region
    ///    id surfaces here as the typed [`SampleError`], answered as an
    ///    error reply.
    /// 2. `Urg::update_poi` swaps the feature row (width-checked).
    /// 3. `ext` = k-hop closure of `affected` — the union of their
    ///    receptive fields — and MAGA reruns on `induced(ext)` only.
    /// 4. The `affected` rows of the cached `x̃` are patched and the head
    ///    tape replays from the patched leaf.
    ///
    /// Rows outside `affected` are untouched: POI features are row-local
    /// and their receptive fields exclude `region`. Rows inside `affected`
    /// are bitwise what a full-city MAGA pass would produce, by the k-hop
    /// closure property `induced` guarantees (same neighbor order, same
    /// normalized weights).
    pub fn update_poi(&mut self, region: u64, poi: &[f32]) -> Result<UpdateOutcome, String> {
        if region > u32::MAX as u64 {
            return Err(SampleError::SeedOutOfBounds {
                seed: u32::MAX,
                n_nodes: self.urg.n,
            }
            .to_string());
        }
        let sampler = NeighborSampler::new(0, 0, self.hops);
        let affected = sampler
            .sample(&self.urg.edges, &[region as u32])
            .map_err(|e| e.to_string())?;
        self.urg
            .update_poi(region as usize, poi)
            .map_err(|e| e.to_string())?;
        let ext = sampler
            .sample(&self.urg.edges, &affected)
            .map_err(|e| e.to_string())?;
        let sub = self.urg.induced(&ext);
        let xt_sub = self.model.x_tilde_matrix(&sub);
        for &a in &affected {
            let local = ext
                .binary_search(&a)
                .expect("affected is a subset of its own closure");
            self.x_tilde
                .row_mut(a as usize)
                .copy_from_slice(xt_sub.row(local));
        }
        self.g.set_value(self.head.x_tilde, &self.x_tilde);
        self.g.replay();
        self.version += 1;
        Ok(UpdateOutcome {
            version: self.version,
            reembedded: affected.len(),
            subgraph: ext.len(),
        })
    }
}

/// Per-worker micro-batch scorer: a private restored model plus a recorded
/// batch tape over `capacity` leaf rows and reusable gather scratch.
pub struct BatchScorer {
    g: Graph,
    plan: ServeBatch,
    x_scratch: Matrix,
    f_scratch: Option<Matrix>,
    capacity: usize,
}

impl BatchScorer {
    /// `gated` and the widths must describe the cache snapshots this
    /// scorer will gather from (i.e. come from the same checkpoint).
    pub fn new(
        urg: &Urg,
        cfg: CmsfConfig,
        store: &MatrixStore,
        capacity: usize,
        d_final: usize,
        gated: bool,
    ) -> std::io::Result<BatchScorer> {
        let mut model = Cmsf::new(urg, cfg);
        model.restore_from_store(store)?;
        let mut g = Graph::inference();
        let plan = model.record_serve_batch(&mut g, capacity, d_final, gated);
        let f_scratch = plan.filter.map(|f| {
            let v = g.value(f);
            Matrix::zeros(v.rows(), v.cols())
        });
        // The tape holds the recorded ops; the model itself is only needed
        // at record time (its parameters are captured as graph params).
        Ok(BatchScorer {
            g,
            plan,
            x_scratch: Matrix::zeros(capacity, d_final),
            f_scratch,
            capacity,
        })
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Score `ids` (all in-bounds) against a cache snapshot with one tape
    /// replay. `ids.len()` must be ≤ `capacity`; callers chunk above that.
    /// Rows past `ids.len()` keep whatever the previous tick gathered —
    /// row independence makes them inert.
    pub fn score_chunk(&mut self, caches: &Caches, ids: &[u32], out: &mut Vec<f32>) {
        assert!(ids.len() <= self.capacity, "chunking is the caller's job");
        for (row, &id) in ids.iter().enumerate() {
            self.x_scratch
                .row_mut(row)
                .copy_from_slice(caches.x_final.row(id as usize));
        }
        self.g.set_value(self.plan.x, &self.x_scratch);
        if let (Some(f_scratch), Some(f_node), Some(filter)) = (
            self.f_scratch.as_mut(),
            self.plan.filter,
            caches.filter.as_ref(),
        ) {
            for (row, &id) in ids.iter().enumerate() {
                f_scratch
                    .row_mut(row)
                    .copy_from_slice(filter.row(id as usize));
            }
            self.g.set_value(f_node, f_scratch);
        }
        self.g.replay();
        let p = self.g.value(self.plan.p).as_slice();
        out.extend_from_slice(&p[..ids.len()]);
    }
}

/// The error reply body for an out-of-bounds region id, phrased through
/// the same typed error the sampler raises (satellite: typed OOB errors
/// everywhere a region id enters the system).
pub fn oob_error(id: u32, n_regions: usize) -> String {
    SampleError::SeedOutOfBounds {
        seed: id,
        n_nodes: n_regions,
    }
    .to_string()
}
