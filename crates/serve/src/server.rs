//! The resident TCP service: listener, bounded request queue, worker
//! threads, updater thread.
//!
//! Thread layout (see DESIGN.md §12):
//!
//! * one **listener** thread accepting connections (non-blocking accept
//!   polled against the shutdown flag);
//! * one detached **connection** thread per client, reading NDJSON lines.
//!   `health`/`stats` answer inline; `score` enqueues a job carrying a
//!   reply channel and blocks on it (replies stay in request order per
//!   connection while batching happens *across* connections);
//!   `update_poi` forwards to the updater channel;
//! * `workers` **worker** threads, each owning a private restored model and
//!   recorded batch tape. A tick pops the first job (blocking), then
//!   drains more jobs until the tape capacity is filled or
//!   `UVD_SERVE_MAX_DELAY_MS` expires, snapshots the current cache
//!   generation once, and replays per chunk;
//! * one **updater** thread owning the authoritative model, the mutable
//!   URG and the head tape; it publishes a fresh `Arc<Caches>` per
//!   successful `update_poi`.
//!
//! Backpressure: the queue is bounded at `queue_cap`; a full queue answers
//! `{"ok":false,"error":"overloaded: ..."}` instead of buffering without
//! limit. Every crash path a long-lived process meets — malformed JSON,
//! out-of-bounds ids, width mismatches, checkpoint/architecture drift —
//! is an error *reply*, never a panic.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cmsf::CmsfConfig;
use serde_json::Value;
use uvd_tensor::{EmbeddingStore, MatrixStore};
use uvd_urg::Urg;

use crate::engine::{oob_error, BatchScorer, Caches, Updater};
use crate::proto::{self, Request};
use crate::tasks::TaskScorer;
use crate::{env, proto::error_reply};

static REQUESTS: uvd_obs::Counter = uvd_obs::Counter::new("serve.requests");
static BATCHES: uvd_obs::Counter = uvd_obs::Counter::new("serve.batches");
static QUEUE_ENQ: uvd_obs::Counter = uvd_obs::Counter::new("serve.queue.enq");
static QUEUE_DEQ: uvd_obs::Counter = uvd_obs::Counter::new("serve.queue.deq");

/// What a queued job asks the worker to compute.
#[derive(Clone, Copy, PartialEq, Eq)]
enum JobKind {
    /// Urban-village scores through the batch tape.
    Score,
    /// Downstream-task outputs from the frozen embedding store.
    Tasks,
}

/// A queued score request: ids plus the channel the worker answers on.
struct ScoreJob {
    kind: JobKind,
    ids: Vec<u32>,
    tag: Option<Value>,
    reply: mpsc::Sender<String>,
}

/// An update request forwarded to the updater thread.
struct UpdateJob {
    region: u64,
    poi: Vec<f32>,
    tag: Option<Value>,
    reply: mpsc::Sender<String>,
}

/// Plain-`u64` service stats, separate from `uvd_obs` counters because
/// those only accumulate while tracing is on; `stats` must work always.
#[derive(Default)]
struct Stats {
    requests: AtomicU64,
    score_requests: AtomicU64,
    task_requests: AtomicU64,
    batches: AtomicU64,
    rows_scored: AtomicU64,
    updates: AtomicU64,
    errors: AtomicU64,
    rejected: AtomicU64,
}

struct SharedState {
    caches: RwLock<Arc<Caches>>,
    queue: Mutex<VecDeque<ScoreJob>>,
    not_empty: Condvar,
    queue_cap: usize,
    batch_cap: usize,
    max_delay: Duration,
    shutdown: AtomicBool,
    stats: Stats,
    n_regions: usize,
    workers: usize,
    /// Whether workers carry a restored [`TaskScorer`].
    tasks_enabled: bool,
}

/// Server construction options. `Default` reads the `UVD_SERVE_*` knobs.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Bind address; port 0 picks a free port (read it back via
    /// [`Server::addr`]).
    pub addr: String,
    /// Worker (micro-batch scorer) thread count.
    pub workers: usize,
    /// Rows per micro-batch replay.
    pub batch: usize,
    /// Max wait to fill a micro-batch.
    pub max_delay: Duration,
    /// Bounded queue capacity (jobs, not rows).
    pub queue_cap: usize,
    /// Optional embedding store; when set, every worker restores the
    /// downstream-task heads from it and the `tasks` op becomes available.
    pub embeddings: Option<EmbeddingStore>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        let batch = env::env_serve_batch();
        ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            batch,
            max_delay: Duration::from_millis(env::env_max_delay_ms()),
            queue_cap: 1024,
            embeddings: None,
        }
    }
}

/// A running service. Dropping it shuts the service down.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<SharedState>,
    threads: Vec<JoinHandle<()>>,
    update_tx: Option<mpsc::Sender<UpdateJob>>,
}

impl Server {
    /// Restore the checkpoint, record the tapes, bind the listener and
    /// spawn the thread fleet. Returns once the service is accepting
    /// connections.
    pub fn start(
        urg: Urg,
        cfg: CmsfConfig,
        store: MatrixStore,
        opts: ServeOptions,
    ) -> std::io::Result<Server> {
        // Build the updater first: it validates the checkpoint against the
        // architecture (transactional restore) and produces generation 0.
        let updater = Updater::new(urg.clone(), cfg, &store)?;
        let caches0 = updater.caches();
        let d_final = caches0.x_final.cols();
        let gated = caches0.filter.is_some();

        // Fail fast on a bad embedding store: validate once on this thread
        // before any worker tries to restore from it.
        let embeddings = opts.embeddings.clone();
        if let Some(emb) = &embeddings {
            TaskScorer::new(emb)?;
        }

        let shared = Arc::new(SharedState {
            caches: RwLock::new(Arc::new(caches0)),
            queue: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
            queue_cap: opts.queue_cap,
            batch_cap: opts.batch.max(1),
            max_delay: opts.max_delay,
            shutdown: AtomicBool::new(false),
            stats: Stats::default(),
            n_regions: updater.n_regions(),
            workers: opts.workers.max(1),
            tasks_enabled: embeddings.is_some(),
        });

        let listener = TcpListener::bind(&opts.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let mut threads = Vec::new();

        // Updater thread: owns the authoritative model. `Updater` is not
        // Send (Rc params), so it is *constructed* on this thread and a
        // second instance is moved piece-wise: we rebuild from the same
        // store, which restores bitwise-identical parameters.
        let (update_tx, update_rx) = mpsc::channel::<UpdateJob>();
        {
            let shared = Arc::clone(&shared);
            let urg = urg.clone();
            let store = store.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("uvd-serve-updater".to_string())
                    .spawn(move || {
                        let updater =
                            Updater::new(urg, cfg, &store).expect("store validated at startup");
                        updater_loop(updater, update_rx, shared);
                    })?,
            );
        }

        // Worker threads: each restores its own model from the shared
        // store and records a private batch tape.
        for w in 0..shared.workers {
            let shared = Arc::clone(&shared);
            let urg = urg.clone();
            let store = store.clone();
            let embeddings = embeddings.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("uvd-serve-worker-{w}"))
                    .spawn(move || {
                        let scorer =
                            BatchScorer::new(&urg, cfg, &store, shared.batch_cap, d_final, gated)
                                .expect("store validated at startup");
                        // Like the model, head params are Rc-backed (not
                        // Send), so each worker restores its own scorer
                        // from the shared store on-thread.
                        let tasks = embeddings
                            .map(|e| TaskScorer::new(&e).expect("store validated at startup"));
                        worker_loop(scorer, tasks, shared);
                    })?,
            );
        }

        // Listener thread.
        {
            let shared = Arc::clone(&shared);
            let update_tx = update_tx.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("uvd-serve-listener".to_string())
                    .spawn(move || listener_loop(listener, shared, update_tx))?,
            );
        }

        Ok(Server {
            addr,
            shared,
            threads,
            update_tx: Some(update_tx),
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current cache generation.
    pub fn version(&self) -> u64 {
        self.shared.caches.read().expect("caches lock").version
    }

    /// Stop accepting, drain nothing further, join the fleet. Queued jobs
    /// that never ran answer with a shutdown error through their dropped
    /// reply channels.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        self.shared.not_empty.notify_all();
        // Dropping the server's updater handle lets the updater thread see
        // channel disconnect promptly.
        self.update_tx.take();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn listener_loop(
    listener: TcpListener,
    shared: Arc<SharedState>,
    update_tx: mpsc::Sender<UpdateJob>,
) {
    while !shared.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared = Arc::clone(&shared);
                let update_tx = update_tx.clone();
                // Detached: the thread exits when the client disconnects
                // or the shutdown flag flips (read timeout poll).
                let _ = std::thread::Builder::new()
                    .name("uvd-serve-conn".to_string())
                    .spawn(move || connection_loop(stream, shared, update_tx));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn connection_loop(
    stream: TcpStream,
    shared: Arc<SharedState>,
    update_tx: mpsc::Sender<UpdateJob>,
) {
    // One-line request/reply traffic stalls ~40ms per turn under Nagle +
    // delayed ACK; replies must leave the moment they are written.
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return, // client closed
            Ok(_) => {
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    continue;
                }
                let reply = handle_line(trimmed, &shared, &update_tx);
                if writer.write_all(reply.as_bytes()).is_err() || writer.write_all(b"\n").is_err() {
                    return;
                }
                let _ = writer.flush();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Handle one request line and produce one reply line (no newline).
fn handle_line(line: &str, shared: &SharedState, update_tx: &mpsc::Sender<UpdateJob>) -> String {
    let mut span = uvd_obs::span("serve.request");
    REQUESTS.add(1);
    shared.stats.requests.fetch_add(1, Ordering::Relaxed);
    let req = match proto::parse_request(line) {
        Ok(r) => r,
        Err(msg) => {
            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
            span.add_field("ok", 0.0);
            return error_reply(&msg, None);
        }
    };
    let reply = match req {
        Request::Health { tag } => {
            let version = shared.caches.read().expect("caches lock").version;
            proto::health_reply(shared.n_regions, version, shared.workers, tag.as_ref())
        }
        Request::Stats { tag } => {
            let version = shared.caches.read().expect("caches lock").version;
            let depth = shared.queue.lock().expect("queue lock").len() as u64;
            let s = &shared.stats;
            proto::stats_reply(
                &[
                    ("requests", s.requests.load(Ordering::Relaxed)),
                    ("score_requests", s.score_requests.load(Ordering::Relaxed)),
                    ("task_requests", s.task_requests.load(Ordering::Relaxed)),
                    ("batches", s.batches.load(Ordering::Relaxed)),
                    ("rows_scored", s.rows_scored.load(Ordering::Relaxed)),
                    ("updates", s.updates.load(Ordering::Relaxed)),
                    ("errors", s.errors.load(Ordering::Relaxed)),
                    ("rejected", s.rejected.load(Ordering::Relaxed)),
                    ("queue_depth", depth),
                    ("regions", shared.n_regions as u64),
                    ("version", version),
                ],
                tag.as_ref(),
            )
        }
        Request::Score { ids, tag } => {
            shared.stats.score_requests.fetch_add(1, Ordering::Relaxed);
            span.add_field("ids", ids.len() as f64);
            score_via_queue(JobKind::Score, ids, tag, shared)
        }
        Request::Tasks { ids, tag } => {
            if !shared.tasks_enabled {
                shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                span.add_field("ok", 0.0);
                return error_reply(
                    "no embedding store loaded (start with --embeddings)",
                    tag.as_ref(),
                );
            }
            shared.stats.task_requests.fetch_add(1, Ordering::Relaxed);
            span.add_field("ids", ids.len() as f64);
            score_via_queue(JobKind::Tasks, ids, tag, shared)
        }
        Request::UpdatePoi { region, poi, tag } => {
            let (reply_tx, reply_rx) = mpsc::channel();
            let job = UpdateJob {
                region,
                poi,
                tag: tag.clone(),
                reply: reply_tx,
            };
            if update_tx.send(job).is_err() {
                shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                error_reply("shutting down", tag.as_ref())
            } else {
                match reply_rx.recv() {
                    Ok(r) => r,
                    Err(_) => {
                        shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                        error_reply("shutting down", tag.as_ref())
                    }
                }
            }
        }
    };
    span.add_field("ok", 1.0);
    reply
}

/// Enqueue a score/tasks job (bounded) and block on the worker's reply.
fn score_via_queue(
    kind: JobKind,
    ids: Vec<u32>,
    tag: Option<Value>,
    shared: &SharedState,
) -> String {
    let (reply_tx, reply_rx) = mpsc::channel();
    {
        let mut q = shared.queue.lock().expect("queue lock");
        if q.len() >= shared.queue_cap {
            shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
            return error_reply(
                &format!("overloaded: queue at capacity {}", shared.queue_cap),
                tag.as_ref(),
            );
        }
        q.push_back(ScoreJob {
            kind,
            ids,
            tag: tag.clone(),
            reply: reply_tx,
        });
        QUEUE_ENQ.add(1);
    }
    shared.not_empty.notify_one();
    match reply_rx.recv() {
        Ok(r) => r,
        Err(_) => error_reply("shutting down", tag.as_ref()),
    }
}

/// One worker: blocking-pop a first job, drain up to the tape capacity or
/// the fill deadline, snapshot the cache generation once, replay per
/// chunk, answer every job. Task jobs ride the same queue but answer from
/// the worker's frozen-embedding scorer instead of the batch tape.
fn worker_loop(mut scorer: BatchScorer, tasks: Option<TaskScorer>, shared: Arc<SharedState>) {
    loop {
        let mut q = shared.queue.lock().expect("queue lock");
        let first = loop {
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            if let Some(j) = q.pop_front() {
                break j;
            }
            let (guard, _) = shared
                .not_empty
                .wait_timeout(q, Duration::from_millis(50))
                .expect("queue lock");
            q = guard;
        };
        let mut rows = first.ids.len();
        let mut jobs = vec![first];
        let deadline = Instant::now() + shared.max_delay;
        while rows < scorer.capacity() {
            if let Some(j) = q.pop_front() {
                rows += j.ids.len();
                jobs.push(j);
                continue;
            }
            let now = Instant::now();
            if now >= deadline || shared.shutdown.load(Ordering::Acquire) {
                break;
            }
            let (guard, timeout) = shared
                .not_empty
                .wait_timeout(q, deadline - now)
                .expect("queue lock");
            q = guard;
            if timeout.timed_out() && q.is_empty() {
                break;
            }
        }
        let depth_after = q.len();
        drop(q);

        QUEUE_DEQ.add(jobs.len() as u64);
        let span = uvd_obs::span("serve.batch")
            .field("jobs", jobs.len() as f64)
            .field("rows", rows as f64)
            .field("queue", depth_after as f64);
        BATCHES.add(1);
        shared.stats.batches.fetch_add(1, Ordering::Relaxed);

        // One snapshot per tick: every job in the batch scores against the
        // same cache generation.
        let caches = Arc::clone(&shared.caches.read().expect("caches lock"));

        // Validate ids up front; an out-of-bounds id fails *its* request
        // with the typed sampler error text, the rest of the batch runs.
        // Task jobs peel off to the frozen-embedding scorer here.
        let mut runnable: Vec<ScoreJob> = Vec::with_capacity(jobs.len());
        for job in jobs {
            let bound = match job.kind {
                JobKind::Score => shared.n_regions,
                JobKind::Tasks => tasks.as_ref().map_or(0, |t| t.n_regions()),
            };
            match job.ids.iter().find(|&&id| id as usize >= bound) {
                Some(&bad) => {
                    shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                    let _ = job
                        .reply
                        .send(error_reply(&oob_error(bad, bound), job.tag.as_ref()));
                }
                None if job.kind == JobKind::Tasks => {
                    let t = tasks.as_ref().expect("tasks job implies a scorer");
                    let (classes, access) = t.score(&job.ids);
                    shared
                        .stats
                        .rows_scored
                        .fetch_add(job.ids.len() as u64, Ordering::Relaxed);
                    let _ = job
                        .reply
                        .send(proto::tasks_reply(&classes, &access, job.tag.as_ref()));
                }
                None => runnable.push(job),
            }
        }

        // Flatten, chunk by tape capacity, replay.
        let flat: Vec<u32> = runnable
            .iter()
            .flat_map(|j| j.ids.iter().copied())
            .collect();
        let mut scores: Vec<f32> = Vec::with_capacity(flat.len());
        for chunk in flat.chunks(scorer.capacity().max(1)) {
            scorer.score_chunk(&caches, chunk, &mut scores);
        }
        shared
            .stats
            .rows_scored
            .fetch_add(flat.len() as u64, Ordering::Relaxed);

        let mut off = 0;
        for job in runnable {
            let n = job.ids.len();
            let _ = job.reply.send(proto::score_reply(
                &scores[off..off + n],
                caches.version,
                job.tag.as_ref(),
            ));
            off += n;
        }
        drop(span);
    }
}

/// The updater thread: applies POI edits, re-embeds the k-hop
/// neighborhood, publishes fresh cache generations.
fn updater_loop(mut updater: Updater, rx: mpsc::Receiver<UpdateJob>, shared: Arc<SharedState>) {
    loop {
        match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(job) => {
                let expected = updater.poi_width();
                if job.poi.len() != expected {
                    shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                    let _ = job.reply.send(error_reply(
                        &format!(
                            "poi width mismatch: expected {expected}, got {}",
                            job.poi.len()
                        ),
                        job.tag.as_ref(),
                    ));
                    continue;
                }
                let span = uvd_obs::span("serve.update");
                match updater.update_poi(job.region, &job.poi) {
                    Ok(out) => {
                        *shared.caches.write().expect("caches lock") = Arc::new(updater.caches());
                        shared.stats.updates.fetch_add(1, Ordering::Relaxed);
                        let _ = job.reply.send(proto::update_reply(
                            out.version,
                            out.reembedded,
                            out.subgraph,
                            job.tag.as_ref(),
                        ));
                    }
                    Err(msg) => {
                        shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                        let _ = job.reply.send(error_reply(&msg, job.tag.as_ref()));
                    }
                }
                drop(span);
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}
