//! Wire-level coverage for the `tasks` op: a server started with an
//! embedding store must answer land-use classes and accessibility indices
//! that are bitwise what a local [`TaskScorer`] computes from the same
//! store (class indices are integers; f32 access values survive the f64
//! shortest-round-trip wire exactly). A server started *without* a store
//! must answer a clean error, not crash.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use cmsf::{Cmsf, CmsfConfig};
use serde_json::Value;
use uvd_citysim::{land_use_classes, City, CityPreset};
use uvd_serve::{ServeOptions, Server, TaskScorer};
use uvd_tasks::{
    accessibility_targets, AccessibilityHead, EmbeddingStore, LandUseHead, TaskHeadConfig,
};
use uvd_urg::{Detector, Urg, UrgOptions};

fn roundtrip(reader: &mut BufReader<TcpStream>, writer: &mut TcpStream, line: &str) -> Value {
    writer.write_all(line.as_bytes()).unwrap();
    writer.write_all(b"\n").unwrap();
    writer.flush().unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("read reply");
    serde_json::from_str_value(reply.trim()).expect("reply is valid JSON")
}

#[test]
fn tasks_op_serves_bitwise_head_outputs() {
    let city = City::from_config(CityPreset::tiny(), 51);
    let urg = Urg::build(&city, UrgOptions::default());
    let mut cfg = CmsfConfig::fast_test();
    cfg.master_epochs = 8;
    cfg.slave_epochs = 2;
    let train: Vec<usize> = (0..urg.labeled.len()).collect();
    let mut model = Cmsf::new(&urg, cfg);
    model.fit(&urg, &train);

    // Pretrain once: embeddings + trained heads in one store.
    let mut emb_store = EmbeddingStore::new();
    model.export_embeddings(&urg, "tiny", &mut emb_store);
    let emb = emb_store.get(&cmsf::embedding_key("tiny")).unwrap().clone();
    let meta = emb_store
        .meta(&cmsf::embedding_key("tiny"))
        .unwrap()
        .clone();
    let head_cfg = TaskHeadConfig {
        epochs: 30,
        ..TaskHeadConfig::default()
    };
    let labels = land_use_classes(&city);
    let targets = accessibility_targets(&city);
    let idx: Vec<usize> = (0..urg.n).collect();
    let mut lu = LandUseHead::new(emb.cols(), &head_cfg);
    lu.fit(&emb, &labels, &idx, &head_cfg);
    let mut ac = AccessibilityHead::new(emb.cols(), &head_cfg);
    ac.fit(&emb, &targets, &idx, &head_cfg);
    lu.capture(&mut emb_store, &meta);
    ac.capture(&mut emb_store, &meta);

    let local = TaskScorer::new(&emb_store).expect("restore locally");
    let ids: Vec<u32> = vec![0, 3, 9, 1, 9];
    let (want_classes, want_access) = local.score(&ids);

    let opts = ServeOptions {
        workers: 2,
        batch: 8,
        max_delay: Duration::from_millis(1),
        embeddings: Some(emb_store),
        ..ServeOptions::default()
    };
    let server = Server::start(urg.clone(), cfg, model.to_store(), opts).expect("server starts");
    let stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    let ids_json: Vec<String> = ids.iter().map(|i| i.to_string()).collect();
    let v = roundtrip(
        &mut reader,
        &mut writer,
        &format!(
            r#"{{"op":"tasks","ids":[{}],"id":"t1"}}"#,
            ids_json.join(",")
        ),
    );
    assert_eq!(v.get("ok"), Some(&Value::Bool(true)), "reply: {v:?}");
    assert_eq!(v.get("id").and_then(|x| x.as_str()), Some("t1"));
    let classes: Vec<u8> = match v.get("classes") {
        Some(Value::Array(a)) => a.iter().map(|c| c.as_f64().unwrap() as u8).collect(),
        other => panic!("no classes array: {other:?}"),
    };
    let access: Vec<f32> = match v.get("access") {
        Some(Value::Array(a)) => a.iter().map(|c| c.as_f64().unwrap() as f32).collect(),
        other => panic!("no access array: {other:?}"),
    };
    assert_eq!(classes, want_classes, "served classes must match local");
    assert_eq!(access.len(), want_access.len());
    for (i, (g, e)) in access.iter().zip(&want_access).enumerate() {
        assert_eq!(g.to_bits(), e.to_bits(), "access {i}: served {g} != {e}");
    }

    // Out-of-bounds id fails its request; the connection keeps working.
    let v = roundtrip(
        &mut reader,
        &mut writer,
        &format!(r#"{{"op":"tasks","ids":[{}]}}"#, urg.n),
    );
    assert_eq!(v.get("ok"), Some(&Value::Bool(false)));

    // The score path still answers on the same connection.
    let v = roundtrip(&mut reader, &mut writer, r#"{"op":"score","ids":[0]}"#);
    assert_eq!(v.get("ok"), Some(&Value::Bool(true)));

    // Stats carry the new counter.
    let v = roundtrip(&mut reader, &mut writer, r#"{"op":"stats"}"#);
    assert!(v.get("task_requests").and_then(|x| x.as_f64()).unwrap() >= 2.0);

    server.shutdown();
}

#[test]
fn tasks_op_without_store_is_a_clean_error() {
    let city = City::from_config(CityPreset::tiny(), 51);
    let urg = Urg::build(&city, UrgOptions::default());
    let cfg = CmsfConfig::fast_test();
    let train: Vec<usize> = (0..urg.labeled.len()).collect();
    let mut model = Cmsf::new(&urg, cfg);
    model.fit(&urg, &train);

    let server = Server::start(
        urg,
        cfg,
        model.to_store(),
        ServeOptions {
            workers: 1,
            ..ServeOptions::default()
        },
    )
    .expect("server starts");
    let stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let v = roundtrip(&mut reader, &mut writer, r#"{"op":"tasks","ids":[0]}"#);
    assert_eq!(v.get("ok"), Some(&Value::Bool(false)));
    let err = v.get("error").and_then(|e| e.as_str()).unwrap();
    assert!(err.contains("embedding store"), "unexpected error: {err}");
    server.shutdown();
}
