//! Restore→serve round trip: scores served over the wire must be bitwise
//! the scores `Cmsf::predict` computes from the same checkpoint — before
//! *and after* an incremental `update_poi` re-embed. Also exercises the
//! crash paths a resident process meets: malformed JSON, out-of-bounds
//! region ids and wrong-width POI rows must come back as error replies on
//! a connection that keeps working.
//!
//! The wire carries f64 with shortest-round-trip formatting, so an f32
//! score survives serialize→parse→`as f32` exactly; bitwise comparison
//! through the socket is legitimate.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use cmsf::{Cmsf, CmsfConfig};
use serde_json::Value;
use uvd_citysim::{City, CityPreset};
use uvd_serve::{ServeOptions, Server};
use uvd_urg::{Detector, Urg, UrgOptions};

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Client {
            writer: stream.try_clone().unwrap(),
            reader: BufReader::new(stream),
        }
    }

    fn roundtrip(&mut self, line: &str) -> Value {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        self.writer.flush().unwrap();
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("read reply");
        serde_json::from_str_value(reply.trim()).expect("reply is valid JSON")
    }

    fn score(&mut self, ids: &[usize]) -> (Vec<f32>, u64) {
        let ids_json: Vec<String> = ids.iter().map(|i| i.to_string()).collect();
        let v = self.roundtrip(&format!(
            r#"{{"op":"score","ids":[{}]}}"#,
            ids_json.join(",")
        ));
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)), "reply: {v:?}");
        let scores = match v.get("scores") {
            Some(Value::Array(a)) => a
                .iter()
                .map(|s| s.as_f64().expect("score is a number") as f32)
                .collect(),
            other => panic!("no scores array: {other:?}"),
        };
        let version = v.get("version").and_then(|x| x.as_f64()).unwrap() as u64;
        (scores, version)
    }
}

fn trained_fixture() -> (Urg, CmsfConfig, Cmsf) {
    let city = City::from_config(CityPreset::tiny(), 51);
    let urg = Urg::build(&city, UrgOptions::default());
    let mut cfg = CmsfConfig::fast_test();
    cfg.master_epochs = 10;
    cfg.slave_epochs = 3;
    let train: Vec<usize> = (0..urg.labeled.len()).collect();
    let mut model = Cmsf::new(&urg, cfg);
    model.fit(&urg, &train);
    (urg, cfg, model)
}

#[test]
fn served_scores_are_bitwise_predict_including_after_update_poi() {
    let (urg, cfg, model) = trained_fixture();
    let store = model.to_store();
    let expected = model.predict(&urg);
    let n = urg.n;

    let opts = ServeOptions {
        workers: 2,
        batch: 16,
        max_delay: Duration::from_millis(1),
        ..ServeOptions::default()
    };
    let server = Server::start(urg.clone(), cfg, store, opts).expect("server starts");
    let mut client = Client::connect(server.addr());

    // --- generation 0: every region, in odd-sized requests so batches
    // split and chunk across the 16-row tape.
    let mut got = Vec::with_capacity(n);
    let mut version = 0;
    for chunk in (0..n).collect::<Vec<_>>().chunks(7) {
        let (scores, v) = client.score(chunk);
        got.extend(scores);
        version = v;
    }
    assert_eq!(version, 0);
    assert_eq!(got.len(), n);
    for (i, (g, e)) in got.iter().zip(expected.iter()).enumerate() {
        assert_eq!(
            g.to_bits(),
            e.to_bits(),
            "region {i}: served {g} != predict {e}"
        );
    }

    // --- crash paths on the same connection.
    let v = client.roundtrip("this is not json");
    assert_eq!(v.get("ok"), Some(&Value::Bool(false)));
    let v = client.roundtrip(&format!(r#"{{"op":"score","ids":[{n}]}}"#));
    assert_eq!(v.get("ok"), Some(&Value::Bool(false)));
    let err = v.get("error").and_then(|e| e.as_str()).unwrap();
    assert!(err.contains("out of bounds"), "unexpected error: {err}");
    let v = client.roundtrip(r#"{"op":"update_poi","region":0,"poi":[1.0]}"#);
    assert_eq!(
        v.get("ok"),
        Some(&Value::Bool(false)),
        "width mismatch: {v:?}"
    );
    let v = client.roundtrip(&format!(
        r#"{{"op":"update_poi","region":{n},"poi":[{}]}}"#,
        vec!["0.0"; urg.x_poi.cols()].join(",")
    ));
    assert_eq!(v.get("ok"), Some(&Value::Bool(false)), "oob region: {v:?}");
    // The connection survived all of it.
    let (scores, _) = client.score(&[0]);
    assert_eq!(scores[0].to_bits(), expected[0].to_bits());

    // --- incremental update: perturb one region's POI row, expect the
    // served scores to be bitwise what a full-city recompute would give.
    let region = 5usize;
    let mut new_poi: Vec<f32> = urg.x_poi.row(region).to_vec();
    for (j, x) in new_poi.iter_mut().enumerate() {
        *x = (*x * 0.5) + 0.01 * (j % 7) as f32;
    }
    let poi_json: Vec<String> = new_poi.iter().map(|x| format!("{x}")).collect();
    let v = client.roundtrip(&format!(
        r#"{{"op":"update_poi","region":{region},"poi":[{}]}}"#,
        poi_json.join(",")
    ));
    assert_eq!(
        v.get("ok"),
        Some(&Value::Bool(true)),
        "update failed: {v:?}"
    );
    assert_eq!(v.get("version").and_then(|x| x.as_f64()), Some(1.0));
    let reembedded = v.get("reembedded").and_then(|x| x.as_f64()).unwrap() as usize;
    assert!(reembedded >= 1 && reembedded <= n);

    // Full recompute on a locally updated URG. The wire carried the POI
    // row through shortest-round-trip f64 text, so parse it back the same
    // way the server did to feed both paths bit-identical features.
    let wire_poi: Vec<f32> = poi_json
        .iter()
        .map(|s| s.parse::<f64>().unwrap() as f32)
        .collect();
    let mut urg2 = urg.clone();
    urg2.update_poi(region, &wire_poi).unwrap();
    let expected2 = model.predict(&urg2);

    let mut got2 = Vec::with_capacity(n);
    for chunk in (0..n).collect::<Vec<_>>().chunks(11) {
        let (scores, v) = client.score(chunk);
        assert_eq!(v, 1, "scores must come from the updated generation");
        got2.extend(scores);
    }
    let mut changed = 0;
    for (i, (g, e)) in got2.iter().zip(expected2.iter()).enumerate() {
        assert_eq!(
            g.to_bits(),
            e.to_bits(),
            "region {i} after update: served {g} != predict {e}"
        );
        if g.to_bits() != expected[i].to_bits() {
            changed += 1;
        }
    }
    // The edit must actually have moved some scores (else the test is
    // vacuous) but not re-scored the whole city through the k-hop patch.
    assert!(changed >= 1, "update_poi changed no scores");

    // Health/stats still coherent.
    let v = client.roundtrip(r#"{"op":"health","id":7}"#);
    assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
    assert_eq!(v.get("version").and_then(|x| x.as_f64()), Some(1.0));
    assert_eq!(v.get("id").and_then(|x| x.as_f64()), Some(7.0));
    let v = client.roundtrip(r#"{"op":"stats"}"#);
    assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
    assert!(v.get("errors").and_then(|x| x.as_f64()).unwrap() >= 4.0);

    server.shutdown();
}

#[test]
fn engine_caches_match_predict_without_a_socket() {
    let (urg, cfg, model) = trained_fixture();
    let store = model.to_store();
    let expected = model.predict(&urg);

    let updater = uvd_serve::Updater::new(urg, cfg, &store).expect("restore");
    let caches = updater.caches();
    assert_eq!(caches.version, 0);
    assert_eq!(caches.scores.len(), expected.len());
    for (g, e) in caches.scores.iter().zip(expected.iter()) {
        assert_eq!(g.to_bits(), e.to_bits());
    }
}
