//! Overhead of the telemetry layer itself: the disabled path must stay at
//! "one relaxed atomic load" cost, and the enabled in-memory path must stay
//! cheap enough for stage-level (not per-op) instrumentation.
//!
//! The `disabled_*` benches run with the recorder off (the default — the
//! bench harness never sets `UVD_TRACE`); the `memory_*` pair flips it on
//! around the measurement. Pairs to compare:
//!
//! * `span_disabled`  vs `span_memory`  — RAII guard create + drop
//! * `counter_disabled` vs `counter_memory` — one `Counter::add(1)`

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

static BENCH_COUNTER: uvd_obs::Counter = uvd_obs::Counter::new("bench.obs_overhead");

fn bench_obs_overhead(c: &mut Criterion) {
    uvd_obs::disable();
    c.bench_function("span_disabled", |bch| {
        bch.iter(|| {
            let s = uvd_obs::span("bench.span").field("k", 1.0);
            black_box(&s);
        });
    });
    c.bench_function("counter_disabled", |bch| {
        bch.iter(|| BENCH_COUNTER.add(black_box(1)));
    });

    uvd_obs::set_memory();
    c.bench_function("span_memory", |bch| {
        bch.iter(|| {
            let s = uvd_obs::span("bench.span").field("k", 1.0);
            black_box(&s);
        });
    });
    c.bench_function("counter_memory", |bch| {
        bch.iter(|| BENCH_COUNTER.add(black_box(1)));
    });
    uvd_obs::disable();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_obs_overhead
}
criterion_main!(benches);
