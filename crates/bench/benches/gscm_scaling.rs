//! Empirical check of the GSCM complexity (paper eq. 26):
//! T = O(|V| K d + K d^2 + K^2 d) — near-linear in K for K << |V|.

use cmsf::Gscm;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use uvd_tensor::init::{normal_matrix, seeded_rng};
use uvd_tensor::Graph;

fn bench_gscm(c: &mut Criterion) {
    let n = 1600usize;
    let d = 64usize;
    let mut group = c.benchmark_group("gscm_fwd_bwd");
    for k in [8usize, 16, 32, 64] {
        let mut rng = seeded_rng(11);
        let gscm = Gscm::new("g", d, k, 0.1, &mut rng);
        let x = normal_matrix(n, d, 0.0, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |bch, _| {
            bch.iter(|| {
                let mut g = Graph::new();
                let xn = g.constant(x.clone());
                let out = gscm.forward(&mut g, xn, None);
                let sq = g.mul(out.x_global, out.x_global);
                let loss = g.sum_all(sq);
                g.backward(loss);
                black_box(g.scalar(loss))
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(4));
    targets = bench_gscm
}
criterion_main!(benches);
