//! URG construction benchmarks: edge building (spatial + bounded-hop road
//! BFS), POI feature extraction, and VGG-sim feature extraction per image.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use uvd_citysim::{City, CityPreset, IMG_LEN};
use uvd_urg::features::{poi_features, PoiFeatureOptions};
use uvd_urg::{edges, VggSim};

fn bench_urg(c: &mut Criterion) {
    let city = City::from_config(CityPreset::tiny(), 3);
    c.bench_function("spatial_edges_tiny", |b| {
        b.iter(|| black_box(edges::spatial_edges(&city).len()));
    });
    c.bench_function("road_edges_5hop_tiny", |b| {
        b.iter(|| black_box(edges::road_edges(&city, 5).len()));
    });
    c.bench_function("poi_features_tiny", |b| {
        b.iter(|| black_box(poi_features(&city, PoiFeatureOptions::default()).sum()));
    });
    let vgg = VggSim::new();
    c.bench_function("vgg_sim_16_images", |b| {
        b.iter(|| black_box(vgg.features(&city.images[..16 * IMG_LEN]).sum()));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(4));
    targets = bench_urg
}
criterion_main!(benches);
