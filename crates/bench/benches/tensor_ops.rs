//! Micro-benchmarks of the autodiff primitives that dominate training time.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use uvd_tensor::init::{normal_matrix, seeded_rng};
use uvd_tensor::{par, Csr, EdgeIndex, Graph, Matrix};

fn bench_tensor_ops(c: &mut Criterion) {
    let mut rng = seeded_rng(1);
    let a = normal_matrix(128, 128, 0.0, 1.0, &mut rng);
    let b = normal_matrix(128, 128, 0.0, 1.0, &mut rng);
    c.bench_function("matmul_128", |bch| {
        bch.iter(|| black_box(a.matmul(black_box(&b))));
    });

    // Edge attention primitives on a 1k-node, ~16k-edge graph.
    let n = 1000usize;
    let mut pairs = Vec::new();
    let mut r2 = seeded_rng(2);
    for i in 0..n as u32 {
        pairs.push((i, i));
        for _ in 0..15 {
            pairs.push((rand::Rng::gen_range(&mut r2, 0..n as u32), i));
        }
    }
    let edges = Arc::new(EdgeIndex::from_pairs(n, pairs));
    let scores = normal_matrix(edges.n_edges(), 1, 0.0, 1.0, &mut rng);
    let h = normal_matrix(n, 32, 0.0, 1.0, &mut rng);
    c.bench_function("edge_softmax_aggregate_16k_edges", |bch| {
        bch.iter(|| {
            let mut g = Graph::new();
            let s = g.constant(scores.clone());
            let hn = g.constant(h.clone());
            let alpha = g.edge_softmax(s, edges.clone());
            let out = g.edge_aggregate(alpha, hn, edges.clone());
            black_box(g.value(out).sum())
        });
    });

    // MS-Gate gated matmul: 1000 samples, 64 -> 16.
    let x = normal_matrix(n, 64, 0.0, 1.0, &mut rng);
    let w = normal_matrix(64, 16, 0.0, 1.0, &mut rng);
    let f = normal_matrix(n, 64 * 16, 0.0, 0.1, &mut rng).map(|v| 0.5 + v.clamp(-0.4, 0.4));
    c.bench_function("gated_matmul_1000x64x16", |bch| {
        bch.iter(|| {
            let mut g = Graph::new();
            let xn = g.constant(x.clone());
            let wn = g.constant(w.clone());
            let fn_ = g.constant(f.clone());
            let z = g.gated_matmul(xn, wn, fn_);
            black_box(g.value(z).sum())
        });
    });

    // Full forward+backward of a small attention block.
    let feats = normal_matrix(n, 64, 0.0, 1.0, &mut rng);
    let wproj = normal_matrix(64, 16, 0.0, 0.3, &mut rng);
    c.bench_function("attention_block_fwd_bwd", |bch| {
        bch.iter(|| {
            let mut g = Graph::new();
            let x = g.constant(feats.clone());
            let w = g.constant(wproj.clone());
            let hx = g.matmul(x, w);
            let al = g.constant(Matrix::filled(16, 1, 0.1));
            let sl = g.matmul(hx, al);
            let dsts = Arc::new(edges.dst().to_vec());
            let srcs = Arc::new(edges.src().to_vec());
            let sd = g.gather_rows(sl, dsts);
            let ss = g.gather_rows(sl, srcs);
            let s = g.add(sd, ss);
            let s = g.leaky_relu(s, 0.2);
            let alpha = g.edge_softmax(s, edges.clone());
            let out = g.edge_aggregate(alpha, hx, edges.clone());
            let sq = g.mul(out, out);
            let loss = g.sum_all(sq);
            g.backward(loss);
            black_box(g.scalar(loss))
        });
    });

    // ----- serial vs parallel pairs for the rayon-backed kernels ---------
    // The `_serial` variant pins one thread; `_par4` dispatches on four
    // (oversubscribed if the machine has fewer cores, in which case the
    // pair degenerates to roughly equal timings).

    let a256 = normal_matrix(256, 256, 0.0, 1.0, &mut rng);
    let b256 = normal_matrix(256, 256, 0.0, 1.0, &mut rng);
    c.bench_function("matmul_256_serial", |bch| {
        bch.iter(|| par::serial_scope(|| black_box(a256.matmul(black_box(&b256)))));
    });
    c.bench_function("matmul_256_par4", |bch| {
        bch.iter(|| par::with_threads(4, || black_box(a256.matmul(black_box(&b256)))));
    });

    // ~16k-nnz sparse matrix against a 2000×64 dense block.
    let mut r3 = seeded_rng(3);
    let mut coo = Vec::new();
    for r in 0..2000u32 {
        for _ in 0..8 {
            coo.push((r, rand::Rng::gen_range(&mut r3, 0..2000u32), 0.5f32));
        }
    }
    let sp = Csr::from_coo(2000, 2000, coo);
    let xd = normal_matrix(2000, 64, 0.0, 1.0, &mut rng);
    c.bench_function("spmm_16k_nnz_serial", |bch| {
        bch.iter(|| par::serial_scope(|| black_box(sp.spmm(black_box(&xd)))));
    });
    c.bench_function("spmm_16k_nnz_par4", |bch| {
        bch.iter(|| par::with_threads(4, || black_box(sp.spmm(black_box(&xd)))));
    });

    let edge_pass = |edges: &Arc<EdgeIndex>, scores: &Matrix, h: &Matrix| {
        let mut g = Graph::new();
        let s = g.constant(scores.clone());
        let hn = g.constant(h.clone());
        let alpha = g.edge_softmax(s, edges.clone());
        let out = g.edge_aggregate(alpha, hn, edges.clone());
        g.value(out).sum()
    };
    c.bench_function("edge_softmax_aggregate_serial", |bch| {
        bch.iter(|| par::serial_scope(|| black_box(edge_pass(&edges, &scores, &h))));
    });
    c.bench_function("edge_softmax_aggregate_par4", |bch| {
        bch.iter(|| par::with_threads(4, || black_box(edge_pass(&edges, &scores, &h))));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_tensor_ops
}
criterion_main!(benches);
