//! Empirical check of the MS-Gate complexity (paper eq. 27):
//! T = O(K d + |V| K + |V| K d + |V| d |F|) — linear in |V|.

use cmsf::{FixedAssignment, MsGate};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use uvd_nn::{Activation, Mlp};
use uvd_tensor::init::{normal_matrix, seeded_rng};
use uvd_tensor::{Graph, Matrix};

fn bench_msgate(c: &mut Criterion) {
    let d = 64usize;
    let k = 16usize;
    let mut group = c.benchmark_group("msgate_fwd_bwd");
    for n in [400usize, 900, 1600] {
        let mut rng = seeded_rng(13);
        let classifier = Mlp::new("clf", &[d, 16, 1], Activation::Tanh, &mut rng);
        let gate = MsGate::new("gate", d, k, 16, &classifier, &mut rng);
        let h = normal_matrix(k, d, 0.0, 1.0, &mut rng);
        let x = normal_matrix(n, d, 0.0, 1.0, &mut rng);
        let mut b_soft = Matrix::filled(n, k, 1.0 / k as f32);
        let mut b_hard_t = Matrix::zeros(k, n);
        let mut cluster_of = vec![0u32; n];
        for (i, c) in cluster_of.iter_mut().enumerate() {
            b_soft.set(i, i % k, 0.6);
            b_hard_t.set(i % k, i, 1.0);
            *c = (i % k) as u32;
        }
        let fixed = FixedAssignment {
            b_soft,
            b_hard_t,
            pseudo: (0..k).map(|j| if j % 4 == 0 { 1.0 } else { 0.0 }).collect(),
            cluster_of,
        };
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| {
                let mut g = Graph::new();
                let hn = g.constant(h.clone());
                let xn = g.constant(x.clone());
                let probs = gate.inclusion_probs(&mut g, hn);
                let q = gate.context(&mut g, &fixed, probs);
                let f = gate.filter(&mut g, q);
                let logits = gate.gated_forward(&mut g, &classifier, xn, f);
                let sq = g.mul(logits, logits);
                let loss = g.sum_all(sq);
                g.backward(loss);
                black_box(g.scalar(loss))
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(4));
    targets = bench_msgate
}
criterion_main!(benches);
