//! Empirical check of the MAGA complexity (paper eq. 25):
//! T = O(|V| d^2 + |E| d) — time per forward+backward should grow roughly
//! linearly in |V| (with |E| ∝ |V| at fixed degree).

use cmsf::MagaStack;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use uvd_nn::AggMode;
use uvd_tensor::init::{normal_matrix, seeded_rng};
use uvd_tensor::{EdgeIndex, Graph, ParamSet};

fn grid_edges(side: usize) -> Arc<EdgeIndex> {
    let n = side * side;
    let mut pairs = Vec::new();
    for y in 0..side {
        for x in 0..side {
            let r = (y * side + x) as u32;
            pairs.push((r, r));
            if x + 1 < side {
                let q = r + 1;
                pairs.push((r, q));
                pairs.push((q, r));
            }
            if y + 1 < side {
                let q = r + side as u32;
                pairs.push((r, q));
                pairs.push((q, r));
            }
        }
    }
    Arc::new(EdgeIndex::from_pairs(n, pairs))
}

fn bench_maga(c: &mut Criterion) {
    let mut group = c.benchmark_group("maga_fwd_bwd");
    for side in [12usize, 24, 36] {
        let n = side * side;
        let edges = grid_edges(side);
        let mut rng = seeded_rng(7);
        let maga = MagaStack::new("m", 64, 32, 16, 2, 2, AggMode::Attention, true, &mut rng);
        let xp = normal_matrix(n, 64, 0.0, 1.0, &mut rng);
        let xi = normal_matrix(n, 32, 0.0, 1.0, &mut rng);
        let mut set = ParamSet::new();
        maga.collect_params(&mut set);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| {
                let mut g = Graph::new();
                let p = g.constant(xp.clone());
                let i = g.constant(xi.clone());
                let out = maga.forward(&mut g, p, Some(i), &edges);
                let sq = g.mul(out, out);
                let loss = g.sum_all(sq);
                g.backward(loss);
                black_box(g.scalar(loss))
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(4));
    targets = bench_maga
}
criterion_main!(benches);
