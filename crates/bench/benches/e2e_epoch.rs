//! End-to-end CMSF epoch cost on the tiny city: one full-batch master epoch
//! and one slave epoch (the quantities Table III reports per method).

use cmsf::{Cmsf, CmsfConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use uvd_citysim::{City, CityPreset};
use uvd_tensor::Adam;
use uvd_urg::{Urg, UrgOptions};

fn bench_epochs(c: &mut Criterion) {
    let city = City::from_config(CityPreset::tiny(), 5);
    let urg = Urg::build(&city, UrgOptions::default());
    let train: Vec<usize> = (0..urg.labeled.len()).collect();
    let mut cfg = CmsfConfig::fast_test();
    cfg.master_epochs = 3;
    cfg.slave_epochs = 2;
    let mut model = Cmsf::new(&urg, cfg);
    let rows: Arc<Vec<u32>> = Arc::new(train.iter().map(|&i| urg.labeled[i]).collect());
    let targets: Arc<Vec<f32>> = Arc::new(train.iter().map(|&i| urg.y[i]).collect());
    let weights: Arc<Vec<f32>> = Arc::new(vec![1.0; train.len()]);

    c.bench_function("cmsf_master_epoch_tiny", |b| {
        let mut opt = Adam::new(1e-4);
        b.iter(|| {
            black_box(model.master_epoch(&urg, &rows, &targets, &weights, &mut opt));
        });
    });

    model.train_master(&urg, &train).expect("master trains");
    let fixed = model.fixed_assignment().expect("after master").clone();
    let (c1, c0) = fixed.partition();
    c.bench_function("cmsf_slave_epoch_tiny", |b| {
        let mut opt = Adam::new(1e-4);
        b.iter(|| {
            black_box(
                model.slave_epoch(&urg, &fixed, &c1, &c0, &rows, &targets, &weights, &mut opt),
            )
            .expect("slave epoch stays finite");
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(4));
    targets = bench_epochs
}
criterion_main!(benches);
