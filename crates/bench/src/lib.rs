//! # uvd-bench
//!
//! Benchmark harness: one binary per table/figure of the paper's evaluation
//! (Section VI), plus criterion micro-benches validating the complexity
//! analysis of Section V-D. Each binary prints the paper-style rows and
//! writes a JSON record under `results/`.
//!
//! | binary   | reproduces            |
//! |----------|-----------------------|
//! | `table1` | dataset statistics    |
//! | `table2` | detection performance |
//! | `fig5a`  | component ablation    |
//! | `fig5b`  | data ablation         |
//! | `fig6a`  | sensitivity to K      |
//! | `fig6b`  | sensitivity to λ      |
//! | `fig6c`  | label-ratio sweep     |
//! | `table3` | efficiency            |
//! | `fig7`   | case-study maps       |

use uvd_citysim::CityConfig;
use uvd_eval::{MethodSummary, RunSpec};

/// Where experiment records are written.
pub const RESULTS_DIR: &str = "results";

/// A scaling-family city: same structural densities at every grid side, so
/// curves over `side` isolate region count. Patch/center/nature counts scale
/// with area. Shared by the `scaling` harness (memory/throughput curve) and
/// `perfsnap` (build-path thread sweep) so both tools measure the same city.
pub fn scale_city(side: usize) -> CityConfig {
    let area = side * side;
    CityConfig {
        name: format!("scale-{side}x{side}"),
        height: side,
        width: side,
        n_centers: (area / 40_000 + 1).min(6),
        n_uv_patches: (area / 400).max(8),
        uv_patch_size: (4, 10),
        uv_discovery_rate: 0.85,
        non_uv_label_ratio: 4.0,
        road_spacing: 2,
        road_keep_prob: 0.85,
        poi_density: 0.3,
        n_nature_patches: (area / 10_000).max(2),
    }
}

/// Resolve `name` against the repository root (two levels above this
/// crate's manifest), so binaries write there regardless of the invocation
/// directory.
pub fn repo_root_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crate lives two levels below the repo root")
        .join(name)
}

/// Scale of an experiment run, from CLI flags.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Smoke-test: reduced epochs, one seed.
    Quick,
    /// Default: full epochs, two seeds.
    Standard,
    /// Paper-style: full epochs, five seeds.
    Full,
}

impl Scale {
    /// Parse from process args: `--quick` or `--full` (default standard).
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--quick") {
            Scale::Quick
        } else if args.iter().any(|a| a == "--full") {
            Scale::Full
        } else {
            Scale::Standard
        }
    }

    /// The run protocol for this scale.
    pub fn spec(self) -> RunSpec {
        match self {
            Scale::Quick => RunSpec {
                quick: true,
                seeds: vec![0],
                ..Default::default()
            },
            Scale::Standard => RunSpec {
                seeds: vec![0, 1],
                ..Default::default()
            },
            Scale::Full => RunSpec {
                seeds: vec![0, 1, 2, 3, 4],
                ..Default::default()
            },
        }
    }

    /// A lighter protocol for hyper-parameter sweeps (one seed, two folds;
    /// sweeps show relative shape, not absolute level).
    pub fn sweep_spec(self) -> RunSpec {
        let mut s = self.spec();
        s.folds = 2;
        s.seeds = match self {
            Scale::Full => vec![0, 1],
            _ => vec![0],
        };
        s
    }

    /// Reduced training budget for sweep points (shape, not level).
    pub fn sweep_epochs(self) -> (usize, usize) {
        match self {
            Scale::Quick => (20, 6),
            _ => (50, 10),
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Standard => "standard",
            Scale::Full => "full",
        }
    }
}

/// Format a `MethodSummary` as a paper-style table row.
pub fn format_row(s: &MethodSummary) -> String {
    let p3 = s.at(3).expect("p=3 metrics");
    let p5 = s.at(5).expect("p=5 metrics");
    let mut row = format!(
        "{:10} | {} | {} {} {} | {} {} {}",
        s.method, s.auc, p3.recall, p3.precision, p3.f1, p5.recall, p5.precision, p5.f1
    );
    if s.failed > 0 {
        row.push_str(&format!(
            "  [{}/{} folds failed]",
            s.failed,
            s.runs + s.failed
        ));
    }
    // Stage timings from the instrumented runner (absent — all zero — when
    // re-rendering records written before the telemetry fields existed).
    if s.fit_secs > 0.0 {
        row.push_str(&format!(
            "  [fit {:.2}s | infer {:.3}s | eval {:.3}s]",
            s.fit_secs, s.inference_secs, s.evaluate_secs
        ));
    }
    row
}

/// Table II/ablation header matching [`format_row`].
pub fn header() -> String {
    format!(
        "{:10} | {:12} | {:^38} | {:^38}\n{:10} | {:12} | {:12} {:12} {:12} | {:12} {:12} {:12}",
        "",
        "AUC",
        "p=3",
        "p=5",
        "method",
        "",
        "Recall",
        "Precision",
        "F1",
        "Recall",
        "Precision",
        "F1"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvd_eval::{MeanStd, PSummary};

    #[test]
    fn scale_specs_are_graded() {
        assert!(Scale::Quick.spec().quick);
        assert_eq!(Scale::Standard.spec().seeds.len(), 2);
        assert_eq!(Scale::Full.spec().seeds.len(), 5);
        assert!(Scale::Full.sweep_spec().seeds.len() <= 2);
    }

    #[test]
    fn format_row_contains_all_metrics() {
        let ms = MeanStd {
            mean: 0.5,
            std: 0.001,
        };
        let p = |p| PSummary {
            p,
            recall: ms,
            precision: ms,
            f1: ms,
        };
        let s = MethodSummary {
            method: "X".into(),
            city: "c".into(),
            auc: ms,
            at_p: vec![p(3), p(5)],
            train_secs_per_epoch: 0.0,
            fit_secs: 0.0,
            inference_secs: 0.0,
            evaluate_secs: 0.0,
            model_mbytes: 0.0,
            runs: 1,
            failed: 0,
            fold_outcomes: vec![],
        };
        let row = format_row(&s);
        assert!(row.contains("0.500"));
        assert_eq!(row.matches("0.500").count(), 7);
        assert!(
            !row.contains("[fit"),
            "timings hidden when the record has none"
        );

        let timed = MethodSummary {
            fit_secs: 0.25,
            inference_secs: 0.011,
            evaluate_secs: 0.002,
            ..s
        };
        let row = format_row(&timed);
        assert!(row.contains("[fit 0.25s | infer 0.011s | eval 0.002s]"));
    }
}
