//! Release gate + benchmark for the "pretrain once, serve many tasks"
//! path: pretrain the tiny fixture, export the frozen embeddings, train
//! all three downstream heads, persist everything into one `UVDT0002`
//! store, reload it from disk and assert the reloaded scores are **bitwise
//! identical** to the in-memory ones — including through an in-process
//! `uvd-serve` server answering the `tasks` op from the same file.
//!
//! Default (gate) mode leaves `BENCH_tensor.json` untouched. `--record`
//! additionally times one full CMSF retrain against training the three
//! heads from the already-exported store and writes the amortization
//! ratio into the `tasks` key of `BENCH_tensor.json`.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use cmsf::{embedding_key, Cmsf, CmsfConfig};
use uvd_bench::repo_root_path;
use uvd_citysim::{land_use_classes, City, CityPreset};
use uvd_serve::{ServeOptions, Server, TaskScorer};
use uvd_tasks::{
    accessibility_targets, best_region_search, AccessibilityHead, EmbeddingStore, LandUseHead,
    SearchOptions, TaskHeadConfig,
};
use uvd_urg::{Detector, Urg, UrgOptions};

fn check(ok: bool, what: &str) {
    if ok {
        println!("  ok: {what}");
    } else {
        eprintln!("  FAIL: {what}");
        std::process::exit(1);
    }
}

fn main() {
    let record = std::env::args().any(|a| a == "--record");

    println!("pretraining the tiny fixture ...");
    let city = City::from_config(CityPreset::tiny(), 51);
    let urg = Urg::build(&city, UrgOptions::default());
    // Gate mode keeps the scaled-down smoke epochs; the recorded
    // amortization row uses the realistic epoch budget (100/20), since
    // that is the pretrain cost the store actually amortizes.
    let cfg = if record {
        CmsfConfig::default()
    } else {
        let mut c = CmsfConfig::fast_test();
        c.master_epochs = 10;
        c.slave_epochs = 3;
        c
    };
    let train: Vec<usize> = (0..urg.labeled.len()).collect();
    let t0 = Instant::now();
    let mut model = Cmsf::new(&urg, cfg);
    model.fit(&urg, &train);
    let pretrain_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Export + train the heads from the frozen rows.
    let mut store = EmbeddingStore::new();
    model.export_embeddings(&urg, "tiny", &mut store);
    let emb = store.get(&embedding_key("tiny")).unwrap().clone();
    let meta = store.meta(&embedding_key("tiny")).unwrap().clone();
    let head_cfg = TaskHeadConfig::default();
    let labels = land_use_classes(&city);
    let targets = accessibility_targets(&city);
    let idx: Vec<usize> = (0..urg.n).collect();

    let t1 = Instant::now();
    let mut lu = LandUseHead::new(emb.cols(), &head_cfg);
    lu.fit(&emb, &labels, &idx, &head_cfg);
    let landuse_ms = t1.elapsed().as_secs_f64() * 1e3;
    let t2 = Instant::now();
    let mut ac = AccessibilityHead::new(emb.cols(), &head_cfg);
    ac.fit(&emb, &targets, &idx, &head_cfg);
    let access_ms = t2.elapsed().as_secs_f64() * 1e3;
    let t3 = Instant::now();
    let region = best_region_search(&emb, &city, &urg, &SearchOptions::default());
    let search_ms = t3.elapsed().as_secs_f64() * 1e3;
    lu.capture(&mut store, &meta);
    ac.capture(&mut store, &meta);

    // In-memory reference outputs.
    let lu_probs = lu.probs(&emb);
    let ac_pred = ac.predict(&emb);

    // Persist, reload, restore — the invariant under test.
    let path = std::env::temp_dir().join(format!("uvd_tasks_smoke_{}.uvdt2", std::process::id()));
    store.save(&path).expect("save store");
    let reloaded = EmbeddingStore::load(&path).expect("load store");
    let _ = std::fs::remove_file(&path);
    check(reloaded == store, "store round-trips bit-exactly");

    let scorer = TaskScorer::new(&reloaded).expect("restore from reloaded store");
    check(scorer.n_regions() == urg.n, "scorer covers every region");
    let ids: Vec<u32> = (0..urg.n as u32).collect();
    let (classes, access) = scorer.score(&ids);
    let want_classes: Vec<u8> = (0..urg.n)
        .map(|r| {
            let row = lu_probs.row(r);
            let mut best = 0usize;
            for (j, &v) in row.iter().enumerate().skip(1) {
                if v > row[best] {
                    best = j;
                }
            }
            best as u8
        })
        .collect();
    check(
        classes == want_classes,
        "reloaded land-use classes are bitwise the in-memory ones",
    );
    check(
        access
            .iter()
            .zip(&ac_pred)
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "reloaded accessibility scores are bitwise the in-memory ones",
    );
    let region2 = best_region_search(
        &reloaded.get(&embedding_key("tiny")).unwrap().clone(),
        &city,
        &urg,
        &SearchOptions::default(),
    );
    check(
        region == region2,
        "best-region search is stable across save/load",
    );

    // Serve the same store through the wire.
    let server = Server::start(
        urg.clone(),
        cfg,
        model.to_store(),
        ServeOptions {
            workers: 2,
            batch: 8,
            max_delay: Duration::from_millis(1),
            embeddings: Some(reloaded),
            ..ServeOptions::default()
        },
    )
    .expect("server starts");
    let stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let probe: Vec<u32> = vec![0, 7, urg.n as u32 - 1];
    let probe_json: Vec<String> = probe.iter().map(|i| i.to_string()).collect();
    writer
        .write_all(format!("{{\"op\":\"tasks\",\"ids\":[{}]}}\n", probe_json.join(",")).as_bytes())
        .unwrap();
    writer.flush().unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("tasks reply");
    let v = serde_json::from_str_value(reply.trim()).expect("tasks reply is JSON");
    check(
        v.get("ok") == Some(&serde_json::Value::Bool(true)),
        "served tasks op answers ok",
    );
    let served: Vec<u8> = match v.get("classes") {
        Some(serde_json::Value::Array(a)) => a.iter().map(|c| c.as_f64().unwrap() as u8).collect(),
        _ => {
            eprintln!("  FAIL: tasks reply has no classes array");
            std::process::exit(1);
        }
    };
    let want: Vec<u8> = probe.iter().map(|&i| want_classes[i as usize]).collect();
    check(served == want, "served classes match the in-memory heads");
    server.shutdown();

    let heads_total_ms = landuse_ms + access_ms + search_ms;
    println!("  pretrain      {pretrain_ms:9.1} ms");
    println!("  landuse head  {landuse_ms:9.1} ms");
    println!("  access head   {access_ms:9.1} ms");
    println!("  search        {search_ms:9.1} ms");
    println!("  heads total   {heads_total_ms:9.1} ms");

    if !record {
        println!("tasks_smoke: all checks passed (gate mode, BENCH_tensor.json untouched)");
        return;
    }

    // Amortization: what a user pays to add three tasks to an existing
    // checkpoint (three heads from the store) vs the retrain-per-task
    // world (one more full CMSF fit *per task*; one is enough to make the
    // point, so the recorded ratio is conservative).
    println!("timing one full CMSF retrain for the amortization row ...");
    let t4 = Instant::now();
    let mut retrained = Cmsf::new(&urg, cfg);
    retrained.fit(&urg, &train);
    let retrain_ms = t4.elapsed().as_secs_f64() * 1e3;
    let amortization = retrain_ms / heads_total_ms;
    println!("  retrain       {retrain_ms:9.1} ms");
    println!("  amortization  {amortization:9.2}x (one retrain vs all three heads)");

    let rows = uvd_eval::run_task_suite(&city, &urg, &emb, head_cfg.seed).expect("task suite");
    let metrics: Vec<serde_json::Value> = rows
        .iter()
        .map(|r| {
            serde_json::json!({
                "task": r.task.clone(),
                "metric": r.metric.clone(),
                "value": r.value,
                "train_n": r.train_n,
                "test_n": r.test_n,
            })
        })
        .collect();
    let row = serde_json::json!({
        "city": "tiny",
        "regions": urg.n,
        "pretrain_ms": pretrain_ms,
        "retrain_ms": retrain_ms,
        "landuse_head_ms": landuse_ms,
        "access_head_ms": access_ms,
        "search_ms": search_ms,
        "heads_total_ms": heads_total_ms,
        "amortization": amortization,
        "metrics": serde_json::Value::Array(metrics),
    });
    let path = repo_root_path("BENCH_tensor.json");
    let mut doc: serde_json::Value = std::fs::read_to_string(&path)
        .ok()
        .and_then(|t| serde_json::from_str_value(&t).ok())
        .unwrap_or_else(|| serde_json::json!({}));
    doc.set("tasks", row);
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&doc).expect("serialize snapshot") + "\n",
    )
    .expect("write BENCH_tensor.json");
    println!("wrote tasks row to {}", path.display());
}
