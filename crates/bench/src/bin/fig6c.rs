//! Figure 6(c) — robustness to the ratio of available labeled data: CMSF vs
//! the strongest image baseline (UVLens in the paper) trained on 10 / 25 /
//! 50 / 75 / 100 % of each training split.

use uvd_bench::{Scale, RESULTS_DIR};
use uvd_citysim::CityPreset;
use uvd_eval::{
    dataset_urg,
    factory::{baseline_config, cmsf_config},
    records::write_json,
    run_custom, ExperimentRecord, MethodKind,
};
use uvd_urg::{Detector, Urg, UrgOptions};

const RATIOS: [f64; 4] = [0.10, 0.25, 0.50, 0.75];

fn main() {
    let scale = Scale::from_args();
    println!(
        "Figure 6(c): AUC vs ratio of available labeled data ({} scale)\n",
        scale.label()
    );

    let mut rows = Vec::new();
    for preset in CityPreset::ALL {
        let urg = dataset_urg(preset, UrgOptions::default());
        println!("--- {} ---", urg.name);
        let (master_epochs, slave_epochs) = scale.sweep_epochs();
        for kind in [MethodKind::Cmsf, MethodKind::Uvlens] {
            print!("{:8}", kind.label());
            for ratio in RATIOS {
                let mut spec = scale.sweep_spec();
                spec.label_ratio = ratio;
                let builder = |seed: u64, urg: &Urg| -> Box<dyn Detector> {
                    match kind {
                        MethodKind::Cmsf => {
                            let mut cfg = cmsf_config(urg, seed, spec.quick);
                            cfg.master_epochs = master_epochs;
                            cfg.slave_epochs = slave_epochs;
                            Box::new(cmsf::Cmsf::new(urg, cfg))
                        }
                        _ => {
                            let mut cfg = baseline_config(kind, seed, spec.quick);
                            cfg.epochs = cfg.epochs.min(15);
                            Box::new(uvd_baselines::UvlensBaseline::new(urg, cfg))
                        }
                    }
                };
                let mut s = match run_custom(&urg, &spec, kind.label(), builder) {
                    Ok(s) => s,
                    Err(err) => {
                        print!("  {:.0}%: failed", ratio * 100.0);
                        eprintln!("\n{} skipped: {err}", kind.label());
                        continue;
                    }
                };
                s.method = format!("{}@{:.0}%", kind.label(), ratio * 100.0);
                print!("  {:.0}%: {:.3}", ratio * 100.0, s.auc.mean);
                rows.push(s);
            }
            println!();
        }
    }

    let record = ExperimentRecord {
        experiment: "fig6c".into(),
        description: "Label-ratio robustness, CMSF vs UVLens (paper Figure 6c)".into(),
        params: format!("scale={}, ratios {:?}", scale.label(), RATIOS),
        rows,
    };
    write_json(&format!("{RESULTS_DIR}/fig6c.json"), &record).expect("write results/fig6c.json");
    println!("wrote {RESULTS_DIR}/fig6c.json");
}
