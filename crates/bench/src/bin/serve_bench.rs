//! Throughput/latency snapshot of the resident `uvd-serve` scoring
//! service: train the tiny fixture, restore it into an in-process server,
//! hammer it from concurrent client connections and record QPS plus p50/p99
//! request latency into the `serve` key of `BENCH_tensor.json`.
//!
//! `--smoke` runs a scaled-down pass and leaves `BENCH_tensor.json`
//! untouched (the serve gate itself lives in `serve_smoke`).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use cmsf::{Cmsf, CmsfConfig};
use rand::Rng;
use uvd_bench::repo_root_path;
use uvd_citysim::{City, CityPreset};
use uvd_serve::{ServeOptions, Server};
use uvd_urg::{Detector, Urg, UrgOptions};

fn trained_fixture() -> (Urg, CmsfConfig, uvd_tensor::MatrixStore) {
    let city = City::from_config(CityPreset::tiny(), 51);
    let urg = Urg::build(&city, UrgOptions::default());
    let mut cfg = CmsfConfig::fast_test();
    cfg.master_epochs = 10;
    cfg.slave_epochs = 3;
    let train: Vec<usize> = (0..urg.labeled.len()).collect();
    let mut model = Cmsf::new(&urg, cfg);
    model.fit(&urg, &train);
    (urg, cfg, model.to_store())
}

/// One client thread: its own connection, `reqs` score requests of
/// `ids_per_req` ids each, returning per-request latencies in µs.
fn client_thread(
    addr: std::net::SocketAddr,
    n_regions: usize,
    reqs: usize,
    ids_per_req: usize,
    seed: u64,
) -> Vec<u64> {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut rng = uvd_tensor::seeded_rng(seed);
    let mut lat = Vec::with_capacity(reqs);
    let mut reply = String::new();
    for _ in 0..reqs {
        let ids: Vec<String> = (0..ids_per_req)
            .map(|_| rng.gen_range(0..n_regions).to_string())
            .collect();
        let line = format!("{{\"op\":\"score\",\"ids\":[{}]}}\n", ids.join(","));
        let t0 = Instant::now();
        writer.write_all(line.as_bytes()).unwrap();
        writer.flush().unwrap();
        reply.clear();
        reader.read_line(&mut reply).expect("reply");
        lat.push(t0.elapsed().as_micros() as u64);
        assert!(
            reply.contains("\"ok\":true"),
            "score request failed: {reply}"
        );
    }
    lat
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (clients, reqs_per_client, ids_per_req) = if smoke { (4, 50, 4) } else { (8, 250, 8) };

    println!("training the tiny fixture checkpoint ...");
    let (urg, cfg, store) = trained_fixture();
    let n_regions = urg.n;
    let opts = ServeOptions {
        workers: 2,
        ..ServeOptions::default()
    };
    let batch = opts.batch;
    let workers = opts.workers;
    let server = Server::start(urg, cfg, store, opts).expect("server starts");
    let addr = server.addr();

    // Warmup: first replays page the tapes in.
    client_thread(addr, n_regions, 20, ids_per_req, 999);

    let t0 = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            std::thread::spawn(move || {
                client_thread(addr, n_regions, reqs_per_client, ids_per_req, c as u64)
            })
        })
        .collect();
    let mut lat: Vec<u64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .collect();
    let elapsed = t0.elapsed();
    lat.sort_unstable();

    let total = lat.len();
    let qps = total as f64 / elapsed.as_secs_f64();
    let p50 = percentile(&lat, 0.50);
    let p99 = percentile(&lat, 0.99);

    // Micro-batch fill from the server's own stats endpoint.
    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    writer.write_all(b"{\"op\":\"stats\"}\n").unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    let stats = serde_json::from_str_value(reply.trim()).expect("stats reply");
    let batches = stats.get("batches").and_then(|v| v.as_f64()).unwrap_or(0.0);
    let rows = stats
        .get("rows_scored")
        .and_then(|v| v.as_f64())
        .unwrap_or(0.0);
    let avg_rows = if batches > 0.0 { rows / batches } else { 0.0 };
    server.shutdown();

    println!(
        "serve_bench: {total} requests x {ids_per_req} ids from {clients} clients in {:.2}s",
        elapsed.as_secs_f64()
    );
    println!("  qps           {qps:10.0}");
    println!("  p50 latency   {p50:7} us");
    println!("  p99 latency   {p99:7} us");
    println!("  avg batch     {avg_rows:8.1} rows ({batches:.0} replays)");

    if smoke {
        println!("\nsmoke run: leaving BENCH_tensor.json untouched");
        return;
    }

    let row = serde_json::json!({
        "city": "tiny",
        "regions": n_regions,
        "clients": clients,
        "requests": total,
        "ids_per_request": ids_per_req,
        "workers": workers,
        "batch": batch,
        "qps": qps,
        "p50_us": p50,
        "p99_us": p99,
        "avg_batch_rows": avg_rows,
    });
    let path = repo_root_path("BENCH_tensor.json");
    let mut doc: serde_json::Value = std::fs::read_to_string(&path)
        .ok()
        .and_then(|t| serde_json::from_str_value(&t).ok())
        .unwrap_or_else(|| serde_json::json!({}));
    doc.set("serve", row);
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&doc).expect("serialize snapshot") + "\n",
    )
    .expect("write BENCH_tensor.json");
    println!("wrote serve row to {}", path.display());
}
