//! Figure 5(a) — ablation of model components: CMSF vs CMSF-M (no
//! cross-modal attention), CMSF-G (no MS-Gate) and CMSF-H (no hierarchy).

use uvd_bench::{format_row, header, Scale, RESULTS_DIR};
use uvd_citysim::CityPreset;
use uvd_eval::{
    dataset_urg, factory::cmsf_config, records::write_json, run_custom, ExperimentRecord,
    MethodKind,
};
use uvd_urg::UrgOptions;

fn main() {
    let scale = Scale::from_args();
    // Component differences need fully-trained models: full epoch budget,
    // 3 folds, one seed (the sweep-lite 50-epoch budget under-trains the
    // hierarchy and scrambles the ordering).
    let mut spec = scale.spec();
    spec.seeds.truncate(1);
    let (master_epochs, slave_epochs) = if spec.quick {
        scale.sweep_epochs()
    } else {
        (100, 20)
    };
    println!(
        "Figure 5(a): effect of model components ({} scale)\n",
        scale.label()
    );

    let mut rows = Vec::new();
    for preset in CityPreset::ALL {
        let urg = dataset_urg(preset, UrgOptions::default());
        println!("--- {} ---", urg.name);
        println!("{}", header());
        for kind in MethodKind::FIG5A {
            let s = run_custom(&urg, &spec, kind.label(), |seed, urg| {
                let mut cfg = cmsf_config(urg, seed, spec.quick);
                cfg.master_epochs = master_epochs;
                cfg.slave_epochs = slave_epochs;
                match kind {
                    MethodKind::CmsfM => cfg.use_maga_cross = false,
                    MethodKind::CmsfG => cfg.use_gate = false,
                    MethodKind::CmsfH => {
                        cfg.use_hierarchy = false;
                        cfg.use_gate = false;
                    }
                    _ => {}
                }
                Box::new(cmsf::Cmsf::new(urg, cfg))
            });
            let s = match s {
                Ok(s) => s,
                Err(err) => {
                    eprintln!("{:10} | skipped: {err}", kind.label());
                    continue;
                }
            };
            println!("{}", format_row(&s));
            rows.push(s);
        }
        println!();
    }

    let record = ExperimentRecord {
        experiment: "fig5a".into(),
        description: "Component ablation (paper Figure 5a)".into(),
        params: format!(
            "scale={}, folds={}, seeds={:?}",
            scale.label(),
            spec.folds,
            spec.seeds
        ),
        rows,
    };
    write_json(&format!("{RESULTS_DIR}/fig5a.json"), &record).expect("write results/fig5a.json");
    println!("wrote {RESULTS_DIR}/fig5a.json");
}
