//! Figure 6(b) — sensitivity of CMSF to the balancing weight λ of the
//! pseudo-label (PU rank) loss.

use uvd_bench::{Scale, RESULTS_DIR};
use uvd_citysim::CityPreset;
use uvd_eval::{
    dataset_urg, factory::cmsf_config, records::write_json, run_custom, ExperimentRecord,
};
use uvd_urg::UrgOptions;

const LAMBDA_SWEEP: [f32; 5] = [0.001, 0.01, 0.05, 0.5, 5.0];

fn main() {
    let scale = Scale::from_args();
    let spec = scale.sweep_spec();
    println!(
        "Figure 6(b): sensitivity to the balancing weight lambda ({} scale)\n",
        scale.label()
    );

    let mut rows = Vec::new();
    for preset in CityPreset::ALL {
        let urg = dataset_urg(preset, UrgOptions::default());
        print!("{:16}", urg.name);
        for lambda in LAMBDA_SWEEP {
            let label = format!("CMSF(lambda={lambda})");
            let s = run_custom(&urg, &spec, &label, |seed, urg| {
                let mut cfg = cmsf_config(urg, seed, spec.quick);
                cfg.lambda = lambda;
                let (me, se) = scale.sweep_epochs();
                cfg.master_epochs = me;
                cfg.slave_epochs = se;
                Box::new(cmsf::Cmsf::new(urg, cfg))
            });
            let s = match s {
                Ok(s) => s,
                Err(err) => {
                    print!("  l={lambda}: failed");
                    eprintln!("\n{label} skipped: {err}");
                    continue;
                }
            };
            print!("  l={lambda}: {:.3}", s.auc.mean);
            rows.push(s);
        }
        println!();
    }

    let record = ExperimentRecord {
        experiment: "fig6b".into(),
        description: "AUC vs balancing weight lambda (paper Figure 6b)".into(),
        params: format!(
            "scale={}, lambda sweep {:?}, seeds={:?}",
            scale.label(),
            LAMBDA_SWEEP,
            spec.seeds
        ),
        rows,
    };
    write_json(&format!("{RESULTS_DIR}/fig6b.json"), &record).expect("write results/fig6b.json");
    println!("wrote {RESULTS_DIR}/fig6b.json");
}
