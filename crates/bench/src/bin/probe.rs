use cmsf::{Cmsf, CmsfConfig};
use uvd_citysim::CityPreset;
use uvd_eval::{block_folds, dataset_urg, eval_scores, train_test_pairs};
use uvd_urg::{Detector, UrgOptions};

fn main() {
    let urg = dataset_urg(CityPreset::BeijingLike, UrgOptions::default());
    let pairs = train_test_pairs(&block_folds(&urg, 3, 8, 13));
    for (k, tau, epochs, lr, hid) in [
        (20usize, 0.1f32, 100usize, 5e-3f32, 16usize),
        (16, 0.1, 100, 5e-3, 16),
        (20, 0.1, 160, 5e-3, 16),
        (20, 0.2, 100, 5e-3, 16),
        (20, 0.1, 100, 8e-3, 16),
        (12, 0.1, 100, 5e-3, 16),
    ] {
        let mut aucs = vec![];
        for (train, test) in pairs.iter().take(2) {
            for seed in [0u64, 1] {
                let mut cfg = CmsfConfig::for_city(&urg.name);
                cfg.k_clusters = k;
                cfg.tau = tau;
                cfg.master_epochs = epochs;
                cfg.lr = lr;
                cfg.hidden = hid;
                cfg.seed = seed;
                let mut m = Cmsf::new(&urg, cfg);
                let report = m.fit(&urg, train);
                if let Some(err) = report.error {
                    eprintln!("K={k} seed={seed}: fit failed, skipping: {err}");
                    continue;
                }
                match eval_scores(&m.predict(&urg), &urg, test, &[3]) {
                    Ok((a, _)) => aucs.push(a),
                    Err(err) => eprintln!("K={k} seed={seed}: skipping: {err}"),
                }
            }
        }
        let mean = aucs.iter().sum::<f64>() / aucs.len() as f64;
        println!(
            "K={k} tau={tau} ep={epochs} lr={lr} hid={hid}: auc={mean:.3} ({:?})",
            aucs.iter().map(|a| (a * 1000.0) as i64).collect::<Vec<_>>()
        );
    }
}
