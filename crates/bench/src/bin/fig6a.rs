//! Figure 6(a) — sensitivity of CMSF to the number of latent semantic
//! clusters K.

use uvd_bench::{Scale, RESULTS_DIR};
use uvd_citysim::CityPreset;
use uvd_eval::{
    dataset_urg, factory::cmsf_config, records::write_json, run_custom, ExperimentRecord,
};
use uvd_urg::UrgOptions;

const K_SWEEP: [usize; 4] = [4, 8, 16, 32];

fn main() {
    let scale = Scale::from_args();
    let spec = scale.sweep_spec();
    println!(
        "Figure 6(a): sensitivity to the number of latent clusters K ({} scale)\n",
        scale.label()
    );

    let mut rows = Vec::new();
    for preset in CityPreset::ALL {
        let urg = dataset_urg(preset, UrgOptions::default());
        print!("{:16}", urg.name);
        for k in K_SWEEP {
            let label = format!("CMSF(K={k})");
            let s = run_custom(&urg, &spec, &label, |seed, urg| {
                let mut cfg = cmsf_config(urg, seed, spec.quick);
                cfg.k_clusters = k;
                let (me, se) = scale.sweep_epochs();
                cfg.master_epochs = me;
                cfg.slave_epochs = se;
                Box::new(cmsf::Cmsf::new(urg, cfg))
            });
            let s = match s {
                Ok(s) => s,
                Err(err) => {
                    print!("  K={k}: failed");
                    eprintln!("\n{label} skipped: {err}");
                    continue;
                }
            };
            print!("  K={k}: {:.3}", s.auc.mean);
            rows.push(s);
        }
        println!();
    }

    let record = ExperimentRecord {
        experiment: "fig6a".into(),
        description: "AUC vs number of latent clusters K (paper Figure 6a)".into(),
        params: format!(
            "scale={}, K sweep {:?}, seeds={:?}",
            scale.label(),
            K_SWEEP,
            spec.seeds
        ),
        rows,
    };
    write_json(&format!("{RESULTS_DIR}/fig6a.json"), &record).expect("write results/fig6a.json");
    println!("wrote {RESULTS_DIR}/fig6a.json");
}
