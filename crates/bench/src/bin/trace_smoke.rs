//! Release-mode tracing smoke (wired into `scripts/check.sh`): runs one
//! quick CMSF eval fold with `UVD_TRACE=jsonl:<tmp>` set through the real
//! environment-gated init path, then validates the emitted trace:
//!
//! 1. every line parses as JSON and matches the span/counter schema,
//! 2. every instrumented stage of the pipeline appears in the span set,
//! 3. the summed durations of the five top-level stages (URG build, master,
//!    slave, gate, evaluate) land within 10% of the measured wall time —
//!    i.e. the trace accounts for where the run actually went.
//!
//! The run executes under `par::serial_scope` so fold tasks cannot overlap
//! in time (overlapping stage spans would make the wall-time reconciliation
//! meaningless on multi-core hosts).

use std::time::Instant;
use uvd_citysim::{City, CityPreset};
use uvd_eval::{run_method, MethodKind, RunSpec};
use uvd_tensor::par;
use uvd_urg::{Urg, UrgOptions};

/// Span names every traced fold must produce.
const EXPECTED_SPANS: &[&str] = &[
    "urg.build",
    "urg.features",
    "urg.edges",
    "urg.csr",
    "cmsf.master",
    "cmsf.master.epoch",
    "cmsf.freeze",
    "cmsf.slave",
    "cmsf.slave.epoch",
    "cmsf.gate",
    "cmsf.predict",
    "eval.fit",
    "eval.predict",
    "eval.evaluate",
];

/// Counter names every traced fold must produce.
const EXPECTED_COUNTERS: &[&str] = &[
    "par.dispatch.serial",
    "tensor.plan.record_nodes",
    "tensor.replay.count",
    "gemm.pack_repack",
];

/// The five non-overlapping top-level stages reconciled against wall time.
const WALL_STAGES: &[&str] = &[
    "urg.build",
    "cmsf.master",
    "cmsf.slave",
    "cmsf.gate",
    "eval.evaluate",
];

fn main() {
    let path = std::env::temp_dir().join("uvd_trace_smoke.jsonl");
    // Set before the first instrumented call so the recorder initializes
    // through the same lazy env parse production runs use.
    std::env::set_var("UVD_TRACE", format!("jsonl:{}", path.display()));
    assert!(uvd_obs::enabled(), "UVD_TRACE=jsonl: must enable tracing");

    let city = City::from_config(CityPreset::FuzhouLike.config(), 9);
    let wall_secs = par::serial_scope(|| {
        let t0 = Instant::now();
        let urg = Urg::build(&city, UrgOptions::default());
        let spec = RunSpec {
            folds: 2,
            seeds: vec![0],
            quick: true,
            ..Default::default()
        };
        let summary = run_method(MethodKind::Cmsf, &urg, &spec).expect("clean traced run");
        assert_eq!(summary.failed, 0, "traced smoke fold must not degrade");
        assert!(summary.fit_secs > 0.0, "stage timings must be measured");
        t0.elapsed().as_secs_f64()
    });
    uvd_obs::disable(); // flush the sink so the file is complete

    let text = std::fs::read_to_string(&path).expect("trace file readable");
    let mut span_names: Vec<String> = Vec::new();
    let mut counter_names: Vec<String> = Vec::new();
    let mut stage_secs = 0.0f64;
    let mut records = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let v: serde_json::Value = serde_json::from_str(line)
            .unwrap_or_else(|e| panic!("line {} is not valid JSON: {e}", lineno + 1));
        records += 1;
        let typ = v
            .get("type")
            .and_then(|t| t.as_str())
            .unwrap_or_else(|| panic!("line {} has no string `type`", lineno + 1));
        let name = v
            .get("name")
            .and_then(|n| n.as_str())
            .unwrap_or_else(|| panic!("line {} has no string `name`", lineno + 1))
            .to_string();
        match typ {
            "span" => {
                let start = v.get("start_us").and_then(|x| x.as_f64());
                let dur = v.get("dur_us").and_then(|x| x.as_f64());
                let thread = v.get("thread").and_then(|x| x.as_f64());
                assert!(
                    start.is_some_and(|x| x >= 0.0)
                        && dur.is_some_and(|x| x >= 0.0)
                        && thread.is_some(),
                    "span record on line {} missing start_us/dur_us/thread",
                    lineno + 1
                );
                assert!(
                    matches!(v.get("fields"), Some(serde_json::Value::Object(_))),
                    "span record on line {} missing `fields` object",
                    lineno + 1
                );
                if WALL_STAGES.contains(&name.as_str()) {
                    stage_secs += dur.unwrap_or(0.0) / 1e6;
                }
                span_names.push(name);
            }
            "counter" => {
                assert!(
                    v.get("value").is_some_and(|x| x.as_f64().is_some()),
                    "counter record on line {} missing numeric `value`",
                    lineno + 1
                );
                counter_names.push(name);
            }
            other => panic!("line {} has unknown record type `{other}`", lineno + 1),
        }
    }
    assert!(records > 0, "trace file is empty");

    for want in EXPECTED_SPANS {
        assert!(
            span_names.iter().any(|n| n == want),
            "expected span `{want}` missing from trace (got: {span_names:?})"
        );
    }
    for want in EXPECTED_COUNTERS {
        assert!(
            counter_names.iter().any(|n| n == want),
            "expected counter `{want}` missing from trace (got: {counter_names:?})"
        );
    }

    let ratio = stage_secs / wall_secs;
    println!(
        "trace_smoke: {records} records, {} span names; stage sum {:.3}s / wall {:.3}s = {:.1}%",
        EXPECTED_SPANS.len(),
        stage_secs,
        wall_secs,
        ratio * 100.0
    );
    assert!(
        (0.9..=1.1).contains(&ratio),
        "top-level stage spans sum to {:.1}% of wall time (must be within 10%)",
        ratio * 100.0
    );

    let _ = std::fs::remove_file(&path);
    println!("trace_smoke: ok");
}
