//! Design-choice ablation (DESIGN.md §6): quantifies the implementation
//! decisions this reproduction makes where the paper leaves latitude —
//! hard (binarized, mean-pooled) vs. soft regions→clusters collection, the
//! AGG operator for inter-modal fusion (eq. 8), and the local/global fusion
//! (eq. 13).

use uvd_bench::{format_row, header, Scale, RESULTS_DIR};
use uvd_citysim::CityPreset;
use uvd_eval::{
    dataset_urg, factory::cmsf_config, records::write_json, run_custom, ExperimentRecord,
};
use uvd_nn::AggMode;
use uvd_urg::UrgOptions;

fn main() {
    let scale = Scale::from_args();
    let spec = scale.sweep_spec();
    let (master_epochs, slave_epochs) = scale.sweep_epochs();
    println!("Design-choice ablation ({} scale)\n", scale.label());

    type Tweak = fn(&mut cmsf::CmsfConfig);
    let variants: [(&str, Tweak); 6] = [
        ("default(hard+attn+sum)", |_| {}),
        ("soft-collection", |c| c.soft_collection = true),
        ("modal-agg=sum", |c| c.modal_agg = AggMode::Sum),
        ("modal-agg=concat", |c| c.modal_agg = AggMode::Concat),
        ("global-agg=concat", |c| c.global_agg = AggMode::Concat),
        ("global-agg=attention", |c| {
            c.global_agg = AggMode::Attention
        }),
    ];

    let mut rows = Vec::new();
    for preset in [CityPreset::FuzhouLike, CityPreset::ShenzhenLike] {
        let urg = dataset_urg(preset, UrgOptions::default());
        println!("--- {} ---", urg.name);
        println!("{}", header());
        for (label, tweak) in variants {
            let s = run_custom(&urg, &spec, label, |seed, urg| {
                let mut cfg = cmsf_config(urg, seed, spec.quick);
                cfg.master_epochs = master_epochs;
                cfg.slave_epochs = slave_epochs;
                tweak(&mut cfg);
                Box::new(cmsf::Cmsf::new(urg, cfg))
            });
            let s = match s {
                Ok(s) => s,
                Err(err) => {
                    eprintln!("{label:10} | skipped: {err}");
                    continue;
                }
            };
            println!("{}", format_row(&s));
            rows.push(s);
        }
        println!();
    }

    let record = ExperimentRecord {
        experiment: "design_ablation".into(),
        description: "Ablation of this reproduction's design choices (DESIGN.md §6)".into(),
        params: format!(
            "scale={}, folds={}, seeds={:?}",
            scale.label(),
            spec.folds,
            spec.seeds
        ),
        rows,
    };
    write_json(&format!("{RESULTS_DIR}/design_ablation.json"), &record)
        .expect("write results/design_ablation.json");
    println!("wrote {RESULTS_DIR}/design_ablation.json");
}
