//! Performance snapshot of the parallel tensor runtime.
//!
//! Times each rayon-backed kernel serially (one thread) and in parallel
//! (`UVD_THREADS` or the machine's core count, clamped to the workers the
//! host can actually run concurrently — oversubscribing a smaller host only
//! distorts the speedup columns), then writes the serial/parallel pairs and
//! speedups to `BENCH_tensor.json` at the repository root. Both the
//! requested and the effective worker counts are recorded in the snapshot.
//!
//! Dense kernels are additionally timed on the fast-math tier
//! (`UVD_FAST_MATH`, scoped here via `fastmath::with_fast_math` so the
//! snapshot is self-contained either way): the `fast` column next to each
//! deterministic serial time shows what the FMA microkernels buy on this
//! host. The snapshot header records the process's `UVD_FAST_MATH` state so
//! a committed file says which tier produced its *default* columns.
//!
//! `--threads 1,2,4` sweeps the parallel column over the listed worker
//! counts instead of the single effective count (each entry still clamps to
//! the host); the speedup column then compares against the largest count.
//!
//! After the timed sections, one *untimed* pass re-runs a short CMSF fold
//! with the `uvd_obs` recorder on and prints the per-stage span breakdown
//! and counters next to the GFLOP/s columns (tracing stays off during every
//! timed section so it cannot perturb the committed numbers).
//!
//! The committed snapshot is a reference point for regressions, not a
//! promise: speedups depend on the host's physical core count, and on a
//! single-core machine the parallel column converges to the serial one.

use cmsf::{Cmsf, CmsfConfig};
use std::sync::Arc;
use std::time::Instant;
use uvd_bench::{repo_root_path, scale_city};
use uvd_citysim::{City, CityPreset, CityStream};
use uvd_obs::alloc::CountingAlloc;
use uvd_tensor::init::{normal_matrix, seeded_rng};
use uvd_tensor::{fastmath, legacy, par, Adam, Csr, EdgeIndex, Graph};
use uvd_urg::{ShardedUrg, Urg, UrgOptions};

/// Counting allocator so the snapshot header can report the process's peak
/// heap (two relaxed atomics per alloc — noise next to the timed kernels).
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Fastest of `reps` timed runs, in milliseconds. The minimum is the
/// noise-robust estimator on shared hosts: scheduler steal time and
/// frequency dips only ever add to a sample, so the fastest run is the
/// closest observation of the code's actual cost.
fn time_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm the pool and the caches
    (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .fold(f64::INFINITY, f64::min)
}

struct Pair {
    name: &'static str,
    serial_ms: f64,
    /// Serial time on the fast-math (FMA) tier; `None` for kernels with no
    /// dense inner product to fuse (their two tiers are the same code).
    fast_serial_ms: Option<f64>,
    /// Parallel time at each swept worker count, ascending.
    sweep: Vec<(usize, f64)>,
    /// Scalar flops of one run, when the kernel has a closed-form count
    /// (reported as GFLOP/s alongside the wall time). Counts marked
    /// estimates in the constructor comments stay proportional to the true
    /// work (e.g. nnz-scaled) without modeling every transcendental.
    flops: Option<f64>,
}

fn gflops(flops: Option<f64>, ms: f64) -> Option<f64> {
    flops.map(|fl| fl / (ms.max(1e-9) * 1e6))
}

fn pair(
    name: &'static str,
    sweep_threads: &[usize],
    reps: usize,
    flops: Option<f64>,
    fast_tier: bool,
    mut f: impl FnMut(),
) -> Pair {
    let serial_ms = time_ms(reps, || par::serial_scope(&mut f));
    // The fast-math override is installed on this (calling) thread; every
    // tier-dispatching kernel resolves it before handing work to the pool,
    // so scoping the timing closure is enough even for the parallel path.
    let fast_serial_ms = fast_tier
        .then(|| fastmath::with_fast_math(true, || time_ms(reps, || par::serial_scope(&mut f))));
    let sweep: Vec<(usize, f64)> = sweep_threads
        .iter()
        .map(|&t| (t, time_ms(reps, || par::with_threads(t, &mut f))))
        .collect();
    let parallel_ms = sweep.last().expect("non-empty sweep").1;
    let speedup = serial_ms / parallel_ms.max(1e-9);
    let fast_col = match fast_serial_ms {
        Some(ms) => format!("   fast {ms:8.3} ms"),
        None => format!("   {:16}", ""),
    };
    let rate = match (
        gflops(flops, serial_ms),
        fast_serial_ms.and_then(|ms| gflops(flops, ms)),
    ) {
        (Some(det), Some(fast)) => format!("   {det:6.1} GF/s det / {fast:.1} fast"),
        (Some(det), None) => format!("   {det:6.1} GF/s"),
        _ => String::new(),
    };
    println!(
        "{name:32} serial {serial_ms:8.3} ms{fast_col}   par {parallel_ms:8.3} ms   x{speedup:.2}{rate}"
    );
    if sweep.len() > 1 {
        let cols: Vec<String> = sweep
            .iter()
            .map(|(t, ms)| format!("{t}T {ms:.3} ms"))
            .collect();
        println!("{:32}   sweep: {}", "", cols.join("   "));
    }
    Pair {
        name,
        serial_ms,
        fast_serial_ms,
        sweep,
        flops,
    }
}

/// End-to-end CMSF fold: a full master + slave stage, trained once with the
/// replayed-plan path (`train_master` / `train_slave` record once, then
/// replay) and once per epoch through `uvd_tensor::legacy` — the engine
/// exactly as it stood before the Plan/Workspace split, which re-records the
/// whole tape (fresh value buffers per op, clone-heavy backward) every epoch.
/// `legacy::rebuild` replays the recorded plan op-for-op through that old
/// engine, so both paths run the identical computation on identical epoch
/// schedules. Reports epochs/sec for both and the peak workspace footprint
/// of the replayed path.
fn e2e_cmsf(threads: usize, smoke: bool) -> serde_json::Value {
    let city = City::from_config(CityPreset::FuzhouLike.config(), 5);
    let urg = Urg::build(&city, UrgOptions::default());
    let train: Vec<usize> = (0..urg.labeled.len()).collect();
    let mut cfg = CmsfConfig::fast_test();
    cfg.master_epochs = if smoke { 6 } else { 30 };
    cfg.slave_epochs = if smoke { 3 } else { 15 };
    let epochs = (cfg.master_epochs + cfg.slave_epochs) as f64;

    let mut model = Cmsf::new(&urg, cfg);

    let e2e_reps = if smoke { 1 } else { 5 };

    // Replayed-plan path (also freezes the assignment for the slave stage;
    // the extra freeze forward is charged against replay, not rebuild).
    let replay_ms = time_ms(e2e_reps, || {
        par::with_threads(threads, || {
            model.train_master(&urg, &train).expect("master trains");
            model.train_slave(&urg, &train).expect("slave trains");
        })
    });
    let peak_ws = model.peak_workspace_bytes();

    // Per-epoch rebuild baseline: record the master and slave plans once
    // (untimed — the pre-refactor code had no separate record step), then
    // rebuild the full tape through the legacy engine every epoch. Parameter
    // leaves re-read live values, so each rebuild is a faithful re-record of
    // the epoch exactly as the old define-by-run tape performed it.
    let (rows, targets, weights) = model.bce_vectors(&urg, &train);
    let fixed = model.fixed_assignment().expect("after master").clone();
    let (c1, c0) = fixed.partition();
    let mut gm = Graph::new();
    let master_loss = model.record_master_tape(&mut gm, &urg, &rows, &targets, &weights);
    let mut gs = Graph::new();
    let slave_loss = model
        .record_slave_tape(&mut gs, &urg, &fixed, &c1, &c0, &rows, &targets, &weights)
        .expect("slave tape records");
    let rebuild_ms = time_ms(e2e_reps, || {
        par::with_threads(threads, || {
            let legacy_epoch = |g: &Graph, loss: uvd_tensor::NodeId, opt: &mut Adam| {
                let mut lg = legacy::rebuild(g.plan(), g.workspace());
                lg.backward(lg.node(loss.index()));
                lg.write_grads();
                if model.cfg.grad_clip > 0.0 {
                    model.param_set().clip_grad_norm(model.cfg.grad_clip);
                }
                opt.step(model.param_set());
                opt.decay(model.cfg.lr_decay);
            };
            let mut opt = Adam::new(model.cfg.lr);
            for _ in 0..model.cfg.master_epochs {
                legacy_epoch(&gm, master_loss, &mut opt);
            }
            let mut opt = Adam::new(model.cfg.lr * 0.3);
            for _ in 0..model.cfg.slave_epochs {
                legacy_epoch(&gs, slave_loss, &mut opt);
            }
        })
    });

    let replay_eps = epochs / (replay_ms / 1e3);
    let rebuild_eps = epochs / (rebuild_ms / 1e3);
    println!(
        "\ncmsf_fold_e2e ({epochs:.0} epochs)     rebuild {rebuild_eps:8.1} ep/s   replay {replay_eps:8.1} ep/s   x{:.2}   peak workspace {:.1} KiB",
        replay_eps / rebuild_eps,
        peak_ws as f64 / 1024.0
    );
    serde_json::json!({
        "name": "cmsf_fold_e2e",
        "epochs": epochs,
        "rebuild_epochs_per_sec": rebuild_eps,
        "replay_epochs_per_sec": replay_eps,
        "replay_speedup": replay_eps / rebuild_eps,
        "peak_workspace_bytes": peak_ws,
    })
}

/// Untimed traced pass: re-run a short CMSF fold with the in-memory recorder
/// on and report where the wall time went, stage by stage. Runs strictly
/// after every timed section, so tracing cannot perturb the committed
/// numbers; the recorder is switched back off before returning.
fn span_breakdown() -> serde_json::Value {
    uvd_obs::set_memory();
    let city = City::from_config(CityPreset::FuzhouLike.config(), 5);
    let urg = Urg::build(&city, UrgOptions::default());
    let train: Vec<usize> = (0..urg.labeled.len()).collect();
    let mut cfg = CmsfConfig::fast_test();
    cfg.master_epochs = 6;
    cfg.slave_epochs = 3;
    let mut model = Cmsf::new(&urg, cfg);
    model.train_master(&urg, &train).expect("master trains");
    model.train_slave(&urg, &train).expect("slave trains");
    std::hint::black_box(model.predict_proba(&urg));

    let spans = uvd_obs::span_summary();
    let counters = uvd_obs::counter_summary();
    println!("\nspan breakdown (untimed traced fold):");
    for s in &spans {
        println!(
            "{:32} x{:<5}  {:9.3} ms",
            s.name,
            s.count,
            s.total_ns as f64 / 1e6
        );
    }
    println!("counters:");
    for c in &counters {
        println!("{:32} {}", c.name, c.value);
    }
    uvd_obs::disable();

    let span_rows: Vec<serde_json::Value> = spans
        .iter()
        .map(|s| {
            serde_json::json!({
                "name": s.name,
                "count": s.count,
                "total_ms": s.total_ns as f64 / 1e6,
            })
        })
        .collect();
    let counter_rows: Vec<serde_json::Value> = counters
        .iter()
        .map(|c| serde_json::json!({ "name": c.name, "value": c.value }))
        .collect();
    serde_json::json!({ "spans": span_rows, "counters": counter_rows })
}

/// Build-path section: time the streamed URG build (`CityStream` →
/// `ShardedUrg` → `into_urg`) at each worker count of `sweep`, then re-run
/// it once with the in-memory recorder on for the `urg.features` /
/// `urg.edges` / `urg.csr` sub-span breakdown. One timed run per count —
/// the full-size build runs for seconds, so single-shot noise is small
/// against the serial/parallel gap being recorded. The committed numbers
/// stream the 50k-region scaling city (224×224, the same city the
/// `scaling` harness measures); smoke shrinks it to 64×64 so the check.sh
/// gate stays fast. The result is bitwise-identical at every count
/// (DESIGN.md §13), so only the wall time varies across the sweep.
fn build_path(sweep: &[usize], smoke: bool) -> serde_json::Value {
    const TILE_ROWS: usize = 16;
    let cfg = scale_city(if smoke { 64 } else { 224 });
    let build = || {
        ShardedUrg::from_stream(
            CityStream::new(cfg.clone(), 11, TILE_ROWS),
            UrgOptions::default(),
        )
    };

    println!("\nstreamed build ({}):", cfg.name);
    let mut rows = Vec::new();
    let mut n_regions = 0usize;
    let mut n_edges = 0usize;
    for &t in sweep {
        let t0 = Instant::now();
        let urg = par::with_threads(t, || build().into_urg());
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        n_regions = urg.n;
        n_edges = urg.edges.n_edges();
        println!("  {t}T {ms:10.3} ms");
        rows.push(serde_json::json!({ "threads": t, "build_ms": ms }));
    }
    println!("  ({n_regions} regions, {n_edges} edges, {TILE_ROWS} rows/tile)");

    // Untimed traced pass at the largest count: where inside the build the
    // time goes (feature extraction vs. edge generation vs. CSR assembly).
    uvd_obs::set_memory();
    let top = *sweep.last().expect("non-empty sweep");
    par::with_threads(top, || std::hint::black_box(build()));
    let spans: Vec<serde_json::Value> = uvd_obs::span_summary()
        .iter()
        .filter(|s| s.name.starts_with("urg."))
        .map(|s| {
            let total_ms = s.total_ns as f64 / 1e6;
            println!("  {:24} x{:<4} {total_ms:10.3} ms", s.name, s.count);
            serde_json::json!({ "name": s.name, "count": s.count, "total_ms": total_ms })
        })
        .collect();
    uvd_obs::disable();

    serde_json::json!({
        "name": cfg.name,
        "tile_rows": TILE_ROWS,
        "n_regions": n_regions,
        "n_edges": n_edges,
        "thread_sweep": rows,
        "spans": spans,
    })
}

fn main() {
    // `--smoke`: a fast sanity pass for CI — few reps, short e2e schedule,
    // and no snapshot rewrite (the committed numbers stay authoritative).
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|arg| arg == "--smoke");
    // Time with the *effective* worker count: a request above the host's
    // available parallelism (e.g. the old floor of 4) only oversubscribes
    // the pool, and the snapshot should report the workers that actually
    // ran, not the ones requested.
    let requested = par::effective_threads();
    let threads = par::effective_workers(requested);
    if threads != requested {
        println!("perfsnap: requested {requested} threads, host supports {threads}");
    }
    // `--threads 1,2,4`: sweep the parallel column over these worker counts
    // (each clamped to the host) instead of the single effective count.
    let sweep: Vec<usize> = match args.iter().position(|a| a == "--threads") {
        Some(i) => {
            let list = args
                .get(i + 1)
                .expect("--threads takes a comma-separated list, e.g. --threads 1,2,4");
            let mut counts: Vec<usize> = list
                .split(',')
                .map(|s| {
                    let t: usize = s
                        .trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("bad --threads entry {s:?}"));
                    par::effective_workers(t.max(1))
                })
                .collect();
            counts.sort_unstable();
            counts.dedup();
            counts
        }
        None => vec![threads],
    };
    let reps = if smoke { 2 } else { 9 };
    println!(
        "perfsnap: timing kernels with {threads} parallel threads{}{}\n",
        if sweep.len() > 1 {
            format!(" (sweep: {sweep:?})")
        } else {
            String::new()
        },
        if smoke { " (smoke run)" } else { "" }
    );
    let mut rng = seeded_rng(42);
    let mut pairs = Vec::new();

    let a = normal_matrix(256, 256, 0.0, 1.0, &mut rng);
    let b = normal_matrix(256, 256, 0.0, 1.0, &mut rng);
    let mm_flops = Some(2.0 * 256.0 * 256.0 * 256.0);
    pairs.push(pair("matmul_256", &sweep, reps, mm_flops, true, || {
        std::hint::black_box(a.matmul(&b));
    }));
    pairs.push(pair("matmul_tn_256", &sweep, reps, mm_flops, true, || {
        std::hint::black_box(a.matmul_tn(&b));
    }));

    let mut coo = Vec::new();
    for r in 0..2000u32 {
        for j in 0..8u32 {
            coo.push((
                r,
                (r.wrapping_mul(2654435761).wrapping_add(j * 40503)) % 2000,
                0.5f32,
            ));
        }
    }
    let sp = Csr::from_coo(2000, 2000, coo);
    let xd = normal_matrix(2000, 64, 0.0, 1.0, &mut rng);
    let spmm_flops = Some(2.0 * sp.nnz() as f64 * 64.0);
    // Overwrite into a reused buffer — the replay-path shape of the kernel;
    // timing `spmm()` would charge a 500 KiB allocation per rep to it.
    let mut spmm_out = vec![0.0f32; 2000 * 64];
    pairs.push(pair("spmm_16k_nnz", &sweep, reps, spmm_flops, true, || {
        sp.spmm_to(&xd, &mut spmm_out);
        std::hint::black_box(&spmm_out);
    }));

    let n = 2000usize;
    let mut ep = Vec::new();
    for i in 0..n as u32 {
        for j in 0..12u32 {
            ep.push((
                (i.wrapping_mul(48271).wrapping_add(j * 16807)) % n as u32,
                i,
            ));
        }
    }
    let edges = Arc::new(EdgeIndex::from_pairs(n, ep));
    let scores = normal_matrix(edges.n_edges(), 1, 0.0, 1.0, &mut rng);
    let h = normal_matrix(n, 32, 0.0, 1.0, &mut rng);
    // nnz-proportional estimate: the softmax touches every edge a handful of
    // times (max-subtract, exp, sum, divide ≈ 4 ops/edge, counting exp as
    // one) and the aggregate does a multiply-add per edge per feature
    // (2·d ops/edge). Proportional to edge count, so a denser graph moves
    // the GF/s denominator with the work; no attempt to cost exp precisely.
    let agg_d = 32usize;
    let edge_flops = Some(edges.n_edges() as f64 * (4.0 + 2.0 * agg_d as f64));
    pairs.push(pair(
        "edge_softmax_aggregate",
        &sweep,
        reps,
        edge_flops,
        false,
        || {
            let mut g = Graph::new();
            let s = g.constant(scores.clone());
            let hn = g.constant(h.clone());
            let alpha = g.edge_softmax(s, edges.clone());
            let out = g.edge_aggregate(alpha, hn, edges.clone());
            std::hint::black_box(g.value(out).sum());
        },
    ));

    let meta = uvd_tensor::ConvMeta {
        c_in: 2,
        h_in: 32,
        w_in: 32,
        c_out: 8,
        k: 3,
        stride: 1,
        pad: 1,
    };
    let xc = normal_matrix(16, meta.in_len(), 0.0, 1.0, &mut rng);
    let (co, klen) = meta.kernel_shape();
    let kern = normal_matrix(co, klen, 0.0, 0.3, &mut rng);
    let hw = (meta.h_out() * meta.w_out()) as f64;
    let conv_flops = Some(16.0 * 2.0 * co as f64 * klen as f64 * hw);
    pairs.push(pair(
        "conv2d_batch16_2x32x32",
        &sweep,
        reps,
        conv_flops,
        true,
        || {
            std::hint::black_box(uvd_tensor::conv::conv2d_batch(&xc, &kern, &meta));
        },
    ));

    let xg = normal_matrix(1000, 64, 0.0, 1.0, &mut rng);
    let wg = normal_matrix(64, 16, 0.0, 1.0, &mut rng);
    let fg = normal_matrix(1000, 64 * 16, 0.5, 0.1, &mut rng);
    // Three scalar ops per (i, k, j) lane: x*w, (x*w)*f, and the add. Timed
    // through the standalone kernel entry like the other kernel rows — the
    // graph-recording path would charge ~4 MiB of constant clones per rep
    // to the kernel.
    let gated_flops = Some(3.0 * 1000.0 * 64.0 * 16.0);
    let mut gated_out = vec![0.0f32; 1000 * 16];
    pairs.push(pair(
        "gated_matmul_1000x64x16",
        &sweep,
        reps,
        gated_flops,
        true,
        || {
            uvd_tensor::plan::gated_matmul_into(&xg, &wg, &fg, &mut gated_out);
            std::hint::black_box(&gated_out);
        },
    ));

    let kernels: Vec<serde_json::Value> = pairs
        .iter()
        .map(|p| {
            let parallel_ms = p.sweep.last().expect("non-empty sweep").1;
            let mut k = serde_json::json!({
                "name": p.name,
                "serial_ms": p.serial_ms,
                "parallel_ms": parallel_ms,
                "speedup": p.serial_ms / parallel_ms.max(1e-9),
                "thread_sweep": p.sweep.iter().map(|&(t, ms)| {
                    serde_json::json!({ "threads": t, "parallel_ms": ms })
                }).collect::<Vec<_>>(),
            });
            if let serde_json::Value::Object(fields) = &mut k {
                if let Some(fast_ms) = p.fast_serial_ms {
                    fields.push(("fast_math_serial_ms".into(), serde::to_value(&fast_ms)));
                    if let Some(g) = gflops(p.flops, fast_ms) {
                        fields.push(("fast_math_serial_gflops".into(), serde::to_value(&g)));
                    }
                }
                if let (Some(gs), Some(gp)) =
                    (gflops(p.flops, p.serial_ms), gflops(p.flops, parallel_ms))
                {
                    fields.push(("serial_gflops".into(), serde::to_value(&gs)));
                    fields.push(("parallel_gflops".into(), serde::to_value(&gp)));
                }
            }
            k
        })
        .collect();
    let e2e = e2e_cmsf(threads, smoke);
    let trace = span_breakdown();
    // Build-path sweep: honor an explicit `--threads` list; the default
    // single-count run still sweeps {1, 2, max} so the committed snapshot
    // always carries a real serial/parallel build curve.
    let build_sweep: Vec<usize> = if sweep.len() > 1 {
        sweep.clone()
    } else {
        let mut counts: Vec<usize> = [1, 2, threads]
            .into_iter()
            .map(par::effective_workers)
            .collect();
        counts.sort_unstable();
        counts.dedup();
        counts
    };
    let build = build_path(&build_sweep, smoke);
    if smoke {
        println!("\nsmoke run: leaving BENCH_tensor.json untouched");
        return;
    }
    let mut doc = serde_json::json!({
        "requested_threads": requested,
        "threads": threads,
        "thread_sweep": sweep,
        "host_cores": std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1),
        // Tier of the *default* columns: false means serial/parallel numbers
        // are the deterministic (bitwise) tier and only the fast_math_*
        // fields used the FMA microkernels, via a scoped override.
        "fast_math": fastmath::enabled(),
        "fast_math_env": std::env::var("UVD_FAST_MATH").ok(),
        // Process-wide peak heap over everything this snapshot ran (city
        // build, kernel reps, both e2e folds), from the counting allocator.
        "peak_bytes": uvd_obs::alloc::peak_bytes(),
        "kernels": kernels,
        "e2e": e2e,
        "trace": trace,
        "build": build,
    });
    let path = repo_root_path("BENCH_tensor.json");
    // Keys owned by other tools (`scaling`'s curve, `serve_bench`'s latency
    // row, anything future) ride along across rewrites so each tool can
    // update the snapshot independently. The old carry copied `scaling`
    // alone, silently dropping `serve` on every perfsnap rewrite.
    if let Some(serde_json::Value::Object(prev)) = std::fs::read_to_string(&path)
        .ok()
        .and_then(|t| serde_json::from_str_value(&t).ok())
    {
        for (key, value) in prev {
            if doc.get(&key).is_none() {
                doc.set(&key, value);
            }
        }
    }
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&doc).expect("serialize snapshot") + "\n",
    )
    .expect("write BENCH_tensor.json");
    println!("\nwrote {}", path.display());
}
