//! Performance snapshot of the parallel tensor runtime.
//!
//! Times each rayon-backed kernel serially (one thread) and in parallel
//! (`UVD_THREADS` or the machine's core count, clamped to the workers the
//! host can actually run concurrently — oversubscribing a smaller host only
//! distorts the speedup columns), then writes the serial/parallel pairs and
//! speedups to `BENCH_tensor.json` at the repository root. Both the
//! requested and the effective worker counts are recorded in the snapshot.
//!
//! After the timed sections, one *untimed* pass re-runs a short CMSF fold
//! with the `uvd_obs` recorder on and prints the per-stage span breakdown
//! and counters next to the GFLOP/s columns (tracing stays off during every
//! timed section so it cannot perturb the committed numbers).
//!
//! The committed snapshot is a reference point for regressions, not a
//! promise: speedups depend on the host's physical core count, and on a
//! single-core machine the parallel column converges to the serial one.

use cmsf::{Cmsf, CmsfConfig};
use std::sync::Arc;
use std::time::Instant;
use uvd_bench::repo_root_path;
use uvd_citysim::{City, CityPreset};
use uvd_tensor::init::{normal_matrix, seeded_rng};
use uvd_tensor::{legacy, par, Adam, Csr, EdgeIndex, Graph};
use uvd_urg::{Urg, UrgOptions};

/// Fastest of `reps` timed runs, in milliseconds. The minimum is the
/// noise-robust estimator on shared hosts: scheduler steal time and
/// frequency dips only ever add to a sample, so the fastest run is the
/// closest observation of the code's actual cost.
fn time_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm the pool and the caches
    (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .fold(f64::INFINITY, f64::min)
}

struct Pair {
    name: &'static str,
    serial_ms: f64,
    parallel_ms: f64,
    /// Scalar flops of one run, when the kernel has a closed-form count
    /// (reported as GFLOP/s alongside the wall time).
    flops: Option<f64>,
}

fn gflops(flops: Option<f64>, ms: f64) -> Option<f64> {
    flops.map(|fl| fl / (ms.max(1e-9) * 1e6))
}

fn pair(
    name: &'static str,
    threads: usize,
    reps: usize,
    flops: Option<f64>,
    mut f: impl FnMut(),
) -> Pair {
    let serial_ms = time_ms(reps, || par::serial_scope(&mut f));
    let parallel_ms = time_ms(reps, || par::with_threads(threads, &mut f));
    let speedup = serial_ms / parallel_ms.max(1e-9);
    let rate = match gflops(flops, serial_ms) {
        Some(g) => format!("   {g:6.1} GF/s"),
        None => String::new(),
    };
    println!(
        "{name:32} serial {serial_ms:8.3} ms   par {parallel_ms:8.3} ms   x{speedup:.2}{rate}"
    );
    Pair {
        name,
        serial_ms,
        parallel_ms,
        flops,
    }
}

/// End-to-end CMSF fold: a full master + slave stage, trained once with the
/// replayed-plan path (`train_master` / `train_slave` record once, then
/// replay) and once per epoch through `uvd_tensor::legacy` — the engine
/// exactly as it stood before the Plan/Workspace split, which re-records the
/// whole tape (fresh value buffers per op, clone-heavy backward) every epoch.
/// `legacy::rebuild` replays the recorded plan op-for-op through that old
/// engine, so both paths run the identical computation on identical epoch
/// schedules. Reports epochs/sec for both and the peak workspace footprint
/// of the replayed path.
fn e2e_cmsf(threads: usize, smoke: bool) -> serde_json::Value {
    let city = City::from_config(CityPreset::FuzhouLike.config(), 5);
    let urg = Urg::build(&city, UrgOptions::default());
    let train: Vec<usize> = (0..urg.labeled.len()).collect();
    let mut cfg = CmsfConfig::fast_test();
    cfg.master_epochs = if smoke { 6 } else { 30 };
    cfg.slave_epochs = if smoke { 3 } else { 15 };
    let epochs = (cfg.master_epochs + cfg.slave_epochs) as f64;

    let mut model = Cmsf::new(&urg, cfg);

    let e2e_reps = if smoke { 1 } else { 5 };

    // Replayed-plan path (also freezes the assignment for the slave stage;
    // the extra freeze forward is charged against replay, not rebuild).
    let replay_ms = time_ms(e2e_reps, || {
        par::with_threads(threads, || {
            model.train_master(&urg, &train).expect("master trains");
            model.train_slave(&urg, &train).expect("slave trains");
        })
    });
    let peak_ws = model.peak_workspace_bytes();

    // Per-epoch rebuild baseline: record the master and slave plans once
    // (untimed — the pre-refactor code had no separate record step), then
    // rebuild the full tape through the legacy engine every epoch. Parameter
    // leaves re-read live values, so each rebuild is a faithful re-record of
    // the epoch exactly as the old define-by-run tape performed it.
    let (rows, targets, weights) = model.bce_vectors(&urg, &train);
    let fixed = model.fixed_assignment().expect("after master").clone();
    let (c1, c0) = fixed.partition();
    let mut gm = Graph::new();
    let master_loss = model.record_master_tape(&mut gm, &urg, &rows, &targets, &weights);
    let mut gs = Graph::new();
    let slave_loss = model
        .record_slave_tape(&mut gs, &urg, &fixed, &c1, &c0, &rows, &targets, &weights)
        .expect("slave tape records");
    let rebuild_ms = time_ms(e2e_reps, || {
        par::with_threads(threads, || {
            let legacy_epoch = |g: &Graph, loss: uvd_tensor::NodeId, opt: &mut Adam| {
                let mut lg = legacy::rebuild(g.plan(), g.workspace());
                lg.backward(lg.node(loss.index()));
                lg.write_grads();
                if model.cfg.grad_clip > 0.0 {
                    model.param_set().clip_grad_norm(model.cfg.grad_clip);
                }
                opt.step(model.param_set());
                opt.decay(model.cfg.lr_decay);
            };
            let mut opt = Adam::new(model.cfg.lr);
            for _ in 0..model.cfg.master_epochs {
                legacy_epoch(&gm, master_loss, &mut opt);
            }
            let mut opt = Adam::new(model.cfg.lr * 0.3);
            for _ in 0..model.cfg.slave_epochs {
                legacy_epoch(&gs, slave_loss, &mut opt);
            }
        })
    });

    let replay_eps = epochs / (replay_ms / 1e3);
    let rebuild_eps = epochs / (rebuild_ms / 1e3);
    println!(
        "\ncmsf_fold_e2e ({epochs:.0} epochs)     rebuild {rebuild_eps:8.1} ep/s   replay {replay_eps:8.1} ep/s   x{:.2}   peak workspace {:.1} KiB",
        replay_eps / rebuild_eps,
        peak_ws as f64 / 1024.0
    );
    serde_json::json!({
        "name": "cmsf_fold_e2e",
        "epochs": epochs,
        "rebuild_epochs_per_sec": rebuild_eps,
        "replay_epochs_per_sec": replay_eps,
        "replay_speedup": replay_eps / rebuild_eps,
        "peak_workspace_bytes": peak_ws,
    })
}

/// Untimed traced pass: re-run a short CMSF fold with the in-memory recorder
/// on and report where the wall time went, stage by stage. Runs strictly
/// after every timed section, so tracing cannot perturb the committed
/// numbers; the recorder is switched back off before returning.
fn span_breakdown() -> serde_json::Value {
    uvd_obs::set_memory();
    let city = City::from_config(CityPreset::FuzhouLike.config(), 5);
    let urg = Urg::build(&city, UrgOptions::default());
    let train: Vec<usize> = (0..urg.labeled.len()).collect();
    let mut cfg = CmsfConfig::fast_test();
    cfg.master_epochs = 6;
    cfg.slave_epochs = 3;
    let mut model = Cmsf::new(&urg, cfg);
    model.train_master(&urg, &train).expect("master trains");
    model.train_slave(&urg, &train).expect("slave trains");
    std::hint::black_box(model.predict_proba(&urg));

    let spans = uvd_obs::span_summary();
    let counters = uvd_obs::counter_summary();
    println!("\nspan breakdown (untimed traced fold):");
    for s in &spans {
        println!(
            "{:32} x{:<5}  {:9.3} ms",
            s.name,
            s.count,
            s.total_ns as f64 / 1e6
        );
    }
    println!("counters:");
    for c in &counters {
        println!("{:32} {}", c.name, c.value);
    }
    uvd_obs::disable();

    let span_rows: Vec<serde_json::Value> = spans
        .iter()
        .map(|s| {
            serde_json::json!({
                "name": s.name,
                "count": s.count,
                "total_ms": s.total_ns as f64 / 1e6,
            })
        })
        .collect();
    let counter_rows: Vec<serde_json::Value> = counters
        .iter()
        .map(|c| serde_json::json!({ "name": c.name, "value": c.value }))
        .collect();
    serde_json::json!({ "spans": span_rows, "counters": counter_rows })
}

fn main() {
    // `--smoke`: a fast sanity pass for CI — few reps, short e2e schedule,
    // and no snapshot rewrite (the committed numbers stay authoritative).
    let smoke = std::env::args().any(|arg| arg == "--smoke");
    // Time with the *effective* worker count: a request above the host's
    // available parallelism (e.g. the old floor of 4) only oversubscribes
    // the pool, and the snapshot should report the workers that actually
    // ran, not the ones requested.
    let requested = par::effective_threads();
    let threads = par::effective_workers(requested);
    if threads != requested {
        println!("perfsnap: requested {requested} threads, host supports {threads}");
    }
    let reps = if smoke { 2 } else { 9 };
    println!(
        "perfsnap: timing kernels with {threads} parallel threads{}\n",
        if smoke { " (smoke run)" } else { "" }
    );
    let mut rng = seeded_rng(42);
    let mut pairs = Vec::new();

    let a = normal_matrix(256, 256, 0.0, 1.0, &mut rng);
    let b = normal_matrix(256, 256, 0.0, 1.0, &mut rng);
    let mm_flops = Some(2.0 * 256.0 * 256.0 * 256.0);
    pairs.push(pair("matmul_256", threads, reps, mm_flops, || {
        std::hint::black_box(a.matmul(&b));
    }));
    pairs.push(pair("matmul_tn_256", threads, reps, mm_flops, || {
        std::hint::black_box(a.matmul_tn(&b));
    }));

    let mut coo = Vec::new();
    for r in 0..2000u32 {
        for j in 0..8u32 {
            coo.push((
                r,
                (r.wrapping_mul(2654435761).wrapping_add(j * 40503)) % 2000,
                0.5f32,
            ));
        }
    }
    let sp = Csr::from_coo(2000, 2000, coo);
    let xd = normal_matrix(2000, 64, 0.0, 1.0, &mut rng);
    let spmm_flops = Some(2.0 * sp.nnz() as f64 * 64.0);
    pairs.push(pair("spmm_16k_nnz", threads, reps, spmm_flops, || {
        std::hint::black_box(sp.spmm(&xd));
    }));

    let n = 2000usize;
    let mut ep = Vec::new();
    for i in 0..n as u32 {
        for j in 0..12u32 {
            ep.push((
                (i.wrapping_mul(48271).wrapping_add(j * 16807)) % n as u32,
                i,
            ));
        }
    }
    let edges = Arc::new(EdgeIndex::from_pairs(n, ep));
    let scores = normal_matrix(edges.n_edges(), 1, 0.0, 1.0, &mut rng);
    let h = normal_matrix(n, 32, 0.0, 1.0, &mut rng);
    pairs.push(pair("edge_softmax_aggregate", threads, reps, None, || {
        let mut g = Graph::new();
        let s = g.constant(scores.clone());
        let hn = g.constant(h.clone());
        let alpha = g.edge_softmax(s, edges.clone());
        let out = g.edge_aggregate(alpha, hn, edges.clone());
        std::hint::black_box(g.value(out).sum());
    }));

    let meta = uvd_tensor::ConvMeta {
        c_in: 2,
        h_in: 32,
        w_in: 32,
        c_out: 8,
        k: 3,
        stride: 1,
        pad: 1,
    };
    let xc = normal_matrix(16, meta.in_len(), 0.0, 1.0, &mut rng);
    let (co, klen) = meta.kernel_shape();
    let kern = normal_matrix(co, klen, 0.0, 0.3, &mut rng);
    let hw = (meta.h_out() * meta.w_out()) as f64;
    let conv_flops = Some(16.0 * 2.0 * co as f64 * klen as f64 * hw);
    pairs.push(pair(
        "conv2d_batch16_2x32x32",
        threads,
        reps,
        conv_flops,
        || {
            std::hint::black_box(uvd_tensor::conv::conv2d_batch(&xc, &kern, &meta));
        },
    ));

    let xg = normal_matrix(1000, 64, 0.0, 1.0, &mut rng);
    let wg = normal_matrix(64, 16, 0.0, 1.0, &mut rng);
    let fg = normal_matrix(1000, 64 * 16, 0.5, 0.1, &mut rng);
    // Three scalar ops per (i, k, j) lane: x*w, (x*w)*f, and the add.
    let gated_flops = Some(3.0 * 1000.0 * 64.0 * 16.0);
    pairs.push(pair(
        "gated_matmul_1000x64x16",
        threads,
        reps,
        gated_flops,
        || {
            let mut g = Graph::new();
            let xn = g.constant(xg.clone());
            let wn = g.constant(wg.clone());
            let fn_ = g.constant(fg.clone());
            let z = g.gated_matmul(xn, wn, fn_);
            std::hint::black_box(g.value(z).sum());
        },
    ));

    let kernels: Vec<serde_json::Value> = pairs
        .iter()
        .map(|p| {
            let mut k = serde_json::json!({
                "name": p.name,
                "serial_ms": p.serial_ms,
                "parallel_ms": p.parallel_ms,
                "speedup": p.serial_ms / p.parallel_ms.max(1e-9),
            });
            if let (Some(gs), Some(gp), serde_json::Value::Object(fields)) = (
                gflops(p.flops, p.serial_ms),
                gflops(p.flops, p.parallel_ms),
                &mut k,
            ) {
                fields.push(("serial_gflops".into(), serde::to_value(&gs)));
                fields.push(("parallel_gflops".into(), serde::to_value(&gp)));
            }
            k
        })
        .collect();
    let e2e = e2e_cmsf(threads, smoke);
    let trace = span_breakdown();
    if smoke {
        println!("\nsmoke run: leaving BENCH_tensor.json untouched");
        return;
    }
    let doc = serde_json::json!({
        "requested_threads": requested,
        "threads": threads,
        "host_cores": std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1),
        "kernels": kernels,
        "e2e": e2e,
        "trace": trace,
    });
    let path = repo_root_path("BENCH_tensor.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&doc).expect("serialize snapshot") + "\n",
    )
    .expect("write BENCH_tensor.json");
    println!("\nwrote {}", path.display());
}
