//! Figure 7 — case study: maps of the top-3% regions detected by CMSF vs
//! UVLens against the ground truth, plus a spatial-coherence statistic
//! quantifying the paper's qualitative claim that CMSF detects correlated
//! UV regions together.

use uvd_bench::{Scale, RESULTS_DIR};
use uvd_citysim::CityPreset;
use uvd_eval::{
    block_folds, dataset_urg, factory::build_detector, prf_at_top_percent, train_test_pairs,
    MethodKind,
};
use uvd_urg::{Urg, UrgOptions};

/// Render the labeled test regions of a city as an ASCII map.
/// `#` ground-truth UV, `o` detected, `@` detected true UV (hit),
/// `.` labeled non-UV, ` ` unlabeled.
fn render_map(urg: &Urg, test_idx: &[usize], detected: &[u32]) -> String {
    let det: std::collections::HashSet<u32> = detected.iter().copied().collect();
    let mut grid = vec![b' '; urg.n];
    for &i in test_idx {
        let r = urg.labeled[i];
        let is_uv = urg.y[i] > 0.5;
        let is_det = det.contains(&r);
        grid[r as usize] = match (is_uv, is_det) {
            (true, true) => b'@',
            (true, false) => b'#',
            (false, true) => b'o',
            (false, false) => b'.',
        };
    }
    let mut out = String::new();
    for y in 0..urg.height {
        let row = &grid[y * urg.width..(y + 1) * urg.width];
        out.push_str(std::str::from_utf8(row).expect("ascii"));
        out.push('\n');
    }
    out
}

/// Fraction of detected regions that are 8-adjacent to another detected
/// region — the "detects correlated UVs together" statistic.
fn spatial_coherence(urg: &Urg, detected: &[u32]) -> f64 {
    if detected.is_empty() {
        return 0.0;
    }
    let det: std::collections::HashSet<u32> = detected.iter().copied().collect();
    let mut adjacent = 0usize;
    for &r in detected {
        let (x, y) = (
            (r as usize % urg.width) as i64,
            (r as usize / urg.width) as i64,
        );
        let mut any = false;
        for dy in -1..=1i64 {
            for dx in -1..=1i64 {
                if dx == 0 && dy == 0 {
                    continue;
                }
                let (nx, ny) = (x + dx, y + dy);
                if nx < 0 || ny < 0 || nx >= urg.width as i64 || ny >= urg.height as i64 {
                    continue;
                }
                if det.contains(&((ny as usize * urg.width + nx as usize) as u32)) {
                    any = true;
                }
            }
        }
        if any {
            adjacent += 1;
        }
    }
    adjacent as f64 / detected.len() as f64
}

fn main() {
    let scale = Scale::from_args();
    println!(
        "Figure 7: case study, top-3%% detections vs ground truth ({} scale)\n",
        scale.label()
    );
    let mut summary = Vec::new();

    for preset in [CityPreset::FuzhouLike, CityPreset::ShenzhenLike] {
        let urg = dataset_urg(preset, UrgOptions::default());
        let folds = block_folds(&urg, 3, 8, 7);
        let (train, test) = train_test_pairs(&folds)
            .into_iter()
            .next()
            .expect("3 folds");
        println!(
            "--- {} (fold 1 of 3, {} test regions) ---",
            urg.name,
            test.len()
        );

        for kind in [MethodKind::Cmsf, MethodKind::Uvlens] {
            let mut det = build_detector(kind, &urg, 0, scale == Scale::Quick);
            let report = det.fit(&urg, &train);
            if let Some(err) = report.error {
                eprintln!("{:8} skipped: fit failed: {err}", kind.label());
                continue;
            }
            let scores = det.predict(&urg);
            // Rank the test labeled regions, take the top 3% (NaN scores, if
            // any slip through, sink to the bottom instead of panicking).
            let mut ranked: Vec<usize> = test.clone();
            ranked.sort_by(|&a, &b| {
                let (sa, sb) = (
                    scores[urg.labeled[a] as usize],
                    scores[urg.labeled[b] as usize],
                );
                sa.is_nan().cmp(&sb.is_nan()).then(sb.total_cmp(&sa))
            });
            let k = ((test.len() as f64 * 0.03).ceil() as usize).max(1);
            let detected: Vec<u32> = ranked[..k].iter().map(|&i| urg.labeled[i]).collect();

            let s: Vec<f32> = test
                .iter()
                .map(|&i| scores[urg.labeled[i] as usize])
                .collect();
            let y: Vec<f32> = test.iter().map(|&i| urg.y[i]).collect();
            let prf = match prf_at_top_percent(&s, &y, 3) {
                Ok(prf) => prf,
                Err(err) => {
                    eprintln!("{:8} skipped: {err}", kind.label());
                    continue;
                }
            };
            let coherence = spatial_coherence(&urg, &detected);
            println!(
                "{:8} precision@3={:.3} recall@3={:.3} spatial-coherence={:.3}",
                kind.label(),
                prf.precision,
                prf.recall,
                coherence
            );

            let map = render_map(&urg, &test, &detected);
            let path = format!(
                "{RESULTS_DIR}/fig7_{}_{}.txt",
                urg.name,
                kind.label().to_lowercase()
            );
            std::fs::create_dir_all(RESULTS_DIR).expect("results dir");
            std::fs::write(&path, format!(
                "Figure 7 case study — {} on {}\nlegend: '@' detected true UV, '#' missed UV, 'o' false alarm, '.' labeled non-UV\n\n{}",
                kind.label(), urg.name, map
            )).expect("write map");
            println!("         map -> {path}");
            summary.push(serde_json::json!({
                "city": urg.name,
                "method": kind.label(),
                "precision_at_3": prf.precision,
                "recall_at_3": prf.recall,
                "spatial_coherence": coherence,
            }));
        }
        println!();
    }

    std::fs::write(
        format!("{RESULTS_DIR}/fig7.json"),
        serde_json::to_string_pretty(&summary).expect("serialize"),
    )
    .expect("write results/fig7.json");
    println!("wrote {RESULTS_DIR}/fig7.json");
}
