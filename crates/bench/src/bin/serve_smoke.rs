//! Release gate for the resident scoring service: 100 concurrent score
//! requests plus one malformed line and one out-of-bounds region id,
//! against an in-process `uvd-serve` server with a JSONL trace attached.
//!
//! Passes iff:
//! * every reply (including the two poisoned ones) is valid JSON — the
//!   process answered instead of dying;
//! * the 100 well-formed requests all come back `ok:true` with the right
//!   score count, the malformed line and the out-of-bounds id come back
//!   `ok:false`, and the OOB error carries the typed sampler message;
//! * the trace parses line-by-line and carries the `serve.request` /
//!   `serve.batch` span taxonomy (batching actually happened, requests
//!   were actually traced).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use cmsf::{Cmsf, CmsfConfig};
use rand::Rng;
use uvd_citysim::{City, CityPreset};
use uvd_serve::{ServeOptions, Server};
use uvd_urg::{Detector, Urg, UrgOptions};

const CLIENTS: usize = 10;
const REQS_PER_CLIENT: usize = 10; // 100 well-formed requests total

fn send_line(addr: std::net::SocketAddr, line: &str) -> String {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    writer.write_all(line.as_bytes()).unwrap();
    writer.write_all(b"\n").unwrap();
    writer.flush().unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("read reply");
    reply.trim().to_string()
}

fn main() {
    let trace_path =
        std::env::temp_dir().join(format!("uvd_serve_smoke_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&trace_path);
    uvd_obs::set_jsonl(&trace_path).expect("attach jsonl trace");

    println!("training the tiny fixture checkpoint ...");
    let city = City::from_config(CityPreset::tiny(), 51);
    let urg = Urg::build(&city, UrgOptions::default());
    let mut cfg = CmsfConfig::fast_test();
    cfg.master_epochs = 10;
    cfg.slave_epochs = 3;
    let train: Vec<usize> = (0..urg.labeled.len()).collect();
    let mut model = Cmsf::new(&urg, cfg);
    model.fit(&urg, &train);
    let store = model.to_store();
    let n_regions = urg.n;

    let server = Server::start(
        urg,
        cfg,
        store,
        ServeOptions {
            workers: 2,
            ..ServeOptions::default()
        },
    )
    .expect("server starts");
    let addr = server.addr();

    // 100 concurrent well-formed score requests, each client on its own
    // connection, all released together by a barrier so micro-batching
    // actually sees concurrent load.
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let ok_count = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let barrier = Arc::clone(&barrier);
            let ok_count = Arc::clone(&ok_count);
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                stream
                    .set_read_timeout(Some(Duration::from_secs(30)))
                    .unwrap();
                let mut writer = stream.try_clone().unwrap();
                let mut reader = BufReader::new(stream);
                let mut rng = uvd_tensor::seeded_rng(c as u64);
                barrier.wait();
                let mut reply = String::new();
                for r in 0..REQS_PER_CLIENT {
                    let n_ids = 1 + (r % 8);
                    let ids: Vec<String> = (0..n_ids)
                        .map(|_| rng.gen_range(0..n_regions).to_string())
                        .collect();
                    writer
                        .write_all(
                            format!("{{\"op\":\"score\",\"ids\":[{}]}}\n", ids.join(","))
                                .as_bytes(),
                        )
                        .unwrap();
                    writer.flush().unwrap();
                    reply.clear();
                    reader.read_line(&mut reply).expect("read reply");
                    let v = serde_json::from_str_value(reply.trim())
                        .expect("score reply is valid JSON");
                    assert_eq!(
                        v.get("ok"),
                        Some(&serde_json::Value::Bool(true)),
                        "score reply not ok: {reply}"
                    );
                    match v.get("scores") {
                        Some(serde_json::Value::Array(a)) => assert_eq!(a.len(), n_ids),
                        other => panic!("no scores array: {other:?}"),
                    }
                    ok_count.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread panicked");
    }
    assert_eq!(ok_count.load(Ordering::Relaxed), CLIENTS * REQS_PER_CLIENT);

    // One malformed line: must be answered (valid JSON, ok:false), not
    // crash the connection handler.
    let reply = send_line(addr, "{\"op\":\"score\",\"ids\":[");
    let v = serde_json::from_str_value(&reply).expect("malformed-line reply is valid JSON");
    assert_eq!(v.get("ok"), Some(&serde_json::Value::Bool(false)));

    // One out-of-bounds id: the typed sampler error, as a reply.
    let reply = send_line(addr, &format!("{{\"op\":\"score\",\"ids\":[{n_regions}]}}"));
    let v = serde_json::from_str_value(&reply).expect("oob reply is valid JSON");
    assert_eq!(v.get("ok"), Some(&serde_json::Value::Bool(false)));
    let err = v.get("error").and_then(|e| e.as_str()).unwrap_or("");
    assert!(
        err.contains("out of bounds"),
        "oob error should carry the typed sampler message, got: {err}"
    );

    // The process is still alive and consistent after the poison.
    let reply = send_line(addr, "{\"op\":\"stats\"}");
    let v = serde_json::from_str_value(&reply).expect("stats reply is valid JSON");
    let served = v.get("requests").and_then(|x| x.as_f64()).unwrap_or(0.0) as usize;
    assert!(
        served >= CLIENTS * REQS_PER_CLIENT + 2,
        "stats lost requests: {reply}"
    );

    server.shutdown();
    uvd_obs::flush();
    uvd_obs::disable();

    // Trace taxonomy: every line parses; serve.request covers every
    // request, serve.batch shows micro-batching ran.
    let text = std::fs::read_to_string(&trace_path).expect("read trace");
    let mut n_request = 0usize;
    let mut n_batch = 0usize;
    for (i, line) in text.lines().enumerate() {
        let v = serde_json::from_str_value(line)
            .unwrap_or_else(|e| panic!("trace line {} is not valid JSON ({e}): {line}", i + 1));
        if v.get("type").and_then(|t| t.as_str()) == Some("span") {
            match v.get("name").and_then(|n| n.as_str()) {
                Some("serve.request") => n_request += 1,
                Some("serve.batch") => n_batch += 1,
                _ => {}
            }
        }
    }
    let _ = std::fs::remove_file(&trace_path);
    assert!(
        n_request >= CLIENTS * REQS_PER_CLIENT + 2,
        "expected >= {} serve.request spans, got {n_request}",
        CLIENTS * REQS_PER_CLIENT + 2
    );
    assert!(n_batch >= 1, "no serve.batch span in the trace");
    assert!(
        n_batch <= n_request,
        "batching should coalesce, not amplify: {n_batch} batches for {n_request} requests"
    );

    println!(
        "serve_smoke: ok ({} score requests, 2 poison requests answered, \
         {n_request} serve.request / {n_batch} serve.batch spans)",
        CLIENTS * REQS_PER_CLIENT
    );
}
