//! Figure 5(b) — ablation of multi-modal urban data: CMSF run on URG
//! variants with one data source removed (noImage, noCate, noRad, noIndex,
//! noRoad, noProx).

use uvd_bench::{format_row, header, Scale, RESULTS_DIR};
use uvd_citysim::CityPreset;
use uvd_eval::{
    dataset_city, dataset_urg, factory::cmsf_config, records::write_json, run_custom,
    ExperimentRecord,
};
use uvd_urg::{Urg, UrgOptions};

fn main() {
    let scale = Scale::from_args();
    let spec = scale.sweep_spec();
    println!(
        "Figure 5(b): effect of multi-modal urban data ({} scale)\n",
        scale.label()
    );

    type VariantFn = fn() -> UrgOptions;
    let variants: [(&str, VariantFn); 7] = [
        ("CMSF", UrgOptions::default),
        ("noImage", UrgOptions::no_image),
        ("noCate", UrgOptions::no_cate),
        ("noRad", UrgOptions::no_rad),
        ("noIndex", UrgOptions::no_index),
        ("noRoad", UrgOptions::no_road),
        ("noProx", UrgOptions::no_prox),
    ];

    let (master_epochs, slave_epochs) = scale.sweep_epochs();
    let mut rows = Vec::new();
    for preset in CityPreset::ALL {
        println!("--- {} ---", preset.name());
        println!("{}", header());
        let city = dataset_city(preset);
        let base = dataset_urg(preset, UrgOptions::default());
        for (label, opts) in variants {
            let urg = Urg::variant_from(&city, opts(), &base);
            let s = run_custom(&urg, &spec, label, |seed, urg| {
                let mut cfg = cmsf_config(urg, seed, spec.quick);
                cfg.master_epochs = master_epochs;
                cfg.slave_epochs = slave_epochs;
                Box::new(cmsf::Cmsf::new(urg, cfg))
            });
            let s = match s {
                Ok(s) => s,
                Err(err) => {
                    eprintln!("{label:10} | skipped: {err}");
                    continue;
                }
            };
            println!("{}", format_row(&s));
            rows.push(s);
        }
        println!();
    }

    let record = ExperimentRecord {
        experiment: "fig5b".into(),
        description: "Data ablation over URG variants (paper Figure 5b)".into(),
        params: format!(
            "scale={}, folds={}, seeds={:?}",
            scale.label(),
            spec.folds,
            spec.seeds
        ),
        rows,
    };
    write_json(&format!("{RESULTS_DIR}/fig5b.json"), &record).expect("write results/fig5b.json");
    println!("wrote {RESULTS_DIR}/fig5b.json");
}
