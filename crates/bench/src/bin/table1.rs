//! Table I — statistics of the three datasets: number of regions, URG
//! edges, labeled UVs and labeled non-UVs.

use uvd_bench::RESULTS_DIR;
use uvd_citysim::CityPreset;
use uvd_eval::{dataset_urg, records::write_json, DatasetRow};
use uvd_urg::UrgOptions;

fn main() {
    println!("Table I: statistics of the three synthetic datasets\n");
    println!(
        "{:16} {:>10} {:>10} {:>7} {:>10}",
        "", "# Regions", "# Edges", "# UVs", "# Non-UVs"
    );
    let mut rows = Vec::new();
    for preset in CityPreset::ALL {
        let urg = dataset_urg(preset, UrgOptions::default());
        let s = urg.stats();
        println!(
            "{:16} {:>10} {:>10} {:>7} {:>10}",
            s.name, s.n_regions, s.n_edges, s.n_uvs, s.n_non_uvs
        );
        rows.push(DatasetRow {
            city: s.name,
            n_regions: s.n_regions,
            n_edges: s.n_edges,
            n_uvs: s.n_uvs,
            n_non_uvs: s.n_non_uvs,
        });
    }
    write_json(&format!("{RESULTS_DIR}/table1.json"), &rows).expect("write results/table1.json");
    println!("\nwrote {RESULTS_DIR}/table1.json");
}
