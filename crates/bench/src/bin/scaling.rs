//! Synthetic-city scaling harness: stream-build the URG and train CMSF in
//! neighbor-sampled mini-batch mode at 10k / 50k / 350k regions, recording
//! wall time per training epoch and the process's peak heap bytes into the
//! `scaling` key of `BENCH_tensor.json`.
//!
//! The cities are generated through the tile path ([`CityStream`] →
//! [`ShardedUrg`]), so the 350k-region run never materializes the ~4.3 GB
//! of imagery a monolithic `City::from_config` would hold — only one tile
//! band at a time plus the extracted 320-dim feature rows. Peak memory is
//! measured by the `uvd_obs` counting allocator (installed as the global
//! allocator of this binary), i.e. it covers *everything*: city skeleton,
//! shard blocks, the training tapes, and the optimizer state.
//!
//! `--smoke` is the release-mode gate wired into `scripts/check.sh`: the
//! 50k city only, streamed build + two sampled master epochs + one slave
//! epoch, asserting (1) peak heap stays under a budget that a monolithic
//! imagery buffer alone would blow, and (2) the emitted JSONL trace
//! contains the new `urg.shard.build` and `cmsf.sample` spans. Smoke mode
//! leaves `BENCH_tensor.json` untouched.
//!
//! `--sizes 100,224` restricts the full run to the listed grid sides
//! (default `100,224,592` ≈ 10k / 50k / 350k regions).

use cmsf::{Cmsf, CmsfConfig};
use std::time::Instant;
use uvd_bench::{repo_root_path, scale_city};
use uvd_citysim::CityStream;
use uvd_obs::alloc::{self, CountingAlloc};
use uvd_urg::{ShardedUrg, UrgOptions};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Rows of grid cells per streamed tile. Small enough that a tile of the
/// 592-wide city holds ~9.3k imagery rows (~115 MB) — the bounded working
/// set of the build phase.
const TILE_ROWS: usize = 16;

/// Labeled seed regions per mini-batch and the per-hop neighbor cap used
/// for every scaling row (the point is the memory/throughput curve, so all
/// sizes train with the same sampling policy).
const BATCH: usize = 256;
const FANOUT: usize = 6;

/// Peak-heap budget for the 50k smoke gate. The monolithic imagery buffer
/// alone for this city is 50_176 × 3072 × 4 B ≈ 616 MiB; the streamed
/// pipeline — build, feature matrices, every batch tape, and the
/// full-graph freeze pass — must fit in less than that single buffer.
const SMOKE_PEAK_BUDGET: usize = 560 << 20;

struct SizeResult {
    row: serde_json::Value,
    peak_bytes: usize,
}

/// Stream-build one city size and train `master_epochs + slave_epochs`
/// sampled epochs. Returns the JSON row and the observed peak heap.
fn run_size(side: usize, master_epochs: usize, slave_epochs: usize) -> SizeResult {
    alloc::reset_peak();
    let cfg = scale_city(side);
    let name = cfg.name.clone();
    let t_build = Instant::now();
    let stream = CityStream::new(cfg, 11, TILE_ROWS);
    let sharded = ShardedUrg::from_stream(stream, UrgOptions::default());
    let stats = sharded.stats();
    let urg = sharded.into_urg();
    let build_secs = t_build.elapsed().as_secs_f64();
    let build_peak = alloc::peak_bytes();

    let mut mcfg = CmsfConfig::fast_test();
    mcfg.master_epochs = master_epochs;
    mcfg.slave_epochs = slave_epochs;
    mcfg.batch_size = BATCH;
    mcfg.sample_fanout = FANOUT;
    let train: Vec<usize> = (0..urg.labeled.len()).collect();
    let mut model = Cmsf::new(&urg, mcfg);
    let t_master = Instant::now();
    let master_loss = model.train_master(&urg, &train).expect("master trains");
    let master_secs = t_master.elapsed().as_secs_f64();
    let t_slave = Instant::now();
    let slave_loss = model.train_slave(&urg, &train).expect("slave trains");
    let slave_secs = t_slave.elapsed().as_secs_f64();
    let peak = alloc::peak_bytes();

    let epoch_secs = master_secs / master_epochs as f64;
    println!(
        "{name:16} {:>8} regions  {:>9} edges  {:>3} shards  build {build_secs:7.2}s  \
         epoch {epoch_secs:7.2}s  slave/ep {:7.2}s  peak {:7.1} MiB (build {:7.1} MiB)  \
         loss {master_loss:.4}/{slave_loss:.4}",
        stats.n_regions,
        stats.n_edges,
        stats.shards.len(),
        slave_secs / slave_epochs as f64,
        peak as f64 / (1 << 20) as f64,
        build_peak as f64 / (1 << 20) as f64,
    );
    SizeResult {
        row: serde_json::json!({
            "name": name,
            "n_regions": stats.n_regions,
            "n_edges": stats.n_edges,
            "n_shards": stats.shards.len(),
            "n_labeled": urg.labeled.len(),
            "batch": BATCH,
            "fanout": FANOUT,
            "build_secs": build_secs,
            "build_peak_bytes": build_peak,
            "master_epochs": master_epochs,
            "master_epoch_secs": epoch_secs,
            "slave_epochs": slave_epochs,
            "slave_epoch_secs": slave_secs / slave_epochs as f64,
            "peak_bytes": peak,
            "master_loss": master_loss,
            "slave_loss": slave_loss,
        }),
        peak_bytes: peak,
    }
}

/// The `--smoke` gate: 50k city, two sampled master epochs, trace + budget
/// asserts. See the module docs.
fn smoke() {
    let trace_path = std::env::temp_dir().join("uvd_scaling_smoke.jsonl");
    uvd_obs::set_jsonl(&trace_path).expect("jsonl trace sink");
    let r = run_size(224, 2, 1);
    uvd_obs::disable(); // flush so the trace file is complete

    assert!(
        r.peak_bytes < SMOKE_PEAK_BUDGET,
        "peak heap {:.1} MiB exceeds the {:.0} MiB streaming budget",
        r.peak_bytes as f64 / (1 << 20) as f64,
        SMOKE_PEAK_BUDGET as f64 / (1 << 20) as f64,
    );

    let text = std::fs::read_to_string(&trace_path).expect("trace file readable");
    let mut saw_shard_build = false;
    let mut sampled_batches = 0usize;
    let mut feature_spans = 0usize;
    let mut prefetch_hits = 0u64;
    let mut prefetch_misses = 0u64;
    let field = |v: &serde_json::Value, name: &str| -> f64 {
        v.get("fields")
            .and_then(|f| f.get(name))
            .and_then(|x| x.as_f64())
            .unwrap_or(0.0)
    };
    for (lineno, line) in text.lines().enumerate() {
        let v: serde_json::Value = serde_json::from_str_value(line)
            .unwrap_or_else(|e| panic!("trace line {} is not valid JSON: {e}", lineno + 1));
        if v.get("type").and_then(|t| t.as_str()) == Some("counter") {
            let value = v.get("value").and_then(|x| x.as_f64()).unwrap_or(0.0) as u64;
            match v.get("name").and_then(|n| n.as_str()) {
                Some("batch.prefetch.hit") => prefetch_hits = value,
                Some("batch.prefetch.miss") => prefetch_misses = value,
                _ => {}
            }
            continue;
        }
        if v.get("type").and_then(|t| t.as_str()) != Some("span") {
            continue;
        }
        match v.get("name").and_then(|n| n.as_str()) {
            Some("urg.shard.build") => {
                saw_shard_build = true;
                let n = field(&v, "n_regions");
                assert!(
                    (n - 50176.0).abs() < 0.5,
                    "urg.shard.build span must record the 224x224 region count, got {n}"
                );
            }
            Some("urg.features") => feature_spans += 1,
            Some("cmsf.sample") => {
                sampled_batches += 1;
                let nodes = field(&v, "nodes");
                let seeds = field(&v, "seeds");
                assert!(
                    seeds > 0.0 && nodes >= seeds && nodes < 50176.0,
                    "cmsf.sample span must cover seeds without exploding to the full graph \
                     (seeds {seeds}, nodes {nodes})"
                );
            }
            _ => {}
        }
    }
    assert!(
        saw_shard_build,
        "trace must contain the urg.shard.build span"
    );
    assert!(
        sampled_batches > 0,
        "trace must contain cmsf.sample spans (mini-batch mode did not engage)"
    );
    // PR 9 taxonomy: every streamed tile emits a per-tile urg.features span,
    // and the prefetch pipeline accounts for every recording-epoch batch as
    // either a hit (prepared ahead) or a miss (the trainer waited).
    assert!(
        feature_spans > 1,
        "trace must contain per-tile urg.features spans (got {feature_spans})"
    );
    assert_eq!(
        (prefetch_hits + prefetch_misses) as usize,
        sampled_batches,
        "batch.prefetch.hit + batch.prefetch.miss must cover every sampled batch"
    );
    let _ = std::fs::remove_file(&trace_path);
    println!(
        "scaling --smoke: ok (peak {:.1} MiB < {:.0} MiB budget, {sampled_batches} sampled \
         batches, {prefetch_hits} prefetch hits / {prefetch_misses} misses)",
        r.peak_bytes as f64 / (1 << 20) as f64,
        SMOKE_PEAK_BUDGET as f64 / (1 << 20) as f64,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let sides: Vec<usize> = match args.iter().position(|a| a == "--sizes") {
        Some(i) => args[i + 1]
            .split(',')
            .map(|s| s.trim().parse().expect("bad --sizes entry"))
            .collect(),
        None => vec![100, 224, 592],
    };
    let rows: Vec<serde_json::Value> = sides.iter().map(|&side| run_size(side, 3, 1).row).collect();

    // Read-modify-write: the scaling curve lives alongside perfsnap's
    // kernel numbers in BENCH_tensor.json without clobbering them.
    let path = repo_root_path("BENCH_tensor.json");
    let mut doc: serde_json::Value = std::fs::read_to_string(&path)
        .ok()
        .and_then(|t| serde_json::from_str_value(&t).ok())
        .unwrap_or_else(|| serde_json::json!({}));
    doc.set("scaling", serde_json::Value::Array(rows));
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&doc).expect("serialize snapshot") + "\n",
    )
    .expect("write BENCH_tensor.json");
    println!("wrote scaling rows to {}", path.display());
}
