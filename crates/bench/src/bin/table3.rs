//! Table III — efficiency comparison in Shenzhen-like and Fuzhou-like:
//! average training time per epoch, inference time, and model size.

use uvd_bench::{Scale, RESULTS_DIR};
use uvd_citysim::CityPreset;
use uvd_eval::{
    dataset_urg, records::write_json, run_method, ExperimentRecord, MethodKind, RunSpec,
};
use uvd_urg::UrgOptions;

fn main() {
    let scale = Scale::from_args();
    // Per-epoch timing is unaffected by the epoch count, so reduced-epoch
    // fits measure it just as well.
    let spec = RunSpec {
        folds: 2,
        seeds: vec![0],
        quick: true,
        ..Default::default()
    };
    println!(
        "Table III: efficiency comparison ({} scale)\n",
        scale.label()
    );
    println!(
        "{:10} | {:>14} {:>14} | {:>14} {:>14} | {:>12}",
        "", "train s/epoch", "", "inference (s)", "", "size (MB)"
    );
    println!(
        "{:10} | {:>14} {:>14} | {:>14} {:>14} | {:>12}",
        "method", "shenzhen-like", "fuzhou-like", "shenzhen-like", "fuzhou-like", "(fuzhou)"
    );

    let sz = dataset_urg(CityPreset::ShenzhenLike, UrgOptions::default());
    let fz = dataset_urg(CityPreset::FuzhouLike, UrgOptions::default());

    let mut rows = Vec::new();
    for kind in MethodKind::TABLE2 {
        let (s_sz, s_fz) = match (run_method(kind, &sz, &spec), run_method(kind, &fz, &spec)) {
            (Ok(a), Ok(b)) => (a, b),
            (a, b) => {
                for err in [a.err(), b.err()].into_iter().flatten() {
                    eprintln!("{:10} | skipped: {err}", kind.label());
                }
                continue;
            }
        };
        println!(
            "{:10} | {:>14.4} {:>14.4} | {:>14.4} {:>14.4} | {:>12.3}",
            kind.label(),
            s_sz.train_secs_per_epoch,
            s_fz.train_secs_per_epoch,
            s_sz.inference_secs,
            s_fz.inference_secs,
            s_fz.model_mbytes
        );
        rows.push(s_sz);
        rows.push(s_fz);
    }

    let record = ExperimentRecord {
        experiment: "table3".into(),
        description: "Efficiency comparison (paper Table III)".into(),
        params: format!(
            "scale={}, folds={}, seeds={:?}",
            scale.label(),
            spec.folds,
            spec.seeds
        ),
        rows,
    };
    write_json(&format!("{RESULTS_DIR}/table3.json"), &record).expect("write results/table3.json");
    println!("\nwrote {RESULTS_DIR}/table3.json");
}
