//! Table II — detection performance comparison: AUC and Recall / Precision /
//! F1 at p = 3 and p = 5 for all eight methods in the three cities, mean
//! (SD) across random runs of 3-fold block cross-validation.

use uvd_bench::{format_row, header, Scale, RESULTS_DIR};
use uvd_citysim::CityPreset;
use uvd_eval::{dataset_urg, records::write_json, run_method, ExperimentRecord, MethodKind};
use uvd_urg::UrgOptions;

fn main() {
    let scale = Scale::from_args();
    let spec = scale.spec();
    println!(
        "Table II: detection performance ({} scale, {} seeds, {} folds)\n",
        scale.label(),
        spec.seeds.len(),
        spec.folds
    );

    let mut rows = Vec::new();
    for preset in CityPreset::ALL {
        let urg = dataset_urg(preset, UrgOptions::default());
        println!("--- {} ---", urg.name);
        println!("{}", header());
        for kind in MethodKind::TABLE2 {
            let s = match run_method(kind, &urg, &spec) {
                Ok(s) => s,
                Err(err) => {
                    eprintln!("{:10} | skipped: {err}", kind.label());
                    continue;
                }
            };
            println!("{}", format_row(&s));
            rows.push(s);
        }
        println!();
    }

    let record = ExperimentRecord {
        experiment: "table2".into(),
        description: "Detection performance comparison (paper Table II)".into(),
        params: format!(
            "scale={}, folds={}, seeds={:?}",
            scale.label(),
            spec.folds,
            spec.seeds
        ),
        rows,
    };
    write_json(&format!("{RESULTS_DIR}/table2.json"), &record).expect("write results/table2.json");
    println!("wrote {RESULTS_DIR}/table2.json");
}
