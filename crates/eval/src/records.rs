//! Serializable result records emitted by the experiment binaries. Each
//! table/figure binary writes one JSON file under `results/` from which
//! EXPERIMENTS.md is assembled.

use serde::{Deserialize, Serialize};

/// Mean ± standard deviation of a metric across runs.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct MeanStd {
    pub mean: f64,
    pub std: f64,
}

impl MeanStd {
    pub fn from_samples(xs: &[f64]) -> Self {
        let (mean, std) = crate::metrics::mean_std(xs);
        MeanStd { mean, std }
    }
}

impl std::fmt::Display for MeanStd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.3} (.{:03})",
            self.mean,
            (self.std * 1000.0).round() as u64
        )
    }
}

/// Screening metrics at one p threshold.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PSummary {
    pub p: usize,
    pub recall: MeanStd,
    pub precision: MeanStd,
    pub f1: MeanStd,
}

/// Pipeline stage at which a (seed, fold) evaluation unit failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FoldStage {
    /// Training failed (a typed `FitError` from the detector).
    Fit,
    /// The detector produced non-finite scores on the test rows.
    Predict,
    /// Metric evaluation rejected the scores (a typed `MetricError`).
    Evaluate,
}

impl std::fmt::Display for FoldStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FoldStage::Fit => write!(f, "fit"),
            FoldStage::Predict => write!(f, "predict"),
            FoldStage::Evaluate => write!(f, "evaluate"),
        }
    }
}

/// Outcome of one (seed, fold) evaluation unit. Failed units are recorded —
/// with the stage that failed and the typed error's message — instead of
/// aborting the whole experiment.
#[derive(Clone, Debug, PartialEq)]
pub enum FoldOutcome {
    Ok {
        seed_index: usize,
        fold: usize,
        auc: f64,
    },
    Failed {
        seed_index: usize,
        fold: usize,
        stage: FoldStage,
        /// Display form of the typed error (`FitError` / `MetricError`).
        error: String,
    },
}

impl FoldOutcome {
    /// True for the `Failed` variant.
    pub fn is_failed(&self) -> bool {
        matches!(self, FoldOutcome::Failed { .. })
    }
}

// The vendored serde_derive only handles structs and unit enums, so the
// internally-tagged `{"status": ...}` layout is written by hand.
impl Serialize for FoldOutcome {
    fn to_value(&self) -> serde::Value {
        let field = |k: &str, v: serde::Value| (k.to_string(), v);
        match self {
            FoldOutcome::Ok {
                seed_index,
                fold,
                auc,
            } => serde::Value::Object(vec![
                field("status", serde::Value::Str("Ok".into())),
                field("seed_index", serde::Value::Num(*seed_index as f64)),
                field("fold", serde::Value::Num(*fold as f64)),
                field("auc", serde::Value::Num(*auc)),
            ]),
            FoldOutcome::Failed {
                seed_index,
                fold,
                stage,
                error,
            } => serde::Value::Object(vec![
                field("status", serde::Value::Str("Failed".into())),
                field("seed_index", serde::Value::Num(*seed_index as f64)),
                field("fold", serde::Value::Num(*fold as f64)),
                field("stage", stage.to_value()),
                field("error", serde::Value::Str(error.clone())),
            ]),
        }
    }
}

impl Deserialize for FoldOutcome {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let get = |k: &str| {
            v.get(k)
                .ok_or_else(|| serde::Error(format!("missing field `{k}` in FoldOutcome")))
        };
        let status = get("status")?
            .as_str()
            .ok_or_else(|| serde::Error("FoldOutcome status must be a string".into()))?;
        let seed_index = usize::from_value(get("seed_index")?)?;
        let fold = usize::from_value(get("fold")?)?;
        match status {
            "Ok" => Ok(FoldOutcome::Ok {
                seed_index,
                fold,
                auc: f64::from_value(get("auc")?)?,
            }),
            "Failed" => Ok(FoldOutcome::Failed {
                seed_index,
                fold,
                stage: FoldStage::from_value(get("stage")?)?,
                error: String::from_value(get("error")?)?,
            }),
            other => Err(serde::Error(format!(
                "unknown FoldOutcome status `{other}`"
            ))),
        }
    }
}

/// One Table II / ablation row: a method evaluated on a city.
#[derive(Clone, Debug, Serialize)]
pub struct MethodSummary {
    pub method: String,
    pub city: String,
    pub auc: MeanStd,
    pub at_p: Vec<PSummary>,
    /// Table III columns.
    pub train_secs_per_epoch: f64,
    /// Mean wall seconds of the whole fit stage per (seed, fold) unit.
    pub fit_secs: f64,
    pub inference_secs: f64,
    /// Mean wall seconds of the metric-evaluation stage per unit.
    pub evaluate_secs: f64,
    pub model_mbytes: f64,
    /// Number of (seed × fold) runs that completed and were aggregated.
    pub runs: usize,
    /// Number of (seed × fold) runs that failed and were excluded.
    pub failed: usize,
    /// Per-(seed, fold) outcome trail, in task order.
    pub fold_outcomes: Vec<FoldOutcome>,
}

// Manual impl so records written before the degradation fields (`failed` /
// `fold_outcomes`) or the stage-timing fields (`fit_secs` / `evaluate_secs`)
// existed still deserialize, defaulting to a clean run with unknown (zero)
// stage timings. The vendored serde_derive has no `#[serde(default)]`.
impl Deserialize for MethodSummary {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let get = |k: &str| {
            v.get(k)
                .ok_or_else(|| serde::Error(format!("missing field `{k}` in MethodSummary")))
        };
        let opt_f64 = |k: &str| -> Result<f64, serde::Error> {
            match v.get(k) {
                Some(x) => f64::from_value(x),
                None => Ok(0.0),
            }
        };
        Ok(MethodSummary {
            method: String::from_value(get("method")?)?,
            city: String::from_value(get("city")?)?,
            auc: MeanStd::from_value(get("auc")?)?,
            at_p: Vec::from_value(get("at_p")?)?,
            train_secs_per_epoch: f64::from_value(get("train_secs_per_epoch")?)?,
            fit_secs: opt_f64("fit_secs")?,
            inference_secs: f64::from_value(get("inference_secs")?)?,
            evaluate_secs: opt_f64("evaluate_secs")?,
            model_mbytes: f64::from_value(get("model_mbytes")?)?,
            runs: usize::from_value(get("runs")?)?,
            failed: match v.get("failed") {
                Some(x) => usize::from_value(x)?,
                None => 0,
            },
            fold_outcomes: match v.get("fold_outcomes") {
                Some(x) => Vec::from_value(x)?,
                None => Vec::new(),
            },
        })
    }
}

impl MethodSummary {
    /// Look up the screening summary at a given p.
    pub fn at(&self, p: usize) -> Option<&PSummary> {
        self.at_p.iter().find(|s| s.p == p)
    }

    /// The failed outcomes only (empty on a fully clean run).
    pub fn failures(&self) -> impl Iterator<Item = &FoldOutcome> {
        self.fold_outcomes.iter().filter(|o| o.is_failed())
    }
}

/// Table I row.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DatasetRow {
    pub city: String,
    pub n_regions: usize,
    pub n_edges: usize,
    pub n_uvs: usize,
    pub n_non_uvs: usize,
}

/// A generic experiment record: an id (e.g. "table2"), metadata, and rows.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExperimentRecord {
    pub experiment: String,
    pub description: String,
    /// Free-form parameter string (seeds, folds, scale notes).
    pub params: String,
    pub rows: Vec<MethodSummary>,
}

/// Write a serializable record as pretty JSON under `results/`.
pub fn write_json<T: Serialize>(path: &str, value: &T) -> std::io::Result<()> {
    if let Some(dir) = std::path::Path::new(path).parent() {
        std::fs::create_dir_all(dir)?;
    }
    let json = serde_json::to_string_pretty(value).expect("serializable record");
    std::fs::write(path, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_from_samples() {
        // Sample (n−1) standard deviation: [1,3] → sqrt(2).
        let ms = MeanStd::from_samples(&[1.0, 3.0]);
        assert!((ms.mean - 2.0).abs() < 1e-12);
        assert!((ms.std - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn display_matches_paper_style() {
        let ms = MeanStd {
            mean: 0.8701,
            std: 0.0014,
        };
        assert_eq!(format!("{ms}"), "0.870 (.001)");
    }

    #[test]
    fn method_summary_lookup() {
        let row = MethodSummary {
            method: "CMSF".into(),
            city: "tiny".into(),
            auc: MeanStd::default(),
            at_p: vec![PSummary {
                p: 3,
                recall: MeanStd::default(),
                precision: MeanStd::default(),
                f1: MeanStd::default(),
            }],
            train_secs_per_epoch: 0.0,
            fit_secs: 0.0,
            inference_secs: 0.0,
            evaluate_secs: 0.0,
            model_mbytes: 0.0,
            runs: 1,
            failed: 0,
            fold_outcomes: vec![],
        };
        assert!(row.at(3).is_some());
        assert!(row.at(5).is_none());
    }

    #[test]
    fn fold_outcome_serializes_with_status_tag() {
        let o = FoldOutcome::Failed {
            seed_index: 1,
            fold: 2,
            stage: FoldStage::Predict,
            error: "non-finite score at index 0 (3 non-finite total)".into(),
        };
        let s = serde_json::to_string(&o).expect("serialize");
        assert!(s.contains("\"status\":\"Failed\""));
        assert!(s.contains("\"stage\":\"Predict\""));
        let back: FoldOutcome = serde_json::from_str(&s).expect("deserialize");
        assert!(back.is_failed());
    }

    #[test]
    fn method_summary_without_outcome_fields_still_deserializes() {
        // Pre-existing results JSON (written before the degradation fields
        // existed) must stay readable.
        let s = r#"{"method":"CMSF","city":"tiny","auc":{"mean":0.9,"std":0.01},
                    "at_p":[],"train_secs_per_epoch":0.1,"inference_secs":0.1,
                    "model_mbytes":0.1,"runs":4}"#;
        let row: MethodSummary = serde_json::from_str(s).expect("deserialize");
        assert_eq!(row.failed, 0);
        assert!(row.fold_outcomes.is_empty());
        // Stage-timing fields introduced later default to zero likewise.
        assert!(row.fit_secs.abs() < f64::EPSILON);
        assert!(row.evaluate_secs.abs() < f64::EPSILON);
    }

    #[test]
    fn json_roundtrip() {
        let rec = ExperimentRecord {
            experiment: "t".into(),
            description: "d".into(),
            params: "p".into(),
            rows: vec![],
        };
        let s = serde_json::to_string(&rec).expect("serialize");
        let back: ExperimentRecord = serde_json::from_str(&s).expect("deserialize");
        assert_eq!(back.experiment, "t");
    }
}
