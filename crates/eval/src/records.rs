//! Serializable result records emitted by the experiment binaries. Each
//! table/figure binary writes one JSON file under `results/` from which
//! EXPERIMENTS.md is assembled.

use serde::{Deserialize, Serialize};

/// Mean ± standard deviation of a metric across runs.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct MeanStd {
    pub mean: f64,
    pub std: f64,
}

impl MeanStd {
    pub fn from_samples(xs: &[f64]) -> Self {
        let (mean, std) = crate::metrics::mean_std(xs);
        MeanStd { mean, std }
    }
}

impl std::fmt::Display for MeanStd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.3} (.{:03})",
            self.mean,
            (self.std * 1000.0).round() as u64
        )
    }
}

/// Screening metrics at one p threshold.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PSummary {
    pub p: usize,
    pub recall: MeanStd,
    pub precision: MeanStd,
    pub f1: MeanStd,
}

/// One Table II / ablation row: a method evaluated on a city.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MethodSummary {
    pub method: String,
    pub city: String,
    pub auc: MeanStd,
    pub at_p: Vec<PSummary>,
    /// Table III columns.
    pub train_secs_per_epoch: f64,
    pub inference_secs: f64,
    pub model_mbytes: f64,
    /// Number of (seed × fold) runs aggregated.
    pub runs: usize,
}

impl MethodSummary {
    /// Look up the screening summary at a given p.
    pub fn at(&self, p: usize) -> Option<&PSummary> {
        self.at_p.iter().find(|s| s.p == p)
    }
}

/// Table I row.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DatasetRow {
    pub city: String,
    pub n_regions: usize,
    pub n_edges: usize,
    pub n_uvs: usize,
    pub n_non_uvs: usize,
}

/// A generic experiment record: an id (e.g. "table2"), metadata, and rows.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExperimentRecord {
    pub experiment: String,
    pub description: String,
    /// Free-form parameter string (seeds, folds, scale notes).
    pub params: String,
    pub rows: Vec<MethodSummary>,
}

/// Write a serializable record as pretty JSON under `results/`.
pub fn write_json<T: Serialize>(path: &str, value: &T) -> std::io::Result<()> {
    if let Some(dir) = std::path::Path::new(path).parent() {
        std::fs::create_dir_all(dir)?;
    }
    let json = serde_json::to_string_pretty(value).expect("serializable record");
    std::fs::write(path, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_from_samples() {
        let ms = MeanStd::from_samples(&[1.0, 3.0]);
        assert!((ms.mean - 2.0).abs() < 1e-12);
        assert!((ms.std - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_matches_paper_style() {
        let ms = MeanStd {
            mean: 0.8701,
            std: 0.0014,
        };
        assert_eq!(format!("{ms}"), "0.870 (.001)");
    }

    #[test]
    fn method_summary_lookup() {
        let row = MethodSummary {
            method: "CMSF".into(),
            city: "tiny".into(),
            auc: MeanStd::default(),
            at_p: vec![PSummary {
                p: 3,
                recall: MeanStd::default(),
                precision: MeanStd::default(),
                f1: MeanStd::default(),
            }],
            train_secs_per_epoch: 0.0,
            inference_secs: 0.0,
            model_mbytes: 0.0,
            runs: 1,
        };
        assert!(row.at(3).is_some());
        assert!(row.at(5).is_none());
    }

    #[test]
    fn json_roundtrip() {
        let rec = ExperimentRecord {
            experiment: "t".into(),
            description: "d".into(),
            params: "p".into(),
            rows: vec![],
        };
        let s = serde_json::to_string(&rec).expect("serialize");
        let back: ExperimentRecord = serde_json::from_str(&s).expect("deserialize");
        assert_eq!(back.experiment, "t");
    }
}
