//! Evaluation metrics (paper Section VI-C): AUC over the test labels, and
//! Recall / Precision / F1 in the practical top-p% screening setting — the
//! test-fold labeled regions are ranked by predicted probability and the top
//! p% are treated as predicted urban villages.

/// Precision / recall / F1 triple.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Prf {
    pub precision: f64,
    pub recall: f64,
    pub f1: f64,
}

/// Area under the ROC curve via the rank-sum (Mann–Whitney) formula with
/// average ranks for ties. Returns 0.5 when either class is absent.
pub fn auc(scores: &[f32], labels: &[f32]) -> f64 {
    assert_eq!(scores.len(), labels.len());
    let n_pos = labels.iter().filter(|&&y| y > 0.5).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).expect("finite scores"));
    // Average ranks over tie groups (1-based ranks).
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && scores[idx[j + 1]] == scores[idx[i]] {
            j += 1;
        }
        let avg_rank = (i + j + 2) as f64 / 2.0; // 1-based average rank
        for &k in &idx[i..=j] {
            if labels[k] > 0.5 {
                rank_sum_pos += avg_rank;
            }
        }
        i = j + 1;
    }
    (rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0) / (n_pos * n_neg) as f64
}

/// Top-p% screening metrics: rank the test items by score, mark the top
/// `ceil(p% * n)` as predicted positives, compare with labels.
pub fn prf_at_top_percent(scores: &[f32], labels: &[f32], p: usize) -> Prf {
    assert_eq!(scores.len(), labels.len());
    let n = scores.len();
    let n_pos = labels.iter().filter(|&&y| y > 0.5).count();
    if n == 0 || n_pos == 0 {
        return Prf::default();
    }
    let k = ((n as f64 * p as f64 / 100.0).ceil() as usize).clamp(1, n);
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("finite scores"));
    let hits = idx[..k].iter().filter(|&&i| labels[i] > 0.5).count();
    let precision = hits as f64 / k as f64;
    let recall = hits as f64 / n_pos as f64;
    let f1 = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };
    Prf {
        precision,
        recall,
        f1,
    }
}

/// Mean and (population) standard deviation of a sample.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auc_perfect_ranking() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [1.0, 1.0, 0.0, 0.0];
        assert!((auc(&scores, &labels) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn auc_inverted_ranking() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [1.0, 1.0, 0.0, 0.0];
        assert!(auc(&scores, &labels).abs() < 1e-9);
    }

    #[test]
    fn auc_all_ties_is_half() {
        let scores = [0.5, 0.5, 0.5, 0.5];
        let labels = [1.0, 0.0, 1.0, 0.0];
        assert!((auc(&scores, &labels) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn auc_single_class_is_half() {
        assert_eq!(auc(&[0.1, 0.9], &[1.0, 1.0]), 0.5);
        assert_eq!(auc(&[0.1, 0.9], &[0.0, 0.0]), 0.5);
    }

    #[test]
    fn auc_matches_pair_counting() {
        // Brute-force pair counting on a small random-ish example.
        let scores = [0.3f32, 0.7, 0.7, 0.1, 0.5, 0.9];
        let labels = [0.0f32, 1.0, 0.0, 0.0, 1.0, 1.0];
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for i in 0..6 {
            for j in 0..6 {
                if labels[i] > 0.5 && labels[j] < 0.5 {
                    den += 1.0;
                    if scores[i] > scores[j] {
                        num += 1.0;
                    } else if scores[i] == scores[j] {
                        num += 0.5;
                    }
                }
            }
        }
        assert!((auc(&scores, &labels) - num / den).abs() < 1e-9);
    }

    #[test]
    fn prf_top_percent_counts_hits() {
        // 10 items, top 30% = 3 items; 2 of them positive; 4 positives total.
        let scores = [0.95, 0.9, 0.85, 0.5, 0.4, 0.3, 0.2, 0.15, 0.1, 0.05];
        let labels = [1.0, 0.0, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let prf = prf_at_top_percent(&scores, &labels, 30);
        assert!((prf.precision - 2.0 / 3.0).abs() < 1e-9);
        assert!((prf.recall - 2.0 / 4.0).abs() < 1e-9);
        let expect_f1 = 2.0 * (2.0 / 3.0) * 0.5 / (2.0 / 3.0 + 0.5);
        assert!((prf.f1 - expect_f1).abs() < 1e-9);
    }

    #[test]
    fn prf_at_least_one_predicted() {
        // Tiny test sets still predict at least one region.
        let prf = prf_at_top_percent(&[0.9, 0.1], &[1.0, 0.0], 3);
        assert_eq!(prf.precision, 1.0);
        assert_eq!(prf.recall, 1.0);
    }

    #[test]
    fn prf_no_positives_is_zero() {
        let prf = prf_at_top_percent(&[0.9, 0.1], &[0.0, 0.0], 50);
        assert_eq!(prf, Prf::default());
    }

    #[test]
    fn mean_std_basic() {
        let (m, s) = mean_std(&[1.0, 2.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((s - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }
}
