//! Evaluation metrics (paper Section VI-C): AUC over the test labels, and
//! Recall / Precision / F1 in the practical top-p% screening setting — the
//! test-fold labeled regions are ranked by predicted probability and the top
//! p% are treated as predicted urban villages.
//!
//! Non-finite scores are a first-class, recoverable outcome: every metric
//! returns a typed [`MetricError`] instead of panicking, and all internal
//! ordering uses `f32::total_cmp`, which is total even over NaN/±inf.

use std::fmt;

/// A typed metric-evaluation failure. Produced instead of a panic so the
/// eval runner can degrade a single (seed, fold) unit and keep going.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricError {
    /// A predicted score was NaN or infinite.
    NonFiniteScore {
        /// Index of the first offending score.
        index: usize,
        /// Total count of non-finite scores in the slice.
        count: usize,
    },
    /// A label was NaN or infinite.
    NonFiniteLabel {
        /// Index of the first offending label.
        index: usize,
    },
    /// `scores` and `labels` have different lengths.
    LengthMismatch { scores: usize, labels: usize },
}

impl fmt::Display for MetricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricError::NonFiniteScore { index, count } => write!(
                f,
                "non-finite score at index {index} ({count} non-finite total)"
            ),
            MetricError::NonFiniteLabel { index } => {
                write!(f, "non-finite label at index {index}")
            }
            MetricError::LengthMismatch { scores, labels } => write!(
                f,
                "scores/labels length mismatch: {scores} scores vs {labels} labels"
            ),
        }
    }
}

impl std::error::Error for MetricError {}

/// Validate a scores/labels pair before ranking. NaN and ±inf scores are
/// data corruption for ranking metrics — they have no meaningful rank.
pub fn check_inputs(scores: &[f32], labels: &[f32]) -> Result<(), MetricError> {
    if scores.len() != labels.len() {
        return Err(MetricError::LengthMismatch {
            scores: scores.len(),
            labels: labels.len(),
        });
    }
    let mut first = None;
    let mut count = 0;
    for (i, s) in scores.iter().enumerate() {
        if !s.is_finite() {
            if first.is_none() {
                first = Some(i);
            }
            count += 1;
        }
    }
    if let Some(index) = first {
        return Err(MetricError::NonFiniteScore { index, count });
    }
    if let Some(index) = labels.iter().position(|y| !y.is_finite()) {
        return Err(MetricError::NonFiniteLabel { index });
    }
    Ok(())
}

/// Precision / recall / F1 triple.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Prf {
    pub precision: f64,
    pub recall: f64,
    pub f1: f64,
}

/// Area under the ROC curve via the rank-sum (Mann–Whitney) formula with
/// average ranks for ties. Returns 0.5 when either class is absent, and a
/// typed [`MetricError`] for non-finite or mismatched inputs.
pub fn auc(scores: &[f32], labels: &[f32]) -> Result<f64, MetricError> {
    check_inputs(scores, labels)?;
    let n_pos = labels.iter().filter(|&&y| y > 0.5).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return Ok(0.5);
    }
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    // Average ranks over tie groups (1-based ranks).
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && scores[idx[j + 1]].total_cmp(&scores[idx[i]]).is_eq() {
            j += 1;
        }
        let avg_rank = (i + j + 2) as f64 / 2.0; // 1-based average rank
        for &k in &idx[i..=j] {
            if labels[k] > 0.5 {
                rank_sum_pos += avg_rank;
            }
        }
        i = j + 1;
    }
    Ok((rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0) / (n_pos * n_neg) as f64)
}

/// Top-p% screening metrics: rank the test items by score, mark the top
/// `ceil(p% * n)` as predicted positives, compare with labels. Non-finite or
/// mismatched inputs yield a typed [`MetricError`].
pub fn prf_at_top_percent(scores: &[f32], labels: &[f32], p: usize) -> Result<Prf, MetricError> {
    check_inputs(scores, labels)?;
    let n = scores.len();
    let n_pos = labels.iter().filter(|&&y| y > 0.5).count();
    if n == 0 || n_pos == 0 {
        return Ok(Prf::default());
    }
    let k = ((n as f64 * p as f64 / 100.0).ceil() as usize).clamp(1, n);
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
    let hits = idx[..k].iter().filter(|&&i| labels[i] > 0.5).count();
    let precision = hits as f64 / k as f64;
    let recall = hits as f64 / n_pos as f64;
    let f1 = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };
    Ok(Prf {
        precision,
        recall,
        f1,
    })
}

/// Fraction of exact class matches. Mismatched lengths yield a typed
/// [`MetricError`]; empty inputs score 0.
pub fn multiclass_accuracy(pred: &[u8], truth: &[u8]) -> Result<f64, MetricError> {
    if pred.len() != truth.len() {
        return Err(MetricError::LengthMismatch {
            scores: pred.len(),
            labels: truth.len(),
        });
    }
    if pred.is_empty() {
        return Ok(0.0);
    }
    let hits = pred.iter().zip(truth).filter(|(a, b)| a == b).count();
    Ok(hits as f64 / pred.len() as f64)
}

/// Root-mean-square error between predictions and targets. Mismatched or
/// non-finite inputs yield a typed [`MetricError`]; empty inputs score 0.
pub fn rmse(pred: &[f32], truth: &[f32]) -> Result<f64, MetricError> {
    check_inputs(pred, truth)?;
    if pred.is_empty() {
        return Ok(0.0);
    }
    let sse: f64 = pred
        .iter()
        .zip(truth)
        .map(|(&a, &b)| {
            let d = (a - b) as f64;
            d * d
        })
        .sum();
    Ok((sse / pred.len() as f64).sqrt())
}

/// Mean and sample standard deviation (Bessel's correction, `n - 1`) of a
/// set of per-seed metric values. A single sample has zero deviation.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    if xs.len() < 2 {
        return (mean, 0.0);
    }
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    // Exact float equality is intended in these tests: they assert
    // exact constants and bit-reproducible results, not tolerances.
    #![allow(clippy::float_cmp)]

    use super::*;

    #[test]
    fn auc_perfect_ranking() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [1.0, 1.0, 0.0, 0.0];
        assert!((auc(&scores, &labels).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn auc_inverted_ranking() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [1.0, 1.0, 0.0, 0.0];
        assert!(auc(&scores, &labels).unwrap().abs() < 1e-9);
    }

    #[test]
    fn auc_all_ties_is_half() {
        let scores = [0.5, 0.5, 0.5, 0.5];
        let labels = [1.0, 0.0, 1.0, 0.0];
        assert!((auc(&scores, &labels).unwrap() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn auc_single_class_is_half() {
        assert_eq!(auc(&[0.1, 0.9], &[1.0, 1.0]).unwrap(), 0.5);
        assert_eq!(auc(&[0.1, 0.9], &[0.0, 0.0]).unwrap(), 0.5);
    }

    #[test]
    fn auc_matches_pair_counting() {
        // Brute-force pair counting on a small random-ish example.
        let scores = [0.3f32, 0.7, 0.7, 0.1, 0.5, 0.9];
        let labels = [0.0f32, 1.0, 0.0, 0.0, 1.0, 1.0];
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for i in 0..6 {
            for j in 0..6 {
                if labels[i] > 0.5 && labels[j] < 0.5 {
                    den += 1.0;
                    match scores[i].total_cmp(&scores[j]) {
                        std::cmp::Ordering::Greater => num += 1.0,
                        std::cmp::Ordering::Equal => num += 0.5,
                        std::cmp::Ordering::Less => {}
                    }
                }
            }
        }
        assert!((auc(&scores, &labels).unwrap() - num / den).abs() < 1e-9);
    }

    #[test]
    fn auc_nan_score_is_a_typed_error() {
        let scores = [0.9, f32::NAN, 0.2, f32::INFINITY];
        let labels = [1.0, 1.0, 0.0, 0.0];
        assert_eq!(
            auc(&scores, &labels),
            Err(MetricError::NonFiniteScore { index: 1, count: 2 })
        );
    }

    #[test]
    fn auc_length_mismatch_is_a_typed_error() {
        assert_eq!(
            auc(&[0.1, 0.2], &[1.0]),
            Err(MetricError::LengthMismatch {
                scores: 2,
                labels: 1
            })
        );
    }

    #[test]
    fn auc_nan_label_is_a_typed_error() {
        assert_eq!(
            auc(&[0.1, 0.2], &[1.0, f32::NAN]),
            Err(MetricError::NonFiniteLabel { index: 1 })
        );
    }

    #[test]
    fn prf_top_percent_counts_hits() {
        // 10 items, top 30% = 3 items; 2 of them positive; 4 positives total.
        let scores = [0.95, 0.9, 0.85, 0.5, 0.4, 0.3, 0.2, 0.15, 0.1, 0.05];
        let labels = [1.0, 0.0, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let prf = prf_at_top_percent(&scores, &labels, 30).unwrap();
        assert!((prf.precision - 2.0 / 3.0).abs() < 1e-9);
        assert!((prf.recall - 2.0 / 4.0).abs() < 1e-9);
        let expect_f1 = 2.0 * (2.0 / 3.0) * 0.5 / (2.0 / 3.0 + 0.5);
        assert!((prf.f1 - expect_f1).abs() < 1e-9);
    }

    #[test]
    fn prf_at_least_one_predicted() {
        // Tiny test sets still predict at least one region.
        let prf = prf_at_top_percent(&[0.9, 0.1], &[1.0, 0.0], 3).unwrap();
        assert_eq!(prf.precision, 1.0);
        assert_eq!(prf.recall, 1.0);
    }

    #[test]
    fn prf_no_positives_is_zero() {
        let prf = prf_at_top_percent(&[0.9, 0.1], &[0.0, 0.0], 50).unwrap();
        assert_eq!(prf, Prf::default());
    }

    #[test]
    fn prf_nan_score_is_a_typed_error() {
        let r = prf_at_top_percent(&[f32::NEG_INFINITY, 0.1], &[1.0, 0.0], 50);
        assert_eq!(r, Err(MetricError::NonFiniteScore { index: 0, count: 1 }));
    }

    #[test]
    fn mean_std_basic() {
        // Sample (n−1) standard deviation: [1,2,3] → 1.0 exactly.
        let (m, s) = mean_std(&[1.0, 2.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((s - 1.0).abs() < 1e-12);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
        // A single sample carries no spread information.
        assert_eq!(mean_std(&[7.0]), (7.0, 0.0));
    }

    #[test]
    fn multiclass_accuracy_counts_exact_matches() {
        assert_eq!(multiclass_accuracy(&[0, 1, 2, 3], &[0, 1, 2, 7]), Ok(0.75));
        assert_eq!(multiclass_accuracy(&[], &[]), Ok(0.0));
        assert_eq!(
            multiclass_accuracy(&[1], &[1, 2]),
            Err(MetricError::LengthMismatch {
                scores: 1,
                labels: 2
            })
        );
    }

    #[test]
    fn rmse_matches_hand_computation() {
        // Errors (1, -1) → RMSE 1 exactly.
        let v = rmse(&[1.0, 2.0], &[0.0, 3.0]).unwrap();
        assert!((v - 1.0).abs() < 1e-12);
        assert_eq!(rmse(&[], &[]), Ok(0.0));
        assert!(rmse(&[f32::NAN], &[0.0]).is_err());
    }

    #[test]
    fn metric_error_displays() {
        let e = MetricError::NonFiniteScore { index: 3, count: 2 };
        assert!(e.to_string().contains("index 3"));
        assert!(MetricError::NonFiniteLabel { index: 0 }
            .to_string()
            .contains("label"));
    }
}
